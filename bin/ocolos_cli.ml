(* ocolos_cli: drive the simulator from the command line.

   Subcommands:
     list                          workloads and their inputs
     inspect  -w W                 binary summary and characterization
     run      -w W -i I [-s SEC]   steady-state throughput of the original
     bolt     -w W -i I            offline BOLT: profile, optimize, compare
     ocolos   -w W -i I            online OCOLOS: attach, replace, compare
                                   (--fault POINT[:SPEC] injects deterministic
                                   faults anywhere in the pipeline)
     faults                        list fault domains and injection points
     validate -w W -i I            Tier-1 translation validation of a BOLT
                                   result without committing; --corrupt
                                   POINT[:SALT] demonstrates the gate,
                                   --expect-reject makes it a CI smoke
     chaos                         kill/restart crash-recovery sweep
     osr-smoke                     never-returning event loop through a full
                                   campaign; fails unless the original text is
                                   fully unmapped and the reachability audit
                                   is clean
     fleet                         N-replica canary rollout under open-loop
                                   traffic (--inject-regression demonstrates
                                   the guard-driven staged rollback)
     explain                       fleet rollout with layout-health attribution
                                   armed: breached signal, per-version deltas,
                                   regressed functions, rollback event
     timeline -w W -i I            per-second Fig.7-style timeline
     topdown  -w W -i I            stage-1 TopDown bottleneck analysis
     stats    -w W -i I            pipeline phase + TopDown attribution tables

   run/bolt/ocolos/chaos/fleet/explain/timeline/stats accept --trace FILE
   (Chrome/Perfetto trace-event JSON of the run's span tree), --metrics FILE
   (Prometheus text dump of the run's metrics registry), and --events FILE
   (JSONL structured event log with span IDs cross-linking into the trace);
   all are byte-deterministic for identical invocations. *)

open Cmdliner
open Ocolos_workloads
module Measure = Ocolos_sim.Measure
module Timeline = Ocolos_sim.Timeline
module Obs = Ocolos_obs
module Table = Ocolos_util.Table

let workloads () =
  [ ("mysql", fun () -> Apps.mysql_like ());
    ("mongodb", fun () -> Apps.mongodb_like ());
    ("memcached", fun () -> Apps.memcached_like ());
    ("verilator", fun () -> Apps.verilator_like ());
    ("clang", fun () -> Apps.clang_like ());
    ("event_loop", fun () -> Apps.event_loop ());
    ("tiny", fun () -> Apps.tiny ~tx_limit:None ()) ]

let load_workload name =
  match List.assoc_opt name (workloads ()) with
  | Some f -> f ()
  | None -> Fmt.failwith "unknown workload %S (try `ocolos_cli list`)" name

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name (see $(b,list)).")

let input_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input name for the workload.")

let seconds_arg =
  Arg.(
    value & opt float 2.0
    & info [ "s"; "seconds" ] ~docv:"SEC" ~doc:"Measurement duration in simulated seconds.")

(* ---- observability plumbing (--trace / --metrics) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it as Chrome/Perfetto \
           trace-event JSON to $(docv) (load in ui.perfetto.dev or chrome://tracing).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect the run's metrics registry and write it in Prometheus text \
           format to $(docv).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Record the run's structured event log (profile windows, BOLT passes, \
           transaction phases, guard transitions, canary verdicts) and write it as \
           JSONL to $(docv).")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Run [f] with an ambient trace, metrics registry, and event log installed
   when the user asked for any (or [force]), then dump the requested
   outputs. Emission uses only the simulated clock, so identical
   invocations write byte-identical files. *)
let with_obs ?(force = false) trace_path metrics_path events_path f =
  if (not force) && trace_path = None && metrics_path = None && events_path = None then
    f ()
  else begin
    let tr = Obs.Trace.create () in
    let reg = Obs.Metrics.create () in
    let ev = Obs.Events.create () in
    Obs.Trace.install tr;
    Obs.Metrics.install reg;
    Obs.Events.install ev;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.uninstall ();
        Obs.Metrics.uninstall ();
        Obs.Events.uninstall ())
      f;
    (match trace_path with
    | Some p ->
      Obs.Chrome.save p tr;
      Fmt.pr "wrote trace-event JSON (%d spans, %d events) to %s@." (Obs.Trace.span_count tr)
        (List.length (Obs.Trace.events tr))
        p
    | None -> ());
    (match metrics_path with
    | Some p ->
      write_file p (Obs.Metrics.to_prometheus reg);
      Fmt.pr "wrote metrics to %s@." p
    | None -> ());
    match events_path with
    | Some p ->
      Obs.Events.save p ev;
      Fmt.pr "wrote %d events to %s@." (Obs.Events.count ev) p
    | None -> ()
  end

let list_cmd =
  let run () =
    List.iter
      (fun (name, f) ->
        let w = f () in
        Fmt.pr "%-10s inputs: %s@." name
          (String.concat ", "
             (List.map (fun (i : Input.t) -> i.Input.name) w.Workload.inputs)))
      (workloads ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and inputs") Term.(const run $ const ())

let inspect_cmd =
  let run name =
    let w = load_workload name in
    let b = w.Workload.binary in
    Fmt.pr "%a@." Ocolos_binary.Binary.pp_summary b;
    Fmt.pr "direct call sites: %d@." (List.length (Ocolos_binary.Binary.direct_call_sites b));
    Fmt.pr "sections:@.";
    List.iter
      (fun (s : Ocolos_binary.Binary.section) ->
        Fmt.pr "  %-14s base 0x%x size %d@." s.Ocolos_binary.Binary.sec_name
          s.Ocolos_binary.Binary.sec_base s.Ocolos_binary.Binary.sec_size)
      b.Ocolos_binary.Binary.sections
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Binary summary") Term.(const run $ workload_arg)

let engine_arg =
  let engine_conv =
    Arg.enum [ ("reference", `Reference); ("blocks", `Blocks); ("traces", `Traces) ]
  in
  Arg.(
    value & opt engine_conv `Blocks
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,reference) (per-instruction interpreter), $(b,blocks) \
           (decoded basic-block cache, the default), or $(b,traces) (superblocks with \
           exit chaining and inline caches). All engines retire identical instruction \
           streams; only wall-clock differs.")

let run_cmd =
  let run name input_name seconds engine trace metrics events =
    with_obs trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let s = Measure.steady ~engine ~measure:seconds w ~input in
    Fmt.pr "%s/%s: %.0f tps@.%a@." name input_name s.Measure.tps Ocolos_uarch.Counters.pp
      s.Measure.counters
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Steady-state throughput of the original binary")
    Term.(
      const run $ workload_arg $ input_arg $ seconds_arg $ engine_arg $ trace_arg
      $ metrics_arg $ events_arg)

let bolt_cmd =
  let run name input_name seconds trace metrics events =
    with_obs trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let orig = Measure.steady ~measure:seconds w ~input in
    let profile = Measure.collect_profile w ~input in
    let r = Measure.bolt_binary w profile in
    let opt = Measure.steady ~binary:r.Ocolos_bolt.Bolt.merged ~measure:seconds w ~input in
    Fmt.pr "original: %.0f tps@." orig.Measure.tps;
    Fmt.pr "BOLTed:   %.0f tps (%.2fx), %d functions optimized, %d skipped@." opt.Measure.tps
      (opt.Measure.tps /. orig.Measure.tps)
      r.Ocolos_bolt.Bolt.funcs_reordered r.Ocolos_bolt.Bolt.skipped
  in
  Cmd.v
    (Cmd.info "bolt" ~doc:"Offline BOLT: profile, optimize, compare")
    Term.(
      const run $ workload_arg $ input_arg $ seconds_arg $ trace_arg $ metrics_arg
      $ events_arg)

let fault_arg =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"POINT[:SPEC]"
        ~doc:
          "Arm a fault at a named injection point (repeatable; see $(b,faults)). SPEC is \
           $(i,N) (fire on the Nth hit; default 1), $(b,every:)$(i,K), or $(b,p:)$(i,P).")

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for probabilistic fault schedules; reruns reproduce exactly.")

(* Parse and arm --fault specs into one registry; None when nothing armed. *)
let parse_faults ~seed specs =
  match specs with
  | [] -> None
  | specs ->
    let f = Ocolos_util.Fault.create ~seed () in
    List.iter
      (fun spec ->
        match Ocolos_util.Fault.parse_arm f spec with
        | Ok point when not (List.mem point Ocolos_core.Ocolos.fault_catalog) ->
          Fmt.failwith "bad --fault %S: unknown point %S (see `ocolos_cli faults`)" spec
            point
        | Ok _ -> ()
        | Error msg -> Fmt.failwith "bad --fault %S: %s" spec msg)
      specs;
    Some f

let ocolos_cmd =
  let run name input_name seconds fault_specs fault_seed trace metrics events =
    with_obs trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let fault = parse_faults ~seed:fault_seed fault_specs in
    let config = { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault } in
    let orig = Measure.steady ~measure:seconds w ~input in
    (match Measure.ocolos_steady ~config ~measure:seconds w ~input with
    | r ->
      let s = r.Measure.stats in
      Fmt.pr "original: %.0f tps@." orig.Measure.tps;
      Fmt.pr "OCOLOS:   %.0f tps (%.2fx)@." r.Measure.post.Measure.tps
        (r.Measure.post.Measure.tps /. orig.Measure.tps);
      Fmt.pr
        "replacement: %d funcs optimized, %d v-table entries + %d call sites patched, %d on stack, pause %.3f s@."
        s.Ocolos_core.Ocolos.funcs_optimized s.Ocolos_core.Ocolos.vtable_entries_patched
        s.Ocolos_core.Ocolos.call_sites_patched s.Ocolos_core.Ocolos.stack_live_funcs
        s.Ocolos_core.Ocolos.pause_seconds;
      Fmt.pr "background: perf2bolt %.2f s, llvm-bolt %.2f s@." r.Measure.perf2bolt_seconds
        r.Measure.bolt_seconds;
      if r.Measure.attempts > 1 then
        Fmt.pr "transactions: %d attempts, %d rolled back, committed on attempt %d@."
          r.Measure.attempts r.Measure.rollbacks r.Measure.attempts;
      if r.Measure.quarantined <> [] || r.Measure.breaker <> Ocolos_core.Guard.Closed then
        Fmt.pr "guard: breaker %s, quarantined fids [%s]@."
          (Ocolos_core.Guard.breaker_state_to_string r.Measure.breaker)
          (String.concat "; " (List.map string_of_int r.Measure.quarantined))
    | exception Measure.Replacement_failed msg ->
      Fmt.pr "original: %.0f tps@." orig.Measure.tps;
      Fmt.pr "OCOLOS:   replacement failed — %s@." msg;
      Fmt.pr "process continues on the original layout (all attempts rolled back)@.");
    match fault with
    | None -> ()
    | Some f ->
      Fmt.pr "fault points (seed %d):@." fault_seed;
      List.iter
        (fun p ->
          Fmt.pr "  %-14s %d hits, %d fired@." p (Ocolos_util.Fault.hits f p)
            (Ocolos_util.Fault.fired f p))
        (Ocolos_util.Fault.points f)
  in
  Cmd.v
    (Cmd.info "ocolos" ~doc:"Online OCOLOS: attach, profile, replace, compare")
    Term.(
      const run $ workload_arg $ input_arg $ seconds_arg $ fault_arg $ fault_seed_arg
      $ trace_arg $ metrics_arg $ events_arg)

let faults_cmd =
  let domain_blurb = function
    | "perf" -> "LBR sampling; injected faults degrade the profile, sampling continues"
    | "perf2bolt" -> "profile aggregation; a fault aborts the campaign (layout kept)"
    | "bolt" ->
      "optimizer passes; cfg/bb_reorder/peephole failures skip that function, \
       func_reorder aborts the campaign"
    | "proc" -> "process control (pause timeout); rolls the transaction back"
    | "mem" -> "address-space exhaustion at injection; rolls the transaction back"
    | "txn" -> "stop-the-world replacement; a fault rolls back, the daemon retries"
    | "bolt.miscompile" ->
      "silent output corruption past the BOLT passes; the Tier-1 validator rejects \
       it pre-commit (quarantine + abort), the Tier-2 shadow reverts what slips \
       through (see `ocolos_cli validate`)"
    | _ -> ""
  in
  let run () =
    Fmt.pr "fault domains and injection points (domains in order of first reachability):@.";
    let catalog = Ocolos_core.Ocolos.fault_catalog in
    let domains =
      List.fold_left
        (fun acc p ->
          let d = Ocolos_util.Fault.domain_of p in
          if List.mem d acc then acc else acc @ [ d ])
        [] catalog
    in
    List.iter
      (fun d ->
        Fmt.pr "@.%s — %s@." d (domain_blurb d);
        List.iter
          (fun p -> if Ocolos_util.Fault.domain_of p = d then Fmt.pr "  %s@." p)
          catalog)
      domains;
    Fmt.pr
      "@.arm with: ocolos_cli ocolos -w W -i I --fault POINT[:N|:every:K|:p:P] \
       [--fault-seed S]@.";
    Fmt.pr
      "kill/restart the daemon at any point with: ocolos_cli chaos [--points P,..] [--seeds \
       S,..]@."
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"List pipeline fault domains and injection points")
    Term.(const run $ const ())

(* Standalone Tier-1 translation validation: attach to the live process,
   profile, run BOLT, and gate the result through the validator without
   committing anything. --corrupt applies a bolt.miscompile corruption to
   the BOLT output first, to demonstrate (and CI-check) the gate; the
   per-pass verdicts name the BOLT pass whose invariant broke. Exit status
   is the verdict, so this doubles as a smoke check. *)
let validate_cmd =
  let corrupt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corrupt" ] ~docv:"POINT[:SALT]"
          ~doc:
            "Apply a $(b,bolt.miscompile) corruption to the BOLT output before \
             validating (see $(b,faults) for the catalog). $(i,SALT) picks the \
             corruption site (default 1).")
  in
  let expect_reject_arg =
    Arg.(
      value & flag
      & info [ "expect-reject" ]
          ~doc:
            "Invert the exit status: succeed only when the validator rejects. For \
             CI smokes over the corruption catalog.")
  in
  let run name input_name corrupt expect_reject trace metrics events =
    let rejected = ref false in
    (with_obs trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let proc = Workload.launch w ~input in
    let oc = Ocolos_core.Ocolos.attach proc in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
    Ocolos_core.Ocolos.start_profiling oc;
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:120_000 proc;
    let profile, _ = Ocolos_core.Ocolos.stop_profiling oc in
    let result, _ = Ocolos_core.Ocolos.run_bolt oc profile in
    Fmt.pr "BOLT: %d functions reordered, %d skipped@."
      result.Ocolos_bolt.Bolt.funcs_reordered result.Ocolos_bolt.Bolt.skipped;
    let result =
      match corrupt with
      | None -> result
      | Some spec ->
        let point, salt =
          match String.index_opt spec ':' with
          | None -> (spec, 1)
          | Some i -> (
            let p = String.sub spec 0 i in
            let s = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt s with
            | Some salt -> (p, salt)
            | None -> Fmt.failwith "bad --corrupt %S: SALT must be an integer" spec)
        in
        if not (List.mem point Ocolos_bolt.Miscompile.points) then
          Fmt.failwith "bad --corrupt %S: unknown point %S (see `ocolos_cli faults`)" spec
            point;
        let corrupted, mutations = Ocolos_bolt.Miscompile.apply ~point ~salt result in
        Fmt.pr "corrupted: %s salt %d (%d mutations)@." point salt mutations;
        corrupted
    in
    let report = Ocolos_core.Ocolos.validate_result oc result in
    Fmt.pr "validated: %d functions, %d blocks, %d instructions@."
      report.Ocolos_bolt.Validate.rp_funcs report.Ocolos_bolt.Validate.rp_blocks
      report.Ocolos_bolt.Validate.rp_instrs;
    List.iter
      (fun check ->
        let n = Ocolos_bolt.Validate.check_rejections report check in
        Fmt.pr "  %-12s %s@." check
          (if n = 0 then "ok" else Fmt.str "REJECT (%d)" n))
      Ocolos_bolt.Validate.checks;
    if Ocolos_bolt.Validate.ok report then Fmt.pr "verdict: ACCEPT@."
    else begin
      rejected := true;
      List.iter
        (fun rj -> Fmt.pr "  %a@." Ocolos_bolt.Validate.pp_rejection rj)
        report.Ocolos_bolt.Validate.rp_rejections;
      Fmt.pr "verdict: REJECT (fids [%s] would be quarantined)@."
        (String.concat "; "
           (List.map string_of_int (Ocolos_bolt.Validate.rejected_fids report)))
    end);
    if !rejected <> expect_reject then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Tier-1 translation validation of a BOLT result, without committing; \
          $(b,--corrupt) demonstrates the miscompile gate")
    Term.(
      const run $ workload_arg $ input_arg $ corrupt_arg $ expect_reject_arg $ trace_arg
      $ metrics_arg $ events_arg)

(* Kill/restart crash-recovery sweep: for each (seed, point), kill the
   daemon at that point, check the orphaned target's trace against an
   uninterrupted reference, and check a restarted daemon converges. *)
let chaos_cmd =
  let seeds_arg =
    Arg.(
      value
      & opt (list int) Ocolos_sim.Chaos.default_seeds
      & info [ "seeds" ] ~docv:"S,.." ~doc:"Fault seeds to sweep.")
  in
  let points_arg =
    Arg.(
      value & opt (list string) []
      & info [ "points" ] ~docv:"P,.."
          ~doc:"Fault points to kill at (default: the whole catalog, see $(b,faults)).")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "On failure, re-run each failing scenario with tracing on and write its \
             Chrome/Perfetto trace-event JSON to \
             $(docv)/chaos-seed$(i,S)-$(i,DOMAIN)-$(i,POINT).json.")
  in
  let run seeds points trace_dir trace metrics events =
    let failed = ref false in
    (with_obs trace metrics events @@ fun () ->
    let points = if points = [] then Ocolos_sim.Chaos.default_points else points in
    List.iter
      (fun p ->
        if not (List.mem p Ocolos_core.Ocolos.fault_catalog) then
          Fmt.failwith "unknown fault point %S (see `ocolos_cli faults`)" p)
      points;
    let failures = ref [] in
    let unreached = ref 0 in
    List.iter
      (fun seed ->
        let cache = Ocolos_sim.Chaos.new_cache () in
        List.iter
          (fun point ->
            let r = Ocolos_sim.Chaos.scenario ~cache ~seed ~point () in
            (match Ocolos_sim.Chaos.verdict r with
            | `Pass -> ()
            | `Unreached -> incr unreached
            | `Fail -> failures := (seed, point) :: !failures);
            Fmt.pr "%s@." (Ocolos_sim.Chaos.result_to_string r))
          points)
      seeds;
    let total = List.length seeds * List.length points in
    Fmt.pr "@.%d scenarios: %d passed, %d failed, %d unreached@." total
      (total - List.length !failures - !unreached)
      (List.length !failures) !unreached;
    (match (trace_dir, !failures) with
    | Some dir, (_ :: _ as fails) ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun (seed, point) ->
          (* Deterministic: the re-run fails identically, now traced. *)
          let tr = Obs.Trace.create () in
          Obs.Trace.install tr;
          Fun.protect
            ~finally:(fun () -> Obs.Trace.uninstall ())
            (fun () -> ignore (Ocolos_sim.Chaos.scenario ~seed ~point ()));
          let label =
            Ocolos_sim.Chaos.scenario_label
              { Ocolos_sim.Chaos.r_seed = seed;
                r_point = point;
                r_outcome = Ocolos_sim.Chaos.Not_reached }
          in
          let path = Filename.concat dir (Fmt.str "chaos-%s.json" label) in
          Obs.Chrome.save path tr;
          Fmt.pr "wrote failing-scenario trace to %s@." path)
        (List.rev fails)
    | _ -> ());
    failed := !failures <> []);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Kill the daemon at every fault point; verify trace equality and restart \
             convergence")
    Term.(
      const run $ seeds_arg $ points_arg $ trace_dir_arg $ trace_arg $ metrics_arg
      $ events_arg)

(* True-OSR smoke: drive the never-returning event-loop workload through a
   full continuous campaign and require total convergence — no byte of the
   original text (bolt.org.text) still resident, no residue outstanding,
   and a clean global reachability audit. The CI gate for on-stack
   replacement. *)
let osr_smoke_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 10
      & info [ "max-rounds" ] ~docv:"N"
          ~doc:"Replacement-round budget for retiring the original text.")
  in
  let run max_rounds trace metrics events =
    let failed = ref false in
    (with_obs trace metrics events @@ fun () ->
    let w = Apps.event_loop () in
    let input = Workload.find_input w "steady" in
    let proc = Workload.launch w ~input in
    let config =
      { Ocolos_core.Ocolos.default_config with
        Ocolos_core.Ocolos.bolt =
          { Ocolos_core.Ocolos.default_config.Ocolos_core.Ocolos.bolt with
            Ocolos_bolt.Bolt.hot_threshold = 1;
            max_hot_funcs = None;
            lite = false } }
    in
    let oc = Ocolos_core.Ocolos.attach ~config proc in
    let c0_total = Ocolos_core.Ocolos.c0_text_resident_bytes oc in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:100_000 proc;
    let rounds = ref 0 in
    while Ocolos_core.Ocolos.c0_text_resident_bytes oc > 0 && !rounds < max_rounds do
      incr rounds;
      Ocolos_core.Ocolos.start_profiling oc;
      Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:300_000 proc;
      let profile, _ = Ocolos_core.Ocolos.stop_profiling oc in
      let result, _ = Ocolos_core.Ocolos.run_bolt oc profile in
      let stats = Ocolos_core.Ocolos.replace_code oc result in
      Fmt.pr "round %d: C%d live, %d frames migrated, %d stubs, %d bytes freed, %d/%d \
              original bytes resident@."
        !rounds stats.Ocolos_core.Ocolos.version stats.Ocolos_core.Ocolos.frames_migrated
        stats.Ocolos_core.Ocolos.osr_stubs stats.Ocolos_core.Ocolos.gc_bytes_freed
        (Ocolos_core.Ocolos.c0_text_resident_bytes oc)
        c0_total
    done;
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000 proc;
    ignore (Ocolos_core.Ocolos.gc_residue oc);
    let c0_left = Ocolos_core.Ocolos.c0_text_resident_bytes oc in
    let extra = Ocolos_core.Ocolos.resident_extra_bytes oc in
    if c0_left > 0 then begin
      Fmt.pr "FAIL: %d bytes of bolt.org.text still resident after %d rounds@." c0_left
        !rounds;
      failed := true
    end;
    if extra > 0 then begin
      Fmt.pr "FAIL: %d bytes of stub/copy residue survived convergence@." extra;
      failed := true
    end;
    (match Ocolos_core.Ocolos.verify_no_dangling oc ~freed:[] with
    | () -> ()
    | exception Ocolos_core.Ocolos.Dangling_pointer what ->
      Fmt.pr "FAIL: reachability scanner found a dangling pointer: %s@." what;
      failed := true);
    let tx = Ocolos_proc.Proc.transactions proc in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:100_000 proc;
    if Ocolos_proc.Proc.transactions proc <= tx then begin
      Fmt.pr "FAIL: event loop stopped serving transactions@.";
      failed := true
    end;
    if not !failed then
      Fmt.pr "PASS: original text fully retired in %d rounds (C%d live, %d tx served)@."
        !rounds
        (Ocolos_core.Ocolos.version oc)
        (Ocolos_proc.Proc.transactions proc));
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "osr-smoke"
       ~doc:"Replace a never-returning event loop end to end; fail unless the original \
             text is fully unmapped and the reachability audit is clean")
    Term.(const run $ rounds_arg $ trace_arg $ metrics_arg $ events_arg)

(* Fleet rollout demo: N replicas of the endless tiny workload under
   open-loop traffic, one canary campaign driven to its terminal outcome.
   The exit status makes this a CI smoke: the requested path (promotion,
   or rollback under --inject-regression) must actually have happened and
   the fleet must end homogeneous. *)
(* ---- fleet / explain shared plumbing ---- *)

let replicas_arg =
  Arg.(value & opt int 4 & info [ "replicas" ] ~docv:"N" ~doc:"Fleet size.")

let canary_arg =
  Arg.(
    value & opt int 25
    & info [ "canary" ] ~docv:"PCT" ~doc:"Canary stage size, as a percent of the fleet.")

let inject_arg =
  Arg.(
    value & flag
    & info [ "inject-regression" ]
        ~doc:
          "Scale the measured canary IPC by 0.5 at the verdict: the canary check \
           fails and the staged rollback path runs instead of the promotion.")

let fleet_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Base seed (replica i adds i).")

let ticks_arg =
  Arg.(
    value & opt int 30
    & info [ "ticks" ] ~docv:"T" ~doc:"Simulated seconds to drive the fleet.")

let rate_arg =
  Arg.(
    value & opt float 40.0
    & info [ "rate" ] ~docv:"R"
        ~doc:"Open-loop arrival rate per replica (requests per simulated second).")

let inputs_arg =
  Arg.(
    value
    & opt (list string) [ "a" ]
    & info [ "inputs" ] ~docv:"I,.."
        ~doc:
          "Workload inputs dealt round-robin across replicas (tiny workload: a, b). \
           A mixed list exercises cross-replica profile aggregation over a \
           heterogeneous fleet.")

let fleet_config ~canary ~inject =
  let module Fleet = Ocolos_core.Fleet in
  { Fleet.default_config with
    Fleet.canary_fraction = float_of_int canary /. 100.0;
    canary_ipc_scale = (if inject then 0.5 else 1.0);
    daemon =
      { Ocolos_core.Daemon.default_config with
        Ocolos_core.Daemon.profile_s = 1.0;
        warmup_s = 0.5;
        min_interval_s = 2.0 } }

let fleet_cmd =
  let module Fleet_driver = Ocolos_sim.Fleet_driver in
  let run replicas canary inject seed ticks rate inputs trace metrics events =
    with_obs trace metrics events @@ fun () ->
    let config = fleet_config ~canary ~inject in
    Fmt.pr "fleet: %d replicas, canary %d%%, rate %g req/s, %d ticks, seed %d%s@.@."
      replicas canary rate ticks seed
      (if inject then " — injecting an IPC regression at the canary verdict" else "");
    let report, _fleet =
      Fleet_driver.run ~replicas ~seed ~ticks ~arrival_rate:rate ~inputs ~config ()
    in
    Fmt.pr "%s" (Fleet_driver.report_to_string report);
    let ok =
      report.Fleet_driver.fd_converged
      &&
      if inject then report.Fleet_driver.fd_rollbacks > 0
      else report.Fleet_driver.fd_rollouts > 0
    in
    Fmt.pr "@.%s@."
      (if not ok then "FLEET ROLLOUT CHECK FAILED"
       else if inject then
         "rollback path verified: canary regression caught, every replica back on the \
          old version"
       else "rollout verified: canary promoted, every replica on the new version");
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Canary rollout across an N-replica fleet under open-loop traffic; \
          $(b,--inject-regression) demonstrates the guard-driven staged rollback")
    Term.(
      const run $ replicas_arg $ canary_arg $ inject_arg $ fleet_seed_arg $ ticks_arg
      $ rate_arg $ inputs_arg $ trace_arg $ metrics_arg $ events_arg)

(* Post-mortem for a rollout: run the fleet with layout-health attribution
   armed, then explain the canary verdict — which signal breached, which
   functions regressed between C_i and C_{i+1}, which fault domains fired,
   and the rollback event from the structured log. *)
let explain_cmd =
  let module Fleet = Ocolos_core.Fleet in
  let module Fleet_driver = Ocolos_sim.Fleet_driver in
  let module LH = Obs.Layout_health in
  let run replicas canary inject seed ticks rate inputs fault_specs fault_seed trace
      metrics events =
    with_obs ~force:true trace metrics events @@ fun () ->
    let lh = LH.create () in
    LH.install lh;
    Fun.protect ~finally:(fun () -> LH.uninstall ()) @@ fun () ->
    let config = fleet_config ~canary ~inject in
    let ocolos_config =
      { Ocolos_core.Ocolos.default_config with
        Ocolos_core.Ocolos.fault = parse_faults ~seed:fault_seed fault_specs }
    in
    Fmt.pr "explain: %d replicas, canary %d%%, rate %g req/s, %d ticks, seed %d%s@.@."
      replicas canary rate ticks seed
      (if inject then " — injecting an IPC regression at the canary verdict" else "");
    let report, fleet =
      Fleet_driver.run ~replicas ~seed ~ticks ~arrival_rate:rate ~inputs ~config
        ~ocolos_config ()
    in
    LH.export_metrics lh;
    Fmt.pr "%s@." (Fleet_driver.report_to_string report);
    Fmt.pr "layout health, per code version:@.%s@." (LH.report lh);
    let pp_cohort label ids (c : Fleet.cohort) =
      Fmt.pr
        "%s cohort (replicas [%s]): IPC %.2f (baseline %.2f, ratio %.2f), p99 %.3fs, \
         L1i %.2f MPKI, iTLB %.2f MPKI, BTB %.2f MPKI, taken %.1f/Ki@."
        label
        (String.concat ";" (List.map string_of_int ids))
        c.Fleet.co_ipc c.Fleet.co_base_ipc c.Fleet.co_ipc_ratio c.Fleet.co_p99
        c.Fleet.co_l1i_mpki c.Fleet.co_itlb_mpki c.Fleet.co_btb_mpki c.Fleet.co_taken_pki
    in
    (match Fleet.last_readout fleet with
    | None -> Fmt.pr "no canary verdict was reached within the tick budget.@."
    | Some ro ->
      pp_cohort "canary" ro.Fleet.ro_canary.Fleet.co_ids ro.Fleet.ro_canary;
      (match ro.Fleet.ro_rest with
      | Some r -> pp_cohort "rest  " r.Fleet.co_ids r
      | None -> Fmt.pr "rest cohort: none (every replica was a canary)@.");
      match ro.Fleet.ro_breach with
      | None -> Fmt.pr "verdict: clean — C%d promoted fleet-wide@." ro.Fleet.ro_version
      | Some (signal, detail) ->
        Fmt.pr "verdict: breached signal %S — %s@." signal detail;
        let from_version = ro.Fleet.ro_version - 1 and to_version = ro.Fleet.ro_version in
        Fmt.pr "@.signal deltas C%d -> C%d:@.%s" from_version to_version
          (LH.delta_table lh ~from_version ~to_version);
        let regs = LH.regressions lh ~from_version ~to_version in
        if regs <> [] then begin
          Fmt.pr "@.top regressed functions (contribution per Ki-instr, C%d -> C%d):@."
            from_version to_version;
          List.iteri
            (fun i (fd : LH.func_delta) ->
              if i < 5 then
                Fmt.pr "  %-24s l1i %+.3f  itlb %+.3f  btb %+.3f  taken %+.3f  total %+.3f@."
                  fd.LH.fd_name fd.LH.fd_l1i fd.LH.fd_itlb fd.LH.fd_btb fd.LH.fd_taken
                  fd.LH.fd_total)
            regs
        end);
    (match Obs.Events.installed () with
    | None -> ()
    | Some ev ->
      let evs = Obs.Events.events ev in
      let fired =
        List.filter
          (fun (e : Obs.Events.event) ->
            e.Obs.Events.e_type = "fault.fired" || e.Obs.Events.e_type = "fault.killed")
          evs
      in
      if fired <> [] then begin
        Fmt.pr "@.fault injections:@.";
        List.iter
          (fun (e : Obs.Events.event) ->
            match List.assoc_opt "point" e.Obs.Events.e_fields with
            | Some (Obs.Trace.S p) ->
              Fmt.pr "  t=%dus %s at %s (fault domain: %s)@." e.Obs.Events.e_ts_us
                e.Obs.Events.e_type p
                (Ocolos_util.Fault.domain_of p)
            | _ -> ())
          fired
      end;
      match
        List.rev
          (List.filter
             (fun (e : Obs.Events.event) ->
               e.Obs.Events.e_type = "fleet.rolled_back"
               || e.Obs.Events.e_type = "txn.rollback")
             evs)
      with
      | last :: _ -> Fmt.pr "@.rollback event (JSONL):@.  %s@." (Obs.Events.event_to_string last)
      | [] -> ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a fleet rollout with layout-health attribution armed, then explain the \
          canary verdict: breached signal, per-version signal deltas, regressed \
          functions, fired fault domains, and the rollback event")
    Term.(
      const run $ replicas_arg $ canary_arg $ inject_arg $ fleet_seed_arg $ ticks_arg
      $ rate_arg $ inputs_arg $ fault_arg $ fault_seed_arg $ trace_arg $ metrics_arg
      $ events_arg)

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output image path (.oclb).")

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Binary image (.oclb) to load.")

(* Save a BOLT-optimized image for later runs: the offline deployment
   flow. *)
let save_cmd =
  let run name input_name out =
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let profile = Measure.collect_profile w ~input in
    let r = Measure.bolt_binary w profile in
    Ocolos_binary.Serialize.save out r.Ocolos_bolt.Bolt.merged;
    Fmt.pr "wrote %s (%d functions optimized, entry 0x%x)@." out
      r.Ocolos_bolt.Bolt.funcs_reordered
      r.Ocolos_bolt.Bolt.merged.Ocolos_binary.Binary.entry
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Profile, BOLT, and save the optimized image to a file")
    Term.(const run $ workload_arg $ input_arg $ out_arg)

let load_cmd =
  let run path =
    let b = Ocolos_binary.Serialize.load path in
    Fmt.pr "%a@." Ocolos_binary.Binary.pp_summary b;
    List.iter
      (fun (s : Ocolos_binary.Binary.section) ->
        Fmt.pr "  %-14s base 0x%x size %d@." s.Ocolos_binary.Binary.sec_name
          s.Ocolos_binary.Binary.sec_base s.Ocolos_binary.Binary.sec_size)
      b.Ocolos_binary.Binary.sections
  in
  Cmd.v (Cmd.info "load" ~doc:"Inspect a saved binary image") Term.(const run $ file_arg)

(* objdump analog. *)
let disasm_cmd =
  let func_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"NAME" ~doc:"Only this function.")
  in
  let run name func =
    let w = load_workload name in
    let b = w.Workload.binary in
    match func with
    | None -> Fmt.pr "%a@." Ocolos_binary.Disasm.pp b
    | Some fname -> (
      match Ocolos_binary.Binary.find_symbol_by_name b fname with
      | Some s -> Fmt.pr "%a@." (fun fmt () ->
            Ocolos_binary.Disasm.pp_function fmt b s.Ocolos_binary.Binary.fs_fid) ()
      | None -> Fmt.failwith "no function %S" fname)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload's binary (objdump analog)")
    Term.(const run $ workload_arg $ func_arg)

(* perf report analog: top L1i-missing functions. *)
let report_cmd =
  let run name input_name seconds =
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:(Ocolos_sim.Clock.seconds_to_cycles 0.3) proc;
    let session = Ocolos_profiler.Perf_report.start proc in
    Ocolos_proc.Proc.run ~cycle_limit:(Ocolos_sim.Clock.seconds_to_cycles (0.3 +. seconds)) proc;
    let report = Ocolos_profiler.Perf_report.stop session in
    Fmt.pr "%a" (Ocolos_profiler.Perf_report.pp_top ~limit:15) (report, w.Workload.binary)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"perf-report analog: functions by L1i-miss share")
    Term.(const run $ workload_arg $ input_arg $ seconds_arg)

let timeline_cmd =
  let run name input_name trace metrics events =
    with_obs trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let t = Timeline.run ~warmup_s:5 ~profile_s:3 ~post_s:8 w ~input in
    List.iter
      (fun (p : Timeline.point) ->
        Fmt.pr "%3d  %-15s %8.0f tps  p95 %.2f ms@." p.Timeline.second
          (Timeline.region_name p.Timeline.region)
          p.Timeline.tps p.Timeline.p95_ms)
      t.Timeline.points
  in
  Cmd.v
    (Cmd.info "timeline" ~doc:"Fig.7-style replacement timeline")
    Term.(const run $ workload_arg $ input_arg $ trace_arg $ metrics_arg $ events_arg)

let topdown_cmd =
  let run name input_name seconds =
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:(Ocolos_sim.Clock.seconds_to_cycles 0.3) proc;
    let before = Ocolos_proc.Proc.total_counters proc in
    Ocolos_proc.Proc.run ~cycle_limit:(Ocolos_sim.Clock.seconds_to_cycles (0.3 +. seconds)) proc;
    let after = Ocolos_proc.Proc.total_counters proc in
    let v = Ocolos_profiler.Topdown_check.analyze ~before ~after () in
    let td = v.Ocolos_profiler.Topdown_check.topdown in
    Fmt.pr "retiring %.0f%%  front-end %.0f%%  bad-speculation %.0f%%  back-end %.0f%%@."
      (100.0 *. td.Ocolos_uarch.Counters.retiring)
      (100.0 *. td.Ocolos_uarch.Counters.frontend)
      (100.0 *. td.Ocolos_uarch.Counters.bad_speculation)
      (100.0 *. td.Ocolos_uarch.Counters.backend);
    Fmt.pr "front-end bound: %b — %s@." v.Ocolos_profiler.Topdown_check.frontend_bound
      (if v.Ocolos_profiler.Topdown_check.frontend_bound then
         "OCOLOS is likely to help (proceed to LBR profiling)"
       else "OCOLOS is unlikely to help")
  in
  Cmd.v
    (Cmd.info "topdown" ~doc:"Stage-1 TopDown bottleneck analysis (DMon-style)")
    Term.(const run $ workload_arg $ input_arg $ seconds_arg)

(* Full pipeline run with observability on, reported as attribution
   tables: where the pipeline's wall-clock went, and what the replacement
   did to the TopDown cycle breakdown and front-end miss rates. *)
let stats_cmd =
  let run name input_name seconds trace metrics events =
    with_obs ~force:true trace metrics events @@ fun () ->
    let w = load_workload name in
    let input = Workload.find_input w input_name in
    let profile_s = 2.0 in
    let orig = Measure.steady ~measure:seconds w ~input in
    let r = Measure.ocolos_steady ~profile_s ~measure:seconds w ~input in
    let s = r.Measure.stats in
    let post = r.Measure.post in
    Table.section (Fmt.str "pipeline attribution — %s/%s" name input_name);
    let pause = s.Ocolos_core.Ocolos.pause_seconds in
    let phases =
      [ ("LBR profiling", profile_s, "target runs at full speed");
        ("perf2bolt", r.Measure.perf2bolt_seconds, "background, contends with target");
        ("llvm-bolt", r.Measure.bolt_seconds, "background, contends with target");
        ("stop-the-world replace", pause, "target fully paused") ]
    in
    let total = List.fold_left (fun acc (_, sec, _) -> acc +. sec) 0.0 phases in
    Table.print
      ~headers:[| "phase"; "seconds"; "share"; "notes" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Left |]
      (List.map
         (fun (ph, sec, note) ->
           [| ph; Table.fmt_f ~digits:3 sec; Table.fmt_pct (sec /. total); note |])
         phases);
    if r.Measure.attempts > 1 then
      Fmt.pr "replacement committed on attempt %d (%d rolled back)@." r.Measure.attempts
        r.Measure.rollbacks;
    Fmt.pr "supervision: breaker %s, %d quarantined@."
      (Ocolos_core.Guard.breaker_state_to_string r.Measure.breaker)
      (List.length r.Measure.quarantined);
    Table.section "TopDown attribution (share of cycles)";
    let td_o = orig.Measure.topdown and td_p = post.Measure.topdown in
    let row label o p = [| label; Table.fmt_pct o; Table.fmt_pct p; Table.fmt_pct (p -. o) |] in
    Table.print
      ~headers:[| "category"; "original"; "ocolos"; "delta" |]
      [ row "retiring" td_o.Ocolos_uarch.Counters.retiring td_p.Ocolos_uarch.Counters.retiring;
        row "front-end bound" td_o.Ocolos_uarch.Counters.frontend
          td_p.Ocolos_uarch.Counters.frontend;
        row "bad speculation" td_o.Ocolos_uarch.Counters.bad_speculation
          td_p.Ocolos_uarch.Counters.bad_speculation;
        row "back-end bound" td_o.Ocolos_uarch.Counters.backend
          td_p.Ocolos_uarch.Counters.backend ];
    Table.section "front-end effects";
    let frow label f =
      let o = f orig.Measure.counters and p = f post.Measure.counters in
      [| label;
         Table.fmt_f ~digits:2 o;
         Table.fmt_f ~digits:2 p;
         (* a near-zero baseline makes the ratio meaningless *)
         (if o < 0.005 then "n/a" else Table.fmt_speedup (p /. o)) |]
    in
    Table.print
      ~headers:[| "metric"; "original"; "ocolos"; "ocolos/orig" |]
      (frow "IPC" Ocolos_uarch.Counters.ipc
      :: [ frow "L1i MPKI" Ocolos_uarch.Counters.l1i_mpki;
           frow "iTLB MPKI" Ocolos_uarch.Counters.itlb_mpki;
           frow "BTB misses/Ki" Ocolos_uarch.Counters.btb_misses_pki;
           frow "taken branches/Ki" Ocolos_uarch.Counters.taken_branches_pki ]);
    Fmt.pr "throughput: %.0f -> %.0f tps (%.2fx)@." orig.Measure.tps post.Measure.tps
      (post.Measure.tps /. orig.Measure.tps);
    match Obs.Trace.installed () with
    | Some tr ->
      Fmt.pr "trace: %d spans, %d point events (use --trace FILE to export)@."
        (Obs.Trace.span_count tr)
        (List.length (Obs.Trace.events tr))
    | None -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the online pipeline and print phase + TopDown attribution tables")
    Term.(
      const run $ workload_arg $ input_arg $ seconds_arg $ trace_arg $ metrics_arg
      $ events_arg)

let () =
  let doc = "OCOLOS: online code layout optimization (simulated reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ocolos_cli" ~doc)
          [ list_cmd; inspect_cmd; run_cmd; bolt_cmd; ocolos_cmd; faults_cmd; validate_cmd;
            chaos_cmd; osr_smoke_cmd; fleet_cmd; explain_cmd; timeline_cmd; topdown_cmd;
            stats_cmd; save_cmd; load_cmd; report_cmd; disasm_cmd ]))
