(* Miscompile-containment overhead: Tier-1 translation-validation latency
   relative to the BOLT phase it gates, and the Tier-2 shadow-execution
   cost per campaign (prepare + arm + replay).

   Emits BENCH_validate.json. Exits non-zero if the validator costs more
   than 5% of the campaign's BOLT-phase wall time on any workload —
   validation runs inside every campaign, so it must stay noise next to
   the optimization it checks. The BOLT phase is perf2bolt aggregation
   plus the optimizer itself, matching the paper's cost structure (Table
   II: perf2bolt dominates; a layout cannot be produced without it); the
   optimizer-only ratio is reported alongside for visibility. The shadow
   numbers are reported unguarded: shadowing is sampled
   (Daemon.shadow_every), so its budget is a policy knob, not an
   invariant.

   Wall times use the median of [repeats] runs; like the engine
   microbenchmark, meaningful numbers need `--profile release`. *)

open Ocolos_workloads
module O = Ocolos_core.Ocolos
module Txn = Ocolos_core.Txn
module Shadow = Ocolos_core.Shadow
module Bolt = Ocolos_bolt.Bolt
module Validate = Ocolos_bolt.Validate
module Proc = Ocolos_proc.Proc
module Perf = Ocolos_profiler.Perf
module Perf2bolt = Ocolos_profiler.Perf2bolt
module Json = Ocolos_obs.Json
module Clock = Ocolos_sim.Clock

let output = "BENCH_validate.json"
let repeats = 7
let max_ratio = 0.05

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let timed_median f =
  let r, _ = time f in
  let walls = List.init repeats (fun _ -> snd (time f)) in
  (r, median walls)

(* One campaign's worth of work on [w]: sample the live process at the
   daemon's cadence (Daemon.default_config.profile_s simulated seconds —
   the window every real campaign's BOLT consumes), then time perf2bolt
   aggregation, BOLT, the Tier-1 validator over its output, and one
   Tier-2 shadow cycle around the commit. *)
let bench (w : Workload.t) =
  let input = List.hd w.Workload.inputs in
  Common.progress "validate: %s/%s, %d BOLT + validator runs" w.Workload.name
    input.Input.name (repeats + 1);
  let proc = Workload.launch w ~input in
  let oc = O.attach proc in
  let profile_s = Ocolos_core.Daemon.default_config.Ocolos_core.Daemon.profile_s in
  Proc.run ~cycle_limit:(Clock.seconds_to_cycles Common.warmup) proc;
  let session = Perf.start proc in
  Proc.run ~cycle_limit:(Clock.seconds_to_cycles (Common.warmup +. profile_s)) proc;
  let samples = Perf.stop session in
  let binary = O.current_binary oc in
  let profile, perf2bolt_wall =
    timed_median (fun () -> Perf2bolt.convert ~binary samples)
  in
  let result, bolt_wall = timed_median (fun () -> Bolt.run ~binary ~profile ()) in
  let report, validate_wall = timed_median (fun () -> Validate.run ~binary result) in
  if not (Validate.ok report) then begin
    Printf.eprintf "FAIL: validator rejected a clean BOLT result on %s\n"
      w.Workload.name;
    exit 2
  end;
  (* The shadow cycle is once per campaign, against the live process: time
     the pre-commit clone, then the post-replacement clone + dual replay
     (the part that runs inside the stop-the-world transaction). *)
  let pre, shadow_prepare = time (fun () -> Shadow.prepare oc) in
  let verdict = ref Shadow.Match in
  let shadow_check = ref 0.0 in
  let verify () =
    let v, wall =
      time (fun () ->
          let shadow = Shadow.arm pre oc result in
          Shadow.check shadow)
    in
    shadow_check := wall;
    verdict := v;
    match v with Shadow.Match -> Ok () | Shadow.Divergence why -> Error why
  in
  (match Txn.replace_code ~verify oc result with
  | Txn.Committed _ -> ()
  | Txn.Diverged dv ->
    Printf.eprintf "FAIL: shadow flagged a clean commit on %s: %s\n" w.Workload.name
      dv.Txn.dv_reason;
    exit 2
  | Txn.Rolled_back _ ->
    Printf.eprintf "FAIL: clean commit rolled back on %s\n" w.Workload.name;
    exit 2);
  let phase_wall = perf2bolt_wall +. bolt_wall in
  let ratio = validate_wall /. phase_wall in
  let bolt_only_ratio = validate_wall /. bolt_wall in
  Printf.printf
    "%s: perf2bolt %.1f ms + bolt %.1f ms, validate %.2f ms (%.1f%% of phase, \
     %.1f%% of optimizer alone), shadow %.1f + %.1f ms\n%!"
    w.Workload.name (perf2bolt_wall *. 1e3) (bolt_wall *. 1e3)
    (validate_wall *. 1e3) (ratio *. 100.0) (bolt_only_ratio *. 100.0)
    (shadow_prepare *. 1e3) (!shadow_check *. 1e3);
  Printf.printf
    "  validated %d funcs / %d blocks / %d instrs; shadow verdict %s\n%!"
    report.Validate.rp_funcs report.Validate.rp_blocks report.Validate.rp_instrs
    (match !verdict with Shadow.Match -> "match" | Shadow.Divergence w -> w);
  ( Json.Obj
      [ ("workload", Json.String w.Workload.name);
        ("perf2bolt_wall_s", Json.Float perf2bolt_wall);
        ("bolt_wall_s", Json.Float bolt_wall);
        ("validate_wall_s", Json.Float validate_wall);
        ("validate_ratio", Json.Float ratio);
        ("validate_vs_bolt_ratio", Json.Float bolt_only_ratio);
        ("shadow_prepare_s", Json.Float shadow_prepare);
        ("shadow_check_s", Json.Float !shadow_check);
        ("shadow_total_s", Json.Float (shadow_prepare +. !shadow_check));
        ("funcs_validated", Json.Int report.Validate.rp_funcs);
        ("blocks_validated", Json.Int report.Validate.rp_blocks);
        ("instrs_validated", Json.Int report.Validate.rp_instrs) ],
    (w.Workload.name, ratio) )

let run () =
  let workloads = [ Lazy.force Common.mysql; Lazy.force Common.memcached ] in
  let rows, ratios = List.split (List.map bench workloads) in
  let oc = open_out output in
  output_string oc (Json.to_string (Json.List rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" output;
  List.iter
    (fun (name, ratio) ->
      if ratio >= max_ratio then begin
        Printf.eprintf
          "FAIL: Tier-1 validation cost %.1f%% of the BOLT phase (perf2bolt + \
           llvm-bolt) on %s (budget %.0f%%)\n"
          (ratio *. 100.0) name (max_ratio *. 100.0);
        exit 1
      end)
    ratios
