(* Execution-engine microbenchmark: decoded-block engine vs reference
   interpreter, by default on a dispatch-bound straight-line workload
   (OCOLOS_BENCH_APP selects one of the paper's app workloads instead).
   Emits BENCH_pr4.json with instructions-per-wall-second for both engines
   and exits non-zero if the block engine is slower or the engines' final
   counters diverge, which is what CI's bench-smoke job keys on.

   Meaningful numbers need the release profile (`dune exec --profile
   release ...`): the dev profile compiles with -opaque, which turns every
   cross-module call into a generic caml_apply and disables the inlining
   the hot paths are written for. *)

open Ocolos_workloads
module Engine_bench = Ocolos_sim.Engine_bench

let output = "BENCH_pr4.json"

let run () =
  let w =
    match Sys.getenv_opt "OCOLOS_BENCH_APP" with
    | Some "verilator" -> Lazy.force Common.verilator
    | Some "memcached" -> Lazy.force Common.memcached
    | Some "mongodb" -> Lazy.force Common.mongodb
    | Some "mysql" -> Lazy.force Common.mysql
    | _ -> Lazy.force Common.straightline
  in
  let input = List.hd w.Workload.inputs in
  Common.progress "engines: %s/%s, %d instrs x %d repeats per engine"
    w.Workload.name input.Input.name Engine_bench.default_max_instrs
    Engine_bench.default_repeats;
  let c = Engine_bench.compare_engines w ~input in
  Printf.printf "engine throughput (%s/%s, %d instructions):\n" c.Engine_bench.workload
    c.Engine_bench.input c.Engine_bench.instructions;
  Printf.printf "  reference  %8.0f kinstr/s  (%.3f s)\n"
    (c.Engine_bench.reference.Engine_bench.ips /. 1e3)
    c.Engine_bench.reference.Engine_bench.wall_s;
  Printf.printf "  blocks     %8.0f kinstr/s  (%.3f s)\n"
    (c.Engine_bench.blocks.Engine_bench.ips /. 1e3)
    c.Engine_bench.blocks.Engine_bench.wall_s;
  Printf.printf "  speedup    %.2fx   counters_equal=%b\n" c.Engine_bench.speedup
    c.Engine_bench.counters_equal;
  let oc = open_out output in
  output_string oc (Ocolos_obs.Json.to_string (Engine_bench.to_json c));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" output;
  if not c.Engine_bench.counters_equal then begin
    prerr_endline "FAIL: engines disagree on final counters";
    exit 2
  end;
  if c.Engine_bench.speedup < 1.0 then begin
    Printf.eprintf "FAIL: block engine slower than reference (%.2fx)\n" c.Engine_bench.speedup;
    exit 1
  end
