(* Execution-engine microbenchmark: reference interpreter vs decoded-block
   engine vs superblock/trace engine.

   Two microbenchmarks run by default — `branchy` (tiny blocks, dispatch
   bound: the case exit chaining and inline caches exist for) and
   `straightline` (long blocks: the case block decoding exists for) —
   plus, when OCOLOS_BENCH_APP is set, one of the paper's app workloads.
   Emits BENCH_superblock.json with instructions-per-wall-second for all
   engines and exits non-zero if any engine pair's final counters diverge,
   if the block engine is slower than the reference, or if the trace
   engine is slower than the block engine on the dispatch-bound workload —
   the regressions CI's bench-smoke job keys on.

   Meaningful numbers need the release profile (`dune exec --profile
   release ...`): the dev profile compiles with -opaque, which turns every
   cross-module call into a generic caml_apply and disables the inlining
   the hot paths are written for. *)

open Ocolos_workloads
module Engine_bench = Ocolos_sim.Engine_bench

let output = "BENCH_superblock.json"

let bench w =
  let input = List.hd w.Workload.inputs in
  Common.progress "engines: %s/%s, %d instrs x %d repeats per engine"
    w.Workload.name input.Input.name Engine_bench.default_max_instrs
    Engine_bench.default_repeats;
  let c = Engine_bench.compare_engines w ~input in
  Printf.printf "engine throughput (%s/%s, %d instructions):\n" c.Engine_bench.workload
    c.Engine_bench.input c.Engine_bench.instructions;
  Printf.printf "  reference  %8.0f kinstr/s  (%.3f s)\n"
    (c.Engine_bench.reference.Engine_bench.ips /. 1e3)
    c.Engine_bench.reference.Engine_bench.wall_s;
  Printf.printf "  blocks     %8.0f kinstr/s  (%.3f s)  %.2fx\n"
    (c.Engine_bench.blocks.Engine_bench.ips /. 1e3)
    c.Engine_bench.blocks.Engine_bench.wall_s c.Engine_bench.speedup;
  Printf.printf "  traces     %8.0f kinstr/s  (%.3f s)  %.2fx  (%.2fx vs blocks)\n"
    (c.Engine_bench.traces.Engine_bench.ips /. 1e3)
    c.Engine_bench.traces.Engine_bench.wall_s c.Engine_bench.speedup_traces
    c.Engine_bench.traces_vs_blocks;
  Printf.printf "  counters_equal=%b\n%!" c.Engine_bench.counters_equal;
  c

let run () =
  let workloads =
    [ Lazy.force Common.branchy; Lazy.force Common.straightline ]
    @
    match Sys.getenv_opt "OCOLOS_BENCH_APP" with
    | Some "verilator" -> [ Lazy.force Common.verilator ]
    | Some "memcached" -> [ Lazy.force Common.memcached ]
    | Some "mongodb" -> [ Lazy.force Common.mongodb ]
    | Some "mysql" -> [ Lazy.force Common.mysql ]
    | _ -> []
  in
  let results = List.map bench workloads in
  let oc = open_out output in
  output_string oc
    (Ocolos_obs.Json.to_string (Ocolos_obs.Json.List (List.map Engine_bench.to_json results)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" output;
  List.iter
    (fun c ->
      if not c.Engine_bench.counters_equal then begin
        Printf.eprintf "FAIL: engines disagree on final counters (%s)\n"
          c.Engine_bench.workload;
        exit 2
      end;
      if c.Engine_bench.speedup < 1.0 then begin
        Printf.eprintf "FAIL: block engine slower than reference on %s (%.2fx)\n"
          c.Engine_bench.workload c.Engine_bench.speedup;
        exit 1
      end;
      (* The trace tier must pay for itself where dispatch dominates; on
         long-block workloads it only has to break even (within noise). *)
      if c.Engine_bench.workload = "branchy" && c.Engine_bench.traces_vs_blocks < 1.0
      then begin
        Printf.eprintf "FAIL: trace engine slower than block engine on %s (%.2fx)\n"
          c.Engine_bench.workload c.Engine_bench.traces_vs_blocks;
        exit 1
      end)
    results
