(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation (Section VI)
   on the simulated substrate, plus the ablation suite and a Bechamel
   microbenchmark pass. Run a single experiment by name:

     dune exec bench/main.exe -- fig5
     dune exec bench/main.exe            # everything, in paper order *)

let experiments =
  [ ("fig1", "L1i capacity over time (motivation)", Exp_fig1.run);
    ("fig3", "BOLT profile-input sensitivity", Exp_fig3.run);
    ("fig5", "OCOLOS vs BOLT/PGO across benchmarks", Exp_fig5.run);
    ("tab1", "benchmark characterization", Exp_tab1.run);
    ("fig6", "speedup vs profiling duration", Exp_fig6.run);
    ("fig7", "replacement timeline", Exp_fig7.run);
    ("tab2", "fixed costs of code replacement", Exp_tab2.run);
    ("fig8", "front-end events per kilo-instruction", Exp_fig8.run);
    ("fig9", "TopDown benefit classifier", Exp_fig9.run);
    ("fig10", "BAM on a Clang build", Exp_fig10.run);
    ("ablations", "design-choice ablations + continuous optimization", Exp_ablations.run);
    ("engines", "decoded-block engine vs reference interpreter throughput", Exp_engines.run);
    ("validate", "Tier-1 validation latency + Tier-2 shadow overhead", Exp_validate.run);
    ("micro", "Bechamel microbenchmarks of the toolchain", Micro.run) ]

let usage () =
  print_endline "usage: main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr) experiments;
  print_endline "  all        run everything (default)"

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, _, f) ->
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "[%s done in %.1f s wall]\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
    Printf.printf "unknown experiment %S\n" name;
    usage ();
    exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: ([ "-h" ] | [ "--help" ] | [ "help" ]) -> usage ()
  | [ _ ] | [ _; "all" ] ->
    List.iter (fun (name, _, _) -> run_one name) experiments
  | _ :: names -> List.iter run_one names
  | [] -> usage ()
