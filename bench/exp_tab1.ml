(* Table I: benchmark characterization — code-size metrics, per-replacement
   statistics averaged across inputs, and the max-RSS model for the
   original / BOLT / OCOLOS configurations. *)

open Ocolos_workloads
open Ocolos_util
module Measure = Ocolos_sim.Measure

let rep_input (w : Workload.t) =
  (* The input Table I uses for memory numbers, per the paper. *)
  let name =
    match w.Workload.name with
    | "mysql" -> "read_only"
    | "mongodb" -> "read_update"
    | "memcached" -> "set10_get90"
    | "verilator" -> "dhrystone"
    | _ -> (List.hd w.Workload.inputs).Input.name
  in
  Workload.find_input w name

let run () =
  Table.section "Table I — benchmark characterization";
  let apps = Common.all_apps () in
  let stats_of (w : Workload.t) =
    let runs =
      List.map
        (fun input ->
          Common.progress "tab1: %s/%s" w.Workload.name input.Input.name;
          Common.ocolos w input)
        w.Workload.inputs
    in
    let avg f = Stats.mean (Array.of_list (List.map f runs)) in
    let input = rep_input w in
    let orig_rss =
      Ocolos_sim.Rss.of_binary ~nthreads:w.Workload.nthreads w.Workload.binary ~input
    in
    let bolt_rss =
      Ocolos_sim.Rss.of_binary ~nthreads:w.Workload.nthreads
        (Common.bolt_oracle w input).Ocolos_bolt.Bolt.merged ~input
    in
    let oco = Common.ocolos w input in
    let ocolos_rss =
      Ocolos_sim.Rss.ocolos ~nthreads:w.Workload.nthreads
        ~resident_extra:oco.Measure.resident_extra_bytes w.Workload.binary ~input
        ~stats:oco.Measure.stats
        ~profile_records:oco.Measure.profile.Ocolos_profiler.Profile.total_records
          (* BOLT's working set scales with the volume of code it rewrote *)
        ~bolt_work_instrs:(oco.Measure.stats.Ocolos_core.Ocolos.code_bytes_injected / 2)
    in
    (runs, avg, orig_rss, bolt_rss, ocolos_rss)
  in
  let data = List.map (fun w -> (w, stats_of w)) apps in
  let row name f = Array.of_list (name :: List.map (fun (w, d) -> f w d) data) in
  let headers = Array.of_list ("" :: List.map (fun (w, _) -> w.Workload.name) data) in
  Table.print ~headers
    [ row "functions" (fun w _ ->
          Table.fmt_int (Array.length w.Workload.binary.Ocolos_binary.Binary.symbols));
      row "v-tables" (fun w _ ->
          Table.fmt_int (Array.length w.Workload.binary.Ocolos_binary.Binary.vtables));
      row ".text (KiB)" (fun w _ ->
          Table.fmt_f ~digits:1
            (float_of_int (Ocolos_binary.Binary.text_bytes w.Workload.binary) /. 1024.0));
      row "avg funcs reordered" (fun _ (_, avg, _, _, _) ->
          Table.fmt_f ~digits:1
            (avg (fun r -> float_of_int r.Measure.stats.Ocolos_core.Ocolos.funcs_optimized)));
      row "avg funcs on stack" (fun _ (_, avg, _, _, _) ->
          Table.fmt_f ~digits:1
            (avg (fun r -> float_of_int r.Measure.stats.Ocolos_core.Ocolos.stack_live_funcs)));
      row "avg call sites changed" (fun _ (_, avg, _, _, _) ->
          Table.fmt_f ~digits:1
            (avg (fun r -> float_of_int r.Measure.stats.Ocolos_core.Ocolos.call_sites_patched)));
      row "avg vtable entries patched" (fun _ (_, avg, _, _, _) ->
          Table.fmt_f ~digits:1
            (avg (fun r ->
                 float_of_int r.Measure.stats.Ocolos_core.Ocolos.vtable_entries_patched)));
      row "max RSS original (MiB)" (fun _ (_, _, o, _, _) ->
          Table.fmt_f ~digits:2 (Ocolos_sim.Rss.mib o));
      row "max RSS BOLT (MiB)" (fun _ (_, _, _, b, _) ->
          Table.fmt_f ~digits:2 (Ocolos_sim.Rss.mib b));
      row "max RSS OCOLOS (MiB)" (fun _ (_, _, _, _, oc) ->
          Table.fmt_f ~digits:2 (Ocolos_sim.Rss.mib oc)) ];
  print_newline ()
