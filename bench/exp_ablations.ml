(* Ablations supporting the paper's design discussion (beyond its figures):

   - patch-all-direct-calls vs stack-live-only (Section IV-B: patching all
     calls "does not improve performance though it does slow replacement");
   - function-reordering algorithm: C3 vs Pettis-Hansen vs none
     (Section II-C);
   - block reordering / hot-cold splitting contributions (Section II-B/D);
   - continuous optimization across input shift (Section IV-C): C1 trained
     on input A keeps running when the input shifts to B; re-optimizing to
     C2 recovers the lost throughput. *)

open Ocolos_workloads
open Ocolos_util
module Measure = Ocolos_sim.Measure
module Clock = Ocolos_sim.Clock

let patching_ablation w input =
  Table.section "Ablation — patch all direct calls vs stack-live only (Section IV-B)";
  let orig = Common.steady_orig w input in
  let run patch_all =
    let config =
      { Ocolos_core.Ocolos.default_config with
        Ocolos_core.Ocolos.patch_all_direct_calls = patch_all }
    in
    Measure.ocolos_steady ~config ~warmup:Common.warmup ~profile_s:Common.profile_s
      ~measure:Common.measure_s w ~input
  in
  let live = run false and all = run true in
  Table.print
    ~headers:[| "configuration"; "speedup"; "call sites patched"; "pause (s)" |]
    [ [| "stack-live only (OCOLOS)";
         Table.fmt_speedup (live.Measure.post.Measure.tps /. orig.Measure.tps);
         Table.fmt_int live.Measure.stats.Ocolos_core.Ocolos.call_sites_patched;
         Table.fmt_f ~digits:4 live.Measure.stats.Ocolos_core.Ocolos.pause_seconds |];
      [| "patch all direct calls";
         Table.fmt_speedup (all.Measure.post.Measure.tps /. orig.Measure.tps);
         Table.fmt_int all.Measure.stats.Ocolos_core.Ocolos.call_sites_patched;
         Table.fmt_f ~digits:4 all.Measure.stats.Ocolos_core.Ocolos.pause_seconds |] ]

let pass_ablation w input =
  Table.section "Ablation — BOLT pass contributions (offline, oracle profile)";
  let orig = Common.steady_orig w input in
  let profile = Common.oracle_profile w input in
  let variants =
    [ ("full (blocks+split+C3)", Ocolos_bolt.Bolt.default_config);
      ("no splitting", { Ocolos_bolt.Bolt.default_config with split_functions = false });
      ( "blocks only",
        { Ocolos_bolt.Bolt.default_config with func_order = Ocolos_bolt.Bolt.Original_order } );
      ( "functions only (C3)",
        { Ocolos_bolt.Bolt.default_config with reorder_blocks = false; split_functions = false }
      );
      ( "Pettis-Hansen",
        { Ocolos_bolt.Bolt.default_config with func_order = Ocolos_bolt.Bolt.Pettis_hansen } )
    ]
  in
  Table.print
    ~headers:[| "configuration"; "speedup"; "L1i MPKI"; "taken PKI" |]
    (List.map
       (fun (name, config) ->
         Common.progress "ablation: %s" name;
         let r = Ocolos_bolt.Bolt.run ~config ~binary:w.Workload.binary ~profile () in
         let s =
           Measure.steady ~binary:r.Ocolos_bolt.Bolt.merged ~warmup:Common.warmup
             ~measure:Common.measure_s w ~input
         in
         [| name;
            Table.fmt_speedup (s.Measure.tps /. orig.Measure.tps);
            Table.fmt_f ~digits:2 (Ocolos_uarch.Counters.l1i_mpki s.Measure.counters);
            Table.fmt_f ~digits:1
              (Ocolos_uarch.Counters.taken_branches_pki s.Measure.counters) |])
       variants)

(* Continuous optimization under input shift: the scenario the paper
   motivates (inputs change over time; offline profiles go stale) but could
   not evaluate because LLVM-BOLT refuses BOLTed binaries. *)
let continuous_ablation w =
  Table.section "Extension — continuous optimization across an input shift (Section IV-C)";
  let input_a = Workload.find_input w "read_only" in
  let input_b = Workload.find_input w "write_only" in
  let proc = Workload.launch w ~input:input_a in
  let oc = Ocolos_core.Ocolos.attach proc in
  let horizon = ref 0.0 in
  let advance s =
    horizon := !horizon +. s;
    Ocolos_proc.Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc
  in
  let tps_over s =
    let t0 = Ocolos_proc.Proc.transactions proc in
    advance s;
    float_of_int (Ocolos_proc.Proc.transactions proc - t0) /. s
  in
  let optimize () =
    Ocolos_core.Ocolos.start_profiling oc;
    advance 2.0;
    let profile, _ = Ocolos_core.Ocolos.stop_profiling oc in
    let result, _ = Ocolos_core.Ocolos.run_bolt oc profile in
    Ocolos_core.Ocolos.replace_code oc result
  in
  advance 0.5;
  let base_a = tps_over 1.5 in
  let s1 = optimize () in
  advance 0.4;
  (* post-replacement warmup *)
  let c1_on_a = tps_over 2.0 in
  (* The input shifts under the running, already-optimized server. *)
  Workload.set_input w proc input_b;
  advance 0.3;
  let c1_on_b = tps_over 1.5 in
  let s2 = optimize () in
  advance 0.4;
  let c2_on_b = tps_over 2.0 in
  let base_b =
    (Common.steady_orig w input_b).Measure.tps
  in
  Table.print
    ~headers:[| "phase"; "input"; "code"; "tps"; "vs original" |]
    [ [| "1 baseline"; "read_only"; "C0"; Table.fmt_f ~digits:0 base_a; "1.00x" |];
      [| "2 after 1st replacement"; "read_only"; "C1";
         Table.fmt_f ~digits:0 c1_on_a; Table.fmt_speedup (c1_on_a /. base_a) |];
      [| "3 input shifts"; "write_only"; "C1 (stale)";
         Table.fmt_f ~digits:0 c1_on_b; Table.fmt_speedup (c1_on_b /. base_b) |];
      [| "4 after 2nd replacement"; "write_only"; "C2";
         Table.fmt_f ~digits:0 c2_on_b; Table.fmt_speedup (c2_on_b /. base_b) |] ];
  Printf.printf
    "\nGC: round 2 freed %s bytes of C1 code; %d stack-live C1 frames were OSR-migrated\n"
    (Table.fmt_int s2.Ocolos_core.Ocolos.gc_bytes_freed)
    s2.Ocolos_core.Ocolos.frames_migrated;
  Printf.printf "replacement rounds: %d then %d sites patched\n"
    s1.Ocolos_core.Ocolos.call_sites_patched s2.Ocolos_core.Ocolos.call_sites_patched

let run () =
  let w = Lazy.force Common.mysql in
  let input = Workload.find_input w "read_only" in
  patching_ablation w input;
  pass_ablation w input;
  continuous_ablation w
