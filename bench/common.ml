(* Shared state for the benchmark harness: the benchmark applications, and
   memoized profiles / optimized binaries / measurements so that experiments
   can share work (Fig. 5's measurements feed Fig. 8 and Fig. 9, Fig. 3
   reuses Fig. 5's per-input BOLT binaries, and so on). *)

open Ocolos_workloads
module Measure = Ocolos_sim.Measure

let warmup = 0.4
let measure_s = 1.5
let profile_s = 2.0

let mysql = lazy (Apps.mysql_like ())
let mongodb = lazy (Apps.mongodb_like ())
let memcached = lazy (Apps.memcached_like ())
let verilator = lazy (Apps.verilator_like ())

(* Dispatch-bound microbenchmark for the engine comparison: long
   straight-line bodies, no parser, no v-table or function-pointer
   dispatch, minimal branching. Per-instruction dispatch overhead — the
   cost the decoded-block engine removes — dominates here, while the app
   workloads above measure the mixed case. *)
let straightline =
  lazy
    (let cfg =
       { Gen.default with
         Gen.seed = 7;
         n_tx_types = 2;
         funcs_per_type = 10;
         shared_funcs = 24;
         cold_funcs = 16;
         parser_blocks = 0;
         blocks_per_func = (2, 3);
         body_instrs = (48, 64);
         calls_per_func = (0, 1);
         error_prob = 0.05;
         loop_prob = 0.0;
         use_vtable_dispatch = false;
         fp_sites_per_type = false }
     in
     let inputs =
       [ Input.make ~name:"hot" ~mix:(Input.pure ~n_types:2 0) ~bias_seed:201 () ]
     in
     Workload.build ~name:"straightline" ~inputs ~nthreads:4 (Gen.generate cfg))

(* Dispatch-bound microbenchmark for the superblock tier: check-dense
   code. Nearly every block is an assertion-style guard — materialize a
   value, check it with a never-taken branch to a cold handler — so the
   hot path is a fall-through chain of two-instruction decoded blocks.
   Dispatch — a memo miss, a hash lookup and fresh loop setup every couple
   of instructions — dominates the block engine, while the per-instruction
   kernel stays lean (not-taken branches keep the fetch fast path alive:
   no taken-transfer bubble, no cache-line reset). The trace tier stitches
   those chains into superblocks and retires them at one dispatch per
   trace. Functions are long and call-free so returns (which end traces)
   are rare, and v-table dispatch is on so the hot path crosses
   monomorphic indirect-call sites, the inline-cache showcase. *)
let branchy =
  lazy
    (let cfg =
       { Gen.default with
         Gen.seed = 13;
         n_tx_types = 2;
         funcs_per_type = 6;
         shared_funcs = 8;
         cold_funcs = 8;
         parser_blocks = 0;
         blocks_per_func = (32, 48);
         body_instrs = (0, 0);
         calls_per_func = (0, 0);
         error_prob = 0.05;
         check_prob = 0.8;
         loop_prob = 0.0;
         use_vtable_dispatch = true;
         fp_sites_per_type = false }
     in
     let inputs =
       [ Input.make ~name:"hot" ~mix:(Input.pure ~n_types:2 0) ~bias_seed:203 () ]
     in
     Workload.build ~name:"branchy" ~inputs ~nthreads:4 (Gen.generate cfg))

let all_apps () =
  [ Lazy.force mysql; Lazy.force mongodb; Lazy.force memcached; Lazy.force verilator ]

(* ---- memo tables ---- *)

let profiles : (string, Ocolos_profiler.Profile.t) Hashtbl.t = Hashtbl.create 32
let bolts : (string, Ocolos_bolt.Bolt.result) Hashtbl.t = Hashtbl.create 32
let pgos : (string, Ocolos_pgo.Pgo.result) Hashtbl.t = Hashtbl.create 32
let samples : (string, Measure.sample) Hashtbl.t = Hashtbl.create 64
let ocolos_runs : (string, Measure.ocolos_run) Hashtbl.t = Hashtbl.create 32

let memo tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.add tbl key v;
    v

(* Oracle profile: collected offline while running [input]. *)
let oracle_profile (w : Workload.t) (input : Input.t) =
  memo profiles
    (w.Workload.name ^ "/" ^ input.Input.name)
    (fun () -> Measure.collect_profile ~seconds:profile_s w ~input)

(* Average-case profile: all of the app's inputs merged (paper Fig. 3
   "all" / Fig. 5 "BOLT average-case"). *)
let avg_profile (w : Workload.t) =
  memo profiles (w.Workload.name ^ "/ALL") (fun () ->
      Ocolos_profiler.Profile.merge (List.map (fun i -> oracle_profile w i) w.Workload.inputs))

let bolt_with (w : Workload.t) ~key profile =
  memo bolts (w.Workload.name ^ "/" ^ key) (fun () -> Measure.bolt_binary w profile)

let bolt_oracle w (input : Input.t) = bolt_with w ~key:input.Input.name (oracle_profile w input)
let bolt_avg w = bolt_with w ~key:"ALL" (avg_profile w)

let pgo_oracle (w : Workload.t) (input : Input.t) =
  memo pgos
    (w.Workload.name ^ "/" ^ input.Input.name)
    (fun () -> Measure.pgo_binary w (oracle_profile w input))

(* Steady-state measurement of a binary variant. *)
let steady (w : Workload.t) ?binary ~variant (input : Input.t) =
  memo samples
    (Printf.sprintf "%s/%s/%s" w.Workload.name input.Input.name variant)
    (fun () -> Measure.steady ?binary ~warmup ~measure:measure_s w ~input)

let steady_orig w input = steady w ~variant:"orig" input

let ocolos (w : Workload.t) (input : Input.t) =
  memo ocolos_runs
    (w.Workload.name ^ "/" ^ input.Input.name)
    (fun () -> Measure.ocolos_steady ~warmup ~profile_s ~measure:measure_s w ~input)

(* The Fig. 5 comparator set for one (app, input): normalized throughputs. *)
type comparison = {
  c_app : string;
  c_input : string;
  orig_tps : float;
  ocolos_x : float;
  bolt_oracle_x : float;
  pgo_oracle_x : float;
  bolt_avg_x : float;
}

let compare_input (w : Workload.t) (input : Input.t) =
  let orig = steady_orig w input in
  let norm s = s.Measure.tps /. orig.Measure.tps in
  let bolt = steady w ~binary:(bolt_oracle w input).Ocolos_bolt.Bolt.merged ~variant:"bolt" input in
  let pgo = steady w ~binary:(pgo_oracle w input).Ocolos_pgo.Pgo.binary ~variant:"pgo" input in
  let avg = steady w ~binary:(bolt_avg w).Ocolos_bolt.Bolt.merged ~variant:"boltavg" input in
  let oco = ocolos w input in
  { c_app = w.Workload.name;
    c_input = input.Input.name;
    orig_tps = orig.Measure.tps;
    ocolos_x = oco.Measure.post.Measure.tps /. orig.Measure.tps;
    bolt_oracle_x = norm bolt;
    pgo_oracle_x = norm pgo;
    bolt_avg_x = norm avg }

let progress fmt = Fmt.epr (fmt ^^ "@.")
