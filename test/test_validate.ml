(* Miscompile containment tests: the Tier-1 translation validator
   (pre-commit CFG-equivalence gate), the Tier-2 shadow checker (in-txn
   replay divergence gate), and the chaos property over the
   bolt.miscompile fault domain — for every corruption mode, no process
   ever keeps a divergent version: either the validator rejects it before
   [Txn.replace_code] (quarantining the offender) or the shadow unwinds
   the transaction byte-exactly, and the surviving trace is identical to
   an uninterrupted run. Also covers the Guard quarantine surviving a
   fleet restart and Perf2bolt.decimate edge cases (satellites). *)

open Ocolos_workloads
module O = Ocolos_core.Ocolos
module Daemon = Ocolos_core.Daemon
module Fleet = Ocolos_core.Fleet
module Guard = Ocolos_core.Guard
module Supervisor = Ocolos_core.Supervisor
module Shadow = Ocolos_core.Shadow
module Txn = Ocolos_core.Txn
module Validate = Ocolos_bolt.Validate
module Miscompile = Ocolos_bolt.Miscompile
module Bolt = Ocolos_bolt.Bolt
module Frame_map = Ocolos_bolt.Frame_map
module Binary = Ocolos_binary.Binary
module Instr = Ocolos_isa.Instr
module Perf2bolt = Ocolos_profiler.Perf2bolt
module Perf = Ocolos_profiler.Perf
module Lbr = Ocolos_profiler.Lbr
module Chaos = Ocolos_sim.Chaos
module F = Ocolos_util.Fault
module Proc = Ocolos_proc.Proc
module Addr_space = Ocolos_proc.Addr_space

let deep = Sys.getenv_opt "OCOLOS_DEEP_TESTS" <> None

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* Tiny workload with its jump tables kept, so the jump_table corruption
   mode has data to rotate. *)
let launch () =
  let base = Apps.tiny ~tx_limit:None () in
  let w =
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen
  in
  Workload.launch w ~input:(Workload.find_input w "a")

let profile_and_bolt ?config () =
  let proc = launch () in
  let oc = O.attach ?config proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:40_000 proc;
  O.start_profiling oc;
  Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  (proc, oc, result)

(* ---- Tier 1: translation validation ---- *)

let test_valid_result_passes () =
  let _proc, oc, result = profile_and_bolt () in
  let report = O.validate_result oc result in
  Alcotest.(check bool) "valid BOLT output accepted" true (Validate.ok report);
  Alcotest.(check (list int)) "no rejected fids" [] (Validate.rejected_fids report);
  Alcotest.(check bool) "validator walked functions" true (report.Validate.rp_funcs > 0);
  Alcotest.(check bool) "validator walked instrs" true (report.Validate.rp_instrs > 100)

(* Every corruption mode except jump_table must be caught by the static
   checks; jump_table keeps every word a valid block start and is the
   designed Tier-1 blind spot (caught at run time by the shadow). *)
let test_tier1_catches_corruptions () =
  let _proc, oc, result = profile_and_bolt () in
  List.iter
    (fun point ->
      let corrupted, mutations = Miscompile.apply ~point ~salt:1 result in
      Alcotest.(check bool) (point ^ ": corruption applied") true (mutations > 0);
      let report = O.validate_result oc corrupted in
      if point = "bolt.miscompile.jump_table" then
        Alcotest.(check bool)
          (point ^ ": passes Tier 1 by design (run-time blind spot)") true
          (Validate.ok report)
      else begin
        Alcotest.(check bool) (point ^ ": rejected by Tier 1") false (Validate.ok report);
        Alcotest.(check bool)
          (point ^ ": offending fids identified") true
          (Validate.rejected_fids report <> [])
      end)
    Miscompile.points

(* Different salts pick different corruption sites. The structural modes
   must be rejected at every site. branch_polarity has a sound exception:
   a conditional whose taken target is its own fall-through block (both
   successors are the same block) is semantically insensitive to its
   polarity, and the validator accepts the negated form precisely for
   those degenerate sites — so the property checked here is an iff:
   accepted <=> the old branch was degenerate. *)
let test_tier1_rejects_across_salts () =
  let _proc, oc, result = profile_and_bolt () in
  List.iter
    (fun point ->
      List.iter
        (fun salt ->
          let corrupted, mutations = Miscompile.apply ~point ~salt result in
          if mutations > 0 then
            let report = O.validate_result oc corrupted in
            Alcotest.(check bool)
              (Fmt.str "%s salt %d rejected" point salt)
              false (Validate.ok report))
        [ 2; 3; 5 ])
    [ "bolt.miscompile.drop_block";
      "bolt.miscompile.stale_reloc";
      "bolt.miscompile.frame_map" ];
  (* branch_polarity, exhaustively over every candidate site. Candidates
     are enumerated exactly the way [Miscompile.apply] does: Branch
     instructions in emitted code order, salt = index. *)
  let nt = result.Bolt.new_text in
  let binary = O.current_binary oc in
  let sites =
    Array.to_list nt.Binary.code_order
    |> List.filter_map (fun a ->
           match Hashtbl.find_opt nt.Binary.code a with
           | Some (Instr.Branch _) -> Some a
           | _ -> None)
  in
  let all_blocks =
    List.concat_map
      (fun (_, (fm : Frame_map.t)) -> Array.to_list fm.Frame_map.fm_blocks)
      result.Bolt.frame_maps
  in
  (* Whether the old block owning the emitted branch at [site] ends in a
     branch whose taken target is the block's own fall-through. *)
  let degenerate site =
    let owner =
      List.fold_left
        (fun acc (bs : Frame_map.block_site) ->
          if bs.Frame_map.bs_new_start <= site then
            match acc with
            | Some (b : Frame_map.block_site)
              when b.Frame_map.bs_new_start >= bs.Frame_map.bs_new_start -> acc
            | _ -> Some bs
          else acc)
        None all_blocks
    in
    match owner with
    | None -> false
    | Some bs ->
      let rec last pc prev =
        if pc >= bs.Frame_map.bs_old_end then prev
        else
          match Binary.find_instr binary pc with
          | Some i -> last (pc + Instr.size i) (Some i)
          | None -> prev
      in
      (match last bs.Frame_map.bs_old_start None with
      | Some (Instr.Branch (_, _, t)) -> t = bs.Frame_map.bs_old_end
      | _ -> false)
  in
  Alcotest.(check bool) "branch candidates exist" true (sites <> []);
  let rejected = ref 0 in
  List.iteri
    (fun salt site ->
      let corrupted, mutations =
        Miscompile.apply ~point:"bolt.miscompile.branch_polarity" ~salt result
      in
      Alcotest.(check bool) (Fmt.str "salt %d mutated" salt) true (mutations > 0);
      let ok = Validate.ok (O.validate_result oc corrupted) in
      if not ok then incr rejected;
      Alcotest.(check bool)
        (Fmt.str "branch_polarity salt %d (site 0x%x): accepted iff degenerate" salt site)
        (degenerate site) ok)
    sites;
  Alcotest.(check bool) "most polarity flips are harmful and rejected" true
    (!rejected * 2 > List.length sites)

(* ---- Tier 2: shadow checker ---- *)

(* A clean commit must replay Match: the dual-clone comparison tolerates
   the legitimate layout change (per the translation map) and the check is
   deterministic — two arms of the same commit agree. *)
let test_shadow_match_on_valid_commit () =
  let _proc, oc, result = profile_and_bolt () in
  let pre = Shadow.prepare oc in
  let pre2 = Shadow.prepare oc in
  (match Txn.replace_code oc result with
  | Txn.Committed _ -> ()
  | Txn.Rolled_back _ -> Alcotest.fail "clean commit rolled back"
  | Txn.Diverged _ -> Alcotest.fail "clean commit diverged");
  (match Shadow.check (Shadow.arm pre oc result) with
  | Shadow.Match -> ()
  | Shadow.Divergence why -> Alcotest.fail ("valid commit flagged divergent: " ^ why));
  match Shadow.check (Shadow.arm pre2 oc result) with
  | Shadow.Match -> ()
  | Shadow.Divergence why -> Alcotest.fail ("second shadow check disagreed: " ^ why)

(* The jump_table blind spot end-to-end: the corrupted result passes
   Tier 1, commits, and the shadow replay catches the rotated indirect
   targets — the daemon reports [Reverted], the transaction has already
   unwound (version unchanged), and the breaker is tripped so the same
   result is not replayed. *)
let test_jump_table_caught_by_shadow () =
  let proc = launch () in
  let fault = F.create ~seed:1 () in
  F.arm fault "bolt.miscompile.jump_table" (F.Nth 1);
  let oc = O.attach ~config:{ O.default_config with O.fault = Some fault } proc in
  let d =
    Daemon.create
      ~config:
        { Daemon.default_config with
          Daemon.profile_s = 1.0;
          warmup_s = 0.5;
          min_interval_s = 2.0 }
      oc proc
  in
  let reverted = ref None in
  let ticks = ref 0 in
  (try
     for i = 0 to 29 do
       Proc.run ~cycle_limit:infinity ~max_instrs:12_000 proc;
       match Daemon.tick d ~now_s:(float_of_int (i + 1)) with
       | Daemon.Reverted { reason } ->
         reverted := Some reason;
         ticks := i;
         raise Exit
       | Daemon.Replaced _ -> Alcotest.fail "corrupted jump table commit survived"
       | _ -> ()
     done
   with Exit -> ());
  (match !reverted with
  | None -> Alcotest.fail "shadow never caught the rotated jump table"
  | Some reason ->
    Alcotest.(check bool) "divergence names an indirect jump" true
      (contains reason "ijmp"));
  Alcotest.(check int) "transaction unwound: version still 0" 0 (O.version oc);
  Alcotest.(check bool) "breaker tripped" true (Daemon.breaker_state d <> Guard.Closed);
  Alcotest.(check int) "counted as a rollback" 1 (Daemon.rollbacks d);
  (* Global-mode dangling-pointer audit: raises on any stale reference. *)
  O.verify_no_dangling oc ~freed:[]

(* ---- the chaos property over the whole fault domain ---- *)

let check_mc (r : Chaos.mc_result) =
  match Chaos.mc_verdict r with
  | `Pass -> ()
  | `Unreached -> Alcotest.fail ("unreached: " ^ Chaos.mc_result_to_string r)
  | `Fail -> Alcotest.fail ("containment failed: " ^ Chaos.mc_result_to_string r)

let test_miscompile_chaos_property () =
  let seeds = if deep then [ 1; 2; 3 ] else [ 1 ] in
  let results = Chaos.miscompile_sweep ~seeds () in
  Alcotest.(check int)
    "one scenario per seed x point"
    (List.length seeds * List.length Chaos.miscompile_points)
    (List.length results);
  List.iter check_mc results;
  (* Both tiers must actually fire across the sweep. *)
  let tiers =
    List.filter_map
      (fun r ->
        match r.Chaos.mc_outcome with
        | Chaos.Mc_contained { mc_tier; _ } -> Some mc_tier
        | _ -> None)
      results
  in
  Alcotest.(check bool) "Tier 1 fired" true (List.mem `Validate tiers);
  Alcotest.(check bool) "Tier 2 fired" true (List.mem `Shadow tiers)

(* The other two engines replay the same containment; deep mode widens to
   the full catalog, the default pins the representative of each tier. *)
let test_miscompile_chaos_engines () =
  List.iter
    (fun engine ->
      let config = { Chaos.default_config with Chaos.engine } in
      let points =
        if deep then Chaos.miscompile_points
        else [ "bolt.miscompile.branch_polarity"; "bolt.miscompile.jump_table" ]
      in
      List.iter
        (fun point -> check_mc (Chaos.miscompile_scenario ~config ~seed:1 ~point ()))
        points)
    [ `Reference; `Traces ]

let test_miscompile_fleet () =
  List.iter
    (fun point ->
      let r = Chaos.miscompile_fleet_scenario ~seed:1 ~point () in
      Alcotest.(check bool)
        (point ^ ": fleet containment held")
        true (Chaos.mc_fleet_passed r);
      match r with
      | Chaos.Mc_fleet_contained { mf_tier; _ } ->
        let want_tier =
          if point = "bolt.miscompile.jump_table" then `Shadow else `Validate
        in
        Alcotest.(check bool) (point ^ ": caught by the expected tier") true
          (mf_tier = want_tier)
      | _ -> Alcotest.fail (point ^ ": not contained"))
    [ "bolt.miscompile.drop_block"; "bolt.miscompile.jump_table" ]

(* ---- satellite: Guard quarantine survives a fleet restart ---- *)

(* The smallest code address each of [fid]'s symbol ranges starts at — a
   function BOLT relocated gains a range up in the BOLT text region, so an
   unchanged minimum start across a campaign means "not reordered". *)
let fid_ranges (proc : Proc.t) fid =
  Array.to_list proc.Proc.mem.Addr_space.sym_index
  |> List.filter_map (fun (r : Addr_space.sym_range) ->
         if r.Addr_space.sr_fid = fid then Some (r.Addr_space.sr_start, r.Addr_space.sr_end)
         else None)
  |> List.sort compare

let test_fleet_restart_carries_quarantine () =
  let base = Apps.tiny ~tx_limit:None () in
  let w =
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen
  in
  let fault = F.create ~seed:3 () in
  F.arm fault "bolt.miscompile.branch_polarity" (F.Nth 1);
  let ocfg = { O.default_config with O.fault = Some fault } in
  let fcfg =
    { Fleet.default_config with
      Fleet.daemon =
        { Daemon.default_config with
          Daemon.profile_s = 1.0;
          warmup_s = 0.5;
          min_interval_s = 2.0 };
      max_ipc_drop = 1.0;
      max_p99_rise = infinity }
  in
  let procs =
    Array.init 4 (fun i ->
        Workload.launch ~seed:(3 + i) w
          ~input:(Workload.find_input w (if i mod 2 = 0 then "a" else "b")))
  in
  let fleet = Fleet.create ~config:fcfg ~ocolos_config:ocfg procs in
  let step i =
    Array.iter (fun p -> Proc.run ~cycle_limit:infinity ~max_instrs:12_000 p) procs;
    float_of_int (i + 1)
  in
  let aborted = ref None in
  (try
     for i = 0 to 29 do
       let now_s = step i in
       match Fleet.tick fleet ~now_s with
       | Fleet.Campaign_aborted reason
         when String.starts_with ~prefix:"validation rejected" reason ->
         aborted := Some i;
         raise Exit
       | Fleet.Promoted _ -> Alcotest.fail "corrupted result promoted"
       | _ -> ()
     done
   with Exit -> ());
  let ticks = match !aborted with Some i -> i + 1 | None -> Alcotest.fail "never aborted" in
  let quarantined = Guard.quarantined (Fleet.guard fleet) in
  Alcotest.(check bool) "rejection quarantined the offender" true (quarantined <> []);
  let before = List.map (fun fid -> (fid, fid_ranges procs.(0) fid)) quarantined in
  (* Restart with the old guard, like an on-disk sidecar carried across. *)
  let fleet' =
    Supervisor.restart_fleet ~config:fcfg ~ocolos_config:ocfg
      ~guard:(Fleet.guard fleet) procs
  in
  Alcotest.(check (list int))
    "quarantine carried across the restart" quarantined
    (Guard.quarantined (Fleet.guard fleet'));
  (* The armed corruption is spent; the restarted fleet must re-BOLT
     without the quarantined functions and promote a valid layout. *)
  (match
     Supervisor.run_fleet_to_convergence fleet'
       ~step:(fun i -> step (ticks + i))
       ~max_ticks:40
   with
  | Supervisor.Converged_replaced { version; _ } ->
    Alcotest.(check int) "post-restart campaign promoted C1" 1 version
  | c -> Alcotest.fail ("restarted fleet did not promote: " ^ Supervisor.convergence_to_string c));
  Alcotest.(check bool) "fleet homogeneous" true (Fleet.converged fleet');
  List.iter
    (fun (fid, ranges) ->
      Alcotest.(check bool)
        (Fmt.str "quarantined f%d stayed excluded from the re-BOLT" fid)
        true
        (fid_ranges procs.(0) fid = ranges))
    before;
  Alcotest.(check (list int))
    "quarantine permanent after promotion" quarantined
    (Guard.quarantined (Fleet.guard fleet'))

(* ---- satellite: Perf2bolt.decimate edge cases ---- *)

let sample i =
  { Perf.s_tid = i; entries = [| { Lbr.from_addr = 100 + i; to_addr = 200 + i } |] }

let test_decimate_edges () =
  let samples = List.init 3 sample in
  (* Decimation stride exceeding the sample count: only the phase-aligned
     batch (if any) survives. *)
  Alcotest.(check int) "keep_every > count keeps the aligned batch" 1
    (List.length (Perf2bolt.decimate ~keep_every:5 ~phase:0 samples));
  Alcotest.(check int) "phase beyond the stream keeps nothing" 0
    (List.length (Perf2bolt.decimate ~keep_every:5 ~phase:4 samples));
  Alcotest.(check bool) "empty stream decimates to empty" true
    (Perf2bolt.decimate ~keep_every:7 ~phase:2 [] = []);
  (* Single-replica fleet: keep_every = 1 is the identity. *)
  Alcotest.(check bool) "keep_every = 1 is identity" true
    (Perf2bolt.decimate ~keep_every:1 ~phase:0 samples == samples);
  (* Phases partition the stream exactly. *)
  let all = List.init 7 sample in
  let parts = List.init 3 (fun phase -> Perf2bolt.decimate ~keep_every:3 ~phase all) in
  Alcotest.(check int) "phases partition the stream" (List.length all)
    (List.length (List.concat parts));
  (* Schedule validation. *)
  (match Perf2bolt.decimate ~keep_every:0 ~phase:0 samples with
  | _ -> Alcotest.fail "keep_every = 0 accepted"
  | exception Invalid_argument _ -> ());
  (match Perf2bolt.decimate ~keep_every:3 ~phase:3 samples with
  | _ -> Alcotest.fail "phase = keep_every accepted"
  | exception Invalid_argument _ -> ());
  match Perf2bolt.decimate ~keep_every:3 ~phase:(-1) samples with
  | _ -> Alcotest.fail "negative phase accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [ Alcotest.test_case "valid result passes Tier 1" `Quick test_valid_result_passes;
    Alcotest.test_case "Tier 1 catches each corruption mode" `Quick
      test_tier1_catches_corruptions;
    Alcotest.test_case "Tier 1 rejects across salts" `Quick test_tier1_rejects_across_salts;
    Alcotest.test_case "shadow matches a valid commit" `Quick
      test_shadow_match_on_valid_commit;
    Alcotest.test_case "shadow reverts the jump_table blind spot" `Quick
      test_jump_table_caught_by_shadow;
    Alcotest.test_case "miscompile chaos property" `Slow test_miscompile_chaos_property;
    Alcotest.test_case "miscompile chaos on other engines" `Slow
      test_miscompile_chaos_engines;
    Alcotest.test_case "miscompile fleet containment" `Slow test_miscompile_fleet;
    Alcotest.test_case "fleet restart carries quarantine" `Quick
      test_fleet_restart_carries_quarantine;
    Alcotest.test_case "decimate edge cases" `Quick test_decimate_edges ]
