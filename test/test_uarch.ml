(* Unit tests for the microarchitecture models: caches, TLB, BTB, branch
   prediction, the core cost model and TopDown attribution. *)

open Ocolos_uarch

let test_cache_hit_after_access () =
  let c = Cache.create ~name:"t" ~sets:4 ~ways:2 ~line_bytes:64 in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0x100);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0x100);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x13F);
  Alcotest.(check bool) "different line misses" false (Cache.access c 0x140)

let test_cache_lru_eviction () =
  (* 1 set, 2 ways: the least-recently-used line is evicted. *)
  let c = Cache.create ~name:"t" ~sets:1 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  ignore (Cache.access c 0x000);
  (* touch A so B is LRU *)
  ignore (Cache.access c 0x080);
  (* evicts B *)
  Alcotest.(check bool) "A still resident" true (Cache.probe c 0x000);
  Alcotest.(check bool) "B evicted" false (Cache.probe c 0x040);
  Alcotest.(check bool) "C resident" true (Cache.probe c 0x080)

let test_cache_counters_and_flush () =
  let c = Cache.of_size ~name:"t" ~size_bytes:512 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (Cache.miss_rate c);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.probe c 0);
  Alcotest.(check int) "counters reset" 0 (Cache.accesses c)

let test_cache_prefetch_no_counters () =
  let c = Cache.create ~name:"t" ~sets:4 ~ways:2 ~line_bytes:64 in
  ignore (Cache.prefetch c 0x200);
  Alcotest.(check int) "prefetch uncounted" 0 (Cache.accesses c);
  Alcotest.(check bool) "but resident" true (Cache.probe c 0x200)

let test_cache_prefetch_hit_preserves_recency () =
  (* A prefetch of a resident line must leave recency (and the LRU clock)
     untouched: promoting it would let prefetch-hits reorder demand
     evictions. A, then B (A becomes LRU); a prefetch-hit on A must not
     save A from the next demand eviction. *)
  let c = Cache.create ~name:"t" ~sets:1 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  Alcotest.(check bool) "prefetch reports resident" true (Cache.prefetch c 0x000);
  ignore (Cache.access c 0x080);
  Alcotest.(check bool) "prefetch-hit line still LRU, evicted" false (Cache.probe c 0x000);
  Alcotest.(check bool) "younger demand line survives" true (Cache.probe c 0x040);
  (* A prefetch *fill* does become MRU, like a demand fill. *)
  let c = Cache.create ~name:"t" ~sets:1 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c 0x000);
  Alcotest.(check bool) "prefetch fill" false (Cache.prefetch c 0x040);
  ignore (Cache.access c 0x080);
  Alcotest.(check bool) "prefetched line MRU, survives" true (Cache.probe c 0x040);
  Alcotest.(check bool) "older demand line evicted" false (Cache.probe c 0x000)

let test_cache_of_size_rejects_inexact () =
  let rejects ~size_bytes ~ways ~line_bytes =
    match Cache.of_size ~name:"t" ~size_bytes ~ways ~line_bytes with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "size not a multiple of line" true
    (rejects ~size_bytes:1000 ~ways:2 ~line_bytes:64);
  Alcotest.(check bool) "lines not a multiple of ways" true
    (rejects ~size_bytes:(3 * 64) ~ways:2 ~line_bytes:64);
  Alcotest.(check bool) "derived sets not a power of two" true
    (rejects ~size_bytes:(6 * 64) ~ways:2 ~line_bytes:64);
  Alcotest.(check bool) "zero size" true (rejects ~size_bytes:0 ~ways:2 ~line_bytes:64);
  Alcotest.(check bool) "exact geometry accepted" false
    (rejects ~size_bytes:(8 * 64) ~ways:2 ~line_bytes:64)

let test_cache_sizing () =
  let c = Cache.of_size ~name:"t" ~size_bytes:32768 ~ways:8 ~line_bytes:64 in
  Alcotest.(check int) "32k" 32768 (Cache.size_bytes c)

let test_cache_invalid_args () =
  Alcotest.(check bool) "non-pow2 sets rejected" true
    (match Cache.create ~name:"t" ~sets:3 ~ways:1 ~line_bytes:64 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_btb () =
  let b = Btb.create ~entries:16 ~ways:2 in
  Alcotest.(check (option int)) "cold miss" None (Btb.lookup b 0x10);
  Btb.update b 0x10 0x99;
  Alcotest.(check (option int)) "hit after update" (Some 0x99) (Btb.lookup b 0x10);
  Btb.update b 0x10 0x77;
  Alcotest.(check (option int)) "target updated" (Some 0x77) (Btb.lookup b 0x10);
  Alcotest.(check int) "lookups" 3 (Btb.lookups b);
  Alcotest.(check int) "misses" 1 (Btb.misses b)

let test_btb_capacity_pressure () =
  (* More taken branches than entries: old entries get evicted. *)
  let b = Btb.create ~entries:8 ~ways:2 in
  for i = 0 to 63 do
    Btb.update b (i * 4) i
  done;
  Btb.reset_counters b;
  let hits = ref 0 in
  for i = 0 to 63 do
    if Btb.lookup b (i * 4) <> None then incr hits
  done;
  Alcotest.(check bool) "only a fraction survives" true (!hits <= 8)

let test_btb_lookup_class_matches_lookup () =
  (* The allocation-free hot-path classifier agrees with [lookup] and moves
     the same counters. *)
  let b = Btb.create ~entries:16 ~ways:2 in
  Alcotest.(check int) "cold miss is 0" 0 (Btb.lookup_class b 0x10 ~target:0x99);
  Btb.update b 0x10 0x99;
  Alcotest.(check int) "correct hit is 1" 1 (Btb.lookup_class b 0x10 ~target:0x99);
  Alcotest.(check int) "wrong-target hit is 2" 2 (Btb.lookup_class b 0x10 ~target:0x77);
  Alcotest.(check int) "lookups counted" 3 (Btb.lookups b);
  Alcotest.(check int) "misses counted" 1 (Btb.misses b);
  (* Same recency effect: a classify keeps the entry warm under pressure. *)
  let via_lookup = Btb.create ~entries:4 ~ways:2 and via_class = Btb.create ~entries:4 ~ways:2 in
  List.iter
    (fun b ->
      Btb.update b 0x10 1;
      Btb.update b 0x90 2)
    [ via_lookup; via_class ];
    (* both map to set 0 (entries/ways = 2 sets); touch 0x10, then insert a
       third entry — the untouched 0x90 must be the victim in both *)
  ignore (Btb.lookup via_lookup 0x10);
  ignore (Btb.lookup_class via_class 0x10 ~target:1);
  List.iter (fun b -> Btb.update b 0x110 3) [ via_lookup; via_class ];
  Alcotest.(check (option int)) "touched entry survives (lookup)" (Some 1)
    (Btb.lookup via_lookup 0x10);
  Alcotest.(check (option int)) "touched entry survives (class)" (Some 1)
    (Btb.lookup via_class 0x10)

let test_ras_pop_correct_matches_pop () =
  let r = Predictor.Ras.create ~size:4 () in
  Predictor.Ras.push r 1;
  Predictor.Ras.push r 2;
  Alcotest.(check bool) "correct prediction" true (Predictor.Ras.pop_correct r ~target:2);
  Alcotest.(check bool) "wrong prediction still pops" false
    (Predictor.Ras.pop_correct r ~target:42);
  Alcotest.(check bool) "empty stack predicts nothing" false
    (Predictor.Ras.pop_correct r ~target:1);
  (* State effects identical to [pop]: the wrong-target pop above consumed
     the entry for 1, so a fresh push/pop round-trips normally. *)
  Predictor.Ras.push r 9;
  Alcotest.(check (option int)) "stack still consistent" (Some 9) (Predictor.Ras.pop r)

let test_predictor_learns_bias () =
  let p = Predictor.create ~history_bits:8 () in
  for _ = 1 to 200 do
    ignore (Predictor.predict_and_update p 0x40 ~taken:true)
  done;
  Alcotest.(check bool) "predicts taken" true (Predictor.predict p 0x40);
  Alcotest.(check bool) "low misprediction" true (Predictor.misprediction_rate p < 0.1)

let test_predictor_learns_pattern () =
  (* Alternating T/N is learned through global history. *)
  let p = Predictor.create ~history_bits:8 () in
  let taken = ref false in
  for _ = 1 to 64 do
    taken := not !taken;
    ignore (Predictor.predict_and_update p 0x40 ~taken:!taken)
  done;
  Predictor.reset_counters p;
  for _ = 1 to 200 do
    taken := not !taken;
    ignore (Predictor.predict_and_update p 0x40 ~taken:!taken)
  done;
  Alcotest.(check bool) "pattern learned" true (Predictor.misprediction_rate p < 0.05)

let test_ras () =
  let r = Predictor.Ras.create ~size:4 () in
  Predictor.Ras.push r 1;
  Predictor.Ras.push r 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Predictor.Ras.pop r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Predictor.Ras.pop r);
  Alcotest.(check (option int)) "empty" None (Predictor.Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Predictor.Ras.create ~size:2 () in
  Predictor.Ras.push r 1;
  Predictor.Ras.push r 2;
  Predictor.Ras.push r 3;
  (* clobbers the oldest *)
  Alcotest.(check (option int)) "pop 3" (Some 3) (Predictor.Ras.pop r);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Predictor.Ras.pop r);
  Alcotest.(check (option int)) "oldest lost" None (Predictor.Ras.pop r)

let test_core_fetch_accounting () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.fetch core ~addr:0x1000 ~size:4;
  let c = Core.snapshot core in
  Alcotest.(check int) "one instr" 1 c.Counters.instructions;
  Alcotest.(check int) "one L1i access" 1 c.Counters.l1i_accesses;
  Alcotest.(check int) "one L1i miss" 1 c.Counters.l1i_misses;
  Alcotest.(check bool) "cycles > 0" true (c.Counters.cycles > 0.0);
  (* Same line again: no further L1i access. *)
  Core.fetch core ~addr:0x1004 ~size:4;
  let c = Core.snapshot core in
  Alcotest.(check int) "still one access" 1 c.Counters.l1i_accesses

let test_core_taken_branch_costs () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.fetch core ~addr:0x1000 ~size:4;
  let before = (Core.snapshot core).Counters.fe_cycles in
  Core.on_cond_branch core ~pc:0x1000 ~taken:true ~target:0x2000;
  let c = Core.snapshot core in
  Alcotest.(check int) "taken counted" 1 c.Counters.taken_branches;
  Alcotest.(check int) "cond counted" 1 c.Counters.cond_branches;
  Alcotest.(check bool) "fe charged" true (c.Counters.fe_cycles > before)

let test_core_not_taken_branch_free () =
  let core = Core.create ~cfg:Config.tiny () in
  (* Train the predictor so not-taken is predicted. *)
  for _ = 1 to 50 do
    Core.on_cond_branch core ~pc:0x1000 ~taken:false ~target:0x2000
  done;
  let before = (Core.snapshot core).Counters.fe_cycles in
  Core.on_cond_branch core ~pc:0x1000 ~taken:false ~target:0x2000;
  let c = Core.snapshot core in
  Alcotest.(check (float 1e-9)) "no fe cost" before c.Counters.fe_cycles;
  Alcotest.(check int) "no taken" 0 c.Counters.taken_branches

let test_core_ret_ras () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.on_call core ~pc:0x1000 ~target:0x2000 ~return_addr:0x1005 ~indirect:false;
  let before = (Core.snapshot core).Counters.mispredicts in
  Core.on_ret core ~pc:0x2000 ~target:0x1005;
  let c = Core.snapshot core in
  Alcotest.(check int) "ras predicted the return" before c.Counters.mispredicts;
  Core.on_ret core ~pc:0x2001 ~target:0x9999;
  let c = Core.snapshot core in
  Alcotest.(check int) "empty ras mispredicts" (before + 1) c.Counters.mispredicts

let test_core_mem_hierarchy () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.on_mem core ~addr:0x8000;
  let c1 = Core.snapshot core in
  Alcotest.(check int) "l1d miss" 1 c1.Counters.l1d_misses;
  Alcotest.(check bool) "be charged" true (c1.Counters.be_cycles > 0.0);
  Core.on_mem core ~addr:0x8000;
  let c2 = Core.snapshot core in
  Alcotest.(check int) "then hits" 1 c2.Counters.l1d_misses

let test_topdown_sums_to_one () =
  let core = Core.create ~cfg:Config.tiny () in
  for i = 0 to 999 do
    Core.fetch core ~addr:(0x1000 + (i * 64 mod 4096)) ~size:4;
    if i mod 7 = 0 then Core.on_cond_branch core ~pc:i ~taken:(i mod 2 = 0) ~target:(i * 3);
    if i mod 11 = 0 then Core.on_mem core ~addr:(i * 512)
  done;
  let td = Counters.topdown (Core.snapshot core) in
  let total =
    td.Counters.retiring +. td.Counters.frontend +. td.Counters.bad_speculation
    +. td.Counters.backend
  in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0 total

let test_counters_diff_add () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.fetch core ~addr:0 ~size:4;
  let a = Core.snapshot core in
  Core.fetch core ~addr:64 ~size:4;
  let b = Core.snapshot core in
  let d = Counters.diff b a in
  Alcotest.(check int) "one instr in interval" 1 d.Counters.instructions;
  let sum = Counters.add a d in
  Alcotest.(check int) "add inverts diff" b.Counters.instructions sum.Counters.instructions

let test_counters_mpki () =
  let c = { Counters.zero with Counters.instructions = 2000; l1i_misses = 5 } in
  Alcotest.(check (float 1e-9)) "mpki" 2.5 (Counters.l1i_mpki c)

let test_stall_categories () =
  let core = Core.create ~cfg:Config.tiny () in
  Core.stall core ~cycles:10.0 ~category:`Frontend;
  Core.stall core ~cycles:5.0 ~category:`Backend;
  Core.stall core ~cycles:2.0 ~category:`BadSpec;
  let c = Core.snapshot core in
  Alcotest.(check (float 1e-9)) "fe" 10.0 c.Counters.fe_cycles;
  Alcotest.(check (float 1e-9)) "be" 5.0 c.Counters.be_cycles;
  Alcotest.(check (float 1e-9)) "bs" 2.0 c.Counters.bs_cycles

(* The DRAM controller model: spread demand is serviced at the base
   interval; bursty demand pays the conflict interval (the mechanism behind
   the paper's scan inversion). *)
let test_dram_burst_model () =
  (* Minimal exact geometries (of_size rejects inexact ones): one or two
     sets per level, so the 4 KiB-stride accesses below all miss to DRAM. *)
  let cfg = { Config.tiny with Config.l1d_bytes = 128; l2_bytes = 128; l3_bytes = 256 } in
  let bursty = Core.create ~cfg () in
  (* Back-to-back distinct lines: everything misses to DRAM with tiny demand
     gaps -> queueing delays accumulate. *)
  for i = 0 to 99 do
    Core.on_mem bursty ~addr:(i * 4096)
  done;
  let spread = Core.create ~cfg () in
  for i = 0 to 99 do
    (* Insert compute time between misses so demand is spread. *)
    Core.stall spread ~cycles:(float_of_int cfg.Config.dram_burst_window +. 50.0)
      ~category:`Frontend;
    Core.on_mem spread ~addr:(i * 4096)
  done;
  let be_bursty = (Core.snapshot bursty).Counters.be_cycles in
  let be_spread = (Core.snapshot spread).Counters.be_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "bursty pays more (%.0f vs %.0f)" be_bursty be_spread)
    true (be_bursty > be_spread *. 1.5)

(* The next-line prefetcher: sequential fetch through a region bigger than
   the L1i misses far less than striding through the same bytes. *)
let test_next_line_prefetch_rewards_sequential () =
  let cfg = Config.broadwell in
  let seq = Core.create ~cfg () in
  for i = 0 to 2_000 do
    Core.fetch seq ~addr:(0x10000 + (i * 64)) ~size:4
  done;
  let strided = Core.create ~cfg () in
  for i = 0 to 2_000 do
    (* Same number of lines, but in a shuffled (non-sequential) order. *)
    Core.fetch strided ~addr:(0x10000 + (i * 7919 mod 2001 * 64)) ~size:4
  done;
  let m_seq = (Core.snapshot seq).Counters.l1i_misses in
  let m_str = (Core.snapshot strided).Counters.l1i_misses in
  Alcotest.(check bool)
    (Printf.sprintf "sequential %d << strided %d" m_seq m_str)
    true
    (m_seq * 4 < m_str)

let test_itlb_pressure () =
  let cfg = Config.broadwell in
  let core = Core.create ~cfg () in
  (* Touch more pages than the iTLB holds, twice: the second pass still
     misses. *)
  for pass = 1 to 2 do
    ignore pass;
    for p = 0 to (2 * cfg.Config.itlb_entries) - 1 do
      Core.fetch core ~addr:(p * cfg.Config.page_bytes) ~size:4
    done
  done;
  let c = Core.snapshot core in
  Alcotest.(check bool) "itlb misses accumulate" true
    (c.Counters.itlb_misses > 2 * cfg.Config.itlb_entries);
  (* A loop within one page stops missing. *)
  let core2 = Core.create ~cfg () in
  for _ = 1 to 100 do
    Core.fetch core2 ~addr:0x5000 ~size:4;
    (* Different line in the same page, to exercise the page check. *)
    Core.fetch core2 ~addr:0x5100 ~size:4
  done;
  Alcotest.(check int) "single-page loop misses once" 1
    (Core.snapshot core2).Counters.itlb_misses

let suite =
  [ Alcotest.test_case "cache hit after access" `Quick test_cache_hit_after_access;
    Alcotest.test_case "next-line prefetch rewards sequential" `Quick
      test_next_line_prefetch_rewards_sequential;
    Alcotest.test_case "itlb pressure" `Quick test_itlb_pressure;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache counters and flush" `Quick test_cache_counters_and_flush;
    Alcotest.test_case "cache prefetch silent" `Quick test_cache_prefetch_no_counters;
    Alcotest.test_case "cache prefetch-hit preserves recency" `Quick
      test_cache_prefetch_hit_preserves_recency;
    Alcotest.test_case "cache of_size rejects inexact geometry" `Quick
      test_cache_of_size_rejects_inexact;
    Alcotest.test_case "btb lookup_class matches lookup" `Quick
      test_btb_lookup_class_matches_lookup;
    Alcotest.test_case "ras pop_correct matches pop" `Quick test_ras_pop_correct_matches_pop;
    Alcotest.test_case "cache sizing" `Quick test_cache_sizing;
    Alcotest.test_case "cache invalid args" `Quick test_cache_invalid_args;
    Alcotest.test_case "btb basic" `Quick test_btb;
    Alcotest.test_case "btb capacity pressure" `Quick test_btb_capacity_pressure;
    Alcotest.test_case "predictor learns bias" `Quick test_predictor_learns_bias;
    Alcotest.test_case "predictor learns pattern" `Quick test_predictor_learns_pattern;
    Alcotest.test_case "ras" `Quick test_ras;
    Alcotest.test_case "ras overflow wraps" `Quick test_ras_overflow_wraps;
    Alcotest.test_case "core fetch accounting" `Quick test_core_fetch_accounting;
    Alcotest.test_case "core taken branch costs" `Quick test_core_taken_branch_costs;
    Alcotest.test_case "core not-taken branch free" `Quick test_core_not_taken_branch_free;
    Alcotest.test_case "core ret uses RAS" `Quick test_core_ret_ras;
    Alcotest.test_case "core memory hierarchy" `Quick test_core_mem_hierarchy;
    Alcotest.test_case "topdown sums to one" `Quick test_topdown_sums_to_one;
    Alcotest.test_case "counters diff/add" `Quick test_counters_diff_add;
    Alcotest.test_case "counters mpki" `Quick test_counters_mpki;
    Alcotest.test_case "stall categories" `Quick test_stall_categories;
    Alcotest.test_case "dram burst model" `Quick test_dram_burst_model ]
