(* Property tests for transactional code replacement (Txn) and the
   deterministic fault-injection registry (Fault).

   The load-bearing invariant: a fault firing at ANY named injection point,
   at ANY hit of that point, rolls the process back to an observably
   identical pre-replacement state — address space, symbol index, thread
   stacks, controller state — with zero dangling pointers into the aborted
   injection region, and subsequent execution (down to the exact taken-
   branch trace) is indistinguishable from a run that never attempted the
   replacement.

   The seeded sweep below exercises every injection point across both a
   first (C0 -> C1) and a continuous (C1 -> C2) round; hit indices are
   drawn per seed from the point's actual hit count, discovered by a probe
   transaction that faults at "commit" (the final cut, so every earlier
   point's counter is populated and the probe itself rolls back). Set
   OCOLOS_DEEP_TESTS=1 to widen the sweep. *)

open Ocolos_workloads
module O = Ocolos_core.Ocolos
module Txn = Ocolos_core.Txn
module F = Ocolos_util.Fault
module Rng = Ocolos_util.Rng
module Proc = Ocolos_proc.Proc
module Addr_space = Ocolos_proc.Addr_space
module Thread = Ocolos_proc.Thread

let deep = Sys.getenv_opt "OCOLOS_DEEP_TESTS" <> None
let seeds_per_point = if deep then 24 else 8

(* ---- fault registry unit properties ---- *)

let count_fires f point n =
  let fires = ref 0 in
  for _ = 1 to n do
    match F.cut f point with
    | () -> ()
    | exception F.Injected _ -> incr fires
  done;
  !fires

let test_fault_schedules () =
  let f = F.create ~seed:1 () in
  F.arm f "a" (F.Nth 3);
  Alcotest.(check int) "Nth fires exactly once" 1 (count_fires f "a" 10);
  Alcotest.(check int) "Nth hit recorded" 10 (F.hits f "a");
  F.arm f "b" (F.Every 4);
  Alcotest.(check int) "Every k fires n/k times" 3 (count_fires f "b" 12);
  F.arm f "c" F.Never;
  Alcotest.(check int) "Never never fires" 0 (count_fires f "c" 50);
  Alcotest.(check int) "unarmed points count hits" 0 (count_fires f "d" 5);
  Alcotest.(check int) "unarmed hits" 5 (F.hits f "d");
  F.reset f;
  Alcotest.(check int) "reset zeroes hits" 0 (F.hits f "a");
  Alcotest.(check int) "reset re-enables Nth" 1 (count_fires f "a" 10);
  F.disarm f "a";
  Alcotest.(check int) "disarmed point is quiet" 0 (count_fires f "a" 10);
  Alcotest.(check int) "total fired since reset" 1 (F.total_fired f)

let test_fault_prob_deterministic () =
  (* Identical seeds replay the identical firing pattern; a different seed
     gives a different (but still deterministic) one. *)
  let pattern seed =
    let f = F.create ~seed () in
    F.arm f "p" (F.Prob 0.3);
    List.init 200 (fun _ -> match F.cut f "p" with () -> false | exception F.Injected _ -> true)
  in
  Alcotest.(check (list bool)) "same seed, same pattern" (pattern 7) (pattern 7);
  Alcotest.(check bool) "different seed, different pattern" false (pattern 7 = pattern 8);
  let fires = List.length (List.filter (fun b -> b) (pattern 7)) in
  Alcotest.(check bool) "rate plausible" true (fires > 20 && fires < 120)

let test_fault_parse_arm () =
  let f = F.create () in
  Alcotest.(check (result string string)) "bare point" (Ok "pause") (F.parse_arm f "pause");
  Alcotest.(check (result string string)) "nth" (Ok "inject_code") (F.parse_arm f "inject_code:5");
  Alcotest.(check (result string string)) "every" (Ok "x") (F.parse_arm f "x:every:3");
  Alcotest.(check (result string string)) "prob" (Ok "y") (F.parse_arm f "y:p:0.25");
  (match F.parse_arm f "z:garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk spec accepted");
  (* The armed schedules actually behave as parsed. *)
  Alcotest.(check int) "parsed nth=5" 1 (count_fires f "inject_code" 9);
  Alcotest.(check int) "parsed every=3" 3 (count_fires f "x" 9);
  Alcotest.(check int) "parsed bare = nth 1" 1 (count_fires f "pause" 9)

(* ---- observable machine state, for exact rollback comparison ---- *)

type state = {
  st_code : (int * Ocolos_isa.Instr.t) list;
  st_data : (int * int) list;
  st_sym : Addr_space.sym_range list;
  st_code_bytes : int;
  st_map_base : int;
  st_threads : (int * (int * int) list * int list) list; (* pc, frames, regs *)
  st_version : int;
  st_paused : bool;
}

let capture (proc : Proc.t) oc =
  let mem = proc.Proc.mem in
  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  { st_code = sorted_bindings mem.Addr_space.code;
    st_data =
      Ocolos_util.Itbl.fold (fun k v acc -> (k, v) :: acc) mem.Addr_space.data []
      |> List.sort compare;
    st_sym = List.sort compare (Array.to_list mem.Addr_space.sym_index);
    st_code_bytes = mem.Addr_space.code_bytes;
    st_map_base = mem.Addr_space.next_map_base;
    st_threads =
      Array.to_list proc.Proc.threads
      |> List.map (fun (th : Thread.t) ->
             ( th.Thread.pc,
               List.init th.Thread.depth (fun i ->
                   let f = th.Thread.frames.(i) in
                   (f.Thread.ret_addr, f.Thread.callee_entry)),
               Array.to_list th.Thread.regs ));
    st_version = O.version oc;
    st_paused = proc.Proc.paused }

let check_restored ctx before after =
  let part what a b = Alcotest.(check bool) (ctx ^ ": " ^ what ^ " restored") true (a = b) in
  part "code map" before.st_code after.st_code;
  part "data memory" before.st_data after.st_data;
  part "symbol index" before.st_sym after.st_sym;
  part "code bytes" before.st_code_bytes after.st_code_bytes;
  part "mmap cursor" before.st_map_base after.st_map_base;
  part "thread pcs/stacks/regs" before.st_threads after.st_threads;
  part "controller version" before.st_version after.st_version;
  part "paused flag" before.st_paused after.st_paused

(* ---- the seeded sweep over every injection point ---- *)

let disarm_all fault =
  F.reset fault;
  List.iter (F.disarm fault) Txn.injection_points

let setup () =
  (* Build with jump tables so BOLT's output carries table data and the
     inject_data point is reachable. *)
  let base = Apps.tiny ~tx_limit:None () in
  let w =
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen
  in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let fault = F.create ~seed:11 () in
  (* Boundary-only frame maps: every mid-block PC then needs a compensation
     stub, so the osr_stub point is exercised by the sweep. *)
  let config =
    { O.default_config with
      O.fault = Some fault;
      O.bolt = { O.default_config.O.bolt with Ocolos_bolt.Bolt.exact_frame_maps = false } }
  in
  let oc = O.attach ~config proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:40_000 proc;
  (proc, oc, fault)

let profile_and_bolt proc oc =
  O.start_profiling oc;
  Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  result

(* Per-point hit counts for a full round, discovered without committing:
   fault at "commit", the final cut, so every earlier counter fills in and
   the probe rolls back. *)
let probe_hit_counts fault oc result =
  disarm_all fault;
  F.arm fault "commit" (F.Nth 1);
  (match Txn.replace_code oc result with
  | Txn.Rolled_back rb -> Alcotest.(check string) "probe faulted at commit" "commit" rb.Txn.rb_point
  | Txn.Committed _ -> Alcotest.fail "commit probe committed"
  | Txn.Diverged _ -> Alcotest.fail "commit probe diverged");
  let counts = List.map (fun p -> (p, F.hits fault p)) Txn.injection_points in
  disarm_all fault;
  counts

let aborted_region (result : Ocolos_bolt.Bolt.result) =
  [ ( result.Ocolos_bolt.Bolt.bolt_base,
      Ocolos_bolt.Bolt.sections_end result.Ocolos_bolt.Bolt.new_text ) ]

(* For every reachable point and [seeds_per_point] seeds each, fault at a
   seed-chosen hit and require an exact rollback. Returns the number of
   attempts made. *)
let sweep_round ~tag proc oc fault result =
  let counts = probe_hit_counts fault oc result in
  let attempts = ref 0 in
  List.iter
    (fun (point, hits) ->
      if hits > 0 then
        for s = 1 to seeds_per_point do
          let rng = Rng.create (Hashtbl.hash (tag, point, s)) in
          let nth = 1 + Rng.int rng hits in
          let ctx = Printf.sprintf "%s %s:%d (seed %d)" tag point nth s in
          disarm_all fault;
          F.arm fault point (F.Nth nth);
          let before = capture proc oc in
          (match Txn.replace_code oc result with
          | Txn.Rolled_back rb ->
            Alcotest.(check string) (ctx ^ ": faulted point") point rb.Txn.rb_point;
            Alcotest.(check int) (ctx ^ ": faulted hit") nth rb.Txn.rb_hit
          | Txn.Committed _ -> Alcotest.fail (ctx ^ ": committed despite armed fault")
          | Txn.Diverged _ -> Alcotest.fail (ctx ^ ": diverged despite armed fault"));
          incr attempts;
          check_restored ctx before (capture proc oc);
          (* Zero dangling pointers into the aborted injection region. *)
          O.verify_no_dangling oc ~freed:(aborted_region result);
          Alcotest.(check bool) (ctx ^ ": journal closed") false
            (Addr_space.journaling proc.Proc.mem)
        done)
    counts;
  (counts, !attempts)

let test_rollback_every_point_every_seed () =
  let proc, oc, fault = setup () in
  (* Every round retires the re-emitted functions' old text (round 1 dooms
     their C0 ranges), so the OSR points (osr_frame per paused thread,
     osr_map per doomed-pointer resolution, osr_stub per compensation-stub
     build), gc_unmap and verify are reachable from round 1; gc_reap needs
     an earlier round's residue to go dead, so rounds 2-3 cover it. After
     each sweep the same swept state must still commit cleanly — that is
     the commit-fully half of the invariant. *)
  let total_attempts = ref 0 in
  let reached = Hashtbl.create 16 in
  for round = 1 to 3 do
    let result = profile_and_bolt proc oc in
    let counts, attempts = sweep_round ~tag:(Printf.sprintf "r%d" round) proc oc fault result in
    total_attempts := !total_attempts + attempts;
    List.iter (fun (p, h) -> if h > 0 then Hashtbl.replace reached p ()) counts;
    disarm_all fault;
    (match Txn.replace_code oc result with
    | Txn.Committed stats ->
      Alcotest.(check int) (Printf.sprintf "committed C%d after sweep" round) round
        stats.O.version
    | Txn.Rolled_back _ -> Alcotest.fail "unarmed commit rolled back"
    | Txn.Diverged _ -> Alcotest.fail "unarmed commit diverged");
    Proc.run ~cycle_limit:infinity ~max_instrs:80_000 proc
  done;
  (* Every named injection point must be reachable somewhere in the sweep —
     otherwise it silently proves nothing about that point. *)
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " reachable in sweep") true (Hashtbl.mem reached p))
    Txn.injection_points;
  Alcotest.(check bool)
    (Printf.sprintf "sweep covered >= 100 seeded attempts (got %d)" !total_attempts)
    true (!total_attempts >= 100);
  Alcotest.(check bool) "process alive after sweep" true (Proc.runnable proc)

(* ---- execution-trace equivalence after rollback ---- *)

let record_branches (proc : Proc.t) =
  let buf = ref [] in
  proc.Proc.hooks.Proc.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        ignore cycles;
        buf := (tid, from_addr, to_addr, kind) :: !buf);
  buf

(* Run tiny to completion with [rounds_before] committed replacements, then
   (optionally) one rolled-back attempt at [point], then record the full
   taken-branch trace to termination. With rollback being exact, the
   attempt side must match the no-attempt side branch for branch —
   under every execution engine. Boundary-only frame maps keep the
   compensation-stub path hot in continuous rounds. *)
let traced_run ?(engine = `Blocks) ~rounds_before ~point () =
  let w = Apps.tiny ~tx_limit:(Some 300) () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let fault = F.create ~seed:3 () in
  let config =
    { O.default_config with
      O.fault = Some fault;
      O.bolt = { O.default_config.O.bolt with Ocolos_bolt.Bolt.exact_frame_maps = false } }
  in
  let oc = O.attach ~config proc in
  let run n = Proc.run ~engine ~cycle_limit:infinity ~max_instrs:n proc in
  run 40_000;
  let profile_and_bolt () =
    O.start_profiling oc;
    run 60_000;
    let profile, _ = O.stop_profiling oc in
    let result, _ = O.run_bolt oc profile in
    result
  in
  for _ = 1 to rounds_before do
    let r = profile_and_bolt () in
    (match Txn.replace_code oc r with
    | Txn.Committed _ -> ()
    | Txn.Rolled_back _ -> Alcotest.fail "setup round rolled back"
    | Txn.Diverged _ -> Alcotest.fail "setup round diverged");
    run 60_000
  done;
  let result = profile_and_bolt () in
  (match point with
  | None -> ()
  | Some (p, nth) -> (
    disarm_all fault;
    F.arm fault p (F.Nth nth);
    match Txn.replace_code oc result with
    | Txn.Rolled_back rb -> Alcotest.(check string) "attempt faulted where armed" p rb.Txn.rb_point
    | Txn.Committed _ -> Alcotest.fail "traced attempt committed"
    | Txn.Diverged _ -> Alcotest.fail "traced attempt diverged"));
  let trace = record_branches proc in
  Proc.run ~engine ~cycle_limit:infinity ~max_instrs:100_000_000 proc;
  (List.rev !trace, Workload.checksums proc, Proc.transactions proc)

let check_traces_equal ctx (trace_a, sums_a, tx_a) (trace_r, sums_r, tx_r) =
  Alcotest.(check (list int)) (ctx ^ ": checksums") sums_r sums_a;
  Alcotest.(check int) (ctx ^ ": transactions") tx_r tx_a;
  Alcotest.(check int) (ctx ^ ": trace length") (List.length trace_r) (List.length trace_a);
  Alcotest.(check bool) (ctx ^ ": traces nonempty") true (trace_r <> []);
  Alcotest.(check bool) (ctx ^ ": taken-branch traces identical") true (trace_a = trace_r)

let test_trace_identical_after_first_round_rollback () =
  let reference = traced_run ~rounds_before:0 ~point:None () in
  List.iter
    (fun (p, nth) ->
      check_traces_equal
        (Printf.sprintf "rollback at %s:%d" p nth)
        (traced_run ~rounds_before:0 ~point:(Some (p, nth)) ())
        reference)
    [ ("pause", 1); ("inject_code", 17); ("vtable_patch", 2); ("commit", 1) ]

(* The OSR fault points — kill mid-frame-rewrite (osr_frame), map-lookup
   miss path (osr_map), compensation-stub failure (osr_stub) — swept under
   all three execution engines: after the rollback, the surviving version's
   taken-branch trace must be byte-identical to a run that never attempted
   the replacement. *)
let test_trace_identical_after_continuous_rollback () =
  List.iter
    (fun (ename, engine) ->
      let reference = traced_run ~engine ~rounds_before:1 ~point:None () in
      List.iter
        (fun (p, nth) ->
          check_traces_equal
            (Printf.sprintf "%s: continuous rollback at %s:%d" ename p nth)
            (traced_run ~engine ~rounds_before:1 ~point:(Some (p, nth)) ())
            reference)
        [ ("osr_frame", 1); ("osr_map", 1); ("osr_stub", 1); ("gc_unmap", 5); ("verify", 1) ])
    [ ("reference", `Reference); ("blocks", `Blocks); ("traces", `Traces) ]

(* ---- trace-cache severing on rollback (`Traces engine) ---- *)

(* Chain links, inline caches and superblocks must be severed by the journal
   replay of a rolled-back replacement, not only by a commit: a stale
   chained exit surviving a rollback is a jump into freed text — the exact
   bug class OCOLOS's bolt.org.text exists to prevent. Drive the whole
   round under `Traces so the trace cache is hot (and chained) inside the
   text the transaction rewrites, roll back at several points, and require
   the swept cache to validate after every replay: no dead node, no
   dangling link, no stale superblock. The rollback itself must reach the
   watcher feed — the trace cache's invalidation count has to grow. *)
let test_traces_cache_severed_on_rollback () =
  let base = Apps.tiny ~tx_limit:None () in
  let w =
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen
  in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let fault = F.create ~seed:11 () in
  let oc = O.attach ~config:{ O.default_config with O.fault = Some fault } proc in
  let run n = Proc.run ~engine:`Traces ~cycle_limit:infinity ~max_instrs:n proc in
  let invalidations () =
    match Proc.trace_cache_stats proc with
    | Some s -> s.Ocolos_proc.Superblock.invalidations
    | None -> Alcotest.fail "no trace cache under `Traces"
  in
  run 40_000;
  let points_per_round =
    [ [ ("pause", 1); ("inject_code", 5); ("vtable_patch", 2); ("commit", 1) ];
      [ ("osr_frame", 1); ("osr_map", 1); ("verify", 1) ] ]
  in
  List.iteri
    (fun i points ->
      let round = i + 1 in
      O.start_profiling oc;
      run 60_000;
      let profile, _ = O.stop_profiling oc in
      let result, _ = O.run_bolt oc profile in
      List.iter
        (fun (point, nth) ->
          let ctx = Printf.sprintf "r%d %s:%d" round point nth in
          disarm_all fault;
          F.arm fault point (F.Nth nth);
          let inv_before = invalidations () in
          (match Txn.replace_code oc result with
          | Txn.Rolled_back rb ->
            Alcotest.(check string) (ctx ^ ": faulted point") point rb.Txn.rb_point
          | Txn.Committed _ -> Alcotest.fail (ctx ^ ": committed despite armed fault")
          | Txn.Diverged _ -> Alcotest.fail (ctx ^ ": diverged despite armed fault"));
          Alcotest.(check bool) (ctx ^ ": trace cache valid after journal replay") true
            (Proc.validate_code_cache proc);
          (* Injection points before live-text patching replay only writes
             to fresh text the cache never executed; by "commit" the replay
             covers the call-site patches in hot C0 code, so the watcher
             feed must have fired. *)
          if point = "commit" then
            Alcotest.(check bool) (ctx ^ ": rollback reached the invalidation feed") true
              (invalidations () > inv_before);
          (* Keep executing through whatever survived: any stale chained
             exit would now jump into the aborted region. *)
          run 10_000;
          Alcotest.(check bool) (ctx ^ ": cache still valid after re-execution") true
            (Proc.validate_code_cache proc))
        points;
      disarm_all fault;
      (match Txn.replace_code oc result with
      | Txn.Committed stats ->
        Alcotest.(check int) (Printf.sprintf "committed C%d after severing sweep" round)
          round stats.O.version
      | Txn.Rolled_back _ -> Alcotest.fail "unarmed commit rolled back"
    | Txn.Diverged _ -> Alcotest.fail "unarmed commit diverged");
      Alcotest.(check bool)
        (Printf.sprintf "r%d: trace cache valid after commit" round)
        true (Proc.validate_code_cache proc);
      run 40_000)
    points_per_round;
  Alcotest.(check bool) "process alive after severing sweep" true (Proc.runnable proc)

(* ---- journal/transaction plumbing ---- *)

let test_journal_nesting_rejected () =
  let proc, _, _ = setup () in
  let mem = proc.Proc.mem in
  Addr_space.begin_journal mem;
  Alcotest.check_raises "nested journal"
    (Invalid_argument "Addr_space.begin_journal: journal already open") (fun () ->
      Addr_space.begin_journal mem);
  ignore (Addr_space.commit_journal mem);
  Alcotest.(check bool) "closed after commit" false (Addr_space.journaling mem)

let test_non_fault_exception_rolls_back_and_reraises () =
  (* A foreign exception mid-replacement must also roll back, then
     propagate. Injected faults become outcomes; anything else re-raises. *)
  let proc, oc, fault = setup () in
  let result = profile_and_bolt proc oc in
  let before = capture proc oc in
  disarm_all fault;
  (* An Every schedule with a huge k never fires, but Prob 1.0 always
     does — use it to reach the handler, then check the re-raise path with
     a deliberately poisoned call. *)
  F.arm fault "sym_index" (F.Prob 1.0);
  (match Txn.replace_code oc result with
  | Txn.Rolled_back rb -> Alcotest.(check string) "prob fault handled" "sym_index" rb.Txn.rb_point
  | Txn.Committed _ -> Alcotest.fail "prob fault did not fire"
  | Txn.Diverged _ -> Alcotest.fail "prob probe diverged");
  check_restored "prob rollback" before (capture proc oc);
  disarm_all fault;
  (* The journal honours plain rollback outside Txn too. *)
  let mem = proc.Proc.mem in
  Addr_space.begin_journal mem;
  Addr_space.write_code mem 0x9999_0000 (Ocolos_isa.Instr.Nop);
  Alcotest.(check bool) "mutation applied" true
    (Addr_space.read_code mem 0x9999_0000 <> None);
  let undone = Addr_space.rollback_journal mem in
  Alcotest.(check int) "one mutation undone" 1 undone;
  Alcotest.(check bool) "mutation reverted" true (Addr_space.read_code mem 0x9999_0000 = None);
  (* The state is still transactionally sound: a clean commit succeeds. *)
  (match Txn.replace_code oc result with
  | Txn.Committed stats -> Alcotest.(check int) "clean commit after rollbacks" 1 stats.O.version
  | Txn.Rolled_back _ -> Alcotest.fail "clean commit rolled back"
  | Txn.Diverged _ -> Alcotest.fail "clean commit diverged")

let suite =
  [ Alcotest.test_case "fault schedules" `Quick test_fault_schedules;
    Alcotest.test_case "fault prob deterministic" `Quick test_fault_prob_deterministic;
    Alcotest.test_case "fault CLI spec parsing" `Quick test_fault_parse_arm;
    Alcotest.test_case "rollback exact at every point, seeded sweep" `Quick
      test_rollback_every_point_every_seed;
    Alcotest.test_case "trace identical after first-round rollback" `Quick
      test_trace_identical_after_first_round_rollback;
    Alcotest.test_case "trace identical after continuous rollback" `Slow
      test_trace_identical_after_continuous_rollback;
    Alcotest.test_case "trace cache severed on rollback (`Traces)" `Quick
      test_traces_cache_severed_on_rollback;
    Alcotest.test_case "journal nesting rejected" `Quick test_journal_nesting_rejected;
    Alcotest.test_case "foreign faults roll back too" `Quick
      test_non_fault_exception_rolls_back_and_reraises ]
