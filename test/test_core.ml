(* Tests for OCOLOS itself: attach, replacement mechanics, the
   function-pointer invariant, stack-live patching, continuous optimization
   and garbage collection. *)

open Ocolos_workloads
module O = Ocolos_core.Ocolos

let setup ?(tx_limit = None) ?(input = "a") () =
  let w = Apps.tiny ~tx_limit () in
  let inp = Workload.find_input w input in
  let proc = Workload.launch w ~input:inp in
  (w, proc)

let optimize_once ?(profile_cycles = 150_000.0) proc oc =
  O.start_profiling oc;
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. profile_cycles) proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  (result, O.replace_code oc result)

let test_attach_parses_sites () =
  let w, proc = setup () in
  let oc = O.attach proc in
  ignore oc;
  (* fp hook installed *)
  Alcotest.(check bool) "fp hook installed" true
    (proc.Ocolos_proc.Proc.hooks.translate_fp <> None);
  Alcotest.(check int) "version 0" 0 (O.version oc);
  Alcotest.(check bool) "current = original" true (O.current_binary oc == w.Workload.binary)

let test_replacement_patches_vtables () =
  let w, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let result, stats = optimize_once proc oc in
  Alcotest.(check int) "version 1" 1 stats.O.version;
  Alcotest.(check bool) "vtables patched" true (stats.O.vtable_entries_patched > 0);
  Alcotest.(check bool) "pause modeled" true (stats.O.pause_seconds > 0.0);
  (* Patched v-table slots point into the injected region. *)
  let base = result.Ocolos_bolt.Bolt.bolt_base in
  let hot = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace hot f ()) result.Ocolos_bolt.Bolt.hot_fids;
  Array.iteri
    (fun vid vt ->
      Array.iteri
        (fun slot fid_entry ->
          ignore fid_entry;
          let addr =
            Ocolos_proc.Addr_space.vtable_base proc.Ocolos_proc.Proc.mem vid + slot
          in
          let v = Ocolos_proc.Addr_space.read_data proc.Ocolos_proc.Proc.mem addr in
          let fid =
            (* slot order = original vtable fid *)
            w.Workload.program.Ocolos_isa.Ir.vtables.(vid).(slot)
          in
          if Hashtbl.mem hot fid then
            Alcotest.(check bool) "hot slot points to C1" true (v >= base)
          else Alcotest.(check bool) "cold slot stays C0" true (v < base))
        vt.Ocolos_binary.Binary.vt_entries)
    w.Workload.binary.Ocolos_binary.Binary.vtables

let test_fp_invariant () =
  (* After replacement, every function pointer created by the program must
     resolve to the function's live entry: with true OSR there is no pinned
     C0 version for pointers to lean on, so the creation hook has to track
     the resident text. *)
  let _, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let _ = optimize_once proc oc in
  (* Observe fp creations while running optimized code. *)
  let created = ref [] in
  let inner = proc.Ocolos_proc.Proc.hooks.translate_fp in
  proc.Ocolos_proc.Proc.hooks.translate_fp <-
    Some
      (fun addr ->
        let v = match inner with Some f -> f addr | None -> addr in
        created := v :: !created;
        v);
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. 100_000.0) proc;
  Alcotest.(check bool) "some fps created" true (List.length !created > 0);
  let live_entries = Hashtbl.create 64 in
  Array.iter
    (fun (s : Ocolos_binary.Binary.func_sym) ->
      Hashtbl.replace live_entries s.Ocolos_binary.Binary.fs_entry ())
    (O.current_binary oc).Ocolos_binary.Binary.symbols;
  List.iter
    (fun v ->
      Alcotest.(check bool) "fp is a live entry" true (Hashtbl.mem live_entries v);
      Alcotest.(check bool) "fp points at mapped code" true
        (Ocolos_proc.Addr_space.read_code proc.Ocolos_proc.Proc.mem v <> None))
    !created

let test_stack_live_detection () =
  let _, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let live = O.stack_live_fids oc in
  Alcotest.(check bool) "something live" true (Hashtbl.length live > 0);
  (* The main loop is always on every thread's stack (it is the PC owner or
     caller of everything). *)
  let w_main =
    (* entry function fid resolves from the binary entry *)
    match
      Ocolos_binary.Binary.func_of_addr proc.Ocolos_proc.Proc.binary
        proc.Ocolos_proc.Proc.binary.Ocolos_binary.Binary.entry
    with
    | Some s -> s.Ocolos_binary.Binary.fs_fid
    | None -> -1
  in
  Alcotest.(check bool) "main live" true (Hashtbl.mem live w_main)

let test_patch_all_ablation_patches_more () =
  let run_with patch_all =
    let _, proc = setup () in
    let config = { O.default_config with O.patch_all_direct_calls = patch_all } in
    let oc = O.attach ~config proc in
    Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
    let _, stats = optimize_once proc oc in
    stats.O.call_sites_patched
  in
  let live_only = run_with false and all = run_with true in
  (* Under true OSR any site still targeting retired text is force-patched
     in both modes (nothing may reference doomed code), so the ablation can
     only add sites in cold functions whose targets survived. *)
  Alcotest.(check bool)
    (Printf.sprintf "all (%d) >= stack-live (%d)" all live_only)
    true (all >= live_only);
  Alcotest.(check bool) "some sites patched" true (live_only > 0)

let test_semantics_preserved_under_replacement () =
  let w = Apps.tiny ~tx_limit:(Some 250) () in
  let input = Workload.find_input w "b" in
  let reference =
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
    Workload.checksums proc
  in
  let proc = Workload.launch w ~input in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:40_000 proc;
  O.start_profiling oc;
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  ignore (O.replace_code oc result);
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
  Alcotest.(check (list int)) "checksums equal" reference (Workload.checksums proc)

let test_continuous_gc_frees_old_version () =
  let _, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let r1, s1 = optimize_once proc oc in
  (* True OSR retires the C0 text of re-emitted functions in the very first
     round — no pinned original version survives a replacement. *)
  Alcotest.(check bool) "round 1 frees retired C0 text" true (s1.O.gc_bytes_freed > 0);
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. 100_000.0) proc;
  let r2, s2 = optimize_once proc oc in
  Alcotest.(check int) "version 2" 2 s2.O.version;
  Alcotest.(check bool) "old version freed" true (s2.O.gc_bytes_freed > 0);
  (* Every C1 range of a function re-optimized in round 2 must be unmapped
     (functions BOLT skipped in round 2 legitimately keep their C1 text). *)
  let re = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace re f ()) r2.Ocolos_bolt.Bolt.hot_fids;
  Array.iter
    (fun addr ->
      match Ocolos_binary.Binary.func_of_addr r1.Ocolos_bolt.Bolt.new_text addr with
      | Some s when Hashtbl.mem re s.Ocolos_binary.Binary.fs_fid ->
        Alcotest.(check bool) "re-optimized C1 unmapped" true
          (Ocolos_proc.Addr_space.read_code proc.Ocolos_proc.Proc.mem addr = None)
      | Some _ | None -> ())
    r1.Ocolos_bolt.Bolt.new_text.Ocolos_binary.Binary.code_order;
  (* And the process still runs. *)
  let tx_before = Ocolos_proc.Proc.transactions proc in
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. 100_000.0) proc;
  Alcotest.(check bool) "still making progress" true
    (Ocolos_proc.Proc.transactions proc > tx_before)

let test_continuous_copies_stack_live () =
  let _, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  ignore (optimize_once proc oc);
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. 100_000.0) proc;
  let _, s2 = optimize_once proc oc in
  (* Threads were executing C1 when paused, so their frames were migrated
     into C2 through the frame maps (not evacuated by copy). *)
  Alcotest.(check bool) "migrated stack-live frames" true (s2.O.frames_migrated > 0);
  (* Every thread PC must point at mapped code afterwards. *)
  Array.iter
    (fun (t : Ocolos_proc.Thread.t) ->
      Alcotest.(check bool) "pc mapped" true
        (Ocolos_proc.Addr_space.read_code proc.Ocolos_proc.Proc.mem t.Ocolos_proc.Thread.pc
        <> None))
    proc.Ocolos_proc.Proc.threads

let test_semantics_preserved_continuous () =
  let w = Apps.tiny ~tx_limit:(Some 400) () in
  let input = Workload.find_input w "a" in
  let reference =
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:100_000_000 proc;
    Workload.checksums proc
  in
  let proc = Workload.launch w ~input in
  let oc = O.attach proc in
  (* Three replacement rounds interleaved with execution. *)
  for _ = 1 to 3 do
    O.start_profiling oc;
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
    let profile, _ = O.stop_profiling oc in
    let result, _ = O.run_bolt oc profile in
    ignore (O.replace_code oc result)
  done;
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:100_000_000 proc;
  Alcotest.(check (list int)) "checksums equal after 3 rounds" reference
    (Workload.checksums proc)

let test_verify_gc_runs_clean () =
  (* verify_gc is on by default in these tests: reaching here without a
     Dangling_pointer exception across two rounds is itself the check; do a
     third round explicitly. *)
  let _, proc = setup () in
  let config = { O.default_config with O.verify_gc = true } in
  let oc = O.attach ~config proc in
  Ocolos_proc.Proc.run ~cycle_limit:40_000.0 proc;
  for _ = 1 to 3 do
    let from = Ocolos_proc.Proc.max_cycles proc in
    Ocolos_proc.Proc.run ~cycle_limit:(from +. 60_000.0) proc;
    ignore (optimize_once proc oc)
  done

let test_replacement_stats_shape () =
  let _, proc = setup () in
  let oc = O.attach proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let result, stats = optimize_once proc oc in
  Alcotest.(check int) "funcs optimized consistent"
    (List.length result.Ocolos_bolt.Bolt.hot_fids)
    stats.O.funcs_optimized;
  Alcotest.(check bool) "bytes injected" true (stats.O.code_bytes_injected > 0);
  Alcotest.(check bool) "stack live counted" true (stats.O.stack_live_funcs > 0)

(* The paper requires -fno-jump-tables for OCOLOS target binaries because
   LLVM-BOLT cannot update the jump-table constants it injects. Our BOLT
   substrate recovers jump tables from the data image and re-emits them with
   fresh table data, so OCOLOS here handles jump-table binaries too — a
   limitation the paper calls non-fundamental, lifted and tested. *)
let test_jump_table_binary_replacement () =
  let base = Apps.tiny ~tx_limit:(Some 200) () in
  let w =
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen
  in
  Alcotest.(check bool) "binary really has jump tables" true
    (Array.exists
       (fun addr ->
         match Ocolos_binary.Binary.find_instr w.Workload.binary addr with
         | Some (Ocolos_isa.Instr.JumpInd _) -> true
         | Some _ | None -> false)
       w.Workload.binary.Ocolos_binary.Binary.code_order);
  let input = Workload.find_input w "a" in
  let reference =
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
    Workload.checksums proc
  in
  let proc = Workload.launch w ~input in
  let oc = O.attach proc in
  O.start_profiling oc;
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:80_000 proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  let stats = O.replace_code oc result in
  Alcotest.(check bool) "optimized something" true (stats.O.funcs_optimized > 0);
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
  Alcotest.(check (list int)) "jump-table semantics preserved" reference
    (Workload.checksums proc)

let test_cost_model () =
  let c = Ocolos_core.Cost.default in
  Alcotest.(check bool) "perf2bolt monotone" true
    (Ocolos_core.Cost.perf2bolt_seconds c ~records:2000
    > Ocolos_core.Cost.perf2bolt_seconds c ~records:1000);
  Alcotest.(check bool) "pause has floor" true
    (Ocolos_core.Cost.pause_seconds c ~sites:0 ~bytes:0 > 0.0);
  Alcotest.(check bool) "bolt scales" true
    (Ocolos_core.Cost.bolt_seconds c ~work_instrs:0 = 0.0)

let suite =
  [ Alcotest.test_case "attach" `Quick test_attach_parses_sites;
    Alcotest.test_case "replacement patches vtables" `Quick test_replacement_patches_vtables;
    Alcotest.test_case "fp invariant" `Quick test_fp_invariant;
    Alcotest.test_case "stack-live detection" `Quick test_stack_live_detection;
    Alcotest.test_case "patch-all ablation" `Quick test_patch_all_ablation_patches_more;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved_under_replacement;
    Alcotest.test_case "continuous GC frees old" `Quick test_continuous_gc_frees_old_version;
    Alcotest.test_case "continuous OSR migrates stack-live" `Quick
      test_continuous_copies_stack_live;
    Alcotest.test_case "semantics preserved (continuous)" `Quick
      test_semantics_preserved_continuous;
    Alcotest.test_case "verify-gc clean over 3 rounds" `Quick test_verify_gc_runs_clean;
    Alcotest.test_case "replacement stats shape" `Quick test_replacement_stats_shape;
    Alcotest.test_case "jump-table binary replacement" `Slow test_jump_table_binary_replacement;
    Alcotest.test_case "cost model" `Quick test_cost_model ]
