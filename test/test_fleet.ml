(* Fleet orchestration tests: canary promotion and rollback state machines,
   mid-rollout daemon death + restart convergence, the 1-replica
   fleet-vs-daemon byte differential, the open-loop traffic model, and the
   chaos scenario-label regression. *)

open Ocolos_workloads
module Fleet = Ocolos_core.Fleet
module Daemon = Ocolos_core.Daemon
module Guard = Ocolos_core.Guard
module Ocolos = Ocolos_core.Ocolos
module Chaos = Ocolos_sim.Chaos
module Fault = Ocolos_util.Fault
module Proc = Ocolos_proc.Proc
module Counters = Ocolos_uarch.Counters
module Obs = Ocolos_obs

let daemon_config =
  { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 2.0 }

(* Instruction-budget driving gives the canary a verify window of only a few
   tens of thousands of instructions, so post-replacement cold-start (L1i /
   BTB warmup on the new layout) dominates its cohort IPC while the rest
   cohort's ratio floats up just from dropping profiling overhead. Widen the
   A/B guard so the state-machine tests exercise promotion rather than the
   cold-start artifact; the rollback test still trips it with its 5x
   synthetic regression. *)
let fleet_config =
  { Fleet.default_config with Fleet.daemon = daemon_config; Fleet.max_ipc_drop = 0.5 }

(* Heterogeneous fleet on the endless tiny workload: input "a" on even
   replicas, "b" on odd — the aggregated profile is a real cross-replica
   union, not N copies of one stream. *)
let launch_procs ?(n = 4) ?(seed = 5) () =
  let w = Apps.tiny ~tx_limit:None () in
  Array.init n (fun i ->
      Workload.launch ~seed:(seed + i) w
        ~input:(Workload.find_input w (if i mod 2 = 0 then "a" else "b")))

(* Instruction-budget driving (the chaos idiom): deterministic regardless
   of stalls; tick i is simulated second i+1. *)
let step procs i =
  Array.iter (fun p -> Proc.run ~cycle_limit:infinity ~max_instrs:12_000 p) procs;
  float_of_int (i + 1)

let drive fleet procs ~max_ticks ~until =
  let actions = ref [] in
  let rec loop i =
    if i >= max_ticks then None
    else begin
      let now_s = step procs i in
      let a = Fleet.tick fleet ~now_s in
      if a <> Fleet.Idle then actions := a :: !actions;
      if until a then Some a else loop (i + 1)
    end
  in
  let final = loop 0 in
  (List.rev !actions, final)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- canary state machine ---- *)

let test_canary_promotion () =
  let procs = launch_procs () in
  let fleet = Fleet.create ~config:fleet_config procs in
  let actions, final =
    drive fleet procs ~max_ticks:30 ~until:(function Fleet.Promoted _ -> true | _ -> false)
  in
  (match final with
  | Some (Fleet.Promoted { version = 1; replicas = 4 }) -> ()
  | Some a -> Alcotest.fail ("unexpected terminal action: " ^ Fleet.action_to_string a)
  | None -> Alcotest.fail "no promotion within the tick budget");
  (* ceil(0.25 * 4) = 1 canary, lowest replica ids first. *)
  (match
     List.find_opt (function Fleet.Canary_started _ -> true | _ -> false) actions
   with
  | Some (Fleet.Canary_started { version = 1; canaries = [ 0 ] }) -> ()
  | Some a -> Alcotest.fail ("bad canary stage: " ^ Fleet.action_to_string a)
  | _ -> Alcotest.fail "promotion without a canary stage");
  Alcotest.(check (list int)) "all replicas on C1" [ 1; 1; 1; 1 ] (Fleet.versions fleet);
  Alcotest.(check bool) "converged" true (Fleet.converged fleet);
  Alcotest.(check int) "one rollout" 1 (Fleet.rollouts fleet);
  Alcotest.(check int) "no rollbacks" 0 (Fleet.rollbacks fleet)

let test_canary_rollback () =
  (* canary_ipc_scale 0.2 makes the verify-window IPC read 5x too low: the
     guard threshold trips and the staged rollback must put every touched
     replica back on C0. *)
  let procs = launch_procs () in
  let fleet =
    Fleet.create ~config:{ fleet_config with Fleet.canary_ipc_scale = 0.2 } procs
  in
  let _, final =
    drive fleet procs ~max_ticks:30
      ~until:(function Fleet.Rolled_back _ -> true | _ -> false)
  in
  (match final with
  | Some (Fleet.Rolled_back { reason; reverted = [ 0 ] }) ->
    Alcotest.(check bool) "reason names the IPC regression" true (contains reason "IPC")
  | Some a -> Alcotest.fail ("unexpected terminal action: " ^ Fleet.action_to_string a)
  | None -> Alcotest.fail "no rollback within the tick budget");
  (* the verdict is recorded for post-mortems: the readout the CLI
     [explain] subcommand prints must name the same breached signal *)
  (match Fleet.last_readout fleet with
  | Some ro ->
    Alcotest.(check int) "readout names the candidate version" 1 ro.Fleet.ro_version;
    Alcotest.(check (list int)) "readout canary cohort" [ 0 ] ro.Fleet.ro_canary.Fleet.co_ids;
    (match ro.Fleet.ro_breach with
    | Some ("ipc", _) -> ()
    | Some (s, _) -> Alcotest.fail ("readout breached wrong signal: " ^ s)
    | None -> Alcotest.fail "rolled back but readout records no breach")
  | None -> Alcotest.fail "rollback left no readout behind");
  Alcotest.(check (list int)) "all replicas back on C0" [ 0; 0; 0; 0 ] (Fleet.versions fleet);
  Alcotest.(check bool) "converged" true (Fleet.converged fleet);
  Alcotest.(check int) "no rollouts" 0 (Fleet.rollouts fleet);
  Alcotest.(check int) "one rollback" 1 (Fleet.rollbacks fleet);
  Alcotest.(check int) "guard heard the failure" 1
    (Guard.consecutive_failures (Fleet.guard fleet))

(* ---- cohort A/B readout, hand-computed ---- *)

let test_cohort_readout_hand_computed () =
  (* 4-replica fleet: replica 0 is the canary, 1-3 the rest cohort.
     Counters are pre-summed per cohort (how [Fleet] builds them) and every
     derived rate below is computed by hand. *)
  let feq name expected got = Alcotest.(check (float 1e-9)) name expected got in
  let canary_base = { Counters.zero with Counters.instructions = 10_000; cycles = 8_000.0 } in
  let canary_verify =
    { Counters.zero with
      Counters.instructions = 20_000;
      cycles = 10_000.0;
      l1i_misses = 40;
      itlb_misses = 10;
      btb_misses = 100;
      taken_branches = 3_000 }
  in
  (* rest = sum over replicas 1-3: baseline 36k instrs / 30k cycles, verify
     72k / 36k. *)
  let rest_base = { Counters.zero with Counters.instructions = 36_000; cycles = 30_000.0 } in
  let rest_verify = { Counters.zero with Counters.instructions = 72_000; cycles = 36_000.0 } in
  let canary =
    Fleet.cohort_of ~ids:[ 0 ] ~baseline:canary_base ~verify:canary_verify ~p99:0.012
      ~base_p99:0.010 ()
  in
  let rest =
    Fleet.cohort_of ~ids:[ 1; 2; 3 ] ~baseline:rest_base ~verify:rest_verify ~p99:0.011
      ~base_p99:0.010 ()
  in
  (* canary: base IPC 10000/8000 = 1.25, verify IPC 20000/10000 = 2.0,
     ratio 1.6; MPKIs over the 20k verify instrs. *)
  feq "canary baseline IPC" 1.25 canary.Fleet.co_base_ipc;
  feq "canary verify IPC" 2.0 canary.Fleet.co_ipc;
  feq "canary IPC ratio" 1.6 canary.Fleet.co_ipc_ratio;
  feq "canary L1i MPKI" 2.0 canary.Fleet.co_l1i_mpki;
  feq "canary iTLB MPKI" 0.5 canary.Fleet.co_itlb_mpki;
  feq "canary BTB MPKI" 5.0 canary.Fleet.co_btb_mpki;
  feq "canary taken-branch PKI" 150.0 canary.Fleet.co_taken_pki;
  (* rest: 36000/30000 = 1.2 -> 72000/36000 = 2.0, ratio 5/3. *)
  feq "rest baseline IPC" 1.2 rest.Fleet.co_base_ipc;
  feq "rest IPC ratio" (2.0 /. 1.2) rest.Fleet.co_ipc_ratio;
  let config = { fleet_config with Fleet.max_ipc_drop = 0.1; Fleet.max_p99_rise = 0.5 } in
  (* difference-in-differences: guard = 0.9 * (5/3) = 1.5; the canary's 1.6
     clears it, and its p99 ratio 1.2 sits under 1.5 * 1.1 = 1.65. *)
  (match Fleet.judge config ~canary ~rest:(Some rest) with
  | None -> ()
  | Some (s, d) -> Alcotest.failf "clean readout breached %s: %s" s d);
  (* a 0.5 IPC scale (the --inject-regression knob) halves the canary's
     verify IPC: ratio 0.8 < 1.5 -> "ipc" breach. *)
  let injected =
    Fleet.cohort_of ~ids:[ 0 ] ~baseline:canary_base ~verify:canary_verify ~ipc_scale:0.5
      ~p99:0.012 ~base_p99:0.010 ()
  in
  feq "injected IPC ratio" 0.8 injected.Fleet.co_ipc_ratio;
  (match Fleet.judge config ~canary:injected ~rest:(Some rest) with
  | Some ("ipc", _) -> ()
  | Some (s, _) -> Alcotest.fail ("injected regression breached wrong signal: " ^ s)
  | None -> Alcotest.fail "injected IPC regression not caught");
  (* p99 side: canary ratio 0.020/0.010 = 2.0 > 1.5 * 1.1 -> "p99". *)
  let slow =
    Fleet.cohort_of ~ids:[ 0 ] ~baseline:canary_base ~verify:canary_verify ~p99:0.020
      ~base_p99:0.010 ()
  in
  (match Fleet.judge config ~canary:slow ~rest:(Some rest) with
  | Some ("p99", _) -> ()
  | Some (s, _) -> Alcotest.fail ("latency regression breached wrong signal: " ^ s)
  | None -> Alcotest.fail "p99 regression not caught");
  (* no rest cohort (1-replica fleet): the canary is judged against its own
     baseline — 2.0 vs 0.9 * 1.25 promotes, the halved 1.0 breaches. *)
  (match Fleet.judge config ~canary ~rest:None with
  | None -> ()
  | Some (s, d) -> Alcotest.failf "self-baseline verdict breached %s: %s" s d);
  (match Fleet.judge config ~canary:injected ~rest:None with
  | Some ("ipc", _) -> ()
  | _ -> Alcotest.fail "self-baseline regression not caught")

(* ---- mid-rollout death and restart ---- *)

let test_kill_mid_rollout_restart_converges () =
  (* One shared fault registry counts "commit" hits fleet-wide: hit 1 is
     the canary's commit, hit 2 the first promotion commit. Killing there
     strands a mixed C1/C0 fleet; the restart must revert the canary to C0
     and drive a fresh homogeneous campaign to a terminal outcome. *)
  match
    Chaos.fleet_scenario ~replicas:4 ~schedule:(Fault.Nth 2) ~seed:1 ~point:"commit" ()
  with
  | Chaos.Fleet_not_reached -> Alcotest.fail "commit hit 2 never fired"
  | Chaos.Fleet_verified o as r ->
    Alcotest.(check bool) "fleet was mixed at death" true o.Chaos.fo_mixed_at_death;
    Alcotest.(check bool) "reattach reverted the stranded canaries" true
      (o.Chaos.fo_reverted <> []);
    Alcotest.(check bool) "final fleet is homogeneous" true o.Chaos.fo_final_converged;
    if not (Chaos.fleet_passed r) then
      Alcotest.fail
        ("restart did not converge: "
        ^ Chaos.fleet_result_to_string ~seed:1 ~point:"commit" r)

let test_kill_before_canary_leaves_fleet_homogeneous () =
  (* Dying at the canary's own commit (hit 1) rolls that transaction back
     before the exception surfaces, so the fleet is never mixed at all. *)
  match Chaos.fleet_scenario ~replicas:3 ~seed:2 ~point:"commit" () with
  | Chaos.Fleet_not_reached -> Alcotest.fail "commit never fired"
  | Chaos.Fleet_verified o as r ->
    Alcotest.(check bool) "homogeneous at death" false o.Chaos.fo_mixed_at_death;
    Alcotest.(check (list int)) "nothing to revert on reattach" [] o.Chaos.fo_reverted;
    Alcotest.(check bool) "restart converges" true (Chaos.fleet_passed r)

(* ---- 1-replica differential: fleet == daemon, byte for byte ---- *)

(* The fleet path must be the single-process path plus strictly additive
   observability. Same seed, same instruction-budget schedule, finite
   workload: the taken-branch trace, checksums, transaction count and the
   Prometheus export — minus the ocolos_fleet_* / ocolos_daemon_* /
   ocolos_guard_* controller families, which name who was in charge — must
   be byte-identical between a 1-replica fleet and a plain daemon. *)
let differential_run mode =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.install reg;
  Fun.protect ~finally:(fun () -> Obs.Metrics.uninstall ()) @@ fun () ->
  let w = Apps.tiny ~tx_limit:(Some 1500) () in
  let proc = Workload.launch ~seed:3 w ~input:(Workload.find_input w "a") in
  let buf = ref [] in
  proc.Proc.hooks.Proc.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        ignore cycles;
        buf := (tid, from_addr, to_addr, kind) :: !buf);
  (* min_interval_s blocks any second campaign, so both controllers go
     quiet after the first replacement at exactly the same tick. *)
  let dcfg = { daemon_config with Daemon.min_interval_s = 1000.0 } in
  let version =
    match mode with
    | `Daemon ->
      let oc = Ocolos.attach proc in
      let d = Daemon.create ~config:dcfg oc proc in
      for i = 0 to 11 do
        ignore (Daemon.tick d ~now_s:(step [| proc |] i))
      done;
      Ocolos.version oc
    | `Fleet ->
      let fleet = Fleet.create ~config:{ fleet_config with Fleet.daemon = dcfg } [| proc |] in
      for i = 0 to 11 do
        ignore (Fleet.tick fleet ~now_s:(step [| proc |] i))
      done;
      (match Fleet.versions fleet with [ v ] -> v | _ -> -1)
  in
  Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
  ( version,
    List.rev !buf,
    Workload.checksums proc,
    Proc.transactions proc,
    Obs.Metrics.to_prometheus reg )

let filter_controller_families export =
  String.split_on_char '\n' export
  |> List.filter (fun line ->
         not
           (List.exists (contains line)
              [ "ocolos_fleet_"; "ocolos_daemon_"; "ocolos_guard_" ]))
  |> String.concat "\n"

let test_one_replica_fleet_differential () =
  let dv, dtrace, dsums, dtx, dexport = differential_run `Daemon in
  let fv, ftrace, fsums, ftx, fexport = differential_run `Fleet in
  Alcotest.(check int) "daemon replaced" 1 dv;
  Alcotest.(check int) "fleet replaced" 1 fv;
  Alcotest.(check bool) "taken-branch traces byte-identical" true (dtrace = ftrace);
  Alcotest.(check (list int)) "checksums identical" dsums fsums;
  Alcotest.(check int) "transactions identical" dtx ftx;
  Alcotest.(check string) "pipeline metrics byte-identical"
    (filter_controller_families dexport)
    (filter_controller_families fexport)

(* ---- open-loop generator ---- *)

let test_openloop_schedules_deterministic () =
  let a = Openloop.poisson ~rate:40.0 ~seed:9 ~until_s:10.0 in
  let b = Openloop.poisson ~rate:40.0 ~seed:9 ~until_s:10.0 in
  Alcotest.(check bool) "pure function of (rate, seed)" true (a = b);
  let short = Openloop.poisson ~rate:40.0 ~seed:9 ~until_s:5.0 in
  let prefix = List.filteri (fun i _ -> i < List.length short) a in
  Alcotest.(check bool) "shorter horizon is a prefix" true (short = prefix);
  Alcotest.(check bool) "all arrivals inside the horizon" true
    (List.for_all (fun t -> t >= 0.0 && t < 10.0) a);
  let rec ascending = function
    | x :: (y :: _ as rest) -> x < y && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending" true (ascending a);
  Alcotest.(check bool) "different seed, different schedule" true
    (a <> Openloop.poisson ~rate:40.0 ~seed:10 ~until_s:10.0);
  let u = Openloop.uniform ~rate:10.0 ~until_s:0.55 in
  Alcotest.(check int) "uniform count" 5 (List.length u);
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-12)) "uniform spacing" (float_of_int (i + 1) *. 0.1) t)
    u

let test_openloop_pause_queue_hand_computed () =
  (* 20 arrivals at 0.05, 0.15, ..., 1.95; the server retires one request
     per 0.1s slice, except a replacement pause covering (1.0, 1.5] (five
     slices of zero capacity) followed by a catch-up slice of capacity 6.
     Every number below is hand-computed from that schedule. *)
  let arrivals = List.init 20 (fun k -> 0.05 +. (0.1 *. float_of_int k)) in
  let ol = Openloop.create ~arrivals in
  Openloop.advance ol ~now_s:0.0 ~completed:0;
  let completed_at j =
    (* cumulative completions at the end of slice j (now = 0.1 * (j+1)) *)
    if j <= 9 then j + 1 else if j <= 14 then 10 else if j = 15 then 16 else j + 1
  in
  let peak = ref 0 in
  for j = 0 to 19 do
    let now_s = 0.1 *. float_of_int (j + 1) in
    Openloop.advance ol ~now_s ~completed:(completed_at j);
    peak := max !peak (Openloop.queue_depth ol ~now_s)
  done;
  Alcotest.(check int) "all requests eventually served" 20 (Openloop.matched ol);
  Alcotest.(check int) "queue peaked at 5 during the pause" 5 !peak;
  Alcotest.(check int) "queue drained" 0 (Openloop.queue_depth ol ~now_s:2.0);
  (* Latencies: 15 prompt requests at 0.05s; the five queued during the
     pause drain at t=1.6 with latencies 0.55, 0.45, 0.35, 0.25, 0.15. *)
  Alcotest.(check (float 1e-9)) "p50 is the prompt latency" 0.05 (Openloop.p50 ol);
  Alcotest.(check (float 1e-9)) "p99 is the head-of-queue latency" 0.55 (Openloop.p99 ol);
  Alcotest.(check (float 1e-9)) "max equals p99 here" 0.55 (Openloop.max_latency ol);
  let sorted = Openloop.latencies ol in
  Array.sort compare sorted;
  List.iteri
    (fun i expect ->
      Alcotest.(check (float 1e-9)) "queued latency" expect sorted.(19 - i))
    [ 0.55; 0.45; 0.35; 0.25; 0.15 ]

let test_openloop_pause_in_fleet_driver () =
  (* End to end: the driver charges replacement pause debt as stalls, so a
     rollout must leave a worse tail than the pre-rollout baseline shows.
     Weak-form check (p99 >= p50 > 0 and a queue actually formed) to stay
     robust across cost-model tuning. *)
  let report, _fleet = Ocolos_sim.Fleet_driver.run ~replicas:2 ~ticks:12 ~seed:2 () in
  Alcotest.(check bool) "rollout happened" true (report.Ocolos_sim.Fleet_driver.fd_rollouts >= 1);
  Alcotest.(check bool) "requests were served" true
    (List.for_all
       (fun r -> r.Ocolos_sim.Fleet_driver.fr_matched > 0)
       report.Ocolos_sim.Fleet_driver.fd_replicas);
  Alcotest.(check bool) "tail at or above median" true
    (report.Ocolos_sim.Fleet_driver.fd_fleet_p99
    >= report.Ocolos_sim.Fleet_driver.fd_fleet_p50);
  Alcotest.(check bool) "queues formed" true
    (List.exists
       (fun r -> r.Ocolos_sim.Fleet_driver.fr_queue_peak > 0)
       report.Ocolos_sim.Fleet_driver.fd_replicas)

(* ---- chaos scenario labels (regression) ---- *)

let test_chaos_scenario_label_names_domain () =
  (* Failing-scenario artifacts must be self-describing: the label carries
     the armed point's fault domain, not just the point name. *)
  let r = { Chaos.r_seed = 3; r_point = "perf.detach"; r_outcome = Chaos.Not_reached } in
  Alcotest.(check string) "dotted point: domain prefix" "seed3-perf-perf_detach"
    (Chaos.scenario_label r);
  let r2 = { r with Chaos.r_point = "commit" } in
  Alcotest.(check string) "undotted points live in the txn domain" "seed3-txn-commit"
    (Chaos.scenario_label r2);
  Alcotest.(check bool) "report line names the domain" true
    (contains (Chaos.result_to_string r) "perf ")

let suite =
  [ Alcotest.test_case "canary promotion widens to the fleet" `Slow test_canary_promotion;
    Alcotest.test_case "canary IPC regression rolls the stage back" `Slow
      test_canary_rollback;
    Alcotest.test_case "cohort A/B readout matches hand computation" `Quick
      test_cohort_readout_hand_computed;
    Alcotest.test_case "kill mid-rollout: mixed fleet recovers on restart" `Slow
      test_kill_mid_rollout_restart_converges;
    Alcotest.test_case "kill at canary commit: fleet never mixed" `Slow
      test_kill_before_canary_leaves_fleet_homogeneous;
    Alcotest.test_case "1-replica fleet == daemon, byte for byte" `Slow
      test_one_replica_fleet_differential;
    Alcotest.test_case "open-loop schedules are deterministic" `Quick
      test_openloop_schedules_deterministic;
    Alcotest.test_case "open-loop pause queue matches hand computation" `Quick
      test_openloop_pause_queue_hand_computed;
    Alcotest.test_case "fleet driver surfaces pauses as queues" `Slow
      test_openloop_pause_in_fleet_driver;
    Alcotest.test_case "chaos scenario label names the fault domain" `Quick
      test_chaos_scenario_label_names_domain ]
