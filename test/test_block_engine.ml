(* Tests for the decoded basic-block execution engine (Block_engine).

   The load-bearing property is engine equivalence: over random workloads
   and seeds — including runs that profile, BOLT and replace code mid-run,
   with injected faults rolling a replacement back — the block engine must
   be observably indistinguishable from the reference interpreter, down to
   bit-identical uarch counters, the exact taken-branch trace, and
   byte-identical Prometheus / Chrome-trace exports.

   The unit tests below that pin the cache mechanics themselves:
   decode/dispatch/invalidation accounting, precise invalidation on direct
   code-map writes, and the register-operand validation at
   [Addr_space.write_code] that lets the engine run the register file
   unchecked. *)

open Ocolos_isa
open Ocolos_workloads
module O = Ocolos_core.Ocolos
module Txn = Ocolos_core.Txn
module F = Ocolos_util.Fault
module Proc = Ocolos_proc.Proc
module Addr_space = Ocolos_proc.Addr_space
module Thread = Ocolos_proc.Thread
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Chrome = Ocolos_obs.Chrome

let deep = Sys.getenv_opt "OCOLOS_DEEP_TESTS" <> None

(* ---- engine differential: full OCOLOS scenario, both engines ---- *)

let record_branches (proc : Proc.t) =
  let buf = ref [] in
  proc.Proc.hooks.Proc.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        ignore cycles;
        buf := (tid, from_addr, to_addr, kind) :: !buf);
  buf

(* A small randomized workload: branchy bodies, calls, loops, some indirect
   dispatch — every instruction class the engine decodes. *)
let random_workload seed =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = 3;
      funcs_per_type = 6;
      shared_funcs = 30;
      cold_funcs = 40;
      parser_blocks = 24;
      blocks_per_func = (3, 6);
      body_instrs = (3, 8);
      calls_per_func = (1, 2) }
  in
  let inputs =
    [ Input.make ~name:"mix" ~mix:(Input.pure ~n_types:3 (seed mod 3))
        ~bias_seed:(100 + seed) () ]
  in
  Workload.build ~name:(Printf.sprintf "rand%d" seed) ~inputs ~nthreads:2
    (Gen.generate cfg)

(* One full scenario under [engine]: warm up, profile, BOLT, one replacement
   attempt rolled back by an injected fault, one committed replacement, then
   more execution — the taken-branch trace recorded throughout. Returns
   every observable the engines must agree on. *)
let scenario ~engine w =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  Trace.install tr;
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Metrics.uninstall ())
    (fun () ->
      let input = List.hd w.Workload.inputs in
      let proc = Workload.launch w ~input in
      let fault = F.create ~seed:3 () in
      let oc = O.attach ~config:{ O.default_config with O.fault = Some fault } proc in
      let trace = record_branches proc in
      let run n = Proc.run ~engine ~cycle_limit:infinity ~max_instrs:n proc in
      run 40_000;
      O.start_profiling oc;
      run 60_000;
      let profile, _ = O.stop_profiling oc in
      let result, _ = O.run_bolt oc profile in
      (* Attempt 1: armed fault mid-injection, exact rollback. *)
      F.arm fault "inject_code" (F.Nth 5);
      (match Txn.replace_code oc result with
      | Txn.Rolled_back rb ->
        Alcotest.(check string) "attempt faulted where armed" "inject_code" rb.Txn.rb_point
      | Txn.Committed _ -> Alcotest.fail "armed attempt committed"
      | Txn.Diverged _ -> Alcotest.fail "armed attempt diverged");
      F.disarm fault "inject_code";
      run 30_000;
      (* Attempt 2: clean commit, execution continues in the new layout. *)
      (match Txn.replace_code oc result with
      | Txn.Committed _ -> ()
      | Txn.Rolled_back _ -> Alcotest.fail "clean attempt rolled back"
      | Txn.Diverged _ -> Alcotest.fail "clean attempt diverged");
      run 80_000;
      ( proc.Proc.instret,
        Proc.total_counters proc,
        List.rev !trace,
        Workload.checksums proc,
        Chrome.to_string tr,
        Metrics.to_prometheus reg ))

let check_scenarios_equal ctx w =
  let i_r, c_r, t_r, s_r, chrome_r, prom_r = scenario ~engine:`Reference w in
  let check name (i_b, c_b, t_b, s_b, chrome_b, prom_b) =
    let ctx = ctx ^ "/" ^ name in
    Alcotest.(check int) (ctx ^ ": instret") i_r i_b;
    Alcotest.(check bool) (ctx ^ ": trace nonempty") true (t_r <> []);
    Alcotest.(check int) (ctx ^ ": trace length") (List.length t_r) (List.length t_b);
    Alcotest.(check bool) (ctx ^ ": taken-branch traces identical") true (t_r = t_b);
    Alcotest.(check (list int)) (ctx ^ ": checksums") s_r s_b;
    Alcotest.(check bool) (ctx ^ ": counters bit-identical") true (c_r = c_b);
    Alcotest.(check string) (ctx ^ ": chrome trace byte-identical") chrome_r chrome_b;
    Alcotest.(check string) (ctx ^ ": prometheus dump byte-identical") prom_r prom_b
  in
  check "blocks" (scenario ~engine:`Blocks w);
  check "traces" (scenario ~engine:`Traces w)

let test_differential_tiny () = check_scenarios_equal "tiny" (Apps.tiny ~tx_limit:None ())

let test_differential_random_seeds () =
  let seeds = if deep then [ 2; 3; 4; 5; 6; 7 ] else [ 2; 3; 5 ] in
  List.iter (fun s -> check_scenarios_equal (Printf.sprintf "seed %d" s) (random_workload s))
    seeds

(* ---- cache mechanics ---- *)

(* Emit and launch a one-function program from raw blocks (same helper shape
   as test_proc). *)
let launch_blocks ?(nthreads = 1) blocks =
  let main = { Ir.fid = 0; fname = "main"; blocks } in
  let p =
    { Ir.funcs = [| main |]; vtables = [||]; entry_fid = 0; globals_words = 8; global_init = [] }
  in
  Ir.validate p;
  let e = Ocolos_binary.Emit.emit_default ~name:"t" p in
  Proc.load ~nthreads e.Ocolos_binary.Emit.binary

let counter_loop =
  [| { Ir.bid = 0;
       body =
         [ Ir.Plain (Instr.Movi (1, 5));
           Ir.Plain (Instr.Alui (Instr.Add, 2, 2, 1)) ];
       term = Ir.Tjump 0 } |]

let test_stats_and_validate () =
  let proc = launch_blocks counter_loop in
  Proc.run ~engine:`Blocks ~cycle_limit:infinity ~max_instrs:1_000 proc;
  (match Proc.code_cache_stats proc with
  | None -> Alcotest.fail "no block cache after a `Blocks run"
  | Some s ->
    Alcotest.(check bool) "decoded at least one block" true (s.Ocolos_proc.Block_engine.decodes > 0);
    Alcotest.(check bool) "dispatches >= decodes" true
      (s.Ocolos_proc.Block_engine.dispatches >= s.Ocolos_proc.Block_engine.decodes);
    Alcotest.(check bool) "blocks resident" true (s.Ocolos_proc.Block_engine.resident > 0);
    Alcotest.(check int) "no invalidations yet" 0 s.Ocolos_proc.Block_engine.invalidations);
  Alcotest.(check bool) "cache coherent with code map" true (Proc.validate_code_cache proc)

let test_code_write_invalidates () =
  let proc = launch_blocks counter_loop in
  let entry = proc.Proc.threads.(0).Thread.pc in
  Proc.run ~engine:`Blocks ~cycle_limit:infinity ~max_instrs:100 proc;
  Alcotest.(check int) "old constant live" 5 proc.Proc.threads.(0).Thread.regs.(1);
  (* Patch the loop head in place; the cached decoded block must drop. *)
  Addr_space.write_code proc.Proc.mem entry (Instr.Movi (1, 7));
  Proc.run ~engine:`Blocks ~cycle_limit:infinity ~max_instrs:100 proc;
  Alcotest.(check int) "patched constant observed" 7 proc.Proc.threads.(0).Thread.regs.(1);
  (match Proc.code_cache_stats proc with
  | None -> Alcotest.fail "no block cache"
  | Some s ->
    Alcotest.(check bool) "write invalidated cached blocks" true
      (s.Ocolos_proc.Block_engine.invalidations > 0));
  Alcotest.(check bool) "cache coherent after patch" true (Proc.validate_code_cache proc)

let test_engines_interleave () =
  (* Switching engines mid-run stays coherent: same architectural state as
     either engine alone. *)
  let run engines =
    let proc = launch_blocks counter_loop in
    List.iter (fun e -> Proc.run ~engine:e ~cycle_limit:infinity ~max_instrs:500 proc) engines;
    (proc.Proc.instret, proc.Proc.threads.(0).Thread.regs.(2), Proc.total_counters proc)
  in
  let mixed = run [ `Blocks; `Traces; `Reference; `Blocks; `Traces; `Reference ] in
  let blocks_only = run [ `Blocks; `Blocks; `Blocks; `Blocks; `Blocks; `Blocks ] in
  let traces_only = run [ `Traces; `Traces; `Traces; `Traces; `Traces; `Traces ] in
  let reference_only =
    run [ `Reference; `Reference; `Reference; `Reference; `Reference; `Reference ]
  in
  Alcotest.(check bool) "mixed = blocks-only" true (mixed = blocks_only);
  Alcotest.(check bool) "mixed = traces-only" true (mixed = traces_only);
  Alcotest.(check bool) "mixed = reference-only" true (mixed = reference_only)

(* ---- span-aware invalidation (a write can overlay several blocks) ---- *)

(* 70 straight-line 4-byte instructions and a halt: [Predecode.decode] splits
   the run at [default_max_len] = 64 entries, so after one execution two
   cached blocks cover contiguous bytes. *)
let straight_70 =
  [| { Ir.bid = 0;
       body = List.init 70 (fun _ -> Ir.Plain (Instr.Alui (Instr.Add, 1, 1, 1)));
       term = Ir.Thalt } |]

let blocks_stats proc =
  match Proc.code_cache_stats proc with
  | Some s -> s
  | None -> Alcotest.fail "no block cache"

let traces_stats proc =
  match Proc.trace_cache_stats proc with
  | Some s -> s
  | None -> Alcotest.fail "no trace cache"

let test_write_spanning_blocks_invalidates_both () =
  let proc = launch_blocks straight_70 in
  let entry = proc.Proc.threads.(0).Thread.pc in
  Proc.run ~engine:`Blocks ~cycle_limit:infinity proc;
  Alcotest.(check int) "two blocks cached" 2 (blocks_stats proc).Ocolos_proc.Block_engine.resident;
  (* Overlay the tail of block 1 with a wider encoding: a 5-byte [Movi] over
     the 4-byte instruction at entry 63 clobbers the first byte of entry 64
     — the head of block 2. Both blocks must drop, not just the one keyed
     at the write address. *)
  let addr63 = entry + (63 * 4) in
  Addr_space.write_code proc.Proc.mem addr63 (Instr.Movi (1, 42));
  let s = blocks_stats proc in
  Alcotest.(check int) "both blocks invalidated" 2 s.Ocolos_proc.Block_engine.invalidations;
  Alcotest.(check int) "no stale block resident" 0 s.Ocolos_proc.Block_engine.resident;
  Alcotest.(check bool) "cache valid after overlay write" true (Proc.validate_code_cache proc)

let test_write_mid_instruction_invalidates () =
  let proc = launch_blocks straight_70 in
  let entry = proc.Proc.threads.(0).Thread.pc in
  Proc.run ~engine:`Blocks ~cycle_limit:infinity proc;
  (* A write landing *inside* an instruction of a cached block — not at any
     decoded entry address — must still invalidate the covering block. *)
  Addr_space.write_code proc.Proc.mem (entry + 1) Instr.Nop;
  let s = blocks_stats proc in
  Alcotest.(check int) "covering block invalidated" 1 s.Ocolos_proc.Block_engine.invalidations;
  Alcotest.(check int) "one block left" 1 s.Ocolos_proc.Block_engine.resident;
  Alcotest.(check bool) "cache valid after mid-instruction write" true
    (Proc.validate_code_cache proc)

let test_trace_cache_span_invalidation () =
  let proc = launch_blocks straight_70 in
  let entry = proc.Proc.threads.(0).Thread.pc in
  Proc.run ~engine:`Traces ~cycle_limit:infinity proc;
  Alcotest.(check int) "two nodes cached" 2 (traces_stats proc).Ocolos_proc.Superblock.resident;
  Addr_space.write_code proc.Proc.mem (entry + (63 * 4)) (Instr.Movi (1, 42));
  let s = traces_stats proc in
  Alcotest.(check int) "both nodes invalidated" 2 s.Ocolos_proc.Superblock.invalidations;
  Alcotest.(check int) "no stale node resident" 0 s.Ocolos_proc.Superblock.resident;
  Alcotest.(check bool) "trace cache valid after overlay write" true
    (Proc.validate_code_cache proc)

(* ---- resident accounting under overlapping blocks ---- *)

(* Decode two blocks that share bytes (the second starts at the second
   instruction of the first), then kill both with one write to a shared
   byte. The kill visits the shared bytes once per block, so any accounting
   that isn't idempotent per block drops the overlap twice and [resident]
   drifts from the true cache population. *)
let test_resident_accounting_overlapping_blocks () =
  List.iter
    (fun engine ->
      let proc = launch_blocks counter_loop in
      let entry = proc.Proc.threads.(0).Thread.pc in
      Proc.run ~engine ~cycle_limit:infinity ~max_instrs:50 proc;
      (* Force a mid-block entry: the Movi at [entry] is 5 bytes, so the
         block starting at the Alui below it overlaps the loop block. *)
      proc.Proc.threads.(0).Thread.pc <- entry + 5;
      Proc.run ~engine ~cycle_limit:infinity ~max_instrs:2 proc;
      let resident =
        match engine with
        | `Blocks -> (blocks_stats proc).Ocolos_proc.Block_engine.resident
        | `Traces -> (traces_stats proc).Ocolos_proc.Superblock.resident
        | `Reference -> assert false
      in
      Alcotest.(check int) "overlapping blocks both cached" 2 resident;
      (* One write to a byte both blocks cover kills both, each exactly once. *)
      Addr_space.write_code proc.Proc.mem (entry + 5) (Instr.Alui (Instr.Add, 2, 2, 1));
      let invalidations, resident =
        match engine with
        | `Blocks ->
          let s = blocks_stats proc in
          (s.Ocolos_proc.Block_engine.invalidations, s.Ocolos_proc.Block_engine.resident)
        | `Traces ->
          let s = traces_stats proc in
          (s.Ocolos_proc.Superblock.invalidations, s.Ocolos_proc.Superblock.resident)
        | `Reference -> assert false
      in
      Alcotest.(check int) "each block dropped exactly once" 2 invalidations;
      Alcotest.(check int) "resident matches live entries" 0 resident;
      Alcotest.(check bool) "cache valid after double-cover kill" true
        (Proc.validate_code_cache proc))
    [ `Blocks; `Traces ]

(* ---- trace tier mechanics: chaining, promotion, inline caches ---- *)

(* A hot loop genuinely spanning two blocks — the loop edges are
   non-adjacent in layout order, so the emitter cannot elide them into
   fallthroughs and every iteration really crosses two explicit control
   transfers. Under `Blocks every iteration pays two dispatches; the trace
   tier chains the loop-back exits and then flattens the pair into one
   superblock. *)
let two_block_loop n =
  [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (1, n)) ]; term = Ir.Tjump 2 };
     { Ir.bid = 1;
       body = [ Ir.Plain (Instr.Alui (Instr.Sub, 1, 1, 1)) ];
       term = Ir.Tbranch (Instr.Gt, 1, 2, 3) };
     { Ir.bid = 2;
       body = [ Ir.Plain (Instr.Alui (Instr.Add, 2, 2, 3)) ];
       term = Ir.Tjump 1 };
     { Ir.bid = 3; body = []; term = Ir.Thalt } |]

let test_traces_chain_and_promote () =
  let proc = launch_blocks (two_block_loop 500) in
  Proc.run ~engine:`Traces ~cycle_limit:infinity proc;
  let s = traces_stats proc in
  Alcotest.(check bool) "exit chaining engaged" true (s.Ocolos_proc.Superblock.chained > 0);
  Alcotest.(check bool) "hot path promoted to a superblock" true
    (s.Ocolos_proc.Superblock.promotions > 0);
  Alcotest.(check bool) "superblock live" true (s.Ocolos_proc.Superblock.superblocks > 0);
  Alcotest.(check bool) "trace cache valid" true (Proc.validate_code_cache proc);
  (* And the loop's architectural outcome matches the reference. *)
  let ref_proc = launch_blocks (two_block_loop 500) in
  Proc.run ~engine:`Reference ~cycle_limit:infinity ref_proc;
  Alcotest.(check int) "instret matches reference" ref_proc.Proc.instret proc.Proc.instret;
  Alcotest.(check int) "accumulator matches reference"
    ref_proc.Proc.threads.(0).Thread.regs.(2) proc.Proc.threads.(0).Thread.regs.(2);
  Alcotest.(check bool) "counters bit-identical" true
    (Proc.total_counters ref_proc = Proc.total_counters proc)

let test_traces_inline_caches () =
  (* The random workload's parser jump tables and indirect calls exercise
     IndJump/IndCall exits; the monomorphic ones must hit the inline cache. *)
  let w = random_workload 2 in
  let proc = Workload.launch w ~input:(List.hd w.Workload.inputs) in
  Proc.run ~engine:`Traces ~cycle_limit:infinity ~max_instrs:200_000 proc;
  let s = traces_stats proc in
  Alcotest.(check bool) "inline caches hit" true (s.Ocolos_proc.Superblock.ic_hits > 0);
  Alcotest.(check bool) "superblocks formed" true (s.Ocolos_proc.Superblock.promotions > 0);
  Alcotest.(check bool) "trace cache valid" true (Proc.validate_code_cache proc)

(* ---- register-operand validation at the code-map boundary ---- *)

let test_write_code_rejects_bad_regs () =
  let proc = launch_blocks counter_loop in
  let mem = proc.Proc.mem in
  let addr = Addr_space.reserve_code mem 64 in
  List.iter
    (fun instr ->
      Alcotest.(check bool)
        ("rejected: " ^ Instr.to_string instr)
        true
        (match Addr_space.write_code mem addr instr with
        | exception Invalid_argument _ -> true
        | () -> false))
    [ Instr.Alu (Instr.Add, Instr.num_regs, 0, 0);
      Instr.Alui (Instr.Mul, 0, -1, 3);
      Instr.Movi (99, 1);
      Instr.Load (0, Instr.num_regs, 0);
      Instr.Store (-2, 0, 8);
      Instr.Branch (Instr.Eq, 200, 0);
      Instr.JumpInd (-1);
      Instr.CallInd (Instr.num_regs + 4);
      Instr.FpCreate (1000, 0);
      Instr.VtLoad (-5, 0, 0);
      Instr.Rand (Instr.num_regs, 10) ];
  (* In-range operands still pass. *)
  Addr_space.write_code mem addr (Instr.Alu (Instr.Add, 0, Instr.num_regs - 1, 1));
  Alcotest.(check bool) "valid instruction written" true (Addr_space.read_code mem addr <> None);
  Alcotest.(check bool) "valid_regs agrees" true
    (Instr.valid_regs (Instr.Alu (Instr.Add, 0, Instr.num_regs - 1, 1)));
  Alcotest.(check bool) "valid_regs rejects" false (Instr.valid_regs (Instr.Movi (99, 1)))

let suite =
  [ Alcotest.test_case "differential: tiny app, fault + replacement" `Quick
      test_differential_tiny;
    Alcotest.test_case "differential: random workloads x seeds" `Slow
      test_differential_random_seeds;
    Alcotest.test_case "stats and validate" `Quick test_stats_and_validate;
    Alcotest.test_case "code write invalidates cached blocks" `Quick
      test_code_write_invalidates;
    Alcotest.test_case "engines interleave coherently" `Quick test_engines_interleave;
    Alcotest.test_case "write spanning two blocks invalidates both" `Quick
      test_write_spanning_blocks_invalidates_both;
    Alcotest.test_case "write inside an instruction invalidates its block" `Quick
      test_write_mid_instruction_invalidates;
    Alcotest.test_case "trace cache span invalidation" `Quick
      test_trace_cache_span_invalidation;
    Alcotest.test_case "resident accounting under overlapping blocks" `Quick
      test_resident_accounting_overlapping_blocks;
    Alcotest.test_case "traces: exit chaining and superblock promotion" `Quick
      test_traces_chain_and_promote;
    Alcotest.test_case "traces: inline caches at indirect sites" `Quick
      test_traces_inline_caches;
    Alcotest.test_case "write_code rejects bad register operands" `Quick
      test_write_code_rejects_bad_regs ]
