(* Tests for the continuous-optimization controller and the perf-report
   analog. *)

open Ocolos_workloads
module Daemon = Ocolos_core.Daemon
module Clock = Ocolos_sim.Clock

let drive proc horizon = Ocolos_proc.Proc.run ~cycle_limit:(Clock.seconds_to_cycles horizon) proc

(* Tick the daemon once per simulated second for [seconds]; collect
   non-idle actions. *)
let run_daemon d proc ~from ~seconds =
  let actions = ref [] in
  for s = from + 1 to from + seconds do
    drive proc (float_of_int s);
    match Daemon.tick d ~now_s:(float_of_int s) with
    | Daemon.Idle -> ()
    | a -> actions := (s, a) :: !actions
  done;
  List.rev !actions

let test_daemon_optimizes_frontend_bound () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config = { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5 } in
  let d = Daemon.create ~config oc proc in
  let actions = run_daemon d proc ~from:0 ~seconds:6 in
  Alcotest.(check bool) "started profiling" true
    (List.exists (fun (_, a) -> match a with Daemon.Started_profiling _ -> true | _ -> false)
       actions);
  Alcotest.(check int) "replaced once" 1 (Daemon.replacements d);
  Alcotest.(check int) "version 1" 1 (Ocolos_core.Ocolos.version oc)

let test_daemon_steady_state_no_churn () =
  (* After the first optimization, a steady workload must not trigger
     re-optimization. *)
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 3.0 }
  in
  let d = Daemon.create ~config oc proc in
  ignore (run_daemon d proc ~from:0 ~seconds:20);
  Alcotest.(check int) "exactly one replacement" 1 (Daemon.replacements d)

let test_daemon_reoptimizes_on_input_shift () =
  (* Needs a workload where layout actually matters (tiny fits the L1i, so
     a stale layout costs nothing there). *)
  let w = Apps.mysql_like () in
  let proc = Workload.launch w ~input:(Workload.find_input w "point_select") in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 2.0;
      warmup_s = 0.5;
      min_interval_s = 2.0;
      regression_tolerance = 0.08 }
  in
  let d = Daemon.create ~config oc proc in
  ignore (run_daemon d proc ~from:0 ~seconds:8);
  Alcotest.(check int) "optimized for point_select" 1 (Daemon.replacements d);
  (* Shift the input; throughput under the stale C1 layout drops, and the
     daemon must produce C2. *)
  Workload.set_input w proc (Workload.find_input w "write_only");
  ignore (run_daemon d proc ~from:8 ~seconds:12);
  Alcotest.(check bool) "re-optimized after shift" true (Daemon.replacements d >= 2);
  Alcotest.(check bool) "version advanced" true (Ocolos_core.Ocolos.version oc >= 2)

(* ---- decision-boundary tests on the pure gate ---- *)

let test_decide_frontend_gate_boundary () =
  let c = { Daemon.default_config with Daemon.frontend_threshold = 0.25 } in
  let decide frontend =
    Daemon.decide c ~replacements:0 ~version:0 ~now_s:10.0 ~last_replacement_s:neg_infinity
      ~tps:100.0 ~best_tps:100.0 ~frontend
  in
  Alcotest.(check bool) "exactly at threshold fires" true (decide 0.25 <> None);
  Alcotest.(check bool) "just below is quiet" true (decide 0.2499 = None);
  Alcotest.(check bool) "well above fires" true (decide 0.9 <> None)

let test_decide_regression_tolerance_boundary () =
  (* tol = 0.5 so (1 - tol) * best is exact in floating point. *)
  let c =
    { Daemon.default_config with
      Daemon.regression_tolerance = 0.5;
      min_interval_s = 5.0 }
  in
  let decide ~tps =
    Daemon.decide c ~replacements:1 ~version:1 ~now_s:20.0 ~last_replacement_s:10.0 ~tps
      ~best_tps:1000.0 ~frontend:0.9
  in
  Alcotest.(check bool) "exactly at (1-tol)*best is quiet" true (decide ~tps:500.0 = None);
  Alcotest.(check bool) "strictly below fires" true (decide ~tps:499.9 <> None);
  Alcotest.(check bool) "above is quiet" true (decide ~tps:900.0 = None);
  (* Once replaced, the front-end gate no longer applies: only drift does. *)
  Alcotest.(check bool) "no drift, no churn" true (decide ~tps:1000.0 = None)

let test_decide_min_interval_boundary () =
  let c =
    { Daemon.default_config with
      Daemon.regression_tolerance = 0.5;
      min_interval_s = 5.0 }
  in
  let decide ~now_s =
    Daemon.decide c ~replacements:1 ~version:1 ~now_s ~last_replacement_s:10.0 ~tps:10.0
      ~best_tps:1000.0 ~frontend:0.9
  in
  Alcotest.(check bool) "amortization gate closed just before" true (decide ~now_s:14.999 = None);
  Alcotest.(check bool) "open exactly at min_interval_s" true (decide ~now_s:15.0 <> None);
  Alcotest.(check bool) "open after" true (decide ~now_s:16.0 <> None)

let test_decide_min_interval_gates_first_campaign () =
  (* Regression: the amortization gate must apply to the [replacements = 0]
     branch too. A campaign that gives up re-arms [last_replacement_s] while
     leaving [replacements] at 0; if the front-end check ran first, the
     daemon would re-enter profiling on the very next tick and loop
     profile / rollback / give-up back to back. *)
  let c =
    { Daemon.default_config with Daemon.frontend_threshold = 0.25; min_interval_s = 10.0 }
  in
  let decide ~now_s =
    Daemon.decide c ~replacements:0 ~version:0 ~now_s ~last_replacement_s:100.0 ~tps:100.0
      ~best_tps:100.0 ~frontend:0.9
  in
  Alcotest.(check bool) "front-end bound but inside the interval: quiet" true
    (decide ~now_s:100.1 = None);
  Alcotest.(check bool) "still quiet just before the interval" true
    (decide ~now_s:109.999 = None);
  Alcotest.(check bool) "re-profiles once the interval elapses" true
    (decide ~now_s:110.0 <> None);
  (* A fresh daemon (last_replacement_s = -inf) is never delayed. *)
  Alcotest.(check bool) "first-ever profile immediate" true
    (Daemon.decide c ~replacements:0 ~version:0 ~now_s:0.0 ~last_replacement_s:neg_infinity
       ~tps:100.0 ~best_tps:100.0 ~frontend:0.9
    <> None)

(* ---- rollback / retry actions through the tick loop ---- *)

let fault_setup schedule_point schedule =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let fault = Ocolos_util.Fault.create ~seed:5 () in
  Ocolos_util.Fault.arm fault schedule_point schedule;
  let oc =
    Ocolos_core.Ocolos.attach
      ~config:{ Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      proc
  in
  (proc, oc)

let test_daemon_rolls_back_then_retries () =
  (* An Nth 1 fault fires on the first attempt only: the daemon must report
     Rolled_back (will retry), back off, announce Retrying, and commit on
     the second attempt. *)
  let proc, oc = fault_setup "vtable_patch" (Ocolos_util.Fault.Nth 1) in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 1.0;
      warmup_s = 0.5;
      max_retries = 3;
      retry_backoff_s = 1.0 }
  in
  let d = Daemon.create ~config oc proc in
  let actions = List.map snd (run_daemon d proc ~from:0 ~seconds:10) in
  let has p = List.exists p actions in
  Alcotest.(check bool) "rolled back at the armed point, not giving up" true
    (has (function
      | Daemon.Rolled_back { point = "vtable_patch"; attempt = 1; giving_up = false } -> true
      | _ -> false));
  Alcotest.(check bool) "announced the retry" true
    (has (function Daemon.Retrying { attempt = 2 } -> true | _ -> false));
  Alcotest.(check bool) "then committed" true
    (has (function Daemon.Replaced _ -> true | _ -> false));
  Alcotest.(check int) "one rollback counted" 1 (Daemon.rollbacks d);
  Alcotest.(check int) "one retry counted" 1 (Daemon.retries d);
  Alcotest.(check int) "one replacement" 1 (Daemon.replacements d);
  Alcotest.(check int) "version advanced" 1 (Ocolos_core.Ocolos.version oc)

let test_daemon_gives_up_after_max_retries () =
  (* Every 1: the fault fires on every attempt; after max_retries extra
     tries the daemon reports giving_up and the process stays on C0. *)
  let proc, oc = fault_setup "pause" (Ocolos_util.Fault.Every 1) in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 1.0;
      warmup_s = 0.5;
      min_interval_s = 30.0;
      max_retries = 2;
      retry_backoff_s = 1.0 }
  in
  let d = Daemon.create ~config oc proc in
  (* Tick until the first giving-up action; after it the daemon would start
     a fresh campaign (replacements is still 0), so stop right there to
     keep the counters exact. *)
  let gave_up = ref false in
  let now = ref 0 in
  while (not !gave_up) && !now < 20 do
    incr now;
    drive proc (float_of_int !now);
    match Daemon.tick d ~now_s:(float_of_int !now) with
    | Daemon.Rolled_back { attempt = 3; giving_up = true; point = "pause" } -> gave_up := true
    | Daemon.Rolled_back { giving_up = true; _ } -> Alcotest.fail "gave up early"
    | _ -> ()
  done;
  Alcotest.(check bool) "gave up after exhausting retries" true !gave_up;
  Alcotest.(check int) "three attempts rolled back" 3 (Daemon.rollbacks d);
  Alcotest.(check int) "two retries" 2 (Daemon.retries d);
  Alcotest.(check int) "nothing replaced" 0 (Daemon.replacements d);
  Alcotest.(check int) "still on C0" 0 (Ocolos_core.Ocolos.version oc);
  Alcotest.(check bool) "back to monitoring" true (Daemon.phase d = Daemon.Monitoring);
  (* The managed process survived three aborted attempts. *)
  let tx = Ocolos_proc.Proc.transactions proc in
  drive proc (float_of_int !now +. 2.0);
  Alcotest.(check bool) "process still making progress" true
    (Ocolos_proc.Proc.transactions proc > tx)

(* ---- supervision: jitter, breaker, quarantine, watchdog ---- *)

module Guard = Ocolos_core.Guard

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let test_guard_jitter_bounds_and_determinism () =
  let g = Guard.create ~seed:3 () in
  for _ = 1 to 200 do
    let j = Guard.jittered g 2.0 in
    Alcotest.(check bool) "within +/-25%" true (j >= 1.5 && j <= 2.5)
  done;
  let a = Guard.create ~seed:9 () and b = Guard.create ~seed:9 () in
  let xs = List.init 20 (fun _ -> Guard.jittered a 1.0) in
  let ys = List.init 20 (fun _ -> Guard.jittered b 1.0) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Guard.create ~seed:10 () in
  let zs = List.init 20 (fun _ -> Guard.jittered c 1.0) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs);
  (* The stream actually varies — jitter is not a constant offset. *)
  Alcotest.(check bool) "jitter varies" true
    (List.exists (fun x -> Float.abs (x -. List.hd xs) > 1e-9) (List.tl xs))

let test_guard_breaker_state_machine () =
  let config =
    { Guard.default_config with
      Guard.breaker_threshold = 2;
      breaker_cooldown_s = 10.0;
      jitter = 0.0 (* deterministic cooldown for exact boundary checks *) }
  in
  let g = Guard.create ~config ~seed:1 () in
  Alcotest.(check bool) "starts closed" true (Guard.breaker_state g = Guard.Closed);
  Guard.campaign_failed g ~now_s:0.0;
  Alcotest.(check bool) "one failure: still closed" true (Guard.breaker_state g = Guard.Closed);
  Alcotest.(check bool) "degraded tier after a failure" true
    (Guard.tier g = `Func_reorder_only);
  Guard.campaign_failed g ~now_s:1.0;
  (match Guard.breaker_state g with
  | Guard.Open { until_s } -> Alcotest.(check (float 1e-9)) "cooldown" 11.0 until_s
  | _ -> Alcotest.fail "breaker should be open at the threshold");
  Alcotest.(check bool) "refuses during cooldown" false (Guard.allow_campaign g ~now_s:5.0);
  Alcotest.(check bool) "still open" true
    (match Guard.breaker_state g with Guard.Open _ -> true | _ -> false);
  Alcotest.(check bool) "admits the probe after cooldown" true
    (Guard.allow_campaign g ~now_s:11.0);
  Alcotest.(check bool) "half-open during the probe" true
    (Guard.breaker_state g = Guard.Half_open);
  Guard.campaign_failed g ~now_s:12.0;
  Alcotest.(check bool) "failed probe re-opens" true
    (match Guard.breaker_state g with Guard.Open _ -> true | _ -> false);
  Alcotest.(check int) "opened twice" 2 (Guard.breaker_opens g);
  Alcotest.(check bool) "probe again" true (Guard.allow_campaign g ~now_s:30.0);
  Guard.campaign_succeeded g;
  Alcotest.(check bool) "success closes" true (Guard.breaker_state g = Guard.Closed);
  Alcotest.(check int) "consecutive reset" 0 (Guard.consecutive_failures g);
  Alcotest.(check bool) "tier restored" true (Guard.tier g = `Full)

let test_guard_quarantine_monotone () =
  let g = Guard.create ~config:{ Guard.default_config with Guard.quarantine_after = 2 } () in
  Guard.record_func_failures g [ (3, "bolt.cfg"); (7, "bolt.bb_reorder") ];
  Alcotest.(check (list int)) "below threshold" [] (Guard.quarantined g);
  Guard.record_func_failures g [ (3, "bolt.peephole") ];
  Alcotest.(check (list int)) "fid 3 quarantined at 2 failures" [ 3 ] (Guard.quarantined g);
  Alcotest.(check bool) "is_quarantined" true (Guard.is_quarantined g 3);
  Guard.record_func_failures g [ (3, "bolt.cfg"); (7, "bolt.cfg") ];
  Alcotest.(check (list int)) "monotone, sorted" [ 3; 7 ] (Guard.quarantined g);
  Guard.campaign_succeeded g;
  Alcotest.(check (list int)) "success never un-quarantines" [ 3; 7 ] (Guard.quarantined g)

let test_guard_watchdog () =
  let g =
    Guard.create
      ~config:
        { Guard.default_config with
          Guard.perf2bolt_deadline_s = Some 1.0;
          bolt_deadline_s = None }
      ()
  in
  Alcotest.(check bool) "under deadline" false
    (Guard.check_deadline g ~phase:`Perf2bolt ~seconds:0.5);
  Alcotest.(check bool) "over deadline trips" true
    (Guard.check_deadline g ~phase:`Perf2bolt ~seconds:1.5);
  Alcotest.(check bool) "unconfigured phase never trips" false
    (Guard.check_deadline g ~phase:`Bolt ~seconds:1e9);
  Alcotest.(check int) "one trip counted" 1 (Guard.watchdog_trips g)

let test_daemon_campaign_abort_on_pipeline_fault () =
  (* A fault escaping perf2bolt is not a rollback: nothing was paused. The
     campaign aborts cleanly, the layout is kept, and monitoring resumes. *)
  let proc, oc = fault_setup "perf2bolt.aggregate" (Ocolos_util.Fault.Every 1) in
  let config =
    { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 30.0 }
  in
  let d = Daemon.create ~config oc proc in
  let actions = List.map snd (run_daemon d proc ~from:0 ~seconds:6) in
  Alcotest.(check bool) "campaign aborted naming the point" true
    (List.exists
       (function
         | Daemon.Campaign_aborted reason -> contains ~affix:"perf2bolt.aggregate" reason
         | _ -> false)
       actions);
  Alcotest.(check int) "no attempts entered the transaction" 0 (Daemon.attempts d);
  Alcotest.(check int) "still on C0" 0 (Ocolos_core.Ocolos.version oc);
  Alcotest.(check bool) "back to monitoring" true (Daemon.phase d = Daemon.Monitoring)

let test_daemon_breaker_opens_then_recovers () =
  (* One aborted campaign with breaker_threshold = 1: the breaker opens, a
     warranted campaign is refused (Breaker_open), the half-open probe after
     cooldown runs fault-free (Nth 1 already fired) and commits, closing the
     breaker. *)
  let proc, oc = fault_setup "perf2bolt.aggregate" (Ocolos_util.Fault.Nth 1) in
  let config =
    { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 2.0 }
  in
  let guard =
    Guard.create
      ~config:
        { Guard.default_config with Guard.breaker_threshold = 1; breaker_cooldown_s = 5.0 }
      ~seed:2 ()
  in
  let d = Daemon.create ~config ~guard oc proc in
  let actions = List.map snd (run_daemon d proc ~from:0 ~seconds:20) in
  let has p = List.exists p actions in
  Alcotest.(check bool) "campaign aborted" true
    (has (function Daemon.Campaign_aborted _ -> true | _ -> false));
  Alcotest.(check bool) "breaker refused a warranted campaign" true
    (has (function Daemon.Breaker_open _ -> true | _ -> false));
  Alcotest.(check bool) "half-open probe committed" true
    (has (function Daemon.Replaced _ -> true | _ -> false));
  Alcotest.(check bool) "breaker closed again" true
    (Daemon.breaker_state d = Guard.Closed);
  Alcotest.(check int) "opened exactly once" 1 (Guard.breaker_opens guard);
  Alcotest.(check int) "one replacement" 1 (Daemon.replacements d)

let test_daemon_quarantines_repeat_offenders () =
  (* bolt.cfg on every cut: every hot function's CFG reconstruction fails
     in every campaign (absorbed as skip-this-function degradation), so
     after quarantine_after campaigns those fids are excluded for good.
     regression_tolerance < 0 forces a campaign every min_interval. *)
  let proc, oc = fault_setup "bolt.cfg" (Ocolos_util.Fault.Every 1) in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 1.0;
      warmup_s = 0.5;
      min_interval_s = 2.0;
      regression_tolerance = -0.5 }
  in
  let d = Daemon.create ~config oc proc in
  ignore (run_daemon d proc ~from:0 ~seconds:8);
  Alcotest.(check bool) "campaigns still commit (degraded)" true (Daemon.replacements d >= 2);
  let q1 = Daemon.quarantined d in
  Alcotest.(check bool) "repeat offenders quarantined" true (q1 <> []);
  ignore (run_daemon d proc ~from:8 ~seconds:4);
  let q2 = Daemon.quarantined d in
  Alcotest.(check bool) "quarantine is monotone" true
    (List.for_all (fun fid -> List.mem fid q2) q1)

let test_daemon_watchdog_aborts_campaign () =
  (* A zero perf2bolt deadline trips on any modeled duration: the campaign
     aborts before BOLT, nothing is paused, the layout is kept. *)
  let w = Apps.tiny ~tx_limit:None () in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 30.0 }
  in
  let guard =
    Guard.create
      ~config:{ Guard.default_config with Guard.perf2bolt_deadline_s = Some 0.0 }
      ()
  in
  let d = Daemon.create ~config ~guard oc proc in
  let actions = List.map snd (run_daemon d proc ~from:0 ~seconds:6) in
  Alcotest.(check bool) "watchdog abort" true
    (List.exists
       (function
         | Daemon.Campaign_aborted reason -> contains ~affix:"watchdog" reason
         | _ -> false)
       actions);
  Alcotest.(check int) "watchdog tripped" 1 (Guard.watchdog_trips guard);
  Alcotest.(check int) "still on C0" 0 (Ocolos_core.Ocolos.version oc)

let test_perf_report_finds_hot_function () =
  (* Under the original layout, the parser should rank among the top L1i
     missers (the MYSQLparse effect); under OCOLOS it should fade. *)
  let w = Apps.mysql_like () in
  let input = Workload.find_input w "read_only" in
  let proc = Workload.launch w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let session = Ocolos_profiler.Perf_report.start ~period:3 proc in
  Ocolos_proc.Proc.run ~cycle_limit:600_000.0 proc;
  let report = Ocolos_profiler.Perf_report.stop session in
  let rows = Ocolos_profiler.Perf_report.by_function report w.Workload.binary in
  Alcotest.(check bool) "samples collected" true (List.length rows > 5);
  let parser_fid =
    match w.Workload.gen.Gen.parser_fid with Some f -> f | None -> assert false
  in
  let top20 = List.filteri (fun i _ -> i < 20) rows in
  Alcotest.(check bool) "parser in top-20 missers" true
    (List.exists (fun r -> r.Ocolos_profiler.Perf_report.fr_fid = parser_fid) top20);
  (* Annotate: per-address counts of the parser sum to its total. *)
  let annotated = Ocolos_profiler.Perf_report.annotate report w.Workload.binary parser_fid in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 annotated in
  Alcotest.(check int) "annotate sums"
    (Ocolos_profiler.Perf_report.samples_of_func report w.Workload.binary parser_fid)
    total;
  (* Sampling stops after detach. *)
  let before = List.length rows in
  Ocolos_proc.Proc.run ~cycle_limit:700_000.0 proc;
  Alcotest.(check int) "no more samples" before
    (List.length (Ocolos_profiler.Perf_report.by_function report w.Workload.binary))

let suite =
  [ Alcotest.test_case "daemon optimizes frontend-bound" `Quick
      test_daemon_optimizes_frontend_bound;
    Alcotest.test_case "daemon steady state no churn" `Quick test_daemon_steady_state_no_churn;
    Alcotest.test_case "daemon reoptimizes on input shift" `Slow
      test_daemon_reoptimizes_on_input_shift;
    Alcotest.test_case "decide: front-end gate boundary" `Quick
      test_decide_frontend_gate_boundary;
    Alcotest.test_case "decide: regression tolerance boundary" `Quick
      test_decide_regression_tolerance_boundary;
    Alcotest.test_case "decide: min-interval boundary" `Quick test_decide_min_interval_boundary;
    Alcotest.test_case "decide: min-interval gates the first campaign" `Quick
      test_decide_min_interval_gates_first_campaign;
    Alcotest.test_case "daemon rolls back then retries" `Quick
      test_daemon_rolls_back_then_retries;
    Alcotest.test_case "daemon gives up after max retries" `Quick
      test_daemon_gives_up_after_max_retries;
    Alcotest.test_case "guard jitter bounds and determinism" `Quick
      test_guard_jitter_bounds_and_determinism;
    Alcotest.test_case "guard breaker state machine" `Quick test_guard_breaker_state_machine;
    Alcotest.test_case "guard quarantine monotone" `Quick test_guard_quarantine_monotone;
    Alcotest.test_case "guard watchdog" `Quick test_guard_watchdog;
    Alcotest.test_case "daemon aborts campaign on pipeline fault" `Quick
      test_daemon_campaign_abort_on_pipeline_fault;
    Alcotest.test_case "daemon breaker opens then recovers" `Quick
      test_daemon_breaker_opens_then_recovers;
    Alcotest.test_case "daemon quarantines repeat offenders" `Quick
      test_daemon_quarantines_repeat_offenders;
    Alcotest.test_case "daemon watchdog aborts campaign" `Quick
      test_daemon_watchdog_aborts_campaign;
    Alcotest.test_case "perf report finds hot function" `Quick
      test_perf_report_finds_hot_function ]
