(* Test entry point: one alcotest run over every module's suite. *)

let () =
  Alcotest.run "ocolos"
    [ ("util", Test_util.suite);
      ("isa", Test_isa.suite);
      ("encode", Test_encode.suite);
      ("uarch", Test_uarch.suite);
      ("binary", Test_binary.suite);
      ("proc", Test_proc.suite);
      ("block_engine", Test_block_engine.suite);
      ("profiler", Test_profiler.suite);
      ("bolt", Test_bolt.suite);
      ("workloads", Test_workloads.suite);
      ("pgo", Test_pgo.suite);
      ("core", Test_core.suite);
      ("osr", Test_osr.suite);
      ("txn", Test_txn.suite);
      ("bam", Test_bam.suite);
      ("daemon", Test_daemon.suite);
      ("supervisor", Test_supervisor.suite);
      ("fleet", Test_fleet.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("disasm", Test_disasm.suite);
      ("properties", Test_props.suite);
      ("validate", Test_validate.suite) ]
