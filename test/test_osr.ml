(* True on-stack replacement acceptance tests: a never-returning entry
   function migrated out of its original text, the post-GC reachability
   scanner covering engine-held code pointers, revert leaving no
   ever-growing residue, and drain-window accounting converging to zero. *)

open Ocolos_workloads
module O = Ocolos_core.Ocolos
module Proc = Ocolos_proc.Proc
module Addr_space = Ocolos_proc.Addr_space

(* Complete emission: hot_threshold 1 optimizes anything that moved, and
   lite=false re-emits even never-executed functions, so a campaign can
   retire the entire original text. *)
let greedy_config =
  { O.default_config with
    O.bolt =
      { O.default_config.O.bolt with
        Ocolos_bolt.Bolt.hot_threshold = 1;
        max_hot_funcs = None;
        lite = false } }

let optimize_once ?(engine = `Blocks) ?(profile_instrs = 300_000) proc oc =
  O.start_profiling oc;
  Proc.run ~engine ~cycle_limit:infinity ~max_instrs:profile_instrs proc;
  let profile, _ = O.stop_profiling oc in
  let result, _ = O.run_bolt oc profile in
  (result, O.replace_code oc result)

let mapped_code_bytes (proc : Proc.t) =
  Hashtbl.fold
    (fun _ i acc -> acc + Ocolos_isa.Instr.size i)
    proc.Proc.mem.Addr_space.code 0

let test_never_returning_entry_replaced () =
  let w = Apps.event_loop () in
  let input = Workload.find_input w "steady" in
  let proc = Workload.launch w ~input in
  let oc = O.attach ~config:greedy_config proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:100_000 proc;
  let rounds = ref 0 in
  while O.c0_text_resident_bytes oc > 0 && !rounds < 10 do
    incr rounds;
    let _, stats = optimize_once proc oc in
    Alcotest.(check int) "one version per round" !rounds stats.O.version
  done;
  (* The entire original text — including the entry function, which never
     returns and whose frame only OSR can move — is unmapped. *)
  Alcotest.(check int) "no original text resident" 0 (O.c0_text_resident_bytes oc);
  let entry = proc.Proc.binary.Ocolos_binary.Binary.entry in
  Alcotest.(check bool) "original entry unmapped" true
    (Addr_space.read_code proc.Proc.mem entry = None);
  Alcotest.(check bool) "live entry moved" true
    ((O.current_binary oc).Ocolos_binary.Binary.entry <> entry);
  (* Exactly one code version resident: drain the transition window, reap,
     and the resident-extra accounting reads zero. *)
  Proc.run ~cycle_limit:infinity ~max_instrs:200_000 proc;
  ignore (O.gc_residue oc);
  Alcotest.(check int) "no residue after convergence" 0 (O.resident_extra_bytes oc);
  O.verify_no_dangling oc ~freed:[];
  (* And the loop is still serving transactions out of the final version. *)
  let tx = Proc.transactions proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:100_000 proc;
  Alcotest.(check bool) "still making progress" true (Proc.transactions proc > tx)

(* The reachability scanner must audit code pointers held by the execution
   engines (superblock resume memos, chain links, inline-cache targets),
   not just vtables, stacks and code. Severing the invalidation watcher
   reproduces the bug class: the engine keeps pointers into the retired
   text, and the post-GC scan has to catch them. *)
let test_scanner_covers_engine_pointers () =
  let run_round ~sever () =
    let w = Apps.tiny ~tx_limit:None () in
    let proc = Workload.launch w ~input:(Workload.find_input w "a") in
    let oc = O.attach proc in
    Proc.run ~engine:`Traces ~cycle_limit:infinity ~max_instrs:150_000 proc;
    O.start_profiling oc;
    Proc.run ~engine:`Traces ~cycle_limit:infinity ~max_instrs:150_000 proc;
    let profile, _ = O.stop_profiling oc in
    let result, _ = O.run_bolt oc profile in
    if sever then proc.Proc.mem.Addr_space.code_watchers <- [];
    let stats = O.replace_code oc result in
    (proc, stats)
  in
  (* Healthy path: the engine is invalidated through the watcher, the
     audit passes, and the caches validate against the new code map. *)
  let proc, stats = run_round ~sever:false () in
  Alcotest.(check int) "replacement committed" 1 stats.O.version;
  Alcotest.(check bool) "caches valid after OSR" true (Proc.validate_code_cache proc);
  Proc.run ~engine:`Traces ~cycle_limit:infinity ~max_instrs:100_000 proc;
  (* Severed path: stale engine pointers into the retired text must be
     reported by the scanner, not silently survive. *)
  match run_round ~sever:true () with
  | exception O.Dangling_pointer _ -> ()
  | _ -> Alcotest.fail "scanner missed engine-held pointers into freed text"

let test_attach_revert_cycles_leak_no_text () =
  let w = Apps.tiny ~tx_limit:None () in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let oc = O.attach proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
  (* A never-returning frame reverted out of optimized text parks in one
     bounded evacuation copy; repeated optimize/revert cycles must reuse
     that footprint, not grow it. *)
  let high_water = ref 0 in
  for cycle = 1 to 3 do
    ignore (optimize_once ~profile_instrs:60_000 proc oc);
    let rv = O.revert oc (O.c0_snapshot oc) in
    Alcotest.(check int) "reverted to C0" 0 rv.O.rv_to_version;
    Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
    ignore (O.gc_residue oc);
    O.verify_no_dangling oc ~freed:[];
    let bytes = mapped_code_bytes proc in
    if cycle = 1 then high_water := bytes
    else
      Alcotest.(check bool)
        (Printf.sprintf "cycle %d text (%d) within cycle-1 high water (%d)" cycle bytes
           !high_water)
        true (bytes <= !high_water)
  done;
  (* The process is still live and correct after three round trips. *)
  let tx = Proc.transactions proc in
  Proc.run ~cycle_limit:infinity ~max_instrs:60_000 proc;
  Alcotest.(check bool) "still making progress" true (Proc.transactions proc > tx)

let suite =
  [ Alcotest.test_case "never-returning entry replaced" `Slow
      test_never_returning_entry_replaced;
    Alcotest.test_case "scanner covers engine pointers" `Quick
      test_scanner_covers_engine_pointers;
    Alcotest.test_case "attach/revert cycles leak no text" `Quick
      test_attach_revert_cycles_leak_no_text ]
