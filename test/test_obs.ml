(* Tests for the observability layer (Ocolos_obs): span tracing on the
   simulated clock, the metrics registry with its deterministic exporters,
   the Chrome trace-event emitter, and end-to-end byte-stable emission of a
   fixed-seed pipeline run. *)

open Ocolos_workloads
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Chrome = Ocolos_obs.Chrome
module Json = Ocolos_obs.Json
module Measure = Ocolos_sim.Measure
module Timeline = Ocolos_sim.Timeline
module Clock = Ocolos_sim.Clock
module Daemon = Ocolos_core.Daemon

(* ---- span tracing ---- *)

(* Build a random span tree (shape a pure function of the seed) through
   [with_span], interleaving instants, then check the structural invariants
   the Chrome exporter relies on. *)
let prop_span_tree_well_formed =
  QCheck.Test.make ~name:"span tree well-formed" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Ocolos_util.Rng.create seed in
      let tr = Trace.create () in
      let rec grow depth =
        let children = if depth >= 4 then 0 else Ocolos_util.Rng.int rng 4 in
        for i = 1 to children do
          Trace.with_span tr (Printf.sprintf "s%d.%d" depth i) (fun _ ->
              if Ocolos_util.Rng.int rng 3 = 0 then Trace.instant tr "tick";
              grow (depth + 1))
        done
      in
      Trace.with_span tr "root" (fun _ -> grow 0);
      let spans = Trace.spans tr in
      let by_id = Hashtbl.create 64 in
      List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.sp_id s) spans;
      (* ids unique, all closed *)
      Hashtbl.length by_id = List.length spans
      && List.for_all (fun (s : Trace.span) -> s.Trace.sp_end_us <> None) spans
      && Trace.open_spans tr = []
      (* begin timestamps strictly increasing in begin order *)
      && (let rec incr_begin = function
            | (a : Trace.span) :: (b : Trace.span) :: rest ->
              a.Trace.sp_begin_us < b.Trace.sp_begin_us && incr_begin (b :: rest)
            | _ -> true
          in
          incr_begin spans)
      (* every child strictly nested inside its parent *)
      && List.for_all
           (fun (s : Trace.span) ->
             match s.Trace.sp_parent with
             | None -> true
             | Some pid -> (
               match Hashtbl.find_opt by_id pid with
               | None -> false
               | Some p ->
                 let e s =
                   match s.Trace.sp_end_us with Some e -> e | None -> max_int
                 in
                 p.Trace.sp_begin_us < s.Trace.sp_begin_us && e s < e p))
           spans)

let test_span_close_out_of_order () =
  (* Spans opened/closed across separate calls (the Perf.start/stop shape):
     closing the outer one first must not orphan or close the inner one. *)
  let tr = Trace.create () in
  let a = Trace.begin_span tr "a" in
  let b = Trace.begin_span tr "b" in
  Trace.end_span tr a;
  Alcotest.(check bool) "a closed" true (a.Trace.sp_end_us <> None);
  Alcotest.(check bool) "b still open" true (b.Trace.sp_end_us = None);
  Alcotest.(check (list string)) "only b open" [ "b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.open_spans tr));
  Alcotest.(check bool) "b's parent is a" true (b.Trace.sp_parent = Some a.Trace.sp_id);
  Trace.end_span tr b;
  Trace.end_span tr b (* idempotent *);
  Alcotest.(check int) "two spans" 2 (Trace.span_count tr);
  Alcotest.(check (list Alcotest.reject)) "nothing open" [] (Trace.open_spans tr)

let test_with_span_exception () =
  let tr = Trace.create () in
  (try Trace.with_span tr "boom" (fun _ -> failwith "kaput") with Failure _ -> ());
  match Trace.spans tr with
  | [ s ] ->
    Alcotest.(check bool) "closed" true (s.Trace.sp_end_us <> None);
    Alcotest.(check bool) "error attr recorded" true
      (List.exists
         (function "error", Trace.S m -> m = "Failure(\"kaput\")" | _ -> false)
         s.Trace.sp_attrs)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_clock_monotonic () =
  let tr = Trace.create () in
  Trace.set_time_s tr 1.0;
  Alcotest.(check int) "anchored at 1s" 1_000_000 (Trace.now_us tr);
  Trace.set_time_s tr 0.5;
  Alcotest.(check int) "anchoring into the past is a no-op" 1_000_000 (Trace.now_us tr);
  Trace.instant tr "e1";
  Trace.instant tr "e2";
  (match Trace.events tr with
  | [ e1; e2 ] ->
    Alcotest.(check int) "first event at anchor" 1_000_000 e1.Trace.ev_ts_us;
    Alcotest.(check int) "one-microsecond tick" 1_000_001 e2.Trace.ev_ts_us
  | _ -> Alcotest.fail "expected two events");
  Trace.advance_s tr 0.25;
  Alcotest.(check int) "advance is relative" 1_250_002 (Trace.now_us tr)

let test_ambient_helpers_noop_when_uninstalled () =
  Trace.uninstall ();
  Metrics.uninstall ();
  let got = Trace.span "x" (fun sp -> sp) in
  Alcotest.(check bool) "span passes None" true (got = None);
  Trace.mark "nothing";
  Trace.plot "nothing" [ ("v", 1.0) ];
  Trace.clock 5.0;
  Metrics.count "c" 1;
  Metrics.record "g" 1.0;
  Metrics.sample ~buckets:[| 1.0 |] "h" 0.5;
  Alcotest.(check bool) "nothing installed" true
    (Trace.installed () = None && Metrics.installed () = None)

(* ---- metrics registry ---- *)

let test_histogram_bucket_boundaries () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[| 1.0; 2.0; 5.0 |] "h" in
  (* Prometheus [le] semantics: v lands in the first bucket with v <= bound,
     so an observation exactly on a bound belongs to that bucket. *)
  Metrics.observe h 1.0;
  Metrics.observe h 1.0000001;
  Metrics.observe h 2.0;
  Metrics.observe h 5.0;
  Metrics.observe h 5.0000001;
  Metrics.observe h 0.0;
  Alcotest.(check bool) "per-bucket counts" true
    (Metrics.hist_buckets h = [| (1.0, 2); (2.0, 2); (5.0, 1); (Float.infinity, 1) |]);
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check bool) "sum" true (Float.abs (Metrics.hist_sum h -. 14.0000002) < 1e-6);
  Alcotest.check_raises "empty buckets rejected"
    (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram r ~buckets:[||] "h_empty"));
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing") (fun () ->
      ignore (Metrics.histogram r ~buckets:[| 1.0; 1.0 |] "h_flat"))

let test_metric_identity_and_kinds () =
  let r = Metrics.create () in
  let c1 = Metrics.counter r ~labels:[ ("b", "2"); ("a", "1") ] "m" in
  (* label order does not create a new identity *)
  let c2 = Metrics.counter r ~labels:[ ("a", "1"); ("b", "2") ] "m" in
  Metrics.inc c1 3;
  Metrics.inc c2 4;
  Alcotest.(check int) "same underlying counter" 7 (Metrics.counter_value c1);
  (* different labels are a different time series *)
  let c3 = Metrics.counter r ~labels:[ ("a", "9") ] "m" in
  Metrics.inc c3 1;
  Alcotest.(check int) "distinct series" 1 (Metrics.counter_value c3);
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Metrics.gauge r ~labels:[ ("a", "1"); ("b", "2") ] "m");
       false
     with Invalid_argument _ -> true);
  let _h = Metrics.histogram r ~buckets:[| 1.0 |] "h" in
  Alcotest.(check bool) "histogram rebucket raises" true
    (try
       ignore (Metrics.histogram r ~buckets:[| 2.0 |] "h");
       false
     with Invalid_argument _ -> true)

let populate_registry order r =
  (* Insert the same families in the given order; exporters must not care. *)
  List.iter
    (fun i ->
      match i with
      | 0 -> Metrics.inc (Metrics.counter r ~help:"transactions" "app_tx_total") 41
      | 1 -> Metrics.set (Metrics.gauge r "app_ipc") 1.75
      | 2 ->
        let h = Metrics.histogram r ~buckets:[| 0.001; 0.01; 0.1 |] "app_pause_seconds" in
        Metrics.observe h 0.005;
        Metrics.observe h 0.05;
        Metrics.observe h 0.5
      | _ -> Metrics.inc (Metrics.counter r ~labels:[ ("point", "pause") ] "app_cuts") 2)
    order

let test_export_insertion_order_independent () =
  let a = Metrics.create () and b = Metrics.create () in
  populate_registry [ 0; 1; 2; 3 ] a;
  populate_registry [ 3; 2; 1; 0 ] b;
  Alcotest.(check string) "prometheus text equal" (Metrics.to_prometheus a)
    (Metrics.to_prometheus b);
  Alcotest.(check string) "json equal"
    (Json.to_string (Metrics.to_json a))
    (Json.to_string (Metrics.to_json b))

let test_prometheus_format () =
  let r = Metrics.create () in
  populate_registry [ 0; 1; 2; 3 ] r;
  let text = Metrics.to_prometheus r in
  let expect =
    "# TYPE app_cuts counter\n\
     app_cuts{point=\"pause\"} 2\n\
     # TYPE app_ipc gauge\n\
     app_ipc 1.75\n\
     # TYPE app_pause_seconds histogram\n\
     app_pause_seconds_bucket{le=\"0.001\"} 0\n\
     app_pause_seconds_bucket{le=\"0.01\"} 1\n\
     app_pause_seconds_bucket{le=\"0.1\"} 2\n\
     app_pause_seconds_bucket{le=\"+Inf\"} 3\n\
     app_pause_seconds_sum 0.555\n\
     app_pause_seconds_count 3\n\
     # HELP app_tx_total transactions\n\
     # TYPE app_tx_total counter\n\
     app_tx_total 41\n"
  in
  Alcotest.(check string) "prometheus golden" expect text

(* ---- Chrome trace-event exporter ---- *)

let test_chrome_golden () =
  (* A hand-checked golden of the exact bytes Chrome.to_string emits for a
     tiny trace: one span wrapping an instant, then a counter sample. Locks
     the event format (key order, clock ticking, sorting, number
     rendering). *)
  let tr = Trace.create () in
  Trace.with_span tr "a" (fun sp ->
      Trace.add_attr sp "n" (Trace.I 7);
      Trace.instant tr "i");
  Trace.counter tr "c" [ ("v", 1.5) ];
  let expect =
    "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"ocolos\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"pipeline\"}},{\"name\":\"a\",\"cat\":\"ocolos\",\"ph\":\"X\",\"ts\":0,\"dur\":2,\"pid\":1,\"tid\":1,\"args\":{\"n\":7}},{\"ph\":\"i\",\"s\":\"t\",\"name\":\"i\",\"cat\":\"ocolos\",\"ts\":1,\"pid\":1,\"tid\":1,\"args\":{}},{\"ph\":\"C\",\"name\":\"c\",\"cat\":\"ocolos\",\"ts\":3,\"pid\":1,\"tid\":1,\"args\":{\"v\":1.5}}],\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "chrome golden" expect (Chrome.to_string tr)

let test_json_number_rendering () =
  Alcotest.(check string) "integer-valued float" "3" (Json.number 3.0);
  Alcotest.(check string) "trailing zeros trimmed" "1.5" (Json.number 1.5);
  Alcotest.(check string) "keeps one fractional digit" "1.1" (Json.number 1.10000);
  Alcotest.(check string) "six digits max" "0.333333" (Json.number (1.0 /. 3.0));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\"" (Json.to_string (Json.String "a\"b\n"))

(* ---- end-to-end: fixed-seed runs emit byte-identical artifacts ---- *)

let traced_ocolos_run () =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  Trace.install tr;
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Metrics.uninstall ())
    (fun () ->
      let w = Apps.tiny ~tx_limit:None () in
      let input = Workload.find_input w "a" in
      let fault = Ocolos_util.Fault.create ~seed:5 () in
      Ocolos_util.Fault.arm fault "vtable_patch" (Ocolos_util.Fault.Nth 1);
      let config =
        { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      in
      let r = Measure.ocolos_steady ~config ~profile_s:1.0 ~measure:0.5 w ~input in
      (r, Chrome.to_string tr, Metrics.to_prometheus reg, Json.to_string (Metrics.to_json reg)))

let test_end_to_end_deterministic () =
  let r1, trace1, prom1, json1 = traced_ocolos_run () in
  let r2, trace2, prom2, json2 = traced_ocolos_run () in
  Alcotest.(check bool) "run replays" true
    (r1.Measure.post.Measure.tps = r2.Measure.post.Measure.tps
    && r1.Measure.attempts = r2.Measure.attempts);
  Alcotest.(check string) "trace.json byte-identical" trace1 trace2;
  Alcotest.(check string) "prometheus dump byte-identical" prom1 prom2;
  Alcotest.(check string) "json dump byte-identical" json1 json2;
  Alcotest.(check bool) "one rollback, committed on attempt 2" true
    (r1.Measure.rollbacks = 1 && r1.Measure.attempts = 2)

let test_end_to_end_span_coverage () =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  Trace.install tr;
  Metrics.install reg;
  let r =
    Fun.protect
      ~finally:(fun () ->
        Trace.uninstall ();
        Metrics.uninstall ())
      (fun () ->
        let w = Apps.tiny ~tx_limit:None () in
        let input = Workload.find_input w "a" in
        let fault = Ocolos_util.Fault.create ~seed:5 () in
        Ocolos_util.Fault.arm fault "vtable_patch" (Ocolos_util.Fault.Nth 1);
        let config =
          { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
        in
        Measure.ocolos_steady ~config ~profile_s:1.0 ~measure:0.5 w ~input)
  in
  Alcotest.(check bool) "rolled back once then committed" true
    (r.Measure.rollbacks = 1 && r.Measure.attempts = 2);
  let span_names =
    List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans tr)
  in
  let event_names = List.map (fun (e : Trace.event) -> e.Trace.ev_name) (Trace.events tr) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n span_names))
    [ "ocolos.run";
      "ocolos.warmup";
      "profiler.sample_window";
      "perf2bolt.convert";
      "bolt.run";
      "bolt.cfg";
      "bolt.bb_reorder";
      "bolt.func_reorder";
      "bolt.peephole";
      "bolt.emit";
      "ocolos.background";
      "txn.replace";
      "replace.stw";
      "replace.inject";
      "replace.vtable_patch";
      "replace.call_patch";
      "replace.commit";
      "ocolos.measure" ];
  Alcotest.(check bool) "rollback instant present" true (List.mem "txn.rollback" event_names);
  Alcotest.(check bool) "fault instant present" true (List.mem "fault.fired" event_names);
  (* the rolled-back and the committed attempt are two txn.replace spans *)
  Alcotest.(check int) "two replacement attempts traced" 2
    (List.length (List.filter (( = ) "txn.replace") span_names));
  (* nothing left open once the run returns *)
  Alcotest.(check (list Alcotest.reject)) "no dangling spans" [] (Trace.open_spans tr);
  (* the metrics registry saw both the rollback and the commit *)
  let cval name = Metrics.counter_value (Metrics.counter reg name) in
  Alcotest.(check int) "txn commit counted" 1 (cval "ocolos_txn_commits_total");
  Alcotest.(check int) "txn rollback counted" 1 (cval "ocolos_txn_rollbacks_total");
  (* both attempts' pauses land in the histogram *)
  let h =
    Metrics.histogram reg ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds"
  in
  Alcotest.(check int) "pause histogram has both attempts" 2 (Metrics.hist_count h);
  let ipc = Metrics.histogram reg ~buckets:Metrics.ipc_buckets "ocolos_round_ipc" in
  Alcotest.(check int) "one round IPC observation" 1 (Metrics.hist_count ipc)

let test_timeline_trace_integration () =
  let tr = Trace.create () in
  Trace.install tr;
  let t =
    Fun.protect
      ~finally:(fun () -> Trace.uninstall ())
      (fun () ->
        let w = Apps.tiny ~tx_limit:None () in
        let input = Workload.find_input w "a" in
        Timeline.run ~warmup_s:2 ~profile_s:1 ~post_s:2 w ~input)
  in
  let windows = List.length t.Timeline.points in
  let span_names =
    List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans tr)
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n span_names))
    [ "timeline.run";
      "timeline.warmup";
      "timeline.profiling";
      "timeline.perf2bolt+bolt";
      "timeline.replace";
      "timeline.optimized" ];
  let tps_samples =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ev_kind = Trace.Counter && e.Trace.ev_name = "timeline.tps")
      (Trace.events tr)
  in
  Alcotest.(check int) "one tps sample per window" windows (List.length tps_samples);
  (* counter samples ride the anchored clock: strictly increasing, about one
     simulated second apart *)
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ev_ts_us) tps_samples in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sample timestamps increase" true (increasing ts);
  Alcotest.(check bool) "first window ends at ~1 simulated second" true
    (match ts with t0 :: _ -> t0 >= 1_000_000 && t0 < 1_100_000 | [] -> false)

(* ---- daemon attempt accounting through the registry ---- *)

let run_daemon_with_fault schedule ~max_retries ~seconds =
  let reg = Metrics.create () in
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () -> Metrics.uninstall ())
    (fun () ->
      let w = Apps.tiny ~tx_limit:None () in
      let input = Workload.find_input w "a" in
      let proc = Workload.launch w ~input in
      let fault = Ocolos_util.Fault.create ~seed:5 () in
      Ocolos_util.Fault.arm fault "vtable_patch" schedule;
      let oc =
        Ocolos_core.Ocolos.attach
          ~config:
            { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
          proc
      in
      let config =
        { Daemon.default_config with
          Daemon.profile_s = 1.0;
          warmup_s = 0.5;
          max_retries;
          retry_backoff_s = 1.0;
          min_interval_s = 30.0 }
      in
      let d = Daemon.create ~config oc proc in
      (* Stop at the first give-up: after it the daemon starts a fresh
         campaign, which would blur the per-campaign counters. *)
      let s = ref 0 and gave_up = ref false in
      while (not !gave_up) && !s < seconds do
        incr s;
        Ocolos_proc.Proc.run ~cycle_limit:(Clock.seconds_to_cycles (float_of_int !s)) proc;
        match Daemon.tick d ~now_s:(float_of_int !s) with
        | Daemon.Rolled_back { giving_up = true; _ } -> gave_up := true
        | _ -> ()
      done;
      (d, reg))

let counter_of reg name = Metrics.counter_value (Metrics.counter reg name)

let test_daemon_attempt_accounting_commit () =
  (* Nth 1: attempt 1 rolls back, attempt 2 commits. Each counter must move
     exactly once per event: 2 attempts, 1 retry, 1 rollback, 1 commit. *)
  let d, reg = run_daemon_with_fault (Ocolos_util.Fault.Nth 1) ~max_retries:3 ~seconds:10 in
  Alcotest.(check int) "attempts" 2 (Daemon.attempts d);
  Alcotest.(check int) "retries = attempts - 1" 1 (Daemon.retries d);
  Alcotest.(check int) "rollbacks" 1 (Daemon.rollbacks d);
  Alcotest.(check int) "replacements" 1 (Daemon.replacements d);
  Alcotest.(check int) "registry attempts" 2 (counter_of reg "ocolos_daemon_attempts_total");
  Alcotest.(check int) "registry retries" 1 (counter_of reg "ocolos_daemon_retries_total");
  Alcotest.(check int) "registry rollbacks" 1 (counter_of reg "ocolos_daemon_rollbacks_total");
  Alcotest.(check int) "registry replacements" 1
    (counter_of reg "ocolos_daemon_replacements_total")

let test_daemon_attempt_accounting_giving_up () =
  (* Every 1 with max_retries 2: attempts 1..3 all roll back, then the
     daemon gives up. attempts = 3, retries = 2 (announced AND executed),
     rollbacks = 3 — the old announce-time counting would have drifted had
     any scheduled retry been skipped. *)
  let d, reg = run_daemon_with_fault (Ocolos_util.Fault.Every 1) ~max_retries:2 ~seconds:12 in
  Alcotest.(check int) "attempts" 3 (Daemon.attempts d);
  Alcotest.(check int) "retries" 2 (Daemon.retries d);
  Alcotest.(check int) "rollbacks" 3 (Daemon.rollbacks d);
  Alcotest.(check int) "nothing replaced" 0 (Daemon.replacements d);
  Alcotest.(check int) "attempts = rollbacks + replacements" (Daemon.attempts d)
    (Daemon.rollbacks d + Daemon.replacements d);
  Alcotest.(check int) "registry attempts" 3 (counter_of reg "ocolos_daemon_attempts_total");
  Alcotest.(check int) "registry retries" 2 (counter_of reg "ocolos_daemon_retries_total")

let suite =
  [ QCheck_alcotest.to_alcotest prop_span_tree_well_formed;
    Alcotest.test_case "span close out of order" `Quick test_span_close_out_of_order;
    Alcotest.test_case "with_span closes on exception" `Quick test_with_span_exception;
    Alcotest.test_case "clock is monotonic and ticks" `Quick test_clock_monotonic;
    Alcotest.test_case "ambient helpers no-op when uninstalled" `Quick
      test_ambient_helpers_noop_when_uninstalled;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_bucket_boundaries;
    Alcotest.test_case "metric identity and kinds" `Quick test_metric_identity_and_kinds;
    Alcotest.test_case "export ignores insertion order" `Quick
      test_export_insertion_order_independent;
    Alcotest.test_case "prometheus format golden" `Quick test_prometheus_format;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "json number rendering" `Quick test_json_number_rendering;
    Alcotest.test_case "fixed-seed run emits identical bytes" `Quick
      test_end_to_end_deterministic;
    Alcotest.test_case "span tree covers the pipeline" `Quick test_end_to_end_span_coverage;
    Alcotest.test_case "timeline feeds the trace" `Quick test_timeline_trace_integration;
    Alcotest.test_case "daemon attempt accounting (commit)" `Quick
      test_daemon_attempt_accounting_commit;
    Alcotest.test_case "daemon attempt accounting (giving up)" `Quick
      test_daemon_attempt_accounting_giving_up ]
