(* Tests for the observability layer (Ocolos_obs): span tracing on the
   simulated clock, the metrics registry with its deterministic exporters,
   the Chrome trace-event emitter, and end-to-end byte-stable emission of a
   fixed-seed pipeline run. *)

open Ocolos_workloads
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Chrome = Ocolos_obs.Chrome
module Json = Ocolos_obs.Json
module Events = Ocolos_obs.Events
module Layout_health = Ocolos_obs.Layout_health
module Measure = Ocolos_sim.Measure
module Timeline = Ocolos_sim.Timeline
module Clock = Ocolos_sim.Clock
module Daemon = Ocolos_core.Daemon

(* ---- span tracing ---- *)

(* Build a random span tree (shape a pure function of the seed) through
   [with_span], interleaving instants, then check the structural invariants
   the Chrome exporter relies on. *)
let prop_span_tree_well_formed =
  QCheck.Test.make ~name:"span tree well-formed" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Ocolos_util.Rng.create seed in
      let tr = Trace.create () in
      let rec grow depth =
        let children = if depth >= 4 then 0 else Ocolos_util.Rng.int rng 4 in
        for i = 1 to children do
          Trace.with_span tr (Printf.sprintf "s%d.%d" depth i) (fun _ ->
              if Ocolos_util.Rng.int rng 3 = 0 then Trace.instant tr "tick";
              grow (depth + 1))
        done
      in
      Trace.with_span tr "root" (fun _ -> grow 0);
      let spans = Trace.spans tr in
      let by_id = Hashtbl.create 64 in
      List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.sp_id s) spans;
      (* ids unique, all closed *)
      Hashtbl.length by_id = List.length spans
      && List.for_all (fun (s : Trace.span) -> s.Trace.sp_end_us <> None) spans
      && Trace.open_spans tr = []
      (* begin timestamps strictly increasing in begin order *)
      && (let rec incr_begin = function
            | (a : Trace.span) :: (b : Trace.span) :: rest ->
              a.Trace.sp_begin_us < b.Trace.sp_begin_us && incr_begin (b :: rest)
            | _ -> true
          in
          incr_begin spans)
      (* every child strictly nested inside its parent *)
      && List.for_all
           (fun (s : Trace.span) ->
             match s.Trace.sp_parent with
             | None -> true
             | Some pid -> (
               match Hashtbl.find_opt by_id pid with
               | None -> false
               | Some p ->
                 let e s =
                   match s.Trace.sp_end_us with Some e -> e | None -> max_int
                 in
                 p.Trace.sp_begin_us < s.Trace.sp_begin_us && e s < e p))
           spans)

let test_span_close_out_of_order () =
  (* Spans opened/closed across separate calls (the Perf.start/stop shape):
     closing the outer one first must not orphan or close the inner one. *)
  let tr = Trace.create () in
  let a = Trace.begin_span tr "a" in
  let b = Trace.begin_span tr "b" in
  Trace.end_span tr a;
  Alcotest.(check bool) "a closed" true (a.Trace.sp_end_us <> None);
  Alcotest.(check bool) "b still open" true (b.Trace.sp_end_us = None);
  Alcotest.(check (list string)) "only b open" [ "b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.open_spans tr));
  Alcotest.(check bool) "b's parent is a" true (b.Trace.sp_parent = Some a.Trace.sp_id);
  Trace.end_span tr b;
  Trace.end_span tr b (* idempotent *);
  Alcotest.(check int) "two spans" 2 (Trace.span_count tr);
  Alcotest.(check (list Alcotest.reject)) "nothing open" [] (Trace.open_spans tr)

let test_with_span_exception () =
  let tr = Trace.create () in
  (try Trace.with_span tr "boom" (fun _ -> failwith "kaput") with Failure _ -> ());
  match Trace.spans tr with
  | [ s ] ->
    Alcotest.(check bool) "closed" true (s.Trace.sp_end_us <> None);
    Alcotest.(check bool) "error attr recorded" true
      (List.exists
         (function "error", Trace.S m -> m = "Failure(\"kaput\")" | _ -> false)
         s.Trace.sp_attrs)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_clock_monotonic () =
  let tr = Trace.create () in
  Trace.set_time_s tr 1.0;
  Alcotest.(check int) "anchored at 1s" 1_000_000 (Trace.now_us tr);
  Trace.set_time_s tr 0.5;
  Alcotest.(check int) "anchoring into the past is a no-op" 1_000_000 (Trace.now_us tr);
  Trace.instant tr "e1";
  Trace.instant tr "e2";
  (match Trace.events tr with
  | [ e1; e2 ] ->
    Alcotest.(check int) "first event at anchor" 1_000_000 e1.Trace.ev_ts_us;
    Alcotest.(check int) "one-microsecond tick" 1_000_001 e2.Trace.ev_ts_us
  | _ -> Alcotest.fail "expected two events");
  Trace.advance_s tr 0.25;
  Alcotest.(check int) "advance is relative" 1_250_002 (Trace.now_us tr)

let test_ambient_helpers_noop_when_uninstalled () =
  Trace.uninstall ();
  Metrics.uninstall ();
  let got = Trace.span "x" (fun sp -> sp) in
  Alcotest.(check bool) "span passes None" true (got = None);
  Trace.mark "nothing";
  Trace.plot "nothing" [ ("v", 1.0) ];
  Trace.clock 5.0;
  Metrics.count "c" 1;
  Metrics.record "g" 1.0;
  Metrics.sample ~buckets:[| 1.0 |] "h" 0.5;
  Alcotest.(check bool) "nothing installed" true
    (Trace.installed () = None && Metrics.installed () = None)

(* ---- metrics registry ---- *)

let test_histogram_bucket_boundaries () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[| 1.0; 2.0; 5.0 |] "h" in
  (* Prometheus [le] semantics: v lands in the first bucket with v <= bound,
     so an observation exactly on a bound belongs to that bucket. *)
  Metrics.observe h 1.0;
  Metrics.observe h 1.0000001;
  Metrics.observe h 2.0;
  Metrics.observe h 5.0;
  Metrics.observe h 5.0000001;
  Metrics.observe h 0.0;
  Alcotest.(check bool) "per-bucket counts" true
    (Metrics.hist_buckets h = [| (1.0, 2); (2.0, 2); (5.0, 1); (Float.infinity, 1) |]);
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check bool) "sum" true (Float.abs (Metrics.hist_sum h -. 14.0000002) < 1e-6);
  Alcotest.check_raises "empty buckets rejected"
    (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram r ~buckets:[||] "h_empty"));
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing") (fun () ->
      ignore (Metrics.histogram r ~buckets:[| 1.0; 1.0 |] "h_flat"))

let test_metric_identity_and_kinds () =
  let r = Metrics.create () in
  let c1 = Metrics.counter r ~labels:[ ("b", "2"); ("a", "1") ] "m" in
  (* label order does not create a new identity *)
  let c2 = Metrics.counter r ~labels:[ ("a", "1"); ("b", "2") ] "m" in
  Metrics.inc c1 3;
  Metrics.inc c2 4;
  Alcotest.(check int) "same underlying counter" 7 (Metrics.counter_value c1);
  (* different labels are a different time series *)
  let c3 = Metrics.counter r ~labels:[ ("a", "9") ] "m" in
  Metrics.inc c3 1;
  Alcotest.(check int) "distinct series" 1 (Metrics.counter_value c3);
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Metrics.gauge r ~labels:[ ("a", "1"); ("b", "2") ] "m");
       false
     with Invalid_argument _ -> true);
  let _h = Metrics.histogram r ~buckets:[| 1.0 |] "h" in
  Alcotest.(check bool) "histogram rebucket raises" true
    (try
       ignore (Metrics.histogram r ~buckets:[| 2.0 |] "h");
       false
     with Invalid_argument _ -> true)

let populate_registry order r =
  (* Insert the same families in the given order; exporters must not care. *)
  List.iter
    (fun i ->
      match i with
      | 0 -> Metrics.inc (Metrics.counter r ~help:"transactions" "app_tx_total") 41
      | 1 -> Metrics.set (Metrics.gauge r "app_ipc") 1.75
      | 2 ->
        let h = Metrics.histogram r ~buckets:[| 0.001; 0.01; 0.1 |] "app_pause_seconds" in
        Metrics.observe h 0.005;
        Metrics.observe h 0.05;
        Metrics.observe h 0.5
      | _ -> Metrics.inc (Metrics.counter r ~labels:[ ("point", "pause") ] "app_cuts") 2)
    order

let test_export_insertion_order_independent () =
  let a = Metrics.create () and b = Metrics.create () in
  populate_registry [ 0; 1; 2; 3 ] a;
  populate_registry [ 3; 2; 1; 0 ] b;
  Alcotest.(check string) "prometheus text equal" (Metrics.to_prometheus a)
    (Metrics.to_prometheus b);
  Alcotest.(check string) "json equal"
    (Json.to_string (Metrics.to_json a))
    (Json.to_string (Metrics.to_json b))

let test_prometheus_format () =
  let r = Metrics.create () in
  populate_registry [ 0; 1; 2; 3 ] r;
  let text = Metrics.to_prometheus r in
  let expect =
    "# TYPE app_cuts counter\n\
     app_cuts{point=\"pause\"} 2\n\
     # TYPE app_ipc gauge\n\
     app_ipc 1.75\n\
     # TYPE app_pause_seconds histogram\n\
     app_pause_seconds_bucket{le=\"0.001\"} 0\n\
     app_pause_seconds_bucket{le=\"0.01\"} 1\n\
     app_pause_seconds_bucket{le=\"0.1\"} 2\n\
     app_pause_seconds_bucket{le=\"+Inf\"} 3\n\
     app_pause_seconds_sum 0.555\n\
     app_pause_seconds_count 3\n\
     # HELP app_tx_total transactions\n\
     # TYPE app_tx_total counter\n\
     app_tx_total 41\n"
  in
  Alcotest.(check string) "prometheus golden" expect text

(* ---- Chrome trace-event exporter ---- *)

let test_chrome_golden () =
  (* A hand-checked golden of the exact bytes Chrome.to_string emits for a
     tiny trace: one span wrapping an instant, then a counter sample. Locks
     the event format (key order, clock ticking, sorting, number
     rendering). *)
  let tr = Trace.create () in
  Trace.with_span tr "a" (fun sp ->
      Trace.add_attr sp "n" (Trace.I 7);
      Trace.instant tr "i");
  Trace.counter tr "c" [ ("v", 1.5) ];
  let expect =
    "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"ocolos\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"pipeline\"}},{\"name\":\"a\",\"cat\":\"ocolos\",\"ph\":\"X\",\"ts\":0,\"dur\":2,\"pid\":1,\"tid\":1,\"args\":{\"n\":7}},{\"ph\":\"i\",\"s\":\"t\",\"name\":\"i\",\"cat\":\"ocolos\",\"ts\":1,\"pid\":1,\"tid\":1,\"args\":{}},{\"ph\":\"C\",\"name\":\"c\",\"cat\":\"ocolos\",\"ts\":3,\"pid\":1,\"tid\":1,\"args\":{\"v\":1.5}}],\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "chrome golden" expect (Chrome.to_string tr)

let test_json_number_rendering () =
  Alcotest.(check string) "integer-valued float" "3" (Json.number 3.0);
  Alcotest.(check string) "trailing zeros trimmed" "1.5" (Json.number 1.5);
  Alcotest.(check string) "keeps one fractional digit" "1.1" (Json.number 1.10000);
  Alcotest.(check string) "six digits max" "0.333333" (Json.number (1.0 /. 3.0));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\"" (Json.to_string (Json.String "a\"b\n"))

(* ---- end-to-end: fixed-seed runs emit byte-identical artifacts ---- *)

let traced_ocolos_run () =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  Trace.install tr;
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Metrics.uninstall ())
    (fun () ->
      let w = Apps.tiny ~tx_limit:None () in
      let input = Workload.find_input w "a" in
      let fault = Ocolos_util.Fault.create ~seed:5 () in
      Ocolos_util.Fault.arm fault "vtable_patch" (Ocolos_util.Fault.Nth 1);
      let config =
        { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      in
      let r = Measure.ocolos_steady ~config ~profile_s:1.0 ~measure:0.5 w ~input in
      (r, Chrome.to_string tr, Metrics.to_prometheus reg, Json.to_string (Metrics.to_json reg)))

let test_end_to_end_deterministic () =
  let r1, trace1, prom1, json1 = traced_ocolos_run () in
  let r2, trace2, prom2, json2 = traced_ocolos_run () in
  Alcotest.(check bool) "run replays" true
    (r1.Measure.post.Measure.tps = r2.Measure.post.Measure.tps
    && r1.Measure.attempts = r2.Measure.attempts);
  Alcotest.(check string) "trace.json byte-identical" trace1 trace2;
  Alcotest.(check string) "prometheus dump byte-identical" prom1 prom2;
  Alcotest.(check string) "json dump byte-identical" json1 json2;
  Alcotest.(check bool) "one rollback, committed on attempt 2" true
    (r1.Measure.rollbacks = 1 && r1.Measure.attempts = 2)

let test_end_to_end_span_coverage () =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  Trace.install tr;
  Metrics.install reg;
  let r =
    Fun.protect
      ~finally:(fun () ->
        Trace.uninstall ();
        Metrics.uninstall ())
      (fun () ->
        let w = Apps.tiny ~tx_limit:None () in
        let input = Workload.find_input w "a" in
        let fault = Ocolos_util.Fault.create ~seed:5 () in
        Ocolos_util.Fault.arm fault "vtable_patch" (Ocolos_util.Fault.Nth 1);
        let config =
          { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
        in
        Measure.ocolos_steady ~config ~profile_s:1.0 ~measure:0.5 w ~input)
  in
  Alcotest.(check bool) "rolled back once then committed" true
    (r.Measure.rollbacks = 1 && r.Measure.attempts = 2);
  let span_names =
    List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans tr)
  in
  let event_names = List.map (fun (e : Trace.event) -> e.Trace.ev_name) (Trace.events tr) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n span_names))
    [ "ocolos.run";
      "ocolos.warmup";
      "profiler.sample_window";
      "perf2bolt.convert";
      "bolt.run";
      "bolt.cfg";
      "bolt.bb_reorder";
      "bolt.func_reorder";
      "bolt.peephole";
      "bolt.emit";
      "ocolos.background";
      "txn.replace";
      "replace.stw";
      "replace.inject";
      "replace.vtable_patch";
      "replace.call_patch";
      "replace.commit";
      "ocolos.measure" ];
  Alcotest.(check bool) "rollback instant present" true (List.mem "txn.rollback" event_names);
  Alcotest.(check bool) "fault instant present" true (List.mem "fault.fired" event_names);
  (* the rolled-back and the committed attempt are two txn.replace spans *)
  Alcotest.(check int) "two replacement attempts traced" 2
    (List.length (List.filter (( = ) "txn.replace") span_names));
  (* nothing left open once the run returns *)
  Alcotest.(check (list Alcotest.reject)) "no dangling spans" [] (Trace.open_spans tr);
  (* the metrics registry saw both the rollback and the commit *)
  let cval name = Metrics.counter_value (Metrics.counter reg name) in
  Alcotest.(check int) "txn commit counted" 1 (cval "ocolos_txn_commits_total");
  Alcotest.(check int) "txn rollback counted" 1 (cval "ocolos_txn_rollbacks_total");
  (* both attempts' pauses land in the histogram *)
  let h =
    Metrics.histogram reg ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds"
  in
  Alcotest.(check int) "pause histogram has both attempts" 2 (Metrics.hist_count h);
  let ipc = Metrics.histogram reg ~buckets:Metrics.ipc_buckets "ocolos_round_ipc" in
  Alcotest.(check int) "one round IPC observation" 1 (Metrics.hist_count ipc)

(* ---- structured event log ---- *)

(* The traced run again, now with an event log installed alongside the
   trace. Returns the Chrome bytes too: installing an event log reads the
   trace clock without ticking it, so the trace must be byte-identical to
   the no-events run. *)
let evented_ocolos_run () =
  let tr = Trace.create () in
  let reg = Metrics.create () in
  let ev = Events.create () in
  Trace.install tr;
  Metrics.install reg;
  Events.install ev;
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Metrics.uninstall ();
      Events.uninstall ())
    (fun () ->
      let w = Apps.tiny ~tx_limit:None () in
      let input = Workload.find_input w "a" in
      let fault = Ocolos_util.Fault.create ~seed:5 () in
      Ocolos_util.Fault.arm fault "vtable_patch" (Ocolos_util.Fault.Nth 1);
      let config =
        { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      in
      let r = Measure.ocolos_steady ~config ~profile_s:1.0 ~measure:0.5 w ~input in
      (r, Chrome.to_string tr, Trace.spans tr, ev))

let test_event_log_deterministic () =
  (* Two identical fault-injected runs must serialize byte-identically —
     the JSONL log rides only the simulated clock and sequence numbers. *)
  let _, _, _, ev1 = evented_ocolos_run () in
  let _, _, _, ev2 = evented_ocolos_run () in
  Alcotest.(check bool) "log is non-trivial" true (Events.count ev1 > 10);
  Alcotest.(check string) "JSONL byte-identical" (Events.to_jsonl ev1) (Events.to_jsonl ev2)

let test_event_log_covers_pipeline_and_cross_links () =
  let r, chrome_bytes, spans, ev = evented_ocolos_run () in
  Alcotest.(check bool) "rolled back once then committed" true
    (r.Measure.rollbacks = 1 && r.Measure.attempts = 2);
  (* The no-events golden run: installing the event log must not have
     perturbed a single trace byte. *)
  let _, chrome_plain, _, _ = traced_ocolos_run () in
  Alcotest.(check string) "trace bytes unchanged by event log" chrome_plain chrome_bytes;
  let types = List.map (fun (e : Events.event) -> e.Events.e_type) (Events.events ev) in
  List.iter
    (fun t -> Alcotest.(check bool) (t ^ " logged") true (List.mem t types))
    [ "profile.window_open";
      "profile.window_close";
      "bolt.pass_start";
      "bolt.pass_end";
      "txn.begin";
      "txn.rollback";
      "txn.commit";
      "fault.fired" ];
  (* Span cross-links: events recorded inside pipeline spans carry the id
     of a span that exists in the trace with the same id. *)
  let span_ids = List.map (fun (s : Trace.span) -> s.Trace.sp_id) spans in
  let linked =
    List.filter_map (fun (e : Events.event) -> e.Events.e_span) (Events.events ev)
  in
  Alcotest.(check bool) "some events are span-linked" true (linked <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "span %d exists in the trace" id)
        true (List.mem id span_ids))
    linked;
  (* txn.rollback carries the fired point *)
  match
    List.find_opt (fun (e : Events.event) -> e.Events.e_type = "txn.rollback") (Events.events ev)
  with
  | None -> Alcotest.fail "no txn.rollback event"
  | Some e -> (
    match List.assoc_opt "point" e.Events.e_fields with
    | Some (Trace.S "vtable_patch") -> ()
    | _ -> Alcotest.fail "rollback event does not name the fired point")

let test_event_jsonl_format () =
  let tr = Trace.create () in
  let ev = Events.create () in
  Trace.install tr;
  Events.install ev;
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Events.uninstall ())
    (fun () ->
      Events.log "first";
      Trace.with_span tr "outer" (fun sp ->
          Events.log "inner" ~fields:[ ("k", Trace.S "v"); ("n", Trace.I 3) ];
          ignore sp));
  match Events.events ev with
  | [ e1; e2 ] ->
    Alcotest.(check string) "bare event golden"
      "{\"seq\":0,\"ts_us\":0,\"type\":\"first\",\"span\":null,\"fields\":{}}"
      (Events.event_to_string e1);
    (* inside the span: ts after the span-begin tick, span id linked *)
    Alcotest.(check string) "in-span event golden"
      "{\"seq\":1,\"ts_us\":1,\"type\":\"inner\",\"span\":0,\"fields\":{\"k\":\"v\",\"n\":3}}"
      (Events.event_to_string e2);
    Alcotest.(check string) "jsonl is lines + trailing newline"
      (Events.event_to_string e1 ^ "\n" ^ Events.event_to_string e2 ^ "\n")
      (Events.to_jsonl ev)
  | l -> Alcotest.failf "expected two events, got %d" (List.length l)

(* ---- per-replica Perfetto process tracks ---- *)

let test_chrome_replica_pids () =
  let tr = Trace.create () in
  Trace.with_span tr "controller" (fun _ -> ());
  Trace.in_replica 0 (fun () -> Trace.with_span tr "r0.work" (fun _ -> ()));
  Trace.in_replica 3 (fun () -> Trace.instant tr "r3.mark");
  let s = Chrome.to_string tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  (* replica n lands on pid n+2 (controller keeps pid 1), with its own
     process_name meta; the replica attr itself is stripped from args *)
  Alcotest.(check bool) "replica 0 process meta" true
    (contains s "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,\"args\":{\"name\":\"ocolos replica 0\"}}");
  Alcotest.(check bool) "replica 3 process meta" true
    (contains s "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":5,\"tid\":1,\"args\":{\"name\":\"ocolos replica 3\"}}");
  Alcotest.(check bool) "replica span on its pid" true
    (contains s "\"name\":\"r0.work\",\"cat\":\"ocolos\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\"pid\":2,\"tid\":1,\"args\":{}");
  Alcotest.(check bool) "controller span stays on pid 1" true
    (contains s "\"name\":\"controller\",\"cat\":\"ocolos\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1");
  Alcotest.(check bool) "replica attr stripped from args" true
    (not (contains s "\"replica\""));
  (* a replica-free trace emits no replica metas at all (golden-protected) *)
  let tr2 = Trace.create () in
  Trace.with_span tr2 "a" (fun _ -> ());
  Alcotest.(check bool) "no replica metas without replicas" true
    (not (contains (Chrome.to_string tr2) "replica"))

(* ---- layout-health attribution ---- *)

let test_layout_health_hand_computed () =
  let t = Layout_health.create () in
  (* C0: two windows totalling 20k instrs, 10k cycles, 40 L1i misses, 10
     iTLB, 100 BTB, 3000 taken. C1: one window, 10k instrs, 4k cycles,
     5/1/10/1200. All rates hand-computed. *)
  Layout_health.record_window t ~version:0
    { Layout_health.s_instructions = 12_000;
      s_cycles = 6_000.0;
      s_l1i_misses = 30;
      s_itlb_misses = 6;
      s_btb_misses = 70;
      s_taken_branches = 2_000 };
  Layout_health.record_window t ~replica:1 ~version:0
    { Layout_health.s_instructions = 8_000;
      s_cycles = 4_000.0;
      s_l1i_misses = 10;
      s_itlb_misses = 4;
      s_btb_misses = 30;
      s_taken_branches = 1_000 };
  Layout_health.record_window t ~version:1
    { Layout_health.s_instructions = 10_000;
      s_cycles = 4_000.0;
      s_l1i_misses = 5;
      s_itlb_misses = 1;
      s_btb_misses = 10;
      s_taken_branches = 1_200 };
  Alcotest.(check (list int)) "versions seen" [ 0; 1 ] (Layout_health.versions t);
  (match Layout_health.rates t 0 with
  | None -> Alcotest.fail "no C0 rates"
  | Some r ->
    Alcotest.(check int) "C0 windows" 2 r.Layout_health.r_windows;
    Alcotest.(check int) "C0 instructions" 20_000 r.Layout_health.r_instructions;
    Alcotest.(check (float 1e-9)) "C0 ipc" 2.0 r.Layout_health.r_ipc;
    Alcotest.(check (float 1e-9)) "C0 l1i mpki" 2.0 r.Layout_health.r_l1i_mpki;
    Alcotest.(check (float 1e-9)) "C0 itlb mpki" 0.5 r.Layout_health.r_itlb_mpki;
    Alcotest.(check (float 1e-9)) "C0 btb mpki" 5.0 r.Layout_health.r_btb_mpki;
    Alcotest.(check (float 1e-9)) "C0 taken pki" 150.0 r.Layout_health.r_taken_pki);
  (match Layout_health.rates t 1 with
  | None -> Alcotest.fail "no C1 rates"
  | Some r ->
    Alcotest.(check (float 1e-9)) "C1 ipc" 2.5 r.Layout_health.r_ipc;
    Alcotest.(check (float 1e-9)) "C1 l1i mpki" 0.5 r.Layout_health.r_l1i_mpki);
  Alcotest.(check (list int)) "replica breakdown recorded" [ 1 ] (Layout_health.replicas t);
  (* per-function contribution deltas: f regresses (+1.0 L1i/Ki), g
     improves; the ranking puts f first *)
  Layout_health.record_func_window t ~version:0 ~fid:1 ~name:"f"
    { Layout_health.fc_l1i = 20; fc_itlb = 0; fc_btb = 0; fc_taken = 0 };
  Layout_health.record_func_window t ~version:0 ~fid:2 ~name:"g"
    { Layout_health.fc_l1i = 20; fc_itlb = 0; fc_btb = 0; fc_taken = 0 };
  Layout_health.record_func_window t ~version:1 ~fid:1 ~name:"f"
    { Layout_health.fc_l1i = 20; fc_itlb = 0; fc_btb = 0; fc_taken = 0 };
  Layout_health.record_func_window t ~version:1 ~fid:2 ~name:"g"
    { Layout_health.fc_l1i = 2; fc_itlb = 0; fc_btb = 0; fc_taken = 0 };
  (match Layout_health.regressions t ~from_version:0 ~to_version:1 with
  | fd_f :: fd_g :: _ ->
    Alcotest.(check string) "worst regression first" "f" fd_f.Layout_health.fd_name;
    (* f: 20/20k = 1.0/Ki at C0, 20/10k = 2.0/Ki at C1 -> +1.0 *)
    Alcotest.(check (float 1e-9)) "f delta" 1.0 fd_f.Layout_health.fd_l1i;
    (* g: 1.0/Ki -> 0.2/Ki -> -0.8 *)
    Alcotest.(check (float 1e-9)) "g delta" (-0.8) fd_g.Layout_health.fd_l1i
  | _ -> Alcotest.fail "expected two function rows");
  (* ambient helpers no-op when nothing installed *)
  Layout_health.uninstall ();
  Layout_health.window ~version:9
    { Layout_health.s_instructions = 1;
      s_cycles = 1.0;
      s_l1i_misses = 0;
      s_itlb_misses = 0;
      s_btb_misses = 0;
      s_taken_branches = 0 };
  Alcotest.(check bool) "no ambient accumulator" true (Layout_health.installed () = None)

let test_timeline_trace_integration () =
  let tr = Trace.create () in
  Trace.install tr;
  let t =
    Fun.protect
      ~finally:(fun () -> Trace.uninstall ())
      (fun () ->
        let w = Apps.tiny ~tx_limit:None () in
        let input = Workload.find_input w "a" in
        Timeline.run ~warmup_s:2 ~profile_s:1 ~post_s:2 w ~input)
  in
  let windows = List.length t.Timeline.points in
  let span_names =
    List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans tr)
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n span_names))
    [ "timeline.run";
      "timeline.warmup";
      "timeline.profiling";
      "timeline.perf2bolt+bolt";
      "timeline.replace";
      "timeline.optimized" ];
  let tps_samples =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ev_kind = Trace.Counter && e.Trace.ev_name = "timeline.tps")
      (Trace.events tr)
  in
  Alcotest.(check int) "one tps sample per window" windows (List.length tps_samples);
  (* counter samples ride the anchored clock: strictly increasing, about one
     simulated second apart *)
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ev_ts_us) tps_samples in
  let rec increasing = function
    | a :: b :: rest -> a < b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "sample timestamps increase" true (increasing ts);
  Alcotest.(check bool) "first window ends at ~1 simulated second" true
    (match ts with t0 :: _ -> t0 >= 1_000_000 && t0 < 1_100_000 | [] -> false)

(* ---- daemon attempt accounting through the registry ---- *)

let run_daemon_with_fault schedule ~max_retries ~seconds =
  let reg = Metrics.create () in
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () -> Metrics.uninstall ())
    (fun () ->
      let w = Apps.tiny ~tx_limit:None () in
      let input = Workload.find_input w "a" in
      let proc = Workload.launch w ~input in
      let fault = Ocolos_util.Fault.create ~seed:5 () in
      Ocolos_util.Fault.arm fault "vtable_patch" schedule;
      let oc =
        Ocolos_core.Ocolos.attach
          ~config:
            { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
          proc
      in
      let config =
        { Daemon.default_config with
          Daemon.profile_s = 1.0;
          warmup_s = 0.5;
          max_retries;
          retry_backoff_s = 1.0;
          min_interval_s = 30.0 }
      in
      let d = Daemon.create ~config oc proc in
      (* Stop at the first give-up: after it the daemon starts a fresh
         campaign, which would blur the per-campaign counters. *)
      let s = ref 0 and gave_up = ref false in
      while (not !gave_up) && !s < seconds do
        incr s;
        Ocolos_proc.Proc.run ~cycle_limit:(Clock.seconds_to_cycles (float_of_int !s)) proc;
        match Daemon.tick d ~now_s:(float_of_int !s) with
        | Daemon.Rolled_back { giving_up = true; _ } -> gave_up := true
        | _ -> ()
      done;
      (d, reg))

let counter_of reg name = Metrics.counter_value (Metrics.counter reg name)

let test_daemon_attempt_accounting_commit () =
  (* Nth 1: attempt 1 rolls back, attempt 2 commits. Each counter must move
     exactly once per event: 2 attempts, 1 retry, 1 rollback, 1 commit. *)
  let d, reg = run_daemon_with_fault (Ocolos_util.Fault.Nth 1) ~max_retries:3 ~seconds:10 in
  Alcotest.(check int) "attempts" 2 (Daemon.attempts d);
  Alcotest.(check int) "retries = attempts - 1" 1 (Daemon.retries d);
  Alcotest.(check int) "rollbacks" 1 (Daemon.rollbacks d);
  Alcotest.(check int) "replacements" 1 (Daemon.replacements d);
  Alcotest.(check int) "registry attempts" 2 (counter_of reg "ocolos_daemon_attempts_total");
  Alcotest.(check int) "registry retries" 1 (counter_of reg "ocolos_daemon_retries_total");
  Alcotest.(check int) "registry rollbacks" 1 (counter_of reg "ocolos_daemon_rollbacks_total");
  Alcotest.(check int) "registry replacements" 1
    (counter_of reg "ocolos_daemon_replacements_total")

let test_daemon_attempt_accounting_giving_up () =
  (* Every 1 with max_retries 2: attempts 1..3 all roll back, then the
     daemon gives up. attempts = 3, retries = 2 (announced AND executed),
     rollbacks = 3 — the old announce-time counting would have drifted had
     any scheduled retry been skipped. *)
  let d, reg = run_daemon_with_fault (Ocolos_util.Fault.Every 1) ~max_retries:2 ~seconds:12 in
  Alcotest.(check int) "attempts" 3 (Daemon.attempts d);
  Alcotest.(check int) "retries" 2 (Daemon.retries d);
  Alcotest.(check int) "rollbacks" 3 (Daemon.rollbacks d);
  Alcotest.(check int) "nothing replaced" 0 (Daemon.replacements d);
  Alcotest.(check int) "attempts = rollbacks + replacements" (Daemon.attempts d)
    (Daemon.rollbacks d + Daemon.replacements d);
  Alcotest.(check int) "registry attempts" 3 (counter_of reg "ocolos_daemon_attempts_total");
  Alcotest.(check int) "registry retries" 2 (counter_of reg "ocolos_daemon_retries_total")

let suite =
  [ QCheck_alcotest.to_alcotest prop_span_tree_well_formed;
    Alcotest.test_case "span close out of order" `Quick test_span_close_out_of_order;
    Alcotest.test_case "with_span closes on exception" `Quick test_with_span_exception;
    Alcotest.test_case "clock is monotonic and ticks" `Quick test_clock_monotonic;
    Alcotest.test_case "ambient helpers no-op when uninstalled" `Quick
      test_ambient_helpers_noop_when_uninstalled;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_bucket_boundaries;
    Alcotest.test_case "metric identity and kinds" `Quick test_metric_identity_and_kinds;
    Alcotest.test_case "export ignores insertion order" `Quick
      test_export_insertion_order_independent;
    Alcotest.test_case "prometheus format golden" `Quick test_prometheus_format;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "json number rendering" `Quick test_json_number_rendering;
    Alcotest.test_case "fixed-seed run emits identical bytes" `Quick
      test_end_to_end_deterministic;
    Alcotest.test_case "span tree covers the pipeline" `Quick test_end_to_end_span_coverage;
    Alcotest.test_case "event log is byte-deterministic" `Quick test_event_log_deterministic;
    Alcotest.test_case "event log covers the pipeline and cross-links spans" `Quick
      test_event_log_covers_pipeline_and_cross_links;
    Alcotest.test_case "event JSONL format golden" `Quick test_event_jsonl_format;
    Alcotest.test_case "chrome gives replicas their own pids" `Quick test_chrome_replica_pids;
    Alcotest.test_case "layout health matches hand computation" `Quick
      test_layout_health_hand_computed;
    Alcotest.test_case "timeline feeds the trace" `Quick test_timeline_trace_integration;
    Alcotest.test_case "daemon attempt accounting (commit)" `Quick
      test_daemon_attempt_accounting_commit;
    Alcotest.test_case "daemon attempt accounting (giving up)" `Quick
      test_daemon_attempt_accounting_giving_up ]
