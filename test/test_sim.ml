(* Tests for the measurement drivers. *)

open Ocolos_workloads
module Measure = Ocolos_sim.Measure
module Timeline = Ocolos_sim.Timeline
module Clock = Ocolos_sim.Clock

let test_clock_roundtrip () =
  Alcotest.(check (float 1e-9)) "roundtrip" 2.5
    (Clock.cycles_to_seconds (Clock.seconds_to_cycles 2.5))

let test_steady_measurement () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let s = Measure.steady ~warmup:0.05 ~measure:0.2 w ~input in
  Alcotest.(check bool) "tps positive" true (s.Measure.tps > 0.0);
  Alcotest.(check bool) "instrs counted" true
    (s.Measure.counters.Ocolos_uarch.Counters.instructions > 0);
  let td = s.Measure.topdown in
  Alcotest.(check bool) "topdown normalized" true
    (td.Ocolos_uarch.Counters.retiring > 0.0 && td.Ocolos_uarch.Counters.retiring <= 1.0)

let test_steady_deterministic () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let a = Measure.steady ~warmup:0.05 ~measure:0.2 w ~input in
  let b = Measure.steady ~warmup:0.05 ~measure:0.2 w ~input in
  Alcotest.(check (float 1e-9)) "same tps" a.Measure.tps b.Measure.tps

let test_ocolos_steady_improves_tiny () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let base = Measure.steady ~warmup:0.1 ~measure:0.3 w ~input in
  let r = Measure.ocolos_steady ~warmup:0.1 ~profile_s:0.2 ~measure:0.3 w ~input in
  Alcotest.(check bool) "replacement happened" true
    (r.Measure.stats.Ocolos_core.Ocolos.version = 1);
  Alcotest.(check bool)
    (Printf.sprintf "ocolos >= 0.9x original (%.0f vs %.0f)" r.Measure.post.Measure.tps
       base.Measure.tps)
    true
    (r.Measure.post.Measure.tps >= 0.9 *. base.Measure.tps)

let test_timeline_regions () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let t = Timeline.run ~warmup_s:2 ~profile_s:1 ~post_s:2 w ~input in
  let regions = List.map (fun p -> p.Timeline.region) t.Timeline.points in
  Alcotest.(check bool) "has warmup" true (List.mem Timeline.Warmup regions);
  Alcotest.(check bool) "has profiling" true (List.mem Timeline.Profiling regions);
  Alcotest.(check bool) "has background" true (List.mem Timeline.Background regions);
  Alcotest.(check bool) "has pause" true (List.mem Timeline.Pause regions);
  Alcotest.(check bool) "has optimized" true (List.mem Timeline.Optimized regions);
  (* Seconds are consecutive from 0. *)
  List.iteri
    (fun i p -> Alcotest.(check int) "second index" i p.Timeline.second)
    t.Timeline.points;
  (* Optimized region beats warmup on average. *)
  let avg r =
    let xs = List.filter (fun p -> p.Timeline.region = r) t.Timeline.points in
    List.fold_left (fun a p -> a +. p.Timeline.tps) 0.0 xs /. float_of_int (List.length xs)
  in
  Alcotest.(check bool) "optimized faster than warmup" true
    (avg Timeline.Optimized > avg Timeline.Warmup);
  (* p95 latency spikes in the pause window. *)
  let pause_p95 =
    List.find (fun p -> p.Timeline.region = Timeline.Pause) t.Timeline.points
  in
  Alcotest.(check bool) "pause p95 positive" true (pause_p95.Timeline.p95_ms > 0.0)

let test_rss_model () =
  let w = Apps.tiny () in
  let input = Workload.find_input w "a" in
  let base = Ocolos_sim.Rss.of_binary ~nthreads:2 w.Workload.binary ~input in
  Alcotest.(check bool) "baseline positive" true (base > 0);
  let stats =
    { Ocolos_core.Ocolos.version = 1;
      vtable_entries_patched = 3;
      call_sites_patched = 10;
      stack_live_funcs = 4;
      frames_migrated = 6;
      osr_stubs = 1;
      copied_funcs = 0;
      funcs_optimized = 5;
      code_bytes_injected = 5000;
      gc_bytes_freed = 0;
      pause_seconds = 0.01 }
  in
  let oc =
    Ocolos_sim.Rss.ocolos ~nthreads:2 w.Workload.binary ~input ~stats ~profile_records:1000
      ~bolt_work_instrs:2000
  in
  Alcotest.(check bool) "ocolos adds memory" true (oc > base);
  let oc_drain =
    Ocolos_sim.Rss.ocolos ~nthreads:2 ~resident_extra:4096 w.Workload.binary ~input ~stats
      ~profile_records:1000 ~bolt_work_instrs:2000
  in
  Alcotest.(check int) "drain-window residue counted in the peak" (oc + 4096) oc_drain;
  Alcotest.(check bool) "mib conversion" true (Ocolos_sim.Rss.mib (1 lsl 20) = 1.0)

let suite =
  [ Alcotest.test_case "clock roundtrip" `Quick test_clock_roundtrip;
    Alcotest.test_case "steady measurement" `Quick test_steady_measurement;
    Alcotest.test_case "steady deterministic" `Quick test_steady_deterministic;
    Alcotest.test_case "ocolos steady improves tiny" `Slow test_ocolos_steady_improves_tiny;
    Alcotest.test_case "timeline regions" `Slow test_timeline_regions;
    Alcotest.test_case "rss model" `Quick test_rss_model ]
