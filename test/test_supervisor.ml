(* Crash-recovery tests: Supervisor.kill_at / restart and the Chaos
   kill-at-every-point property, on a subset of the fault catalog covering
   every domain (the CI chaos job sweeps the full catalog x seeds). *)

open Ocolos_workloads
module Daemon = Ocolos_core.Daemon
module Guard = Ocolos_core.Guard
module Supervisor = Ocolos_core.Supervisor
module Chaos = Ocolos_sim.Chaos
module Fault = Ocolos_util.Fault

(* One point per fault domain, plus the transaction points whose kill paths
   exercise distinct recovery machinery: rollback of a half-applied
   replacement (pause/inject_code/commit), a death mid-frame-rewrite or
   mid-stub-build (osr_frame/osr_stub), and reattach over a committed later
   version with residue outstanding (gc_reap needs a stub to die first). *)
let subset_points =
  [ "perf.detach";
    "perf2bolt.aggregate";
    "bolt.func_reorder";
    "proc.pause_timeout";
    "mem.exhausted";
    "pause";
    "inject_code";
    "commit";
    "osr_frame";
    "osr_stub";
    "gc_reap" ]

let test_chaos_subset_sweep () =
  let results = Chaos.sweep ~seeds:[ 1 ] ~points:subset_points () in
  Alcotest.(check int) "all scenarios ran" (List.length subset_points) (List.length results);
  List.iter
    (fun r ->
      if not (Chaos.passed r) then
        Alcotest.fail (Printf.sprintf "chaos scenario failed: %s" (Chaos.result_to_string r)))
    results;
  (* Reaping needs residue from an earlier committed round to die: a gc_reap
     death proves the restarted daemon reattached over a non-initial
     committed version. *)
  List.iter
    (fun r ->
      match r.Chaos.r_outcome with
      | Chaos.Verified { survivor_version; _ } when r.Chaos.r_point = "gc_reap" ->
        Alcotest.(check bool)
          (r.Chaos.r_point ^ " dies with a committed replacement live")
          true (survivor_version >= 1)
      | _ -> ())
    results

(* The same kill/restart property with the target on the superblock/trace
   engine: every death and rollback now also has to sever exit-chain links
   and inline caches (Chaos's verdict includes [cache_ok], the
   [Proc.validate_code_cache] sweep after both drains). The points are the
   ones whose rollbacks replay live-text writes — the paths that would leave
   a stale chained exit into aborted or reclaimed text. *)
let test_chaos_traces_engine () =
  let config = { Chaos.default_config with Chaos.engine = `Traces } in
  let points = [ "inject_code"; "commit"; "osr_frame"; "gc_reap" ] in
  let results = Chaos.sweep ~config ~seeds:[ 1 ] ~points () in
  Alcotest.(check int) "all scenarios ran" (List.length points) (List.length results);
  List.iter
    (fun r ->
      if not (Chaos.passed r) then
        Alcotest.fail
          (Printf.sprintf "chaos scenario failed under `Traces: %s" (Chaos.result_to_string r)))
    results

let setup ?(seed = 5) ?fault () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch ~seed w ~input in
  let fault = match fault with Some f -> f | None -> Fault.create ~seed () in
  let oc =
    Ocolos_core.Ocolos.attach
      ~config:{ Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      proc
  in
  (proc, oc, fault)

let daemon_config =
  { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 2.0 }

let step proc i =
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:12_000 proc;
  float_of_int (i + 1)

let test_kill_at_survives_unreached_point () =
  (* A tick budget too small for the campaign to reach the armed point:
     kill_at reports Survived and leaves the point disarmed. *)
  let proc, oc, fault = setup () in
  let d = Daemon.create ~config:daemon_config oc proc in
  (match Supervisor.kill_at ~fault ~point:"commit" d ~step:(step proc) ~max_ticks:1 with
  | Supervisor.Survived -> ()
  | Supervisor.Died _ -> Alcotest.fail "died before the campaign could reach commit");
  Alcotest.(check bool) "point disarmed on exit" false (Fault.lethal fault "commit");
  (* The same daemon keeps working after the aborted kill attempt. *)
  match Supervisor.run_to_convergence d ~step:(step proc) ~max_ticks:40 with
  | Supervisor.Converged_replaced { version; _ } ->
    Alcotest.(check bool) "replaced after disarm" true (version >= 1)
  | c -> Alcotest.fail ("expected replacement, got " ^ Supervisor.convergence_to_string c)

let test_restart_carries_guard_state () =
  (* The restarted daemon shares the dead daemon's guard (as an on-disk
     sidecar would): quarantine and breaker memory survive the crash. *)
  let proc, oc, fault = setup () in
  let d = Daemon.create ~config:daemon_config oc proc in
  let g = Daemon.guard d in
  Guard.record_func_failures g [ (2, "bolt.cfg"); (2, "bolt.cfg") ];
  Guard.campaign_failed g ~now_s:0.0;
  let outcome = Supervisor.kill_at ~fault ~point:"pause" d ~step:(step proc) ~max_ticks:30 in
  (match outcome with
  | Supervisor.Died { d_point = "pause"; _ } -> ()
  | Supervisor.Died d -> Alcotest.fail ("died at the wrong point: " ^ d.Supervisor.d_point)
  | Supervisor.Survived -> Alcotest.fail "kill point never fired");
  ignore oc;
  let d' = Supervisor.restart ~config:daemon_config ~guard:g proc in
  Alcotest.(check bool) "guard identity carried" true (Daemon.guard d' == g);
  Alcotest.(check (list int)) "quarantine survives the crash" [ 2 ] (Daemon.quarantined d');
  Alcotest.(check int) "failure memory survives" 1 (Guard.consecutive_failures g);
  match Supervisor.run_to_convergence d' ~step:(step proc) ~max_ticks:40 with
  | Supervisor.Converged_replaced { version; _ } ->
    Alcotest.(check bool) "restart converges" true (version >= 1);
    Alcotest.(check int) "commit clears consecutive failures" 0 (Guard.consecutive_failures g);
    Alcotest.(check (list int)) "quarantine is permanent" [ 2 ] (Daemon.quarantined d')
  | c -> Alcotest.fail ("expected replacement, got " ^ Supervisor.convergence_to_string c)

let test_restart_on_clean_process () =
  (* Reattach to a process nobody crashed on: the fresh daemon just runs a
     normal first campaign. *)
  let w = Apps.tiny ~tx_limit:None () in
  let proc = Workload.launch ~seed:7 w ~input:(Workload.find_input w "a") in
  let d = Supervisor.restart ~config:daemon_config proc in
  match Supervisor.run_to_convergence d ~step:(step proc) ~max_ticks:40 with
  | Supervisor.Converged_replaced { version = 1; _ } -> ()
  | c -> Alcotest.fail ("expected C1, got " ^ Supervisor.convergence_to_string c)

let suite =
  [ Alcotest.test_case "kill_at survives unreached point" `Quick
      test_kill_at_survives_unreached_point;
    Alcotest.test_case "restart carries guard state" `Quick test_restart_carries_guard_state;
    Alcotest.test_case "restart on clean process" `Quick test_restart_on_clean_process;
    Alcotest.test_case "chaos: kill/restart subset sweep" `Slow test_chaos_subset_sweep;
    Alcotest.test_case "chaos: kill/restart under `Traces" `Slow test_chaos_traces_engine ]
