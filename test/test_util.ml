(* Unit tests for ocolos_util: PRNG, statistics, table rendering, fault
   registry. *)

open Ocolos_util

(* ---- fault registry: schedule validation, domains, lethal arming ---- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let test_fault_schedule_validation () =
  let ok s = Alcotest.(check bool) "accepted" true (Fault.validate_schedule s = Ok ()) in
  ok (Fault.Nth 1);
  ok (Fault.Every 1);
  ok (Fault.Prob 1.0);
  ok (Fault.Prob 0.001);
  ok Fault.Never;
  let rejected s reason_frag =
    match Fault.validate_schedule s with
    | Ok () -> Alcotest.fail "vacuous schedule accepted"
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "reason %S mentions %S" msg reason_frag)
        true
        (contains ~affix:reason_frag msg)
  in
  rejected (Fault.Nth 0) ">= 1";
  rejected (Fault.Nth (-3)) "-3";
  rejected (Fault.Every 0) ">= 1";
  rejected (Fault.Prob 0.0) "(0, 1]";
  rejected (Fault.Prob 1.5) "1.5";
  rejected (Fault.Prob (-0.1)) "(0, 1]";
  let f = Fault.create () in
  Alcotest.check_raises "arm rejects" (Invalid_argument "Fault.arm pause: nth must be >= 1 (got 0)")
    (fun () -> Fault.arm f "pause" (Fault.Nth 0));
  Alcotest.check_raises "kill rejects too"
    (Invalid_argument "Fault.arm pause: every must be >= 1 (got 0)") (fun () ->
      Fault.kill f "pause" (Fault.Every 0))

let test_fault_parse_arm () =
  let f = Fault.create ~seed:1 () in
  Alcotest.(check (result string string)) "bare point" (Ok "pause") (Fault.parse_arm f "pause");
  Alcotest.(check (result string string)) "nth" (Ok "inject_code")
    (Fault.parse_arm f "inject_code:3");
  Alcotest.(check (result string string)) "every" (Ok "perf.sample_drop")
    (Fault.parse_arm f "perf.sample_drop:every:2");
  Alcotest.(check (result string string)) "prob" (Ok "commit")
    (Fault.parse_arm f "commit:p:0.5");
  let rejects spec =
    match Fault.parse_arm f spec with
    | Ok p -> Alcotest.fail (Printf.sprintf "%S accepted as %S" spec p)
    | Error msg -> Alcotest.(check bool) "descriptive" true (String.length msg > 10)
  in
  rejects "pause:0";
  rejects "pause:every:0";
  rejects "pause:p:0";
  rejects "pause:p:1.5";
  rejects "pause:p:zero";
  rejects "pause:sometimes";
  (* Successful parses are armed: nth 1 fires on the first cut. *)
  (try
     Fault.cut f "pause";
     Alcotest.fail "armed point did not fire"
   with Fault.Injected ("pause", 1) -> ());
  Alcotest.(check int) "fired once" 1 (Fault.fired f "pause")

let test_fault_domains () =
  Alcotest.(check string) "dotted" "perf" (Fault.domain_of "perf.sample_drop");
  Alcotest.(check string) "dotted 2" "bolt" (Fault.domain_of "bolt.func_reorder");
  Alcotest.(check string) "undotted is txn" "txn" (Fault.domain_of "pause");
  Alcotest.(check string) "undotted is txn 2" "txn" (Fault.domain_of "osr_frame")

let test_fault_lethal () =
  let f = Fault.create () in
  Fault.kill f "inject_code" (Fault.Nth 2);
  Alcotest.(check bool) "lethal" true (Fault.lethal f "inject_code");
  Fault.cut f "inject_code";
  (* A survivable-fault handler must not absorb a kill. *)
  let escaped =
    try
      (try Fault.cut f "inject_code" with Fault.Injected _ -> ());
      false
    with Fault.Killed ("inject_code", 2) -> true
  in
  Alcotest.(check bool) "Killed escapes Injected handlers" true escaped;
  Fault.disarm f "inject_code";
  Alcotest.(check bool) "disarm clears lethal" false (Fault.lethal f "inject_code");
  Fault.cut f "inject_code"

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 3 9 in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bool_bias () =
  let rng = Rng.create 9 in
  let n = 10000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng 0.8 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to 0.8" true (frac > 0.77 && frac < 0.83)

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_weighted_index () =
  let rng = Rng.create 3 in
  let w = [| 0.0; 5.0; 0.0; 5.0 |] in
  for _ = 1 to 500 do
    let i = Rng.weighted_index rng w in
    Alcotest.(check bool) "only nonzero weights" true (i = 1 || i = 3)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_linear_regression () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 3.0; 5.0; 7.0; 9.0 |] in
  let fit = Stats.linear_regression xs ys in
  Alcotest.(check (float 1e-9)) "slope" 2.0 fit.Stats.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 fit.Stats.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 fit.Stats.r2

let test_perceptron_separable () =
  (* Linearly separable: label = x1 > x2. *)
  let points =
    List.init 40 (fun i ->
        let x1 = float_of_int (i mod 7) /. 7.0 and x2 = float_of_int (i mod 5) /. 5.0 in
        (x1, x2, x1 > x2))
  in
  let c = Stats.train_perceptron points in
  Alcotest.(check bool) "high accuracy" true (Stats.accuracy c points >= 0.9)

let test_table_render () =
  let out =
    Table.render ~headers:[| "a"; "b" |] [ [| "xx"; "1" |]; [| "y"; "23" |] ]
  in
  Alcotest.(check bool) "has header" true (String.length out > 0);
  Alcotest.(check bool) "aligned rows" true
    (List.length (String.split_on_char '\n' out) >= 4)

let test_fmt_int () =
  Alcotest.(check string) "thousands" "31,677" (Table.fmt_int 31677);
  Alcotest.(check string) "small" "42" (Table.fmt_int 42);
  Alcotest.(check string) "million" "1,234,567" (Table.fmt_int 1234567)

let suite =
  [ Alcotest.test_case "fault schedule validation" `Quick test_fault_schedule_validation;
    Alcotest.test_case "fault parse_arm" `Quick test_fault_parse_arm;
    Alcotest.test_case "fault domains" `Quick test_fault_domains;
    Alcotest.test_case "fault lethal arming" `Quick test_fault_lethal;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bool bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "rng invalid bound" `Quick test_rng_invalid;
    Alcotest.test_case "weighted index" `Quick test_weighted_index;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "geomean" `Quick test_stats_geomean;
    Alcotest.test_case "linear regression" `Quick test_linear_regression;
    Alcotest.test_case "perceptron separable" `Quick test_perceptron_separable;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "fmt_int" `Quick test_fmt_int ]
