(* Property-based tests (qcheck): the load-bearing invariants of the whole
   system, checked over randomly generated programs, layouts and replacement
   points. *)

open Ocolos_workloads

(* Random small application configurations: every program the generator can
   produce, at test-friendly scale. *)
let gen_config_arbitrary =
  QCheck.make
    ~print:(fun (seed, tx, fpt, shared, cold, parser, jts, lim) ->
      Printf.sprintf "seed=%d tx=%d fpt=%d shared=%d cold=%d parser=%d jts=%d lim=%d" seed tx
        fpt shared cold parser jts lim)
    QCheck.Gen.(
      tup8 (int_bound 10_000) (int_range 1 3) (int_range 1 4) (int_range 2 6) (int_bound 4)
        (int_range 0 16) (int_bound 2) (int_range 8 25))

let workload_of (seed, tx, fpt, shared, cold, parser, jts, lim) =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = tx;
      funcs_per_type = fpt;
      shared_funcs = shared;
      cold_funcs = cold;
      parser_blocks = parser;
      jump_table_sites = jts;
      blocks_per_func = (2, 5);
      tx_limit = Some lim;
      use_vtable_dispatch = seed mod 2 = 0;
      fp_sites_per_type = seed mod 3 <> 0;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let inputs =
    [ Input.make ~name:"p" ~mix:(Array.make tx (1.0 /. float_of_int tx)) ~bias_seed:(seed + 1) () ]
  in
  Workload.build ~name:"prop" ~inputs ~nthreads:2 gen

let run_to_completion ?binary w =
  let input = List.hd w.Workload.inputs in
  let proc = Workload.launch ?binary w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:30_000_000 proc;
  let halted =
    Array.for_all
      (fun (t : Ocolos_proc.Thread.t) -> t.Ocolos_proc.Thread.state = Ocolos_proc.Thread.Halted)
      proc.Ocolos_proc.Proc.threads
  in
  (halted, Workload.checksums proc, Ocolos_proc.Proc.transactions proc)

(* 1. Generated programs always validate, emit, and terminate. *)
let prop_programs_terminate =
  QCheck.Test.make ~name:"generated programs terminate" ~count:25 gen_config_arbitrary
    (fun params ->
      let w = workload_of params in
      let halted, _, tx = run_to_completion w in
      halted && tx > 0)

(* 2. Code layout never changes semantics. *)
let prop_layout_invariance =
  QCheck.Test.make ~name:"random layouts preserve semantics" ~count:15 gen_config_arbitrary
    (fun params ->
      let w = workload_of params in
      let reference = run_to_completion w in
      let rng = Ocolos_util.Rng.create (Hashtbl.hash params) in
      let layout = Ocolos_binary.Layout.randomize rng w.Workload.program in
      let e = Ocolos_binary.Emit.emit ~name:"prop.rand" w.Workload.program layout in
      run_to_completion ~binary:e.Ocolos_binary.Emit.binary w = reference)

(* 3. The full BOLT pipeline preserves semantics. *)
let prop_bolt_preserves_semantics =
  QCheck.Test.make ~name:"BOLT pipeline preserves semantics" ~count:12 gen_config_arbitrary
    (fun params ->
      let w = workload_of params in
      let reference = run_to_completion w in
      (* Collect a partial-run profile. *)
      let input = List.hd w.Workload.inputs in
      let proc = Workload.launch w ~input in
      let session = Ocolos_profiler.Perf.start proc in
      Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:40_000 proc;
      let profile =
        Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
          (Ocolos_profiler.Perf.stop session)
      in
      let r = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile () in
      run_to_completion ~binary:r.Ocolos_bolt.Bolt.merged w = reference)

(* 4. OCOLOS replacement at an arbitrary execution point preserves
   semantics (including the stop point being mid-transaction, mid-call). *)
let prop_ocolos_replacement_preserves_semantics =
  QCheck.Test.make ~name:"OCOLOS replacement preserves semantics" ~count:12
    (QCheck.pair gen_config_arbitrary (QCheck.make QCheck.Gen.(int_range 1_000 80_000)))
    (fun (params, stop_point) ->
      let w = workload_of params in
      let reference = run_to_completion w in
      let input = List.hd w.Workload.inputs in
      let proc = Workload.launch w ~input in
      let oc = Ocolos_core.Ocolos.attach proc in
      Ocolos_core.Ocolos.start_profiling oc;
      Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:stop_point proc;
      let profile, _ = Ocolos_core.Ocolos.stop_profiling oc in
      let result, _ = Ocolos_core.Ocolos.run_bolt oc profile in
      ignore (Ocolos_core.Ocolos.replace_code oc result);
      Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:30_000_000 proc;
      let halted =
        Array.for_all
          (fun (t : Ocolos_proc.Thread.t) ->
            t.Ocolos_proc.Thread.state = Ocolos_proc.Thread.Halted)
          proc.Ocolos_proc.Proc.threads
      in
      (halted, Workload.checksums proc, Ocolos_proc.Proc.transactions proc) = reference)

(* 5. Differential execution equivalence: the full online cycle
   (profile -> BOLT -> replace -> run) leaves each thread's control flow —
   the per-thread sequence of calls and returns, resolved to function ids —
   exactly what a never-optimized run produces. Checksums catch corrupted
   data; this catches control-flow divergence at instruction granularity
   (every call/return edge) even when the data happens to survive. The
   profile comes from a twin process so the recording hook stays installed
   across the whole subject run. *)
let record_call_trace (proc : Ocolos_proc.Proc.t) =
  let buf = ref [] in
  proc.Ocolos_proc.Proc.hooks.Ocolos_proc.Proc.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        ignore from_addr;
        ignore cycles;
        match kind with
        | Ocolos_proc.Proc.DirectCall | Ocolos_proc.Proc.IndCall | Ocolos_proc.Proc.Return
          ->
          buf :=
            (tid, kind, Ocolos_proc.Addr_space.fid_of_addr proc.Ocolos_proc.Proc.mem to_addr)
            :: !buf
        | Ocolos_proc.Proc.Cond | Ocolos_proc.Proc.Jump | Ocolos_proc.Proc.IndJump -> ());
  buf

let per_tid_traces buf nthreads =
  List.init nthreads (fun tid ->
      List.rev (List.filter_map (fun (t, k, f) -> if t = tid then Some (k, f) else None) !buf))

let prop_differential_c0_c1 =
  QCheck.Test.make ~name:"differential: C0/C1 per-thread call traces equal" ~count:10
    (QCheck.pair gen_config_arbitrary (QCheck.make QCheck.Gen.(int_range 2_000 40_000)))
    (fun (params, stop_point) ->
      let w = workload_of params in
      let input = List.hd w.Workload.inputs in
      let run ~replace =
        let proc = Workload.launch w ~input in
        let buf = record_call_trace proc in
        if replace then begin
          let twin = Workload.launch w ~input in
          let session = Ocolos_profiler.Perf.start twin in
          Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:stop_point twin;
          let profile =
            Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
              (Ocolos_profiler.Perf.stop session)
          in
          let r = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile () in
          let oc = Ocolos_core.Ocolos.attach proc in
          Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:stop_point proc;
          ignore (Ocolos_core.Ocolos.replace_code oc r)
        end;
        Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:30_000_000 proc;
        ( per_tid_traces buf (Array.length proc.Ocolos_proc.Proc.threads),
          Workload.checksums proc,
          Ocolos_proc.Proc.transactions proc )
      in
      let traces_c1, sums_c1, tx_c1 = run ~replace:true in
      let traces_c0, sums_c0, tx_c0 = run ~replace:false in
      traces_c1 = traces_c0
      && List.exists (fun t -> t <> []) traces_c0
      && sums_c1 = sums_c0 && tx_c1 = tx_c0)

(* 6. Cache invariants. *)
let prop_cache_hit_after_access =
  QCheck.Test.make ~name:"cache: resident after access" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (QCheck.int_bound 100_000))
    (fun addrs ->
      let c = Ocolos_uarch.Cache.of_size ~name:"p" ~size_bytes:4096 ~ways:4 ~line_bytes:64 in
      List.for_all
        (fun a ->
          ignore (Ocolos_uarch.Cache.access c a);
          Ocolos_uarch.Cache.probe c a)
        addrs)

let prop_cache_capacity_bound =
  QCheck.Test.make ~name:"cache: residency bounded by capacity" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (QCheck.int_bound 1_000_000))
    (fun addrs ->
      let c = Ocolos_uarch.Cache.of_size ~name:"p" ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
      List.iter (fun a -> ignore (Ocolos_uarch.Cache.access c a)) addrs;
      let distinct_lines = List.sort_uniq compare (List.map (fun a -> a / 64) addrs) in
      let resident = List.filter (fun l -> Ocolos_uarch.Cache.probe c (l * 64)) distinct_lines in
      List.length resident <= 16)

(* 7. Profile merge is order-insensitive. *)
let prop_profile_merge_commutes =
  QCheck.Test.make ~name:"profile merge commutes" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 30) (pair small_nat small_nat))
        (list_of_size (QCheck.Gen.int_range 0 30) (pair small_nat small_nat)))
    (fun (e1, e2) ->
      let mk edges =
        let p = Ocolos_profiler.Profile.create () in
        List.iter (fun (f, t) -> Ocolos_profiler.Profile.add_branch p ~from_addr:f ~to_addr:t 1) edges;
        p
      in
      let a = Ocolos_profiler.Profile.merge [ mk e1; mk e2 ] in
      let b = Ocolos_profiler.Profile.merge [ mk e2; mk e1 ] in
      List.for_all
        (fun key ->
          Ocolos_profiler.Profile.branch_count a key = Ocolos_profiler.Profile.branch_count b key)
        (e1 @ e2))

(* 8. Block layout output is always a permutation with the entry first. *)
let prop_layout_func_permutation =
  QCheck.Test.make ~name:"bb layout is a permutation, entry first" ~count:100
    QCheck.(pair (QCheck.make QCheck.Gen.(int_range 1 12)) (QCheck.make QCheck.Gen.(int_bound 10_000)))
    (fun (n, seed) ->
      let rng = Ocolos_util.Rng.create seed in
      let rc =
        { Ocolos_bolt.Cfg.rc_fid = 0;
          rc_func = { Ocolos_isa.Ir.fid = 0; fname = "p"; blocks = [||] };
          rc_block_addr = Array.init n (fun i -> i * 20);
          rc_block_end = Array.init n (fun i -> (i * 20) + 20);
          rc_counts = Array.init n (fun _ -> Ocolos_util.Rng.int rng 100);
          rc_edges = Hashtbl.create 16;
          rc_instr_count = n * 4 }
      in
      for _ = 1 to n * 2 do
        let u = Ocolos_util.Rng.int rng n and v = Ocolos_util.Rng.int rng n in
        Hashtbl.replace rc.Ocolos_bolt.Cfg.rc_edges (u, v) (1 + Ocolos_util.Rng.int rng 50)
      done;
      let hot, cold = Ocolos_bolt.Bb_reorder.layout_func ~split:(seed mod 2 = 0) rc in
      let all = List.sort compare (hot @ cold) in
      all = List.init n (fun i -> i) && (hot = [] || List.hd hot = 0))

(* 9. Emission is deterministic. *)
let prop_emit_deterministic =
  QCheck.Test.make ~name:"emission deterministic" ~count:10 gen_config_arbitrary
    (fun params ->
      let a = workload_of params and b = workload_of params in
      Ocolos_binary.Binary.instr_count a.Workload.binary
      = Ocolos_binary.Binary.instr_count b.Workload.binary
      && a.Workload.binary.Ocolos_binary.Binary.entry
         = b.Workload.binary.Ocolos_binary.Binary.entry)

(* 10. Supervision: under ANY survivable fault schedule at ANY catalog
   point, a campaign never runs more than max_retries + 1 attempts, the
   attempt ledger balances (attempts = replacements + rollbacks after every
   tick), and giving_up is announced exactly at the budget boundary. *)
let fault_catalog = Ocolos_core.Ocolos.fault_catalog

let gen_fault_run =
  QCheck.make
    ~print:(fun (pi, kind, k, seed, max_retries) ->
      Printf.sprintf "point=%s kind=%d k=%d seed=%d max_retries=%d"
        (List.nth fault_catalog (pi mod List.length fault_catalog))
        kind k seed max_retries)
    QCheck.Gen.(
      tup5 (int_bound 1000) (int_bound 2) (int_range 1 3) (int_bound 10_000) (int_range 0 3))

let prop_campaign_respects_retry_budget =
  QCheck.Test.make ~name:"campaign never exceeds the retry budget" ~count:10 gen_fault_run
    (fun (pi, kind, k, seed, max_retries) ->
      let module Daemon = Ocolos_core.Daemon in
      let point = List.nth fault_catalog (pi mod List.length fault_catalog) in
      let schedule =
        match kind with
        | 0 -> Ocolos_util.Fault.Nth k
        | 1 -> Ocolos_util.Fault.Every k
        | _ -> Ocolos_util.Fault.Prob (float_of_int k /. 4.0 |> Float.min 1.0)
      in
      let w = Apps.tiny ~tx_limit:None () in
      let proc = Workload.launch ~seed:(1 + (seed mod 97)) w ~input:(Workload.find_input w "a") in
      let fault = Ocolos_util.Fault.create ~seed () in
      Ocolos_util.Fault.arm fault point schedule;
      let oc =
        Ocolos_core.Ocolos.attach
          ~config:
            { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
          proc
      in
      let config =
        { Daemon.default_config with
          Daemon.profile_s = 1.0;
          warmup_s = 0.5;
          min_interval_s = 2.0;
          max_retries;
          retry_backoff_s = 0.25 }
      in
      let d = Daemon.create ~config oc proc in
      let ok = ref true in
      for s = 1 to 10 do
        let now_s = float_of_int s in
        Ocolos_proc.Proc.run ~cycle_limit:(Ocolos_sim.Clock.seconds_to_cycles now_s) proc;
        (match Daemon.tick d ~now_s with
        | Daemon.Rolled_back { attempt; giving_up; _ } ->
          if attempt > max_retries + 1 then ok := false;
          if giving_up <> (attempt = max_retries + 1) then ok := false
        | Daemon.Retrying { attempt } -> if attempt > max_retries + 1 then ok := false
        | _ -> ());
        (* The ledger balances after every tick: each attempt either
           committed or rolled back, never vanished. *)
        if Daemon.attempts d <> Daemon.replacements d + Daemon.rollbacks d then ok := false;
        if Daemon.retries d > Daemon.rollbacks d then ok := false
      done;
      !ok)

(* 11. Quarantine is monotone and exact: under random failure batches
   interleaved with campaign outcomes, a fid is quarantined iff its
   cumulative failures reached quarantine_after, and the set never
   shrinks. *)
let prop_quarantine_monotone =
  QCheck.Test.make ~name:"quarantine monotone and threshold-exact" ~count:100
    QCheck.(
      pair
        (QCheck.make QCheck.Gen.(int_range 1 4))
        (list_of_size (QCheck.Gen.int_range 0 30)
           (pair (QCheck.int_bound 9) (QCheck.int_bound 2))))
    (fun (quarantine_after, batches) ->
      let module Guard = Ocolos_core.Guard in
      let g =
        Guard.create ~config:{ Guard.default_config with Guard.quarantine_after } ()
      in
      let failures = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (fid, outcome) ->
          let before = Guard.quarantined g in
          Guard.record_func_failures g [ (fid, "bolt.cfg") ];
          Hashtbl.replace failures fid
            (1 + Option.value ~default:0 (Hashtbl.find_opt failures fid));
          (* Outcomes between batches must not shrink the set. *)
          (match outcome with
          | 0 -> Guard.campaign_succeeded g
          | 1 -> Guard.campaign_failed g ~now_s:0.0
          | _ -> ());
          let after = Guard.quarantined g in
          if not (List.for_all (fun f -> List.mem f after) before) then ok := false;
          Hashtbl.iter
            (fun f n ->
              if (n >= quarantine_after) <> Guard.is_quarantined g f then ok := false)
            failures)
        batches;
      !ok)

(* 12. Fleet rollout atomicity: under ANY survivable fault schedule at ANY
   catalog point, the fleet is never mixed outside an in-flight rollout —
   a staged rollout either widens to every replica or unwinds completely,
   and whatever the schedule did, the run ends homogeneous (or still
   mid-rollout, which the next tick would resolve the same way). *)
let prop_fleet_rollout_atomic =
  QCheck.Test.make ~name:"fleet rollout atomic under any fault schedule" ~count:10
    gen_fault_run
    (fun (pi, kind, k, seed, _) ->
      let module Fleet = Ocolos_core.Fleet in
      let module Daemon = Ocolos_core.Daemon in
      let point = List.nth fault_catalog (pi mod List.length fault_catalog) in
      let schedule =
        match kind with
        | 0 -> Ocolos_util.Fault.Nth k
        | 1 -> Ocolos_util.Fault.Every k
        | _ -> Ocolos_util.Fault.Prob (float_of_int k /. 4.0 |> Float.min 1.0)
      in
      let replicas = 2 + (seed mod 3) in
      let w = Apps.tiny ~tx_limit:None () in
      let procs =
        Array.init replicas (fun i ->
            Workload.launch ~seed:(1 + i + (seed mod 97)) w ~input:(Workload.find_input w "a"))
      in
      let fault = Ocolos_util.Fault.create ~seed () in
      Ocolos_util.Fault.arm fault point schedule;
      let ocfg =
        { Ocolos_core.Ocolos.default_config with Ocolos_core.Ocolos.fault = Some fault }
      in
      let fcfg =
        { Fleet.default_config with
          Fleet.daemon =
            { Daemon.default_config with
              Daemon.profile_s = 1.0;
              warmup_s = 0.5;
              min_interval_s = 2.0;
              retry_backoff_s = 0.5 } }
      in
      let fleet = Fleet.create ~config:fcfg ~ocolos_config:ocfg procs in
      let in_rollout = ref false and ok = ref true in
      for s = 1 to 20 do
        Array.iter
          (fun p -> Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:12_000 p)
          procs;
        (match Fleet.tick fleet ~now_s:(float_of_int s) with
        | Fleet.Canary_started _ -> in_rollout := true
        | Fleet.Promoted _ | Fleet.Rolled_back _ | Fleet.Campaign_aborted _ ->
          in_rollout := false
        | Fleet.Idle | Fleet.Started_profiling _ | Fleet.Breaker_open _ -> ());
        if (not !in_rollout) && Fleet.mixed fleet then ok := false
      done;
      !ok && (!in_rollout || Fleet.converged fleet))

(* 13. Cross-replica aggregation is count-equivalent: N replicas of the
   same deterministic binary produce identical sample streams, so keeping
   1/N of the stream per replica at interleaved phases and aggregating
   recovers exactly the full-rate profile — every edge, range, call-graph
   and per-function count, and the record total. *)
let prop_fleet_aggregation_count_equivalent =
  QCheck.Test.make ~name:"1/N cross-replica aggregate count-equivalent to full rate" ~count:10
    (QCheck.pair gen_config_arbitrary (QCheck.make QCheck.Gen.(int_range 1 4)))
    (fun (params, n) ->
      let module Profile = Ocolos_profiler.Profile in
      let w = workload_of params in
      let proc = Workload.launch ~seed:11 w ~input:(Workload.find_input w "p") in
      let session = Ocolos_profiler.Perf.start proc in
      Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000 proc;
      let samples = Ocolos_profiler.Perf.stop session in
      let binary = w.Workload.binary in
      let full = Ocolos_profiler.Perf2bolt.convert ~binary samples in
      let sources =
        List.init n (fun i -> Ocolos_profiler.Perf2bolt.decimate ~keep_every:n ~phase:i samples)
      in
      let agg = Ocolos_profiler.Perf2bolt.convert_sources ~binary sources in
      let bindings h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare in
      bindings full.Profile.branches = bindings agg.Profile.branches
      && bindings full.Profile.ranges = bindings agg.Profile.ranges
      && bindings full.Profile.calls = bindings agg.Profile.calls
      && bindings full.Profile.func_records = bindings agg.Profile.func_records
      && full.Profile.total_records = agg.Profile.total_records)

(* 14. Three-engine differential: over random workloads and seeds, a full
   online cycle — warm-up, profile, BOLT, one replacement rolled back by an
   injected fault, one committed replacement, more execution — leaves every
   observable byte-identical across the reference interpreter, the
   decoded-block engine and the superblock/trace engine: instret, uarch
   counters, the taken-branch trace, data checksums, and the Chrome /
   Prometheus exports. Reuses the PR 4 differential harness
   ([Test_block_engine.scenario]), which exercises both journal-replay
   rollback and committed replacement against each engine's caches. *)
let prop_three_engine_differential =
  QCheck.Test.make ~name:"three engines byte-identical under replacement + rollback"
    ~count:4
    (QCheck.make QCheck.Gen.(int_range 0 1_000))
    (fun seed ->
      let w = Test_block_engine.random_workload seed in
      let reference = Test_block_engine.scenario ~engine:`Reference w in
      Test_block_engine.scenario ~engine:`Blocks w = reference
      && Test_block_engine.scenario ~engine:`Traces w = reference)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_programs_terminate;
      prop_layout_invariance;
      prop_bolt_preserves_semantics;
      prop_ocolos_replacement_preserves_semantics;
      prop_differential_c0_c1;
      prop_cache_hit_after_access;
      prop_cache_capacity_bound;
      prop_profile_merge_commutes;
      prop_layout_func_permutation;
      prop_emit_deterministic;
      prop_campaign_respects_retry_budget;
      prop_quarantine_monotone;
      prop_fleet_rollout_atomic;
      prop_fleet_aggregation_count_equivalent;
      prop_three_engine_differential ]
