(* perf-record analog: LBR sampling of a running process.

   Attaching installs a taken-branch hook that feeds per-thread LBR rings;
   every [sample_period] core cycles the ring is snapshotted (a PMI), which
   also charges a small overhead to the sampled thread — this is what
   produces the modest throughput dip during profiling (region 2 of the
   paper's Fig. 7). *)

type config = {
  sample_period : int; (* core cycles between PMIs, per thread *)
  pmi_overhead : float; (* cycles charged to the thread per sample *)
}

let default_config = { sample_period = 600; pmi_overhead = 60.0 }

type sample = { s_tid : int; entries : Lbr.entry array }

type session = {
  proc : Ocolos_proc.Proc.t;
  cfg : config;
  fault : Ocolos_util.Fault.t option;
  rings : Lbr.t array; (* per thread *)
  next_sample : float array;
  mutable samples : sample list;
  mutable nsamples : int;
  mutable detached : bool; (* sampling hook already torn down (fault path) *)
  mutable killed : exn option; (* stashed Fault.Killed, re-raised at [stop] *)
  saved_hook :
    (tid:int -> from_addr:int -> to_addr:int -> kind:Ocolos_proc.Proc.branch_kind ->
    cycles:float -> unit)
    option;
  sp : Ocolos_obs.Trace.span option; (* open span over the sampling window *)
}

(* Tear down the sampling hook early. Target-visible effects stop here: no
   further PMIs, no further stalls — so a detach at PMI k perturbs the
   target exactly as much as any other perf fault firing at PMI k. *)
let detach session =
  if not session.detached then begin
    session.detached <- true;
    session.proc.Ocolos_proc.Proc.hooks.on_taken_branch <- session.saved_hook
  end

(* Fault points of the perf domain, each cut once per PMI in this order
   (after the PMI overhead stall, which models the interrupt itself and is
   charged whether or not the sample survives):
     perf.detach           lose the whole session from here on
     perf.sample_drop      this batch is lost (an empty/dropped read)
     perf.sample_truncate  this batch loses its oldest half
     perf.sample_corrupt   this batch's addresses are scrambled
   [Injected] is absorbed here as degradation; [Killed] detaches and is
   stashed for [stop] to re-raise — the daemon dies, the target does not. *)
let pmi_faults session =
  match session.fault with
  | None -> `Keep
  | Some f -> (
    let open Ocolos_util.Fault in
    try
      cut f "perf.detach";
      (try cut f "perf.sample_drop" with Injected _ -> raise Exit);
      let verdict = ref `Keep in
      (try cut f "perf.sample_truncate" with Injected _ -> verdict := `Truncate);
      (try cut f "perf.sample_corrupt"
       with Injected _ -> if !verdict = `Keep then verdict := `Corrupt);
      !verdict
    with
    | Injected _ ->
      detach session;
      `Drop
    | Exit -> `Drop
    | Killed _ as e ->
      detach session;
      session.killed <- Some e;
      `Drop)

(* Start sampling. The process keeps running under the caller's control;
   branch events flow into the session until [stop]. *)
let start ?(cfg = default_config) ?fault proc =
  let n = Array.length proc.Ocolos_proc.Proc.threads in
  let session =
    { proc;
      cfg;
      fault;
      rings = Array.init n (fun _ -> Lbr.create ());
      next_sample =
        Array.init n (fun i ->
            Ocolos_uarch.Core.cycles proc.Ocolos_proc.Proc.threads.(i).Ocolos_proc.Thread.core
            +. float_of_int cfg.sample_period);
      samples = [];
      nsamples = 0;
      detached = false;
      killed = None;
      saved_hook = proc.Ocolos_proc.Proc.hooks.on_taken_branch;
      sp =
        Ocolos_obs.Trace.open_span "profiler.sample_window"
          ~attrs:
            [ ("sample_period", Ocolos_obs.Trace.I cfg.sample_period);
              ("threads", Ocolos_obs.Trace.I n) ] }
  in
  (* The hook chains to any previously installed observer (last, so a
     mid-hook fault detach still forwards this event exactly once): perf is
     an observer of the branch stream, not its consumer, and outer
     instrumentation — e.g. the chaos harness's trace recorder — must see
     every branch whether or not sampling is attached. *)
  let hook ~tid ~from_addr ~to_addr ~kind ~cycles =
    Lbr.record session.rings.(tid) ~from_addr ~to_addr;
    (if cycles >= session.next_sample.(tid) then begin
      session.next_sample.(tid) <- cycles +. float_of_int session.cfg.sample_period;
      (* The interrupt fires regardless of what happens to the batch. *)
      Ocolos_uarch.Core.stall
        session.proc.Ocolos_proc.Proc.threads.(tid).Ocolos_proc.Thread.core
        ~cycles:session.cfg.pmi_overhead ~category:`Backend;
      match pmi_faults session with
      | `Drop -> ()
      | (`Keep | `Truncate | `Corrupt) as verdict ->
        let entries = Lbr.snapshot session.rings.(tid) in
        let entries =
          match verdict with
          | `Keep -> entries
          | `Truncate -> Lbr.truncate_batch entries
          | `Corrupt -> Lbr.corrupt_batch entries
        in
        session.samples <- { s_tid = tid; entries } :: session.samples;
        session.nsamples <- session.nsamples + 1
    end);
    match session.saved_hook with
    | Some f -> f ~tid ~from_addr ~to_addr ~kind ~cycles
    | None -> ()
  in
  proc.Ocolos_proc.Proc.hooks.on_taken_branch <- Some hook;
  Ocolos_obs.Events.log "profile.window_open"
    ~fields:
      [ ("sample_period", Ocolos_obs.Trace.I cfg.sample_period);
        ("threads", Ocolos_obs.Trace.I n) ];
  session

(* Detach and return the collected samples, oldest first. A Killed stashed
   by the sampling hook (daemon death mid-profile) re-raises here, after the
   hook is gone and the span is closed — the caller's crash harness sees it;
   the target never did. *)
let stop session =
  detach session;
  Ocolos_obs.Trace.close_span session.sp
    ~attrs:[ ("samples", Ocolos_obs.Trace.I session.nsamples) ];
  Ocolos_obs.Metrics.count "ocolos_perf_samples_total" session.nsamples;
  Ocolos_obs.Events.log "profile.window_close"
    ~fields:
      [ ("samples", Ocolos_obs.Trace.I session.nsamples);
        ("detached_by_fault", Ocolos_obs.Trace.B (session.killed <> None)) ];
  match session.killed with
  | Some e -> raise e
  | None -> List.rev session.samples

let sample_count session = session.nsamples

(* Total LBR records across samples (the raw profile volume; drives the
   perf2bolt conversion-cost model). *)
let record_count samples =
  List.fold_left (fun acc s -> acc + Array.length s.entries) 0 samples
