(* perf-record analog: LBR sampling of a running process.

   Attaching installs a taken-branch hook that feeds per-thread LBR rings;
   every [sample_period] core cycles the ring is snapshotted (a PMI), which
   also charges a small overhead to the sampled thread — this is what
   produces the modest throughput dip during profiling (region 2 of the
   paper's Fig. 7). *)

type config = {
  sample_period : int; (* core cycles between PMIs, per thread *)
  pmi_overhead : float; (* cycles charged to the thread per sample *)
}

let default_config = { sample_period = 600; pmi_overhead = 60.0 }

type sample = { s_tid : int; entries : Lbr.entry array }

type session = {
  proc : Ocolos_proc.Proc.t;
  cfg : config;
  rings : Lbr.t array; (* per thread *)
  next_sample : float array;
  mutable samples : sample list;
  mutable nsamples : int;
  saved_hook :
    (tid:int -> from_addr:int -> to_addr:int -> kind:Ocolos_proc.Proc.branch_kind ->
    cycles:float -> unit)
    option;
  sp : Ocolos_obs.Trace.span option; (* open span over the sampling window *)
}

(* Start sampling. The process keeps running under the caller's control;
   branch events flow into the session until [stop]. *)
let start ?(cfg = default_config) proc =
  let n = Array.length proc.Ocolos_proc.Proc.threads in
  let session =
    { proc;
      cfg;
      rings = Array.init n (fun _ -> Lbr.create ());
      next_sample =
        Array.init n (fun i ->
            Ocolos_uarch.Core.cycles proc.Ocolos_proc.Proc.threads.(i).Ocolos_proc.Thread.core
            +. float_of_int cfg.sample_period);
      samples = [];
      nsamples = 0;
      saved_hook = proc.Ocolos_proc.Proc.hooks.on_taken_branch;
      sp =
        Ocolos_obs.Trace.open_span "profiler.sample_window"
          ~attrs:
            [ ("sample_period", Ocolos_obs.Trace.I cfg.sample_period);
              ("threads", Ocolos_obs.Trace.I n) ] }
  in
  let hook ~tid ~from_addr ~to_addr ~kind:_ ~cycles =
    Lbr.record session.rings.(tid) ~from_addr ~to_addr;
    if cycles >= session.next_sample.(tid) then begin
      session.samples <-
        { s_tid = tid; entries = Lbr.snapshot session.rings.(tid) } :: session.samples;
      session.nsamples <- session.nsamples + 1;
      session.next_sample.(tid) <- cycles +. float_of_int session.cfg.sample_period;
      Ocolos_uarch.Core.stall
        session.proc.Ocolos_proc.Proc.threads.(tid).Ocolos_proc.Thread.core
        ~cycles:session.cfg.pmi_overhead ~category:`Backend
    end
  in
  proc.Ocolos_proc.Proc.hooks.on_taken_branch <- Some hook;
  session

(* Detach and return the collected samples, oldest first. *)
let stop session =
  session.proc.Ocolos_proc.Proc.hooks.on_taken_branch <- session.saved_hook;
  Ocolos_obs.Trace.close_span session.sp
    ~attrs:[ ("samples", Ocolos_obs.Trace.I session.nsamples) ];
  Ocolos_obs.Metrics.count "ocolos_perf_samples_total" session.nsamples;
  List.rev session.samples

let sample_count session = session.nsamples

(* Total LBR records across samples (the raw profile volume; drives the
   perf2bolt conversion-cost model). *)
let record_count samples =
  List.fold_left (fun acc s -> acc + Array.length s.entries) 0 samples
