(* Last Branch Record ring buffer.

   Models Intel's LBR facility (Section II-A of the paper): the 32 most
   recent taken control transfers, recorded as (source PC, target) pairs.
   Software samples the ring to reconstruct hot control-flow paths. *)

type entry = { from_addr : int; to_addr : int }

type t = {
  slots : entry array;
  mutable head : int; (* next write position *)
  mutable filled : int;
}

let capacity = 32

let create () = { slots = Array.make capacity { from_addr = 0; to_addr = 0 }; head = 0; filled = 0 }

let record t ~from_addr ~to_addr =
  t.slots.(t.head) <- { from_addr; to_addr };
  t.head <- (t.head + 1) mod capacity;
  t.filled <- min capacity (t.filled + 1)

(* Entries oldest-first, as a sample snapshot. *)
let snapshot t =
  Array.init t.filled (fun i ->
      t.slots.((t.head + capacity - t.filled + i) mod capacity))

let clear t =
  t.head <- 0;
  t.filled <- 0

(* ---- sample-batch degradation (fault-injection support) ----

   Models what a flaky PMI delivery does to a snapshot: a truncated batch
   keeps only the newest half of the ring, and a corrupted batch has its
   entry addresses scrambled deterministically. Both are pure so the
   profiler's fault handling stays replayable from the seed. *)

(* Keep the newest [ceil (n/2)] entries (the oldest transfers are the ones
   a short read loses first). *)
let truncate_batch (entries : entry array) =
  let n = Array.length entries in
  let keep = (n + 1) / 2 in
  Array.sub entries (n - keep) keep

(* Scramble every entry's addresses with a fixed involution; corrupted
   records land outside any mapped symbol and must be dropped downstream. *)
let corrupt_batch (entries : entry array) =
  Array.map
    (fun e ->
      { from_addr = e.from_addr lxor 0x5A5A_5A5A; to_addr = e.to_addr lxor 0x5A5A_5A5A })
    entries
