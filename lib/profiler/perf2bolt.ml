(* perf2bolt analog: convert raw LBR samples into an aggregated profile.

   Classifies each LBR entry against the binary (call edge vs. branch edge)
   and derives fallthrough ranges from consecutive entries — the range
   [to_1, from_2] between two successive taken branches executed straight
   line. The conversion dominates OCOLOS's background costs in the paper
   (Table II), so we expose the processed record count for the cost model. *)

open Ocolos_binary

(* Fault points of the perf2bolt domain — both *raise* out of [convert]
   rather than degrade in place (a failed aggregation yields no usable
   profile; the supervisor treats it as a failed campaign and retries or
   trips the breaker):
     perf2bolt.stale_syms  cut once per convert, before any aggregation —
                           the paper's C2 problem: samples resolved against
                           symbols from a layout a prior replacement retired
     perf2bolt.aggregate   cut once per sample batch *)

let convert ~(binary : Binary.t) ?fault (samples : Perf.sample list) : Profile.t =
  Ocolos_obs.Trace.span "perf2bolt.convert" @@ fun conv_sp ->
  let cut name = match fault with None -> () | Some f -> Ocolos_util.Fault.cut f name in
  cut "perf2bolt.stale_syms";
  let profile = Profile.create () in
  let index = Binary.build_addr_index binary in
  let fid_of addr = Binary.index_lookup index addr in
  let entry_of_fid = Hashtbl.create 256 in
  Array.iter
    (fun s -> Hashtbl.replace entry_of_fid s.Binary.fs_entry s.Binary.fs_fid)
    binary.Binary.symbols;
  List.iter
    (fun (s : Perf.sample) ->
      cut "perf2bolt.aggregate";
      let entries = s.Perf.entries in
      Array.iteri
        (fun i (e : Lbr.entry) ->
          Profile.add_branch profile ~from_addr:e.Lbr.from_addr ~to_addr:e.Lbr.to_addr 1;
          let fid_from = fid_of e.Lbr.from_addr and fid_to = fid_of e.Lbr.to_addr in
          (match fid_from with
          | Some f -> Profile.add_func_record profile f 1
          | None -> ());
          (match fid_to with
          | Some f when fid_from <> Some f -> Profile.add_func_record profile f 1
          | Some _ | None -> ());
          (* A call edge: the source instruction is a call, or the target is
             a function entry reached by a non-return transfer. *)
          (match (fid_from, fid_to) with
          | Some caller, Some callee ->
            let is_call =
              match Binary.find_instr binary e.Lbr.from_addr with
              | Some (Ocolos_isa.Instr.Call _) | Some (Ocolos_isa.Instr.CallInd _) -> true
              | Some _ -> false
              | None -> Hashtbl.mem entry_of_fid e.Lbr.to_addr && caller <> callee
            in
            if is_call then Profile.add_call profile ~caller ~callee 1
          | _, _ -> ());
          (* Fallthrough range between consecutive taken branches. *)
          if i + 1 < Array.length entries then begin
            let next = entries.(i + 1) in
            let range_start = e.Lbr.to_addr and range_end = next.Lbr.from_addr in
            if range_start <= range_end then
              match (fid_of range_start, fid_of range_end) with
              | Some f1, Some f2 when f1 = f2 ->
                Profile.add_range profile ~start_addr:range_start ~end_addr:range_end 1
              | _, _ -> ()
          end)
        entries)
    samples;
  let records = Perf.record_count samples in
  Ocolos_obs.Trace.set_attr conv_sp "records" (Ocolos_obs.Trace.I records);
  Ocolos_obs.Trace.set_attr conv_sp "branch_edges"
    (Ocolos_obs.Trace.I (Hashtbl.length profile.Profile.branches));
  Ocolos_obs.Trace.set_attr conv_sp "fallthrough_ranges"
    (Ocolos_obs.Trace.I (Hashtbl.length profile.Profile.ranges));
  Ocolos_obs.Metrics.count "ocolos_perf2bolt_records_total" records;
  profile

(* Whole-sample decimation: per-sample processing above is independent
   across batches (fallthrough ranges never cross a sample boundary), so
   keeping every Nth batch is an exact 1/N thinning of the record stream.
   N replicas with identical streams kept at interleaved phases partition
   the full stream, which is what makes fleet aggregation count-identical
   to a single full-rate replica. *)
let decimate ~keep_every ~phase samples =
  if keep_every < 1 then invalid_arg "Perf2bolt.decimate: keep_every < 1";
  if phase < 0 || phase >= keep_every then invalid_arg "Perf2bolt.decimate: phase out of range";
  if keep_every = 1 then samples
  else List.filteri (fun i _ -> i mod keep_every = phase) samples

let convert_sources ~binary ?fault sources = convert ~binary ?fault (List.concat sources)
