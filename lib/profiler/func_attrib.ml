(* Per-function front-end event attribution (see func_attrib.mli). *)

module Core = Ocolos_uarch.Core
module Binary = Ocolos_binary.Binary
module Layout_health = Ocolos_obs.Layout_health

type counts = {
  mutable k_l1i : int;
  mutable k_itlb : int;
  mutable k_btb : int;
  mutable k_taken : int;
}

type session = {
  proc : Ocolos_proc.Proc.t;
  by_addr : (int, counts) Hashtbl.t;
  mutable active : bool;
}

let start proc =
  let by_addr = Hashtbl.create 1024 in
  let observe ev addr =
    let c =
      match Hashtbl.find_opt by_addr addr with
      | Some c -> c
      | None ->
        let c = { k_l1i = 0; k_itlb = 0; k_btb = 0; k_taken = 0 } in
        Hashtbl.add by_addr addr c;
        c
    in
    match ev with
    | Core.L1i_miss -> c.k_l1i <- c.k_l1i + 1
    | Core.Itlb_miss -> c.k_itlb <- c.k_itlb + 1
    | Core.Btb_miss -> c.k_btb <- c.k_btb + 1
    | Core.Taken_branch -> c.k_taken <- c.k_taken + 1
  in
  Array.iter
    (fun (thread : Ocolos_proc.Thread.t) ->
      Core.set_fe_observer thread.Ocolos_proc.Thread.core (Some observe))
    proc.Ocolos_proc.Proc.threads;
  { proc; by_addr; active = true }

let stop session =
  if session.active then begin
    session.active <- false;
    Array.iter
      (fun (thread : Ocolos_proc.Thread.t) ->
        Core.set_fe_observer thread.Ocolos_proc.Thread.core None)
      session.proc.Ocolos_proc.Proc.threads
  end

let drain session (binary : Binary.t) =
  let index = Binary.build_addr_index binary in
  let per_fid = Hashtbl.create 64 in
  Hashtbl.iter
    (fun addr (c : counts) ->
      match Binary.index_lookup index addr with
      | None -> ()
      | Some fid ->
        let acc =
          match Hashtbl.find_opt per_fid fid with
          | Some acc -> acc
          | None ->
            let acc = { k_l1i = 0; k_itlb = 0; k_btb = 0; k_taken = 0 } in
            Hashtbl.add per_fid fid acc;
            acc
        in
        acc.k_l1i <- acc.k_l1i + c.k_l1i;
        acc.k_itlb <- acc.k_itlb + c.k_itlb;
        acc.k_btb <- acc.k_btb + c.k_btb;
        acc.k_taken <- acc.k_taken + c.k_taken)
    session.by_addr;
  Hashtbl.reset session.by_addr;
  Hashtbl.fold
    (fun fid (c : counts) acc ->
      ( fid,
        binary.Binary.symbols.(fid).Binary.fs_name,
        { Layout_health.fc_l1i = c.k_l1i;
          fc_itlb = c.k_itlb;
          fc_btb = c.k_btb;
          fc_taken = c.k_taken } )
      :: acc)
    per_fid []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
