(** perf2bolt analog: convert raw LBR samples into an aggregated profile.

    Classifies each LBR entry against the binary (call edge vs. branch edge)
    and derives straight-line fallthrough ranges from consecutive entries.

    With [?fault], the [perf2bolt.*] domain cuts raise out of the
    conversion ({!Ocolos_util.Fault.Injected} is {e not} absorbed — a failed
    aggregation yields no profile, so the campaign fails): [stale_syms] once
    per convert (the paper's C2 stale-symbolization problem), [aggregate]
    once per sample batch. *)

val convert :
  binary:Ocolos_binary.Binary.t -> ?fault:Ocolos_util.Fault.t -> Perf.sample list -> Profile.t

(** Deterministic per-replica decimation for cross-replica aggregation:
    keep every [keep_every]-th sample batch starting at [phase]
    (0-based). Decimation is at whole-sample granularity — fallthrough
    ranges are derived only between entries of one sample, so dropping
    batches never splits a range. [keep_every = 1] keeps everything.
    Raises [Invalid_argument] on [keep_every < 1] or [phase] outside
    [\[0, keep_every)]. *)
val decimate : keep_every:int -> phase:int -> Perf.sample list -> Perf.sample list

(** Aggregate (already decimated) sample streams from many replicas of the
    same binary into one profile — the fleet's single perf2bolt input.
    Counts are additive across sources, so with N replicas each keeping
    [1/N] of an identical stream at interleaved phases the result is
    count-identical to one replica converted at full rate; with one
    undecimated source this is byte-for-byte [convert]. Same fault cuts as
    {!convert}. *)
val convert_sources :
  binary:Ocolos_binary.Binary.t ->
  ?fault:Ocolos_util.Fault.t ->
  Perf.sample list list ->
  Profile.t
