(** perf2bolt analog: convert raw LBR samples into an aggregated profile.

    Classifies each LBR entry against the binary (call edge vs. branch edge)
    and derives straight-line fallthrough ranges from consecutive entries.

    With [?fault], the [perf2bolt.*] domain cuts raise out of the
    conversion ({!Ocolos_util.Fault.Injected} is {e not} absorbed — a failed
    aggregation yields no profile, so the campaign fails): [stale_syms] once
    per convert (the paper's C2 stale-symbolization problem), [aggregate]
    once per sample batch. *)

val convert :
  binary:Ocolos_binary.Binary.t -> ?fault:Ocolos_util.Fault.t -> Perf.sample list -> Profile.t
