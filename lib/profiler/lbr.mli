(** Last Branch Record ring buffer (Intel LBR analog, 32 entries): the most
    recent taken control transfers as (source PC, target) pairs. *)

type entry = { from_addr : int; to_addr : int }
type t

val capacity : int
val create : unit -> t
val record : t -> from_addr:int -> to_addr:int -> unit

(** Current contents, oldest first. *)
val snapshot : t -> entry array

val clear : t -> unit

(** Degraded snapshot of a sample batch: only the newest half survives (a
    short PMI read). Pure; used by the profiler's fault handling. *)
val truncate_batch : entry array -> entry array

(** Degraded snapshot of a sample batch: every address scrambled by a fixed
    involution, so corrupted records resolve to no symbol downstream. *)
val corrupt_batch : entry array -> entry array
