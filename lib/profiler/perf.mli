(** perf-record analog: LBR sampling of a running process.

    Attaching installs a taken-branch hook feeding per-thread LBR rings;
    every [sample_period] core cycles the ring is snapshotted (a PMI),
    charging a small overhead to the sampled thread — the throughput dip of
    the paper's Fig. 7 region 2. *)

type config = {
  sample_period : int;  (** core cycles between PMIs, per thread *)
  pmi_overhead : float;  (** cycles charged to the thread per sample *)
}

val default_config : config

type sample = { s_tid : int; entries : Lbr.entry array }
type session

(** Attach to a (running or about-to-run) process. The caller keeps driving
    the process; branch events flow into the session until {!stop}. A
    previously installed taken-branch hook keeps receiving every event
    (perf observes the branch stream, it does not consume it).

    With [?fault], the [perf.*] fault domain is cut once per PMI, after the
    PMI overhead stall, in this order: [perf.detach] (lose the rest of the
    session), [perf.sample_drop] (lose this batch), [perf.sample_truncate]
    (keep the newest half), [perf.sample_corrupt] (scramble addresses).
    [Fault.Injected] is absorbed as profile degradation; [Fault.Killed]
    detaches immediately and is re-raised by {!stop} — the daemon dies at
    that PMI, the target keeps running untouched. *)
val start : ?cfg:config -> ?fault:Ocolos_util.Fault.t -> Ocolos_proc.Proc.t -> session

(** Detach, restoring any previous hook; returns samples oldest first.
    Re-raises a {!Ocolos_util.Fault.Killed} stashed by the sampling hook. *)
val stop : session -> sample list

val sample_count : session -> int

(** Total LBR records across samples (raw profile volume; drives the
    perf2bolt cost model). *)
val record_count : sample list -> int
