(** Per-function front-end event attribution for layout-health windows.

    Where {!Perf_report} samples L1i misses for the perf-report analog,
    this session counts {e every} front-end event ({!Ocolos_uarch.Core.fe_event}:
    L1i/iTLB/BTB misses, taken branches) across a process's cores, keyed by
    code address, and {!drain} resolves the addresses to functions against
    a binary's symbol map — yielding the per-function
    {!Ocolos_obs.Layout_health.func_counts} windows that power the CLI
    [explain] subcommand's regressed-function ranking.

    Draining is destructive: counts accumulated since the previous drain
    are returned and cleared, so one session spans many recording windows
    (and code versions — the caller passes the binary that was live during
    the window being drained). *)

type session

(** Install front-end observers on every core of [proc]. Replaces any
    observer installed by a previous [start] on the same cores. *)
val start : Ocolos_proc.Proc.t -> session

(** Remove the observers. Idempotent. *)
val stop : session -> unit

(** [drain session binary] returns the per-function counts accumulated
    since the last drain (ascending fid, functions with no events omitted)
    and resets the accumulator. Addresses outside [binary]'s symbol map are
    dropped. *)
val drain :
  session ->
  Ocolos_binary.Binary.t ->
  (int * string * Ocolos_obs.Layout_health.func_counts) list
