(** Decoded basic-block execution engine.

    Predecodes straight-line instruction runs into flat arrays
    ({!Ocolos_isa.Predecode.block}) and executes a whole block per dispatch.
    The per-instruction semantics live in {!execute}, which the reference
    interpreter ({!Proc.step}) shares, so both engines produce bit-identical
    uarch counters, LBR samples and taken-branch traces.

    Cached blocks are invalidated precisely by code-map writes: {!create}
    installs the engine as the address space's code watcher, which covers
    direct writes, removals, and the journal replay of a rolled-back
    transaction. *)

open Ocolos_isa

type branch_kind = Cond | Jump | IndJump | DirectCall | IndCall | Return

type hooks = {
  mutable on_taken_branch :
    (tid:int -> from_addr:int -> to_addr:int -> kind:branch_kind -> cycles:float -> unit)
    option;
  mutable translate_fp : (int -> int) option;
      (** the wrapFuncPtrCreation callback: rewrites values materialized by
          [FpCreate] *)
}

exception Fault of string

(** Mark [thread] faulted and raise {!Fault} with the canonical unmapped-fetch
    message. *)
val fault_unmapped : Thread.t -> pc:int -> 'a

(** Execute exactly one already-fetched instruction: charge the fetch, retire
    it, then run its semantics (memory events, branch events, hooks) in the
    reference order. [size] must be [Instr.size instr]. *)
val execute : Addr_space.t -> hooks -> Thread.t -> pc:int -> size:int -> Instr.t -> unit

type stats = {
  decodes : int;  (** blocks decoded (cache misses) *)
  dispatches : int;  (** block dispatches *)
  invalidations : int;  (** cached blocks dropped by code writes *)
  resident : int;  (** blocks currently cached *)
}

type t

(** Create an engine over [mem] and install it as [mem]'s code watcher.
    [nthreads] sizes the per-thread dispatch memo. *)
val create : nthreads:int -> Addr_space.t -> t

(** Run [thread] for at most [max_steps] instructions, stopping early when it
    halts/faults or its core reaches [cycle_limit]; the same conditions the
    reference inner loop checks, re-checked before every instruction. Returns
    the number of instructions executed. Raises {!Fault} on an unmapped
    fetch. *)
val exec : t -> hooks -> Thread.t -> max_steps:int -> cycle_limit:float -> int

val stats : t -> stats

(** Are all cached blocks still coherent with the code map? Always true
    unless the invalidation feed missed a write. *)
val validate : t -> bool

(** Every code address the engine holds a live reference to, as
    (label, address) pairs: cached block starts ("block") and per-thread
    resume memos ("block_memo"/"block_resume"). OCOLOS's post-GC
    reachability scanner audits these against freed code. *)
val code_pointers : t -> (string * int) list

(** OCOLOS migrated paused threads' PCs to another code version: drop the
    per-thread resume memos, which describe where the threads were. *)
val on_threads_migrated : t -> unit
