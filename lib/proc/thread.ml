(* A simulated thread: registers, program counter, call stack, a private
   deterministic PRNG (for the Rand instruction), and a private core model.

   The call stack is explicit so that OCOLOS can walk it (the libunwind
   analog) and patch return addresses during continuous optimization. *)

open Ocolos_isa

type frame = { mutable ret_addr : int; mutable callee_entry : int }

type state = Running | Halted | Faulted of string

type t = {
  tid : int;
  regs : int array;
  mutable pc : int;
  mutable frames : frame array;
  mutable depth : int;
  rng : Ocolos_util.Rng.t;
  core : Ocolos_uarch.Core.t;
  mutable state : state;
  mutable instret : int; (* instructions retired *)
}

let create ~tid ~entry ~seed ~cfg =
  { tid;
    regs = Array.make Instr.num_regs 0;
    pc = entry;
    frames = Array.init 64 (fun _ -> { ret_addr = 0; callee_entry = 0 });
    depth = 0;
    rng = Ocolos_util.Rng.create seed;
    core = Ocolos_uarch.Core.create ~cfg ();
    state = Running;
    instret = 0 }

(* Independent deep copy: registers, call stack and PRNG are duplicated so
   the copy replays the same future execution without touching the source.
   The core model is fresh — a copy exists to replay architectural
   semantics (the shadow checker), and cycle state never affects them. *)
let copy t =
  { tid = t.tid;
    regs = Array.copy t.regs;
    pc = t.pc;
    frames =
      Array.map
        (fun f -> { ret_addr = f.ret_addr; callee_entry = f.callee_entry })
        t.frames;
    depth = t.depth;
    rng = Ocolos_util.Rng.copy t.rng;
    core = Ocolos_uarch.Core.create ();
    state = t.state;
    instret = t.instret }

let grow t =
  let n = Array.length t.frames in
  let bigger = Array.init (2 * n) (fun i -> if i < n then t.frames.(i) else { ret_addr = 0; callee_entry = 0 }) in
  t.frames <- bigger

let push_frame t ~ret_addr ~callee_entry =
  if t.depth >= Array.length t.frames then grow t;
  let f = t.frames.(t.depth) in
  f.ret_addr <- ret_addr;
  f.callee_entry <- callee_entry;
  t.depth <- t.depth + 1

let pop_frame t =
  if t.depth = 0 then None
  else begin
    t.depth <- t.depth - 1;
    Some t.frames.(t.depth).ret_addr
  end

(* [pop_frame] for the interpreter's Ret path, without the option: requires
   [depth > 0]. *)
let pop_ret t =
  t.depth <- t.depth - 1;
  (Array.unsafe_get t.frames t.depth).ret_addr

(* Return addresses innermost-first; this is what a stack walk sees. *)
let return_addresses t = List.init t.depth (fun i -> t.frames.(t.depth - 1 - i).ret_addr)

(* Frames as mutable records, for OCOLOS's return-address patching. *)
let live_frames t = List.init t.depth (fun i -> t.frames.(i))

let[@inline] is_running t = match t.state with Running -> true | Halted | Faulted _ -> false
