(** A simulated process: an address space plus threads, an interpreter and a
    round-robin scheduler.

    External controllers (the profiler, OCOLOS) interact with the process
    the way perf and ptrace do with a real one: a taken-branch hook observes
    control flow (the LBR analog), pause/resume stops all threads at an
    instruction boundary, and the address space and per-thread
    register/stack state are inspectable and patchable while paused. *)

type branch_kind = Cond | Jump | IndJump | DirectCall | IndCall | Return

type hooks = {
  mutable on_taken_branch :
    (tid:int -> from_addr:int -> to_addr:int -> kind:branch_kind -> cycles:float -> unit)
    option;
  mutable translate_fp : (int -> int) option;
      (** the wrapFuncPtrCreation callback: rewrites values materialized by
          [FpCreate] (paper Section IV-C2) *)
}

type t = {
  mem : Addr_space.t;
  threads : Thread.t array;
  binary : Ocolos_binary.Binary.t;
  hooks : hooks;
  mutable instret : int;
  mutable paused : bool;
  mutable block_engine : Block_engine.t option;
      (** decoded-block cache, created lazily on the first [`Blocks] run *)
  mutable trace_engine : Superblock.t option;
      (** superblock/trace cache, created lazily on the first [`Traces] run *)
}

(** Launch a process from a binary image with [nthreads] worker threads, all
    starting at the binary entry point with distinct PRNG seeds. *)
val load :
  ?nthreads:int -> ?cfg:Ocolos_uarch.Config.t -> ?seed:int -> Ocolos_binary.Binary.t -> t

(** Independent deep copy of the whole process (address space, threads,
    register/stack/PRNG state) — the shadow checker's substrate. The clone
    shares no mutable state with the source; its hooks start empty, its
    engine caches cold, and it is runnable even if the source is paused. *)
val clone : t -> t

exception Fault of string

(** Execute one instruction on the given thread. Raises {!Fault} on an
    unmapped fetch (the thread is marked faulted first). *)
val step : t -> Thread.t -> unit

val runnable : t -> bool

(** Round-robin execution until every running thread's core reaches
    [cycle_limit], all threads halt, or [max_instrs] is exhausted. Running
    every core to a common cycle horizon models concurrent execution on
    dedicated cores. Raises [Invalid_argument] if the process is paused.

    [engine] selects the execution engine: [`Blocks] (the default) runs the
    decoded basic-block engine ({!Block_engine}); [`Traces] runs the
    superblock/trace tier ({!Superblock}: exit chaining, inline caches, hot
    paths flattened into superblocks); [`Reference] runs the
    one-instruction-at-a-time interpreter. All three produce bit-identical
    counters, traces and hook calls — the reference path is kept for
    differential testing. *)
val run :
  ?engine:[ `Reference | `Blocks | `Traces ] ->
  ?quantum:int ->
  ?max_instrs:int ->
  cycle_limit:float ->
  t ->
  unit

(** Decoded-block cache statistics, once a [`Blocks] run has created it. *)
val code_cache_stats : t -> Block_engine.stats option

(** Superblock/trace cache statistics, once a [`Traces] run has created
    it. *)
val trace_cache_stats : t -> Superblock.stats option

(** True when every cached decoded form — basic blocks, superblocks, chain
    links and inline caches — matches the code map (vacuously true for an
    engine that hasn't run). *)
val validate_code_cache : t -> bool

val pause : t -> unit
val resume : t -> unit

(** Every code address the execution engines hold live references to,
    labeled: cached block/node starts, chained-exit and inline-cache
    targets, per-thread resume memos. Empty for engines that haven't run.
    OCOLOS's post-GC reachability scanner audits these against freed
    code. *)
val engine_code_pointers : t -> (string * int) list

(** Tell the engines that paused threads' PCs and frames were rewritten
    into another code version (on-stack replacement): per-thread resume
    memos and chain sources are dropped. *)
val notify_threads_migrated : t -> unit

(** Advance running threads' clocks without executing instructions (a
    stop-the-world interval). *)
val stall_all :
  t -> cycles:float -> category:[ `Frontend | `Backend | `BadSpec ] -> unit

(** Sum of all threads' counters. *)
val total_counters : t -> Ocolos_uarch.Counters.t

val max_cycles : t -> float
val transactions : t -> int

(** Read/write a word in the globals region by word offset (how the workload
    driver sets input parameters). *)
val read_global : t -> int -> int

val write_global : t -> int -> int -> unit
