(** Superblock/trace execution tier.

    Extends the decoded-block engine ({!Block_engine}) with exit chaining
    (each block's exit memoizes its last successors, skipping the dispatch
    lookup), monomorphic inline caches at [IndCall]/[IndJump] exits, and
    superblocks — hot multi-block paths flattened into a single run with
    guards at every internal control transfer. All fast paths are
    speculative-with-guard: they change which lookup finds the code, never
    what executes, so counters, LBR samples and traces stay bit-identical
    to the reference interpreter and to {!Block_engine}.

    Replacement safety uses the same code-watcher feed as {!Block_engine}:
    every code-map mutation — commit or journal-replay rollback — kills all
    overlapping nodes and superblocks, invalidates in-flight runs via a
    generation bump, and clears per-thread memo/chain state. *)

type stats = {
  decodes : int;  (** blocks decoded (cache misses) *)
  dispatches : int;  (** run dispatches (including memo resumes) *)
  resumes : int;  (** dispatches resolved by the per-thread memo *)
  chained : int;  (** dispatches resolved through an exit chain link *)
  chain_misses : int;  (** armed chains whose L1/L2 links missed the pc *)
  ic_hits : int;  (** dispatches resolved through an inline cache *)
  ic_misses : int;  (** indirect-exit dispatches the inline cache missed *)
  promotions : int;  (** superblocks formed *)
  superblocks : int;  (** superblocks currently live *)
  invalidations : int;  (** cached nodes dropped by code writes *)
  resident : int;  (** nodes currently cached *)
}

type t

(** Create an engine over [mem] and register it as a code watcher.
    [nthreads] sizes the per-thread memo/chain state. A block is considered
    for promotion into a superblock after [promote_after] dispatches;
    traces span at most [sb_max_blocks] blocks / [sb_max_entries]
    instructions. *)
val create :
  ?promote_after:int ->
  ?sb_max_blocks:int ->
  ?sb_max_entries:int ->
  nthreads:int ->
  Addr_space.t ->
  t

(** Run [thread] for at most [max_steps] instructions, stopping early when
    it halts/faults or its core reaches [cycle_limit] — the reference inner
    loop's conditions, re-checked before every instruction. Returns the
    number of instructions executed. Raises {!Block_engine.Fault} on an
    unmapped fetch. *)
val exec :
  t -> Block_engine.hooks -> Thread.t -> max_steps:int -> cycle_limit:float -> int

val stats : t -> stats

(** Sweep links to invalidated nodes, then check the full cache discipline:
    cached nodes and superblocks alive and coherent with the code map, no
    surviving link/memo/chain referencing dead state, and the incremental
    resident count equal to the cache population. Always true unless the
    invalidation feed missed a write. *)
val validate : t -> bool

(** Every code address the engine holds a live reference to, as
    (label, address) pairs: node keys ("node"), chained-exit and
    inline-cache targets ("l1"/"l2"/"ic"/"chain"), the direct-mapped front
    table ("dmap") and per-thread resume memos
    ("trace_memo"/"trace_resume"). OCOLOS's post-GC reachability scanner
    audits these against freed code. *)
val code_pointers : t -> (string * int) list

(** OCOLOS migrated paused threads' PCs to another code version: drop the
    per-thread resume memos and chain sources, which describe where the
    threads were. *)
val on_threads_migrated : t -> unit
