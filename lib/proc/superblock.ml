(* Superblock/trace execution tier.

   [Block_engine] executes one decoded basic block per dispatch, but every
   block exit still pays a dispatch — memo checks, a hash-table lookup, loop
   bookkeeping — and every indirect call re-resolves its target. This tier
   removes both costs the way OCamlJIT 2.0 and trace-based binary optimizers
   do:

   - Exit chaining: each cached block (a [node]) memoizes the successor
     node its exit last transferred to ([n_l1]/[n_l2], most-recent-first).
     When a run completes at a control transfer, the next dispatch checks
     the exit's links before touching the hash table; a hit costs one
     pointer compare and one pc compare.

   - Monomorphic inline caches: exits through [IndCall]/[IndJump] use a
     dedicated slot ([n_ic]) that memoizes the last resolved target,
     guarded by the pc the transfer actually reached. A megamorphic site
     degrades to the table path, never to wrong execution.

   - Superblocks: once a node has been dispatched [promote_after] times,
     its memoized successors are stitched into a single flattened run
     (a trace) spanning up to [sb_max_blocks] blocks. A hot multi-block
     loop then executes as one run per iteration instead of one dispatch
     per block. Internal control transfers carry a guard: after executing
     a guarded entry, the run side-exits unless the thread's pc equals the
     next entry's address — so a mispredicted branch, a megamorphic call,
     or a changed return address merely falls back to a dispatch, exactly
     where the reference interpreter would be.

   Semantics are byte-identical to the reference interpreter and to
   [Block_engine]: every instruction goes through the shared kernel
   [Block_engine.execute], the inner loop re-checks the same step/cycle/
   runnable conditions before each instruction, and all chaining state is
   speculative-with-guard, so it can change *which lookup path found the
   block*, never *what executes*.

   Replacement safety mirrors [Block_engine] and goes through the same
   watcher feed: the engine registers a code watcher, and every code-map
   mutation — [Txn.replace_code] commits and journal-replay rollbacks
   alike — kills every node and every superblock whose bytes overlap the
   written span, bumps the generation (in-flight runs bail out), clears
   the per-thread memo and chain state, and leaves dangling links
   unfollowable behind [n_alive] guards. [validate] additionally sweeps
   dead links so no stale chained exit survives a rollback. *)

open Ocolos_isa

type link = Nil | To of node

and node = {
  n_blk : Predecode.block;
  n_run : run; (* the plain single-block run *)
  n_ind_exit : bool; (* exit is IndCall/IndJump: chain via the IC slot *)
  mutable n_sb : run; (* run dispatched at this entry; == [n_run] until promoted *)
  mutable n_hits : int; (* dispatch count; drives promotion *)
  mutable n_l1 : link; (* most recent exit successor *)
  mutable n_l2 : link; (* previous exit successor *)
  mutable n_ic : link; (* monomorphic inline cache (indirect exits) *)
  mutable n_alive : bool;
}

and run = {
  r_body : Predecode.block; (* flattened entries; == [n_blk] for a plain run *)
  r_guard : bool array;
      (* [r_guard.(i)]: after executing entry [i], side-exit unless the
         thread's pc equals entry [i+1]'s address — set at every internal
         constituent boundary, never on the last entry *)
  r_head : node; (* constituent owning the entry point *)
  r_exit : node; (* constituent owning the final entry; links live here *)
  r_exits : node array;
      (* [r_exits.(i)]: the constituent node whose final entry is body
         entry [i] ([nil_node] elsewhere). A guard failure at entry [i] is
         a transfer out of that constituent's exit, so its links are the
         chain source for the side exit — without this, every side exit
         falls back to a table lookup. *)
  r_nblocks : int;
  mutable r_alive : bool;
}

let empty_block =
  { Predecode.b_start = -1; b_end = -1; b_addrs = [||]; b_sizes = [||]; b_instrs = [||] }

(* Sentinel for "no in-flight run" / "no chain source": dead, empty, with an
   impossible start, so every memo and chain check fails without options. *)
let rec nil_node =
  { n_blk = empty_block;
    n_run = nil_run;
    n_ind_exit = false;
    n_sb = nil_run;
    n_hits = 0;
    n_l1 = Nil;
    n_l2 = Nil;
    n_ic = Nil;
    n_alive = false }

and nil_run =
  { r_body = empty_block;
    r_guard = [||];
    r_head = nil_node;
    r_exit = nil_node;
    r_exits = [||];
    r_nblocks = 0;
    r_alive = false }

let node_of_block (blk : Predecode.block) =
  let len = Predecode.length blk in
  let ind_exit =
    len > 0
    &&
    match blk.Predecode.b_instrs.(len - 1) with
    | Instr.CallInd _ | Instr.JumpInd _ -> true
    | _ -> false
  in
  let guard = Array.make len false in
  let exits = Array.make len nil_node in
  let rec node =
    { n_blk = blk;
      n_run = run;
      n_ind_exit = ind_exit;
      n_sb = run;
      n_hits = 0;
      n_l1 = Nil;
      n_l2 = Nil;
      n_ic = Nil;
      n_alive = true }
  and run =
    { r_body = blk;
      r_guard = guard;
      r_head = node;
      r_exit = node;
      r_exits = exits;
      r_nblocks = 1;
      r_alive = true }
  in
  if len > 0 then exits.(len - 1) <- node;
  node

type stats = {
  decodes : int;
  dispatches : int;
  resumes : int;
  chained : int;
  chain_misses : int;
  ic_hits : int;
  ic_misses : int;
  promotions : int;
  superblocks : int;
  invalidations : int;
  resident : int;
}

type t = {
  mem : Addr_space.t;
  nodes : (int, node) Hashtbl.t; (* entry address -> live node *)
  dmap : node array;
      (* direct-mapped front cache over [nodes], keyed by the entry
         address's low bits. A probe is one load and two compares with no
         allocation, where [Hashtbl.find_opt] hashes, chases a bucket and
         boxes the result — the difference is most of the cost of the
         dispatches the chain links can't predict (returns from shared
         functions see one target per call site, more than L1/L2 hold).
         Purely a cache: collisions evict, probes are guarded by [n_alive]
         and an exact entry-address compare, and [kill_node] clears the
         slot, so it can never resurrect replaced code. *)
  cover : (int, node list) Hashtbl.t; (* code byte -> live nodes spanning it *)
  scover : (int, run list) Hashtbl.t; (* code byte -> live superblocks spanning it *)
  memo : run array; (* per-tid in-flight run ([nil_run] = none) ... *)
  memo_idx : int array; (* ... and the entry index to resume at *)
  chain : link array; (* per-tid exit node of the last completed run *)
  promote_after : int;
  sb_max_blocks : int;
  sb_max_entries : int;
  mutable gen : int; (* bumped on every code write; guards in-flight runs *)
  mutable decodes : int;
  mutable dispatches : int;
  mutable resumes : int;
  mutable chained : int;
  mutable chain_misses : int;
  mutable ic_hits : int;
  mutable ic_misses : int;
  mutable promotions : int;
  mutable invalidations : int;
  mutable resident_acc : int;
      (* incremental node count; [n_alive]-guarded so a node can never be
         dropped twice, and [validate] asserts it equals the table size *)
  mutable sb_live : int; (* live superblocks, same discipline via [r_alive] *)
}

(* Apply [f byte] for every byte of every entry of [b]. *)
let iter_body_bytes (b : Predecode.block) f =
  Array.iteri
    (fun i addr ->
      let size = Array.unsafe_get b.Predecode.b_sizes i in
      for j = 0 to size - 1 do
        f (addr + j)
      done)
    b.Predecode.b_addrs

let index_add tbl key v =
  let l = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  if not (List.memq v l) then Hashtbl.replace tbl key (v :: l)

let index_remove tbl key v =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some l -> (
    match List.filter (fun x -> x != v) l with
    | [] -> Hashtbl.remove tbl key
    | rest -> Hashtbl.replace tbl key rest)

let dmap_bits = 14
let dmap_slot pc = pc land ((1 lsl dmap_bits) - 1)

let register_node t n =
  let start = n.n_blk.Predecode.b_start in
  Hashtbl.replace t.nodes start n;
  Array.unsafe_set t.dmap (dmap_slot start) n;
  iter_body_bytes n.n_blk (fun byte -> index_add t.cover byte n);
  t.resident_acc <- t.resident_acc + 1

(* Guarded by the caller's [n_alive] check: a node spans several bytes of
   the invalidated span, so the kill must be idempotent or [resident_acc]
   and [invalidations] would drift (the satellite-3 bug class). *)
let kill_node t n =
  n.n_alive <- false;
  n.n_run.r_alive <- false;
  let start = n.n_blk.Predecode.b_start in
  Hashtbl.remove t.nodes start;
  if Array.unsafe_get t.dmap (dmap_slot start) == n then
    Array.unsafe_set t.dmap (dmap_slot start) nil_node;
  iter_body_bytes n.n_blk (fun byte -> index_remove t.cover byte n);
  t.resident_acc <- t.resident_acc - 1;
  t.invalidations <- t.invalidations + 1

let register_run t r =
  iter_body_bytes r.r_body (fun byte -> index_add t.scover byte r);
  t.sb_live <- t.sb_live + 1

let kill_run t r =
  r.r_alive <- false;
  iter_body_bytes r.r_body (fun byte -> index_remove t.scover byte r);
  (* demote the head back to its plain run so future dispatches there don't
     re-enter the dead trace *)
  if r.r_head.n_alive && r.r_head.n_sb == r then r.r_head.n_sb <- r.r_head.n_run;
  t.sb_live <- t.sb_live - 1

(* A code write dirtying bytes [start, start+len): kill every node and every
   superblock overlapping the span, bump the generation so in-flight runs
   bail out, and clear the per-thread memo/chain state. Links into killed
   nodes stay unfollowable behind their [n_alive] guards until [validate]
   sweeps them. *)
let invalidate t ~start ~len =
  t.gen <- t.gen + 1;
  for off = 0 to len - 1 do
    let byte = start + off in
    (match Hashtbl.find_opt t.cover byte with
    | None -> ()
    | Some ns -> List.iter (fun n -> if n.n_alive then kill_node t n) ns);
    match Hashtbl.find_opt t.scover byte with
    | None -> ()
    | Some rs -> List.iter (fun r -> if r.r_alive then kill_run t r) rs
  done;
  Array.fill t.memo 0 (Array.length t.memo) nil_run;
  Array.fill t.memo_idx 0 (Array.length t.memo_idx) 0;
  Array.fill t.chain 0 (Array.length t.chain) Nil

let create ?(promote_after = 16) ?(sb_max_blocks = 16) ?(sb_max_entries = 256) ~nthreads mem =
  let nthreads = max 1 nthreads in
  let t =
    { mem;
      nodes = Hashtbl.create 1024;
      dmap = Array.make (1 lsl dmap_bits) nil_node;
      cover = Hashtbl.create 4096;
      scover = Hashtbl.create 1024;
      memo = Array.make nthreads nil_run;
      memo_idx = Array.make nthreads 0;
      chain = Array.make nthreads Nil;
      promote_after = max 1 promote_after;
      sb_max_blocks = max 2 sb_max_blocks;
      sb_max_entries = max 2 sb_max_entries;
      gen = 0;
      decodes = 0;
      dispatches = 0;
      resumes = 0;
      chained = 0;
      chain_misses = 0;
      ic_hits = 0;
      ic_misses = 0;
      promotions = 0;
      invalidations = 0;
      resident_acc = 0;
      sb_live = 0 }
  in
  Addr_space.add_code_watcher mem (fun start len -> invalidate t ~start ~len);
  t

let decode_node t (thread : Thread.t) pc =
  let d = Array.unsafe_get t.dmap (dmap_slot pc) in
  if d.n_alive && d.n_blk.Predecode.b_start = pc then d
  else
    match Hashtbl.find_opt t.nodes pc with
    | Some n ->
      (* collision victim: reinstate it as the slot's occupant *)
      Array.unsafe_set t.dmap (dmap_slot pc) n;
      n
    | None -> (
      match Predecode.decode ~read:(fun a -> Addr_space.read_code t.mem a) pc with
      | Some b ->
        t.decodes <- t.decodes + 1;
        let n = node_of_block b in
        register_node t n;
        n
      | None -> Block_engine.fault_unmapped thread ~pc)

(* The likely successor of [n]'s exit, for trace formation only — execution
   never trusts it without a guard. Static transfers resolve themselves;
   conditional exits use the most recent chained target; indirect exits use
   the inline cache; returns and halts end the trace (a return address is a
   property of the call stack, not the code). A non-control-flow final
   entry means the decoder stopped at [max_len] or unmapped code, so the
   only successor is the contiguous fallthrough. Successors are only taken
   from the cache — a trace stitches blocks that are already hot. *)
let successor_of t n =
  let blk = n.n_blk in
  let len = Predecode.length blk in
  if len = 0 then None
  else
    match blk.Predecode.b_instrs.(len - 1) with
    | Instr.Jump target | Instr.Call target -> Hashtbl.find_opt t.nodes target
    | Instr.Branch _ -> (
      match n.n_l1 with To s when s.n_alive -> Some s | _ -> None)
    | Instr.CallInd _ | Instr.JumpInd _ -> (
      match n.n_ic with To s when s.n_alive -> Some s | _ -> None)
    | Instr.Ret | Instr.Halt -> None
    | _ -> Hashtbl.find_opt t.nodes blk.Predecode.b_end

(* Stitch a superblock starting at [head]: follow memoized successors until
   a trace-ending exit, a block already in the trace (the loop closes via
   exit chaining instead), or the size caps. Only traces of >= 2 blocks are
   materialized. *)
let promote t head =
  let rec walk acc entries count cur =
    if count >= t.sb_max_blocks then List.rev acc
    else
      match successor_of t cur with
      | None -> List.rev acc
      | Some s ->
        if List.memq s acc then List.rev acc
        else
          let entries = entries + Predecode.length s.n_blk in
          if entries > t.sb_max_entries then List.rev acc
          else walk (s :: acc) entries (count + 1) s
  in
  let nodes = walk [head] (Predecode.length head.n_blk) 1 head in
  match nodes with
  | [] | [_] -> ()
  | _ ->
    let body = Predecode.concat (List.map (fun nd -> nd.n_blk) nodes) in
    let guard = Array.make (Predecode.length body) false in
    let exits = Array.make (Predecode.length body) nil_node in
    let off = ref 0 in
    let rec mark = function
      | [] | [_] -> ()
      | nd :: rest ->
        off := !off + Predecode.length nd.n_blk;
        guard.(!off - 1) <- true;
        exits.(!off - 1) <- nd;
        mark rest
    in
    mark nodes;
    let exit = List.nth nodes (List.length nodes - 1) in
    exits.(Predecode.length body - 1) <- exit;
    let run =
      { r_body = body;
        r_guard = guard;
        r_head = head;
        r_exit = exit;
        r_exits = exits;
        r_nblocks = List.length nodes;
        r_alive = true }
    in
    register_run t run;
    head.n_sb <- run;
    t.promotions <- t.promotions + 1

(* Resolve the run to execute at [pc] and the entry index to start from.

   Priority: resume the thread's in-flight run (a quantum boundary landed
   inside it), loop back to its start, follow the chain from the exit of
   the last completed run (IC slot for indirect exits, L1/L2 otherwise),
   and only then the table — decoding on miss. Every fast path is guarded
   by liveness and an exact pc compare, so a stale memo or link can only
   miss, never misdirect. *)
let resolve t (thread : Thread.t) pc =
  let tid = thread.Thread.tid in
  let m = Array.unsafe_get t.memo tid in
  let mi = Array.unsafe_get t.memo_idx tid in
  let maddrs = m.r_body.Predecode.b_addrs in
  if m.r_alive && mi < Array.length maddrs && Array.unsafe_get maddrs mi = pc then begin
    t.resumes <- t.resumes + 1;
    m
  end
  else if m.r_alive && m.r_body.Predecode.b_start = pc then begin
    t.resumes <- t.resumes + 1;
    Array.unsafe_set t.memo_idx tid 0;
    m
  end
  else begin
    let prev = Array.unsafe_get t.chain tid in
    Array.unsafe_set t.chain tid Nil;
    let node =
      match prev with
      | To e when e.n_alive ->
        let hit =
          if e.n_ind_exit then (
            match e.n_ic with
            | To s when s.n_alive && s.n_blk.Predecode.b_start = pc ->
              t.ic_hits <- t.ic_hits + 1;
              Some s
            | _ ->
              t.ic_misses <- t.ic_misses + 1;
              None)
          else
            match e.n_l1 with
            | To s when s.n_alive && s.n_blk.Predecode.b_start = pc ->
              t.chained <- t.chained + 1;
              Some s
            | _ -> (
              match e.n_l2 with
              | To s when s.n_alive && s.n_blk.Predecode.b_start = pc ->
                (* most-recent-first *)
                e.n_l2 <- e.n_l1;
                e.n_l1 <- To s;
                t.chained <- t.chained + 1;
                Some s
              | _ ->
                t.chain_misses <- t.chain_misses + 1;
                None)
        in
        (match hit with
        | Some s -> s
        | None ->
          let s = decode_node t thread pc in
          (if e.n_ind_exit then e.n_ic <- To s
           else begin
             e.n_l2 <- e.n_l1;
             e.n_l1 <- To s
           end);
          s)
      | _ -> decode_node t thread pc
    in
    node.n_hits <- node.n_hits + 1;
    if node.n_hits >= t.promote_after && node.n_sb == node.n_run then begin
      node.n_hits <- 0;
      promote t node
    end;
    Array.unsafe_set t.memo tid node.n_sb;
    Array.unsafe_set t.memo_idx tid 0;
    node.n_sb
  end

(* Run [thread] for up to [max_steps] instructions or until it stops being
   runnable or reaches [cycle_limit]. An instruction executes here iff the
   reference inner loop (Proc.run) would execute it: the same conditions
   are re-checked before every single instruction, and a failed trace
   guard only ends the run early — the next dispatch starts from the
   thread's actual pc, exactly like the reference. *)
let exec t hooks (thread : Thread.t) ~max_steps ~cycle_limit =
  let core = thread.Thread.core in
  let check_cycles = cycle_limit <> infinity in
  let n = ref 0 in
  while
    !n < max_steps
    && Thread.is_running thread
    && ((not check_cycles) || Ocolos_uarch.Core.cycles core < cycle_limit)
  do
    let tid = thread.Thread.tid in
    let run = resolve t thread thread.Thread.pc in
    t.dispatches <- t.dispatches + 1;
    let gen0 = t.gen in
    let addrs = run.r_body.Predecode.b_addrs in
    let sizes = run.r_body.Predecode.b_sizes in
    let instrs = run.r_body.Predecode.b_instrs in
    let guard = run.r_guard in
    let len = Array.length instrs in
    let k = ref (Array.unsafe_get t.memo_idx tid) in
    let live = ref true in
    let stop = min (!n + (len - !k)) max_steps in
    while
      !live
      && !n < stop
      && t.gen = gen0
      && ((not check_cycles) || Ocolos_uarch.Core.cycles core < cycle_limit)
    do
      let i = !k in
      Block_engine.execute t.mem hooks thread ~pc:(Array.unsafe_get addrs i)
        ~size:(Array.unsafe_get sizes i)
        (Array.unsafe_get instrs i);
      incr n;
      incr k;
      if not (Thread.is_running thread) then live := false
      else if Array.unsafe_get guard i && thread.Thread.pc <> Array.unsafe_get addrs !k then
        (* trace guard: the internal transfer went off-trace; fall back to a
           dispatch at the thread's actual pc *)
        live := false
    done;
    (* Save the resume point and chain source — but never after an
       invalidation, which cleared both precisely because this run may be
       stale. The chain is armed by a transfer out of the run: a completed
       run chains from its exit node, and a failed trace guard chains from
       the constituent node that ended at the guard position — that node's
       links are exactly where the off-trace target lives. A budget or
       cycle stop (pc still on-trace) arms nothing; the memo resumes it. *)
    if t.gen = gen0 then begin
      Array.unsafe_set t.memo_idx tid !k;
      Array.unsafe_set t.chain tid
        (if not (Thread.is_running thread) then Nil
         else if !k = len then To run.r_exit
         else if
           !k > 0
           && Array.unsafe_get guard (!k - 1)
           && thread.Thread.pc <> Array.unsafe_get addrs !k
         then To (Array.unsafe_get run.r_exits (!k - 1))
         else Nil)
    end
  done;
  !n

let stats t =
  { decodes = t.decodes;
    dispatches = t.dispatches;
    resumes = t.resumes;
    chained = t.chained;
    chain_misses = t.chain_misses;
    ic_hits = t.ic_hits;
    ic_misses = t.ic_misses;
    promotions = t.promotions;
    superblocks = t.sb_live;
    invalidations = t.invalidations;
    resident = Hashtbl.length t.nodes }

(* Sweep-then-check. The sweep clears every link that points at a dead node
   (so no stale chained exit survives a commit or rollback); the check then
   asserts the full cache discipline: every cached node is alive, coherent
   with the code map and correctly keyed; every promoted superblock is
   alive and coherent; every surviving link and per-thread memo/chain slot
   targets live state; and the incremental resident count matches the
   table. [Txn.replace_code] runs this after both commit and rollback. *)
let validate t =
  let read a = Addr_space.read_code t.mem a in
  let scrub = function To s when not s.n_alive -> Nil | l -> l in
  Hashtbl.iter
    (fun _ n ->
      n.n_l1 <- scrub n.n_l1;
      n.n_l2 <- scrub n.n_l2;
      n.n_ic <- scrub n.n_ic)
    t.nodes;
  let ok = ref (t.resident_acc = Hashtbl.length t.nodes) in
  let link_ok = function
    | Nil -> true
    | To s ->
      s.n_alive
      && (match Hashtbl.find_opt t.nodes s.n_blk.Predecode.b_start with
         | Some s' -> s' == s
         | None -> false)
  in
  Hashtbl.iter
    (fun start n ->
      if
        not
          (n.n_alive
          && n.n_blk.Predecode.b_start = start
          && Predecode.coherent ~read n.n_blk
          && n.n_run.r_alive
          && link_ok n.n_l1 && link_ok n.n_l2 && link_ok n.n_ic
          && (n.n_sb == n.n_run
             || (n.n_sb.r_alive && Predecode.coherent ~read n.n_sb.r_body)))
      then ok := false)
    t.nodes;
  Array.iter (fun m -> if not (m == nil_run || m.r_alive) then ok := false) t.memo;
  Array.iter (fun c -> if not (link_ok c) then ok := false) t.chain;
  !ok

(* Every code address the engine holds a live reference to: node keys,
   chained-exit and inline-cache targets, the direct-mapped front table and
   each thread's resume memo. OCOLOS's post-GC reachability scanner audits
   these — live state pointing into unmapped code means the invalidation
   feed missed a write. *)
let code_pointers t =
  let link acc label = function
    | To n when n.n_alive -> (label, n.n_blk.Predecode.b_start) :: acc
    | To _ | Nil -> acc
  in
  let acc = ref [] in
  Hashtbl.iter (fun start _ -> acc := ("node", start) :: !acc) t.nodes;
  Hashtbl.iter
    (fun _ n ->
      if n.n_alive then begin
        acc := link !acc "l1" n.n_l1;
        acc := link !acc "l2" n.n_l2;
        acc := link !acc "ic" n.n_ic
      end)
    t.nodes;
  Array.iteri
    (fun tid run ->
      if run != nil_run && run.r_alive then begin
        acc := ("trace_memo", run.r_body.Predecode.b_start) :: !acc;
        let k = Array.unsafe_get t.memo_idx tid in
        if k < Array.length run.r_body.Predecode.b_addrs then
          acc := ("trace_resume", run.r_body.Predecode.b_addrs.(k)) :: !acc
      end)
    t.memo;
  Array.iter (fun c -> acc := link !acc "chain" c) t.chain;
  Array.iter
    (fun n ->
      if n != nil_node && n.n_alive then
        acc := ("dmap", n.n_blk.Predecode.b_start) :: !acc)
    t.dmap;
  !acc

(* OCOLOS migrated paused threads to another code version: per-thread resume
   memos and chain sources describe where the threads *were*, so drop them.
   Cached nodes over surviving code remain valid. *)
let on_threads_migrated t =
  Array.fill t.memo 0 (Array.length t.memo) nil_run;
  Array.fill t.memo_idx 0 (Array.length t.memo_idx) 0;
  Array.fill t.chain 0 (Array.length t.chain) Nil
