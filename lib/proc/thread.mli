(** A simulated thread: registers, PC, explicit call stack, a private
    deterministic PRNG (for the [Rand] instruction) and a private core
    timing model. The explicit stack is what OCOLOS walks (the libunwind
    analog) and patches during continuous optimization. *)

type frame = { mutable ret_addr : int; mutable callee_entry : int }

type state = Running | Halted | Faulted of string

type t = {
  tid : int;
  regs : int array;
  mutable pc : int;
  mutable frames : frame array;
  mutable depth : int;
  rng : Ocolos_util.Rng.t;
  core : Ocolos_uarch.Core.t;
  mutable state : state;
  mutable instret : int;
}

val create : tid:int -> entry:int -> seed:int -> cfg:Ocolos_uarch.Config.t -> t

(** Independent deep copy: registers, call stack and PRNG are duplicated
    (the copy replays the same future execution); the core timing model is
    fresh, since cycle state never affects architectural semantics. *)
val copy : t -> t

val push_frame : t -> ret_addr:int -> callee_entry:int -> unit

(** Pop and return the return address, [None] on an empty stack. *)
val pop_frame : t -> int option

(** {!pop_frame} without the option, for the interpreter's Ret path.
    Requires [depth > 0]. *)
val pop_ret : t -> int

(** Return addresses, innermost first. *)
val return_addresses : t -> int list

(** Live frames, outermost first, as mutable records for patching. *)
val live_frames : t -> frame list

val is_running : t -> bool
