(* The address space of a simulated process.

   Code and data live in separate spaces (instruction memory is a map from
   byte address to decoded instruction; data memory is word-addressed).
   OCOLOS mutates the code map at run time when it injects optimized code,
   and appends symbol ranges so that address->function resolution keeps
   working for the injected region. *)

open Ocolos_isa
open Ocolos_binary

type sym_range = { sr_start : int; sr_end : int; sr_fid : int }

(* Undo journal for transactional mutation (OCOLOS's code replacement).
   Each entry records the *previous* contents of a touched location; the
   symbol index, byte count and mmap cursor are snapshotted wholesale at
   [begin_journal] since the index is rebuilt (never mutated in place). *)
type journal_entry =
  | J_code of int * Instr.t option
  | J_data of int * int option

type journal = {
  mutable entries : journal_entry list; (* most recent first *)
  mutable n_entries : int;
  j_sym_index : sym_range array;
  j_code_bytes : int;
  j_next_map_base : int;
}

type t = {
  code : (int, Instr.t) Hashtbl.t;
  data : Ocolos_util.Itbl.t; (* word address -> value; absent = 0 *)
  vtable_addr : int array; (* vid -> base address in data memory *)
  mutable sym_index : sym_range array; (* sorted by sr_start *)
  mutable code_bytes : int; (* total bytes of mapped code *)
  mutable next_map_base : int; (* first free code address for injection *)
  mutable journal : journal option;
  mutable code_watchers : (int -> int -> unit) list;
      (* observers of every code-map mutation (write, removal, rollback
         replay); the execution engines' invalidation feeds. Each is called
         with the byte span [start, start+len) the mutation touches — not
         just the keyed address — so a write whose encoding overlays the
         tail of one cached block and the head of the next invalidates
         every overlapping block. *)
}

let add_code_watcher t f = t.code_watchers <- f :: t.code_watchers

let notify_code_write t addr len =
  List.iter (fun f -> f addr len) t.code_watchers

let read_data t addr = Ocolos_util.Itbl.find_default t.data addr ~default:0

let write_data t addr v =
  (match t.journal with
  | None -> ()
  | Some j ->
    j.entries <- J_data (addr, Ocolos_util.Itbl.find_opt t.data addr) :: j.entries;
    j.n_entries <- j.n_entries + 1);
  Ocolos_util.Itbl.replace t.data addr v

(* Journaled deletion of a data word (absent reads as 0). Used by OCOLOS to
   reap inherited jump-table words once the residue reading them drains. *)
let remove_data t addr =
  match Ocolos_util.Itbl.find_opt t.data addr with
  | None -> ()
  | Some v ->
    (match t.journal with
    | None -> ()
    | Some j ->
      j.entries <- J_data (addr, Some v) :: j.entries;
      j.n_entries <- j.n_entries + 1);
    Ocolos_util.Itbl.remove t.data addr

let read_code t addr = Hashtbl.find_opt t.code addr

let journal_code t addr =
  match t.journal with
  | None -> ()
  | Some j ->
    j.entries <- J_code (addr, Hashtbl.find_opt t.code addr) :: j.entries;
    j.n_entries <- j.n_entries + 1

(* The byte span a mutation at [addr] dirties: the new encoding's bytes and
   the old one's, whichever reaches further. Watchers must see the full
   span — a 5-byte write over a 1-byte instruction also clobbers the four
   bytes after it, which may belong to other cached blocks. *)
let write_span old_instr new_instr =
  let len i = match i with Some i -> Instr.size i | None -> 1 in
  max (len old_instr) (len new_instr)

let write_code t addr instr =
  if not (Instr.valid_regs instr) then
    invalid_arg (Printf.sprintf "Addr_space.write_code: bad register operand at 0x%x" addr);
  journal_code t addr;
  let old = Hashtbl.find_opt t.code addr in
  (match old with
  | Some old -> t.code_bytes <- t.code_bytes - Instr.size old
  | None -> ());
  Hashtbl.replace t.code addr instr;
  t.code_bytes <- t.code_bytes + Instr.size instr;
  notify_code_write t addr (write_span old (Some instr))

let remove_code t addr =
  match Hashtbl.find_opt t.code addr with
  | Some old ->
    journal_code t addr;
    t.code_bytes <- t.code_bytes - Instr.size old;
    Hashtbl.remove t.code addr;
    notify_code_write t addr (Instr.size old)
  | None -> ()

let journaling t = t.journal <> None

let begin_journal t =
  if t.journal <> None then invalid_arg "Addr_space.begin_journal: journal already open";
  t.journal <-
    Some
      { entries = [];
        n_entries = 0;
        j_sym_index = t.sym_index;
        j_code_bytes = t.code_bytes;
        j_next_map_base = t.next_map_base }

let commit_journal t =
  match t.journal with
  | None -> invalid_arg "Addr_space.commit_journal: no open journal"
  | Some j ->
    t.journal <- None;
    j.n_entries

(* Replay the undo log most-recent-first: the oldest entry for an address
   holds its pre-transaction contents and is applied last. *)
let rollback_journal t =
  match t.journal with
  | None -> invalid_arg "Addr_space.rollback_journal: no open journal"
  | Some j ->
    t.journal <- None;
    List.iter
      (function
        | J_code (addr, Some i) ->
          let cur = Hashtbl.find_opt t.code addr in
          Hashtbl.replace t.code addr i;
          notify_code_write t addr (write_span cur (Some i))
        | J_code (addr, None) ->
          let cur = Hashtbl.find_opt t.code addr in
          Hashtbl.remove t.code addr;
          notify_code_write t addr (write_span cur None)
        | J_data (addr, Some v) -> Ocolos_util.Itbl.replace t.data addr v
        | J_data (addr, None) -> Ocolos_util.Itbl.remove t.data addr)
      j.entries;
    t.sym_index <- j.j_sym_index;
    t.code_bytes <- j.j_code_bytes;
    t.next_map_base <- j.j_next_map_base;
    j.n_entries

let rebuild_sym_index t ranges =
  let arr = Array.of_list ranges in
  Array.sort (fun a b -> compare a.sr_start b.sr_start) arr;
  t.sym_index <- arr

let add_sym_ranges t ranges =
  rebuild_sym_index t (ranges @ Array.to_list t.sym_index)

let remove_sym_ranges t ~pred =
  rebuild_sym_index t (List.filter (fun r -> not (pred r)) (Array.to_list t.sym_index))

(* Binary search over symbol ranges. *)
let fid_of_addr t addr =
  let idx = t.sym_index in
  let lo = ref 0 and hi = ref (Array.length idx - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = idx.(mid) in
    if addr < r.sr_start then hi := mid - 1
    else if addr >= r.sr_end then lo := mid + 1
    else begin
      found := Some r.sr_fid;
      lo := !hi + 1
    end
  done;
  !found

(* Independent deep copy, for shadow execution: shares no mutable storage
   with the source. The copy starts with no open journal and no watchers —
   a clone is never mid-transaction and no execution engine observes it. *)
let copy t =
  { code = Hashtbl.copy t.code;
    data = Ocolos_util.Itbl.copy t.data;
    vtable_addr = Array.copy t.vtable_addr;
    sym_index = Array.copy t.sym_index;
    code_bytes = t.code_bytes;
    next_map_base = t.next_map_base;
    journal = None;
    code_watchers = [] }

(* Map a binary image: copy code, initialize globals and v-tables, index
   symbols. *)
let load (binary : Binary.t) =
  let t =
    { code = Hashtbl.create (Array.length binary.Binary.code_order * 2);
      data = Ocolos_util.Itbl.create 4096;
      vtable_addr = Array.map (fun vt -> vt.Binary.vt_addr) binary.Binary.vtables;
      sym_index = [||];
      code_bytes = 0;
      next_map_base = 0;
      journal = None;
      code_watchers = [] }
  in
  Array.iter
    (fun addr -> write_code t addr (Hashtbl.find binary.Binary.code addr))
    binary.Binary.code_order;
  List.iter (fun (addr, v) -> write_data t addr v) binary.Binary.global_init;
  Array.iter
    (fun vt ->
      Array.iteri (fun slot target -> write_data t (vt.Binary.vt_addr + slot) target)
        vt.Binary.vt_entries)
    binary.Binary.vtables;
  let ranges =
    Array.to_list binary.Binary.symbols
    |> List.concat_map (fun s ->
           List.map
             (fun r ->
               { sr_start = r.Binary.r_start;
                 sr_end = r.Binary.r_start + r.Binary.r_size;
                 sr_fid = s.Binary.fs_fid })
             s.Binary.fs_ranges)
  in
  rebuild_sym_index t ranges;
  let max_end =
    List.fold_left
      (fun acc (s : Binary.section) -> max acc (s.Binary.sec_base + s.Binary.sec_size))
      0 binary.Binary.sections
  in
  t.next_map_base <- (max_end + 0xFFFF) land lnot 0xFFFF;
  t

(* Reserve [bytes] of fresh code address space (page-aligned), as an
   anonymous executable mmap would. *)
let reserve_code t bytes =
  let base = t.next_map_base in
  t.next_map_base <- (base + bytes + 0xFFF) land lnot 0xFFF;
  base

let vtable_base t vid = t.vtable_addr.(vid)

let code_instr_count t = Hashtbl.length t.code
