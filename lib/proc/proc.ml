(* A simulated process: an address space plus threads, an interpreter and a
   round-robin scheduler.

   External controllers (the profiler, OCOLOS) interact with the process the
   way perf and ptrace do with a real one: a taken-branch hook observes
   control flow (the LBR analog), pause/resume stops all threads at an
   instruction boundary, and the address space and per-thread register/stack
   state are directly inspectable and patchable while paused. *)

open Ocolos_isa

(* Control-flow vocabulary, execution hooks and the fault exception live in
   Block_engine (the shared semantic kernel); re-export them so existing
   users of [Proc.Cond], [Proc.Fault] etc. are unaffected. *)
type branch_kind = Block_engine.branch_kind =
  | Cond
  | Jump
  | IndJump
  | DirectCall
  | IndCall
  | Return

type hooks = Block_engine.hooks = {
  mutable on_taken_branch :
    (tid:int -> from_addr:int -> to_addr:int -> kind:branch_kind -> cycles:float -> unit) option;
  mutable translate_fp : (int -> int) option;
      (* wrapFuncPtrCreation: rewrites the value materialized by FpCreate *)
}

type t = {
  mem : Addr_space.t;
  threads : Thread.t array;
  binary : Ocolos_binary.Binary.t; (* the image the process was launched from *)
  hooks : hooks;
  mutable instret : int; (* total instructions retired, all threads *)
  mutable paused : bool;
  mutable block_engine : Block_engine.t option; (* created on first `Blocks run *)
  mutable trace_engine : Superblock.t option; (* created on first `Traces run *)
}

let load ?(nthreads = 1) ?(cfg = Ocolos_uarch.Config.broadwell) ?(seed = 42) binary =
  let mem = Addr_space.load binary in
  let threads =
    Array.init nthreads (fun tid ->
        Thread.create ~tid ~entry:binary.Ocolos_binary.Binary.entry ~seed:(seed + (7919 * tid))
          ~cfg)
  in
  { mem;
    threads;
    binary;
    hooks = { on_taken_branch = None; translate_fp = None };
    instret = 0;
    paused = false;
    block_engine = None;
    trace_engine = None }

(* Independent deep copy of the whole process — the shadow checker's
   substrate. The clone shares no mutable state with the source: address
   space, threads (registers, stacks, PRNGs) are duplicated; hooks start
   empty (the caller installs its own observers); the engine caches start
   cold (a clone replays on whatever engine its caller picks, typically
   [`Reference]); and a paused source yields a runnable clone. *)
let clone t =
  { mem = Addr_space.copy t.mem;
    threads = Array.map Thread.copy t.threads;
    binary = t.binary;
    hooks = { on_taken_branch = None; translate_fp = None };
    instret = t.instret;
    paused = false;
    block_engine = None;
    trace_engine = None }

exception Fault = Block_engine.Fault

(* Execute exactly one instruction on [thread], via the shared kernel. *)
let step t (thread : Thread.t) =
  let pc = thread.Thread.pc in
  match Addr_space.read_code t.mem pc with
  | None -> Block_engine.fault_unmapped thread ~pc
  | Some instr ->
    t.instret <- t.instret + 1;
    Block_engine.execute t.mem t.hooks thread ~pc ~size:(Instr.size instr) instr

let runnable t = Array.exists Thread.is_running t.threads

(* [t.instret] equals the sum of per-thread retire counts at all times; the
   block engine maintains only the per-thread counts, so the blocks path
   restores the invariant by summation (including when unwinding a fault). *)
let sync_instret t =
  t.instret <-
    Array.fold_left (fun acc (th : Thread.t) -> acc + th.Thread.instret) 0 t.threads

let engine_of t =
  match t.block_engine with
  | Some e -> e
  | None ->
    let e = Block_engine.create ~nthreads:(Array.length t.threads) t.mem in
    t.block_engine <- Some e;
    e

let trace_engine_of t =
  match t.trace_engine with
  | Some e -> e
  | None ->
    let e = Superblock.create ~nthreads:(Array.length t.threads) t.mem in
    t.trace_engine <- Some e;
    e

(* The reference interpreter loop: one [step] per inner iteration. *)
let run_reference ~quantum ~max_instrs ~cycle_limit t =
  let budget = ref max_instrs in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    Array.iter
      (fun thread ->
        if Thread.is_running thread
           && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
        then begin
          let steps = min quantum !budget in
          let i = ref 0 in
          while
            !i < steps
            && Thread.is_running thread
            && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
          do
            step t thread;
            incr i
          done;
          budget := !budget - !i;
          if !i > 0 then progress := true
        end)
      t.threads
  done

(* The decoded-block loop: identical scheduling (each thread turn executes up
   to [min quantum budget] instructions under the same per-instruction limit
   checks), so multi-threaded interleaving over shared data memory matches
   the reference exactly. *)
let run_blocks ~quantum ~max_instrs ~cycle_limit t =
  let e = engine_of t in
  let budget = ref max_instrs in
  let progress = ref true in
  (try
     while !progress && !budget > 0 do
       progress := false;
       Array.iter
         (fun thread ->
           if Thread.is_running thread
              && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
           then begin
             let steps = min quantum !budget in
             let n = Block_engine.exec e t.hooks thread ~max_steps:steps ~cycle_limit in
             budget := !budget - n;
             if n > 0 then progress := true
           end)
         t.threads
     done
   with exn ->
     sync_instret t;
     raise exn);
  sync_instret t

(* The superblock/trace loop: same scheduling again; the trace tier only
   changes how the next decoded form is found (chained exits, inline
   caches, flattened hot paths), never which instructions execute. *)
let run_traces ~quantum ~max_instrs ~cycle_limit t =
  let e = trace_engine_of t in
  let budget = ref max_instrs in
  let progress = ref true in
  (try
     while !progress && !budget > 0 do
       progress := false;
       Array.iter
         (fun thread ->
           if Thread.is_running thread
              && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
           then begin
             let steps = min quantum !budget in
             let n = Superblock.exec e t.hooks thread ~max_steps:steps ~cycle_limit in
             budget := !budget - n;
             if n > 0 then progress := true
           end)
         t.threads
     done
   with exn ->
     sync_instret t;
     raise exn);
  sync_instret t

(* Round-robin execution until every running thread's core has reached the
   cycle horizon, all threads halt, or the global instruction budget is
   exhausted. The cycle horizon is the simulated wall clock: running every
   core to the same cycle count models threads running concurrently on
   dedicated cores for the same duration. *)
let run ?(engine = `Blocks) ?(quantum = 64) ?(max_instrs = max_int) ~cycle_limit t =
  if t.paused then invalid_arg "Proc.run: process is paused";
  match engine with
  | `Reference -> run_reference ~quantum ~max_instrs ~cycle_limit t
  | `Blocks -> run_blocks ~quantum ~max_instrs ~cycle_limit t
  | `Traces -> run_traces ~quantum ~max_instrs ~cycle_limit t

let code_cache_stats t = Option.map Block_engine.stats t.block_engine
let trace_cache_stats t = Option.map Superblock.stats t.trace_engine

(* True when every cached decoded form — basic blocks and superblocks, with
   their chain links and inline caches — matches the code map (vacuously
   true for an engine that hasn't run). Txn checks this after commit and
   rollback. *)
let validate_code_cache t =
  (match t.block_engine with None -> true | Some e -> Block_engine.validate e)
  && match t.trace_engine with None -> true | Some e -> Superblock.validate e

(* ptrace-style control: pause stops execution at an instruction boundary
   (callers may then inspect and patch state); resume allows run again. *)
let pause t = t.paused <- true
let resume t = t.paused <- false

(* Every code address the execution engines hold live references to
   (cached blocks/nodes, chain links, inline caches, per-thread resume
   memos), labeled. OCOLOS's post-GC reachability scanner audits these. *)
let engine_code_pointers t =
  (match t.block_engine with None -> [] | Some e -> Block_engine.code_pointers e)
  @ match t.trace_engine with None -> [] | Some e -> Superblock.code_pointers e

(* OCOLOS rewrote paused threads' PCs/frames into another code version
   (on-stack replacement): drop engine state keyed to where the threads
   were — per-thread resume memos and chain sources. *)
let notify_threads_migrated t =
  (match t.block_engine with Some e -> Block_engine.on_threads_migrated e | None -> ());
  match t.trace_engine with Some e -> Superblock.on_threads_migrated e | None -> ()

(* Advance every running thread's core clock without executing instructions
   (a stop-the-world interval: threads stand still while wall time passes). *)
let stall_all t ~cycles ~category =
  Array.iter
    (fun thread ->
      if Thread.is_running thread then
        Ocolos_uarch.Core.stall thread.Thread.core ~cycles ~category)
    t.threads

let total_counters t =
  Array.fold_left
    (fun acc thread -> Ocolos_uarch.Counters.add acc (Ocolos_uarch.Core.snapshot thread.Thread.core))
    Ocolos_uarch.Counters.zero t.threads

let max_cycles t =
  Array.fold_left
    (fun acc thread -> Float.max acc (Ocolos_uarch.Core.cycles thread.Thread.core))
    0.0 t.threads

let transactions t =
  Array.fold_left
    (fun acc thread -> acc + (Ocolos_uarch.Core.snapshot thread.Thread.core).Ocolos_uarch.Counters.transactions)
    0 t.threads

(* Read a global word, by word offset within the globals region. *)
let read_global t off =
  Addr_space.read_data t.mem (t.binary.Ocolos_binary.Binary.globals_base + off)

let write_global t off v =
  Addr_space.write_data t.mem (t.binary.Ocolos_binary.Binary.globals_base + off) v
