(* Decoded basic-block execution engine.

   The reference interpreter in [Proc.step] pays a hash-table lookup and a
   dispatch per instruction. This engine predecodes straight-line runs into
   flat arrays ({!Ocolos_isa.Predecode.block}) keyed by entry address and
   executes a whole block per dispatch. Semantics are shared with the
   reference path through a single kernel ({!execute}): both engines make
   the same [Core.fetch] / [Core.on_mem] / branch-event / hook calls in the
   same order, so uarch counters, LBR samples and taken-branch traces are
   bit-identical between them.

   Correctness under OCOLOS-style code replacement comes from a precise
   invalidation feed: the engine registers itself as a code watcher of the
   address space, so every [Addr_space.write_code]/[remove_code] — including
   the journal replay of a rolled-back [Txn.replace_code] — invalidates
   exactly the cached blocks overlapping the written byte span. A generation
   counter guards the in-flight block: if a hook patches code mid-block,
   the inner loop bails out and re-dispatches at the current pc, exactly as
   the reference interpreter would re-fetch. *)

open Ocolos_isa

type branch_kind = Cond | Jump | IndJump | DirectCall | IndCall | Return

type hooks = {
  mutable on_taken_branch :
    (tid:int -> from_addr:int -> to_addr:int -> kind:branch_kind -> cycles:float -> unit) option;
  mutable translate_fp : (int -> int) option;
      (* wrapFuncPtrCreation: rewrites the value materialized by FpCreate *)
}

exception Fault of string

let fault_unmapped (thread : Thread.t) ~pc =
  let msg =
    Printf.sprintf "thread %d: fetch from unmapped address 0x%x" thread.Thread.tid pc
  in
  thread.Thread.state <- Thread.Faulted msg;
  raise (Fault msg)

let notify_branch hooks (thread : Thread.t) ~from_addr ~to_addr ~kind =
  match hooks.on_taken_branch with
  | None -> ()
  | Some f ->
    f ~tid:thread.Thread.tid ~from_addr ~to_addr ~kind
      ~cycles:(Ocolos_uarch.Core.cycles thread.Thread.core)

(* The shared semantic kernel: execute exactly one already-fetched-and-sized
   instruction on [thread]. Event order is the contract both engines rely on
   for bit-identical counters and traces: fetch, retire, then per-instruction
   semantics with their memory/branch events.

   Register operands are validated by [Addr_space.write_code] before an
   instruction can reach either engine, so the register file is accessed
   unchecked; [@inline] removes the per-instruction call from both
   engines' dispatch loops. *)
let[@inline] execute mem hooks (thread : Thread.t) ~pc ~size instr =
  let core = thread.Thread.core in
  let regs = thread.Thread.regs in
  Ocolos_uarch.Core.fetch core ~addr:pc ~size;
  thread.Thread.instret <- thread.Thread.instret + 1;
  let next = pc + size in
  match instr with
  | Instr.Nop | Instr.TxMark ->
    if instr = Instr.TxMark then Ocolos_uarch.Core.on_tx core;
    thread.Thread.pc <- next
  | Instr.Alu (op, d, a, b) ->
    Array.unsafe_set regs d
      (Instr.eval_alu op (Array.unsafe_get regs a) (Array.unsafe_get regs b));
    thread.Thread.pc <- next
  | Instr.Alui (op, d, a, imm) ->
    Array.unsafe_set regs d (Instr.eval_alu op (Array.unsafe_get regs a) imm);
    thread.Thread.pc <- next
  | Instr.Movi (d, imm) ->
    Array.unsafe_set regs d imm;
    thread.Thread.pc <- next
  | Instr.Load (d, b, off) ->
    let addr = Array.unsafe_get regs b + off in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    Array.unsafe_set regs d (Addr_space.read_data mem addr);
    thread.Thread.pc <- next
  | Instr.Store (s, b, off) ->
    let addr = Array.unsafe_get regs b + off in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    Addr_space.write_data mem addr (Array.unsafe_get regs s);
    thread.Thread.pc <- next
  | Instr.Branch (c, r, target) ->
    let taken = Instr.eval_cond c (Array.unsafe_get regs r) in
    Ocolos_uarch.Core.on_cond_branch core ~pc ~taken ~target;
    if taken then begin
      notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:Cond;
      thread.Thread.pc <- target
    end
    else thread.Thread.pc <- next
  | Instr.Jump target ->
    Ocolos_uarch.Core.on_jump core ~pc ~target;
    notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:Jump;
    thread.Thread.pc <- target
  | Instr.JumpInd r ->
    let target = Array.unsafe_get regs r in
    Ocolos_uarch.Core.on_indirect_jump core ~pc ~target;
    notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:IndJump;
    thread.Thread.pc <- target
  | Instr.Call target ->
    Thread.push_frame thread ~ret_addr:next ~callee_entry:target;
    Ocolos_uarch.Core.on_call core ~pc ~target ~return_addr:next ~indirect:false;
    notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:DirectCall;
    thread.Thread.pc <- target
  | Instr.CallInd r ->
    let target = Array.unsafe_get regs r in
    Thread.push_frame thread ~ret_addr:next ~callee_entry:target;
    Ocolos_uarch.Core.on_call core ~pc ~target ~return_addr:next ~indirect:true;
    notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:IndCall;
    thread.Thread.pc <- target
  | Instr.Ret ->
    if thread.Thread.depth = 0 then thread.Thread.state <- Thread.Halted
    else begin
      let target = Thread.pop_ret thread in
      Ocolos_uarch.Core.on_ret core ~pc ~target;
      notify_branch hooks thread ~from_addr:pc ~to_addr:target ~kind:Return;
      thread.Thread.pc <- target
    end
  | Instr.FpCreate (d, target) ->
    let v = match hooks.translate_fp with None -> target | Some f -> f target in
    Array.unsafe_set regs d v;
    thread.Thread.pc <- next
  | Instr.VtLoad (d, vid, slot) ->
    let addr = Addr_space.vtable_base mem vid + slot in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    Array.unsafe_set regs d (Addr_space.read_data mem addr);
    thread.Thread.pc <- next
  | Instr.Rand (d, bound) ->
    Array.unsafe_set regs d (Ocolos_util.Rng.int thread.Thread.rng bound);
    thread.Thread.pc <- next
  | Instr.Halt -> thread.Thread.state <- Thread.Halted

(* ------------------------------------------------------------------ *)
(* The block cache. *)

type stats = {
  decodes : int;
  dispatches : int;
  invalidations : int;
  resident : int;
}

type t = {
  mem : Addr_space.t;
  blocks : (int, Predecode.block) Hashtbl.t; (* entry address -> block *)
  cover : (int, int list) Hashtbl.t;
      (* code byte -> entry addresses of blocks whose decoded entries span
         it; the index that makes invalidation precise. Keyed by every byte
         of every entry (not just instruction starts) so a write whose span
         clips the tail of one instruction or crosses a block boundary
         still reaches each overlapping block. *)
  memo : Predecode.block array; (* per-tid in-flight block ([no_block] = none) ... *)
  memo_idx : int array; (* ... and the entry index to resume at *)
  mutable gen : int; (* bumped on every code write; guards in-flight blocks *)
  mutable decodes : int;
  mutable dispatches : int;
  mutable invalidations : int;
}

(* Sentinel for "no in-flight block": empty entry array and an impossible
   start address, so both memo checks in [lookup] fail without a branch on
   an option (and without allocating a [Some] per dispatch). *)
let no_block =
  { Predecode.b_start = -1; b_end = -1; b_addrs = [||]; b_sizes = [||]; b_instrs = [||] }

(* Apply [f start byte] for every byte of every decoded entry of [b]. *)
let iter_block_bytes (b : Predecode.block) f =
  let start = b.Predecode.b_start in
  Array.iteri
    (fun i addr ->
      let size = Array.unsafe_get b.Predecode.b_sizes i in
      for j = 0 to size - 1 do
        f start (addr + j)
      done)
    b.Predecode.b_addrs

let register t (b : Predecode.block) =
  Hashtbl.replace t.blocks b.Predecode.b_start b;
  iter_block_bytes b (fun start byte ->
      let starts = match Hashtbl.find_opt t.cover byte with Some l -> l | None -> [] in
      if not (List.mem start starts) then Hashtbl.replace t.cover byte (start :: starts))

let unregister t (b : Predecode.block) =
  Hashtbl.remove t.blocks b.Predecode.b_start;
  iter_block_bytes b (fun start byte ->
      match Hashtbl.find_opt t.cover byte with
      | None -> ()
      | Some starts -> (
        match List.filter (fun s -> s <> start) starts with
        | [] -> Hashtbl.remove t.cover byte
        | rest -> Hashtbl.replace t.cover byte rest))

(* A code write dirtying bytes [start, start+len): drop every cached block
   whose decoded entries overlap the span — not just the one keyed at
   [start]; a wide encoding can overlay the tail of one block and the head
   of the next — bump the generation so any in-flight block re-dispatches,
   and clear the per-thread memos (they may point at dropped blocks). The
   probe touches at most [len] cover slots ([len] <= the widest encoding,
   7 bytes), so invalidation stays O(write span), not O(cache). *)
let invalidate t ~start ~len =
  t.gen <- t.gen + 1;
  for off = 0 to len - 1 do
    match Hashtbl.find_opt t.cover (start + off) with
    | None -> ()
    | Some starts ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt t.blocks s with
          | None -> ()
          | Some b ->
            t.invalidations <- t.invalidations + 1;
            unregister t b)
        starts
  done;
  Array.fill t.memo 0 (Array.length t.memo) no_block

let create ~nthreads mem =
  let t =
    { mem;
      blocks = Hashtbl.create 1024;
      cover = Hashtbl.create 4096;
      memo = Array.make (max 1 nthreads) no_block;
      memo_idx = Array.make (max 1 nthreads) 0;
      gen = 0;
      decodes = 0;
      dispatches = 0;
      invalidations = 0 }
  in
  Addr_space.add_code_watcher mem (fun start len -> invalidate t ~start ~len);
  t

(* Find the block to run at [pc], leaving the entry index to start from in
   [memo_idx]. The memo holds the thread's in-flight block: resuming
   mid-block (a quantum boundary landed inside it) or looping back to its
   start skips the table; anything else goes through the table, decoding on
   miss. Decoding at a mid-block address is merely a cache miss, not an
   error — the decoded entries are correct for that pc. *)
let lookup t (thread : Thread.t) pc =
  let tid = thread.Thread.tid in
  let m = Array.unsafe_get t.memo tid in
  let k = Array.unsafe_get t.memo_idx tid in
  if k < Array.length m.Predecode.b_addrs && Array.unsafe_get m.Predecode.b_addrs k = pc
  then m
  else if m.Predecode.b_start = pc then begin
    Array.unsafe_set t.memo_idx tid 0;
    m
  end
  else begin
    let b =
      match Hashtbl.find_opt t.blocks pc with
      | Some b -> b
      | None -> (
        match Predecode.decode ~read:(fun a -> Addr_space.read_code t.mem a) pc with
        | Some b ->
          t.decodes <- t.decodes + 1;
          register t b;
          b
        | None -> fault_unmapped thread ~pc)
    in
    t.memo.(tid) <- b;
    Array.unsafe_set t.memo_idx tid 0;
    b
  end

(* Run [thread] for up to [max_steps] instructions or until it stops being
   runnable or reaches [cycle_limit]. Returns the number of instructions
   executed. An instruction executes here iff the reference inner loop
   (Proc.run) would execute it: the same three conditions are re-checked
   before every single instruction, block boundaries notwithstanding. *)
let exec t hooks (thread : Thread.t) ~max_steps ~cycle_limit =
  let core = thread.Thread.core in
  (* With an infinite horizon the cycle condition is vacuously true (cycle
     counts stay finite), so the per-instruction [Core.cycles] sum can be
     skipped without changing which instructions execute. *)
  let check_cycles = cycle_limit <> infinity in
  let n = ref 0 in
  while
    !n < max_steps
    && Thread.is_running thread
    && ((not check_cycles) || Ocolos_uarch.Core.cycles core < cycle_limit)
  do
    let block = lookup t thread thread.Thread.pc in
    t.dispatches <- t.dispatches + 1;
    let gen0 = t.gen in
    (* Hoisted so the loop body reads locals, not block fields, across the
       [execute] calls. *)
    let addrs = block.Predecode.b_addrs in
    let sizes = block.Predecode.b_sizes in
    let instrs = block.Predecode.b_instrs in
    let len = Array.length instrs in
    let k = ref (Array.unsafe_get t.memo_idx thread.Thread.tid) in
    let live = ref true in
    (* [n] and [k] advance in lockstep, so one bound covers both the block
       end and the step budget. *)
    let stop = min (!n + (len - !k)) max_steps in
    (* By the decode invariant, only the last entry can be a control
       transfer, so pc always equals the next entry's address inside the
       loop; a mid-block code write bumps [gen] and forces re-dispatch. *)
    while
      !live
      && !n < stop
      && t.gen = gen0
      && ((not check_cycles) || Ocolos_uarch.Core.cycles core < cycle_limit)
    do
      let i = !k in
      execute t.mem hooks thread ~pc:(Array.unsafe_get addrs i)
        ~size:(Array.unsafe_get sizes i)
        (Array.unsafe_get instrs i);
      incr n;
      incr k;
      if not (Thread.is_running thread) then live := false
    done;
    (* Remember where this block was left so a quantum boundary resumes
       instead of re-decoding. [lookup] already left the memo pointing at
       this block, so only the index needs storing — and never after an
       invalidation, which cleared the memo precisely because blocks like
       this one may be stale. *)
    if t.gen = gen0 then Array.unsafe_set t.memo_idx thread.Thread.tid !k
  done;
  !n

let stats t =
  { decodes = t.decodes;
    dispatches = t.dispatches;
    invalidations = t.invalidations;
    resident = Hashtbl.length t.blocks }

(* Every cached block must still match the code map. [Txn.replace_code]
   checks this after both commit and rollback: an incoherent entry here
   means the invalidation feed missed a write. *)
let validate t =
  let read a = Addr_space.read_code t.mem a in
  Hashtbl.fold (fun _ b acc -> acc && Predecode.coherent ~read b) t.blocks true

(* Every code address the engine holds a live reference to: cached block
   starts and each thread's in-flight resume point. OCOLOS's post-GC
   reachability scanner audits these — an entry surviving the unmapping of
   its bytes means the invalidation feed missed a write. *)
let code_pointers t =
  let acc = ref [] in
  Hashtbl.iter (fun start _ -> acc := ("block", start) :: !acc) t.blocks;
  Array.iteri
    (fun tid (m : Predecode.block) ->
      if m != no_block then begin
        acc := ("block_memo", m.Predecode.b_start) :: !acc;
        let k = Array.unsafe_get t.memo_idx tid in
        if k < Array.length m.Predecode.b_addrs then
          acc := ("block_resume", m.Predecode.b_addrs.(k)) :: !acc
      end)
    t.memo;
  !acc

(* OCOLOS migrated paused threads to another code version: the per-thread
   resume memos describe where the threads *were*, so drop them. The block
   table itself stays — entries covering surviving code remain valid. *)
let on_threads_migrated t =
  Array.fill t.memo 0 (Array.length t.memo) no_block;
  Array.fill t.memo_idx 0 (Array.length t.memo_idx) 0
