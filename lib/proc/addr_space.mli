(** The address space of a simulated process.

    Code and data live in separate spaces: instruction memory maps byte
    addresses to decoded instructions; data memory is word-addressed.
    OCOLOS mutates the code map when injecting optimized code and extends
    the symbol index so address->function resolution covers the injected
    region. *)

type sym_range = { sr_start : int; sr_end : int; sr_fid : int }

(** Open undo journal; see {!begin_journal}. *)
type journal

type t = {
  code : (int, Ocolos_isa.Instr.t) Hashtbl.t;
  data : Ocolos_util.Itbl.t;  (** word address -> value; absent reads as 0 *)
  vtable_addr : int array;  (** vid -> base address in data memory *)
  mutable sym_index : sym_range array;
  mutable code_bytes : int;
  mutable next_map_base : int;
  mutable journal : journal option;
  mutable code_watchers : (int -> int -> unit) list;
      (** observers of every code-map mutation; see {!add_code_watcher} *)
}

(** Register a code-write watcher. Each watcher fires on every code-map
    mutation — {!write_code}, an effective {!remove_code}, and each code
    entry replayed by {!rollback_journal} — with the byte span
    [start, len) the mutation dirties: the wider of the old and new
    encodings at the keyed address, so a write whose encoding overlays
    neighbouring instructions reports the full overlap. The execution
    engines use this as their cache-invalidation feed; several engines may
    watch the same address space at once. *)
val add_code_watcher : t -> (int -> int -> unit) -> unit

val read_data : t -> int -> int
val write_data : t -> int -> int -> unit

(** Journaled deletion of a data word (absent reads as 0). OCOLOS uses this
    to reap inherited jump-table words once the residue reading them has
    drained. *)
val remove_data : t -> int -> unit
val read_code : t -> int -> Ocolos_isa.Instr.t option
val write_code : t -> int -> Ocolos_isa.Instr.t -> unit
val remove_code : t -> int -> unit

(** Start recording an undo log: every subsequent code/data mutation saves
    the previous contents, and the symbol index, code byte count and mmap
    cursor are snapshotted. Raises [Invalid_argument] if a journal is
    already open. *)
val begin_journal : t -> unit

(** Discard the open journal, keeping all mutations. Returns the number of
    journaled mutations. *)
val commit_journal : t -> int

(** Undo every journaled mutation (most recent first) and restore the
    symbol index, code byte count and mmap cursor to their
    [begin_journal]-time values. Returns the number of mutations undone. *)
val rollback_journal : t -> int

val journaling : t -> bool

val add_sym_ranges : t -> sym_range list -> unit
val remove_sym_ranges : t -> pred:(sym_range -> bool) -> unit

(** Function owning a code address, via the symbol index. *)
val fid_of_addr : t -> int -> int option

(** Independent deep copy, for shadow execution: shares no mutable storage
    with the source. The copy has no open journal and no watchers. *)
val copy : t -> t

(** Map a binary image: copy code, initialize globals and v-tables, index
    symbols. *)
val load : Ocolos_binary.Binary.t -> t

(** Reserve fresh page-aligned code address space (an anonymous executable
    mmap). Returns the base address. *)
val reserve_code : t -> int -> int

val vtable_base : t -> int -> int
val code_instr_count : t -> int
