(* Open-addressing hash table from int to int, tuned for the simulator's
   data memory: [find] allocates nothing and hashes without leaving OCaml
   (stdlib [Hashtbl] pays a C call to [caml_hash] per operation, which is
   measurable at one probe per simulated load/store).

   Linear probing over a power-of-two table with Fibonacci hashing (the
   multiplicative constant spreads the strided address patterns the
   simulated thread-local regions produce — identity hashing would stack
   every thread's region on the same slots). Deletions leave tombstones;
   the table regrows when live + tombstone slots pass 2/3 occupancy. *)

(* Keys are simulated addresses, never near [min_int]; the two sentinels
   can therefore never collide with a real key. *)
let empty_key = min_int
let tomb_key = min_int + 1

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* live bindings *)
  mutable used : int; (* live + tombstones *)
}

let fib = 0x2545F4914F6CDD1D (* 2^63 / golden ratio, truncated to 63 bits *)

let slot_of mask key = (key * fib) lsr 8 land mask

let create capacity_hint =
  let rec cap c = if c >= capacity_hint * 2 then c else cap (c * 2) in
  let cap = cap 16 in
  { keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    live = 0;
    used = 0 }

let length t = t.live

(* Independent copy: same bindings, same probe layout, shared nothing. *)
let copy t =
  { keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    mask = t.mask;
    live = t.live;
    used = t.used }

(* Probe for [key]: index of its slot, or (-1) if absent. Tombstones are
   skipped; an empty slot terminates the probe. *)
let probe t key =
  let keys = t.keys and mask = t.mask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    if k = key then i else if k = empty_key then -1 else go ((i + 1) land mask)
  in
  go (slot_of mask key)

(* Value bound to [key], or [default] when absent. Never allocates;
   inlined into the simulator's load path. *)
let[@inline] find_default t key ~default =
  let i = probe t key in
  if i >= 0 then Array.unsafe_get t.vals i else default

let find_opt t key =
  let i = probe t key in
  if i >= 0 then Some (Array.unsafe_get t.vals i) else None

let mem t key = probe t key >= 0

let rec grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.live <- 0;
  t.used <- 0;
  Array.iteri
    (fun i k -> if k <> empty_key && k <> tomb_key then replace t k (Array.unsafe_get old_vals i))
    old_keys

and replace t key v =
  let keys = t.keys and mask = t.mask in
  (* First pass: existing binding or first reusable tombstone. *)
  let rec go i tomb =
    let k = Array.unsafe_get keys i in
    if k = key then begin
      Array.unsafe_set t.vals i v
    end
    else if k = empty_key then begin
      let target = if tomb >= 0 then tomb else i in
      Array.unsafe_set keys target key;
      Array.unsafe_set t.vals target v;
      t.live <- t.live + 1;
      if tomb < 0 then t.used <- t.used + 1;
      if t.used * 3 > (mask + 1) * 2 then grow t
    end
    else if k = tomb_key then go ((i + 1) land mask) (if tomb >= 0 then tomb else i)
    else go ((i + 1) land mask) tomb
  in
  go (slot_of mask key) (-1)

let remove t key =
  let i = probe t key in
  if i >= 0 then begin
    Array.unsafe_set t.keys i tomb_key;
    t.live <- t.live - 1
  end

let iter f t =
  Array.iteri
    (fun i k -> if k <> empty_key && k <> tomb_key then f k (Array.unsafe_get t.vals i))
    t.keys

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
