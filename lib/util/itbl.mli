(** Open-addressing int-to-int hash table for the simulator's data memory:
    [find_default] allocates nothing and never leaves OCaml (stdlib
    [Hashtbl] pays a [caml_hash] C call per operation). Linear probing,
    Fibonacci hashing, tombstone deletion. Keys must stay away from
    [min_int] (simulated addresses do). *)

type t

(** [create n] sizes the table for about [n] bindings. *)
val create : int -> t

(** Number of live bindings. *)
val length : t -> int

(** Independent copy: same bindings, shares no storage with the source. *)
val copy : t -> t

(** Value bound to [key], or [default] when absent; never allocates. *)
val find_default : t -> int -> default:int -> int

val find_opt : t -> int -> int option
val mem : t -> int -> bool

(** Bind [key] (inserting or overwriting). *)
val replace : t -> int -> int -> unit

(** Remove [key]'s binding if present. *)
val remove : t -> int -> unit

val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
