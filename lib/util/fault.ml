(* Deterministic, seed-driven fault injection.

   A registry of named injection points. Code under test calls [cut] at
   each point; armed schedules decide — as a pure function of the seed and
   the per-point hit count — whether the hit raises [Injected]. All
   randomness flows through {!Rng}, so a failing run replays exactly from
   (seed, point, schedule).

   Points are grouped into dotted *domains* ("perf.sample_drop" lives in
   domain "perf"); undotted legacy points ("pause", "commit", ...) belong
   to the stop-the-world transaction and report domain "txn". The domain
   carries no registry semantics — it names which pipeline phase owns the
   point, so supervisors and reports can aggregate by phase.

   A point may also be armed *lethally* ([kill]): the same schedule
   decides when it fires, but the hit raises [Killed] instead of
   [Injected]. [Injected] models a survivable failure the pipeline handles
   in place (rollback, degradation, campaign abort); [Killed] models the
   OCOLOS daemon process dying at that point — handlers for survivable
   faults must let it escape so a crash-recovery harness can observe it.

   The registry never perturbs execution when a point is unarmed: [cut] on
   an unarmed (or unknown) point only bumps a counter. *)

type schedule =
  | Never
  | Nth of int (* fire exactly once, on the nth hit (1-based) *)
  | Every of int (* fire on every kth hit *)
  | Prob of float (* each hit fires with probability p, seeded *)

type point = {
  mutable schedule : schedule;
  mutable lethal : bool; (* fire as [Killed] rather than [Injected] *)
  mutable hits : int;
  mutable fired : int;
  rng : Rng.t; (* private stream for [Prob]; a pure function of (seed, name) *)
}

type t = { seed : int; table : (string, point) Hashtbl.t }

exception Injected of string * int
exception Killed of string * int

let create ?(seed = 0) () = { seed; table = Hashtbl.create 16 }

let state t name =
  match Hashtbl.find_opt t.table name with
  | Some p -> p
  | None ->
    let p =
      { schedule = Never;
        lethal = false;
        hits = 0;
        fired = 0;
        rng = Rng.create (t.seed lxor Hashtbl.hash name) }
    in
    Hashtbl.add t.table name p;
    p

(* A schedule that can never fire (Nth 0) or always fires (Prob > 1 would,
   if clamping let it through) is a silent test-coverage hole: the caller
   believes a fault is armed when nothing (or everything) will happen.
   Reject such schedules loudly instead of arming them. *)
let validate_schedule = function
  | Never -> Ok ()
  | Nth n when n < 1 -> Error (Fmt.str "nth must be >= 1 (got %d)" n)
  | Nth _ -> Ok ()
  | Every k when k < 1 -> Error (Fmt.str "every must be >= 1 (got %d)" k)
  | Every _ -> Ok ()
  | Prob p when not (p > 0.0 && p <= 1.0) ->
    Error (Fmt.str "probability must be in (0, 1] (got %g)" p)
  | Prob _ -> Ok ()

let arm_gen ~lethal t name schedule =
  (match validate_schedule schedule with
  | Ok () -> ()
  | Error msg -> invalid_arg (Fmt.str "Fault.arm %s: %s" name msg));
  let p = state t name in
  p.schedule <- schedule;
  p.lethal <- lethal

let arm t name schedule = arm_gen ~lethal:false t name schedule
let kill t name schedule = arm_gen ~lethal:true t name schedule

let disarm t name =
  let p = state t name in
  p.schedule <- Never;
  p.lethal <- false

let reset t =
  Hashtbl.iter
    (fun _ p ->
      p.hits <- 0;
      p.fired <- 0)
    t.table

let should_fire p =
  match p.schedule with
  | Never -> false
  | Nth n -> p.hits = n && p.fired = 0
  | Every k -> k > 0 && p.hits mod k = 0
  | Prob pr -> Rng.bool p.rng pr

let cut t name =
  let p = state t name in
  p.hits <- p.hits + 1;
  if should_fire p then begin
    p.fired <- p.fired + 1;
    if p.lethal then raise (Killed (name, p.hits)) else raise (Injected (name, p.hits))
  end

let hits t name = (state t name).hits
let fired t name = (state t name).fired
let lethal t name = (state t name).lethal
let total_fired t = Hashtbl.fold (fun _ p acc -> acc + p.fired) t.table 0
let points t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let domain_of name =
  (* [bolt.miscompile.*] is its own fault domain (silent corruption), not
     part of [bolt] (pass crashes): keep the two-segment prefix. *)
  let miscompile = "bolt.miscompile." in
  if String.length name > String.length miscompile
     && String.sub name 0 (String.length miscompile) = miscompile
  then "bolt.miscompile"
  else
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> "txn"

let pp_schedule fmt = function
  | Never -> Fmt.string fmt "never"
  | Nth n -> Fmt.pf fmt "nth:%d" n
  | Every k -> Fmt.pf fmt "every:%d" k
  | Prob p -> Fmt.pf fmt "p:%g" p

(* "point", "point:N", "point:every:K", "point:p:P" *)
let parse_arm t spec =
  let fail () = Error (Fmt.str "bad fault spec %S (want POINT[:N|:every:K|:p:P])" spec) in
  let checked point schedule =
    match validate_schedule schedule with
    | Ok () ->
      arm t point schedule;
      Ok point
    | Error msg -> Error (Fmt.str "bad fault spec %S: %s" spec msg)
  in
  match String.split_on_char ':' spec with
  | [ point ] when point <> "" -> checked point (Nth 1)
  | [ point; n ] when point <> "" -> (
    match int_of_string_opt n with
    | Some n -> checked point (Nth n)
    | None -> fail ())
  | [ point; "every"; k ] when point <> "" -> (
    match int_of_string_opt k with
    | Some k -> checked point (Every k)
    | None -> fail ())
  | [ point; "p"; p ] when point <> "" -> (
    match float_of_string_opt p with
    | Some p -> checked point (Prob p)
    | None -> fail ())
  | _ -> fail ()
