(** Deterministic, seed-driven fault injection.

    A registry of named injection points. Instrumented code calls {!cut} at
    each point; an armed schedule decides — as a pure function of the seed
    and the per-point hit count — whether that hit raises {!Injected}.
    Unarmed points cost one counter increment and nothing else, so
    instrumentation can stay on in production code paths.

    Points are grouped into dotted {e domains}: ["perf.sample_drop"] lives
    in domain ["perf"]; undotted legacy points (["pause"], ["commit"], …)
    belong to the stop-the-world transaction and report domain ["txn"].

    A point may be armed {e lethally} ({!kill}): the same schedule decides
    when it fires, but the hit raises {!Killed} — modelling the OCOLOS
    daemon process dying at that point. Handlers for survivable faults must
    catch {!Injected} only, so {!Killed} escapes to the crash-recovery
    harness. *)

type schedule =
  | Never
  | Nth of int  (** fire exactly once, on the nth hit (1-based) *)
  | Every of int  (** fire on every kth hit *)
  | Prob of float  (** each hit fires with probability p, seeded *)

type t

(** Raised by {!cut} when the point's schedule fires: point name and the hit
    count at which it fired. *)
exception Injected of string * int

(** Raised instead of {!Injected} when the firing point was armed with
    {!kill}: the daemon dies here. *)
exception Killed of string * int

val create : ?seed:int -> unit -> t

(** Arm a point. Raises [Invalid_argument] on a schedule that could never
    fire or always fires vacuously: [Nth n] or [Every k] with an argument
    < 1, or [Prob p] outside (0, 1]. *)
val arm : t -> string -> schedule -> unit

(** Arm a point lethally: when the schedule fires, {!cut} raises {!Killed}.
    Same schedule validation as {!arm}. *)
val kill : t -> string -> schedule -> unit

val disarm : t -> string -> unit

(** Zero all hit/fired counters; schedules stay armed. *)
val reset : t -> unit

(** Register a hit at a named point; raises {!Injected} (or {!Killed} for a
    lethally armed point) when the armed schedule fires. *)
val cut : t -> string -> unit

val hits : t -> string -> int
val fired : t -> string -> int

(** True when the point is currently armed lethally. *)
val lethal : t -> string -> bool

val total_fired : t -> int

(** Every point ever armed or hit, sorted. *)
val points : t -> string list

(** Domain of a point name: the prefix before the first ['.'], or ["txn"]
    for undotted stop-the-world points. Exception: [bolt.miscompile.*]
    points form their own ["bolt.miscompile"] domain — silent corruption,
    distinct from the [bolt] pass-crash domain. *)
val domain_of : string -> string

(** [Ok ()] iff {!arm} would accept the schedule; the [Error] carries the
    human-readable rejection reason. *)
val validate_schedule : schedule -> (unit, string) result

val pp_schedule : Format.formatter -> schedule -> unit

(** Parse-and-arm a CLI spec: ["point"] (= nth 1), ["point:N"],
    ["point:every:K"] or ["point:p:P"]. Returns the point name; rejects
    schedules {!arm} would reject, with the reason in the [Error]. *)
val parse_arm : t -> string -> (string, string) result
