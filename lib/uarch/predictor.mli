(** Conditional-branch direction prediction (gshare, 2-bit counters) and a
    return-address stack. *)

type t

val create : ?history_bits:int -> unit -> t

(** Current prediction for [pc], without updating any state. *)
val predict : t -> int -> bool

(** Predict, then train with the actual outcome; true when correct. *)
val predict_and_update : t -> int -> taken:bool -> bool

val reset_counters : t -> unit
val misprediction_rate : t -> float
val predictions : t -> int
val mispredictions : t -> int

(** Return-address stack with hardware-style wrap-around on overflow. *)
module Ras : sig
  type t

  val create : ?size:int -> unit -> t
  val push : t -> int -> unit

  (** Predicted return address; [None] when empty. *)
  val pop : t -> int option

  (** {!pop}-and-compare without allocating: true iff the stack was
      nonempty and predicted [target]. Same state effects as {!pop}. *)
  val pop_correct : t -> target:int -> bool

  val clear : t -> unit
end
