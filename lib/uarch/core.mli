(** Per-core front-end timing model.

    The interpreter reports fetch, branch, memory and transaction events;
    this module charges cycles and attributes them to TopDown categories.
    Each simulated thread owns one core. *)

type t

(** Front-end events attributable to a code address. [Btb_miss] mirrors
    {!Btb.misses} (cold/capacity misses only, not wrong-target hits), so
    per-address attributions sum to the corresponding {!Counters} fields. *)
type fe_event = L1i_miss | Itlb_miss | Btb_miss | Taken_branch

val create : ?cfg:Config.t -> unit -> t

(** Install an observer for L1i miss addresses (the perf-annotate analog);
    [None] removes it. *)
val set_l1i_miss_observer : t -> (int -> unit) option -> unit

(** Install an observer for front-end events ([f event code_addr]); [None]
    removes it. Fired only on miss/taken slow paths, never on the fetch
    fast path, so an installed observer costs nothing per instruction. *)
val set_fe_observer : t -> (fe_event -> int -> unit) option -> unit

(** Total cycles so far (base + front-end + bad-speculation + back-end). *)
val cycles : t -> float

(** Per-instruction fetch accounting (L1i, iTLB, issue slots). *)
val fetch : t -> addr:int -> size:int -> unit

(** Conditional branch outcome at [pc]; charges direction prediction and, if
    taken, the taken-transfer costs (bubble, BTB). *)
val on_cond_branch : t -> pc:int -> taken:bool -> target:int -> unit

(** Unconditional direct jump. *)
val on_jump : t -> pc:int -> target:int -> unit

(** Indirect jump (jump table): BTB target prediction; wrong target
    flushes. *)
val on_indirect_jump : t -> pc:int -> target:int -> unit

(** Direct or indirect call; pushes the return-address stack. *)
val on_call : t -> pc:int -> target:int -> return_addr:int -> indirect:bool -> unit

(** Return; checked against the return-address stack. *)
val on_ret : t -> pc:int -> target:int -> unit

(** Data-memory access (load or store). *)
val on_mem : t -> addr:int -> unit

(** Transaction-complete marker. *)
val on_tx : t -> unit

(** Inject externally-caused stall cycles into a TopDown bucket (scheduler
    pauses, profiling overhead). *)
val stall : t -> cycles:float -> category:[ `Frontend | `Backend | `BadSpec ] -> unit

val snapshot : t -> Counters.t
