(* Branch Target Buffer.

   Set-associative, tagged by branch PC, storing the predicted target. Only
   *taken* control transfers are allocated (the paper's motivation: layouts
   that convert taken branches into fallthroughs relieve BTB pressure). *)

type entry = { mutable tag : int; mutable target : int; mutable stamp : int }

type t = {
  sets : int;
  ways : int;
  table : entry array array;
  mutable tick : int;
  mutable lookups : int;
  mutable misses : int;
}

let create ~entries ~ways =
  let sets = max 1 (entries / ways) in
  if sets land (sets - 1) <> 0 then invalid_arg "Btb.create: entries/ways must be a power of two";
  { sets;
    ways;
    table = Array.init sets (fun _ -> Array.init ways (fun _ -> { tag = -1; target = 0; stamp = 0 }));
    tick = 0;
    lookups = 0;
    misses = 0 }

let set_of t pc = (pc lsr 1) land (t.sets - 1)

(* Look up the predicted target for a taken transfer at [pc]. *)
let lookup t pc =
  t.tick <- t.tick + 1;
  t.lookups <- t.lookups + 1;
  let set = t.table.(set_of t pc) in
  let rec find w =
    if w >= t.ways then None
    else if set.(w).tag = pc then begin
      set.(w).stamp <- t.tick;
      Some set.(w).target
    end
    else find (w + 1)
  in
  let r = find 0 in
  if r = None then t.misses <- t.misses + 1;
  r

(* [lookup] specialized for the interpreter's hot path: classify the
   prediction for a taken transfer at [pc] that actually went to [target]
   without allocating an option. Counter and stamp effects are identical to
   [lookup]. Returns 0 on miss, 1 on a correct hit, 2 on a wrong-target
   hit. *)
let lookup_class t pc ~target =
  t.tick <- t.tick + 1;
  t.lookups <- t.lookups + 1;
  let set = t.table.(set_of t pc) in
  let rec find w =
    if w >= t.ways then begin
      t.misses <- t.misses + 1;
      0
    end
    else
      let e = Array.unsafe_get set w in
      if e.tag = pc then begin
        e.stamp <- t.tick;
        if e.target = target then 1 else 2
      end
      else find (w + 1)
  in
  find 0

(* Record that the transfer at [pc] went to [target]. *)
let update t pc target =
  t.tick <- t.tick + 1;
  let set = t.table.(set_of t pc) in
  let rec find w = if w >= t.ways then None else if set.(w).tag = pc then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
    set.(w).target <- target;
    set.(w).stamp <- t.tick
  | None ->
    let victim = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if set.(i).tag = -1 then begin
           victim := i;
           raise Exit
         end;
         if set.(i).stamp < set.(!victim).stamp then victim := i
       done
     with Exit -> ());
    set.(!victim).tag <- pc;
    set.(!victim).target <- target;
    set.(!victim).stamp <- t.tick

let reset_counters t =
  t.lookups <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun set -> Array.iter (fun e -> e.tag <- -1) set) t.table;
  reset_counters t

let miss_rate t = if t.lookups = 0 then 0.0 else float_of_int t.misses /. float_of_int t.lookups

let lookups t = t.lookups
let misses t = t.misses
