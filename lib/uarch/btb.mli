(** Branch Target Buffer.

    Set-associative, tagged by branch PC, storing the predicted target. Only
    taken control transfers are allocated, so layouts that convert taken
    branches into fallthroughs relieve BTB pressure (paper Section II-B). *)

type t

(** [create ~entries ~ways]; [entries / ways] must be a power of two. *)
val create : entries:int -> ways:int -> t

(** Predicted target for a taken transfer at [pc]; [None] counts a miss. *)
val lookup : t -> int -> int option

(** [lookup] specialized for the interpreter's hot path: classify the
    prediction for a taken transfer at [pc] that actually went to [target]
    without allocating. Identical counter/stamp effects as {!lookup}.
    Returns 0 on miss, 1 on a correct hit, 2 on a wrong-target hit. *)
val lookup_class : t -> int -> target:int -> int

(** Record that the transfer at [pc] went to [target]. *)
val update : t -> int -> int -> unit

val reset_counters : t -> unit
val flush : t -> unit
val miss_rate : t -> float

(** Counter accessors. *)
val lookups : t -> int

val misses : t -> int
