(** Generic set-associative cache with true-LRU replacement.

    Instantiated as L1i, L1d and unified L2 (64-byte lines) and as the iTLB
    (a "cache" of 4 KiB pages). Tracks hit/miss counters. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  tags : int array array;
  stamp : int array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable m_line : int;  (** way memo: last line touched by {!access} ... *)
  mutable m_way : int;  (** ... and the way it resolved to (a verified hint) *)
  mutable p_line : int;  (** the same memo for {!prefetch}'s residency check *)
  mutable p_way : int;
}

(** [create ~name ~sets ~ways ~line_bytes]. [sets] and [line_bytes] must be
    powers of two. *)
val create : name:string -> sets:int -> ways:int -> line_bytes:int -> t

(** [of_size ~name ~size_bytes ~ways ~line_bytes] derives the set count.
    Raises [Invalid_argument] unless [size_bytes] factors exactly as
    [sets * ways * line_bytes] (with [sets] a power of two): a cache of the
    wrong size is never modeled silently. *)
val of_size : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t

val line_of : t -> int -> int

(** Access a byte address; true on hit. A miss fills the line, evicting the
    LRU way. *)
val access : t -> int -> bool

(** Hardware prefetch; never moves the hit/miss counters. A prefetch of a
    resident line is a complete no-op (recency and the LRU clock are
    untouched, so prefetch-hits cannot reorder demand evictions); a
    prefetch of an absent line fills the LRU/invalid way and becomes MRU,
    like a demand fill. Returns true if the line was already resident. *)
val prefetch : t -> int -> bool

(** Check residency without updating LRU state or counters. *)
val probe : t -> int -> bool

val reset_counters : t -> unit

(** Invalidate all lines and reset counters. *)
val flush : t -> unit

val accesses : t -> int
val miss_rate : t -> float
val size_bytes : t -> int
