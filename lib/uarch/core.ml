(* Per-core front-end timing model.

   The interpreter reports fetch, branch, memory and transaction events;
   this module charges cycles and attributes them to TopDown categories.
   Each simulated thread owns one core (the paper's testbed has at least as
   many cores as steady-state worker threads). *)

(* All-float record: OCaml stores these fields flat and unboxed, so the
   per-instruction cycle accounting allocates nothing. Keeping them in a
   mixed record would box every [<-] on a float field. *)
type cyc = {
  mutable base : float;
  mutable fe : float;
  mutable bs : float;
  mutable be : float;
  mutable dram_next_free : float;
  mutable dram_last_arrival : float;
}

(* Front-end events worth attributing to code addresses. Constant
   constructors only: firing an observer allocates nothing. *)
type fe_event = L1i_miss | Itlb_miss | Btb_miss | Taken_branch

type t = {
  cfg : Config.t;
  issue_cost : float; (* 1 / issue_width, precomputed for the fetch path *)
  exact_base : bool;
      (* [issue_width] is a power of two, so [issue_cost] is an exact binary
         fraction and [instructions * issue_cost] equals the per-fetch
         incremental sum bit-for-bit; base cycles are then computed lazily
         instead of accumulated on every fetch *)
  line_bits : int; (* log2 line_bytes; line math by shift, not division *)
  page_bits : int; (* log2 page_bytes *)
  cyc : cyc;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t; (* unified, private *)
  l3 : Cache.t; (* per-core slice of the shared last-level cache *)
  itlb : Cache.t;
  btb : Btb.t;
  pred : Predictor.t;
  ras : Predictor.Ras.t;
  mutable last_line : int;
  mutable last_page : int;
  mutable instructions : int;
  mutable transactions : int;
  mutable l1i_accesses : int;
  mutable l1i_misses : int;
  mutable itlb_accesses : int;
  mutable itlb_misses : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable l2_misses : int;
  mutable taken_branches : int;
  mutable cond_branches : int;
  mutable mispredicts : int;
  mutable on_l1i_miss : (int -> unit) option;
      (* observer for L1i miss addresses (the perf-annotate analog) *)
  mutable on_fe : (fe_event -> int -> unit) option;
      (* front-end event observer, fired with the code address; only ever
         consulted on slow paths (misses, taken transfers), never on the
         inlined [fetch] fast path *)
}

(* Exact log2; caches already validate these geometries as powers of two. *)
let log2_exact what v =
  if v <= 0 || v land (v - 1) <> 0 then
    invalid_arg (Printf.sprintf "Core.create: %s (%d) must be a power of two" what v);
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let create ?(cfg = Config.broadwell) () =
  { cfg;
    issue_cost = 1.0 /. float_of_int cfg.issue_width;
    exact_base = cfg.issue_width land (cfg.issue_width - 1) = 0;
    line_bits = log2_exact "line_bytes" cfg.line_bytes;
    page_bits = log2_exact "page_bytes" cfg.page_bytes;
    cyc =
      { base = 0.0;
        fe = 0.0;
        bs = 0.0;
        be = 0.0;
        dram_next_free = 0.0;
        dram_last_arrival = neg_infinity };
    l1i = Cache.of_size ~name:"L1i" ~size_bytes:cfg.l1i_bytes ~ways:cfg.l1i_ways
            ~line_bytes:cfg.line_bytes;
    l1d = Cache.of_size ~name:"L1d" ~size_bytes:cfg.l1d_bytes ~ways:cfg.l1d_ways
            ~line_bytes:cfg.line_bytes;
    l2 = Cache.of_size ~name:"L2" ~size_bytes:cfg.l2_bytes ~ways:cfg.l2_ways
           ~line_bytes:cfg.line_bytes;
    l3 = Cache.of_size ~name:"L3" ~size_bytes:cfg.l3_bytes ~ways:cfg.l3_ways
           ~line_bytes:cfg.line_bytes;
    itlb = Cache.create ~name:"iTLB" ~sets:(max 1 (cfg.itlb_entries / cfg.itlb_ways))
             ~ways:cfg.itlb_ways ~line_bytes:cfg.page_bytes;
    btb = Btb.create ~entries:cfg.btb_entries ~ways:cfg.btb_ways;
    pred = Predictor.create ~history_bits:cfg.gshare_bits ();
    ras = Predictor.Ras.create ~size:cfg.ras_depth ();
    last_line = -1;
    last_page = -1;
    instructions = 0;
    transactions = 0;
    l1i_accesses = 0;
    l1i_misses = 0;
    itlb_accesses = 0;
    itlb_misses = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    l2_misses = 0;
    taken_branches = 0;
    cond_branches = 0;
    mispredicts = 0;
    on_l1i_miss = None;
    on_fe = None }

let[@inline] fire_fe t ev addr =
  match t.on_fe with Some f -> f ev addr | None -> ()

(* Issue ("base") cycles. With [exact_base] the stored accumulator stays 0
   and the product below is bit-identical to what the accumulator would
   hold; otherwise [cyc.base] carries the per-fetch sum. *)
let base_cycles t =
  if t.exact_base then float_of_int t.instructions *. t.issue_cost else t.cyc.base

let cycles t = base_cycles t +. t.cyc.fe +. t.cyc.bs +. t.cyc.be

(* Core-issue ("demand") time: cycles excluding back-end memory stalls.
   Measures how bursty the core's memory demand is independent of the
   backpressure those requests later suffer. *)
let demand_cycles t = base_cycles t +. t.cyc.fe +. t.cyc.bs

(* DRAM for instruction fetch: blocking, full latency (the front-end cannot
   overlap a fetch miss). *)
let dram_ifetch t =
  t.l2_misses <- t.l2_misses + 1;
  float_of_int t.cfg.dram_latency

(* DRAM for data: latency is overlapped by memory-level parallelism, but
   requests issued close together in *demand time* suffer bank conflicts at
   the memory controller and are serviced at a wider interval. This models
   the paper's MongoDB scan95insert5 inversion ("poor memory controller
   scheduling"): a layout-optimized front-end issues the same stream of
   misses in a burstier pattern, losing controller efficiency, while
   spread-out request streams are unaffected. *)
let dram_data t =
  let now = cycles t in
  let demand = demand_cycles t in
  let bursty = demand -. t.cyc.dram_last_arrival < float_of_int t.cfg.dram_burst_window in
  let interval =
    if bursty then float_of_int t.cfg.dram_burst_interval
    else float_of_int t.cfg.dram_base_interval
  in
  t.cyc.dram_last_arrival <- demand;
  let wait = Float.max 0.0 (t.cyc.dram_next_free -. now) in
  t.cyc.dram_next_free <- Float.max now t.cyc.dram_next_free +. interval;
  t.l2_misses <- t.l2_misses + 1;
  wait +. (float_of_int t.cfg.dram_latency /. float_of_int t.cfg.dram_mlp)

(* Instruction fetch: charge L1i and iTLB effects once per line / page
   transition, covering lines an instruction straddles. The [fetch] wrapper
   below inlines the no-transition fast path into the dispatch loops; this
   slow path runs on any line or page change. *)
let fetch_slow t ~addr ~size =
  let line_bits = t.line_bits in
  let first_line = addr lsr line_bits and last_line = (addr + size - 1) lsr line_bits in
  for line = first_line to last_line do
    if line <> t.last_line then begin
      t.last_line <- line;
      t.l1i_accesses <- t.l1i_accesses + 1;
      let byte = line lsl line_bits in
      if not (Cache.access t.l1i byte) then begin
        t.l1i_misses <- t.l1i_misses + 1;
        (match t.on_l1i_miss with Some f -> f addr | None -> ());
        fire_fe t L1i_miss addr;
        if Cache.access t.l2 byte then
          t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.l2_latency
        else if Cache.access t.l3 byte then
          t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.l3_latency
        else t.cyc.fe <- t.cyc.fe +. dram_ifetch t
      end;
      (* Next-line prefetcher: straight-line code streams hide their own
         fetch misses, which is a large part of why packed layouts win. *)
      if t.cfg.next_line_prefetch then
        ignore (Cache.prefetch t.l1i (byte + (1 lsl line_bits)))
    end
  done;
  let page = addr lsr t.page_bits in
  if page <> t.last_page then begin
    t.last_page <- page;
    t.itlb_accesses <- t.itlb_accesses + 1;
    if not (Cache.access t.itlb addr) then begin
      t.itlb_misses <- t.itlb_misses + 1;
      t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.itlb_walk_latency;
      fire_fe t Itlb_miss addr
    end
  end

let[@inline] fetch t ~addr ~size =
  t.instructions <- t.instructions + 1;
  if not t.exact_base then t.cyc.base <- t.cyc.base +. t.issue_cost;
  (* Fast path: the instruction sits wholly on the line fetched last time
     and on the same page, so [fetch_slow]'s loop and page check would
     touch nothing. *)
  let first_line = addr lsr t.line_bits in
  if
    first_line = t.last_line
    && (addr + size - 1) lsr t.line_bits = first_line
    && addr lsr t.page_bits = t.last_page
  then ()
  else fetch_slow t ~addr ~size

(* Common cost of any taken control transfer: fetch bubble plus BTB. *)
let taken_transfer t ~pc ~target =
  t.taken_branches <- t.taken_branches + 1;
  fire_fe t Taken_branch pc;
  t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.taken_bubble;
  let cls = Btb.lookup_class t.btb pc ~target in
  if cls <> 1 then t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.btb_miss_penalty;
  (* Class 0 is the only outcome [Btb.misses] counts, so it is the only one
     attributed — keeps per-function BTB counts consistent with
     [Counters.btb_misses]. *)
  if cls = 0 then fire_fe t Btb_miss pc;
  Btb.update t.btb pc target;
  (* Force the next fetch to re-access the cache at the target. *)
  t.last_line <- -1

let on_cond_branch t ~pc ~taken ~target =
  t.cond_branches <- t.cond_branches + 1;
  let correct = Predictor.predict_and_update t.pred pc ~taken in
  if not correct then begin
    t.mispredicts <- t.mispredicts + 1;
    t.cyc.bs <- t.cyc.bs +. float_of_int t.cfg.mispredict_penalty
  end;
  if taken then taken_transfer t ~pc ~target

let on_jump t ~pc ~target = taken_transfer t ~pc ~target

let on_indirect_jump t ~pc ~target =
  (* Target prediction through the BTB; a wrong target is a flush. *)
  (match Btb.lookup_class t.btb pc ~target with
  | 1 -> ()
  | 2 ->
    t.mispredicts <- t.mispredicts + 1;
    t.cyc.bs <- t.cyc.bs +. float_of_int t.cfg.mispredict_penalty
  | _ ->
    t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.btb_miss_penalty;
    fire_fe t Btb_miss pc);
  t.taken_branches <- t.taken_branches + 1;
  fire_fe t Taken_branch pc;
  t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.taken_bubble;
  Btb.update t.btb pc target;
  t.last_line <- -1

let on_call t ~pc ~target ~return_addr ~indirect =
  Predictor.Ras.push t.ras return_addr;
  if indirect then on_indirect_jump t ~pc ~target else taken_transfer t ~pc ~target

let on_ret t ~pc ~target =
  if not (Predictor.Ras.pop_correct t.ras ~target) then begin
    t.mispredicts <- t.mispredicts + 1;
    t.cyc.bs <- t.cyc.bs +. float_of_int t.cfg.mispredict_penalty
  end;
  t.taken_branches <- t.taken_branches + 1;
  fire_fe t Taken_branch pc;
  t.cyc.fe <- t.cyc.fe +. float_of_int t.cfg.taken_bubble;
  t.last_line <- -1

let on_mem_miss t ~addr =
  t.l1d_misses <- t.l1d_misses + 1;
  if Cache.access t.l2 addr then t.cyc.be <- t.cyc.be +. float_of_int t.cfg.l2_latency
  else if Cache.access t.l3 addr then t.cyc.be <- t.cyc.be +. float_of_int t.cfg.l3_latency
  else t.cyc.be <- t.cyc.be +. dram_data t

let[@inline] on_mem t ~addr =
  t.l1d_accesses <- t.l1d_accesses + 1;
  if not (Cache.access t.l1d addr) then on_mem_miss t ~addr

let on_tx t = t.transactions <- t.transactions + 1

(* Extra stall cycles injected from outside the model (scheduler pauses,
   profiling overhead). Attributed to the given TopDown bucket. *)
let stall t ~cycles:c ~category =
  match category with
  | `Frontend -> t.cyc.fe <- t.cyc.fe +. c
  | `Backend -> t.cyc.be <- t.cyc.be +. c
  | `BadSpec -> t.cyc.bs <- t.cyc.bs +. c

let snapshot t : Counters.t =
  { Counters.instructions = t.instructions;
    transactions = t.transactions;
    cycles = cycles t;
    base_cycles = base_cycles t;
    fe_cycles = t.cyc.fe;
    bs_cycles = t.cyc.bs;
    be_cycles = t.cyc.be;
    l1i_accesses = t.l1i_accesses;
    l1i_misses = t.l1i_misses;
    itlb_accesses = t.itlb_accesses;
    itlb_misses = t.itlb_misses;
    l1d_accesses = t.l1d_accesses;
    l1d_misses = t.l1d_misses;
    l2_misses = t.l2_misses;
    taken_branches = t.taken_branches;
    cond_branches = t.cond_branches;
    mispredicts = t.mispredicts;
    btb_lookups = Btb.lookups t.btb;
    btb_misses = Btb.misses t.btb }

let set_l1i_miss_observer t f = t.on_l1i_miss <- f
let set_fe_observer t f = t.on_fe <- f
