(* Conditional-branch direction prediction: gshare with 2-bit saturating
   counters, plus a return-address stack for call/return target prediction. *)

type t = {
  history_bits : int;
  counters : int array; (* 2-bit saturating, initialized weakly taken *)
  mutable history : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create ?(history_bits = 12) () =
  { history_bits;
    counters = Array.make (1 lsl history_bits) 1;
    history = 0;
    predictions = 0;
    mispredictions = 0 }

let index t pc = (pc lxor t.history) land ((1 lsl t.history_bits) - 1)

let predict t pc = t.counters.(index t pc) >= 2

(* Predict, then update counters and history with the actual outcome.
   Returns true when the prediction was correct. *)
let predict_and_update t pc ~taken =
  let i = index t pc in
  let predicted = t.counters.(i) >= 2 in
  t.predictions <- t.predictions + 1;
  let correct = predicted = taken in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land ((1 lsl t.history_bits) - 1);
  correct

let reset_counters t =
  t.predictions <- 0;
  t.mispredictions <- 0

let misprediction_rate t =
  if t.predictions = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.predictions

let predictions t = t.predictions
let mispredictions t = t.mispredictions

(* Return-address stack. Fixed depth; overflows wrap (oldest entries are
   clobbered), as in hardware. *)
module Ras = struct
  type t = { slots : int array; mutable top : int; mutable depth : int }

  let create ?(size = 16) () = { slots = Array.make size 0; top = 0; depth = 0 }

  let push t addr =
    t.slots.(t.top) <- addr;
    t.top <- (t.top + 1) mod Array.length t.slots;
    t.depth <- min (Array.length t.slots) (t.depth + 1)

  (* Pop the predicted return address; None if empty (mispredict). *)
  let pop t =
    if t.depth = 0 then None
    else begin
      t.top <- (t.top + Array.length t.slots - 1) mod Array.length t.slots;
      t.depth <- t.depth - 1;
      Some t.slots.(t.top)
    end

  (* [pop]-and-compare for the interpreter's hot path: true iff the stack
     was nonempty and predicted [target]. State effects identical to
     [pop]. *)
  let pop_correct t ~target =
    if t.depth = 0 then false
    else begin
      t.top <- (t.top + Array.length t.slots - 1) mod Array.length t.slots;
      t.depth <- t.depth - 1;
      Array.unsafe_get t.slots t.top = target
    end

  let clear t =
    t.top <- 0;
    t.depth <- 0
end
