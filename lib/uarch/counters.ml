(* Performance-counter snapshots, TopDown attribution and derived metrics
   (events per kilo-instruction, Fig. 8; TopDown percentages, Fig. 9). *)

type t = {
  instructions : int;
  transactions : int;
  cycles : float;
  base_cycles : float; (* issue-limited cycles: instructions / width *)
  fe_cycles : float; (* front-end stall cycles: L1i, iTLB, BTB, taken bubbles *)
  bs_cycles : float; (* bad-speculation cycles: mispredict flushes *)
  be_cycles : float; (* back-end stall cycles: data misses, DRAM queuing *)
  l1i_accesses : int;
  l1i_misses : int;
  itlb_accesses : int;
  itlb_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_misses : int; (* instruction + data L2 misses (DRAM transfers) *)
  taken_branches : int;
  cond_branches : int;
  mispredicts : int;
  btb_lookups : int;
  btb_misses : int;
}

let zero =
  { instructions = 0;
    transactions = 0;
    cycles = 0.0;
    base_cycles = 0.0;
    fe_cycles = 0.0;
    bs_cycles = 0.0;
    be_cycles = 0.0;
    l1i_accesses = 0;
    l1i_misses = 0;
    itlb_accesses = 0;
    itlb_misses = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    l2_misses = 0;
    taken_branches = 0;
    cond_branches = 0;
    mispredicts = 0;
    btb_lookups = 0;
    btb_misses = 0 }

let diff later earlier =
  { instructions = later.instructions - earlier.instructions;
    transactions = later.transactions - earlier.transactions;
    cycles = later.cycles -. earlier.cycles;
    base_cycles = later.base_cycles -. earlier.base_cycles;
    fe_cycles = later.fe_cycles -. earlier.fe_cycles;
    bs_cycles = later.bs_cycles -. earlier.bs_cycles;
    be_cycles = later.be_cycles -. earlier.be_cycles;
    l1i_accesses = later.l1i_accesses - earlier.l1i_accesses;
    l1i_misses = later.l1i_misses - earlier.l1i_misses;
    itlb_accesses = later.itlb_accesses - earlier.itlb_accesses;
    itlb_misses = later.itlb_misses - earlier.itlb_misses;
    l1d_accesses = later.l1d_accesses - earlier.l1d_accesses;
    l1d_misses = later.l1d_misses - earlier.l1d_misses;
    l2_misses = later.l2_misses - earlier.l2_misses;
    taken_branches = later.taken_branches - earlier.taken_branches;
    cond_branches = later.cond_branches - earlier.cond_branches;
    mispredicts = later.mispredicts - earlier.mispredicts;
    btb_lookups = later.btb_lookups - earlier.btb_lookups;
    btb_misses = later.btb_misses - earlier.btb_misses }

let add a b =
  { instructions = a.instructions + b.instructions;
    transactions = a.transactions + b.transactions;
    cycles = a.cycles +. b.cycles;
    base_cycles = a.base_cycles +. b.base_cycles;
    fe_cycles = a.fe_cycles +. b.fe_cycles;
    bs_cycles = a.bs_cycles +. b.bs_cycles;
    be_cycles = a.be_cycles +. b.be_cycles;
    l1i_accesses = a.l1i_accesses + b.l1i_accesses;
    l1i_misses = a.l1i_misses + b.l1i_misses;
    itlb_accesses = a.itlb_accesses + b.itlb_accesses;
    itlb_misses = a.itlb_misses + b.itlb_misses;
    l1d_accesses = a.l1d_accesses + b.l1d_accesses;
    l1d_misses = a.l1d_misses + b.l1d_misses;
    l2_misses = a.l2_misses + b.l2_misses;
    taken_branches = a.taken_branches + b.taken_branches;
    cond_branches = a.cond_branches + b.cond_branches;
    mispredicts = a.mispredicts + b.mispredicts;
    btb_lookups = a.btb_lookups + b.btb_lookups;
    btb_misses = a.btb_misses + b.btb_misses }

let per_kilo_instr t count =
  if t.instructions = 0 then 0.0
  else 1000.0 *. float_of_int count /. float_of_int t.instructions

let l1i_mpki t = per_kilo_instr t t.l1i_misses
let itlb_mpki t = per_kilo_instr t t.itlb_misses
let l1d_mpki t = per_kilo_instr t t.l1d_misses
let taken_branches_pki t = per_kilo_instr t t.taken_branches
let mispredicts_pki t = per_kilo_instr t t.mispredicts
let btb_misses_pki t = per_kilo_instr t t.btb_misses

let ipc t = if t.cycles = 0.0 then 0.0 else float_of_int t.instructions /. t.cycles

(* TopDown level-1 attribution as fractions of total cycles. *)
type topdown = { retiring : float; frontend : float; bad_speculation : float; backend : float }

let topdown t =
  if t.cycles <= 0.0 then { retiring = 0.0; frontend = 0.0; bad_speculation = 0.0; backend = 0.0 }
  else
    { retiring = t.base_cycles /. t.cycles;
      frontend = t.fe_cycles /. t.cycles;
      bad_speculation = t.bs_cycles /. t.cycles;
      backend = t.be_cycles /. t.cycles }

(* Publish a snapshot into the ambient metrics registry ({!Ocolos_obs}):
   derived rates as gauges under [prefix], raw event counts as counters.
   No-op when no registry is installed. *)
let observe_metrics ?(prefix = "ocolos") t =
  let g name v = Ocolos_obs.Metrics.record (prefix ^ "_" ^ name) v in
  g "ipc" (ipc t);
  g "l1i_mpki" (l1i_mpki t);
  g "itlb_mpki" (itlb_mpki t);
  g "l1d_mpki" (l1d_mpki t);
  g "taken_branches_pki" (taken_branches_pki t);
  g "mispredicts_pki" (mispredicts_pki t);
  g "btb_misses_pki" (btb_misses_pki t);
  let td = topdown t in
  g "topdown_retiring" td.retiring;
  g "topdown_frontend" td.frontend;
  g "topdown_bad_speculation" td.bad_speculation;
  g "topdown_backend" td.backend;
  let c name v = Ocolos_obs.Metrics.count (prefix ^ "_" ^ name) v in
  c "instructions_total" t.instructions;
  c "transactions_total" t.transactions;
  c "l1i_misses_total" t.l1i_misses;
  c "itlb_misses_total" t.itlb_misses;
  c "mispredicts_total" t.mispredicts;
  c "btb_misses_total" t.btb_misses

(* Bridge a counter interval into the neutral layout-health window record
   (the obs library sits below uarch and cannot see this type). *)
let to_health_sample t =
  { Ocolos_obs.Layout_health.s_instructions = t.instructions;
    s_cycles = t.cycles;
    s_l1i_misses = t.l1i_misses;
    s_itlb_misses = t.itlb_misses;
    s_btb_misses = t.btb_misses;
    s_taken_branches = t.taken_branches }

let pp fmt t =
  let td = topdown t in
  Fmt.pf fmt
    "instrs=%d tx=%d cycles=%.0f IPC=%.2f L1i-MPKI=%.2f iTLB-MPKI=%.2f takenPKI=%.1f mispPKI=%.2f TD[ret=%.2f fe=%.2f bs=%.2f be=%.2f]"
    t.instructions t.transactions t.cycles (ipc t) (l1i_mpki t) (itlb_mpki t)
    (taken_branches_pki t) (mispredicts_pki t) td.retiring td.frontend td.bad_speculation
    td.backend
