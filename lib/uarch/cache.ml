(* Generic set-associative cache with true-LRU replacement.

   Used for the L1i, L1d and unified L2 (with 64-byte lines) and for the
   iTLB (a "cache" of 4 KiB pages). Tracks hit/miss counters. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  tags : int array array; (* tags.(set).(way); -1 = invalid *)
  stamp : int array array; (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  (* Way memo for the last line touched by [access]: a verified hint that
     skips the associative probe on consecutive same-line accesses. Since a
     line resides in at most one way, confirming [tags.(set_of m_line).(m_way)
     = m_line] proves the probe would land on [m_way]. *)
  mutable m_line : int;
  mutable m_way : int;
  (* Same idea for [prefetch]'s residency check, kept separate so the
     access/prefetch pairs a loop body re-issues each iteration both keep
     their hints. *)
  mutable p_line : int;
  mutable p_way : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~sets ~ways ~line_bytes =
  if not (is_power_of_two sets) then invalid_arg "Cache.create: sets must be a power of two";
  if not (is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  { name;
    sets;
    ways;
    line_bits = log2 line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    stamp = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0;
    hits = 0;
    misses = 0;
    m_line = -1;
    m_way = 0;
    p_line = -1;
    p_way = 0 }

(* Reject inexact geometry rather than silently modeling a cache of the
   wrong size: [size_bytes] must factor exactly into sets * ways * line. *)
let of_size ~name ~size_bytes ~ways ~line_bytes =
  if ways <= 0 then invalid_arg "Cache.of_size: ways must be positive";
  if line_bytes <= 0 || size_bytes mod line_bytes <> 0 then
    invalid_arg "Cache.of_size: size_bytes must be a positive multiple of line_bytes";
  let lines = size_bytes / line_bytes in
  if lines = 0 || lines mod ways <> 0 then
    invalid_arg "Cache.of_size: size_bytes must be a multiple of ways * line_bytes";
  create ~name ~sets:(lines / ways) ~ways ~line_bytes

let line_of t addr = addr lsr t.line_bits

let set_of t line = line land (t.sets - 1)

(* Access a byte address; returns true on hit. Miss fills the line, evicting
   the least-recently-used way. *)
(* [set] is masked into range and the way loops are bounded by the row
   length, so the unchecked array reads below are safe; this path runs
   once or more per simulated instruction. *)
let find_way tags ways line =
  let rec go w =
    if w >= ways then -1 else if Array.unsafe_get tags w = line then w else go (w + 1)
  in
  go 0

(* Victim: first invalid way if any, else least-recently-used (ties go to
   the lowest way index, matching the strict-< scan). *)
let victim_way tags stamp ways =
  let rec go v w =
    if w >= ways then v
    else if Array.unsafe_get tags w = -1 then w
    else go (if Array.unsafe_get stamp w < Array.unsafe_get stamp v then w else v) (w + 1)
  in
  if Array.unsafe_get tags 0 = -1 then 0 else go 0 1

let access t addr =
  t.tick <- t.tick + 1;
  let line = line_of t addr in
  let set = set_of t line in
  let tags = Array.unsafe_get t.tags set and stamp = Array.unsafe_get t.stamp set in
  if line = t.m_line && Array.unsafe_get tags t.m_way = line then begin
    (* Verified memo hit: same effects the probe's hit path has. *)
    Array.unsafe_set stamp t.m_way t.tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    let w = find_way tags t.ways line in
    if w >= 0 then begin
      Array.unsafe_set stamp w t.tick;
      t.hits <- t.hits + 1;
      t.m_line <- line;
      t.m_way <- w;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let victim = victim_way tags stamp t.ways in
      Array.unsafe_set tags victim line;
      Array.unsafe_set stamp victim t.tick;
      t.m_line <- line;
      t.m_way <- victim;
      false
    end
  end

(* Hardware prefetch. A prefetch of a resident line is a no-op: it touches
   neither recency nor the clock, so prefetch-hits cannot reorder demand
   evictions. A prefetch of an absent line fills the LRU/invalid way and
   becomes MRU, like a demand fill. Hit/miss counters never move. Returns
   true if the line was already resident. *)
let prefetch t addr =
  let line = line_of t addr in
  let set = set_of t line in
  let tags = Array.unsafe_get t.tags set in
  if line = t.p_line && Array.unsafe_get tags t.p_way = line then true
  else begin
    let w = find_way tags t.ways line in
    if w >= 0 then begin
      t.p_line <- line;
      t.p_way <- w;
      true
    end
    else begin
      t.tick <- t.tick + 1;
      let stamp = Array.unsafe_get t.stamp set in
      let victim = victim_way tags stamp t.ways in
      Array.unsafe_set tags victim line;
      Array.unsafe_set stamp victim t.tick;
      t.p_line <- line;
      t.p_way <- victim;
      false
    end
  end

(* Probe without updating state or counters. *)
let probe t addr =
  let line = line_of t addr in
  let set = set_of t line in
  let tags = t.tags.(set) in
  let rec find w = if w >= t.ways then false else tags.(w) = line || find (w + 1) in
  find 0

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.tags;
  t.m_line <- -1;
  t.p_line <- -1;
  reset_counters t

let accesses t = t.hits + t.misses

let miss_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.misses /. float_of_int n

let size_bytes t = t.sets * t.ways * (1 lsl t.line_bits)
