(** Performance-counter snapshots, TopDown attribution and derived metrics
    (events per kilo-instruction for Fig. 8; TopDown percentages for
    Fig. 9). *)

type t = {
  instructions : int;
  transactions : int;
  cycles : float;
  base_cycles : float;  (** issue-limited cycles: instructions / width *)
  fe_cycles : float;  (** front-end stalls: L1i, iTLB, BTB, taken bubbles *)
  bs_cycles : float;  (** bad speculation: mispredict flushes *)
  be_cycles : float;  (** back-end stalls: data misses, DRAM queuing *)
  l1i_accesses : int;
  l1i_misses : int;
  itlb_accesses : int;
  itlb_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_misses : int;
  taken_branches : int;
  cond_branches : int;
  mispredicts : int;
  btb_lookups : int;
  btb_misses : int;
}

val zero : t

(** [diff later earlier] is the interval between two snapshots. *)
val diff : t -> t -> t

val add : t -> t -> t

val l1i_mpki : t -> float
val itlb_mpki : t -> float
val l1d_mpki : t -> float
val taken_branches_pki : t -> float
val mispredicts_pki : t -> float
val btb_misses_pki : t -> float
val ipc : t -> float

type topdown = { retiring : float; frontend : float; bad_speculation : float; backend : float }

(** TopDown level-1 attribution as fractions of total cycles. *)
val topdown : t -> topdown

(** Publish a snapshot into the ambient {!Ocolos_obs.Metrics} registry:
    derived rates (IPC, MPKIs, TopDown fractions) as gauges named
    [<prefix>_*], raw event counts as counters. No-op when no registry is
    installed. *)
val observe_metrics : ?prefix:string -> t -> unit

(** View a counter interval (as produced by {!diff}) as one
    {!Ocolos_obs.Layout_health} recording window. *)
val to_health_sample : t -> Ocolos_obs.Layout_health.sample

val pp : Format.formatter -> t -> unit
