(** The paper's benchmark applications, scaled ~1:100 to the simulator with
    L1i-relative front-end pressure preserved.

    Transaction types per application:
    - mysql: point_select, range_select, update_index, update_nonindex,
      insert, delete — inputs are the Sysbench OLTP mixes.
    - mongodb: read, update, insert, scan — YCSB-style mixes, including the
      scan95_insert5 input whose layout-optimized version is {e slower}
      than the original (the paper's inversion case).
    - memcached: get, set — memaslap-style mixes; small code, small win.
    - verilator: one transaction type dominated by a huge generated
      evaluation kernel; inputs are simulated RISC-V benchmarks.
    - clang: parse/sema, codegen, optimize; one finite process per source
      file — the BAM batch workload. *)

val mysql_tx_types : int
val mysql_like : ?seed:int -> unit -> Workload.t

val mongodb_tx_types : int
val mongodb_like : ?seed:int -> unit -> Workload.t

val memcached_tx_types : int
val memcached_like : ?seed:int -> unit -> Workload.t

val verilator_like : ?seed:int -> unit -> Workload.t

val clang_tx_types : int

(** Input representing one source file of the build. *)
val clang_file : file_index:int -> Input.t

val clang_like : ?seed:int -> ?tx_per_file:int -> ?n_files:int -> unit -> Workload.t

(** Never-returning event-loop server with no cold code: every function —
    including the entry, which never returns — is hot, so a continuous
    campaign can retire the entire original text. The acceptance workload
    for true on-stack replacement. *)
val event_loop : ?seed:int -> unit -> Workload.t

(** Small application for unit and property tests. *)
val tiny : ?seed:int -> ?tx_limit:int option -> unit -> Workload.t
