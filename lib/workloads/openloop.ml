(* Open-loop traffic model (see openloop.mli). *)

module Rng = Ocolos_util.Rng
module Stats = Ocolos_util.Stats

let poisson ~rate ~seed ~until_s =
  if rate <= 0.0 then invalid_arg "Openloop.poisson: rate must be positive";
  let rng = Rng.create seed in
  let rec go t acc =
    (* Inverse-CDF exponential inter-arrival; Rng.float is in [0, 1) so the
       log argument stays positive. *)
    let dt = -.log (1.0 -. Rng.float rng) /. rate in
    let t = t +. dt in
    if t >= until_s then List.rev acc else go t (t :: acc)
  in
  go 0.0 []

let uniform ~rate ~until_s =
  if rate <= 0.0 then invalid_arg "Openloop.uniform: rate must be positive";
  let dt = 1.0 /. rate in
  let rec go k acc =
    let t = float_of_int k *. dt in
    if t >= until_s then List.rev acc else go (k + 1) (t :: acc)
  in
  go 1 []

type t = {
  arrivals : float array;
  mutable matched : int; (* arrivals.(0 .. matched-1) are completed *)
  mutable lat : float list; (* latencies, newest first *)
  mutable last_now : float;
  mutable last_completed : int option; (* server counter at the previous call *)
}

let create ~arrivals =
  let a = Array.of_list arrivals in
  Array.iteri
    (fun i x ->
      if i > 0 && x <= a.(i - 1) then
        invalid_arg "Openloop.create: arrivals must be strictly ascending")
    a;
  { arrivals = a; matched = 0; lat = []; last_now = neg_infinity; last_completed = None }

let arrived t ~now_s =
  (* Count of arrivals at or before now. Arrays are small; linear from the
     matched cursor is plenty. *)
  let n = Array.length t.arrivals in
  let rec go i = if i < n && t.arrivals.(i) <= now_s then go (i + 1) else i in
  go t.matched

let advance t ~now_s ~completed =
  if now_s < t.last_now then invalid_arg "Openloop.advance: time went backwards";
  t.last_now <- now_s;
  match t.last_completed with
  | None ->
    (* First observation: transactions retired before the client showed up
       are not client traffic; start counting capacity from here. *)
    t.last_completed <- Some completed
  | Some last ->
    t.last_completed <- Some completed;
    (* The server's capacity in this slice is what it retired during it;
       unused capacity is not banked (the server was doing other work, not
       holding slots open). A stop-the-world pause shows up as a slice with
       no capacity, so pending arrivals queue. *)
    let capacity = max 0 (completed - last) in
    let avail = arrived t ~now_s in
    let target = min avail (t.matched + capacity) in
    while t.matched < target do
      t.lat <- (now_s -. t.arrivals.(t.matched)) :: t.lat;
      t.matched <- t.matched + 1
    done

let queue_depth t ~now_s = arrived t ~now_s - t.matched
let matched t = t.matched
let latencies t = Array.of_list (List.rev t.lat)

let pct t p =
  match t.lat with [] -> 0.0 | _ -> Stats.percentile (Array.of_list t.lat) p

let p50 t = pct t 50.0
let p99 t = pct t 99.0
let max_latency t = List.fold_left Float.max 0.0 t.lat
