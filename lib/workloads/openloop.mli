(** Open-loop (arrival-rate-driven) traffic model.

    The closed-loop workloads measure throughput; they cannot show what a
    replacement pause does to {e latency}, because a paused server simply
    stops generating its own work. An open-loop client keeps arriving at a
    fixed rate regardless of what the server does, so a stop-the-world
    pause turns into a queue and the queue into a p99 spike — the
    load-balancer's view of an OCOLOS rollout, per replica and fleet-wide.

    The model is deliberately minimal and fully deterministic: a pure
    arrival schedule (a function of rate and seed only), matched FIFO
    against the server's cumulative completed-transaction counter as the
    driver advances simulated time. A request arriving at [a] and matched
    during the advance to [now] has latency [now - a] — completions are
    attributed to the end of the observation slice, so expectations are
    hand-computable from the slice schedule. *)

type t

(** Poisson arrival schedule: exponential inter-arrival times at [rate]
    arrivals per simulated second, from the seeded deterministic stream.
    A pure function of [(rate, seed)]: same arguments, same schedule, and
    a shorter horizon yields a prefix of a longer one. *)
val poisson : rate:float -> seed:int -> until_s:float -> float list

(** A uniform schedule (one arrival every [1/rate] seconds, first at
    [1/rate]): the hand-computable variant for unit tests. *)
val uniform : rate:float -> until_s:float -> float list

(** [create ~arrivals] — arrival times in seconds, strictly sorted
    ascending. Raises [Invalid_argument] otherwise. *)
val create : arrivals:float list -> t

(** Feed the observation at simulated time [now_s]: [completed] is the
    server's {e cumulative} completed-transaction count. The slice's
    capacity is the completions retired since the previous call; up to that
    many pending arrivals (FIFO, [arrival <= now_s]) are matched, each with
    latency [now_s - arrival]. Excess capacity is not banked, so a paused
    slice queues its arrivals. The first call only anchors the counter.
    [advance] must be called with non-decreasing [now_s]. *)
val advance : t -> now_s:float -> completed:int -> unit

(** Arrivals at or before [now_s] not yet matched to a completion. *)
val queue_depth : t -> now_s:float -> int

(** Requests matched so far. *)
val matched : t -> int

(** Latencies of matched requests, in completion order. *)
val latencies : t -> float array

(** Nearest-rank percentiles over matched latencies; 0 when none. *)
val p50 : t -> float

val p99 : t -> float
val max_latency : t -> float
