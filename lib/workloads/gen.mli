(** Synthetic application generator.

    Produces IR programs shaped like the paper's benchmarks: a server loop
    dispatching over transaction types, a large branchy parser (the
    MYSQLparse analog), per-type handler and operation functions calling
    shared utilities, rarely-taken error paths into cold code, v-table and
    function-pointer dispatch, and optional data-scan transactions.

    Branch biases are not baked into the code: every conditional compares a
    random draw against a parameter loaded from a global slot, and inputs
    are vectors of slot values — the same binary exhibits different hot
    paths under different inputs (the property Fig. 3 depends on).

    Register conventions of the generated "ABI": r10 is always zero (base
    for absolute loads), r11 the thread-local data base, r12 a per-thread
    checksum accumulator, r13 a loop counter, r14 indirect-call scratch,
    r15 the jump-table lowering scratch. *)

val reg_zero : int
val reg_tls : int
val reg_checksum : int
val reg_loop : int
val reg_callee : int

val tls_scratch_words : int
val tls_tx_counter : int
val tls_fp_base : int
val tls_scan_idx : int
val tls_scan_len : int
val tls_scan_cursor : int
val tls_scan_base : int
val scan_stride_words : int
val scan_region_mask : int

type config = {
  seed : int;
  n_tx_types : int;
  funcs_per_type : int;
  shared_funcs : int;
  cold_funcs : int;
  parser_blocks : int;  (** 0 = no parser function *)
  jump_table_sites : int;  (** switch statements inside the parser *)
  blocks_per_func : int * int;
  body_instrs : int * int;
  calls_per_func : int * int;
  error_prob : float;
  check_prob : float;
      (** chance a position becomes an assertion-style never-taken guard
          block (materialize + check): check-dense, dispatch-bound code *)
  loop_prob : float;
  loop_trip : int * int;
  use_vtable_dispatch : bool;
  vtable_op_prob : float;
  fp_sites_per_type : bool;
  scan_tx : int option;
  tx_limit : int option;  (** None = server loop; Some n = n tx then halt *)
  stable_site_fraction : float;
  flip_prob : float;
  hot_taken_prob : float;
      (** chance a site's common direction is the taken side, i.e. the
          static compiler guessed wrong *)
  bias_hot : int * int;
  bias_cold : int * int;
  scan_filters : int;
  globals_base : int;
}

val default : config

type site_kind = Normal | Error

type site = {
  site_id : int;
  slot : int;
  kind : site_kind;
  base_hot_taken : bool;
  stable : bool;
}

type t = {
  cfg : config;
  program : Ocolos_isa.Ir.program;
  sites : site array;
  tx_cum_slots : int array;
  scan_len_slot : int;
  handler_fids : int array;
  parser_fid : int option;
  main_fid : int;
}

(** Generate a program; deterministic in [config.seed]. The result
    validates under {!Ocolos_isa.Ir.validate}. *)
val generate : config -> t

(** Slot values an input assigns: cumulative transaction thresholds, scan
    length, and one threshold per branch site. Deterministic in
    (program, input). *)
val make_params : t -> Input.t -> (int * int) list
