(* Synthetic application generator.

   Produces IR programs shaped like the paper's benchmarks: a server loop
   dispatching over transaction types; a large branchy parser (the
   MYSQLparse analog); per-type handler and operation functions calling
   shared utilities; rarely-taken error paths into cold code; v-table and
   function-pointer dispatch; optional data-scan transactions.

   Branch biases are *not* baked into the code: every conditional compares a
   random draw against a parameter loaded from a global slot, and inputs are
   vectors of slot values. The same binary therefore exhibits different hot
   paths under different inputs, which is the property the paper's
   input-sensitivity experiments (Fig. 3) depend on.

   Register conventions (the generated "ABI"): r10 is always zero (used as a
   base for absolute loads), r11 is the thread-local data base set by the
   driver, r12 accumulates a per-thread checksum, r13 is a loop counter, r14
   an indirect-call scratch, r15 the jump-table lowering scratch. Bodies use
   r0..r9 freely. *)

open Ocolos_isa
module Rng = Ocolos_util.Rng

let reg_zero = 10
let reg_tls = 11
let reg_checksum = 12
let reg_loop = 13
let reg_callee = 14

(* Thread-local word offsets relative to r11. *)
let tls_scratch_words = 64
let tls_tx_counter = tls_scratch_words
let tls_fp_base = tls_scratch_words + 1
let tls_scan_idx = tls_scratch_words + 2
let tls_scan_len = tls_scratch_words + 3
let tls_scan_cursor = tls_scratch_words + 4
let tls_scan_base = 4096
let scan_stride_words = 8

(* Scanned region per thread: 512 Ki words (4 MiB), far above the L3 slice,
   so a rotating cursor makes every scanned line a DRAM access. *)
let scan_region_mask = (1 lsl 19) - 1

type config = {
  seed : int;
  n_tx_types : int;
  funcs_per_type : int;
  shared_funcs : int;
  cold_funcs : int;
  parser_blocks : int; (* 0 = no parser function *)
  jump_table_sites : int; (* switch statements inside the parser *)
  blocks_per_func : int * int;
  body_instrs : int * int;
  calls_per_func : int * int;
  error_prob : float; (* chance a block gets a rare error side-exit *)
  check_prob : float;
      (* chance a position becomes an assertion-style guard: a register is
         materialized and immediately checked by a never-taken branch to a
         cold handler. Models check-dense code (bounds/invariant asserts) —
         minimal straight-line work between block boundaries, so execution
         is bound by per-block dispatch, not by the blocks' bodies. *)
  loop_prob : float; (* chance a position becomes a bounded compute loop *)
  loop_trip : int * int;
  use_vtable_dispatch : bool;
  vtable_op_prob : float; (* chance an op call goes through a v-table *)
  fp_sites_per_type : bool; (* handlers create + call function pointers *)
  scan_tx : int option; (* tx type that performs the data scan *)
  tx_limit : int option; (* None = server loop; Some n = n tx then halt *)
  stable_site_fraction : float; (* sites all inputs agree on *)
  flip_prob : float; (* chance an input flips an unstable site *)
  hot_taken_prob : float; (* chance a site's common direction is the taken
                             side, i.e. the static compiler guessed wrong *)
  bias_hot : int * int; (* per-mille taken probability of hot-taken sites *)
  bias_cold : int * int; (* per-mille taken probability of cold-taken sites *)
  scan_filters : int; (* op functions rotated through per scanned element *)
  globals_base : int; (* must match the emitter's *)
}

let default =
  { seed = 1;
    n_tx_types = 6;
    funcs_per_type = 20;
    shared_funcs = 120;
    cold_funcs = 400;
    parser_blocks = 120;
    jump_table_sites = 0;
    blocks_per_func = (4, 9);
    body_instrs = (3, 8);
    calls_per_func = (1, 3);
    error_prob = 0.18;
    check_prob = 0.0;
    loop_prob = 0.12;
    loop_trip = (2, 6);
    use_vtable_dispatch = true;
    vtable_op_prob = 0.25;
    fp_sites_per_type = true;
    scan_tx = None;
    tx_limit = None;
    stable_site_fraction = 0.6;
    flip_prob = 0.4;
    hot_taken_prob = 0.5;
    bias_hot = (935, 990);
    bias_cold = (8, 53);
    scan_filters = 16;
    globals_base = 0x1000 }

type site_kind = Normal | Error

type site = {
  site_id : int;
  slot : int; (* global word offset holding the threshold parameter *)
  kind : site_kind;
  base_hot_taken : bool; (* program-level common direction *)
  stable : bool; (* true: every input keeps the base direction *)
}

type t = {
  cfg : config;
  program : Ir.program;
  sites : site array;
  tx_cum_slots : int array;
  scan_len_slot : int;
  handler_fids : int array;
  parser_fid : int option;
  main_fid : int;
}

(* ---- generation state ---- *)

type state = {
  rng : Rng.t;
  mutable next_slot : int;
  mutable sites_acc : site list;
  mutable n_sites : int;
  config : config;
}

let fresh_site st kind =
  let slot = st.next_slot in
  st.next_slot <- st.next_slot + 1;
  let site =
    { site_id = st.n_sites;
      slot;
      kind;
      base_hot_taken = Rng.bool st.rng st.config.hot_taken_prob;
      stable = Rng.bool st.rng st.config.stable_site_fraction }
  in
  st.n_sites <- st.n_sites + 1;
  st.sites_acc <- site :: st.sites_acc;
  site

(* Load a global parameter into [dst]: absolute addressing via r10 == 0. *)
let load_global st dst slot = Instr.Load (dst, reg_zero, st.config.globals_base + slot)

(* The biased-branch idiom: 4 body instructions + a conditional terminator
   taken with probability param/1000. Returns (instrs, cond, reg). *)
let site_instrs st site =
  let ra = Rng.int st.rng 8 and rb = (Rng.int st.rng 8) + 1 in
  let rb = if rb = ra then 9 else rb in
  let rc = 9 - Rng.int st.rng 2 in
  let rc = if rc = ra || rc = rb then 0 else rc in
  ( [ Ir.Plain (Instr.Rand (ra, 1000));
      Ir.Plain (load_global st rb site.slot);
      Ir.Plain (Instr.Alu (Instr.Sub, rc, ra, rb));
      Ir.Plain (Instr.Alu (Instr.Xor, reg_checksum, reg_checksum, ra)) ],
    Instr.Lt,
    rc )

(* Random straight-line body: ALU work, thread-local loads/stores, checksum
   folds. *)
let gen_body st n =
  let instr () =
    let r = Rng.float st.rng in
    let rd = Rng.int st.rng 10 and rs = Rng.int st.rng 10 in
    if r < 0.40 then
      let op = Rng.choose st.rng [| Instr.Add; Instr.Xor; Instr.Sub; Instr.And; Instr.Or |] in
      Ir.Plain (Instr.Alui (op, rd, rs, 1 + Rng.int st.rng 1000))
    else if r < 0.55 then
      Ir.Plain (Instr.Alu (Instr.Add, rd, rs, Rng.int st.rng 10))
    else if r < 0.65 then Ir.Plain (Instr.Movi (rd, Rng.int st.rng 4096))
    else if r < 0.80 then Ir.Plain (Instr.Load (rd, reg_tls, Rng.int st.rng tls_scratch_words))
    else if r < 0.90 then Ir.Plain (Instr.Store (rs, reg_tls, Rng.int st.rng tls_scratch_words))
    else Ir.Plain (Instr.Alu (Instr.Add, reg_checksum, reg_checksum, rd))
  in
  List.init n (fun _ -> instr ())

(* ---- structured function construction ---- *)

(* Proto-blocks reference main-chain positions and aux indices symbolically;
   bids are assigned afterwards (mains in order, then auxes: compilers put
   error handling at the end of the function). *)
type target = Main of int | Aux of int

type pterm =
  | PJump of target
  | PBranch of Instr.cond * Instr.reg * target * target (* taken, fall *)
  | PTable of Instr.reg * target array
  | PRet
  | PHalt

type proto = { p_body : Ir.sinstr list; p_term : pterm }

let materialize ~fid ~fname mains auxes =
  let mains = Array.of_list mains in
  let auxes = Array.of_list auxes in
  let n = Array.length mains in
  let bid_of = function Main i -> i | Aux k -> n + k in
  let conv bid (p : proto) =
    let term =
      match p.p_term with
      | PJump t -> Ir.Tjump (bid_of t)
      | PBranch (c, r, taken, fall) -> Ir.Tbranch (c, r, bid_of taken, bid_of fall)
      | PTable (r, ts) -> Ir.Tjump_table (r, Array.map bid_of ts)
      | PRet -> Ir.Tret
      | PHalt -> Ir.Thalt
    in
    { Ir.bid; body = p.p_body; term }
  in
  let blocks =
    Array.init (n + Array.length auxes) (fun bid ->
        if bid < n then conv bid mains.(bid) else conv bid auxes.(bid - n))
  in
  { Ir.fid; fname; blocks }

(* A branchy operation function: a forward chain of blocks with biased skip
   branches, rare error exits into cold tail blocks (which may call cold
   functions), and occasional bounded compute loops. *)
let gen_branchy_func ?(table_prob = 0.0) st ~fid ~fname ~nblocks ~callees ~cold_callees
    ~extra_tail =
  let mains : proto list ref = ref [] in
  let auxes : proto list ref = ref [] in
  let n_aux = ref 0 in
  let push_aux p =
    auxes := !auxes @ [ p ];
    let k = !n_aux in
    incr n_aux;
    k
  in
  let callee_pool = Array.of_list callees in
  let call_instr () =
    if Array.length callee_pool = 0 then []
    else
      let callee = Rng.choose st.rng callee_pool in
      match callee with
      | `Direct fid -> [ Ir.SCall fid ]
      | `Vtable (vid, slot) ->
        [ Ir.Plain (Instr.VtLoad (reg_callee, vid, slot)); Ir.SCallInd reg_callee ]
  in
  let lo, hi = st.config.body_instrs in
  let i = ref 0 in
  let n = max 2 nblocks in
  while !i < n - 1 do
    let body = gen_body st (Rng.int_in st.rng lo hi) in
    let body = if Rng.bool st.rng 0.5 then body @ call_instr () else body in
    let roll = Rng.float st.rng in
    if roll < st.config.loop_prob && !i < n - 2 then begin
      (* Bounded compute loop: preheader at position i, body at i+1. *)
      let tlo, thi = st.config.loop_trip in
      let trip = Rng.int_in st.rng tlo thi in
      mains :=
        !mains @ [ { p_body = body @ [ Ir.Plain (Instr.Movi (reg_loop, trip)) ];
                     p_term = PJump (Main (!i + 1)) } ];
      let loop_body =
        gen_body st 2 @ [ Ir.Plain (Instr.Alui (Instr.Sub, reg_loop, reg_loop, 1)) ]
      in
      mains :=
        !mains
        @ [ { p_body = loop_body;
              p_term = PBranch (Instr.Gt, reg_loop, Main (!i + 1), Main (!i + 2)) } ];
      i := !i + 2
    end
    else if
      (* the [> 0.] guard keeps this arm from capturing rolls the loop arm
         declined near the function end when checks are disabled *)
      st.config.check_prob > 0.
      && roll < st.config.loop_prob +. st.config.check_prob
    then begin
      (* Assertion-style guard: materialize a value and check it with a
         never-taken branch to a cold handler (1 < 0 is statically false,
         but neither engine knows that — the branch is predicted, checked
         and fallen through like any other). *)
      let r = Rng.int st.rng 8 in
      let k =
        push_aux { p_body = gen_body st 2; p_term = PJump (Main (!i + 1)) }
      in
      mains :=
        !mains
        @ [ { p_body = body @ [ Ir.Plain (Instr.Movi (r, 1)) ];
              p_term = PBranch (Instr.Lt, r, Aux k, Main (!i + 1)) } ];
      incr i
    end
    else if roll < st.config.loop_prob +. st.config.check_prob +. st.config.error_prob
    then begin
      (* Rare error exit to a cold aux block that rejoins the chain. *)
      let site = fresh_site st Error in
      let instrs, cond, reg = site_instrs st site in
      let err_body =
        gen_body st (Rng.int_in st.rng lo hi)
        @ (match cold_callees with
          | [] -> []
          | l -> if Rng.bool st.rng 0.5 then [ Ir.SCall (Rng.choose st.rng (Array.of_list l)) ] else [])
      in
      let k = push_aux { p_body = err_body; p_term = PJump (Main (!i + 1)) } in
      mains :=
        !mains
        @ [ { p_body = body @ instrs; p_term = PBranch (cond, reg, Aux k, Main (!i + 1)) } ];
      incr i
    end
    else if
      roll < st.config.loop_prob +. st.config.check_prob +. st.config.error_prob +. table_prob
      && n - 1 - !i >= 3
    then begin
      (* Switch-statement dispatch over the next few positions (a jump table
         unless the program is compiled with -fno-jump-tables). *)
      let k = min 4 (n - 1 - !i) in
      let sel = Rng.int st.rng 8 in
      let body =
        body
        @ [ Ir.Plain (Instr.Rand (sel, 4 * k));
            Ir.Plain (Instr.Alu (Instr.Xor, reg_checksum, reg_checksum, sel)) ]
      in
      let targets =
        (* Skew the switch: three quarters of the table entries share the
           first target — switches usually have a dominant case, which both
           the BTB and the lowered compare chain predict well. *)
        Array.init (4 * k) (fun j -> Main (!i + 1 + if j < 3 * k then 0 else j - (3 * k)))
      in
      mains := !mains @ [ { p_body = body; p_term = PTable (sel, targets) } ];
      incr i
    end
    else if
      roll
      < st.config.loop_prob +. st.config.check_prob +. st.config.error_prob +. table_prob
        +. 0.12
    then begin
      mains := !mains @ [ { p_body = body; p_term = PJump (Main (!i + 1)) } ];
      incr i
    end
    else begin
      (* Biased skip: taken side jumps forward over 1..4 positions. *)
      let site = fresh_site st Normal in
      let instrs, cond, reg = site_instrs st site in
      let skip = min (n - 1) (!i + 1 + Rng.int_in st.rng 1 4) in
      mains :=
        !mains
        @ [ { p_body = body @ instrs;
              p_term = PBranch (cond, reg, Main skip, Main (!i + 1)) } ];
      incr i
    end
  done;
  (* Final block. *)
  let final_body = gen_body st (Rng.int_in st.rng lo hi) @ extra_tail in
  mains := !mains @ [ { p_body = final_body; p_term = PRet } ];
  materialize ~fid ~fname !mains !auxes

(* Scan-transaction blocks appended to a handler (the MongoDB range-scan
   analog). Each element reads one fresh cache line from a rotating window
   over a 1 MiB thread-local region (every read is a DRAM access) and then
   dispatches on the element "type" into one of the workload's operation
   functions — a filter/projection step. The per-element code footprint is
   what makes scans front-end-sensitive, and the paper's scan inversion
   emerges from the interaction of that footprint with the DRAM controller
   model. Loop state lives in thread-local memory because the called ops
   clobber the general registers.

   Block shape (positions relative to [base]):
     0: preheader   1: loop head    2..k+1: filter dispatch   k+2: advance
     k+3: exit (cursor update + ret) *)
let scan_blocks st ~scan_len_slot ~filters =
  let k = Array.length filters in
  assert (k > 0);
  let head = 1 and advance = k + 2 and exit_ = k + 3 in
  let preheader =
    { p_body =
        [ Ir.Plain (load_global st 9 scan_len_slot);
          Ir.Plain (Instr.Store (9, reg_tls, tls_scan_len));
          Ir.Plain (Instr.Movi (8, 0));
          Ir.Plain (Instr.Store (8, reg_tls, tls_scan_idx)) ];
      p_term = PBranch (Instr.Gt, 9, Main head, Main exit_) }
  in
  let loop_head =
    { p_body =
        [ Ir.Plain (Instr.Load (8, reg_tls, tls_scan_idx));
          Ir.Plain (Instr.Load (4, reg_tls, tls_scan_cursor));
          Ir.Plain (Instr.Alu (Instr.Add, 6, 4, 8));
          Ir.Plain (Instr.Alui (Instr.And, 6, 6, scan_region_mask));
          Ir.Plain (Instr.Alu (Instr.Add, 7, reg_tls, 6));
          Ir.Plain (Instr.Alui (Instr.Add, 7, 7, tls_scan_base));
          Ir.Plain (Instr.Load (5, 7, 0));
          Ir.Plain (Instr.Alu (Instr.Xor, reg_checksum, reg_checksum, 5));
          Ir.Plain (Instr.Rand (6, k)) ];
      p_term = PTable (6, Array.init k (fun i -> Main (2 + i))) }
  in
  let filter_block i =
    { p_body = [ Ir.SCall filters.(i) ]; p_term = PJump (Main advance) }
  in
  let advance_block =
    { p_body =
        [ Ir.Plain (Instr.Load (8, reg_tls, tls_scan_idx));
          Ir.Plain (Instr.Alui (Instr.Add, 8, 8, scan_stride_words));
          Ir.Plain (Instr.Store (8, reg_tls, tls_scan_idx));
          Ir.Plain (Instr.Load (9, reg_tls, tls_scan_len));
          Ir.Plain (Instr.Alu (Instr.Sub, 6, 8, 9)) ];
      p_term = PBranch (Instr.Lt, 6, Main head, Main exit_) }
  in
  let exit_block =
    { p_body =
        [ Ir.Plain (Instr.Load (4, reg_tls, tls_scan_cursor));
          Ir.Plain (Instr.Load (9, reg_tls, tls_scan_len));
          Ir.Plain (Instr.Alu (Instr.Add, 4, 4, 9));
          Ir.Plain (Instr.Alui (Instr.And, 4, 4, scan_region_mask));
          Ir.Plain (Instr.Store (4, reg_tls, tls_scan_cursor)) ];
      p_term = PRet }
  in
  [ preheader; loop_head ] @ List.init k filter_block @ [ advance_block; exit_block ]

(* A transaction handler: optional fp-create prologue, then one chain block
   per operation of the type — every transaction sweeps most of the type's
   op functions (this breadth is what makes the per-transaction instruction
   footprint large, like a real query execution). Biased skips drop a few
   ops per transaction; some calls dispatch through the type's v-table. An
   optional fp call and scan epilogue follow. *)
let gen_handler st ~fid ~fname ~ops ~vtable ~fp_target ~scan ~cold_callees =
  let fp_slot = tls_fp_base in
  let prologue =
    match fp_target with
    | Some target ->
      [ Ir.SFpCreate (reg_callee, target);
        Ir.Plain (Instr.Store (reg_callee, reg_tls, fp_slot)) ]
    | None -> []
  in
  let fp_call =
    match fp_target with
    | Some _ ->
      [ Ir.Plain (Instr.Load (reg_callee, reg_tls, fp_slot)); Ir.SCallInd reg_callee ]
    | None -> []
  in
  let mains = ref [] and auxes = ref [] in
  let n_ops = List.length ops in
  let n = n_ops + 1 in
  List.iteri
    (fun slot op ->
      let call =
        match vtable with
        | Some vid when Rng.bool st.rng st.config.vtable_op_prob ->
          [ Ir.Plain (Instr.VtLoad (reg_callee, vid, slot)); Ir.SCallInd reg_callee ]
        | Some _ | None -> [ Ir.SCall op ]
      in
      let body = gen_body st (Rng.int_in st.rng 2 4) @ call in
      (* Occasionally skip the next op or two, under input control; rare
         error exits reach cold code, as elsewhere. *)
      if Rng.bool st.rng 0.25 && slot < n_ops - 1 then begin
        let site = fresh_site st Normal in
        let instrs, cond, reg = site_instrs st site in
        mains :=
          !mains
          @ [ { p_body = body @ instrs;
                p_term = PBranch (cond, reg, Main (min (n - 1) (slot + 2)), Main (slot + 1)) } ]
      end
      else if Rng.bool st.rng 0.1 && cold_callees <> [] then begin
        let site = fresh_site st Error in
        let instrs, cond, reg = site_instrs st site in
        let err =
          { p_body =
              gen_body st 3 @ [ Ir.SCall (Rng.choose st.rng (Array.of_list cold_callees)) ];
            p_term = PJump (Main (slot + 1)) }
        in
        auxes := !auxes @ [ err ];
        let k = List.length !auxes - 1 in
        mains :=
          !mains
          @ [ { p_body = body @ instrs; p_term = PBranch (cond, reg, Aux k, Main (slot + 1)) } ]
      end
      else mains := !mains @ [ { p_body = body; p_term = PJump (Main (slot + 1)) } ])
    ops;
  mains := !mains @ [ { p_body = gen_body st 3 @ fp_call; p_term = PRet } ];
  let base = materialize ~fid ~fname !mains !auxes in
  (* Prepend the prologue to the entry block. *)
  let blocks = Array.copy base.Ir.blocks in
  blocks.(0) <- { (blocks.(0)) with Ir.body = prologue @ blocks.(0).Ir.body };
  let base = { base with Ir.blocks } in
  match scan with
  | None -> base
  | Some scan_len_slot ->
    (* Splice the scan blocks after the handler body: every Ret in the
       original blocks is redirected into the scan preheader. *)
    let n = Array.length base.Ir.blocks in
    let filters =
      Array.of_list (List.filteri (fun i _ -> i < st.config.scan_filters) ops)
    in
    let protos = scan_blocks st ~scan_len_slot ~filters in
    let conv bid (p : proto) =
      let abs = function
        | Main i -> n + i
        | Aux _ -> invalid_arg "scan blocks use Main targets only"
      in
      let term =
        match p.p_term with
        | PJump t -> Ir.Tjump (abs t)
        | PBranch (c, r, a, b) -> Ir.Tbranch (c, r, abs a, abs b)
        | PTable (r, ts) -> Ir.Tjump_table (r, Array.map abs ts)
        | PRet -> Ir.Tret
        | PHalt -> Ir.Thalt
      in
      { Ir.bid; body = p.p_body; term }
    in
    let scan_arr = Array.of_list protos in
    let blocks =
      Array.init
        (n + Array.length scan_arr)
        (fun bid ->
          if bid < n then begin
            let b = base.Ir.blocks.(bid) in
            if b.Ir.term = Ir.Tret then { b with Ir.term = Ir.Tjump n } else b
          end
          else conv bid scan_arr.(bid - n))
    in
    { base with Ir.blocks }

(* The entry function: init, transaction-select chain, per-type dispatch
   blocks (direct or v-table call), TxMark, loop control. *)
let gen_main st ~fid ~tx_cum_slots ~handler_fids ~parser_fid ~vtable =
  let n_tx = Array.length handler_fids in
  let mains = ref [] and auxes = ref [] in
  let push p = mains := !mains @ [ p ] in
  let push_aux p =
    auxes := !auxes @ [ p ];
    List.length !auxes - 1
  in
  (* Positions: 0 = init, 1 = loop head (select chain start),
     1 + n_tx - 1 checks, then decrement block. Dispatch blocks are auxes. *)
  let init_body =
    match st.config.tx_limit with
    | Some n ->
      [ Ir.Plain (Instr.Movi (0, n)); Ir.Plain (Instr.Store (0, reg_tls, tls_tx_counter)) ]
    | None -> []
  in
  push { p_body = init_body; p_term = PJump (Main 1) };
  let dec_pos = 1 + n_tx in
  (* Dispatch aux for each type. *)
  let dispatch_aux =
    Array.init n_tx (fun i ->
        let call_parser = match parser_fid with Some p -> [ Ir.SCall p ] | None -> [] in
        let dispatch =
          match vtable with
          | Some vid when st.config.use_vtable_dispatch ->
            [ Ir.Plain (Instr.VtLoad (reg_callee, vid, i)); Ir.SCallInd reg_callee ]
          | Some _ | None -> [ Ir.SCall handler_fids.(i) ]
        in
        push_aux
          { p_body = call_parser @ dispatch @ [ Ir.Plain Instr.TxMark ];
            p_term = PJump (Main dec_pos) })
  in
  (* Selection chain: position 1 + i tests cumulative threshold i. *)
  for i = 0 to n_tx - 1 do
    let body =
      if i = 0 then [ Ir.Plain (Instr.Rand (0, 1000)) ] else []
    in
    if i = n_tx - 1 then
      (* Last type: unconditional. *)
      push { p_body = body; p_term = PJump (Aux dispatch_aux.(i)) }
    else begin
      let body =
        body
        @ [ Ir.Plain (load_global st 1 tx_cum_slots.(i));
            Ir.Plain (Instr.Alu (Instr.Sub, 2, 0, 1)) ]
      in
      push { p_body = body; p_term = PBranch (Instr.Lt, 2, Aux dispatch_aux.(i), Main (2 + i)) }
    end
  done;
  (* Decrement / loop back. *)
  (match st.config.tx_limit with
  | Some _ ->
    push
      { p_body =
          [ Ir.Plain (Instr.Load (0, reg_tls, tls_tx_counter));
            Ir.Plain (Instr.Alui (Instr.Sub, 0, 0, 1));
            Ir.Plain (Instr.Store (0, reg_tls, tls_tx_counter)) ];
        p_term = PBranch (Instr.Gt, 0, Main 1, Main (dec_pos + 1)) };
    push { p_body = []; p_term = PHalt }
  | None -> push { p_body = []; p_term = PJump (Main 1) });
  materialize ~fid ~fname:"main_loop" !mains !auxes

(* ---- whole-program assembly ---- *)

type role =
  | Rmain
  | Rparser
  | Rhandler of int
  | Rop of int * int (* type, index *)
  | Rshared of int
  | Rcold of int

let generate (config : config) : t =
  let st =
    { rng = Rng.create config.seed;
      next_slot = 1 + config.n_tx_types + 1;
      sites_acc = [];
      n_sites = 0;
      config }
  in
  let tx_cum_slots = Array.init config.n_tx_types (fun i -> 1 + i) in
  let scan_len_slot = 1 + config.n_tx_types in
  (* Roles, then a shuffled fid assignment: definition order deliberately
     uncorrelated with call locality, like a real large code base. *)
  let roles =
    [ Rmain ]
    @ (if config.parser_blocks > 0 then [ Rparser ] else [])
    @ List.init config.n_tx_types (fun i -> Rhandler i)
    @ List.concat
        (List.init config.n_tx_types (fun t ->
             List.init config.funcs_per_type (fun j -> Rop (t, j))))
    @ List.init config.shared_funcs (fun i -> Rshared i)
    @ List.init config.cold_funcs (fun i -> Rcold i)
  in
  let roles = Array.of_list roles in
  let fid_perm = Array.init (Array.length roles) (fun i -> i) in
  Rng.shuffle st.rng fid_perm;
  (* role index -> fid *)
  let fid_of_role_idx = fid_perm in
  let role_idx = Hashtbl.create 64 in
  Array.iteri (fun i r -> Hashtbl.replace role_idx r i) roles;
  let fid_of role = fid_of_role_idx.(Hashtbl.find role_idx role) in
  let main_fid = fid_of Rmain in
  let parser_fid = if config.parser_blocks > 0 then Some (fid_of Rparser) else None in
  let handler_fids = Array.init config.n_tx_types (fun i -> fid_of (Rhandler i)) in
  let op_fids = Array.init config.n_tx_types (fun t ->
      Array.init config.funcs_per_type (fun j -> fid_of (Rop (t, j))))
  in
  let shared_fids = Array.init config.shared_funcs (fun i -> fid_of (Rshared i)) in
  let cold_fids = Array.init config.cold_funcs (fun i -> fid_of (Rcold i)) in
  (* V-tables: vtable 0 dispatches handlers; vtable 1+t dispatches type t's
     ops. *)
  let vtables =
    if config.use_vtable_dispatch then
      Array.append
        [| Array.copy handler_fids |]
        (Array.map Array.copy op_fids)
    else [||]
  in
  let handler_vt t = if config.use_vtable_dispatch then Some (1 + t) else None in
  let nfuncs = Array.length roles in
  let funcs = Array.make nfuncs { Ir.fid = 0; fname = ""; blocks = [||] } in
  let blo, bhi = config.blocks_per_func in
  let some_cold () =
    if Array.length cold_fids = 0 then []
    else
      List.init 3 (fun _ -> cold_fids.(Rng.int st.rng (Array.length cold_fids)))
  in
  (* Shared utility leaves. *)
  Array.iteri
    (fun i fid ->
      funcs.(fid) <-
        gen_branchy_func st ~fid ~fname:(Printf.sprintf "util_%d" i)
          ~nblocks:(Rng.int_in st.rng 2 4) ~callees:[] ~cold_callees:[] ~extra_tail:[])
    shared_fids;
  (* Cold functions (error paths only). *)
  Array.iteri
    (fun i fid ->
      funcs.(fid) <-
        gen_branchy_func st ~fid ~fname:(Printf.sprintf "cold_%d" i)
          ~nblocks:(Rng.int_in st.rng blo bhi) ~callees:[] ~cold_callees:[] ~extra_tail:[])
    cold_fids;
  (* Per-type op functions: call shared utilities. *)
  Array.iteri
    (fun t per_type ->
      Array.iteri
        (fun j fid ->
          let clo, chi = config.calls_per_func in
          let ncalls = Rng.int_in st.rng clo chi in
          let callees =
            List.init ncalls (fun _ ->
                `Direct (shared_fids.(Rng.int st.rng (max 1 (Array.length shared_fids)))))
          in
          funcs.(fid) <-
            gen_branchy_func st ~fid ~fname:(Printf.sprintf "op_%d_%d" t j)
              ~nblocks:(Rng.int_in st.rng blo bhi) ~callees ~cold_callees:(some_cold ())
              ~extra_tail:[])
        per_type)
    op_fids;
  (* Handlers. *)
  Array.iteri
    (fun t fid ->
      let ops = Array.to_list op_fids.(t) in
      let fp_target =
        if config.fp_sites_per_type && Array.length shared_fids > 0 then
          Some shared_fids.(Rng.int st.rng (Array.length shared_fids))
        else None
      in
      let scan = if config.scan_tx = Some t then Some scan_len_slot else None in
      funcs.(fid) <-
        gen_handler st ~fid ~fname:(Printf.sprintf "handler_%d" t) ~ops
          ~vtable:(handler_vt t) ~fp_target ~scan ~cold_callees:(some_cold ()))
    handler_fids;
  (* Parser. *)
  (match parser_fid with
  | Some fid ->
    let table_prob =
      if config.jump_table_sites > 0 then
        float_of_int config.jump_table_sites /. float_of_int config.parser_blocks
      else 0.0
    in
    funcs.(fid) <-
      gen_branchy_func ~table_prob st ~fid ~fname:"parse_query" ~nblocks:config.parser_blocks
        ~callees:[] ~cold_callees:(some_cold ()) ~extra_tail:[]
  | None -> ());
  (* Main. *)
  funcs.(main_fid) <-
    gen_main st ~fid:main_fid ~tx_cum_slots ~handler_fids ~parser_fid
      ~vtable:(if config.use_vtable_dispatch then Some 0 else None);
  let sites = Array.of_list (List.rev st.sites_acc) in
  let program =
    { Ir.funcs;
      vtables;
      entry_fid = main_fid;
      globals_words = st.next_slot;
      global_init = [] }
  in
  Ir.validate program;
  { cfg = config;
    program;
    sites;
    tx_cum_slots;
    scan_len_slot;
    handler_fids;
    parser_fid;
    main_fid }

(* ---- input -> parameter vector ---- *)

(* Slot values a given input assigns: cumulative transaction thresholds,
   scan length, and one threshold per branch site. Error sites are cold for
   every input; normal sites take their program-level base direction, which
   unstable sites flip per input with [flip_prob]. *)
let make_params t (input : Input.t) : (int * int) list =
  if Array.length input.Input.mix <> t.cfg.n_tx_types then
    invalid_arg "Gen.make_params: mix length mismatch";
  let cum = ref 0.0 in
  let tx_params =
    List.init t.cfg.n_tx_types (fun i ->
        cum := !cum +. input.Input.mix.(i);
        (t.tx_cum_slots.(i), int_of_float (!cum *. 1000.0)))
  in
  let site_params =
    Array.to_list t.sites
    |> List.map (fun site ->
           match site.kind with
           | Error -> (site.slot, 2)
           | Normal ->
             let rng = Rng.create ((input.Input.bias_seed * 1000003) + site.site_id) in
             let flip = (not site.stable) && Rng.bool rng t.cfg.flip_prob in
             let hot_taken = if flip then not site.base_hot_taken else site.base_hot_taken in
             let hot_lo, hot_hi = t.cfg.bias_hot and cold_lo, cold_hi = t.cfg.bias_cold in
             let p =
               if hot_taken then Rng.int_in rng hot_lo hot_hi
               else Rng.int_in rng cold_lo cold_hi
             in
             (site.slot, p))
  in
  ((t.scan_len_slot, input.Input.scan_len * scan_stride_words) :: tx_params) @ site_params
