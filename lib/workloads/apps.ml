(* The paper's benchmark applications, scaled to the simulator.

   Transaction-type indices define each app's operation classes; inputs are
   the Sysbench / YCSB / memaslap / RISC-V-benchmark analogs. Scale is
   roughly 1:100 versus the paper's binaries (Table I), with front-end
   pressure preserved by scaling the L1i-relative footprint rather than
   absolute size. *)

let mysql_tx_types = 6
(* 0 point_select, 1 range_select, 2 update_index, 3 update_nonindex,
   4 insert, 5 delete *)

let mysql_like ?(seed = 11) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = mysql_tx_types;
      funcs_per_type = 30;
      shared_funcs = 200;
      cold_funcs = 800;
      parser_blocks = 240;
      jump_table_sites = 8;
      blocks_per_func = (5, 12);
      body_instrs = (4, 10);
      calls_per_func = (2, 4);
      use_vtable_dispatch = true;
      fp_sites_per_type = true;
      hot_taken_prob = 0.33;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let n = mysql_tx_types in
  let mk = Input.make in
  let inputs =
    [ mk ~name:"point_select" ~mix:(Input.pure ~n_types:n 0) ~bias_seed:101 ();
      mk ~name:"read_only" ~mix:(Input.weighted ~n_types:n [ (0, 0.7); (1, 0.3) ]) ~bias_seed:102 ();
      mk ~name:"read_write"
        ~mix:(Input.weighted ~n_types:n [ (0, 0.4); (1, 0.2); (2, 0.1); (3, 0.1); (4, 0.1); (5, 0.1) ])
        ~bias_seed:103 ();
      mk ~name:"write_only"
        ~mix:(Input.weighted ~n_types:n [ (2, 0.3); (3, 0.3); (4, 0.2); (5, 0.2) ])
        ~bias_seed:104 ();
      mk ~name:"update_index" ~mix:(Input.pure ~n_types:n 2) ~bias_seed:105 ();
      mk ~name:"update_nonindex" ~mix:(Input.pure ~n_types:n 3) ~bias_seed:106 ();
      mk ~name:"insert" ~mix:(Input.pure ~n_types:n 4) ~bias_seed:107 ();
      mk ~name:"delete" ~mix:(Input.pure ~n_types:n 5) ~bias_seed:108 () ]
  in
  Workload.build ~name:"mysql" ~inputs ~nthreads:4 gen

let mongodb_tx_types = 4
(* 0 read, 1 update, 2 insert, 3 scan *)

let mongodb_like ?(seed = 22) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = mongodb_tx_types;
      funcs_per_type = 34;
      shared_funcs = 200;
      cold_funcs = 800;
      parser_blocks = 200;
      blocks_per_func = (5, 12);
      body_instrs = (4, 10);
      calls_per_func = (2, 4);
      use_vtable_dispatch = true;
      hot_taken_prob = 0.33;
      scan_tx = Some 3 }
  in
  let gen = Gen.generate cfg in
  let n = mongodb_tx_types in
  let mk = Input.make in
  let scan_len = 96 in
  (* elements per scan; the rotating cursor walks a 1 MiB region, so every
     element is a fresh DRAM line *)
  let inputs =
    [ mk ~name:"read95_insert5" ~mix:(Input.weighted ~n_types:n [ (0, 0.95); (2, 0.05) ])
        ~bias_seed:201 ();
      mk ~name:"read_update" ~mix:(Input.weighted ~n_types:n [ (0, 0.5); (1, 0.5) ])
        ~bias_seed:202 ();
      mk ~name:"scan95_insert5" ~mix:(Input.weighted ~n_types:n [ (3, 0.95); (2, 0.05) ])
        ~bias_seed:203 ~scan_len () ]
  in
  Workload.build ~name:"mongodb" ~inputs ~nthreads:4 gen

let memcached_tx_types = 2
(* 0 get, 1 set *)

let memcached_like ?(seed = 33) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = memcached_tx_types;
      funcs_per_type = 10;
      shared_funcs = 30;
      cold_funcs = 40;
      parser_blocks = 24;
      blocks_per_func = (3, 6);
      use_vtable_dispatch = false;
      fp_sites_per_type = true;
      hot_taken_prob = 0.45;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let n = memcached_tx_types in
  let mk = Input.make in
  let inputs =
    [ mk ~name:"set10_get90" ~mix:(Input.weighted ~n_types:n [ (0, 0.9); (1, 0.1) ])
        ~bias_seed:301 ();
      mk ~name:"set50_get50" ~mix:(Input.weighted ~n_types:n [ (0, 0.5); (1, 0.5) ])
        ~bias_seed:302 () ]
  in
  Workload.build ~name:"memcached" ~inputs ~nthreads:4 gen

(* Verilator: a single-threaded chip simulator dominated by one enormous
   generated evaluation kernel (the parser slot) whose hot path depends
   strongly on the simulated program. *)
let verilator_like ?(seed = 44) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = 1;
      funcs_per_type = 45;
      shared_funcs = 160;
      cold_funcs = 500;
      parser_blocks = 5000;
      jump_table_sites = 5;
      blocks_per_func = (5, 11);
      body_instrs = (7, 14);
      calls_per_func = (2, 4);
      loop_prob = 0.18;
      use_vtable_dispatch = false;
      fp_sites_per_type = false;
      stable_site_fraction = 0.25;
      flip_prob = 0.7;
      hot_taken_prob = 0.52;
      bias_hot = (978, 998);
      bias_cold = (2, 14);
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let mk = Input.make in
  let mix = Input.pure ~n_types:1 0 in
  let inputs =
    [ mk ~name:"dhrystone" ~mix ~bias_seed:401 ();
      mk ~name:"median" ~mix ~bias_seed:402 ();
      mk ~name:"vvadd" ~mix ~bias_seed:403 () ]
  in
  Workload.build ~name:"verilator" ~inputs ~nthreads:1 gen

(* Clang: the BAM batch workload. One process per "source file": a finite,
   single-threaded run whose input (file) decides the hot paths through the
   compiler. *)
let clang_tx_types = 3
(* 0 parse/sema, 1 codegen, 2 optimize *)

let clang_file ~file_index =
  Input.make
    ~name:(Printf.sprintf "file_%03d" file_index)
    ~mix:(Input.weighted ~n_types:clang_tx_types [ (0, 0.45); (1, 0.3); (2, 0.25) ])
    ~bias_seed:(500 + file_index) ()

let clang_like ?(seed = 55) ?(tx_per_file = 400) ?(n_files = 40) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = clang_tx_types;
      funcs_per_type = 18;
      shared_funcs = 120;
      cold_funcs = 700;
      parser_blocks = 180;
      blocks_per_func = (4, 9);
      use_vtable_dispatch = true;
      tx_limit = Some tx_per_file;
      stable_site_fraction = 0.7;
      flip_prob = 0.3;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let inputs = List.init n_files (fun i -> clang_file ~file_index:i) in
  Workload.build ~name:"clang" ~inputs ~nthreads:1 gen

(* Never-returning event-loop server with no cold code and no error paths:
   every function is on the hot path, so a campaign that keeps
   re-optimizing can retire the entire original text — including the entry
   function, which never returns and is only reachable by OSR. The
   acceptance workload for true on-stack replacement. *)
let event_loop ?(seed = 13) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = 2;
      funcs_per_type = 3;
      shared_funcs = 6;
      cold_funcs = 0;
      parser_blocks = 12;
      jump_table_sites = 2;
      blocks_per_func = (3, 5);
      error_prob = 0.0;
      tx_limit = None;
      use_vtable_dispatch = true;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let inputs =
    [ Input.make ~name:"steady" ~mix:[| 0.6; 0.4 |] ~bias_seed:911 ();
      Input.make ~name:"shifted" ~mix:[| 0.1; 0.9 |] ~bias_seed:912 () ]
  in
  Workload.build ~name:"event_loop" ~inputs ~nthreads:2 gen

(* Small throwaway application for unit and property tests. *)
let tiny ?(seed = 7) ?(tx_limit = Some 40) () =
  let cfg =
    { Gen.default with
      Gen.seed;
      n_tx_types = 2;
      funcs_per_type = 3;
      shared_funcs = 6;
      cold_funcs = 4;
      parser_blocks = 12;
      jump_table_sites = 2;
      blocks_per_func = (3, 5);
      tx_limit;
      use_vtable_dispatch = true;
      scan_tx = None }
  in
  let gen = Gen.generate cfg in
  let inputs =
    [ Input.make ~name:"a" ~mix:[| 0.8; 0.2 |] ~bias_seed:901 ();
      Input.make ~name:"b" ~mix:[| 0.2; 0.8 |] ~bias_seed:902 () ]
  in
  Workload.build ~name:"tiny" ~inputs ~nthreads:2 gen
