(* Predecoded basic blocks: the flat-array representation behind the
   decoded-block execution engine.

   A block is a maximal straight-line run of instructions starting at
   [b_start]: it extends instruction by instruction until a control transfer
   (which, if present, is always the *last* entry), until the next address
   holds no instruction, or until [max_len]. Entries are stored as parallel
   unboxed arrays (address, byte size, instruction) so the executor touches
   no hash table and allocates nothing while running a block.

   Decoding is pure with respect to the machine: it only reads the code map
   (via the [read] callback), so predecoding ahead of execution has no
   microarchitectural side effects. *)

type block = {
  b_start : int;  (* address of the first instruction *)
  b_end : int;  (* one past the last instruction's last byte *)
  b_addrs : int array;  (* instruction start addresses, ascending *)
  b_sizes : int array;  (* byte sizes, [b_sizes.(i) = Instr.size b_instrs.(i)] *)
  b_instrs : Instr.t array;
}

let length b = Array.length b.b_instrs

(* Default cap on block length. Bounds both decode look-ahead and the staleness
   window between the per-instruction limit checks of the executor. *)
let default_max_len = 64

(* Decode the block starting at [start]. Returns [None] when [start] itself
   holds no instruction (the caller faults, exactly as a fetch would).

   Invariant relied on by the executor: every entry except possibly the last
   is NOT a control transfer, so a block body always falls through
   internally and only its final instruction may redirect the PC. *)
let decode ~read ?(max_len = default_max_len) start =
  match read start with
  | None -> None
  | Some first ->
    let max_len = max 1 max_len in
    let addrs = Array.make max_len 0 in
    let sizes = Array.make max_len 0 in
    let instrs = Array.make max_len first in
    let n = ref 0 in
    let addr = ref start in
    let continue = ref (Some first) in
    while !continue <> None && !n < max_len do
      let instr = match !continue with Some i -> i | None -> assert false in
      let size = Instr.size instr in
      addrs.(!n) <- !addr;
      sizes.(!n) <- size;
      instrs.(!n) <- instr;
      incr n;
      addr := !addr + size;
      (* A control transfer ends the block; so does running off mapped code
         (the next dispatch will fault or decode a fresh block there). *)
      continue := (if Instr.is_control_flow instr then None else read !addr)
    done;
    Some
      { b_start = start;
        b_end = !addr;
        b_addrs = Array.sub addrs 0 !n;
        b_sizes = Array.sub sizes 0 !n;
        b_instrs = Array.sub instrs 0 !n }

(* Flatten several blocks into one trace-shaped pseudo-block. Used by the
   superblock tier to stitch a hot path: the result deliberately relaxes the
   only-last-entry-is-control-flow invariant (internal entries may be
   branches the trace predicts taken or untaken), so it must only be run by
   an executor that guards each internal control transfer. [b_end] is the
   end of the *last* constituent — blocks need not be byte-contiguous, since
   a trace follows jumps. *)
let concat = function
  | [] -> invalid_arg "Predecode.concat: empty"
  | first :: _ as bs ->
    let last = List.nth bs (List.length bs - 1) in
    { b_start = first.b_start;
      b_end = last.b_end;
      b_addrs = Array.concat (List.map (fun b -> b.b_addrs) bs);
      b_sizes = Array.concat (List.map (fun b -> b.b_sizes) bs);
      b_instrs = Array.concat (List.map (fun b -> b.b_instrs) bs) }

(* True when the block's decoded entries still match [read]'s view of the
   code map — the coherence predicate the invalidation discipline maintains. *)
let coherent ~read b =
  let ok = ref true in
  Array.iteri
    (fun i addr -> if read addr <> Some b.b_instrs.(i) then ok := false)
    b.b_addrs;
  !ok

let pp fmt b =
  Fmt.pf fmt "@[<v>block 0x%x..0x%x (%d instrs)@,%a@]" b.b_start b.b_end (length b)
    (Fmt.iter_bindings ~sep:Fmt.cut
       (fun f arr -> Array.iteri (fun i x -> f i x) arr)
       (fun fmt (i, instr) -> Fmt.pf fmt "  0x%x: %a" b.b_addrs.(i) Instr.pp instr))
    b.b_instrs
