(** The virtual instruction set.

    A small CISC-flavoured ISA with variable-length instructions so that code
    layout has byte-accurate effects on the L1i, iTLB and BTB models. Direct
    control transfers carry absolute byte addresses once a binary has been
    laid out; pre-layout code uses the symbolic form in {!Ir}. *)

(** Register index in [0, num_regs). *)
type reg = int

val num_regs : int

type alu_op = Add | Sub | Mul | Xor | And | Or | Shl | Shr

(** Conditions compare a register against zero. *)
type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Alu of alu_op * reg * reg * reg  (** dst <- src1 op src2 *)
  | Alui of alu_op * reg * reg * int  (** dst <- src op imm *)
  | Movi of reg * int
  | Load of reg * reg * int  (** dst <- data\[base + off\] *)
  | Store of reg * reg * int  (** data\[base + off\] <- src *)
  | Branch of cond * reg * int  (** if (reg cond 0) goto target *)
  | Jump of int
  | JumpInd of reg  (** computed goto, used by jump tables *)
  | Call of int
  | CallInd of reg
  | Ret
  | FpCreate of reg * int
      (** dst <- address of function; the function-pointer creation site that
          OCOLOS's compiler pass intercepts (Section IV-C2 of the paper) *)
  | VtLoad of reg * int * int  (** dst <- vtable\[vid\].(slot) *)
  | Rand of reg * int
      (** dst <- prng() mod bound. Advances a per-thread deterministic PRNG;
          layout transformations preserve the dynamic instruction sequence so
          draws align across layouts, keeping semantics comparable. *)
  | TxMark  (** end-of-request marker for throughput accounting *)
  | Halt

(** Encoded size in bytes (x86-64-like). *)
val size : t -> int

(** Every register operand is in [0, num_regs). Checked once per
    instruction at code-map write time ([Addr_space.write_code]), which is
    what lets the interpreter access register files unchecked. *)
val valid_regs : t -> bool

val is_control_flow : t -> bool

(** True for instructions that end a basic block (calls do not). *)
val is_terminator : t -> bool

val is_call : t -> bool

(** Static code-address operand of direct transfers and [FpCreate]. *)
val static_target : t -> int option

(** Rewrite the static code-address operand. Raises [Invalid_argument] when
    the instruction has none. *)
val with_target : t -> int -> t

val eval_cond : cond -> int -> bool
val eval_alu : alu_op -> int -> int -> int

val pp_alu_op : Format.formatter -> alu_op -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
