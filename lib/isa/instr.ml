(* The virtual instruction set.

   A small CISC-flavoured ISA with variable-length instructions so that code
   layout has byte-accurate effects on the L1i, iTLB and BTB models. Control
   transfers carry absolute byte addresses once a binary is laid out;
   pre-layout code uses the symbolic form in {!Ir}. *)

type reg = int

let num_regs = 16

type alu_op = Add | Sub | Mul | Xor | And | Or | Shl | Shr

type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Alu of alu_op * reg * reg * reg (* dst <- src1 op src2 *)
  | Alui of alu_op * reg * reg * int (* dst <- src op imm *)
  | Movi of reg * int (* dst <- imm *)
  | Load of reg * reg * int (* dst <- data[base + off] *)
  | Store of reg * reg * int (* data[base + off] <- src *)
  | Branch of cond * reg * int (* if (reg cond 0) goto target *)
  | Jump of int
  | JumpInd of reg (* goto reg; used by jump tables *)
  | Call of int (* direct call *)
  | CallInd of reg (* indirect call through register *)
  | Ret
  | FpCreate of reg * int (* dst <- &func; interceptable creation site *)
  | VtLoad of reg * int * int (* dst <- vtable[vid].(slot) *)
  | Rand of reg * int (* dst <- prng() mod bound; layout-invariant *)
  | TxMark (* end-of-request marker for throughput accounting *)
  | Halt

(* Byte sizes chosen to resemble x86-64 encodings; layout quality depends on
   hot instructions packing densely into 64-byte lines. *)
let size = function
  | Nop -> 1
  | Alu _ -> 3
  | Alui _ -> 4
  | Movi _ -> 5
  | Load _ | Store _ -> 4
  | Branch _ -> 4
  | Jump _ -> 5
  | JumpInd _ -> 2
  | Call _ -> 5
  | CallInd _ -> 2
  | Ret -> 1
  | FpCreate _ -> 7
  | VtLoad _ -> 7
  | Rand _ -> 4
  | TxMark -> 1
  | Halt -> 1

(* Every register operand is in [0, num_regs). [Addr_space.write_code]
   rejects instructions that fail this, which is what lets the interpreter
   access register files unchecked. *)
let valid_regs instr =
  let ok r = r >= 0 && r < num_regs in
  match instr with
  | Nop | TxMark | Halt | Ret | Jump _ | Call _ -> true
  | Alu (_, d, a, b) -> ok d && ok a && ok b
  | Alui (_, d, a, _) -> ok d && ok a
  | Movi (d, _) | Rand (d, _) | FpCreate (d, _) | VtLoad (d, _, _) -> ok d
  | Load (d, b, _) -> ok d && ok b
  | Store (s, b, _) -> ok s && ok b
  | Branch (_, r, _) | JumpInd r | CallInd r -> ok r

let is_control_flow = function
  | Branch _ | Jump _ | JumpInd _ | Call _ | CallInd _ | Ret | Halt -> true
  | Nop | Alu _ | Alui _ | Movi _ | Load _ | Store _ | FpCreate _ | VtLoad _ | Rand _
  | TxMark ->
    false

(* Instructions that end a basic block during CFG reconstruction. Calls do
   not: execution resumes at the next instruction. *)
let is_terminator = function
  | Branch _ | Jump _ | JumpInd _ | Ret | Halt -> true
  | Nop | Alu _ | Alui _ | Movi _ | Load _ | Store _ | Call _ | CallInd _ | FpCreate _
  | VtLoad _ | Rand _ | TxMark ->
    false

let is_call = function
  | Call _ | CallInd _ -> true
  | Nop | Alu _ | Alui _ | Movi _ | Load _ | Store _ | Branch _ | Jump _ | JumpInd _
  | Ret | FpCreate _ | VtLoad _ | Rand _ | TxMark | Halt ->
    false

(* Static target of a direct control transfer or fp materialization. *)
let static_target = function
  | Branch (_, _, t) | Jump t | Call t | FpCreate (_, t) -> Some t
  | Nop | Alu _ | Alui _ | Movi _ | Load _ | Store _ | JumpInd _ | CallInd _ | Ret
  | VtLoad _ | Rand _ | TxMark | Halt ->
    None

(* Rewrite the static code-address operand, used by the emitter's relocation
   pass and by OCOLOS when rebasing stack-live function copies. *)
let with_target instr target =
  match instr with
  | Branch (c, r, _) -> Branch (c, r, target)
  | Jump _ -> Jump target
  | Call _ -> Call target
  | FpCreate (r, _) -> FpCreate (r, target)
  | Nop | Alu _ | Alui _ | Movi _ | Load _ | Store _ | JumpInd _ | CallInd _ | Ret
  | VtLoad _ | Rand _ | TxMark | Halt ->
    invalid_arg "Instr.with_target: instruction has no static target"

(* [@inline] on the two evaluators: both sit on the interpreter's
   per-instruction path and are small dispatch tables. *)
let[@inline] eval_cond cond v =
  match cond with
  | Eq -> v = 0
  | Ne -> v <> 0
  | Lt -> v < 0
  | Ge -> v >= 0
  | Gt -> v > 0
  | Le -> v <= 0

let[@inline] eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Xor -> a lxor b
  | And -> a land b
  | Or -> a lor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)

let pp_alu_op fmt op =
  Fmt.string fmt
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Xor -> "xor"
    | And -> "and"
    | Or -> "or"
    | Shl -> "shl"
    | Shr -> "shr")

let pp_cond fmt c =
  Fmt.string fmt
    (match c with Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge" | Gt -> "gt" | Le -> "le")

let pp fmt = function
  | Nop -> Fmt.string fmt "nop"
  | Alu (op, d, a, b) -> Fmt.pf fmt "%a r%d, r%d, r%d" pp_alu_op op d a b
  | Alui (op, d, a, imm) -> Fmt.pf fmt "%ai r%d, r%d, %d" pp_alu_op op d a imm
  | Movi (d, imm) -> Fmt.pf fmt "movi r%d, %d" d imm
  | Load (d, b, off) -> Fmt.pf fmt "load r%d, [r%d+%d]" d b off
  | Store (s, b, off) -> Fmt.pf fmt "store r%d, [r%d+%d]" s b off
  | Branch (c, r, t) -> Fmt.pf fmt "b.%a r%d, 0x%x" pp_cond c r t
  | Jump t -> Fmt.pf fmt "jmp 0x%x" t
  | JumpInd r -> Fmt.pf fmt "jmp *r%d" r
  | Call t -> Fmt.pf fmt "call 0x%x" t
  | CallInd r -> Fmt.pf fmt "call *r%d" r
  | Ret -> Fmt.string fmt "ret"
  | FpCreate (d, t) -> Fmt.pf fmt "lea r%d, &0x%x" d t
  | VtLoad (d, vid, slot) -> Fmt.pf fmt "vtload r%d, vt%d[%d]" d vid slot
  | Rand (d, bound) -> Fmt.pf fmt "rand r%d, %d" d bound
  | TxMark -> Fmt.string fmt "txmark"
  | Halt -> Fmt.string fmt "halt"

let to_string i = Fmt.str "%a" pp i
