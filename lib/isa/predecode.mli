(** Predecoded basic blocks: flat-array representation for the decoded-block
    execution engine.

    A block is a maximal straight-line run starting at [b_start]; only its
    last entry may be a control transfer. Decoding reads the code map
    through a callback and has no microarchitectural side effects. *)

type block = {
  b_start : int;  (** address of the first instruction *)
  b_end : int;  (** one past the last instruction's last byte *)
  b_addrs : int array;  (** instruction start addresses, ascending *)
  b_sizes : int array;  (** byte sizes, [b_sizes.(i) = Instr.size b_instrs.(i)] *)
  b_instrs : Instr.t array;
}

val length : block -> int

(** Default cap on entries per block. *)
val default_max_len : int

(** [decode ~read start] decodes the block at [start], stopping after a
    control transfer, before an unmapped address, or at [max_len] entries.
    [None] when [start] itself holds no instruction. *)
val decode : read:(int -> Instr.t option) -> ?max_len:int -> int -> block option

(** Flatten several blocks into one trace-shaped pseudo-block (a superblock
    body). Relaxes the only-last-entry-is-control-flow invariant: internal
    entries may be control transfers, so the result must be run by an
    executor that guards every internal transfer. Raises [Invalid_argument]
    on the empty list. *)
val concat : block list -> block

(** Do the decoded entries still match the code map? *)
val coherent : read:(int -> Instr.t option) -> block -> bool

val pp : Format.formatter -> block -> unit
