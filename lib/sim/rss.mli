(** Maximum resident set size model (paper Table I): mapped text,
    initialized data, touched thread-local regions, a fixed runtime
    baseline, and — for OCOLOS — the transient working set of the injected
    text, profile buffers and BOLT's IR. *)

val baseline_bytes : int
val word_bytes : int
val data_bytes : Ocolos_binary.Binary.t -> int
val thread_bytes : Ocolos_workloads.Input.t -> int

val of_binary :
  ?nthreads:int -> Ocolos_binary.Binary.t -> input:Ocolos_workloads.Input.t -> int

(** [resident_extra] is the transient OSR overhead still mapped at the
    peak — stub/copy residue plus inherited jump-table words
    ({!Ocolos_core.Ocolos.resident_extra_bytes}); it reaches 0 after
    convergence once migrated frames drain. *)
val ocolos :
  ?nthreads:int ->
  ?resident_extra:int ->
  Ocolos_binary.Binary.t ->
  input:Ocolos_workloads.Input.t ->
  stats:Ocolos_core.Ocolos.replacement_stats ->
  profile_records:int ->
  bolt_work_instrs:int ->
  int

val mib : int -> float
