(* Measurement driver shared by the benchmark harness and the examples.

   Provides the paper's experimental configurations: steady-state throughput
   of a binary under an input; profile collection runs; the four Fig. 5
   comparators (original, BOLT oracle, PGO oracle, BOLT average-case); and
   full online OCOLOS runs. *)

open Ocolos_workloads
open Ocolos_proc
open Ocolos_uarch
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics

type sample = {
  tps : float; (* transactions per simulated second *)
  counters : Counters.t; (* interval counters over the measurement window *)
  topdown : Counters.topdown;
}

let default_warmup = 0.6
let default_measure = 2.0

let interval_sample ~seconds counters =
  { tps = float_of_int counters.Counters.transactions /. seconds;
    counters;
    topdown = Counters.topdown counters }

(* Steady-state throughput of [binary] running [input]. *)
let steady ?(engine = `Blocks) ?binary ?nthreads ?(seed = 1234) ?(warmup = default_warmup)
    ?(measure = default_measure) (w : Workload.t) ~input =
  Trace.span "measure.steady" ~attrs:[ ("workload", Trace.S w.Workload.name) ] @@ fun sp ->
  let proc = Workload.launch ?binary ?nthreads ~seed w ~input in
  Proc.run ~engine ~cycle_limit:(Clock.seconds_to_cycles warmup) proc;
  Trace.clock warmup;
  let before = Proc.total_counters proc in
  Proc.run ~engine ~cycle_limit:(Clock.seconds_to_cycles (warmup +. measure)) proc;
  Trace.clock (warmup +. measure);
  let counters = Counters.diff (Proc.total_counters proc) before in
  let s = interval_sample ~seconds:measure counters in
  Trace.set_attr sp "tps" (Trace.F s.tps);
  Counters.observe_metrics ~prefix:"ocolos_steady" counters;
  s

(* Collect an LBR profile of [binary] (default: original) running [input]
   for [seconds], after a short warmup. This is the offline-profiling path
   used by the BOLT / PGO comparators. *)
let collect_profile ?binary ?nthreads ?(seed = 4321) ?(warmup = 0.3) ?(seconds = 2.0)
    ?perf_cfg (w : Workload.t) ~input =
  let binary = match binary with Some b -> b | None -> w.Workload.binary in
  let proc = Workload.launch ~binary ?nthreads ~seed w ~input in
  Proc.run ~cycle_limit:(Clock.seconds_to_cycles warmup) proc;
  let session = Ocolos_profiler.Perf.start ?cfg:perf_cfg proc in
  Proc.run ~cycle_limit:(Clock.seconds_to_cycles (warmup +. seconds)) proc;
  let samples = Ocolos_profiler.Perf.stop session in
  Ocolos_profiler.Perf2bolt.convert ~binary samples

(* Offline BOLT with a given profile (the BOLT-oracle / average-case
   configurations, depending on which profile is passed). *)
let bolt_binary ?config (w : Workload.t) profile =
  Ocolos_bolt.Bolt.run ?config ~binary:w.Workload.binary ~profile ()

(* Clang-PGO analog with the same profile. *)
let pgo_binary ?config (w : Workload.t) profile =
  Ocolos_pgo.Pgo.run ?config ~program:w.Workload.program ~binary:w.Workload.binary ~profile
    ~name:(w.Workload.name ^ ".pgo") ()

type ocolos_run = {
  post : sample; (* steady state after code replacement *)
  stats : Ocolos_core.Ocolos.replacement_stats;
  perf2bolt_seconds : float;
  bolt_seconds : float;
  profile : Ocolos_profiler.Profile.t;
  rollbacks : int; (* replacement attempts rolled back by injected faults *)
  attempts : int; (* total replacement attempts (rollbacks + the commit) *)
  resident_extra_bytes : int; (* stub/copy residue + inherited table words at commit *)
  breaker : Ocolos_core.Guard.breaker_state; (* supervision state after the run *)
  quarantined : int list; (* fids excluded from reordering by the guard *)
}

exception Replacement_failed of string

(* A full online OCOLOS cycle on a freshly launched process: warm up,
   profile the running process for [profile_s], BOLT in the background
   (charging contention stalls to the target), replace code (charging the
   stop-the-world pause), then measure steady state. Replacement runs
   transactionally: a rolled-back attempt charges its aborted pause to the
   target and is retried, up to [max_attempts] in total. *)
let ocolos_steady ?config ?guard ?nthreads ?(seed = 1234) ?(warmup = default_warmup)
    ?(profile_s = 2.0) ?(measure = default_measure) ?(max_attempts = 4) (w : Workload.t)
    ~input =
  let guard = match guard with Some g -> g | None -> Ocolos_core.Guard.create () in
  Trace.span "ocolos.run"
    ~attrs:[ ("workload", Trace.S w.Workload.name); ("seed", Trace.I seed) ]
  @@ fun run_sp ->
  let proc = Workload.launch ?nthreads ~seed w ~input in
  let oc = Ocolos_core.Ocolos.attach ?config proc in
  let cost =
    (match config with Some c -> c | None -> Ocolos_core.Ocolos.default_config).Ocolos_core.Ocolos.cost
  in
  let horizon = ref warmup in
  (* Keep the trace clock anchored to simulated seconds: every phase
     boundary below advances it, so span timestamps read as Sim.Clock
     time (plus the per-event microsecond tick). *)
  let advance s =
    horizon := !horizon +. s;
    Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc;
    Trace.clock !horizon
  in
  Trace.span "ocolos.warmup" (fun _ ->
      Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc;
      Trace.clock !horizon);
  Ocolos_core.Ocolos.start_profiling oc;
  advance profile_s;
  let profile, perf2bolt_seconds = Ocolos_core.Ocolos.stop_profiling oc in
  let result, bolt_seconds =
    Ocolos_core.Ocolos.run_bolt ~exclude:(Ocolos_core.Guard.quarantined guard) oc profile
  in
  Ocolos_core.Guard.record_func_failures guard result.Ocolos_bolt.Bolt.failed;
  (* Background perf2bolt + BOLT compete with the target for cycles. Only a
     bounded slice of that interval is actually simulated (it does not
     affect the post-replacement steady state we are measuring); the
     contention stall is charged for the simulated slice. Timeline.run
     simulates the full region when the region itself is the subject. *)
  let background = perf2bolt_seconds +. bolt_seconds in
  let bg_sim = Float.min background 1.5 in
  Trace.span "ocolos.background"
    ~attrs:
      [ ("perf2bolt_seconds", Trace.F perf2bolt_seconds);
        ("bolt_seconds", Trace.F bolt_seconds) ]
    (fun _ ->
      advance bg_sim;
      Proc.stall_all proc
        ~cycles:
          (Clock.seconds_to_cycles (bg_sim *. cost.Ocolos_core.Cost.background_contention))
        ~category:`Backend);
  (* Transactional replacement with bounded retries: each rolled-back
     attempt still pauses the target (the aborted mutations plus their
     undo), modeled as a pause over the journal entries undone. *)
  let rollbacks = ref 0 in
  let rec attempt n =
    match Ocolos_core.Txn.replace_code oc result with
    | Ocolos_core.Txn.Committed stats -> stats
    (* No [verify] gate is passed above, so the transaction cannot report a
       divergence; measurement runs pay the shadow cost separately. *)
    | Ocolos_core.Txn.Diverged dv ->
      raise (Replacement_failed (Fmt.str "shadow divergence: %s" dv.Ocolos_core.Txn.dv_reason))
    | Ocolos_core.Txn.Rolled_back rb ->
      incr rollbacks;
      let rb_pause =
        Ocolos_core.Cost.pause_seconds cost ~sites:rb.Ocolos_core.Txn.rb_undone ~bytes:0
      in
      Metrics.sample ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds" rb_pause;
      Proc.stall_all proc ~cycles:(Clock.seconds_to_cycles rb_pause) ~category:`Backend;
      if n >= max_attempts then begin
        (* The breaker hears about the failed campaign before we raise, so a
           continuous driver sharing [guard] backs off instead of hammering. *)
        Ocolos_core.Guard.campaign_failed guard ~now_s:!horizon;
        Ocolos_core.Guard.export guard;
        raise
          (Replacement_failed
             (Fmt.str "all %d attempts rolled back (last at %s, hit %d)" max_attempts
                rb.Ocolos_core.Txn.rb_point rb.Ocolos_core.Txn.rb_hit))
      end
      else attempt (n + 1)
  in
  let stats = attempt 1 in
  (* The drain-window RSS peak: residue and inherited table words are
     largest right after the commit, before any frame drains. *)
  let resident_extra_bytes = Ocolos_core.Ocolos.resident_extra_bytes oc in
  Metrics.record "ocolos_resident_extra_bytes" (float_of_int resident_extra_bytes);
  Ocolos_core.Guard.campaign_succeeded guard;
  Ocolos_core.Guard.export guard;
  Proc.stall_all proc
    ~cycles:(Clock.seconds_to_cycles stats.Ocolos_core.Ocolos.pause_seconds)
    ~category:`Backend;
  (* Re-anchor the clock after the injected stalls so the measurement
     window is a full [measure] seconds of post-replacement execution. *)
  horizon := Float.max !horizon (Clock.cycles_to_seconds (Proc.max_cycles proc));
  Trace.clock !horizon;
  let before = Proc.total_counters proc in
  let counters =
    Trace.span "ocolos.measure" @@ fun sp ->
    advance measure;
    let counters = Counters.diff (Proc.total_counters proc) before in
    Trace.set_attr sp "tps"
      (Trace.F (float_of_int counters.Counters.transactions /. measure));
    counters
  in
  let post = interval_sample ~seconds:measure counters in
  (* Per-round IPC: one observation per completed OCOLOS round, so a
     continuous-reoptimization driver accumulates a distribution. *)
  Metrics.sample ~buckets:Metrics.ipc_buckets "ocolos_round_ipc" (Counters.ipc counters);
  Counters.observe_metrics ~prefix:"ocolos_post" counters;
  Trace.set_attr run_sp "attempts" (Trace.I (!rollbacks + 1));
  Trace.set_attr run_sp "rollbacks" (Trace.I !rollbacks);
  Trace.set_attr run_sp "post_tps" (Trace.F post.tps);
  { post;
    stats;
    perf2bolt_seconds;
    bolt_seconds;
    profile;
    rollbacks = !rollbacks;
    attempts = !rollbacks + 1;
    resident_extra_bytes;
    breaker = Ocolos_core.Guard.breaker_state guard;
    quarantined = Ocolos_core.Guard.quarantined guard }
