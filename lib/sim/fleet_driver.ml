(* Fleet rollout driver (see fleet_driver.mli). *)

open Ocolos_workloads
open Ocolos_proc
module Fleet = Ocolos_core.Fleet
module Ocolos = Ocolos_core.Ocolos
module Counters = Ocolos_uarch.Counters
module Stats = Ocolos_util.Stats
module Metrics = Ocolos_obs.Metrics
module Trace = Ocolos_obs.Trace
module Layout_health = Ocolos_obs.Layout_health
module Func_attrib = Ocolos_profiler.Func_attrib

type replica_report = {
  fr_id : int;
  fr_input : string;
  fr_version : int;
  fr_transactions : int;
  fr_matched : int;
  fr_p50 : float;
  fr_p99 : float;
  fr_queue_peak : int;
}

type report = {
  fd_replicas : replica_report list;
  fd_actions : (int * Fleet.action) list;
  fd_fleet_p50 : float;
  fd_fleet_p99 : float;
  fd_versions : int list;
  fd_converged : bool;
  fd_rollouts : int;
  fd_rollbacks : int;
}

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Fmt.str "fleet: versions [%s] %s  rollouts %d  rollbacks %d  p50 %.3fs  p99 %.3fs\n"
       (String.concat "; " (List.map string_of_int r.fd_versions))
       (if r.fd_converged then "(converged)" else "(MIXED)")
       r.fd_rollouts r.fd_rollbacks r.fd_fleet_p50 r.fd_fleet_p99);
  List.iter
    (fun fr ->
      Buffer.add_string b
        (Fmt.str
           "  replica %d (%s): C%d  tx %d  served %d  p50 %.3fs  p99 %.3fs  queue<=%d\n"
           fr.fr_id fr.fr_input fr.fr_version fr.fr_transactions fr.fr_matched fr.fr_p50
           fr.fr_p99 fr.fr_queue_peak))
    r.fd_replicas;
  List.iter
    (fun (tick, a) ->
      Buffer.add_string b (Fmt.str "  t=%2ds %s\n" tick (Fleet.action_to_string a)))
    r.fd_actions;
  Buffer.contents b

let run ?(replicas = 4) ?(seed = 1) ?(ticks = 30) ?(arrival_rate = 40.0)
    ?(inputs = [ "a" ]) ?config ?ocolos_config ?workload () =
  if replicas < 1 then invalid_arg "Fleet_driver.run: replicas < 1";
  if inputs = [] then invalid_arg "Fleet_driver.run: empty input list";
  let w = match workload with Some w -> w | None -> Apps.tiny ~tx_limit:None () in
  let input_names = Array.init replicas (fun i -> List.nth inputs (i mod List.length inputs)) in
  let procs =
    Array.init replicas (fun i ->
        Workload.launch ~seed:(seed + i) w ~input:(Workload.find_input w input_names.(i)))
  in
  let ols =
    Array.init replicas (fun i ->
        Openloop.create
          ~arrivals:
            (Openloop.poisson ~rate:arrival_rate ~seed:((seed * 10_000) + i)
               ~until_s:(float_of_int ticks)))
  in
  let probe i = Openloop.p99 ols.(i) in
  let config =
    let base = match config with Some c -> c | None -> Fleet.default_config in
    { base with Fleet.latency_probe = Some probe }
  in
  let fleet = Fleet.create ~config ?ocolos_config ?guard:None procs in
  let queue_peak = Array.make replicas 0 in
  let actions = ref [] in
  (* Layout-health recording is armed only when an accumulator is ambient
     (the CLI [explain] path): per-replica front-end attribution sessions
     plus a counter snapshot per replica so each tick yields one
     per-version window. *)
  let health = Layout_health.installed () <> None in
  let attribs = if health then Some (Array.map Func_attrib.start procs) else None in
  let prev_counters = Array.map Proc.total_counters procs in
  for i = 0 to ticks - 1 do
    let now_s = float_of_int (i + 1) in
    Array.iteri
      (fun id proc ->
        Trace.in_replica id @@ fun () ->
        (* Charge the previous tick's stop-the-world pauses as stalls
           before this window runs: a replacement empties serving capacity
           out of the following slice, and the open-loop queue shows it. *)
        let debt = Fleet.take_pause_debt fleet id in
        if debt > 0.0 then
          Proc.stall_all proc ~cycles:(Clock.seconds_to_cycles debt) ~category:`Backend;
        (* The code version live during this tick's window: Fleet.tick runs
           after the replicas advance, so the version read now is the one
           this window executed under. *)
        let oc = Fleet.ocolos fleet id in
        let version = Ocolos.version oc in
        let binary = Ocolos.current_binary oc in
        Proc.run ~cycle_limit:(Clock.seconds_to_cycles now_s) proc;
        (match attribs with
        | None -> ()
        | Some sessions ->
          let total = Proc.total_counters proc in
          let interval = Counters.diff total prev_counters.(id) in
          prev_counters.(id) <- total;
          Layout_health.window ~replica:id ~version (Counters.to_health_sample interval);
          List.iter
            (fun (fid, name, fc) -> Layout_health.func_window ~version ~fid ~name fc)
            (Func_attrib.drain sessions.(id) binary));
        let completed = (Proc.total_counters proc).Counters.transactions in
        let ol = ols.(id) in
        let depth_before = Openloop.queue_depth ol ~now_s in
        if depth_before > queue_peak.(id) then queue_peak.(id) <- depth_before;
        Metrics.sample
          ~labels:[ ("replica", string_of_int id) ]
          ~buckets:Metrics.queue_depth_buckets "ocolos_fleet_queue_depth"
          (float_of_int depth_before);
        Openloop.advance ol ~now_s ~completed)
      procs;
    (match Fleet.tick fleet ~now_s with
    | Fleet.Idle -> ()
    (* An open breaker repeats every tick until it cools; one entry says it. *)
    | Fleet.Breaker_open _
      when match !actions with (_, Fleet.Breaker_open _) :: _ -> true | _ -> false -> ()
    | a -> actions := (i, a) :: !actions)
  done;
  (match attribs with
  | None -> ()
  | Some sessions -> Array.iter Func_attrib.stop sessions);
  let versions = Fleet.versions fleet in
  let fd_replicas =
    Array.to_list
      (Array.mapi
         (fun id proc ->
           let ol = ols.(id) in
           let labels = [ ("replica", string_of_int id) ] in
           Array.iter
             (Metrics.sample ~labels ~buckets:Metrics.latency_buckets
                "ocolos_fleet_request_latency_seconds")
             (Openloop.latencies ol);
           Metrics.record ~labels "ocolos_fleet_p99_seconds" (Openloop.p99 ol);
           { fr_id = id;
             fr_input = input_names.(id);
             fr_version = List.nth versions id;
             fr_transactions = (Proc.total_counters proc).Counters.transactions;
             fr_matched = Openloop.matched ol;
             fr_p50 = Openloop.p50 ol;
             fr_p99 = Openloop.p99 ol;
             fr_queue_peak = queue_peak.(id) })
         procs)
  in
  let merged = Array.concat (Array.to_list (Array.map Openloop.latencies ols)) in
  let pct p = if Array.length merged = 0 then 0.0 else Stats.percentile merged p in
  let fleet_p99 = pct 99.0 in
  Metrics.record ~labels:[ ("replica", "fleet") ] "ocolos_fleet_p99_seconds" fleet_p99;
  ( { fd_replicas;
      fd_actions = List.rev !actions;
      fd_fleet_p50 = pct 50.0;
      fd_fleet_p99 = fleet_p99;
      fd_versions = versions;
      fd_converged = Fleet.converged fleet;
      fd_rollouts = Fleet.rollouts fleet;
      fd_rollbacks = Fleet.rollbacks fleet },
    fleet )
