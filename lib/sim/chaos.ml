(* Kill/restart chaos harness: the executable form of the paper's Section
   VII claim that the OCOLOS daemon "can fail at any point" without harming
   the target.

   Each scenario arms one fault point *lethally* (seeded, deterministic) and
   runs three coordinated experiments:

   - a KILL run on a finite workload: the daemon dies at the armed point,
     then the orphaned target runs to termination with its full taken-branch
     trace recorded;
   - a REFERENCE run, same seed: an identical daemon commits exactly the
     replacements the dead daemon had committed, is then stopped (no death,
     no further interference), and the target runs to termination;
   - a CONVERGENCE run on an endless workload: after the kill, a fresh
     daemon is stood up with {!Ocolos_core.Supervisor.restart} and must
     reach a committed replacement or a clean give-up.

   The trace property needs the two runs' target-visible histories to match
   instruction-for-instruction up to the death. Two mechanisms make that
   exact rather than approximate. First, all driving is by *instruction*
   budget ([cycle_limit = infinity]): the round-robin scheduler then
   interleaves threads in instruction space, so profiling stalls (PMI
   overhead, pause windows) shift cycle time but cannot reorder the branch
   stream. Second, the recorder hook is installed before {!Ocolos.attach}
   and the profiler *chains* to it, so the recorder sees every branch
   whether or not sampling is attached on either side. What remains is
   exactly the safety contract: perf/perf2bolt/BOLT deaths never touched
   the target, and a death inside the replacement transaction rolled back
   to the last committed version — so both runs retire the same
   transactions through the same layouts, byte-identically. *)

module F = Ocolos_util.Fault
module Events = Ocolos_obs.Events
module O = Ocolos_core.Ocolos
module Daemon = Ocolos_core.Daemon
module Supervisor = Ocolos_core.Supervisor
module Proc = Ocolos_proc.Proc
module Workload = Ocolos_workloads.Workload
module Apps = Ocolos_workloads.Apps

type config = {
  step_instrs : int; (* instructions the target advances between ticks *)
  max_ticks : int; (* tick budget for the kill and convergence runs *)
  trace_tx_limit : int; (* finite workload size for the trace runs *)
  drain_instrs : int; (* instruction budget to run a trace run to halt *)
  jump_tables : bool; (* keep jump tables so inject_data is reachable *)
  engine : [ `Reference | `Blocks | `Traces ]; (* target execution engine *)
  daemon : Daemon.config;
}

(* [regression_tolerance < 0] turns the drift gate into "always re-optimize
   once the amortization interval passes": continuous rounds (C1 -> C2 ->
   ...) happen on the tiny workload without needing an input shift, which is
   what makes the osr_*/gc_*/verify points reachable here. *)
let default_config =
  { step_instrs = 12_000;
    max_ticks = 60;
    trace_tx_limit = 1_500;
    drain_instrs = 50_000_000;
    jump_tables = true;
    engine = `Blocks;
    daemon =
      { Daemon.default_config with
        Daemon.profile_s = 1.0;
        warmup_s = 0.5;
        min_interval_s = 2.0;
        regression_tolerance = -0.5;
        retry_backoff_s = 0.5 } }

type outcome =
  | Verified of {
      death : Supervisor.death;
      survivor_version : int; (* committed version running at death *)
      trace_equal : bool;
      trace_len : int; (* branches recorded in the kill run *)
      terminated : bool; (* both trace runs drained to a halt *)
      cache_ok : bool; (* code caches validated after both drains *)
      convergence : Supervisor.convergence;
    }
  | Not_reached (* the armed point never fired within the tick budget *)

type result = { r_seed : int; r_point : string; r_outcome : outcome }

let verdict r =
  match r.r_outcome with
  | Not_reached -> `Unreached
  | Verified { trace_equal; convergence; terminated; cache_ok; _ } ->
    if
      trace_equal && terminated && cache_ok
      && (match convergence with
         | Supervisor.Converged_replaced _ | Supervisor.Converged_gave_up _ -> true
         | Supervisor.Diverged -> false)
    then `Pass
    else `Fail

let passed r = verdict r = `Pass

let outcome_to_string = function
  | Not_reached -> "not reached"
  | Verified
      { death; survivor_version; trace_equal; trace_len; terminated; cache_ok; convergence }
    ->
    Fmt.str "died at %s hit %d tick %d (C%d live): trace %s (%d branches%s%s), restart %s"
      death.Supervisor.d_point death.Supervisor.d_hit death.Supervisor.d_tick
      survivor_version
      (if trace_equal then "identical" else "DIVERGED")
      trace_len
      (if terminated then "" else ", NOT drained")
      (if cache_ok then "" else ", STALE CODE CACHE")
      (Supervisor.convergence_to_string convergence)

(* The label a failing scenario is reported and archived under. It must be
   self-describing on its own — a --trace-dir directory full of dumps is
   read long after the sweep output scrolled away — so it carries the armed
   point's fault domain, not just the point name (which for points like
   "commit" or "verify" says nothing about which subsystem was hit). *)
let scenario_label r =
  Fmt.str "seed%d-%s-%s" r.r_seed
    (F.domain_of r.r_point)
    (String.map (function '.' -> '_' | c -> c) r.r_point)

let result_to_string r =
  Fmt.str "seed %d %-10s %-22s %s" r.r_seed
    (F.domain_of r.r_point)
    r.r_point (outcome_to_string r.r_outcome)

(* ---- the three runs ---- *)

(* The tiny workload, optionally rebuilt with its jump tables kept (the
   default lowers them away, which leaves BOLT's output with no table data
   and makes the inject_data point unreachable). *)
let tiny_workload cfg ~tx_limit =
  let base = Apps.tiny ~tx_limit () in
  if not cfg.jump_tables then base
  else
    Workload.build ~no_jump_tables:false ~name:"tiny-jt" ~inputs:base.Workload.inputs
      ~nthreads:2 base.Workload.gen

(* A trace-run process: tiny workload, finite, recorder installed before
   attach so every later hook (the profiler's) chains to it. *)
(* Boundary-only frame maps: paused PCs then land mid-block, so OSR has to
   build compensation stubs — which is what makes the osr_stub point (and
   the gc_reap point, which needs residue to die) reachable in a sweep. *)
let ocolos_config ~fault =
  { O.default_config with
    O.fault = Some fault;
    bolt = { O.default_config.O.bolt with Ocolos_bolt.Bolt.exact_frame_maps = false } }

let launch_traced cfg ~seed =
  let w = tiny_workload cfg ~tx_limit:(Some cfg.trace_tx_limit) in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let buf = ref [] in
  proc.Proc.hooks.Proc.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        ignore cycles;
        buf := (tid, from_addr, to_addr, kind) :: !buf);
  let fault = F.create ~seed () in
  let oc = O.attach ~config:(ocolos_config ~fault) proc in
  (proc, oc, fault, buf)

(* Advance the target one tick's worth of instructions; tick i is simulated
   second i+1. Instruction driving, never cycle driving — see the module
   comment. *)
let make_step cfg proc i =
  Proc.run ~engine:cfg.engine ~cycle_limit:infinity ~max_instrs:cfg.step_instrs proc;
  float_of_int (i + 1)

let drain cfg proc =
  Proc.run ~engine:cfg.engine ~cycle_limit:infinity ~max_instrs:cfg.drain_instrs proc

(* Everything the equality check compares: the full recorded branch trace
   plus the workload's own end-state summary. *)
type tail = {
  t_trace : (int * int * int * Proc.branch_kind) list;
  t_checksums : int list;
  t_transactions : int;
  t_halted : bool;
  t_cache_ok : bool; (* decoded-block/trace caches validate after the drain *)
}

let finish cfg proc buf =
  drain cfg proc;
  { t_trace = List.rev !buf;
    t_checksums = Workload.checksums proc;
    t_transactions = Proc.transactions proc;
    t_halted = not (Proc.runnable proc);
    t_cache_ok = Proc.validate_code_cache proc }

(* Kill run: die at [point], then run the orphan to termination. Returns the
   death, the version that survived it, and the recorded tail. *)
let kill_run cfg ~seed ~point =
  let proc, oc, fault, buf = launch_traced cfg ~seed in
  let d = Daemon.create ~config:cfg.daemon oc proc in
  match
    Supervisor.kill_at ~fault ~point d ~step:(make_step cfg proc) ~max_ticks:cfg.max_ticks
  with
  | Supervisor.Survived -> None
  | Supervisor.Died death ->
    Events.log "chaos.daemon_killed"
      ~fields:
        [ ("point", Ocolos_obs.Trace.S death.Supervisor.d_point);
          ("hit", Ocolos_obs.Trace.I death.Supervisor.d_hit);
          ("tick", Ocolos_obs.Trace.I death.Supervisor.d_tick);
          ("survivor_version", Ocolos_obs.Trace.I (O.version oc)) ];
    Some (death, O.version oc, finish cfg proc buf)

(* Reference run: same seed, nothing armed. The scheduler hands out quantum
   turns from thread 0 at the start of every [Proc.run] call, so the merged
   branch order is only comparable if both runs chunk execution identically
   — the reference replays the kill run's step schedule exactly
   ([pre_steps] = steps executed before the death tick finished), ticking
   its daemon only until it has committed [version] replacements (the kill
   run's campaigns 1..v were fault-free, so they replay identically; its
   later profiling and rolled-back final transaction shift cycle time
   only). Then the daemon is stopped cold and the target drains. *)
let reference_run cfg ~seed ~version ~pre_steps =
  let proc, oc, _fault, buf = launch_traced cfg ~seed in
  let d = Daemon.create ~config:cfg.daemon oc proc in
  for i = 0 to pre_steps - 1 do
    let now_s = make_step cfg proc i in
    if O.version oc < version then ignore (Daemon.tick d ~now_s)
  done;
  if O.version oc <> version then None else Some (finish cfg proc buf)

(* Convergence run: endless workload, die at [point], restart against the
   live process ({!Ocolos.reattach} under the hood, the old daemon's guard
   carried across like an on-disk sidecar), drive to a terminal outcome. *)
let convergence_run cfg ~seed ~point =
  let w = tiny_workload cfg ~tx_limit:None in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let fault = F.create ~seed () in
  let oc = O.attach ~config:(ocolos_config ~fault) proc in
  let d = Daemon.create ~config:cfg.daemon oc proc in
  match
    Supervisor.kill_at ~fault ~point d ~step:(make_step cfg proc) ~max_ticks:cfg.max_ticks
  with
  | Supervisor.Survived -> None
  | Supervisor.Died _ ->
    let d' = Supervisor.restart ~config:cfg.daemon ~guard:(Daemon.guard d) proc in
    Events.log "chaos.daemon_restarted"
      ~fields:[ ("point", Ocolos_obs.Trace.S point); ("seed", Ocolos_obs.Trace.I seed) ];
    Some
      (Supervisor.run_to_convergence d' ~step:(make_step cfg proc)
         ~max_ticks:cfg.max_ticks)

(* ---- scenarios and sweeps ---- *)

(* References are shared: one per (seed, survivor version, step schedule),
   not per point. *)
type ref_cache = (int * int * int, tail option) Hashtbl.t

let new_cache () : ref_cache = Hashtbl.create 4

let scenario ?(config = default_config) ?cache ~seed ~point () =
  let cache = match cache with Some c -> c | None -> new_cache () in
  match kill_run config ~seed ~point with
  | None -> { r_seed = seed; r_point = point; r_outcome = Not_reached }
  | Some (death, survivor_version, killed_tail) ->
    let pre_steps = death.Supervisor.d_tick + 1 in
    let reference =
      match Hashtbl.find_opt cache (seed, survivor_version, pre_steps) with
      | Some r -> r
      | None ->
        let r = reference_run config ~seed ~version:survivor_version ~pre_steps in
        Hashtbl.add cache (seed, survivor_version, pre_steps) r;
        r
    in
    let trace_equal, terminated, cache_ok =
      match reference with
      | None -> (false, false, false) (* reference could not reach the survivor version *)
      | Some ref_tail ->
        ( killed_tail.t_trace = ref_tail.t_trace
          && killed_tail.t_checksums = ref_tail.t_checksums
          && killed_tail.t_transactions = ref_tail.t_transactions,
          killed_tail.t_halted && ref_tail.t_halted,
          killed_tail.t_cache_ok && ref_tail.t_cache_ok )
    in
    let convergence =
      match convergence_run config ~seed ~point with
      | Some c -> c
      | None -> Supervisor.Diverged (* died in the trace run but not here *)
    in
    Ocolos_obs.Metrics.count "ocolos_chaos_scenarios_total" 1;
    if not trace_equal then Ocolos_obs.Metrics.count "ocolos_chaos_divergence_total" 1;
    { r_seed = seed;
      r_point = point;
      r_outcome =
        Verified
          { death;
            survivor_version;
            trace_equal;
            trace_len = List.length killed_tail.t_trace;
            terminated;
            cache_ok;
            convergence } }

(* ---- fleet chaos ---- *)

(* Kill the *fleet* daemon mid-campaign and verify recovery. A staged
   rollout dies between replicas (e.g. kill "commit" on its (K+1)-th hit —
   the first post-canary promotion commit), stranding a mixed C_i/C_{i+1}
   fleet. The restart must detect the mix, revert the optimized replicas to
   C0, and drive a fresh homogeneous campaign to a terminal outcome. The
   fleet is deliberately heterogeneous (input "a" on even replicas, "b" on
   odd) so the aggregated profile is a genuine cross-replica union. *)

type fleet_outcome = {
  fo_death : Supervisor.death;
  fo_mixed_at_death : bool; (* did the kill strand a mixed fleet? *)
  fo_reverted : int list; (* replicas reverted to C0 on reattach *)
  fo_convergence : Supervisor.convergence;
  fo_final_versions : int list;
  fo_final_converged : bool;
}

type fleet_result = Fleet_verified of fleet_outcome | Fleet_not_reached

let fleet_passed = function
  | Fleet_not_reached -> false
  | Fleet_verified o -> (
    o.fo_final_converged
    && match o.fo_convergence with
       | Supervisor.Converged_replaced _ | Supervisor.Converged_gave_up _ -> true
       | Supervisor.Diverged -> false)

let fleet_result_to_string ~seed ~point = function
  | Fleet_not_reached -> Fmt.str "fleet seed %d %-22s not reached" seed point
  | Fleet_verified o ->
    Fmt.str
      "fleet seed %d %-10s %-22s died hit %d tick %d (%s), reverted [%s], restart %s -> [%s] %s"
      seed (F.domain_of point) point o.fo_death.Supervisor.d_hit
      o.fo_death.Supervisor.d_tick
      (if o.fo_mixed_at_death then "MIXED" else "homogeneous")
      (String.concat ";" (List.map string_of_int o.fo_reverted))
      (Supervisor.convergence_to_string o.fo_convergence)
      (String.concat ";" (List.map string_of_int o.fo_final_versions))
      (if o.fo_final_converged then "(converged)" else "(STILL MIXED)")

let fleet_scenario ?(config = default_config) ?(replicas = 4) ?schedule ~seed ~point () =
  let module Fleet = Ocolos_core.Fleet in
  let w = tiny_workload config ~tx_limit:None in
  (* One fault registry across the whole fleet: an Nth schedule counts hits
     fleet-wide, which is what lets a kill land between two replicas'
     commits. *)
  let fault = F.create ~seed () in
  let ocfg = ocolos_config ~fault in
  (* Mirror the daemon's continuous-replacement tolerance: BOLT on these
     tiny inputs can land IPC-neutral-or-worse layouts, and a canary that
     always rolls back would never put a kill point mid-promotion. The
     permissive verify thresholds keep rollouts flowing so fault schedules
     can strand genuinely mixed fleets. *)
  let fcfg =
    { Fleet.default_config with
      Fleet.daemon = config.daemon;
      max_ipc_drop = 1.0;
      max_p99_rise = infinity }
  in
  let procs =
    Array.init replicas (fun i ->
        Workload.launch ~seed:(seed + i) w
          ~input:(Workload.find_input w (if i mod 2 = 0 then "a" else "b")))
  in
  let fleet = Fleet.create ~config:fcfg ~ocolos_config:ocfg procs in
  let step i =
    Array.iter
      (fun p ->
        Proc.run ~engine:config.engine ~cycle_limit:infinity ~max_instrs:config.step_instrs p)
      procs;
    float_of_int (i + 1)
  in
  match
    Supervisor.kill_fleet_at ~fault ~point ?schedule fleet ~step ~max_ticks:config.max_ticks
  with
  | Supervisor.Survived -> Fleet_not_reached
  | Supervisor.Died death ->
    let mixed_at_death = Fleet.mixed fleet in
    Events.log "chaos.daemon_killed"
      ~fields:
        [ ("point", Ocolos_obs.Trace.S death.Supervisor.d_point);
          ("hit", Ocolos_obs.Trace.I death.Supervisor.d_hit);
          ("tick", Ocolos_obs.Trace.I death.Supervisor.d_tick);
          ("mixed", Ocolos_obs.Trace.B mixed_at_death) ];
    let fleet' =
      Supervisor.restart_fleet ~config:fcfg ~ocolos_config:ocfg
        ~guard:(Fleet.guard fleet) procs
    in
    Events.log "chaos.daemon_restarted"
      ~fields:
        [ ("point", Ocolos_obs.Trace.S point);
          ("reverted",
           Ocolos_obs.Trace.S
             (String.concat ";"
                (List.map string_of_int (Fleet.reverted_on_reattach fleet')))) ];
    let convergence =
      Supervisor.run_fleet_to_convergence fleet' ~step ~max_ticks:config.max_ticks
    in
    Fleet_verified
      { fo_death = death;
        fo_mixed_at_death = mixed_at_death;
        fo_reverted = Fleet.reverted_on_reattach fleet';
        fo_convergence = convergence;
        fo_final_versions = Fleet.versions fleet';
        fo_final_converged = Fleet.converged fleet' }

(* ---- miscompile containment chaos ---- *)

(* The bolt.miscompile points are survivable, not lethal: arming one makes
   {!Ocolos.run_bolt} hand a silently corrupted result to the daemon, and
   the property under test is that the two containment tiers stop it — a
   Tier-1 validation rejection (campaign aborted before [Txn.replace_code],
   offending functions quarantined, [validate.reject] events logged) or a
   Tier-2 shadow revert (the commit undone within the same tick, breaker
   tripped) — with the surviving target's taken-branch trace byte-identical
   to an uninterrupted run of the version that survived. A corrupted
   version that commits and stays committed is an escape. *)

module Miscompile = Ocolos_bolt.Miscompile

let miscompile_points = Miscompile.points

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Capture the structured event log emitted during [f] (the classification
   below reads bolt.miscompile.applied and validate.reject records from
   it), restoring whatever ambient log the caller had installed. *)
let with_events f =
  let prev = Events.installed () in
  let log = Events.create () in
  Events.install log;
  Fun.protect
    ~finally:(fun () ->
      match prev with Some l -> Events.install l | None -> Events.uninstall ())
    (fun () ->
      let r = f () in
      (r, log))

let count_events log ty = List.length (List.filter (fun e -> e.Events.e_type = ty) (Events.events log))

(* Total mutations the armed point actually applied, summed over the
   bolt.miscompile.applied events it logged. 0 means the corruption found
   no applicable site (e.g. drop_block on single-block functions), so the
   handed-over result is valid and any commit of it is benign. *)
let mc_mutations log point =
  List.fold_left
    (fun acc (e : Events.event) ->
      if
        e.Events.e_type = "bolt.miscompile.applied"
        && List.mem ("point", Ocolos_obs.Trace.S point) e.Events.e_fields
      then
        acc
        + (match List.assoc_opt "mutations" e.Events.e_fields with
          | Some (Ocolos_obs.Trace.I n) -> n
          | _ -> 0)
      else acc)
    0 (Events.events log)

(* Tick the daemon until the corrupted campaign reaches a containment
   terminal: a validation abort, a shadow revert, or — the escape — a
   replacement that sticks. Returns the terminal and the number of steps
   executed (the reference run's [pre_steps]). *)
let mc_drive cfg d fault ~point ~step =
  let rec loop i =
    if i >= cfg.max_ticks then (`None, i)
    else
      let now_s = step i in
      match Daemon.tick d ~now_s with
      | Daemon.Campaign_aborted reason
        when String.starts_with ~prefix:"validation rejected" reason ->
        (`Rejected reason, i + 1)
      | Daemon.Reverted { reason } -> (`Reverted reason, i + 1)
      | Daemon.Replaced stats when F.fired fault point > 0 ->
        (`Committed stats.O.version, i + 1)
      | _ -> loop (i + 1)
  in
  loop 0

type mc_outcome =
  | Mc_contained of {
      mc_tier : [ `Validate | `Shadow ];
      mc_reason : string;
      mc_mutations : int;
      mc_quarantined : int list; (* fids the Tier-1 rejection quarantined *)
      mc_reject_events : int; (* validate.reject events recorded *)
      mc_breaker_tripped : bool; (* breaker left Closed (Tier-2 terminal) *)
      mc_survivor_version : int; (* committed version running afterwards *)
      mc_trace_equal : bool;
      mc_terminated : bool;
      mc_cache_ok : bool;
      mc_convergence : Supervisor.convergence;
    }
  | Mc_escaped of { mc_version : int; mc_mutations : int }
  | Mc_benign (* the point fired but found no applicable corruption site *)
  | Mc_not_reached (* no campaign ran the point within the tick budget *)

type mc_result = { mc_seed : int; mc_point : string; mc_outcome : mc_outcome }

let mc_verdict r =
  match r.mc_outcome with
  | Mc_not_reached | Mc_benign -> `Unreached
  | Mc_escaped _ -> `Fail
  | Mc_contained o ->
    let tier_ok =
      match o.mc_tier with
      | `Validate -> o.mc_quarantined <> [] && o.mc_reject_events > 0
      | `Shadow -> o.mc_breaker_tripped
    in
    let conv_ok =
      match o.mc_convergence with
      | Supervisor.Converged_replaced _ | Supervisor.Converged_gave_up _ -> true
      | Supervisor.Diverged -> false
    in
    if tier_ok && o.mc_trace_equal && o.mc_terminated && o.mc_cache_ok && conv_ok then
      `Pass
    else `Fail

let mc_passed r = mc_verdict r = `Pass

let mc_outcome_to_string = function
  | Mc_not_reached -> "not reached"
  | Mc_benign -> "benign (0 mutations)"
  | Mc_escaped { mc_version; mc_mutations } ->
    Fmt.str "ESCAPED: %d mutations committed as C%d" mc_mutations mc_version
  | Mc_contained o ->
    Fmt.str "%s (%s; %d mutations%s%s, C%d live): trace %s%s%s, then %s"
      (match o.mc_tier with
      | `Validate -> "rejected pre-commit"
      | `Shadow -> "reverted post-commit")
      o.mc_reason o.mc_mutations
      (match o.mc_quarantined with
      | [] -> ""
      | fids ->
        Fmt.str ", quarantined [%s]" (String.concat ";" (List.map string_of_int fids)))
      (if o.mc_breaker_tripped then ", breaker tripped" else "")
      o.mc_survivor_version
      (if o.mc_trace_equal then "identical" else "DIVERGED")
      (if o.mc_terminated then "" else ", NOT drained")
      (if o.mc_cache_ok then "" else ", STALE CODE CACHE")
      (Supervisor.convergence_to_string o.mc_convergence)

let mc_result_to_string r =
  Fmt.str "seed %d %-15s %-31s %s" r.mc_seed
    (F.domain_of r.mc_point)
    r.mc_point
    (mc_outcome_to_string r.mc_outcome)

(* Finite traced run under the armed corruption: drive to the containment
   terminal, record guard state, stop the daemon cold, drain the target. *)
let mc_trace_run cfg ~seed ~point =
  let proc, oc, fault, buf = launch_traced cfg ~seed in
  F.arm fault point (F.Nth 1);
  let d = Daemon.create ~config:cfg.daemon oc proc in
  let (terminal, pre_steps), log =
    with_events (fun () -> mc_drive cfg d fault ~point ~step:(make_step cfg proc))
  in
  let quarantined = Daemon.quarantined d in
  let breaker_tripped = Daemon.breaker_state d <> Ocolos_core.Guard.Closed in
  let mutations = mc_mutations log point in
  let reject_events = count_events log "validate.reject" in
  ( terminal,
    pre_steps,
    O.version oc,
    mutations,
    quarantined,
    reject_events,
    breaker_tripped,
    F.fired fault point,
    finish cfg proc buf )

(* Endless run: reach the same containment terminal, then keep driving the
   *same* daemon (guard memory intact: the failed campaign degraded the
   next tier, the quarantine excludes the rejected functions, a tripped
   breaker may refuse outright) until it commits a valid replacement or
   cleanly gives up. *)
let mc_convergence_run cfg ~seed ~point =
  let w = tiny_workload cfg ~tx_limit:None in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  let fault = F.create ~seed () in
  F.arm fault point (F.Nth 1);
  let oc = O.attach ~config:(ocolos_config ~fault) proc in
  let d = Daemon.create ~config:cfg.daemon oc proc in
  let (terminal, ticks), _log =
    with_events (fun () -> mc_drive cfg d fault ~point ~step:(make_step cfg proc))
  in
  match terminal with
  | `None | `Committed _ -> None
  | `Rejected _ | `Reverted _ ->
    Some
      (Supervisor.run_to_convergence d
         ~step:(fun i -> make_step cfg proc (ticks + i))
         ~max_ticks:cfg.max_ticks)

let miscompile_scenario ?(config = default_config) ?cache ~seed ~point () =
  let cache = match cache with Some c -> c | None -> new_cache () in
  let ( terminal,
        pre_steps,
        survivor_version,
        mutations,
        quarantined,
        reject_events,
        breaker_tripped,
        fired,
        tail ) =
    mc_trace_run config ~seed ~point
  in
  let outcome =
    match terminal with
    | `None when fired = 0 -> Mc_not_reached
    | (`None | `Committed _) when mutations = 0 -> Mc_benign
    | `None -> Mc_escaped { mc_version = survivor_version; mc_mutations = mutations }
    | `Committed v -> Mc_escaped { mc_version = v; mc_mutations = mutations }
    | (`Rejected reason | `Reverted reason) as t ->
      let tier = match t with `Rejected _ -> `Validate | `Reverted _ -> `Shadow in
      let reference =
        match Hashtbl.find_opt cache (seed, survivor_version, pre_steps) with
        | Some r -> r
        | None ->
          let r = reference_run config ~seed ~version:survivor_version ~pre_steps in
          Hashtbl.add cache (seed, survivor_version, pre_steps) r;
          r
      in
      let trace_equal, terminated, cache_ok =
        match reference with
        | None -> (false, false, false)
        | Some ref_tail ->
          ( tail.t_trace = ref_tail.t_trace
            && tail.t_checksums = ref_tail.t_checksums
            && tail.t_transactions = ref_tail.t_transactions,
            tail.t_halted && ref_tail.t_halted,
            tail.t_cache_ok && ref_tail.t_cache_ok )
      in
      let convergence =
        match mc_convergence_run config ~seed ~point with
        | Some c -> c
        | None -> Supervisor.Diverged (* contained in the trace run but not here *)
      in
      Mc_contained
        { mc_tier = tier;
          mc_reason = reason;
          mc_mutations = mutations;
          mc_quarantined = quarantined;
          mc_reject_events = reject_events;
          mc_breaker_tripped = breaker_tripped;
          mc_survivor_version = survivor_version;
          mc_trace_equal = trace_equal;
          mc_terminated = terminated;
          mc_cache_ok = cache_ok;
          mc_convergence = convergence }
  in
  Ocolos_obs.Metrics.count "ocolos_chaos_miscompile_scenarios_total" 1;
  (match outcome with
  | Mc_escaped _ -> Ocolos_obs.Metrics.count "ocolos_chaos_miscompile_escapes_total" 1
  | _ -> ());
  { mc_seed = seed; mc_point = point; mc_outcome = outcome }

(* ---- fleet miscompile chaos ---- *)

type mc_fleet_result =
  | Mc_fleet_contained of {
      mf_tier : [ `Validate | `Shadow ];
      mf_reason : string;
      mf_mutations : int;
      mf_mixed_after : bool; (* was the fleet mixed right after containment? *)
      mf_versions : int list; (* per-replica versions at the end *)
      mf_convergence : Supervisor.convergence;
      mf_converged : bool; (* final fleet homogeneous *)
    }
  | Mc_fleet_escaped of { mf_versions : int list; mf_mutations : int }
  | Mc_fleet_not_reached (* never fired, or fired with no applicable site *)

let mc_fleet_passed = function
  | Mc_fleet_not_reached -> false
  | Mc_fleet_escaped _ -> false
  | Mc_fleet_contained o -> (
    (not o.mf_mixed_after) && o.mf_converged
    && match o.mf_convergence with
       | Supervisor.Converged_replaced _ | Supervisor.Converged_gave_up _ -> true
       | Supervisor.Diverged -> false)

let mc_fleet_result_to_string ~seed ~point = function
  | Mc_fleet_not_reached -> Fmt.str "fleet seed %d %-31s not reached" seed point
  | Mc_fleet_escaped { mf_versions; mf_mutations } ->
    Fmt.str "fleet seed %d %-31s ESCAPED: %d mutations live on [%s]" seed point
      mf_mutations
      (String.concat ";" (List.map string_of_int mf_versions))
  | Mc_fleet_contained o ->
    Fmt.str "fleet seed %d %-15s %-31s %s (%s; %d mutations, %s), then %s -> [%s] %s"
      seed (F.domain_of point) point
      (match o.mf_tier with
      | `Validate -> "rejected pre-commit"
      | `Shadow -> "reverted post-commit")
      o.mf_reason o.mf_mutations
      (if o.mf_mixed_after then "MIXED" else "homogeneous")
      (Supervisor.convergence_to_string o.mf_convergence)
      (String.concat ";" (List.map string_of_int o.mf_versions))
      (if o.mf_converged then "(converged)" else "(STILL MIXED)")

let miscompile_fleet_scenario ?(config = default_config) ?(replicas = 4) ~seed ~point ()
    =
  let module Fleet = Ocolos_core.Fleet in
  let w = tiny_workload config ~tx_limit:None in
  let fault = F.create ~seed () in
  F.arm fault point (F.Nth 1);
  let ocfg = ocolos_config ~fault in
  let fcfg =
    { Fleet.default_config with
      Fleet.daemon = config.daemon;
      max_ipc_drop = 1.0;
      max_p99_rise = infinity }
  in
  let procs =
    Array.init replicas (fun i ->
        Workload.launch ~seed:(seed + i) w
          ~input:(Workload.find_input w (if i mod 2 = 0 then "a" else "b")))
  in
  let fleet = Fleet.create ~config:fcfg ~ocolos_config:ocfg procs in
  let step i =
    Array.iter
      (fun p ->
        Proc.run ~engine:config.engine ~cycle_limit:infinity ~max_instrs:config.step_instrs p)
      procs;
    float_of_int (i + 1)
  in
  let drive () =
    let rec loop i =
      if i >= config.max_ticks then (`None, i)
      else
        let now_s = step i in
        match Fleet.tick fleet ~now_s with
        | Fleet.Campaign_aborted reason
          when String.starts_with ~prefix:"validation rejected" reason ->
          (`Rejected reason, i + 1)
        | Fleet.Rolled_back { reason; _ } when contains_sub reason "shadow divergence"
          ->
          (`Reverted reason, i + 1)
        | Fleet.Promoted { version; _ } when F.fired fault point > 0 ->
          (`Committed version, i + 1)
        | _ -> loop (i + 1)
    in
    loop 0
  in
  let (terminal, ticks), log = with_events drive in
  let mutations = mc_mutations log point in
  match terminal with
  | `None when F.fired fault point = 0 -> Mc_fleet_not_reached
  | (`None | `Committed _) when mutations = 0 -> Mc_fleet_not_reached
  | `None | `Committed _ ->
    Mc_fleet_escaped { mf_versions = Fleet.versions fleet; mf_mutations = mutations }
  | (`Rejected reason | `Reverted reason) as t ->
    let tier = match t with `Rejected _ -> `Validate | `Reverted _ -> `Shadow in
    let mixed_after = Fleet.mixed fleet in
    let convergence =
      Supervisor.run_fleet_to_convergence fleet
        ~step:(fun i -> step (ticks + i))
        ~max_ticks:config.max_ticks
    in
    Mc_fleet_contained
      { mf_tier = tier;
        mf_reason = reason;
        mf_mutations = mutations;
        mf_mixed_after = mixed_after;
        mf_versions = Fleet.versions fleet;
        mf_convergence = convergence;
        mf_converged = Fleet.converged fleet }

let miscompile_sweep ?(config = default_config) ?(seeds = [ 1; 2 ])
    ?(points = miscompile_points) () =
  List.concat_map
    (fun seed ->
      let cache = new_cache () in
      List.map (fun point -> miscompile_scenario ~config ~cache ~seed ~point ()) points)
    seeds

let default_points = O.fault_catalog
let default_seeds = [ 1; 2 ]

let sweep ?(config = default_config) ?(seeds = default_seeds) ?(points = default_points) ()
    =
  List.concat_map
    (fun seed ->
      let cache = new_cache () in
      List.map (fun point -> scenario ~config ~cache ~seed ~point ()) points)
    seeds
