(** Measurement drivers shared by the benchmark harness and examples: the
    paper's experimental configurations (steady-state throughput, offline
    profile collection, BOLT / PGO comparators, full online OCOLOS runs). *)

type sample = {
  tps : float;  (** transactions per simulated second *)
  counters : Ocolos_uarch.Counters.t;  (** interval counters *)
  topdown : Ocolos_uarch.Counters.topdown;
}

val default_warmup : float
val default_measure : float

(** Steady-state throughput of [binary] (default: the workload's original)
    running [input]. [engine] selects the execution engine (default
    [`Blocks]); all engines retire identical instruction streams, so it
    changes wall-clock only, never the measured counters. *)
val steady :
  ?engine:[ `Reference | `Blocks | `Traces ] ->
  ?binary:Ocolos_binary.Binary.t ->
  ?nthreads:int ->
  ?seed:int ->
  ?warmup:float ->
  ?measure:float ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  sample

(** Collect an LBR profile offline: fresh process, warmup, sample for
    [seconds]. *)
val collect_profile :
  ?binary:Ocolos_binary.Binary.t ->
  ?nthreads:int ->
  ?seed:int ->
  ?warmup:float ->
  ?seconds:float ->
  ?perf_cfg:Ocolos_profiler.Perf.config ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  Ocolos_profiler.Profile.t

(** Offline BOLT with the given profile (oracle or average-case, depending
    on the profile passed). *)
val bolt_binary :
  ?config:Ocolos_bolt.Bolt.config ->
  Ocolos_workloads.Workload.t ->
  Ocolos_profiler.Profile.t ->
  Ocolos_bolt.Bolt.result

(** Clang-PGO analog with the same profile. *)
val pgo_binary :
  ?config:Ocolos_pgo.Pgo.config ->
  Ocolos_workloads.Workload.t ->
  Ocolos_profiler.Profile.t ->
  Ocolos_pgo.Pgo.result

type ocolos_run = {
  post : sample;  (** steady state after code replacement *)
  stats : Ocolos_core.Ocolos.replacement_stats;
  perf2bolt_seconds : float;
  bolt_seconds : float;
  profile : Ocolos_profiler.Profile.t;
  rollbacks : int;  (** replacement attempts rolled back by injected faults *)
  attempts : int;  (** total replacement attempts (rollbacks + the commit) *)
  resident_extra_bytes : int;
      (** transient OSR overhead (stub/copy residue + inherited jump-table
          words) mapped right after the commit — the drain-window peak the
          RSS model must include *)
  breaker : Ocolos_core.Guard.breaker_state;
      (** circuit-breaker state after the run (Open after a failed campaign
          when the guard is shared across runs) *)
  quarantined : int list;  (** fids the guard excluded from reordering *)
}

(** Raised by {!ocolos_steady} when every replacement attempt rolled back. *)
exception Replacement_failed of string

(** A full online OCOLOS cycle on a freshly launched process: warm up,
    profile the running process, BOLT in the background (charging
    contention stalls), replace code (charging the pause), then measure.
    Replacement runs transactionally ({!Ocolos_core.Txn}): rolled-back
    attempts charge their aborted pause and are retried up to
    [max_attempts] times in total before {!Replacement_failed}.

    [guard] (default: fresh) carries supervision state: per-function BOLT
    failures feed its quarantine (excluded from reordering on this and
    later runs sharing the guard), the commit/failure outcome feeds its
    circuit breaker, and the final state is reported in the result. *)
val ocolos_steady :
  ?config:Ocolos_core.Ocolos.config ->
  ?guard:Ocolos_core.Guard.t ->
  ?nthreads:int ->
  ?seed:int ->
  ?warmup:float ->
  ?profile_s:float ->
  ?measure:float ->
  ?max_attempts:int ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  ocolos_run
