(** Fleet rollout driver: N replicas under open-loop traffic.

    Launches [replicas] copies of a workload (inputs assigned round-robin,
    so a fleet can serve a heterogeneous mix), attaches one
    {!Ocolos_core.Fleet} campaign across them, and drives everything on the
    simulated wall clock in one-second windows. Each replica gets its own
    {!Ocolos_workloads.Openloop} client (Poisson arrivals at
    [arrival_rate], seeded per replica); the fleet's latency probe reads
    each client's live p99, so canary verification sees the same latency
    the report does.

    Stop-the-world pauses are charged for real: after every fleet tick the
    driver drains {!Ocolos_core.Fleet.take_pause_debt} and stalls the
    replica for that many simulated seconds, so a replacement (or staged
    rollback) empties a slice of serving capacity and the open-loop queue
    turns it into a p99 spike — the load balancer's view of a rollout. *)

type replica_report = {
  fr_id : int;
  fr_input : string;
  fr_version : int;  (** code version at the end of the run *)
  fr_transactions : int;
  fr_matched : int;  (** open-loop requests served *)
  fr_p50 : float;
  fr_p99 : float;
  fr_queue_peak : int;  (** deepest open-loop queue observed *)
}

type report = {
  fd_replicas : replica_report list;
  fd_actions : (int * Ocolos_core.Fleet.action) list;
      (** non-idle fleet actions, by tick index *)
  fd_fleet_p50 : float;  (** percentiles over the merged latency stream *)
  fd_fleet_p99 : float;
  fd_versions : int list;
  fd_converged : bool;
  fd_rollouts : int;
  fd_rollbacks : int;
}

val report_to_string : report -> string

(** Run a fleet campaign to [ticks] simulated seconds. [config]'s latency
    probe is replaced by the driver's own (it owns the traffic model);
    everything else in it is respected. Inputs are workload input names,
    dealt round-robin across replicas. Returns the report and the fleet
    (still attached to live replicas) for further inspection. *)
val run :
  ?replicas:int ->
  ?seed:int ->
  ?ticks:int ->
  ?arrival_rate:float ->
  ?inputs:string list ->
  ?config:Ocolos_core.Fleet.config ->
  ?ocolos_config:Ocolos_core.Ocolos.config ->
  ?workload:Ocolos_workloads.Workload.t ->
  unit ->
  report * Ocolos_core.Fleet.t
