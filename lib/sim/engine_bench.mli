(** Microbenchmark comparing the decoded-block engine against the reference
    interpreter: same workload, input and seed, fixed instruction budget,
    best-of-repeats wall time. Both engines are deterministic, so the final
    uarch counters must be bit-identical; {!compare_engines} verifies that
    alongside the throughput ratio. *)

type engine_sample = {
  wall_s : float;  (** best-of-repeats wall-clock seconds *)
  instructions : int;  (** instructions retired in the measured run *)
  ips : float;  (** instructions per wall-clock second *)
}

type comparison = {
  workload : string;
  input : string;
  instructions : int;
  reference : engine_sample;
  blocks : engine_sample;
  speedup : float;  (** [blocks.ips /. reference.ips] *)
  counters_equal : bool;  (** final counters bit-identical across engines *)
}

val default_max_instrs : int
val default_repeats : int

val compare_engines :
  ?repeats:int ->
  ?max_instrs:int ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  comparison

(** JSON record for [BENCH_pr4.json]. *)
val to_json : comparison -> Ocolos_obs.Json.t
