(** Microbenchmark comparing the decoded-block and superblock/trace engines
    against the reference interpreter: same workload, input and seed, fixed
    instruction budget, best-of-repeats wall time. All engines are
    deterministic, so the final uarch counters must be bit-identical;
    {!compare_engines} verifies that alongside the throughput ratios. *)

type engine_sample = {
  wall_s : float;  (** best-of-repeats wall-clock seconds *)
  instructions : int;  (** instructions retired in the measured run *)
  ips : float;  (** instructions per wall-clock second *)
}

type comparison = {
  workload : string;
  input : string;
  instructions : int;
  reference : engine_sample;
  blocks : engine_sample;
  traces : engine_sample;
  speedup : float;  (** [blocks.ips /. reference.ips] *)
  speedup_traces : float;  (** [traces.ips /. reference.ips] *)
  traces_vs_blocks : float;  (** [traces.ips /. blocks.ips] *)
  counters_equal : bool;  (** final counters bit-identical across all engines *)
}

val default_max_instrs : int
val default_repeats : int

val compare_engines :
  ?repeats:int ->
  ?max_instrs:int ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  comparison

(** JSON record for [BENCH_superblock.json]. *)
val to_json : comparison -> Ocolos_obs.Json.t
