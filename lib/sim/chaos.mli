(** Kill/restart chaos harness: for every pipeline fault point, kill the
    daemon there, assert the orphaned target's taken-branch trace is
    byte-identical to an uninterrupted run of the code version that
    survived, and assert a restarted daemon ({!Ocolos_core.Supervisor})
    converges to a committed replacement or a clean give-up.

    All target driving is by instruction budget (never cycle horizon), so
    profiling stalls shift cycle time without reordering the branch stream
    — that is what makes full-trace byte equality the right check rather
    than an approximation. *)

type config = {
  step_instrs : int;  (** instructions the target advances between ticks *)
  max_ticks : int;  (** tick budget for the kill and convergence runs *)
  trace_tx_limit : int;  (** finite workload size for the trace runs *)
  drain_instrs : int;  (** instruction budget to run a trace run to halt *)
  jump_tables : bool;  (** keep jump tables so [inject_data] is reachable *)
  engine : [ `Reference | `Blocks | `Traces ];
      (** execution engine for all target driving (steps, drains, fleet
          replicas); [`Traces] puts the superblock cache's chain links and
          inline caches under every kill/rollback in the sweep *)
  daemon : Ocolos_core.Daemon.config;
}

(** Tuned so continuous rounds (C1 → C2 → ...) occur on the tiny workload:
    [regression_tolerance < 0] makes the drift gate fire every
    amortization interval, which is how gc_*/thread_patch/verify points
    become reachable without an input shift. *)
val default_config : config

type outcome =
  | Verified of {
      death : Ocolos_core.Supervisor.death;
      survivor_version : int;  (** committed version running at death *)
      trace_equal : bool;
      trace_len : int;  (** branches recorded in the kill run *)
      terminated : bool;  (** both trace runs drained to a halt *)
      cache_ok : bool;
          (** {!Ocolos_proc.Proc.validate_code_cache} held after both
              drains: no dead block, stale chain link or dangling inline
              cache survived the death and its rollback *)
      convergence : Ocolos_core.Supervisor.convergence;
    }
  | Not_reached  (** the armed point never fired within the tick budget *)

type result = { r_seed : int; r_point : string; r_outcome : outcome }

(** [`Pass]: the daemon died, the traces matched on drained runs, the code
    caches validated, and the restart converged. [`Fail]: it died but a
    check failed. [`Unreached]:
    the armed point never fired (e.g. [inject_data] on a workload whose
    jump tables were lowered away — there is no data to inject). *)
val verdict : result -> [ `Pass | `Unreached | `Fail ]

(** [verdict r = `Pass]. *)
val passed : result -> bool

val outcome_to_string : outcome -> string

(** Self-describing artifact label for a scenario:
    [seed<S>-<domain>-<point>] (dots in the point mapped to underscores).
    The armed point's fault domain is included — a directory of
    [--trace-dir] dumps must identify the subsystem that was hit without
    the sweep output at hand. *)
val scenario_label : result -> string

val result_to_string : result -> string

(** Shared reference runs, keyed by (seed, survivor version). *)
type ref_cache

val new_cache : unit -> ref_cache

(** One (seed, point) scenario: kill run, reference run, convergence run.
    [cache] shares reference runs across scenarios of the same seed. *)
val scenario :
  ?config:config -> ?cache:ref_cache -> seed:int -> point:string -> unit -> result

(** The full catalog ({!Ocolos_core.Ocolos.fault_catalog}). *)
val default_points : string list

val default_seeds : int list

(** Run scenarios over [seeds] x [points]; reference runs are shared per
    seed. *)
val sweep :
  ?config:config -> ?seeds:int list -> ?points:string list -> unit -> result list

(** {2 Fleet chaos}

    Kill the {e fleet} daemon mid-campaign (one shared fault registry, so
    [Nth] schedules count hits fleet-wide — arming ["commit"] at hit K+1
    lands between the canaries' commits and the promotion wave, stranding
    a mixed C_i/C_{i+1} fleet), then restart with
    {!Ocolos_core.Supervisor.restart_fleet} and require a homogeneous
    terminal state. *)

type fleet_outcome = {
  fo_death : Ocolos_core.Supervisor.death;
  fo_mixed_at_death : bool;  (** did the kill strand a mixed fleet? *)
  fo_reverted : int list;  (** replicas reverted to C0 on reattach *)
  fo_convergence : Ocolos_core.Supervisor.convergence;
  fo_final_versions : int list;
  fo_final_converged : bool;
}

type fleet_result = Fleet_verified of fleet_outcome | Fleet_not_reached

(** The restart converged and the final fleet is homogeneous. *)
val fleet_passed : fleet_result -> bool

val fleet_result_to_string : seed:int -> point:string -> fleet_result -> string

(** Kill/restart one fleet scenario: [replicas] copies of the endless tiny
    workload on a heterogeneous input mix ("a" on even replicas, "b" on
    odd), one shared fault registry, kill at [point] under [schedule]
    (default first hit). *)
val fleet_scenario :
  ?config:config ->
  ?replicas:int ->
  ?schedule:Ocolos_util.Fault.schedule ->
  seed:int ->
  point:string ->
  unit ->
  fleet_result

(** {2 Miscompile containment chaos}

    The [bolt.miscompile] points are survivable corruption, not deaths:
    arming one makes {!Ocolos_core.Ocolos.run_bolt} hand the daemon a
    silently corrupted result, and these scenarios assert the containment
    tiers stop it — a Tier-1 validation rejection (campaign aborted before
    commit, offending functions quarantined, [validate.reject] events
    logged) or a Tier-2 shadow revert (the commit undone within the same
    tick, breaker tripped) — with the surviving target's taken-branch
    trace byte-identical to an uninterrupted run of the surviving version,
    and a subsequent campaign converging on the same daemon. A corrupted
    version that commits and stays committed is an escape. *)

(** The five [bolt.miscompile.*] points ({!Ocolos_bolt.Miscompile.points}). *)
val miscompile_points : string list

type mc_outcome =
  | Mc_contained of {
      mc_tier : [ `Validate | `Shadow ];
      mc_reason : string;
      mc_mutations : int;  (** corruption sites the armed point mutated *)
      mc_quarantined : int list;  (** fids the Tier-1 rejection quarantined *)
      mc_reject_events : int;  (** [validate.reject] events recorded *)
      mc_breaker_tripped : bool;  (** breaker left [Closed] (Tier-2) *)
      mc_survivor_version : int;  (** committed version running afterwards *)
      mc_trace_equal : bool;
      mc_terminated : bool;
      mc_cache_ok : bool;
      mc_convergence : Ocolos_core.Supervisor.convergence;
    }
  | Mc_escaped of { mc_version : int; mc_mutations : int }
  | Mc_benign  (** the point fired but found no applicable corruption site *)
  | Mc_not_reached  (** no campaign ran the point within the tick budget *)

type mc_result = { mc_seed : int; mc_point : string; mc_outcome : mc_outcome }

(** [`Pass]: containment held — the tier-specific evidence is present
    (quarantine + reject events for Tier 1, a tripped breaker for Tier 2),
    the drained trace matches the uncorrupted reference, and the endless
    run converged after containment. [`Fail]: an escape, or containment
    with missing evidence. [`Unreached]: the point never fired or mutated
    nothing. *)
val mc_verdict : mc_result -> [ `Pass | `Unreached | `Fail ]

val mc_passed : mc_result -> bool
val mc_outcome_to_string : mc_outcome -> string
val mc_result_to_string : mc_result -> string

(** One (seed, point) miscompile scenario: a finite traced run driven to
    the containment terminal then drained and compared against a reference
    ([cache] shares references with the kill scenarios), plus an endless
    run required to converge after containment. *)
val miscompile_scenario :
  ?config:config -> ?cache:ref_cache -> seed:int -> point:string -> unit -> mc_result

(** Scenarios over [seeds] x [points] (defaults: seeds 1–2, the whole
    [bolt.miscompile] catalog); references shared per seed. *)
val miscompile_sweep :
  ?config:config -> ?seeds:int list -> ?points:string list -> unit -> mc_result list

type mc_fleet_result =
  | Mc_fleet_contained of {
      mf_tier : [ `Validate | `Shadow ];
      mf_reason : string;
      mf_mutations : int;
      mf_mixed_after : bool;  (** fleet mixed right after containment? *)
      mf_versions : int list;
      mf_convergence : Ocolos_core.Supervisor.convergence;
      mf_converged : bool;  (** final fleet homogeneous *)
    }
  | Mc_fleet_escaped of { mf_versions : int list; mf_mutations : int }
  | Mc_fleet_not_reached  (** never fired, or fired with no applicable site *)

(** Containment left the fleet homogeneous and the continued campaign
    reached a terminal outcome. *)
val mc_fleet_passed : mc_fleet_result -> bool

val mc_fleet_result_to_string : seed:int -> point:string -> mc_fleet_result -> string

(** One fleet miscompile scenario: [replicas] endless replicas on a
    heterogeneous input mix, one shared fault registry, the armed point
    corrupting the fleet's single BOLT result. Tier 1 must reject it for
    every replica at once (validation runs once, pre-stage); if it slips
    through (the [jump_table] blind spot), the canary's Tier-2 shadow must
    revert the staged replicas before promotion — either way no replica
    may keep the divergent version and the fleet must end homogeneous. *)
val miscompile_fleet_scenario :
  ?config:config -> ?replicas:int -> seed:int -> point:string -> unit -> mc_fleet_result
