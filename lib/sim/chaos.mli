(** Kill/restart chaos harness: for every pipeline fault point, kill the
    daemon there, assert the orphaned target's taken-branch trace is
    byte-identical to an uninterrupted run of the code version that
    survived, and assert a restarted daemon ({!Ocolos_core.Supervisor})
    converges to a committed replacement or a clean give-up.

    All target driving is by instruction budget (never cycle horizon), so
    profiling stalls shift cycle time without reordering the branch stream
    — that is what makes full-trace byte equality the right check rather
    than an approximation. *)

type config = {
  step_instrs : int;  (** instructions the target advances between ticks *)
  max_ticks : int;  (** tick budget for the kill and convergence runs *)
  trace_tx_limit : int;  (** finite workload size for the trace runs *)
  drain_instrs : int;  (** instruction budget to run a trace run to halt *)
  jump_tables : bool;  (** keep jump tables so [inject_data] is reachable *)
  engine : [ `Reference | `Blocks | `Traces ];
      (** execution engine for all target driving (steps, drains, fleet
          replicas); [`Traces] puts the superblock cache's chain links and
          inline caches under every kill/rollback in the sweep *)
  daemon : Ocolos_core.Daemon.config;
}

(** Tuned so continuous rounds (C1 → C2 → ...) occur on the tiny workload:
    [regression_tolerance < 0] makes the drift gate fire every
    amortization interval, which is how gc_*/thread_patch/verify points
    become reachable without an input shift. *)
val default_config : config

type outcome =
  | Verified of {
      death : Ocolos_core.Supervisor.death;
      survivor_version : int;  (** committed version running at death *)
      trace_equal : bool;
      trace_len : int;  (** branches recorded in the kill run *)
      terminated : bool;  (** both trace runs drained to a halt *)
      cache_ok : bool;
          (** {!Ocolos_proc.Proc.validate_code_cache} held after both
              drains: no dead block, stale chain link or dangling inline
              cache survived the death and its rollback *)
      convergence : Ocolos_core.Supervisor.convergence;
    }
  | Not_reached  (** the armed point never fired within the tick budget *)

type result = { r_seed : int; r_point : string; r_outcome : outcome }

(** [`Pass]: the daemon died, the traces matched on drained runs, the code
    caches validated, and the restart converged. [`Fail]: it died but a
    check failed. [`Unreached]:
    the armed point never fired (e.g. [inject_data] on a workload whose
    jump tables were lowered away — there is no data to inject). *)
val verdict : result -> [ `Pass | `Unreached | `Fail ]

(** [verdict r = `Pass]. *)
val passed : result -> bool

val outcome_to_string : outcome -> string

(** Self-describing artifact label for a scenario:
    [seed<S>-<domain>-<point>] (dots in the point mapped to underscores).
    The armed point's fault domain is included — a directory of
    [--trace-dir] dumps must identify the subsystem that was hit without
    the sweep output at hand. *)
val scenario_label : result -> string

val result_to_string : result -> string

(** Shared reference runs, keyed by (seed, survivor version). *)
type ref_cache

val new_cache : unit -> ref_cache

(** One (seed, point) scenario: kill run, reference run, convergence run.
    [cache] shares reference runs across scenarios of the same seed. *)
val scenario :
  ?config:config -> ?cache:ref_cache -> seed:int -> point:string -> unit -> result

(** The full catalog ({!Ocolos_core.Ocolos.fault_catalog}). *)
val default_points : string list

val default_seeds : int list

(** Run scenarios over [seeds] x [points]; reference runs are shared per
    seed. *)
val sweep :
  ?config:config -> ?seeds:int list -> ?points:string list -> unit -> result list

(** {2 Fleet chaos}

    Kill the {e fleet} daemon mid-campaign (one shared fault registry, so
    [Nth] schedules count hits fleet-wide — arming ["commit"] at hit K+1
    lands between the canaries' commits and the promotion wave, stranding
    a mixed C_i/C_{i+1} fleet), then restart with
    {!Ocolos_core.Supervisor.restart_fleet} and require a homogeneous
    terminal state. *)

type fleet_outcome = {
  fo_death : Ocolos_core.Supervisor.death;
  fo_mixed_at_death : bool;  (** did the kill strand a mixed fleet? *)
  fo_reverted : int list;  (** replicas reverted to C0 on reattach *)
  fo_convergence : Ocolos_core.Supervisor.convergence;
  fo_final_versions : int list;
  fo_final_converged : bool;
}

type fleet_result = Fleet_verified of fleet_outcome | Fleet_not_reached

(** The restart converged and the final fleet is homogeneous. *)
val fleet_passed : fleet_result -> bool

val fleet_result_to_string : seed:int -> point:string -> fleet_result -> string

(** Kill/restart one fleet scenario: [replicas] copies of the endless tiny
    workload on a heterogeneous input mix ("a" on even replicas, "b" on
    odd), one shared fault registry, kill at [point] under [schedule]
    (default first hit). *)
val fleet_scenario :
  ?config:config ->
  ?replicas:int ->
  ?schedule:Ocolos_util.Fault.schedule ->
  seed:int ->
  point:string ->
  unit ->
  fleet_result
