(* Maximum resident set size model (paper Table I).

   Accounts for the mapped text image, initialized globals and v-tables,
   per-thread heap slices actually touched, and a fixed allocator/runtime
   baseline. OCOLOS adds its transient working set: the injected optimized
   text, the LBR profile buffers, and BOLT's in-memory IR. *)

let baseline_bytes = 4 * 1024 * 1024
let word_bytes = 8

let data_bytes (b : Ocolos_binary.Binary.t) =
  (b.Ocolos_binary.Binary.globals_words * word_bytes)
  + Array.fold_left
      (fun acc vt -> acc + (Array.length vt.Ocolos_binary.Binary.vt_entries * word_bytes))
      0 b.Ocolos_binary.Binary.vtables

(* Thread-private bytes actually touched: scratch words plus the scan
   region when the input scans. *)
let thread_bytes (input : Ocolos_workloads.Input.t) =
  let scan = input.Ocolos_workloads.Input.scan_len * Ocolos_workloads.Gen.scan_stride_words in
  (Ocolos_workloads.Gen.tls_scan_base + scan) * word_bytes

let of_binary ?(nthreads = 4) (b : Ocolos_binary.Binary.t) ~input =
  baseline_bytes + Ocolos_binary.Binary.text_bytes b + data_bytes b
  + (nthreads * thread_bytes input)

(* OCOLOS's peak: the running process plus injected code, profile buffers
   (16 bytes per LBR record), BOLT's IR (~48 bytes per instruction), and the
   transient OSR overhead [resident_extra] — compensation stubs, evacuation
   copies and inherited jump-table words still mapped while migrated frames
   drain. The old accounting missed that last term and undercounted the
   Table I peak during the drain window. *)
let ocolos ?(nthreads = 4) ?(resident_extra = 0) (b : Ocolos_binary.Binary.t) ~input
    ~(stats : Ocolos_core.Ocolos.replacement_stats) ~profile_records ~bolt_work_instrs =
  of_binary ~nthreads b ~input
  + stats.Ocolos_core.Ocolos.code_bytes_injected
  + resident_extra
  + (profile_records * 16) + (bolt_work_instrs * 48)

let mib bytes = float_of_int bytes /. 1048576.0
