(* Microbenchmark comparing the two execution engines.

   Each measurement launches a fresh process (same binary, input and seed),
   runs exactly [max_instrs] instructions under one engine, and reports
   instructions per wall-clock second. Repeats keep the best (minimum-wall)
   run, the standard way to strip scheduler noise from a throughput
   microbenchmark. Since both engines are deterministic over the same
   workload and seed, the final uarch counters must match bit for bit;
   [compare_engines] checks that alongside the speedup. *)

open Ocolos_workloads

type engine_sample = {
  wall_s : float; (* best-of-repeats wall time *)
  instructions : int; (* instructions retired in the measured run *)
  ips : float; (* instructions / wall_s *)
}

type comparison = {
  workload : string;
  input : string;
  instructions : int;
  reference : engine_sample;
  blocks : engine_sample;
  speedup : float; (* blocks.ips / reference.ips *)
  counters_equal : bool; (* final Counters.t bit-identical across engines *)
}

let default_max_instrs = 8_000_000
let default_repeats = 4

(* One measured run: fresh process, [max_instrs] instructions, no cycle
   horizon (the instruction budget is the stopping condition). *)
let run_once ~engine ~max_instrs w ~input =
  let proc = Workload.launch w ~input in
  let t0 = Unix.gettimeofday () in
  Ocolos_proc.Proc.run proc ~engine ~max_instrs ~cycle_limit:infinity;
  let wall = Unix.gettimeofday () -. t0 in
  (wall, proc.Ocolos_proc.Proc.instret, Ocolos_proc.Proc.total_counters proc)

let measure ~engine ~max_instrs ~repeats w ~input =
  let best_wall = ref infinity in
  let instructions = ref 0 in
  let counters = ref Ocolos_uarch.Counters.zero in
  for _ = 1 to max 1 repeats do
    let wall, instret, c = run_once ~engine ~max_instrs w ~input in
    if wall < !best_wall then best_wall := wall;
    instructions := instret;
    counters := c
  done;
  let wall_s = Float.max !best_wall 1e-9 in
  ( { wall_s; instructions = !instructions; ips = float_of_int !instructions /. wall_s },
    !counters )

let compare_engines ?(repeats = default_repeats) ?(max_instrs = default_max_instrs) w
    ~input =
  let reference, ref_counters =
    measure ~engine:`Reference ~max_instrs ~repeats w ~input
  in
  let blocks, blk_counters = measure ~engine:`Blocks ~max_instrs ~repeats w ~input in
  { workload = w.Workload.name;
    input = input.Input.name;
    instructions = blocks.instructions;
    reference;
    blocks;
    speedup = blocks.ips /. reference.ips;
    counters_equal = ref_counters = blk_counters }

let sample_to_json s =
  Ocolos_obs.Json.Obj
    [ ("wall_s", Ocolos_obs.Json.Float s.wall_s);
      ("instructions", Ocolos_obs.Json.Int s.instructions);
      ("ips", Ocolos_obs.Json.Float s.ips) ]

let to_json c =
  Ocolos_obs.Json.Obj
    [ ("bench", Ocolos_obs.Json.String "engine_throughput");
      ("workload", Ocolos_obs.Json.String c.workload);
      ("input", Ocolos_obs.Json.String c.input);
      ("instructions", Ocolos_obs.Json.Int c.instructions);
      ("reference", sample_to_json c.reference);
      ("blocks", sample_to_json c.blocks);
      ("speedup", Ocolos_obs.Json.Float c.speedup);
      ("counters_equal", Ocolos_obs.Json.Bool c.counters_equal) ]
