(* Microbenchmark comparing the three execution engines.

   Each measurement launches a fresh process (same binary, input and seed),
   runs exactly [max_instrs] instructions under one engine, and reports
   instructions per wall-clock second. Repeats keep the best (minimum-wall)
   run, the standard way to strip scheduler noise from a throughput
   microbenchmark. Since both engines are deterministic over the same
   workload and seed, the final uarch counters must match bit for bit;
   [compare_engines] checks that alongside the speedup. *)

open Ocolos_workloads

type engine_sample = {
  wall_s : float; (* best-of-repeats wall time *)
  instructions : int; (* instructions retired in the measured run *)
  ips : float; (* instructions / wall_s *)
}

type comparison = {
  workload : string;
  input : string;
  instructions : int;
  reference : engine_sample;
  blocks : engine_sample;
  traces : engine_sample;
  speedup : float; (* blocks.ips / reference.ips *)
  speedup_traces : float; (* traces.ips / reference.ips *)
  traces_vs_blocks : float; (* traces.ips / blocks.ips *)
  counters_equal : bool; (* final Counters.t bit-identical across all engines *)
}

let default_max_instrs = 8_000_000
let default_repeats = 4

(* One measured run: fresh process, [max_instrs] instructions, no cycle
   horizon (the instruction budget is the stopping condition). *)
let run_once ~engine ~max_instrs w ~input =
  let proc = Workload.launch w ~input in
  let t0 = Unix.gettimeofday () in
  Ocolos_proc.Proc.run proc ~engine ~max_instrs ~cycle_limit:infinity;
  let wall = Unix.gettimeofday () -. t0 in
  (match (Sys.getenv_opt "OCOLOS_BENCH_DEBUG", Ocolos_proc.Proc.trace_cache_stats proc) with
  | Some _, Some s ->
    Printf.eprintf
      "DEBUG traces: decodes=%d dispatches=%d resumes=%d chained=%d chain_misses=%d \
       ic_hits=%d ic_misses=%d promotions=%d superblocks=%d invalidations=%d resident=%d\n\
       %!"
      s.Ocolos_proc.Superblock.decodes s.Ocolos_proc.Superblock.dispatches
      s.Ocolos_proc.Superblock.resumes s.Ocolos_proc.Superblock.chained
      s.Ocolos_proc.Superblock.chain_misses s.Ocolos_proc.Superblock.ic_hits
      s.Ocolos_proc.Superblock.ic_misses s.Ocolos_proc.Superblock.promotions
      s.Ocolos_proc.Superblock.superblocks s.Ocolos_proc.Superblock.invalidations
      s.Ocolos_proc.Superblock.resident
  | _ -> ());
  (wall, proc.Ocolos_proc.Proc.instret, Ocolos_proc.Proc.total_counters proc)

(* Repeats are interleaved round-robin across the engines (ref, blocks,
   traces, ref, blocks, traces, ...) rather than measured engine-by-engine:
   ambient machine load then perturbs every engine's repeat set alike, and
   best-of still picks each engine's quietest window — the reported ratios
   survive a noisy host that back-to-back per-engine windows would not. *)
let measure_interleaved ~engines ~max_instrs ~repeats w ~input =
  let n = Array.length engines in
  let best_wall = Array.make n infinity in
  let instructions = Array.make n 0 in
  let counters = Array.make n Ocolos_uarch.Counters.zero in
  for _ = 1 to max 1 repeats do
    Array.iteri
      (fun i engine ->
        let wall, instret, c = run_once ~engine ~max_instrs w ~input in
        if wall < best_wall.(i) then best_wall.(i) <- wall;
        instructions.(i) <- instret;
        counters.(i) <- c)
      engines
  done;
  Array.init n (fun i ->
      let wall_s = Float.max best_wall.(i) 1e-9 in
      ( { wall_s;
          instructions = instructions.(i);
          ips = float_of_int instructions.(i) /. wall_s },
        counters.(i) ))

let compare_engines ?(repeats = default_repeats) ?(max_instrs = default_max_instrs) w
    ~input =
  let results =
    measure_interleaved
      ~engines:[| `Reference; `Blocks; `Traces |]
      ~max_instrs ~repeats w ~input
  in
  let reference, ref_counters = results.(0) in
  let blocks, blk_counters = results.(1) in
  let traces, trc_counters = results.(2) in
  { workload = w.Workload.name;
    input = input.Input.name;
    instructions = blocks.instructions;
    reference;
    blocks;
    traces;
    speedup = blocks.ips /. reference.ips;
    speedup_traces = traces.ips /. reference.ips;
    traces_vs_blocks = traces.ips /. blocks.ips;
    counters_equal = ref_counters = blk_counters && ref_counters = trc_counters }

let sample_to_json s =
  Ocolos_obs.Json.Obj
    [ ("wall_s", Ocolos_obs.Json.Float s.wall_s);
      ("instructions", Ocolos_obs.Json.Int s.instructions);
      ("ips", Ocolos_obs.Json.Float s.ips) ]

let to_json c =
  Ocolos_obs.Json.Obj
    [ ("bench", Ocolos_obs.Json.String "engine_throughput");
      ("workload", Ocolos_obs.Json.String c.workload);
      ("input", Ocolos_obs.Json.String c.input);
      ("instructions", Ocolos_obs.Json.Int c.instructions);
      ("reference", sample_to_json c.reference);
      ("blocks", sample_to_json c.blocks);
      ("traces", sample_to_json c.traces);
      ("speedup", Ocolos_obs.Json.Float c.speedup);
      ("speedup_traces", Ocolos_obs.Json.Float c.speedup_traces);
      ("traces_vs_blocks", Ocolos_obs.Json.Float c.traces_vs_blocks);
      ("counters_equal", Ocolos_obs.Json.Bool c.counters_equal) ]
