(* Fig. 7 driver: per-second throughput (and modeled 95th-percentile
   latency) of a server workload before, during, and after OCOLOS's code
   replacement, across the paper's five regions: (1) warmup on the original
   binary, (2) LBR profiling, (3) background perf2bolt + BOLT, (4) the
   stop-the-world replacement pause, (5) optimized steady state. *)

open Ocolos_workloads
open Ocolos_proc
module Trace = Ocolos_obs.Trace

type region = Warmup | Profiling | Background | Pause | Optimized

let region_name = function
  | Warmup -> "warmup"
  | Profiling -> "profiling"
  | Background -> "perf2bolt+bolt"
  | Pause -> "replace"
  | Optimized -> "optimized"

type point = { second : int; tps : float; p95_ms : float; region : region }

type t = {
  points : point list;
  stats : Ocolos_core.Ocolos.replacement_stats;
  perf2bolt_seconds : float;
  bolt_seconds : float;
}

(* Modeled per-window latency: each worker thread serves requests serially,
   so mean latency is threads/tps; p95 carries queueing skew, plus the full
   stop-the-world pause in the window where it occurs. *)
let p95_of ~nthreads ~tps ~extra_stall =
  if tps <= 0.0 then 1000.0 *. (extra_stall +. 1.0)
  else 1000.0 *. ((1.35 *. float_of_int nthreads /. tps) +. extra_stall)

let run ?config ?(seed = 1234) ?(warmup_s = 8) ?(profile_s = 4) ?(post_s = 12)
    (w : Workload.t) ~input =
  Trace.span "timeline.run"
    ~attrs:[ ("workload", Trace.S w.Workload.name); ("seed", Trace.I seed) ]
  @@ fun _ ->
  let proc = Workload.launch ~seed w ~input in
  let nthreads = Array.length proc.Proc.threads in
  let oc = Ocolos_core.Ocolos.attach ?config proc in
  let cost =
    (match config with Some c -> c | None -> Ocolos_core.Ocolos.default_config)
      .Ocolos_core.Ocolos.cost
  in
  let points = ref [] in
  let second = ref 0 in
  let horizon = ref 0.0 in
  (* Each window anchors the trace clock at its end and plots the window's
     throughput/latency as counter tracks, so the exported trace shows the
     Fig. 7 curve alongside the span tree. *)
  let window ?(extra_stall = 0.0) region =
    let before = Proc.total_counters proc in
    horizon := !horizon +. 1.0;
    Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc;
    Trace.clock !horizon;
    let c = Ocolos_uarch.Counters.diff (Proc.total_counters proc) before in
    let tps = float_of_int c.Ocolos_uarch.Counters.transactions in
    let p95_ms = p95_of ~nthreads ~tps ~extra_stall in
    Trace.plot "timeline.tps" [ ("tps", tps) ];
    Trace.plot "timeline.p95_ms" [ ("p95_ms", p95_ms) ];
    points := { second = !second; tps; p95_ms; region } :: !points;
    incr second
  in
  let region_span region n body =
    Trace.span ("timeline." ^ region_name region)
      ~attrs:[ ("windows", Trace.I n) ]
      (fun _ -> body ())
  in
  region_span Warmup warmup_s (fun () ->
      for _ = 1 to warmup_s do
        window Warmup
      done);
  Ocolos_core.Ocolos.start_profiling oc;
  region_span Profiling profile_s (fun () ->
      for _ = 1 to profile_s do
        window Profiling
      done);
  let profile, perf2bolt_seconds = Ocolos_core.Ocolos.stop_profiling oc in
  let result, bolt_seconds = Ocolos_core.Ocolos.run_bolt oc profile in
  (* Region 3: the background work contends with the target. We charge the
     contention stall at the start of each affected window. *)
  let background = perf2bolt_seconds +. bolt_seconds in
  let bg_windows = int_of_float (ceil background) in
  region_span Background bg_windows (fun () ->
      for i = 1 to bg_windows do
        let share = Float.min 1.0 (background -. float_of_int (i - 1)) in
        Proc.stall_all proc
          ~cycles:
            (Clock.seconds_to_cycles (share *. cost.Ocolos_core.Cost.background_contention))
          ~category:`Backend;
        window Background
      done);
  (* Region 4: stop-the-world replacement. *)
  let stats =
    region_span Pause 1 (fun () ->
        let stats = Ocolos_core.Ocolos.replace_code oc result in
        Proc.stall_all proc
          ~cycles:(Clock.seconds_to_cycles stats.Ocolos_core.Ocolos.pause_seconds)
          ~category:`Backend;
        window ~extra_stall:stats.Ocolos_core.Ocolos.pause_seconds Pause;
        stats)
  in
  (* Region 5: optimized steady state. *)
  region_span Optimized post_s (fun () ->
      for _ = 1 to post_s do
        window Optimized
      done);
  { points = List.rev !points; stats; perf2bolt_seconds; bolt_seconds }
