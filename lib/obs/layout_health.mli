(** Layout-health attribution: microarchitectural rates per code version.

    OCOLOS judges each code layout C_0, C_1, … by front-end evidence —
    L1i MPKI, iTLB MPKI, BTB MPKI, taken-branch PKI, and IPC. This module
    accumulates raw event counts into per-version (and per-function)
    windows as drivers report them on the simulated clock, and turns the
    aggregates into rate tables, C_i → C_{i+1} delta tables, ranked
    per-function regressions, and labelled gauges in the ambient metrics
    registry.

    The module is deliberately ignorant of the uarch layer (the obs
    library sits below it): callers convert their counters into the
    neutral {!sample} / {!func_counts} records
    ([Ocolos_uarch.Counters.to_health_sample] does this for TopDown
    counter intervals). Per-function rates are {e contribution}
    attributions: a function's events per kilo-instruction of the whole
    version window, not of the function's own instructions — the shape of
    attribution a sampled LBR profile supports.

    Like the other obs sinks, an accumulator can be {!install}ed as the
    ambient one; {!window} / {!func_window} then feed it and no-op (without
    allocating) when none is installed, so per-tick recording costs nothing
    unless someone — e.g. the CLI [explain] subcommand — is watching. *)

(** Raw counts for one recording window, all from the same code version. *)
type sample = {
  s_instructions : int;
  s_cycles : float;
  s_l1i_misses : int;
  s_itlb_misses : int;
  s_btb_misses : int;
  s_taken_branches : int;
}

(** Raw front-end event counts attributed to one function in a window. *)
type func_counts = {
  fc_l1i : int;
  fc_itlb : int;
  fc_btb : int;
  fc_taken : int;
}

(** Aggregated rates for one code version. *)
type rates = {
  r_windows : int;
  r_instructions : int;
  r_ipc : float;
  r_l1i_mpki : float;
  r_itlb_mpki : float;
  r_btb_mpki : float;
  r_taken_pki : float;
}

type signal = Ipc | L1i_mpki | Itlb_mpki | Btb_mpki | Taken_pki

val signals : signal list

(** ["ipc"], ["l1i_mpki"], … — stable names used in reports and events. *)
val signal_name : signal -> string

val signal_value : rates -> signal -> float

(** Per-function delta between two versions; each field is the function's
    contribution (events per kilo-instruction of the version window) in
    the newer version minus the older one. [fd_total] sums the four. *)
type func_delta = {
  fd_fid : int;
  fd_name : string;
  fd_l1i : float;
  fd_itlb : float;
  fd_btb : float;
  fd_taken : float;
  fd_total : float;
}

type t

val create : unit -> t

(** Fold one window's counts into version [version]'s aggregate (and, when
    [replica] is given, into the per-replica breakdown). *)
val record_window : t -> ?replica:int -> version:int -> sample -> unit

(** Fold one window's per-function counts into ([version], [fid]). *)
val record_func_window : t -> version:int -> fid:int -> name:string -> func_counts -> unit

(** Versions with at least one recorded window, ascending. *)
val versions : t -> int list

val rates : t -> int -> rates option

(** Replicas seen via [record_window ~replica], ascending. *)
val replicas : t -> int list

val replica_rates : t -> replica:int -> version:int -> rates option

(** Functions recorded under [version] with their contribution deltas
    against a zero baseline — i.e. their absolute contributions. *)
val func_rows : t -> version:int -> func_delta list

(** Per-function contribution deltas from [from_version] to [to_version],
    sorted worst regression first (largest [fd_total]). Functions seen in
    either version appear. *)
val regressions : t -> from_version:int -> to_version:int -> func_delta list

(** Export per-version gauges ([ocolos_layout_ipc{version="1"}], the MPKI
    set, window/instruction totals) and per-function contribution gauges
    ([ocolos_layout_func_l1i_pki{function="f";version="1"}]) into the
    ambient metrics registry. *)
val export_metrics : t -> unit

(** Human-readable per-version rate table. *)
val report : t -> string

(** Signal-by-signal C_from vs C_to table with deltas. *)
val delta_table : t -> from_version:int -> to_version:int -> string

(** {2 Ambient accumulator} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

(** Ambient {!record_window}; no-op when nothing is installed. *)
val window : ?replica:int -> version:int -> sample -> unit

(** Ambient {!record_func_window}. *)
val func_window : version:int -> fid:int -> name:string -> func_counts -> unit
