(* Span tracing on a simulated microsecond clock (see trace.mli). *)

type value = S of string | I of int | F of float | B of bool

type span = {
  sp_id : int;
  sp_name : string;
  sp_parent : int option;
  sp_begin_us : int;
  mutable sp_end_us : int option;
  mutable sp_attrs : (string * value) list;
}

type event_kind = Instant | Counter

type event = {
  ev_name : string;
  ev_ts_us : int;
  ev_kind : event_kind;
  ev_args : (string * value) list;
}

type t = {
  mutable now_us : int;
  mutable next_id : int;
  mutable stack : span list; (* open spans, innermost first *)
  mutable rev_spans : span list; (* all spans, reverse begin order *)
  mutable rev_events : event list;
  mutable nspans : int;
}

let create () =
  { now_us = 0; next_id = 0; stack = []; rev_spans = []; rev_events = []; nspans = 0 }

let now_us t = t.now_us

(* ---- ambient replica context ----

   Fleet drivers tag everything recorded on behalf of replica [n] so the
   exporter can route it to a per-replica Perfetto process track. The tag
   rides on span/event attributes: no tag, no byte change. *)

let replica_ctx : int option ref = ref None

let current_replica () = !replica_ctx

let in_replica n f =
  let prev = !replica_ctx in
  replica_ctx := Some n;
  Fun.protect ~finally:(fun () -> replica_ctx := prev) f

let tag_replica attrs =
  match !replica_ctx with
  | None -> attrs
  | Some n -> attrs @ [ ("replica", I n) ]

(* Every recorded timestamp consumes one microsecond, so timestamps are
   unique and strictly ordered by record time. *)
let take_ts t =
  let ts = t.now_us in
  t.now_us <- t.now_us + 1;
  ts

let set_time_s t seconds =
  let us = int_of_float (Float.round (seconds *. 1e6)) in
  if us > t.now_us then t.now_us <- us

let advance_s t seconds = set_time_s t (float_of_int t.now_us /. 1e6 +. seconds)

let begin_span t ?(attrs = []) name =
  let sp =
    { sp_id = t.next_id;
      sp_name = name;
      sp_parent = (match t.stack with [] -> None | parent :: _ -> Some parent.sp_id);
      sp_begin_us = take_ts t;
      sp_end_us = None;
      sp_attrs = tag_replica attrs }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- sp :: t.stack;
  t.rev_spans <- sp :: t.rev_spans;
  t.nspans <- t.nspans + 1;
  sp

let end_span t ?(attrs = []) sp =
  sp.sp_attrs <- sp.sp_attrs @ attrs;
  (match sp.sp_end_us with None -> sp.sp_end_us <- Some (take_ts t) | Some _ -> ());
  t.stack <- List.filter (fun s -> s != sp) t.stack

let add_attr sp k v = sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]

let with_span t ?attrs name f =
  let sp = begin_span t ?attrs name in
  match f sp with
  | x ->
    end_span t sp;
    x
  | exception e ->
    add_attr sp "error" (S (Printexc.to_string e));
    end_span t sp;
    raise e

let instant t ?(attrs = []) name =
  t.rev_events <-
    { ev_name = name; ev_ts_us = take_ts t; ev_kind = Instant; ev_args = tag_replica attrs }
    :: t.rev_events

let counter t name series =
  t.rev_events <-
    { ev_name = name;
      ev_ts_us = take_ts t;
      ev_kind = Counter;
      ev_args = tag_replica (List.map (fun (k, v) -> (k, F v)) series) }
    :: t.rev_events

let spans t = List.rev t.rev_spans
let events t = List.rev t.rev_events
let span_count t = t.nspans
let open_spans t = t.stack

(* ---- ambient current trace ---- *)

let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let span ?attrs name f =
  match !current with
  | None -> f None
  | Some t ->
    with_span t ?attrs name (fun sp -> f (Some sp))

let open_span ?attrs name =
  match !current with None -> None | Some t -> Some (begin_span t ?attrs name)

let close_span ?attrs sp =
  match (!current, sp) with
  | Some t, Some sp -> end_span t ?attrs sp
  | _, _ -> ()

let set_attr sp k v = match sp with Some sp -> add_attr sp k v | None -> ()

let mark ?attrs name =
  match !current with Some t -> instant t ?attrs name | None -> ()

let plot name series =
  match !current with Some t -> counter t name series | None -> ()

let clock seconds = match !current with Some t -> set_time_s t seconds | None -> ()
