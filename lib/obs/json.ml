(* Minimal JSON with a byte-deterministic emitter (see json.mli). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.6f" f in
    (* Trim trailing zeros but keep one fractional digit, so the output
       never depends on printf's shortest-representation heuristics. *)
    let n = ref (String.length s) in
    while !n > 1 && s.[!n - 1] = '0' && s.[!n - 2] <> '.' do
      decr n
    done;
    String.sub s 0 !n
  end

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (number f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)
