(** Metrics registry: counters, gauges and fixed-bucket histograms, with
    deterministic Prometheus-text and JSON exporters.

    Metrics are identified by a name plus an optional (sorted) label set;
    registering the same identity twice returns the existing metric, and a
    kind mismatch raises [Invalid_argument]. Exporters emit families in
    lexicographic (name, labels) order, with all numbers rendered through
    {!Json.number}, so two identical runs dump byte-identical output.

    Like {!Trace}, a registry can be {!install}ed as the ambient registry;
    {!count}, {!record} and {!sample} then feed it (or cheaply do nothing
    when none is installed), which is how pipeline code reports without
    threading a handle. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> ?labels:(string * string) list -> ?help:string -> string -> counter
val inc : counter -> int -> unit
val counter_value : counter -> int

val gauge : registry -> ?labels:(string * string) list -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [buckets] are upper bounds, strictly increasing; an implicit [+Inf]
    bucket is appended. An observation [v] lands in the first bucket with
    [v <= bound] (Prometheus [le] semantics). *)
val histogram :
  registry -> ?labels:(string * string) list -> ?help:string -> buckets:float array ->
  string -> histogram

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** Per-bucket (non-cumulative) counts; last entry is the [+Inf] bucket. *)
val hist_buckets : histogram -> (float * int) array

(** Replacement-pause-length buckets (simulated seconds). *)
val pause_buckets : float array

(** Per-round IPC buckets. *)
val ipc_buckets : float array

(** Request-latency buckets (simulated seconds) for open-loop per-replica
    histograms ([ocolos_fleet_request_latency_seconds{replica="..."}]). *)
val latency_buckets : float array

(** Open-loop queue-depth buckets (requests waiting at a sample instant)
    for [ocolos_fleet_queue_depth{replica="..."}]. *)
val queue_depth_buckets : float array

(** Prometheus text exposition format. *)
val to_prometheus : registry -> string

val to_json : registry -> Json.t

(** {2 Ambient registry} *)

val install : registry -> unit
val uninstall : unit -> unit
val installed : unit -> registry option

(** Add to an ambient counter (created on first use). *)
val count : ?labels:(string * string) list -> string -> int -> unit

(** Set an ambient gauge. *)
val record : ?labels:(string * string) list -> string -> float -> unit

(** Observe into an ambient histogram. *)
val sample : ?labels:(string * string) list -> buckets:float array -> string -> float -> unit
