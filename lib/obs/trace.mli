(** Span tracing for the online-BOLT pipeline.

    A trace is a tree of named spans (with begin/end timestamps and typed
    attributes) plus point events: instants (e.g. a fault firing) and
    counter samples (e.g. the per-second throughput track of a timeline
    run). Timestamps come from a {e simulated} microsecond clock, never
    from the wall clock, so traces are byte-stable across identical-seed
    runs: drivers anchor the clock to simulated seconds (as produced by
    [Ocolos_sim.Clock]) with {!set_time_s}, and every recorded event then
    advances it by exactly one microsecond. The auto-tick gives every event
    a unique timestamp and guarantees strict nesting (a child span begins
    after and ends before its parent), which is what the Chrome/Perfetto
    exporter ({!Chrome}) relies on.

    Instrumented code does not thread a trace handle through every call:
    one trace can be {!install}ed as the ambient current trace, and the
    lower-case helpers ({!span}, {!open_span}, {!mark}, {!plot}, {!clock})
    write to it — or do nothing, cheaply, when no trace is installed. *)

type value = S of string | I of int | F of float | B of bool

type span = {
  sp_id : int;
  sp_name : string;
  sp_parent : int option;  (** enclosing span id at begin time *)
  sp_begin_us : int;
  mutable sp_end_us : int option;  (** [None] while the span is open *)
  mutable sp_attrs : (string * value) list;  (** insertion order *)
}

type event_kind = Instant | Counter

type event = {
  ev_name : string;
  ev_ts_us : int;
  ev_kind : event_kind;
  ev_args : (string * value) list;
}

type t

val create : unit -> t

(** Current simulated time in microseconds. *)
val now_us : t -> int

(** Anchor the clock at [seconds] of simulated time. The clock is
    monotonic: anchoring into the past is a no-op. *)
val set_time_s : t -> float -> unit

val advance_s : t -> float -> unit

(** [begin_span t name] opens a span as a child of the innermost open
    span. Spans opened and closed across separate calls (e.g. a profiling
    window bracketed by [Perf.start]/[Perf.stop]) are supported; closing is
    order-insensitive. *)
val begin_span : t -> ?attrs:(string * value) list -> string -> span

(** Idempotent; [attrs] are appended to the span's attribute list. *)
val end_span : t -> ?attrs:(string * value) list -> span -> unit

(** [with_span t name f] runs [f span] inside a fresh span, closing it on
    both normal return and exception (recording the exception as an
    ["error"] attribute before re-raising). *)
val with_span : t -> ?attrs:(string * value) list -> string -> (span -> 'a) -> 'a

val add_attr : span -> string -> value -> unit

(** A zero-duration point event at the current time. *)
val instant : t -> ?attrs:(string * value) list -> string -> unit

(** A sample on a named counter track (one value per series). *)
val counter : t -> string -> (string * float) list -> unit

(** All spans in begin order (begin timestamps are strictly increasing). *)
val spans : t -> span list

(** Instants and counter samples in record order. *)
val events : t -> event list

val span_count : t -> int

(** Spans currently open, innermost first. *)
val open_spans : t -> span list

(** {2 Ambient current trace} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

(** {!with_span} against the ambient trace; [f] receives [None] (and the
    helpers below become no-ops) when no trace is installed. *)
val span : ?attrs:(string * value) list -> string -> (span option -> 'a) -> 'a

val open_span : ?attrs:(string * value) list -> string -> span option
val close_span : ?attrs:(string * value) list -> span option -> unit
val set_attr : span option -> string -> value -> unit

(** Ambient {!instant}. *)
val mark : ?attrs:(string * value) list -> string -> unit

(** Ambient {!counter}. *)
val plot : string -> (string * float) list -> unit

(** Ambient {!set_time_s}. *)
val clock : float -> unit

(** {2 Ambient replica context}

    Fleet drivers wrap per-replica work in {!in_replica}; every span,
    instant, and counter sample recorded inside (against any trace) gains a
    [("replica", I n)] attribute, which {!Chrome.of_trace} maps to a
    per-replica Perfetto process track and {!Events} copies into each
    event's fields. Contexts nest; the previous context is restored on
    return or exception. *)

val in_replica : int -> (unit -> 'a) -> 'a
val current_replica : unit -> int option
