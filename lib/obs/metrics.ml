(* Metrics registry with deterministic exporters (see metrics.mli). *)

type counter = { mutable c_v : int }
type gauge = { mutable g_v : float }

type histogram = {
  h_buckets : float array; (* upper bounds, strictly increasing *)
  h_counts : int array; (* per-bucket counts; last slot is +Inf *)
  mutable h_sum : float;
  mutable h_n : int;
}

type metric = C of counter | G of gauge | H of histogram

type entry = {
  e_name : string;
  e_labels : (string * string) list; (* sorted by key *)
  e_help : string option;
  e_metric : metric;
}

type registry = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let key name labels = name ^ render_labels labels

let register r ?(labels = []) ?help name make check =
  let labels = List.sort compare labels in
  let k = key name labels in
  match Hashtbl.find_opt r.tbl k with
  | Some e -> check e.e_metric
  | None ->
    let m = make () in
    Hashtbl.replace r.tbl k { e_name = name; e_labels = labels; e_help = help; e_metric = m };
    check m

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name)

let counter r ?labels ?help name =
  register r ?labels ?help name
    (fun () -> C { c_v = 0 })
    (function C c -> c | G _ | H _ -> kind_error name)

let inc c n = c.c_v <- c.c_v + n
let counter_value c = c.c_v

let gauge r ?labels ?help name =
  register r ?labels ?help name
    (fun () -> G { g_v = 0.0 })
    (function G g -> g | C _ | H _ -> kind_error name)

let set g v = g.g_v <- v
let gauge_value g = g.g_v

let histogram r ?labels ?help ~buckets name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  register r ?labels ?help name
    (fun () ->
      H { h_buckets = Array.copy buckets; h_counts = Array.make (n + 1) 0; h_sum = 0.0; h_n = 0 })
    (function
      | H h ->
        if h.h_buckets <> buckets then
          invalid_arg (Printf.sprintf "Metrics: histogram %s re-registered with other buckets" name)
        else h
      | C _ | G _ -> kind_error name)

let observe h v =
  let n = Array.length h.h_buckets in
  let rec slot i = if i >= n then n else if v <= h.h_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_n <- h.h_n + 1

let hist_count h = h.h_n
let hist_sum h = h.h_sum

let hist_buckets h =
  Array.init
    (Array.length h.h_counts)
    (fun i ->
      let bound = if i < Array.length h.h_buckets then h.h_buckets.(i) else Float.infinity in
      (bound, h.h_counts.(i)))

let pause_buckets =
  [| 1e-4; 2e-4; 5e-4; 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0 |]

let ipc_buckets = [| 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 1.75; 2.0; 2.5; 3.0; 4.0 |]

let latency_buckets =
  [| 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0 |]

let queue_depth_buckets = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 |]

(* ---- export ---- *)

let sorted_entries r =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) r.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let to_prometheus r =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun e ->
      if e.e_name <> !last_family then begin
        last_family := e.e_name;
        (match e.e_help with
        | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" e.e_name h)
        | None -> ());
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" e.e_name (kind_name e.e_metric))
      end;
      let labels = render_labels e.e_labels in
      match e.e_metric with
      | C c -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" e.e_name labels c.c_v)
      | G g -> Buffer.add_string buf (Printf.sprintf "%s%s %s\n" e.e_name labels (Json.number g.g_v))
      | H h ->
        let cumulative = ref 0 in
        Array.iter
          (fun (bound, count) ->
            cumulative := !cumulative + count;
            let le = if bound = Float.infinity then "+Inf" else Json.number bound in
            let labels = render_labels (List.sort compare (("le", le) :: e.e_labels)) in
            Buffer.add_string buf (Printf.sprintf "%s_bucket%s %d\n" e.e_name labels !cumulative))
          (hist_buckets h);
        Buffer.add_string buf (Printf.sprintf "%s_sum%s %s\n" e.e_name labels (Json.number h.h_sum));
        Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" e.e_name labels h.h_n))
    (sorted_entries r);
  Buffer.contents buf

let to_json r =
  let metric_json e =
    let base =
      [ ("name", Json.String e.e_name);
        ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.e_labels));
        ("type", Json.String (kind_name e.e_metric)) ]
    in
    match e.e_metric with
    | C c -> Json.Obj (base @ [ ("value", Json.Int c.c_v) ])
    | G g -> Json.Obj (base @ [ ("value", Json.Float g.g_v) ])
    | H h ->
      let buckets =
        Array.to_list (hist_buckets h)
        |> List.map (fun (bound, count) ->
               Json.Obj
                 [ ( "le",
                     if bound = Float.infinity then Json.String "+Inf" else Json.Float bound );
                   ("count", Json.Int count) ])
      in
      Json.Obj
        (base
        @ [ ("buckets", Json.List buckets);
            ("sum", Json.Float h.h_sum);
            ("count", Json.Int h.h_n) ])
  in
  Json.Obj [ ("metrics", Json.List (List.map metric_json (sorted_entries r))) ]

(* ---- ambient registry ---- *)

let current : registry option ref = ref None

let install r = current := Some r
let uninstall () = current := None
let installed () = !current

let count ?labels name n =
  match !current with Some r -> inc (counter r ?labels name) n | None -> ()

let record ?labels name v =
  match !current with Some r -> set (gauge r ?labels name) v | None -> ()

let sample ?labels ~buckets name v =
  match !current with Some r -> observe (histogram r ?labels ~buckets name) v | None -> ()
