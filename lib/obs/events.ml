(* Structured JSONL event log (see events.mli). *)

type event = {
  e_seq : int;
  e_ts_us : int;
  e_type : string;
  e_span : int option;
  e_fields : (string * Trace.value) list;
}

type t = { mutable rev : event list; mutable n : int }

let create () = { rev = []; n = 0 }

let record t ?(fields = []) type_ =
  let ts, span =
    match Trace.installed () with
    | None -> (0, None)
    | Some tr ->
        (* Read the clock without ticking it: recording an event must not
           shift the timestamps of subsequent trace events, or installing
           an event log would change trace bytes. *)
        ( Trace.now_us tr,
          match Trace.open_spans tr with
          | [] -> None
          | sp :: _ -> Some sp.Trace.sp_id )
  in
  let fields =
    match Trace.current_replica () with
    | Some r -> fields @ [ ("replica", Trace.I r) ]
    | None -> fields
  in
  t.rev <-
    { e_seq = t.n; e_ts_us = ts; e_type = type_; e_span = span; e_fields = fields }
    :: t.rev;
  t.n <- t.n + 1

let events t = List.rev t.rev
let count t = t.n

let value_json = function
  | Trace.S s -> Json.String s
  | Trace.I i -> Json.Int i
  | Trace.F f -> Json.Float f
  | Trace.B b -> Json.Bool b

let event_json e =
  Json.Obj
    [ ("seq", Json.Int e.e_seq);
      ("ts_us", Json.Int e.e_ts_us);
      ("type", Json.String e.e_type);
      ("span", (match e.e_span with Some id -> Json.Int id | None -> Json.Null));
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) e.e_fields)) ]

let event_to_string e = Json.to_string (event_json e)

let to_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string b (event_to_string e);
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let save path t =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc

(* Ambient event log. *)

let current : t option ref = ref None
let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let log ?fields type_ =
  match !current with None -> () | Some t -> record t ?fields type_
