(** Minimal JSON values with a byte-deterministic emitter.

    The observability exporters ({!Chrome}, {!Metrics}) must produce
    byte-identical output for identical-seed runs, so this module owns the
    one float-formatting policy they all share: integers print without a
    fractional part, other finite floats print with at most six fractional
    digits and no trailing zeros, and non-finite floats print as [null]
    (they never occur in well-formed traces). No parser is provided; tests
    carry their own. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Deterministic decimal rendering of a finite float (used for JSON
    numbers and Prometheus sample values / bucket labels). *)
val number : float -> string

(** Compact (no whitespace) rendering; object fields keep insertion order. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
