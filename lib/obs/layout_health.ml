(* Per-version layout-health attribution (see layout_health.mli). *)

type sample = {
  s_instructions : int;
  s_cycles : float;
  s_l1i_misses : int;
  s_itlb_misses : int;
  s_btb_misses : int;
  s_taken_branches : int;
}

type func_counts = { fc_l1i : int; fc_itlb : int; fc_btb : int; fc_taken : int }

type rates = {
  r_windows : int;
  r_instructions : int;
  r_ipc : float;
  r_l1i_mpki : float;
  r_itlb_mpki : float;
  r_btb_mpki : float;
  r_taken_pki : float;
}

type signal = Ipc | L1i_mpki | Itlb_mpki | Btb_mpki | Taken_pki

let signals = [ Ipc; L1i_mpki; Itlb_mpki; Btb_mpki; Taken_pki ]

let signal_name = function
  | Ipc -> "ipc"
  | L1i_mpki -> "l1i_mpki"
  | Itlb_mpki -> "itlb_mpki"
  | Btb_mpki -> "btb_mpki"
  | Taken_pki -> "taken_pki"

let signal_value r = function
  | Ipc -> r.r_ipc
  | L1i_mpki -> r.r_l1i_mpki
  | Itlb_mpki -> r.r_itlb_mpki
  | Btb_mpki -> r.r_btb_mpki
  | Taken_pki -> r.r_taken_pki

type func_delta = {
  fd_fid : int;
  fd_name : string;
  fd_l1i : float;
  fd_itlb : float;
  fd_btb : float;
  fd_taken : float;
  fd_total : float;
}

type acc = {
  mutable a_windows : int;
  mutable a_instructions : int;
  mutable a_cycles : float;
  mutable a_l1i : int;
  mutable a_itlb : int;
  mutable a_btb : int;
  mutable a_taken : int;
}

type facc = {
  mutable fa_l1i : int;
  mutable fa_itlb : int;
  mutable fa_btb : int;
  mutable fa_taken : int;
}

type t = {
  by_version : (int, acc) Hashtbl.t;
  by_replica : (int * int, acc) Hashtbl.t; (* (replica, version) *)
  by_func : (int * int, facc) Hashtbl.t; (* (version, fid) *)
  func_names : (int, string) Hashtbl.t;
}

let create () =
  { by_version = Hashtbl.create 8;
    by_replica = Hashtbl.create 16;
    by_func = Hashtbl.create 64;
    func_names = Hashtbl.create 32 }

let fresh_acc () =
  { a_windows = 0; a_instructions = 0; a_cycles = 0.0; a_l1i = 0; a_itlb = 0;
    a_btb = 0; a_taken = 0 }

let acc_of tbl k =
  match Hashtbl.find_opt tbl k with
  | Some a -> a
  | None ->
    let a = fresh_acc () in
    Hashtbl.replace tbl k a;
    a

let fold_sample a s =
  a.a_windows <- a.a_windows + 1;
  a.a_instructions <- a.a_instructions + s.s_instructions;
  a.a_cycles <- a.a_cycles +. s.s_cycles;
  a.a_l1i <- a.a_l1i + s.s_l1i_misses;
  a.a_itlb <- a.a_itlb + s.s_itlb_misses;
  a.a_btb <- a.a_btb + s.s_btb_misses;
  a.a_taken <- a.a_taken + s.s_taken_branches

let record_window t ?replica ~version s =
  fold_sample (acc_of t.by_version version) s;
  match replica with
  | None -> ()
  | Some r -> fold_sample (acc_of t.by_replica (r, version)) s

let record_func_window t ~version ~fid ~name fc =
  if not (Hashtbl.mem t.func_names fid) then Hashtbl.replace t.func_names fid name;
  let fa =
    match Hashtbl.find_opt t.by_func (version, fid) with
    | Some fa -> fa
    | None ->
      let fa = { fa_l1i = 0; fa_itlb = 0; fa_btb = 0; fa_taken = 0 } in
      Hashtbl.replace t.by_func (version, fid) fa;
      fa
  in
  fa.fa_l1i <- fa.fa_l1i + fc.fc_l1i;
  fa.fa_itlb <- fa.fa_itlb + fc.fc_itlb;
  fa.fa_btb <- fa.fa_btb + fc.fc_btb;
  fa.fa_taken <- fa.fa_taken + fc.fc_taken

let versions t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.by_version [] |> List.sort_uniq compare

let replicas t =
  Hashtbl.fold (fun (r, _) _ acc -> r :: acc) t.by_replica [] |> List.sort_uniq compare

let rates_of_acc a =
  let per_kilo n =
    if a.a_instructions = 0 then 0.0
    else float_of_int n *. 1000.0 /. float_of_int a.a_instructions
  in
  { r_windows = a.a_windows;
    r_instructions = a.a_instructions;
    r_ipc = (if a.a_cycles <= 0.0 then 0.0 else float_of_int a.a_instructions /. a.a_cycles);
    r_l1i_mpki = per_kilo a.a_l1i;
    r_itlb_mpki = per_kilo a.a_itlb;
    r_btb_mpki = per_kilo a.a_btb;
    r_taken_pki = per_kilo a.a_taken }

let rates t v = Option.map rates_of_acc (Hashtbl.find_opt t.by_version v)

let replica_rates t ~replica ~version =
  Option.map rates_of_acc (Hashtbl.find_opt t.by_replica (replica, version))

(* A function's contribution to version [v]'s per-kilo-instruction rates:
   its event counts over the version window's total instructions. *)
let func_contrib t ~version ~fid =
  let instructions =
    match Hashtbl.find_opt t.by_version version with
    | Some a -> a.a_instructions
    | None -> 0
  in
  let pk n =
    if instructions = 0 then 0.0 else float_of_int n *. 1000.0 /. float_of_int instructions
  in
  match Hashtbl.find_opt t.by_func (version, fid) with
  | None -> (0.0, 0.0, 0.0, 0.0)
  | Some fa -> (pk fa.fa_l1i, pk fa.fa_itlb, pk fa.fa_btb, pk fa.fa_taken)

let func_name t fid =
  match Hashtbl.find_opt t.func_names fid with
  | Some n -> n
  | None -> Printf.sprintf "fid%d" fid

let fids_of_version t v =
  Hashtbl.fold (fun (v', fid) _ acc -> if v' = v then fid :: acc else acc) t.by_func []

let delta_rows t ~from_version ~to_version =
  let fids =
    List.sort_uniq compare (fids_of_version t from_version @ fids_of_version t to_version)
  in
  List.map
    (fun fid ->
      let l1i0, itlb0, btb0, taken0 = func_contrib t ~version:from_version ~fid in
      let l1i1, itlb1, btb1, taken1 = func_contrib t ~version:to_version ~fid in
      let dl1i = l1i1 -. l1i0 and ditlb = itlb1 -. itlb0 in
      let dbtb = btb1 -. btb0 and dtaken = taken1 -. taken0 in
      { fd_fid = fid;
        fd_name = func_name t fid;
        fd_l1i = dl1i;
        fd_itlb = ditlb;
        fd_btb = dbtb;
        fd_taken = dtaken;
        fd_total = dl1i +. ditlb +. dbtb +. dtaken })
    fids

let by_total_desc a b =
  match compare b.fd_total a.fd_total with 0 -> compare a.fd_fid b.fd_fid | c -> c

let func_rows t ~version =
  (* Deltas against an absent version are the absolute contributions. *)
  delta_rows t ~from_version:min_int ~to_version:version |> List.sort by_total_desc

let regressions t ~from_version ~to_version =
  delta_rows t ~from_version ~to_version |> List.sort by_total_desc

let export_metrics t =
  List.iter
    (fun v ->
      let r = Option.get (rates t v) in
      let labels = [ ("version", string_of_int v) ] in
      Metrics.record ~labels "ocolos_layout_windows" (float_of_int r.r_windows);
      Metrics.record ~labels "ocolos_layout_instructions" (float_of_int r.r_instructions);
      List.iter
        (fun s ->
          Metrics.record ~labels ("ocolos_layout_" ^ signal_name s) (signal_value r s))
        signals;
      List.iter
        (fun fd ->
          let labels = ("function", fd.fd_name) :: labels in
          Metrics.record ~labels "ocolos_layout_func_l1i_pki" fd.fd_l1i;
          Metrics.record ~labels "ocolos_layout_func_itlb_pki" fd.fd_itlb;
          Metrics.record ~labels "ocolos_layout_func_btb_pki" fd.fd_btb;
          Metrics.record ~labels "ocolos_layout_func_taken_pki" fd.fd_taken)
        (func_rows t ~version:v))
    (versions t)

let report t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-8s %8s %14s %8s %9s %10s %9s %10s\n" "version" "windows"
       "instructions" "ipc" "l1i_mpki" "itlb_mpki" "btb_mpki" "taken_pki");
  List.iter
    (fun v ->
      let r = Option.get (rates t v) in
      Buffer.add_string b
        (Printf.sprintf "C%-7d %8d %14d %8s %9s %10s %9s %10s\n" v r.r_windows
           r.r_instructions (Json.number r.r_ipc) (Json.number r.r_l1i_mpki)
           (Json.number r.r_itlb_mpki) (Json.number r.r_btb_mpki)
           (Json.number r.r_taken_pki)))
    (versions t);
  Buffer.contents b

let delta_table t ~from_version ~to_version =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-10s %10s %10s %10s\n" "signal"
       (Printf.sprintf "C%d" from_version)
       (Printf.sprintf "C%d" to_version)
       "delta");
  (match (rates t from_version, rates t to_version) with
  | Some r0, Some r1 ->
    List.iter
      (fun s ->
        let v0 = signal_value r0 s and v1 = signal_value r1 s in
        Buffer.add_string b
          (Printf.sprintf "%-10s %10s %10s %10s\n" (signal_name s) (Json.number v0)
             (Json.number v1)
             (Json.number (v1 -. v0))))
      signals
  | _, _ ->
    Buffer.add_string b
      (Printf.sprintf "no data for C%d vs C%d\n" from_version to_version));
  Buffer.contents b

(* ---- ambient accumulator ---- *)

let current : t option ref = ref None
let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let window ?replica ~version s =
  match !current with None -> () | Some t -> record_window t ?replica ~version s

let func_window ~version ~fid ~name fc =
  match !current with
  | None -> ()
  | Some t -> record_func_window t ~version ~fid ~name fc
