(* Chrome trace-event JSON export (see chrome.mli). *)

let value_json = function
  | Trace.S s -> Json.String s
  | Trace.I i -> Json.Int i
  | Trace.F f -> Json.Float f
  | Trace.B b -> Json.Bool b

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) args)

let pid = 1
let tid = 1

(* A ("replica", I n) attribute (stamped by Trace.in_replica) routes the
   event to replica n's own process track instead of rendering as an arg:
   pid 1 stays the controller/daemon process, replica n gets pid n+2. *)
let replica_of attrs =
  List.find_map (function "replica", Trace.I n -> Some n | _ -> None) attrs

let replica_pid n = n + 2

let split_replica attrs =
  match replica_of attrs with
  | None -> (pid, attrs)
  | Some n -> (replica_pid n, List.filter (fun (k, _) -> k <> "replica") attrs)

let span_event now_us (sp : Trace.span) =
  let end_us = match sp.Trace.sp_end_us with Some e -> e | None -> max now_us (sp.Trace.sp_begin_us + 1) in
  let pid, attrs = split_replica sp.Trace.sp_attrs in
  ( sp.Trace.sp_begin_us,
    Json.Obj
      [ ("name", Json.String sp.Trace.sp_name);
        ("cat", Json.String "ocolos");
        ("ph", Json.String "X");
        ("ts", Json.Int sp.Trace.sp_begin_us);
        ("dur", Json.Int (end_us - sp.Trace.sp_begin_us));
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", args_json attrs) ] )

let point_event (ev : Trace.event) =
  let pid, args = split_replica ev.Trace.ev_args in
  let common =
    [ ("name", Json.String ev.Trace.ev_name);
      ("cat", Json.String "ocolos");
      ("ts", Json.Int ev.Trace.ev_ts_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", args_json args) ]
  in
  match ev.Trace.ev_kind with
  | Trace.Instant ->
    (ev.Trace.ev_ts_us, Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common))
  | Trace.Counter -> (ev.Trace.ev_ts_us, Json.Obj (("ph", Json.String "C") :: common))

let of_trace ?(process_name = "ocolos") tr =
  let meta ~pid name value =
    Json.Obj
      [ ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String value) ]) ]
  in
  let now = Trace.now_us tr in
  let timed =
    List.map (span_event now) (Trace.spans tr) @ List.map point_event (Trace.events tr)
  in
  (* Timestamps are unique (the trace clock ticks per event), so sorting by
     ts alone is a total, deterministic order. *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) timed in
  let replica_ids =
    List.filter_map (fun (sp : Trace.span) -> replica_of sp.Trace.sp_attrs) (Trace.spans tr)
    @ List.filter_map (fun (ev : Trace.event) -> replica_of ev.Trace.ev_args) (Trace.events tr)
    |> List.sort_uniq compare
  in
  let replica_metas =
    List.concat_map
      (fun n ->
        [ meta ~pid:(replica_pid n) "process_name"
            (Printf.sprintf "%s replica %d" process_name n);
          meta ~pid:(replica_pid n) "thread_name" "pipeline" ])
      replica_ids
  in
  Json.Obj
    [ ( "traceEvents",
        Json.List
          ((meta ~pid "process_name" process_name :: meta ~pid "thread_name" "pipeline"
            :: replica_metas)
          @ List.map snd sorted) );
      ("displayTimeUnit", Json.String "ms") ]

let to_string ?process_name tr = Json.to_string (of_trace ?process_name tr)

let save ?process_name path tr =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string ?process_name tr);
      output_char oc '\n')
