(* Chrome trace-event JSON export (see chrome.mli). *)

let value_json = function
  | Trace.S s -> Json.String s
  | Trace.I i -> Json.Int i
  | Trace.F f -> Json.Float f
  | Trace.B b -> Json.Bool b

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) args)

let pid = 1
let tid = 1

let span_event now_us (sp : Trace.span) =
  let end_us = match sp.Trace.sp_end_us with Some e -> e | None -> max now_us (sp.Trace.sp_begin_us + 1) in
  ( sp.Trace.sp_begin_us,
    Json.Obj
      [ ("name", Json.String sp.Trace.sp_name);
        ("cat", Json.String "ocolos");
        ("ph", Json.String "X");
        ("ts", Json.Int sp.Trace.sp_begin_us);
        ("dur", Json.Int (end_us - sp.Trace.sp_begin_us));
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", args_json sp.Trace.sp_attrs) ] )

let point_event (ev : Trace.event) =
  let common =
    [ ("name", Json.String ev.Trace.ev_name);
      ("cat", Json.String "ocolos");
      ("ts", Json.Int ev.Trace.ev_ts_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", args_json ev.Trace.ev_args) ]
  in
  match ev.Trace.ev_kind with
  | Trace.Instant ->
    (ev.Trace.ev_ts_us, Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common))
  | Trace.Counter -> (ev.Trace.ev_ts_us, Json.Obj (("ph", Json.String "C") :: common))

let of_trace ?(process_name = "ocolos") tr =
  let meta name value =
    Json.Obj
      [ ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String value) ]) ]
  in
  let now = Trace.now_us tr in
  let timed =
    List.map (span_event now) (Trace.spans tr) @ List.map point_event (Trace.events tr)
  in
  (* Timestamps are unique (the trace clock ticks per event), so sorting by
     ts alone is a total, deterministic order. *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) timed in
  Json.Obj
    [ ( "traceEvents",
        Json.List
          (meta "process_name" process_name :: meta "thread_name" "pipeline"
          :: List.map snd sorted) );
      ("displayTimeUnit", Json.String "ms") ]

let to_string ?process_name tr = Json.to_string (of_trace ?process_name tr)

let save ?process_name path tr =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string ?process_name tr);
      output_char oc '\n')
