(** Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

    Spans become complete ("ph":"X") events with microsecond [ts]/[dur],
    instants become "i" events, and counter samples become "C" events whose
    args render as counter tracks. All timestamps are integers from the
    trace's simulated clock and events are sorted by timestamp (which is
    unique per event), so the output is byte-deterministic. *)

(** Still-open spans are closed at the trace's current time. *)
val of_trace : ?process_name:string -> Trace.t -> Json.t

val to_string : ?process_name:string -> Trace.t -> string

(** Write the trace-event JSON to [path]. *)
val save : ?process_name:string -> string -> Trace.t -> unit
