(** Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

    Spans become complete ("ph":"X") events with microsecond [ts]/[dur],
    instants become "i" events, and counter samples become "C" events whose
    args render as counter tracks. All timestamps are integers from the
    trace's simulated clock and events are sorted by timestamp (which is
    unique per event), so the output is byte-deterministic.

    Events recorded inside {!Trace.in_replica} (carrying a ["replica"]
    attribute) are routed to a per-replica Perfetto process: replica [n]
    renders under pid [n+2] named ["<process_name> replica n"], with the
    attribute consumed rather than shown as an arg. Traces without replica
    attributes render exactly as before (single process, pid 1). *)

(** Still-open spans are closed at the trace's current time. *)
val of_trace : ?process_name:string -> Trace.t -> Json.t

val to_string : ?process_name:string -> Trace.t -> string

(** Write the trace-event JSON to [path]. *)
val save : ?process_name:string -> string -> Trace.t -> unit
