(** Structured event log: one JSON object per line (JSONL), byte-stable.

    Where {!Trace} captures durations for a timeline UI and {!Metrics}
    captures aggregates for dashboards, this log captures the pipeline's
    discrete decisions as typed records an operator can grep or feed to a
    query engine: profile windows opening and closing, each BOLT pass,
    every transaction phase and fault injection, guard state transitions,
    and canary promote/rollback/recover actions at fleet scale.

    Every event cross-links into the Chrome/Perfetto export: its [ts_us]
    is read from the ambient {!Trace} clock (without ticking it, so
    installing an event log never changes trace bytes) and its [span] is
    the id of the innermost open trace span at record time — the same id
    the span carries in the trace-event JSON. Events recorded inside
    {!Trace.in_replica} additionally carry a ["replica"] field, matching
    the replica's Perfetto process track.

    Like the other sinks, a log can be {!install}ed as the ambient event
    log; {!log} then feeds it, or cheaply does nothing when none is
    installed. Sequence numbers and the simulated clock are the only time
    sources, so two identical seeded runs emit byte-identical JSONL. *)

type event = {
  e_seq : int;  (** 0-based record order *)
  e_ts_us : int;  (** ambient trace clock at record time (0 if none) *)
  e_type : string;  (** dotted event type, e.g. ["txn.rollback"] *)
  e_span : int option;  (** innermost open trace span id, if any *)
  e_fields : (string * Trace.value) list;  (** insertion order *)
}

type t

val create : unit -> t

(** Record one event. [ts_us]/[span] come from the ambient trace. *)
val record : t -> ?fields:(string * Trace.value) list -> string -> unit

(** All events in record order. *)
val events : t -> event list

val count : t -> int

(** One event as a compact JSON object (no trailing newline). *)
val event_to_string : event -> string

(** The whole log, one JSON object per line, trailing newline included. *)
val to_jsonl : t -> string

(** Write {!to_jsonl} to [path]. *)
val save : string -> t -> unit

(** {2 Ambient event log} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

(** Ambient {!record}; a no-op when no log is installed. *)
val log : ?fields:(string * Trace.value) list -> string -> unit
