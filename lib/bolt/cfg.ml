(* CFG reconstruction from machine code (BOLT's disassembly front-end).

   Recovers a function's control-flow graph by recursive traversal from its
   entry point: linear decode until a terminator, discovering new leaders
   from branch targets, splitting provisional blocks when a later target
   lands inside one, and recovering jump-table targets from the data image.
   The result is a symbolic {!Ocolos_isa.Ir.func} (re-emittable under any
   layout) plus address maps used to attach profile counts. *)

open Ocolos_isa
open Ocolos_binary

type reconstructed = {
  rc_fid : int;
  rc_func : Ir.func; (* bid 0 is the entry block *)
  rc_block_addr : int array; (* bid -> original start address *)
  rc_block_end : int array; (* bid -> original end address (exclusive) *)
  rc_counts : int array; (* bid -> execution count (0 before attach) *)
  rc_edges : (int * int, int) Hashtbl.t; (* (src bid, dst bid) -> count *)
  rc_instr_count : int;
}

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* Mutable block under construction. *)
type mblock = {
  mutable start : int;
  mutable instrs : (int * Instr.t) list; (* reversed *)
  mutable term : mterm;
  mutable ended : int; (* end address, exclusive; 0 while decoding *)
}

and mterm =
  | Mnone (* still decoding *)
  | Mfall of int (* falls into block at address *)
  | Mjump of int
  | Mbranch of Instr.cond * Instr.reg * int * int (* taken addr, fall addr *)
  | Mtable of Instr.reg * int array (* selector, target addresses *)
  | Mret
  | Mhalt

(* Recover jump-table targets: read words starting at [base] while they are
   valid instruction addresses belonging to this function. *)
let read_jump_table ~read_data ~valid_target base =
  let rec go i acc =
    match read_data (base + i) with
    | Some v when valid_target v -> go (i + 1) (v :: acc)
    | Some _ | None -> List.rev acc
  in
  match go 0 [] with
  | [] -> unsupported "empty jump table at data 0x%x" base
  | targets -> Array.of_list targets

let reconstruct ~fid ~entry ~(read_code : int -> Instr.t option)
    ~(read_data : int -> int option) ~(in_function : int -> bool) ~fid_of_entry ~fname =
  let blocks : (int, mblock) Hashtbl.t = Hashtbl.create 32 in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* instr addr -> block start *)
  let worklist = Queue.create () in
  let enqueue addr = Queue.add addr worklist in
  let valid_target addr = in_function addr && read_code addr <> None in
  (* Split the block owning [addr] so that [addr] becomes a leader. *)
  let split_at addr =
    let bstart = Hashtbl.find owner addr in
    if bstart = addr then ()
    else begin
      let b = Hashtbl.find blocks bstart in
      let instrs = List.rev b.instrs in
      let before, after = List.partition (fun (a, _) -> a < addr) instrs in
      (match after with
      | (a, _) :: _ when a = addr -> ()
      | _ -> unsupported "target 0x%x lands mid-instruction in %s" addr fname);
      let nb =
        { start = addr; instrs = List.rev after; term = b.term; ended = b.ended }
      in
      b.instrs <- List.rev before;
      b.term <- Mfall addr;
      b.ended <- addr;
      Hashtbl.replace blocks addr nb;
      List.iter (fun (a, _) -> Hashtbl.replace owner a addr) after
    end
  in
  let decode_from leader =
    if Hashtbl.mem blocks leader then ()
    else if Hashtbl.mem owner leader then split_at leader
    else begin
      let b = { start = leader; instrs = []; term = Mnone; ended = 0 } in
      Hashtbl.replace blocks leader b;
      let pc = ref leader in
      let continue = ref true in
      while !continue do
        (* Stop if we ran into already-decoded code. Every decoded
           instruction is in [owner], and an address owns itself iff it is
           a leader, so one probe distinguishes fresh code / an existing
           leader (fallthrough edge) / the middle of a decoded block (make
           the join point a leader by splitting, then fall into it). This
           loop runs once per instruction per campaign — in BOLT's
           front-end and again in the Tier-1 validator — so the probe
           count matters. *)
        match if !pc = leader then None else Hashtbl.find_opt owner !pc with
        | Some bstart ->
          if bstart <> !pc then split_at !pc;
          b.term <- Mfall !pc;
          b.ended <- !pc;
          continue := false
        | None -> (
          match read_code !pc with
          | None -> unsupported "decode fell off mapped code at 0x%x in %s" !pc fname
          | Some instr ->
            (* [add], not [replace]: the loop only reaches fresh addresses
               (the probe above stopped otherwise), and [split_at] uses
               [replace] when it reassigns ownership. *)
            Hashtbl.add owner !pc b.start;
            b.instrs <- (!pc, instr) :: b.instrs;
            let next = !pc + Instr.size instr in
            (* Terminators become symbolic block terminators: drop the raw
               instruction from the body so it is not re-emitted with its
               stale absolute target. *)
            let pop_terminator () =
              match b.instrs with
              | _ :: rest -> b.instrs <- rest
              | [] -> assert false
            in
            (match instr with
            | Instr.Branch (c, r, target) ->
              if not (valid_target target) then
                unsupported "branch target 0x%x outside %s" target fname;
              pop_terminator ();
              b.term <- Mbranch (c, r, target, next);
              b.ended <- next;
              enqueue target;
              enqueue next;
              continue := false
            | Instr.Jump target ->
              if not (valid_target target) then
                unsupported "jump target 0x%x outside %s" target fname;
              pop_terminator ();
              b.term <- Mjump target;
              b.ended <- next;
              enqueue target;
              continue := false
            | Instr.JumpInd sel_reg ->
              (* Recognize the emitter's jump-table idiom:
                 Alui(Add, s, sel, base); Load(s, s, 0); JumpInd s. *)
              (match b.instrs with
              | (_, Instr.JumpInd _) :: (_, Instr.Load (s1, s2, 0)) :: (_, Instr.Alui (Instr.Add, s3, sel, base)) :: rest
                when s1 = sel_reg && s2 = sel_reg && s3 = sel_reg ->
                let targets = read_jump_table ~read_data ~valid_target base in
                b.instrs <- rest;
                b.term <- Mtable (sel, targets);
                b.ended <- next;
                Array.iter enqueue targets;
                continue := false
              | _ -> unsupported "unrecognized indirect jump at 0x%x in %s" !pc fname)
            | Instr.Ret ->
              pop_terminator ();
              b.term <- Mret;
              b.ended <- next;
              continue := false
            | Instr.Halt ->
              pop_terminator ();
              b.term <- Mhalt;
              b.ended <- next;
              continue := false
            | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Movi _ | Instr.Load _
            | Instr.Store _ | Instr.Call _ | Instr.CallInd _ | Instr.FpCreate _
            | Instr.VtLoad _ | Instr.Rand _ | Instr.TxMark ->
              pc := next))
      done
    end
  in
  enqueue entry;
  while not (Queue.is_empty worklist) do
    decode_from (Queue.pop worklist)
  done;
  (* Stable block ids: entry first, then by ascending address. *)
  let starts =
    Hashtbl.fold (fun s _ acc -> s :: acc) blocks []
    |> List.filter (fun s -> s <> entry)
    |> List.sort compare
  in
  let order = Array.of_list (entry :: starts) in
  let bid_of = Hashtbl.create 32 in
  Array.iteri (fun bid s -> Hashtbl.replace bid_of s bid) order;
  let to_ir_block bid =
    let mb = Hashtbl.find blocks order.(bid) in
    let body =
      List.rev_map
        (fun (_, instr) ->
          match instr with
          | Instr.Call target -> (
            match fid_of_entry target with
            | Some callee -> Ir.SCall callee
            | None -> unsupported "call to unknown function 0x%x in %s" target fname)
          | Instr.CallInd r -> Ir.SCallInd r
          | Instr.FpCreate (r, target) -> (
            match fid_of_entry target with
            | Some callee -> Ir.SFpCreate (r, callee)
            | None -> unsupported "fp-create of unknown function 0x%x in %s" target fname)
          | i -> Ir.Plain i)
        mb.instrs
    in
    let bid_at addr =
      match Hashtbl.find_opt bid_of addr with
      | Some b -> b
      | None -> unsupported "no block at 0x%x in %s" addr fname
    in
    let term =
      match mb.term with
      | Mnone -> unsupported "unterminated block at 0x%x in %s" mb.start fname
      | Mfall a | Mjump a -> Ir.Tjump (bid_at a)
      | Mbranch (c, r, taken, fall) -> Ir.Tbranch (c, r, bid_at taken, bid_at fall)
      | Mtable (sel, targets) -> Ir.Tjump_table (sel, Array.map bid_at targets)
      | Mret -> Ir.Tret
      | Mhalt -> Ir.Thalt
    in
    { Ir.bid; body; term }
  in
  let nblocks = Array.length order in
  let ir_blocks = Array.init nblocks to_ir_block in
  let block_end = Array.map (fun s -> (Hashtbl.find blocks s).ended) order in
  let instr_count = Hashtbl.length owner in
  { rc_fid = fid;
    rc_func = { Ir.fid; fname; blocks = ir_blocks };
    rc_block_addr = order;
    rc_block_end = block_end;
    rc_counts = Array.make nblocks 0;
    rc_edges = Hashtbl.create 32;
    rc_instr_count = instr_count }

(* Reconstructing from a binary image needs O(binary)-sized lookup
   structures (address index, data image, entry table). [reconstructor]
   builds them once and closes over them, so reconstructing every hot
   function of a campaign stays linear in the binary instead of
   quadratic — both BOLT's front-end and the Tier-1 validator walk whole
   function lists. *)
let reconstructor (binary : Binary.t) =
  let index = Binary.build_addr_index binary in
  let data_init = Hashtbl.create 64 in
  List.iter (fun (a, v) -> Hashtbl.replace data_init a v) binary.Binary.global_init;
  let entry_of = Hashtbl.create 256 in
  Array.iter (fun s -> Hashtbl.replace entry_of s.Binary.fs_entry s.Binary.fs_fid)
    binary.Binary.symbols;
  fun fid ->
    let sym = binary.Binary.symbols.(fid) in
    reconstruct ~fid ~entry:sym.Binary.fs_entry
      ~read_code:(fun addr -> Binary.find_instr binary addr)
      ~read_data:(fun addr -> Hashtbl.find_opt data_init addr)
      ~in_function:(fun addr -> Binary.index_lookup index addr = Some fid)
      ~fid_of_entry:(fun addr -> Hashtbl.find_opt entry_of addr)
      ~fname:sym.Binary.fs_name

(* Convenience wrapper reconstructing one function from a binary image. *)
let of_binary (binary : Binary.t) fid = reconstructor binary fid

(* Attach profile counts to a reconstructed CFG.

   Taken edges come directly from LBR branch records; fallthrough coverage
   comes from the straight-line ranges between consecutive records: walking
   a range bumps every covered block and each fallthrough edge crossed. The
   caller pre-partitions the global profile by function, passing only this
   function's records. *)
let attach_profile rc ~branches ~ranges =
  let nblocks = Array.length rc.rc_block_addr in
  (* Sorted (start, end, bid) view for binary-search address resolution. *)
  let sorted = Array.init nblocks (fun bid -> (rc.rc_block_addr.(bid), rc.rc_block_end.(bid), bid)) in
  Array.sort compare sorted;
  let block_of_addr addr =
    let lo = ref 0 and hi = ref (nblocks - 1) and found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let s, e, bid = sorted.(mid) in
      if addr < s then hi := mid - 1
      else if addr >= e then lo := mid + 1
      else begin
        found := Some bid;
        lo := !hi + 1
      end
    done;
    !found
  in
  let bid_at_start = Hashtbl.create nblocks in
  Array.iteri (fun bid s -> Hashtbl.replace bid_at_start s bid) rc.rc_block_addr;
  let bump_edge src dst n =
    let key = (src, dst) in
    match Hashtbl.find_opt rc.rc_edges key with
    | Some v -> Hashtbl.replace rc.rc_edges key (v + n)
    | None -> Hashtbl.add rc.rc_edges key n
  in
  List.iter
    (fun (from_addr, to_addr, count) ->
      match (block_of_addr from_addr, Hashtbl.find_opt bid_at_start to_addr) with
      | Some src, Some dst -> bump_edge src dst count
      | _, _ -> ())
    branches;
  List.iter
    (fun (start_addr, end_addr, count) ->
      match block_of_addr start_addr with
      | None -> ()
      | Some first ->
        let rec walk bid =
          rc.rc_counts.(bid) <- rc.rc_counts.(bid) + count;
          if end_addr >= rc.rc_block_end.(bid) then
            match Hashtbl.find_opt bid_at_start rc.rc_block_end.(bid) with
            | Some nxt ->
              bump_edge bid nxt count;
              walk nxt
            | None -> ()
        in
        walk first)
    ranges

let total_count rc = Array.fold_left ( + ) 0 rc.rc_counts

let edge_count rc key = match Hashtbl.find_opt rc.rc_edges key with Some v -> v | None -> 0
