(** Per-function frame maps for on-stack replacement.

    A frame map records how addresses in the old code version of one BOLTed
    function correspond to addresses in the freshly emitted version, at two
    granularities: block starts (always) and individual instructions (where
    the old and new sequences provably carry the same program points). It is
    the data OCOLOS needs to rewrite live frames' return addresses and
    paused threads' PCs directly into C_{i+1}, retiring the old text
    immediately instead of keeping it alive until frames drain. *)

type block_site = {
  bs_bid : int;
  bs_old_start : int;
  bs_old_end : int;  (** exclusive *)
  bs_new_start : int;
}

type t = {
  fm_fid : int;
  fm_old_entry : int;
  fm_new_entry : int;
  fm_blocks : block_site array;  (** sorted by [bs_old_start] *)
  fm_exact : (int, int) Hashtbl.t;  (** old pc -> new pc *)
}

(** How an old-version PC migrates:
    - [Exact new_pc]: rewrite in place.
    - [Mid_block site]: the PC is inside a mapped block but between exact
      points; a compensation stub must re-establish block-local state
      before entering the new code.
    - [Unmapped]: map-lookup miss — the replacement transaction treats
      this as a fault. *)
type resolution = Exact of int | Mid_block of block_site | Unmapped

(** A pluggable per-pass address tracker: given one block's raw old
    instruction sequence, its emitted new sequence, the block's old end
    address and the old-start -> new-start block map, returns exact
    (old pc, new pc) pairs. *)
type tracker = {
  tk_name : string;
  tk_track :
    old_instrs:(int * Ocolos_isa.Instr.t) array ->
    new_instrs:(int * Ocolos_isa.Instr.t) array ->
    old_end:int ->
    block_new:(int -> int option) ->
    (int * int) list;
}

(** Maps each old block start to its new start. *)
val block_boundary_tracker : tracker

(** Positional instruction pairing: identical instructions, instructions
    differing only in a statically relocated target, and peephole-removed
    no-ops (mapped to the next surviving instruction) all pair; the walk
    stops at the first real divergence. *)
val exact_instr_tracker : tracker

(** [[block_boundary_tracker; exact_instr_tracker]] *)
val default_trackers : tracker list

(** [build ~fid ~old_entry ~new_entry ~blocks ~read_old ~new_instrs ()]
    assembles a map. [blocks] lists (bid, old start, old end, new start)
    per basic block; [read_old] reads the old code image; [new_instrs]
    returns the emitted instructions of one bid in layout order. *)
val build :
  ?trackers:tracker list ->
  fid:int ->
  old_entry:int ->
  new_entry:int ->
  blocks:(int * int * int * int) array ->
  read_old:(int -> Ocolos_isa.Instr.t option) ->
  new_instrs:(int -> (int * Ocolos_isa.Instr.t) array) ->
  unit ->
  t

val resolve : t -> int -> resolution

(** Old block start -> new block start (None if not a block start). *)
val block_new_start : t -> int -> int option

(** The block whose old range contains the address. *)
val containing_block : t -> int -> block_site option

(** Number of instruction-granular map entries (telemetry). *)
val exact_points : t -> int
