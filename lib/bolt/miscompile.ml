(* The [bolt.miscompile] fault domain: silent corruption of a finished
   BOLT result, injected *past* every pass so that only the Tier-1
   validator ({!Validate}) and the Tier-2 shadow checker stand between the
   corruption and the fleet. Every existing fault domain models the
   pipeline *crashing*; this one models it *lying*.

   Five corruption modes, each targeting a distinct containment layer:
   - [branch_polarity]: negate one conditional branch in place (targets
     untouched) — caught by the validator's terminator-permutation check.
   - [drop_block]: erase one non-entry block's instructions from the new
     text — caught as a decode hole / invalid jump target.
   - [stale_reloc]: rewrite one relocated call / fp-create back to the
     callee's old entry — caught by the relocation check.
   - [frame_map]: shift one instruction-granular OSR map entry by one byte
     so it lands mid-instruction — caught by the frame-map boundary check.
   - [jump_table]: rotate the words of one emitted jump table. Every word
     remains a valid block start of the owning function, so this passes
     Tier 1 by design and must be reverted by the shadow checker.

   Mutations are pure (fresh hashtables / rebuilt lists; the input result
   is never modified) and deterministic: candidates are enumerated in
   address order and [salt] picks one. [apply] returns the mutation count —
   0 means the corruption found no applicable site (the chaos harness
   reports such scenarios as unreached rather than escaped). *)

open Ocolos_isa
open Ocolos_binary

let points =
  [ "bolt.miscompile.branch_polarity";
    "bolt.miscompile.drop_block";
    "bolt.miscompile.stale_reloc";
    "bolt.miscompile.frame_map";
    "bolt.miscompile.jump_table" ]

(* Functional update of [new_text] with a corrupted code map. [code_order]
   is rebuilt so anything that walks the image in address order (the
   replacement transaction's code injection) sees the corrupted view
   consistently. *)
let with_code (result : Bolt.result) code =
  let code_order =
    Array.of_list (List.filter (fun a -> Hashtbl.mem code a) (Array.to_list result.Bolt.new_text.Binary.code_order))
  in
  { result with Bolt.new_text = { result.Bolt.new_text with Binary.code; code_order } }

let pick salt n = if n <= 0 then invalid_arg "Miscompile.pick" else abs salt mod n

let branch_polarity ~salt (result : Bolt.result) =
  let nt = result.Bolt.new_text in
  let candidates =
    Array.to_list nt.Binary.code_order
    |> List.filter_map (fun a ->
           match Hashtbl.find_opt nt.Binary.code a with
           | Some (Instr.Branch (c, r, t)) -> Some (a, c, r, t)
           | _ -> None)
  in
  match candidates with
  | [] -> (result, 0)
  | _ ->
    let a, c, r, t = List.nth candidates (pick salt (List.length candidates)) in
    let code = Hashtbl.copy nt.Binary.code in
    Hashtbl.replace code a (Instr.Branch (Emit.negate_cond c, r, t));
    (with_code result code, 1)

let drop_block ~salt (result : Bolt.result) =
  let nt = result.Bolt.new_text in
  let starts = Hashtbl.create 64 in
  List.iter
    (fun (_, (fm : Frame_map.t)) ->
      Array.iter
        (fun (bs : Frame_map.block_site) -> Hashtbl.replace starts bs.Frame_map.bs_new_start ())
        fm.Frame_map.fm_blocks)
    result.Bolt.frame_maps;
  let candidates =
    List.concat_map
      (fun (_, (fm : Frame_map.t)) ->
        Array.to_list fm.Frame_map.fm_blocks
        |> List.filter_map (fun (bs : Frame_map.block_site) ->
               if bs.Frame_map.bs_new_start <> fm.Frame_map.fm_new_entry then
                 Some bs.Frame_map.bs_new_start
               else None))
      result.Bolt.frame_maps
    |> List.sort compare
  in
  match candidates with
  | [] -> (result, 0)
  | _ ->
    let start = List.nth candidates (pick salt (List.length candidates)) in
    let code = Hashtbl.copy nt.Binary.code in
    let removed = ref 0 in
    let pc = ref start in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt code !pc with
      | Some i when !pc = start || not (Hashtbl.mem starts !pc) ->
        Hashtbl.remove code !pc;
        incr removed;
        pc := !pc + Instr.size i
      | _ -> continue := false
    done;
    (with_code result code, !removed)

let stale_reloc ~salt (result : Bolt.result) =
  let nt = result.Bolt.new_text in
  (* new entry -> old entry, over this run's translation *)
  let back = Hashtbl.create 64 in
  List.iter (fun (o, n) -> Hashtbl.replace back n o) result.Bolt.translation;
  let candidates =
    Array.to_list nt.Binary.code_order
    |> List.filter_map (fun a ->
           match Hashtbl.find_opt nt.Binary.code a with
           | Some (Instr.Call t) when Hashtbl.mem back t && Hashtbl.find back t <> t ->
             Some (a, Instr.Call (Hashtbl.find back t))
           | Some (Instr.FpCreate (r, t)) when Hashtbl.mem back t && Hashtbl.find back t <> t ->
             Some (a, Instr.FpCreate (r, Hashtbl.find back t))
           | _ -> None)
  in
  match candidates with
  | [] -> (result, 0)
  | _ ->
    let a, stale = List.nth candidates (pick salt (List.length candidates)) in
    let code = Hashtbl.copy nt.Binary.code in
    Hashtbl.replace code a stale;
    (with_code result code, 1)

let frame_map ~salt (result : Bolt.result) =
  let candidates =
    List.concat_map
      (fun (fid, (fm : Frame_map.t)) ->
        Hashtbl.fold (fun o n acc -> (fid, o, n) :: acc) fm.Frame_map.fm_exact [])
      result.Bolt.frame_maps
    |> List.sort compare
  in
  match candidates with
  | [] -> (result, 0)
  | _ ->
    let fid, old_pc, new_pc = List.nth candidates (pick salt (List.length candidates)) in
    let frame_maps =
      List.map
        (fun (f, (fm : Frame_map.t)) ->
          if f <> fid then (f, fm)
          else begin
            let fm_exact = Hashtbl.copy fm.Frame_map.fm_exact in
            Hashtbl.replace fm_exact old_pc (new_pc + 1);
            (f, { fm with Frame_map.fm_exact })
          end)
        result.Bolt.frame_maps
    in
    ({ result with Bolt.frame_maps }, 1)

(* One emitted jump table = a maximal run of consecutive data words whose
   values are all block starts of one function. Rotating the run keeps
   every word a valid block start (Tier-1-clean) while re-aiming the
   dispatch — the corruption only Tier 2 can see. Tables whose words are
   all equal rotate to themselves and are skipped. *)
let jump_table ~salt (result : Bolt.result) =
  let fid_of_start = Hashtbl.create 64 in
  List.iter
    (fun (fid, (fm : Frame_map.t)) ->
      Array.iter
        (fun (bs : Frame_map.block_site) ->
          Hashtbl.replace fid_of_start bs.Frame_map.bs_new_start fid)
        fm.Frame_map.fm_blocks)
    result.Bolt.frame_maps;
  let init = List.sort compare result.Bolt.new_text.Binary.global_init in
  let runs = ref [] in
  let cur : (int * int) list ref = ref [] in
  let flush () =
    (match !cur with _ :: _ :: _ -> runs := List.rev !cur :: !runs | _ -> ());
    cur := []
  in
  List.iter
    (fun (a, v) ->
      match Hashtbl.find_opt fid_of_start v with
      | None -> flush ()
      | Some fid -> (
        match !cur with
        | (a', v') :: _ when a = a' + 1 && Hashtbl.find_opt fid_of_start v' = Some fid ->
          cur := (a, v) :: !cur
        | [] -> cur := [ (a, v) ]
        | _ ->
          flush ();
          cur := [ (a, v) ]))
    init;
  flush ();
  let rotatable =
    List.rev !runs
    |> List.filter (fun run ->
           match run with
           | (_, v0) :: rest -> List.exists (fun (_, v) -> v <> v0) rest
           | [] -> false)
  in
  match rotatable with
  | [] -> (result, 0)
  | _ ->
    let run = List.nth rotatable (pick salt (List.length rotatable)) in
    let addrs = List.map fst run and vals = List.map snd run in
    let rotated = match vals with v0 :: rest -> rest @ [ v0 ] | [] -> [] in
    let repl = Hashtbl.create 8 in
    List.iter2 (fun a v -> Hashtbl.replace repl a v) addrs rotated;
    let changed = ref 0 in
    let global_init =
      List.map
        (fun (a, v) ->
          match Hashtbl.find_opt repl a with
          | Some v' ->
            if v' <> v then incr changed;
            (a, v')
          | None -> (a, v))
        result.Bolt.new_text.Binary.global_init
    in
    ( { result with Bolt.new_text = { result.Bolt.new_text with Binary.global_init } },
      !changed )

let apply ~point ~salt result =
  match point with
  | "bolt.miscompile.branch_polarity" -> branch_polarity ~salt result
  | "bolt.miscompile.drop_block" -> drop_block ~salt result
  | "bolt.miscompile.stale_reloc" -> stale_reloc ~salt result
  | "bolt.miscompile.frame_map" -> frame_map ~salt result
  | "bolt.miscompile.jump_table" -> jump_table ~salt result
  | p -> invalid_arg ("Miscompile.apply: unknown point " ^ p)
