(* The BOLT pipeline: profile + binary -> optimized binary.

   Mirrors the real tool's structure (paper Section II-D): select hot
   functions from the profile, reconstruct their CFGs from machine code,
   reorder basic blocks (hot/cold splitting optional), reorder functions
   (C3 by default), and emit the optimized code into a new .text section at
   higher addresses while the original code remains in place as
   bolt.org.text. Cold functions are untouched apart from the symbol-table
   merge. *)

open Ocolos_isa
open Ocolos_binary
open Ocolos_profiler

type func_order = C3 | Pettis_hansen | Original_order

type config = {
  reorder_blocks : bool;
  split_functions : bool;
  func_order : func_order;
  hot_threshold : int; (* min LBR records for a function to be optimized *)
  max_hot_funcs : int option;
  peephole : bool;
  exclude : int list; (* fids never optimized (supervisor quarantine) *)
  exact_frame_maps : bool;
      (* instruction-granular OSR maps; off = block boundaries only, so
         every mid-block pointer migrates through a compensation stub *)
  lite : bool;
      (* true: emit only profiled-hot functions (the rest keep their old
         text, as in BOLT -lite). false: also re-emit every cold and
         never-executed function, so the new image is complete and the
         whole old text can be retired (-use-old-text=false analog) *)
}

let default_config =
  { reorder_blocks = true;
    split_functions = true;
    func_order = C3;
    hot_threshold = 8;
    max_hot_funcs = None;
    peephole = true;
    exclude = [];
    exact_frame_maps = true;
    lite = true }

type result = {
  merged : Binary.t; (* original + optimized sections: the BOLTed binary *)
  new_text : Binary.t; (* only the optimized section (what OCOLOS injects) *)
  translation : (int * int) list; (* old entry -> new entry, optimized funcs *)
  hot_fids : int list;
  funcs_reordered : int;
  work_instrs : int; (* volume processed, for the cost model *)
  skipped : int; (* functions whose reconstruction was refused *)
  failed : (int * string) list; (* (fid, fault point) degraded per-function *)
  bolt_base : int;
  frame_maps : (int * Frame_map.t) list; (* fid -> OSR map into new_text *)
}

let align_up n a = (n + a - 1) / a * a

let sections_end (binary : Binary.t) =
  List.fold_left
    (fun acc (s : Binary.section) -> max acc (s.Binary.sec_base + s.Binary.sec_size))
    0 binary.Binary.sections

(* First data address above everything the binary initializes: a fresh
   region for the optimized code's jump tables. *)
let fresh_data_base (binary : Binary.t) =
  let m = binary.Binary.globals_base + binary.Binary.globals_words in
  let m =
    Array.fold_left
      (fun acc vt -> max acc (vt.Binary.vt_addr + Array.length vt.Binary.vt_entries))
      m binary.Binary.vtables
  in
  let m = List.fold_left (fun acc (a, _) -> max acc (a + 1)) m binary.Binary.global_init in
  align_up m 0x1000

(* Partition the profile's branch and range records by owning function. *)
let partition_profile (binary : Binary.t) (profile : Profile.t) =
  let index = Binary.build_addr_index binary in
  let branches : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let ranges : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let push tbl fid v =
    match Hashtbl.find_opt tbl fid with
    | Some l -> Hashtbl.replace tbl fid (v :: l)
    | None -> Hashtbl.add tbl fid [ v ]
  in
  Hashtbl.iter
    (fun (from_addr, to_addr) count ->
      match (Binary.index_lookup index from_addr, Binary.index_lookup index to_addr) with
      | Some f1, Some f2 when f1 = f2 -> push branches f1 (from_addr, to_addr, count)
      | _, _ -> ())
    profile.Profile.branches;
  Hashtbl.iter
    (fun (start_addr, end_addr) count ->
      match Binary.index_lookup index start_addr with
      | Some f -> push ranges f (start_addr, end_addr, count)
      | None -> ())
    profile.Profile.ranges;
  (branches, ranges)

let select_hot_funcs config (binary : Binary.t) (profile : Profile.t) =
  let eligible =
    Array.to_list binary.Binary.symbols
    |> List.filter_map (fun s ->
           let fid = s.Binary.fs_fid in
           if List.mem fid config.exclude then None
           else Some (fid, Profile.func_records profile fid))
  in
  let hot =
    List.filter (fun (_, records) -> records >= config.hot_threshold) eligible
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let hot = match config.max_hot_funcs with None -> hot | Some n -> List.filteri (fun i _ -> i < n) hot in
  let hot = List.map fst hot in
  if config.lite then hot
  else
    (* Non-lite: the emission must be complete, so cold and never-executed
       functions ride along after the hot set, in original order. *)
    hot
    @ (List.map fst eligible |> List.filter (fun fid -> not (List.mem fid hot)))

module Trace = Ocolos_obs.Trace
module Events = Ocolos_obs.Events

(* Bracket one optimization pass in the structured event log. A pass that
   raises (e.g. an injected [bolt.func_reorder] fault) still gets its end
   event, tagged with the error, before the exception propagates. *)
let logged_pass name f =
  Events.log "bolt.pass_start" ~fields:[ ("pass", Trace.S name) ];
  match f () with
  | r ->
    Events.log "bolt.pass_end" ~fields:[ ("pass", Trace.S name) ];
    r
  | exception e ->
    Events.log "bolt.pass_end"
      ~fields:[ ("pass", Trace.S name); ("error", Trace.S (Printexc.to_string e)) ];
    raise e

(* Per-function fault points of the bolt domain — [bolt.cfg],
   [bolt.bb_reorder] and [bolt.peephole] are cut once per hot function and
   absorb [Injected] as "skip this function" / "keep the unoptimized form"
   degradation (the partial-CFG contract: a pass failing on one function
   must not cost the rest of the layout). [bolt.func_reorder] is cut once
   per run and *raises*: a broken global order has no per-function
   fallback, so the supervisor drops a degradation tier instead. Every
   absorbed firing is attributed to its fid in [result.failed], which feeds
   the supervisor's quarantine. *)
let run ?(config = default_config) ?extern_entry ?fault ~(binary : Binary.t)
    ~(profile : Profile.t) () =
  Trace.span "bolt.run" ~attrs:[ ("binary", Trace.S binary.Binary.name) ] @@ fun run_sp ->
  let cut name = match fault with None -> () | Some f -> Ocolos_util.Fault.cut f name in
  let extern_entry =
    match extern_entry with
    | Some f -> f
    | None -> fun fid -> Some binary.Binary.symbols.(fid).Binary.fs_entry
  in
  let hot_candidates = select_hot_funcs config binary profile in
  let branches_by_fid, ranges_by_fid = partition_profile binary profile in
  let skipped = ref 0 in
  let work_instrs = ref 0 in
  let failed = ref [] in
  let fail fid point = failed := (fid, point) :: !failed in
  (* Reconstruct, attach counts, peephole. *)
  let reconstructed =
    logged_pass "cfg" @@ fun () ->
    Trace.span "bolt.cfg" @@ fun sp ->
    let cfg_of = Cfg.reconstructor binary in
    let r =
      List.filter_map
        (fun fid ->
          match
            cut "bolt.cfg";
            cfg_of fid
          with
          | rc ->
            Cfg.attach_profile rc
              ~branches:(Option.value ~default:[] (Hashtbl.find_opt branches_by_fid fid))
              ~ranges:(Option.value ~default:[] (Hashtbl.find_opt ranges_by_fid fid));
            work_instrs := !work_instrs + rc.Cfg.rc_instr_count;
            Some (fid, rc)
          | exception Cfg.Unsupported _ ->
            incr skipped;
            None
          | exception Ocolos_util.Fault.Injected (point, _) ->
            fail fid point;
            None)
        hot_candidates
    in
    Trace.set_attr sp "funcs" (Trace.I (List.length r));
    Trace.set_attr sp "skipped" (Trace.I !skipped);
    r
  in
  let hot_fids = List.map fst reconstructed in
  let hot_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace hot_set f ()) hot_fids;
  (* Per-function block layout. *)
  let block_layouts =
    logged_pass "bb_reorder" @@ fun () ->
    Trace.span "bolt.bb_reorder"
      ~attrs:[ ("split", Trace.B config.split_functions) ]
    @@ fun sp ->
    let layouts =
      List.map
        (fun (fid, rc) ->
          let original () = (List.init (Array.length rc.Cfg.rc_block_addr) (fun i -> i), []) in
          let hot_order, cold =
            if config.reorder_blocks then
              match
                cut "bolt.bb_reorder";
                Bb_reorder.layout_func ~split:config.split_functions rc
              with
              | layout -> layout
              | exception Ocolos_util.Fault.Injected (point, _) ->
                fail fid point;
                original ()
            else original ()
          in
          (fid, hot_order, cold))
        reconstructed
    in
    Trace.set_attr sp "cold_blocks"
      (Trace.I (List.fold_left (fun acc (_, _, cold) -> acc + List.length cold) 0 layouts));
    layouts
  in
  (* Function order over the hot set. *)
  let call_graph =
    let edge_weight = Hashtbl.create 256 in
    Hashtbl.iter
      (fun (caller, callee) w ->
        if Hashtbl.mem hot_set caller && Hashtbl.mem hot_set callee then
          Hashtbl.replace edge_weight (caller, callee) w)
      profile.Profile.calls;
    { Func_reorder.nodes = hot_fids;
      edge_weight;
      node_size = (fun fid -> Binary.sym_size binary.Binary.symbols.(fid));
      node_heat = (fun fid -> Profile.func_records profile fid) }
  in
  let func_order =
    logged_pass "func_reorder" @@ fun () ->
    Trace.span "bolt.func_reorder"
      ~attrs:
        [ ( "algorithm",
            Trace.S
              (match config.func_order with
              | C3 -> "c3"
              | Pettis_hansen -> "pettis_hansen"
              | Original_order -> "original") );
          ("nodes", Trace.I (List.length hot_fids)) ]
    @@ fun _ ->
    cut "bolt.func_reorder";
    match config.func_order with
    | C3 -> Func_reorder.c3 call_graph
    | Pettis_hansen -> Func_reorder.pettis_hansen call_graph
    | Original_order -> Func_reorder.original call_graph
  in
  (* Synthetic IR program: reconstructed bodies for hot functions, dummies
     elsewhere (they are never emitted, only resolved externally). *)
  let rc_by_fid = Hashtbl.create 64 in
  List.iter (fun (fid, rc) -> Hashtbl.replace rc_by_fid fid rc) reconstructed;
  let funcs =
    logged_pass "peephole" @@ fun () ->
    Trace.span "bolt.peephole" ~attrs:[ ("enabled", Trace.B config.peephole) ] @@ fun _ ->
    Array.init (Array.length binary.Binary.symbols) (fun fid ->
        match Hashtbl.find_opt rc_by_fid fid with
        | Some rc -> (
          let f = rc.Cfg.rc_func in
          if not config.peephole then f
          else
            match
              cut "bolt.peephole";
              fst (Peephole.run_func f)
            with
            | g -> g
            | exception Ocolos_util.Fault.Injected (point, _) ->
              fail fid point;
              f)
        | None ->
          { Ir.fid;
            fname = binary.Binary.symbols.(fid).Binary.fs_name;
            blocks = [| { Ir.bid = 0; body = []; term = Ir.Thalt } |] })
  in
  let entry_fid =
    let index = Binary.build_addr_index binary in
    Option.value ~default:0 (Binary.index_lookup index binary.Binary.entry)
  in
  let program =
    { Ir.funcs; vtables = [||]; entry_fid; globals_words = 0; global_init = [] }
  in
  let layout =
    List.map
      (fun fid ->
        let _, hot_order, cold = List.find (fun (f, _, _) -> f = fid) block_layouts in
        { Layout.fid; hot = hot_order; cold })
      func_order
  in
  let bolt_base = align_up (sections_end binary + 0x100000) 0x100000 in
  let table_base = fresh_data_base binary in
  let emitted =
    logged_pass "emit" @@ fun () ->
    Trace.span "bolt.emit" ~attrs:[ ("text_base", Trace.I bolt_base) ] @@ fun _ ->
    Emit.emit ~text_base:bolt_base ~globals_base:table_base ~extern_entry
      ~section_name:".text" ~emit_vtables:false ~name:(binary.Binary.name ^ ".bolt.text")
      program layout
  in
  let new_text = emitted.Emit.binary in
  work_instrs := !work_instrs + Binary.instr_count new_text;
  let translation =
    List.map
      (fun fid ->
        (binary.Binary.symbols.(fid).Binary.fs_entry, Hashtbl.find emitted.Emit.func_entry fid))
      hot_fids
  in
  (* Frame maps: per hot function, old-version PC -> new-version PC, built
     from the block-reorder pass's address mapping ([rc_block_addr] x
     [emitted.block_addr]) plus instruction-granular tracking over the raw
     old code and the emitted code. This is what makes the old text
     immediately collectable: live frames migrate through it instead of
     draining. *)
  let frame_maps =
    logged_pass "frame_map" @@ fun () ->
    Trace.span "bolt.frame_map" @@ fun sp ->
    let per_bid : (int * int, (int * Instr.t) list) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (fun addr ->
        match Hashtbl.find_opt new_text.Binary.debug addr with
        | Some key ->
          let l = Option.value ~default:[] (Hashtbl.find_opt per_bid key) in
          Hashtbl.replace per_bid key ((addr, Hashtbl.find new_text.Binary.code addr) :: l)
        | None -> ())
      new_text.Binary.code_order;
    let trackers =
      if config.exact_frame_maps then Frame_map.default_trackers
      else [ Frame_map.block_boundary_tracker ]
    in
    let maps =
      List.filter_map
        (fun (fid, rc) ->
          match Hashtbl.find_opt emitted.Emit.func_entry fid with
          | None -> None
          | Some new_entry ->
            let blocks =
              Array.of_list
                (List.filter_map
                   (fun bid ->
                     match Hashtbl.find_opt emitted.Emit.block_addr (fid, bid) with
                     | Some ns ->
                       Some (bid, rc.Cfg.rc_block_addr.(bid), rc.Cfg.rc_block_end.(bid), ns)
                     | None -> None)
                   (List.init (Array.length rc.Cfg.rc_block_addr) (fun i -> i)))
            in
            let fm =
              Frame_map.build ~trackers ~fid
                ~old_entry:binary.Binary.symbols.(fid).Binary.fs_entry ~new_entry ~blocks
                ~read_old:(fun a -> Binary.find_instr binary a)
                ~new_instrs:(fun bid ->
                  Array.of_list
                    (List.rev (Option.value ~default:[] (Hashtbl.find_opt per_bid (fid, bid)))))
                ()
            in
            Some (fid, fm))
        reconstructed
    in
    Trace.set_attr sp "exact_points"
      (Trace.I (List.fold_left (fun acc (_, fm) -> acc + Frame_map.exact_points fm) 0 maps));
    maps
  in
  let translate = Hashtbl.create 64 in
  List.iter (fun (o, n) -> Hashtbl.replace translate o n) translation;
  let tr addr = match Hashtbl.find_opt translate addr with Some n -> n | None -> addr in
  (* Merge into the BOLTed binary image. *)
  let code = Hashtbl.copy binary.Binary.code in
  Hashtbl.iter (fun a i -> Hashtbl.replace code a i) new_text.Binary.code;
  let code_order =
    let all = Array.append binary.Binary.code_order new_text.Binary.code_order in
    Array.sort compare all;
    all
  in
  let symbols =
    Array.map
      (fun s ->
        if Hashtbl.mem rc_by_fid s.Binary.fs_fid then begin
          let ns = new_text.Binary.symbols.(
            (* new_text symbols are indexed densely by their position in its
               own symbol array; find by fid *)
            let rec find i =
              if new_text.Binary.symbols.(i).Binary.fs_fid = s.Binary.fs_fid then i
              else find (i + 1)
            in
            find 0)
          in
          { s with Binary.fs_entry = ns.Binary.fs_entry;
            fs_ranges = ns.Binary.fs_ranges @ s.Binary.fs_ranges }
        end
        else s)
      binary.Binary.symbols
  in
  let sections =
    List.map
      (fun (s : Binary.section) ->
        if s.Binary.sec_name = ".text" then { s with Binary.sec_name = "bolt.org.text" } else s)
      binary.Binary.sections
    @ new_text.Binary.sections
  in
  let vtables =
    Array.map
      (fun vt -> { vt with Binary.vt_entries = Array.map tr vt.Binary.vt_entries })
      binary.Binary.vtables
  in
  let debug = Hashtbl.copy binary.Binary.debug in
  Hashtbl.iter (fun a v -> Hashtbl.replace debug a v) new_text.Binary.debug;
  let merged =
    { Binary.name = binary.Binary.name ^ ".bolt";
      sections;
      code;
      code_order;
      symbols;
      vtables;
      globals_base = binary.Binary.globals_base;
      globals_words = binary.Binary.globals_words;
      global_init = binary.Binary.global_init @ new_text.Binary.global_init;
      entry = tr binary.Binary.entry;
      debug }
  in
  let failed = List.sort compare !failed in
  Trace.set_attr run_sp "funcs_reordered" (Trace.I (List.length hot_fids));
  Trace.set_attr run_sp "work_instrs" (Trace.I !work_instrs);
  Trace.set_attr run_sp "failed" (Trace.I (List.length failed));
  Ocolos_obs.Metrics.count "ocolos_bolt_runs_total" 1;
  Ocolos_obs.Metrics.count "ocolos_bolt_funcs_reordered_total" (List.length hot_fids);
  Ocolos_obs.Metrics.count "ocolos_bolt_func_failures_total" (List.length failed);
  { merged;
    new_text;
    translation;
    hot_fids;
    funcs_reordered = List.length hot_fids;
    work_instrs = !work_instrs;
    skipped = !skipped;
    failed;
    bolt_base;
    frame_maps }
