(** The [bolt.miscompile] fault domain: silent, deterministic corruption of
    a finished {!Bolt.result}, injected past every optimization pass so
    that only the Tier-1 validator ({!Validate}) and the Tier-2 shadow
    checker stand between the corruption and the fleet.

    Modes: [branch_polarity] (negate one conditional in place),
    [drop_block] (erase one non-entry block's instructions), [stale_reloc]
    (re-aim one relocated call / fp-create at the callee's old entry),
    [frame_map] (shift one exact OSR map entry mid-instruction), and
    [jump_table] (rotate one emitted jump table's words — every word stays
    a valid block start, so this passes Tier 1 by design and must be caught
    at run time). *)

(** The five injection-point names, ["bolt.miscompile.branch_polarity"]
    etc., in catalog order. *)
val points : string list

(** [apply ~point ~salt result] returns a corrupted copy of [result] (the
    input is never mutated) and the number of mutations applied. [salt]
    deterministically selects among candidate corruption sites; 0 mutations
    means no applicable site existed. Raises [Invalid_argument] on an
    unknown point. *)
val apply : point:string -> salt:int -> Bolt.result -> Bolt.result * int
