(** The BOLT pipeline: profile + binary -> optimized binary (paper
    Section II-D).

    Selects hot functions from the profile, reconstructs their CFGs from
    machine code, reorders basic blocks (with optional hot/cold splitting),
    reorders functions (C3 by default), and emits the optimized code into a
    new [.text] section at higher addresses while the original code remains
    in place as [bolt.org.text]. *)

type func_order = C3 | Pettis_hansen | Original_order

type config = {
  reorder_blocks : bool;
  split_functions : bool;
  func_order : func_order;
  hot_threshold : int;  (** min LBR records for a function to be optimized *)
  max_hot_funcs : int option;
  peephole : bool;
  exclude : int list;
      (** fids never selected for optimization (supervisor quarantine) *)
  exact_frame_maps : bool;
      (** emit instruction-granular OSR frame maps (the default); when
          false only block boundaries are mapped, so every mid-block
          pointer migrates through a compensation stub *)
  lite : bool;
      (** true (the default, as in BOLT [-lite]): only profiled-hot
          functions are re-emitted and the rest keep their old text.
          False is the [-use-old-text=false] analog: cold and
          never-executed functions are re-emitted verbatim after the hot
          set, making the new image complete — required for a campaign to
          retire the entire original text. *)
}

val default_config : config

type result = {
  merged : Ocolos_binary.Binary.t;
      (** original + optimized sections: the BOLTed binary (offline use) *)
  new_text : Ocolos_binary.Binary.t;
      (** only the optimized section — what OCOLOS injects at run time *)
  translation : (int * int) list;
      (** old entry -> new entry for every optimized function *)
  hot_fids : int list;
  funcs_reordered : int;
  work_instrs : int;  (** processed volume, for the time model *)
  skipped : int;  (** functions whose reconstruction was refused *)
  failed : (int * string) list;
      (** (fid, fault point) pairs degraded per-function by an injected
          fault — excluded from (cfg) or left unoptimized by (bb_reorder,
          peephole) this run; feeds the supervisor's quarantine *)
  bolt_base : int;
  frame_maps : (int * Frame_map.t) list;
      (** per optimized function, the OSR map from its old code version
          into [new_text] (see {!Frame_map}) *)
}

val align_up : int -> int -> int
val sections_end : Ocolos_binary.Binary.t -> int
val fresh_data_base : Ocolos_binary.Binary.t -> int

(** [run ~binary ~profile ()] optimizes [binary] under [profile].
    [extern_entry] overrides how calls to non-optimized functions are
    resolved (OCOLOS's continuous mode pins them to the original C0 entries
    so that old versions can be garbage-collected); it defaults to the input
    binary's symbol entries.

    With [?fault], the [bolt.*] domain is exercised: [bolt.cfg],
    [bolt.bb_reorder] and [bolt.peephole] are cut once per hot function and
    absorb {!Ocolos_util.Fault.Injected} as per-function degradation
    (skip / original block order / no peephole), attributed in
    [result.failed]; [bolt.func_reorder] is cut once per run and raises —
    no per-function fallback exists for a broken global order.
    {!Ocolos_util.Fault.Killed} always escapes. *)
val run :
  ?config:config ->
  ?extern_entry:(int -> int option) ->
  ?fault:Ocolos_util.Fault.t ->
  binary:Ocolos_binary.Binary.t ->
  profile:Ocolos_profiler.Profile.t ->
  unit ->
  result
