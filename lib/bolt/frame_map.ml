(* Per-function frame maps for on-stack replacement.

   A frame map records, for one BOLTed function, how addresses of the old
   code version correspond to addresses in the freshly emitted version, so
   that OCOLOS can migrate live frames (return addresses, paused PCs) into
   C_{i+1} instead of keeping the old text alive until they drain.

   The map is assembled from *trackers*, one per address-granularity, run
   over every basic block of the function:

   - {!block_boundary_tracker} pairs each old block start with its new
     start — always available, derived directly from the block-reorder
     pass's address mapping.
   - {!exact_instr_tracker} extends the map to instruction granularity by
     positionally pairing the old and new instruction sequences of each
     block. Peephole-removed no-ops are skipped on the old side (their
     address maps to the next surviving instruction — exact, since a no-op
     has no effect), and instructions that differ only in a statically
     relocated target (calls, branches, jumps, fp materializations) still
     pair. The walk stops at the first real divergence; addresses past it
     stay block-granular and fall back to a compensation stub.

   A PC that resolves [Exact] can be rewritten in place. A PC inside a
   mapped block but between exact points resolves [Mid_block]: the caller
   builds a compensation stub that re-establishes block-local state (by
   running the remainder of the old block verbatim) before entering the
   new code. Anything else is [Unmapped] — a map-lookup miss, which the
   replacement transaction treats as a fault. *)

open Ocolos_isa

type block_site = {
  bs_bid : int;
  bs_old_start : int;
  bs_old_end : int; (* exclusive *)
  bs_new_start : int;
}

type t = {
  fm_fid : int;
  fm_old_entry : int;
  fm_new_entry : int;
  fm_blocks : block_site array; (* sorted by bs_old_start *)
  fm_exact : (int, int) Hashtbl.t; (* old pc -> new pc *)
}

type resolution = Exact of int | Mid_block of block_site | Unmapped

type tracker = {
  tk_name : string;
  tk_track :
    old_instrs:(int * Instr.t) array ->
    new_instrs:(int * Instr.t) array ->
    old_end:int ->
    block_new:(int -> int option) ->
    (int * int) list;
}

(* Old block start -> new block start. The coarsest map; every other
   tracker refines it. *)
let block_boundary_tracker =
  { tk_name = "block_boundary";
    tk_track =
      (fun ~old_instrs ~new_instrs ~old_end:_ ~block_new:_ ->
        if Array.length old_instrs = 0 || Array.length new_instrs = 0 then []
        else [ (fst old_instrs.(0), fst new_instrs.(0)) ]) }

(* Two instructions occupy the same program point if they are identical or
   differ only in a statically relocated target. *)
let pairable o n =
  o = n
  ||
  match (Instr.static_target o, Instr.static_target n) with
  | Some _, Some tn -> ( try Instr.with_target o tn = n with Invalid_argument _ -> false)
  | _ -> false

(* Instruction-granular positional pairing of one block's old and new code.
   Invariant: at each step the next new instruction is the continuation of
   the program point at the next old instruction, so pairing their
   addresses is an exact migration. *)
let exact_instr_tracker =
  { tk_name = "exact_instr";
    tk_track =
      (fun ~old_instrs ~new_instrs ~old_end ~block_new ->
        let n_old = Array.length old_instrs and n_new = Array.length new_instrs in
        let pairs = ref [] in
        let stop = ref false in
        let i = ref 0 and j = ref 0 in
        while (not !stop) && !i < n_old do
          let old_addr, old_i = old_instrs.(!i) in
          if !j < n_new && pairable old_i (snd new_instrs.(!j)) then begin
            pairs := (old_addr, fst new_instrs.(!j)) :: !pairs;
            incr i;
            incr j
          end
          else if Peephole.is_noop_instr old_i then begin
            (* Removed by peephole: the program point survives as the next
               emitted instruction (or the fallthrough block if the no-op
               closed the block). *)
            (match
               if !j < n_new then Some (fst new_instrs.(!j)) else block_new old_end
             with
            | Some a -> pairs := (old_addr, a) :: !pairs
            | None -> ());
            incr i
          end
          else begin
            (* A trailing unconditional jump whose emitted form was elided
               (the reordered layout made its target the fallthrough): being
               *at* the jump is the same program point as being at its
               target. *)
            (match old_i with
            | Instr.Jump t -> (
              match block_new t with
              | Some a -> pairs := (old_addr, a) :: !pairs
              | None -> ())
            | _ -> ());
            stop := true
          end
        done;
        !pairs) }

let default_trackers = [ block_boundary_tracker; exact_instr_tracker ]

let build ?(trackers = default_trackers) ~fid ~old_entry ~new_entry ~blocks ~read_old
    ~new_instrs () =
  let sites =
    Array.map
      (fun (bid, old_start, old_end, new_start) ->
        { bs_bid = bid; bs_old_start = old_start; bs_old_end = old_end; bs_new_start = new_start })
      blocks
  in
  Array.sort (fun a b -> compare a.bs_old_start b.bs_old_start) sites;
  let block_new_tbl = Hashtbl.create (Array.length sites) in
  Array.iter (fun s -> Hashtbl.replace block_new_tbl s.bs_old_start s.bs_new_start) sites;
  let block_new addr = Hashtbl.find_opt block_new_tbl addr in
  let exact = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      (* Raw old code of the block, by size-accurate walk. *)
      let olds = ref [] in
      let a = ref s.bs_old_start in
      (try
         while !a < s.bs_old_end do
           match read_old !a with
           | Some i ->
             olds := (!a, i) :: !olds;
             a := !a + Instr.size i
           | None -> raise Exit
         done
       with Exit -> ());
      let old_instrs = Array.of_list (List.rev !olds) in
      let news = new_instrs s.bs_bid in
      List.iter
        (fun tk ->
          List.iter
            (fun (o, n) -> if not (Hashtbl.mem exact o) then Hashtbl.replace exact o n)
            (tk.tk_track ~old_instrs ~new_instrs:news ~old_end:s.bs_old_end ~block_new))
        trackers)
    sites;
  { fm_fid = fid;
    fm_old_entry = old_entry;
    fm_new_entry = new_entry;
    fm_blocks = sites;
    fm_exact = exact }

let block_new_start t addr =
  (* binary search by old start; hit only on exact block starts *)
  let lo = ref 0 and hi = ref (Array.length t.fm_blocks - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s = t.fm_blocks.(mid) in
    if s.bs_old_start = addr then found := Some s.bs_new_start
    else if s.bs_old_start < addr then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let containing_block t addr =
  let lo = ref 0 and hi = ref (Array.length t.fm_blocks - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s = t.fm_blocks.(mid) in
    if addr < s.bs_old_start then hi := mid - 1
    else if addr >= s.bs_old_end then lo := mid + 1
    else found := Some s
  done;
  !found

let resolve t addr =
  match Hashtbl.find_opt t.fm_exact addr with
  | Some n -> Exact n
  | None -> (
    match containing_block t addr with Some s -> Mid_block s | None -> Unmapped)

let exact_points t = Hashtbl.length t.fm_exact
