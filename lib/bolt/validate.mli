(** Tier-1 miscompile containment: pre-commit translation validation.

    Re-derives what the optimized text should look like from the input
    binary and checks a {!Bolt.result} against it before the code is ever
    injected into a live process: block-set equality modulo relocation under
    the layout permutation, branch polarity/target consistency (including
    the emitter's negated-and-swapped encoding), fallthrough
    materialization, call / fp-create / jump-table relocation validity, and
    frame-map bijectivity over covered PCs. A clean report is the
    precondition for {!Txn.replace_code}; a rejection names the BOLT pass
    whose invariant broke so the supervisor can quarantine and degrade.

    Deliberate blind spot: jump-table words are checked for validity (each
    word is some block start of the owning function) but not correspondence,
    so a permutation of valid words passes Tier 1 — the Tier-2 shadow
    checker ({!Shadow} in [lib/core]) owns that failure mode at run time. *)

type rejection = {
  rj_fid : int;  (** offending function, [-1] for whole-layout checks *)
  rj_check : string;  (** one of {!checks} *)
  rj_reason : string;
}

type report = {
  rp_funcs : int;  (** functions validated *)
  rp_blocks : int;  (** blocks compared *)
  rp_instrs : int;  (** new-text instructions checked *)
  rp_rejections : rejection list;
}

(** Check names, in pass order:
    [["bb_reorder"; "func_reorder"; "peephole"; "emit"; "frame_map"]]. *)
val checks : string list

val ok : report -> bool

(** Functions named by at least one rejection, sorted, deduplicated. *)
val rejected_fids : report -> int list

(** Rejections attributed to one named check. *)
val check_rejections : report -> string -> int

(** [run ~binary result] validates [result] against the binary BOLT
    optimized. [extern_entry] must be the same resolver passed to
    {!Bolt.run} (continuous campaigns pin calls to non-optimized functions
    at their current entries); it defaults to the input binary's symbol
    entries. *)
val run :
  ?extern_entry:(int -> int option) ->
  binary:Ocolos_binary.Binary.t ->
  Bolt.result ->
  report

val pp_rejection : Format.formatter -> rejection -> unit
val pp_report : Format.formatter -> report -> unit
