(** CFG reconstruction from machine code (BOLT's disassembly front-end).

    Recovers a function's control-flow graph by recursive traversal from its
    entry point, splitting provisional blocks when a later branch target
    lands inside one and recovering jump-table targets from the data image.
    The result is a symbolic {!Ocolos_isa.Ir.func}, re-emittable under any
    layout, plus address maps for profile attachment. *)

type reconstructed = {
  rc_fid : int;
  rc_func : Ocolos_isa.Ir.func;  (** bid 0 is the entry block *)
  rc_block_addr : int array;  (** bid -> original start address *)
  rc_block_end : int array;  (** bid -> original end address, exclusive *)
  rc_counts : int array;  (** bid -> execution count (0 before attach) *)
  rc_edges : (int * int, int) Hashtbl.t;  (** (src bid, dst bid) -> count *)
  rc_instr_count : int;
}

(** Raised when a function cannot be safely reconstructed (unknown indirect
    jump idiom, target outside the function, ...). BOLT skips such
    functions. *)
exception Unsupported of string

(** Generic reconstruction over abstract code/data accessors. *)
val reconstruct :
  fid:int ->
  entry:int ->
  read_code:(int -> Ocolos_isa.Instr.t option) ->
  read_data:(int -> int option) ->
  in_function:(int -> bool) ->
  fid_of_entry:(int -> int option) ->
  fname:string ->
  reconstructed

(** Reconstruct a function of a binary image. *)
val of_binary : Ocolos_binary.Binary.t -> int -> reconstructed

(** [reconstructor binary] builds the O(binary)-sized lookup structures
    once and returns [of_binary binary] partially applied to them: use it
    when reconstructing many functions of the same image (BOLT's
    front-end, the Tier-1 validator), where per-call setup would be
    quadratic. The returned closure raises {!Unsupported} like
    {!of_binary}. *)
val reconstructor : Ocolos_binary.Binary.t -> int -> reconstructed

(** Attach profile counts. [branches] are this function's taken edges as
    (from, to, count); [ranges] its straight-line runs as
    (start, end, count). Walking a range bumps every covered block and each
    fallthrough edge crossed. *)
val attach_profile :
  reconstructed ->
  branches:(int * int * int) list ->
  ranges:(int * int * int) list ->
  unit

val total_count : reconstructed -> int
val edge_count : reconstructed -> int * int -> int
