(* Tier-1 miscompile containment: pre-commit translation validation.

   After BOLT has produced a candidate layout, re-derive what the optimized
   text *should* look like from the input binary and check the emitted code
   against it, block by block, under the layout permutation recorded in the
   frame maps. The checks mirror the pipeline's passes so a rejection names
   the pass whose invariant broke:

   - [bb_reorder]: every old block's terminator is consistent under the
     block permutation — branch polarity/targets match (possibly in the
     negated-and-swapped encoding the emitter uses when the taken successor
     is laid next), elided jumps really fall through to the right block,
     materialized jumps hit the right block start.
   - [func_reorder]: the old-entry -> new-entry translation is injective
     and agrees with the frame maps.
   - [peephole]: block bodies are instruction-identical modulo no-op
     deletion and static-target relocation.
   - [emit]: the new text decodes everywhere a mapped block lives (a
     dropped block is a decode hole), every relocated call / fp-create
     target is exactly the entry the translation predicts (a stale
     relocation is not), and every jump-table word lands on a block start
     of the owning function.
   - [frame_map]: block sites cover the old CFG exactly and the
     instruction-granular map has both ends on instruction boundaries
     inside their block, injectively — except that a peephole-removed
     no-op legitimately forwards to the next surviving instruction's new
     PC, and a block emitted empty (all-no-op body, elided fallthrough)
     legitimately shares its successor's new start.

   Deliberate blind spot, by design: jump-table words are checked for
   *validity* (each word is some block start of the function), not for
   *correspondence* (word i is the right block). A permutation of valid
   table words — [bolt.miscompile.jump_table] — passes Tier 1 and must be
   caught by the Tier-2 shadow checker at run time. *)

open Ocolos_isa
open Ocolos_binary

type rejection = { rj_fid : int; rj_check : string; rj_reason : string }

type report = {
  rp_funcs : int; (* functions validated *)
  rp_blocks : int; (* blocks compared *)
  rp_instrs : int; (* new-text instructions checked *)
  rp_rejections : rejection list;
}

let checks = [ "bb_reorder"; "func_reorder"; "peephole"; "emit"; "frame_map" ]
let ok r = r.rp_rejections = []

let rejected_fids r =
  List.filter_map (fun rj -> if rj.rj_fid >= 0 then Some rj.rj_fid else None) r.rp_rejections
  |> List.sort_uniq compare

let check_rejections r check =
  List.length (List.filter (fun rj -> rj.rj_check = check) r.rp_rejections)

(* Bail out of one function's walk at the first structural divergence; the
   rejection has already been recorded. *)
exception Stop

let run ?extern_entry ~(binary : Binary.t) (result : Bolt.result) =
  let extern_entry =
    match extern_entry with
    | Some f -> f
    | None -> fun fid -> Some binary.Binary.symbols.(fid).Binary.fs_entry
  in
  let new_text = result.Bolt.new_text in
  let rejections = ref [] in
  let reject fid check fmt =
    Fmt.kstr
      (fun s -> rejections := { rj_fid = fid; rj_check = check; rj_reason = s } :: !rejections)
      fmt
  in
  let stop fid check fmt =
    Fmt.kstr
      (fun s ->
        rejections := { rj_fid = fid; rj_check = check; rj_reason = s } :: !rejections;
        raise Stop)
      fmt
  in
  let translated = Hashtbl.create 64 in
  List.iter (fun (o, n) -> Hashtbl.replace translated o n) result.Bolt.translation;
  let hot = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace hot f ()) result.Bolt.hot_fids;
  (* Where a call/fp-create of [callee] must point in the new text: its new
     entry when the callee was re-emitted this run, its externally resolved
     (current) entry otherwise. *)
  let expected_entry callee =
    if callee < 0 || callee >= Array.length binary.Binary.symbols then None
    else if Hashtbl.mem hot callee then
      Hashtbl.find_opt translated binary.Binary.symbols.(callee).Binary.fs_entry
    else extern_entry callee
  in
  let new_data = Hashtbl.create 64 in
  List.iter (fun (a, v) -> Hashtbl.replace new_data a v) new_text.Binary.global_init;
  let read_new a = Binary.find_instr new_text a in
  (* Translation injectivity: two functions sharing a new entry is a broken
     global order. *)
  (let seen = Hashtbl.create 64 in
   List.iter
     (fun (o, n) ->
       match Hashtbl.find_opt seen n with
       | Some o' ->
         reject (-1) "func_reorder" "old entries 0x%x and 0x%x both translate to 0x%x" o' o n
       | None -> Hashtbl.add seen n o)
     result.Bolt.translation);
  let funcs = ref 0 in
  let blocks = ref 0 in
  let instrs = ref 0 in
  let cfg_of = Cfg.reconstructor binary in
  let validate_func (fid, (fm : Frame_map.t)) =
    incr funcs;
    let sym = binary.Binary.symbols.(fid) in
    match cfg_of fid with
    | exception Cfg.Unsupported msg ->
      reject fid "emit" "old CFG reconstruction failed: %s" msg
    | rc ->
      let nblocks = Array.length rc.Cfg.rc_block_addr in
      (* ---- frame-map structure ---- *)
      if fm.Frame_map.fm_fid <> fid then
        reject fid "frame_map" "frame map carries fid %d" fm.Frame_map.fm_fid;
      if fm.Frame_map.fm_old_entry <> sym.Binary.fs_entry then
        reject fid "frame_map" "fm_old_entry 0x%x is not the function entry 0x%x"
          fm.Frame_map.fm_old_entry sym.Binary.fs_entry;
      (match Hashtbl.find_opt translated sym.Binary.fs_entry with
      | Some n when n = fm.Frame_map.fm_new_entry -> ()
      | Some n ->
        reject fid "func_reorder" "translation says new entry 0x%x, frame map says 0x%x" n
          fm.Frame_map.fm_new_entry
      | None -> reject fid "func_reorder" "optimized function has no translation entry");
      let site_of_bid = Array.make nblocks None in
      let new_starts = Hashtbl.create nblocks in
      Array.iter
        (fun (bs : Frame_map.block_site) ->
          if bs.Frame_map.bs_bid < 0 || bs.Frame_map.bs_bid >= nblocks then
            reject fid "frame_map" "block site for unknown bid %d" bs.Frame_map.bs_bid
          else site_of_bid.(bs.Frame_map.bs_bid) <- Some bs;
          (* A block emitted empty (all-no-op body, elided fallthrough)
             shares its successor's new start, so sharing is legitimate;
             the per-block walk validates each site's content anyway. *)
          Hashtbl.replace new_starts bs.Frame_map.bs_new_start bs.Frame_map.bs_bid)
        fm.Frame_map.fm_blocks;
      for bid = 0 to nblocks - 1 do
        match site_of_bid.(bid) with
        | None -> reject fid "frame_map" "block %d of the old CFG has no frame-map site" bid
        | Some bs ->
          if
            bs.Frame_map.bs_old_start <> rc.Cfg.rc_block_addr.(bid)
            || bs.Frame_map.bs_old_end <> rc.Cfg.rc_block_end.(bid)
          then
            reject fid "frame_map" "block %d old range [0x%x,0x%x) disagrees with CFG [0x%x,0x%x)"
              bid bs.Frame_map.bs_old_start bs.Frame_map.bs_old_end rc.Cfg.rc_block_addr.(bid)
              rc.Cfg.rc_block_end.(bid)
      done;
      (match site_of_bid.(0) with
      | Some bs when bs.Frame_map.bs_new_start <> fm.Frame_map.fm_new_entry ->
        reject fid "func_reorder" "entry block emitted at 0x%x, not at the new entry 0x%x"
          bs.Frame_map.bs_new_start fm.Frame_map.fm_new_entry
      | _ -> ());
      let new_start_of bid =
        match site_of_bid.(bid) with Some bs -> Some bs.Frame_map.bs_new_start | None -> None
      in
      (* ---- per-block linear walk of the emitted code ---- *)
      let walk (blk : Ir.block) (bs : Frame_map.block_site) =
        incr blocks;
        let pc = ref bs.Frame_map.bs_new_start in
        let next check =
          match read_new !pc with
          | Some i -> i
          | None -> stop fid check "decode hole at 0x%x in block %d (dropped block?)" !pc blk.Ir.bid
        in
        let advance i =
          incr instrs;
          pc := !pc + Instr.size i
        in
        let need bid' =
          match new_start_of bid' with
          | Some a -> a
          | None -> raise Stop (* already rejected by the frame-map coverage check *)
        in
        List.iter
          (fun si ->
            match si with
            | Ir.Plain i when Peephole.is_noop_instr i -> (
              match read_new !pc with
              | Some j when j = i -> advance j
              | _ -> () (* peephole deleted it *))
            | Ir.Plain i ->
              let j = next "emit" in
              if j = i then advance j
              else
                stop fid "peephole" "body mismatch at 0x%x in block %d: expected %s, found %s"
                  !pc blk.Ir.bid (Instr.to_string i) (Instr.to_string j)
            | Ir.SCallInd r -> (
              match next "emit" with
              | Instr.CallInd r' when r' = r -> advance (Instr.CallInd r')
              | j ->
                stop fid "peephole" "expected indirect call at 0x%x, found %s" !pc
                  (Instr.to_string j))
            | Ir.SCall callee -> (
              match (next "emit", expected_entry callee) with
              | Instr.Call a, Some e when a = e -> advance (Instr.Call a)
              | Instr.Call a, Some e ->
                stop fid "emit"
                  "stale call relocation at 0x%x: callee %d must resolve to 0x%x, found 0x%x"
                  !pc callee e a
              | Instr.Call _, None ->
                stop fid "emit" "call at 0x%x targets unresolvable function %d" !pc callee
              | j, _ ->
                stop fid "peephole" "expected call at 0x%x, found %s" !pc (Instr.to_string j))
            | Ir.SFpCreate (r, callee) -> (
              match (next "emit", expected_entry callee) with
              | Instr.FpCreate (r', a), Some e when r' = r && a = e ->
                advance (Instr.FpCreate (r', a))
              | Instr.FpCreate (r', a), Some e when r' = r ->
                stop fid "emit"
                  "stale fp-create relocation at 0x%x: function %d must resolve to 0x%x, found \
                   0x%x"
                  !pc callee e a
              | j, _ ->
                stop fid "peephole" "expected fp-create at 0x%x, found %s" !pc
                  (Instr.to_string j)))
          blk.Ir.body;
        match blk.Ir.term with
        | Ir.Tjump t -> (
          let nt = need t in
          if !pc = nt then () (* jump elided: target laid out next *)
          else
            match next "emit" with
            | Instr.Jump a when a = nt -> incr instrs
            | Instr.Jump a ->
              stop fid "bb_reorder" "jump at 0x%x targets 0x%x, block %d now starts at 0x%x" !pc
                a t nt
            | j ->
              stop fid "bb_reorder"
                "fallthrough from block %d to block %d not materialized at 0x%x (found %s)"
                blk.Ir.bid t !pc (Instr.to_string j))
        | Ir.Tbranch (c, r, taken, fall) -> (
          let ntk = need taken and nfl = need fall in
          match next "emit" with
          | Instr.Branch (c', r', a) when r' = r ->
            incr instrs;
            let after = !pc + Instr.size (Instr.Branch (c', r', a)) in
            let continues_to target =
              after = target
              || (match read_new after with Some (Instr.Jump j) -> j = target | _ -> false)
            in
            if c' = c && a = ntk && continues_to nfl then ()
            else if c' = Emit.negate_cond c && a = nfl && continues_to ntk then ()
            else
              stop fid "bb_reorder"
                "branch at 0x%x inconsistent under the layout permutation: %s r%d -> 0x%x \
                 (taken block %d at 0x%x, fallthrough block %d at 0x%x)"
                !pc
                (Fmt.str "%a" Instr.pp_cond c')
                r a taken ntk fall nfl
          | j ->
            stop fid "bb_reorder" "expected conditional branch at 0x%x, found %s" !pc
              (Instr.to_string j))
        | Ir.Tjump_table (sel, targets) -> (
          match next "emit" with
          | Instr.Alui (Instr.Add, s, sel', base) when s = Ir.scratch_reg && sel' = sel ->
            advance (Instr.Alui (Instr.Add, s, sel', base));
            (match next "emit" with
            | Instr.Load (d, b, 0) when d = Ir.scratch_reg && b = Ir.scratch_reg ->
              advance (Instr.Load (d, b, 0))
            | j ->
              stop fid "bb_reorder" "expected jump-table load at 0x%x, found %s" !pc
                (Instr.to_string j));
            (match next "emit" with
            | Instr.JumpInd s' when s' = Ir.scratch_reg -> incr instrs
            | j ->
              stop fid "bb_reorder" "expected indirect jump at 0x%x, found %s" !pc
                (Instr.to_string j));
            (* Each word must be a block start of this function — validity,
               not correspondence: see the blind-spot note above. *)
            Array.iteri
              (fun i _ ->
                match Hashtbl.find_opt new_data (base + i) with
                | Some v when Hashtbl.mem new_starts v -> ()
                | Some v ->
                  stop fid "emit"
                    "jump-table word %d at data 0x%x holds 0x%x, not a block start of fid %d" i
                    (base + i) v fid
                | None -> stop fid "emit" "jump-table word %d at data 0x%x missing" i (base + i))
              targets
          | j ->
            stop fid "bb_reorder" "expected jump-table idiom at 0x%x, found %s" !pc
              (Instr.to_string j))
        | Ir.Tret -> (
          match next "emit" with
          | Instr.Ret -> incr instrs
          | j -> stop fid "bb_reorder" "expected ret at 0x%x, found %s" !pc (Instr.to_string j))
        | Ir.Thalt -> (
          match next "emit" with
          | Instr.Halt -> incr instrs
          | j -> stop fid "bb_reorder" "expected halt at 0x%x, found %s" !pc (Instr.to_string j))
      in
      Array.iter
        (fun (blk : Ir.block) ->
          match site_of_bid.(blk.Ir.bid) with
          | None -> ()
          | Some bs -> ( try walk blk bs with Stop -> ()))
        rc.Cfg.rc_func.Ir.blocks;
      (* ---- instruction-granular map ---- *)
      (* Sorted by old PC for deterministic rejection order; the int-
         specialized sort matters — this runs per campaign over every
         mapped instruction. *)
      let exact = Array.of_seq (Hashtbl.to_seq fm.Frame_map.fm_exact) in
      Array.sort (fun (a, _) (b, _) -> Int.compare a b) exact;
      let seen_new = Hashtbl.create 64 in
      let forwards pc =
        (* An old instruction with no new-text counterpart forwards its map
           entry to the next surviving new PC: peephole-removed no-ops and
           elided fallthrough jumps. *)
        match Binary.find_instr binary pc with
        | Some (Instr.Jump _) -> true
        | Some i -> Peephole.is_noop_instr i
        | None -> false
      in
      Array.iter
        (fun (old_pc, new_pc) ->
          (* Injective, except for forwarding: of all old PCs sharing one
             new PC, at most one survives in the new text — the rest were
             removed (and forward to where execution continues). *)
          (match Hashtbl.find_opt seen_new new_pc with
          | Some _ when forwards old_pc -> ()
          | Some prev_old when forwards prev_old -> Hashtbl.replace seen_new new_pc old_pc
          | Some _ ->
            reject fid "frame_map" "exact map not injective: two old PCs land on new 0x%x" new_pc
          | None -> Hashtbl.add seen_new new_pc old_pc);
          (match Binary.find_instr binary old_pc with
          | Some _ -> ()
          | None ->
            reject fid "frame_map" "exact point old 0x%x is not an instruction boundary" old_pc);
          (match read_new new_pc with
          | Some _ -> ()
          | None ->
            reject fid "frame_map"
              "exact point 0x%x -> 0x%x lands off an instruction boundary in the new text"
              old_pc new_pc);
          match Frame_map.containing_block fm old_pc with
          | None ->
            reject fid "frame_map" "exact point old 0x%x outside every mapped block" old_pc
          | Some bs ->
            if new_pc < bs.Frame_map.bs_new_start then
              reject fid "frame_map"
                "exact point 0x%x -> 0x%x precedes its block's new start 0x%x" old_pc new_pc
                bs.Frame_map.bs_new_start)
        exact
  in
  List.iter validate_func result.Bolt.frame_maps;
  { rp_funcs = !funcs;
    rp_blocks = !blocks;
    rp_instrs = !instrs;
    rp_rejections = List.rev !rejections }

let pp_rejection ppf rj =
  if rj.rj_fid >= 0 then Fmt.pf ppf "[%s] fid %d: %s" rj.rj_check rj.rj_fid rj.rj_reason
  else Fmt.pf ppf "[%s] %s" rj.rj_check rj.rj_reason

let pp_report ppf r =
  Fmt.pf ppf "validated %d funcs, %d blocks, %d instrs@." r.rp_funcs r.rp_blocks r.rp_instrs;
  List.iter
    (fun check ->
      let n = check_rejections r check in
      Fmt.pf ppf "  %-12s %s@." check (if n = 0 then "ok" else Fmt.str "%d rejection(s)" n))
    checks;
  List.iter (fun rj -> Fmt.pf ppf "  %a@." pp_rejection rj) r.rp_rejections
