(* OCOLOS: online code layout optimization of a running process.

   The paper's pipeline (Fig. 4a): (1) profile the target with LBR sampling,
   (2) run BOLT in the background to produce optimized code C1, then pause
   the target, (3) inject C1 into the address space at fresh addresses while
   leaving C0 intact (design principle #1: preserve C0 instruction
   addresses), (4) update a judicious subset of code pointers — v-table
   entries and direct calls inside stack-live functions — so that C1 runs in
   the common case (design principle #2), and (5) resume. Function pointers
   are pinned to C0 forever via the wrapFuncPtrCreation hook, which is what
   makes continuous optimization's garbage collection of old code versions
   safe (Section IV-C2).

   Continuous optimization (C_i -> C_{i+1}) re-profiles the running process,
   BOLTs the current code, and replaces it: stack-live C_i functions are
   copied verbatim (with address rebasing) so that return addresses and PCs
   can be redirected, every other reference is forced over to C_{i+1} or
   back to C0, and the now-unreachable C_i region is unmapped. The paper
   could not evaluate this mode because LLVM-BOLT refuses BOLTed inputs; our
   BOLT substrate has no such limitation, so it is fully implemented. *)

open Ocolos_isa
open Ocolos_binary
open Ocolos_proc
open Ocolos_profiler
open Ocolos_bolt

type config = {
  bolt : Bolt.config;
  perf : Perf.config;
  cost : Cost.t;
  patch_all_direct_calls : bool; (* ablation: paper found this useless *)
  verify_gc : bool; (* scan for dangling pointers after GC *)
  fault : Ocolos_util.Fault.t option; (* injection registry consulted by replace_code *)
}

let default_config =
  { bolt = Bolt.default_config;
    perf = Perf.default_config;
    cost = Cost.default;
    patch_all_direct_calls = false;
    verify_gc = true;
    fault = None }

type replacement_stats = {
  version : int; (* the new code version number (C_version) *)
  vtable_entries_patched : int;
  call_sites_patched : int;
  stack_live_funcs : int;
  copied_funcs : int; (* stack-live C_i functions copied for GC *)
  funcs_optimized : int;
  code_bytes_injected : int;
  gc_bytes_freed : int;
  pause_seconds : float;
}

type copy = { cp_fid : int; cp_ranges : (int * int) list (* [start, end) *) }

type t = {
  proc : Proc.t;
  original : Binary.t;
  config : config;
  c0_entry : (int, int) Hashtbl.t;
  c0_ranges : (int, (int * int) list) Hashtbl.t;
  offline_sites : (int * int * int) array; (* (site addr, owner fid, callee fid) *)
  vtable_slots : (int * int * int) array; (* (vid, slot, fid) *)
  to_c0 : (int, int) Hashtbl.t; (* entry address of any version -> C0 entry *)
  mutable version : int;
  mutable current : Binary.t; (* live symbol/code view, for perf2bolt & BOLT *)
  mutable current_entry : (int, int) Hashtbl.t; (* fid -> live entry *)
  mutable live_text : (int * int) option; (* [start, end) of C_version text *)
  mutable live_text_addrs : int array; (* instruction addresses of C_version *)
  mutable copies : copy list;
  mutable session : Perf.session option;
}

(* ---- attach ---- *)

let attach ?(config = default_config) (proc : Proc.t) =
  let original = proc.Proc.binary in
  let c0_entry = Hashtbl.create 256 and c0_ranges = Hashtbl.create 256 in
  Array.iter
    (fun (s : Binary.func_sym) ->
      Hashtbl.replace c0_entry s.Binary.fs_fid s.Binary.fs_entry;
      Hashtbl.replace c0_ranges s.Binary.fs_fid
        (List.map (fun r -> (r.Binary.r_start, r.Binary.r_start + r.Binary.r_size)) s.Binary.fs_ranges))
    original.Binary.symbols;
  (* Offline analysis: parse every direct call site from the binary, with
     its owning function and callee, to shorten the stop-the-world phase
     (Section IV). *)
  let index = Binary.build_addr_index original in
  let entry_fid = Hashtbl.create 256 in
  Hashtbl.iter (fun fid entry -> Hashtbl.replace entry_fid entry fid) c0_entry;
  let offline_sites =
    Binary.direct_call_sites original
    |> List.filter_map (fun (site, target) ->
           match (Binary.index_lookup index site, Hashtbl.find_opt entry_fid target) with
           | Some owner, Some callee -> Some (site, owner, callee)
           | _, _ -> None)
    |> Array.of_list
  in
  let vtable_slots =
    Array.to_list original.Binary.vtables
    |> List.concat_map (fun vt ->
           Array.to_list vt.Binary.vt_entries
           |> List.mapi (fun slot entry ->
                  match Hashtbl.find_opt entry_fid entry with
                  | Some fid -> [ (vt.Binary.vt_id, slot, fid) ]
                  | None -> [])
           |> List.concat)
    |> Array.of_list
  in
  let current_entry = Hashtbl.copy c0_entry in
  let t =
    { proc;
      original;
      config;
      c0_entry;
      c0_ranges;
      offline_sites;
      vtable_slots;
      to_c0 = Hashtbl.create 256;
      version = 0;
      current = original;
      current_entry;
      live_text = None;
      live_text_addrs = [||];
      copies = [];
      session = None }
  in
  (* The wrapFuncPtrCreation hook: function pointers always refer to C0. *)
  proc.Proc.hooks.translate_fp <-
    Some (fun addr -> match Hashtbl.find_opt t.to_c0 addr with Some c0 -> c0 | None -> addr);
  t

(* ---- profiling ---- *)

let start_profiling t =
  if t.session <> None then invalid_arg "Ocolos.start_profiling: already profiling";
  t.session <- Some (Perf.start ~cfg:t.config.perf ?fault:t.config.fault t.proc)

(* Returns the aggregated profile and the modeled perf2bolt time. *)
let stop_profiling t =
  match t.session with
  | None -> invalid_arg "Ocolos.stop_profiling: not profiling"
  | Some session ->
    t.session <- None;
    let samples = Perf.stop session in
    let profile = Perf2bolt.convert ~binary:t.current ?fault:t.config.fault samples in
    let seconds =
      Cost.perf2bolt_seconds t.config.cost ~records:(Perf.record_count samples)
    in
    (profile, seconds)

(* ---- BOLT (background) ---- *)

(* Degradation tiers (supervisor-driven): [`Full] is the configured BOLT;
   [`Func_reorder_only] drops block reordering, hot/cold splitting and
   peephole so only the C3/PH function order remains — the cheapest layout
   that still captures most of the paper's i-cache benefit, used after a
   full campaign has failed. *)
type tier = [ `Full | `Func_reorder_only ]

let run_bolt ?(tier : tier = `Full) ?(exclude = []) t profile =
  let config =
    let base = t.config.bolt in
    let base =
      if exclude = [] then base
      else { base with Bolt.exclude = exclude @ base.Bolt.exclude }
    in
    match tier with
    | `Full -> base
    | `Func_reorder_only ->
      { base with Bolt.reorder_blocks = false; split_functions = false; peephole = false }
  in
  let extern_entry fid = Hashtbl.find_opt t.c0_entry fid in
  let result =
    Bolt.run ~config ~binary:t.current ~extern_entry ?fault:t.config.fault ~profile ()
  in
  let seconds = Cost.bolt_seconds t.config.cost ~work_instrs:result.Bolt.work_instrs in
  (result, seconds)

(* ---- code replacement ---- *)

(* Every named fault-injection point in [replace_code], in the order the
   stop-the-world phase reaches them. Points inside loops are hit once per
   iteration, so an [Nth] schedule can fire mid-mutation; the gc_* points,
   [thread_patch] and [verify] are reachable only in continuous rounds.
   [proc.pause_timeout] models a thread that cannot reach a safe pause
   point within the deadline; [mem.exhausted] an address space with no room
   for the incoming text — both abort the transaction like any other
   injected fault. *)
let injection_points =
  [ "proc.pause_timeout";
    "pause";
    "mem.exhausted";
    "inject_code";
    "inject_data";
    "sym_index";
    "fp_pin";
    "vtable_patch";
    "call_patch";
    "gc_copy";
    "thread_patch";
    "gc_unmap";
    "gc_reap";
    "verify";
    "commit" ]

(* The full pipeline-wide catalog, grouped by fault domain, in pipeline
   order: profiling, aggregation, BOLT, then the stop-the-world points
   above. This is what the CLI validates [--fault] specs against and what
   the chaos harness sweeps. *)
let fault_catalog =
  [ "perf.detach";
    "perf.sample_drop";
    "perf.sample_truncate";
    "perf.sample_corrupt";
    "perf2bolt.stale_syms";
    "perf2bolt.aggregate";
    "bolt.cfg";
    "bolt.bb_reorder";
    "bolt.func_reorder";
    "bolt.peephole" ]
  @ injection_points

module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics

(* Register a hit at a fault-injection point. Hits are counted per point in
   the ambient metrics registry; a firing fault additionally leaves an
   instant event on the trace before the exception unwinds into {!Txn}. *)
let cut t point =
  match t.config.fault with
  | None -> ()
  | Some f -> (
    Metrics.count ~labels:[ ("point", point) ] "ocolos_fault_cuts_total" 1;
    try Ocolos_util.Fault.cut f point with
    | Ocolos_util.Fault.Injected (p, hit) as e ->
      Trace.mark "fault.fired" ~attrs:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      Metrics.count ~labels:[ ("point", p) ] "ocolos_fault_fired_total" 1;
      Ocolos_obs.Events.log "fault.fired"
        ~fields:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      raise e
    | Ocolos_util.Fault.Killed (p, hit) as e ->
      Trace.mark "fault.killed" ~attrs:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      Metrics.count ~labels:[ ("point", p) ] "ocolos_fault_killed_total" 1;
      Ocolos_obs.Events.log "fault.killed"
        ~fields:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      raise e)

let in_range (s, e) addr = addr >= s && addr < e

let live_frames_and_pcs t =
  Array.to_list t.proc.Proc.threads
  |> List.concat_map (fun (thread : Ocolos_proc.Thread.t) ->
         if Ocolos_proc.Thread.is_running thread then
           thread.Ocolos_proc.Thread.pc
           :: Ocolos_proc.Thread.return_addresses thread
         else [])

(* Functions currently on some thread's stack (by return address or PC). *)
let stack_live_fids t =
  let fids = Hashtbl.create 32 in
  List.iter
    (fun addr ->
      match Addr_space.fid_of_addr t.proc.Proc.mem addr with
      | Some fid -> Hashtbl.replace fids fid ()
      | None -> ())
    (live_frames_and_pcs t);
  fids

(* Copy a stack-live C_i function to a fresh region, rebasing intra-function
   targets and redirecting cross-function targets out of the doomed region.
   Returns the copy descriptor and an address-translation table for frames. *)
let copy_stack_live_func t ~doomed ~old_entry_fid ~desired_entry fid =
  let ranges =
    (* This fid's code ranges inside the doomed region. *)
    let sym = t.current.Binary.symbols.(fid) in
    List.filter_map
      (fun (r : Binary.range) ->
        if in_range doomed r.Binary.r_start then Some (r.Binary.r_start, r.Binary.r_start + r.Binary.r_size)
        else None)
      sym.Binary.fs_ranges
  in
  let total = List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 ranges in
  let base = Addr_space.reserve_code t.proc.Proc.mem (total + 16) in
  (* Lay the ranges consecutively at the new base. *)
  let offsets =
    let cursor = ref base in
    List.map
      (fun (s, e) ->
        let o = (s, e, !cursor - s) in
        cursor := !cursor + (e - s);
        o)
      ranges
  in
  let remap addr =
    let rec go = function
      | [] -> None
      | (s, e, delta) :: rest -> if addr >= s && addr < e then Some (addr + delta) else go rest
    in
    go offsets
  in
  let addr_map = Hashtbl.create 64 in
  let new_ranges = List.map (fun (s, e, delta) -> (s + delta, e + delta)) offsets in
  List.iter
    (fun (s, e) ->
      let addr = ref s in
      while !addr < e do
        match Addr_space.read_code t.proc.Proc.mem !addr with
        | None -> incr addr (* padding *)
        | Some instr ->
          let instr' =
            match Instr.static_target instr with
            | None -> instr
            | Some target -> (
              match remap target with
              | Some t' -> Instr.with_target instr t'
              | None ->
                if in_range doomed target then
                  (* A reference into another doomed function: only entries
                     are valid cross-function targets; send it to the
                     incoming version (or C0). *)
                  match Hashtbl.find_opt old_entry_fid target with
                  | Some callee -> Instr.with_target instr (desired_entry callee)
                  | None -> instr
                else instr)
          in
          let dst = match remap !addr with Some d -> d | None -> assert false in
          Addr_space.write_code t.proc.Proc.mem dst instr';
          Hashtbl.replace addr_map !addr dst;
          addr := !addr + Instr.size instr
      done)
    ranges;
  Addr_space.add_sym_ranges t.proc.Proc.mem
    (List.map (fun (s, e) -> { Addr_space.sr_start = s; sr_end = e; sr_fid = fid }) new_ranges);
  ({ cp_fid = fid; cp_ranges = new_ranges }, addr_map)

(* Jump-table entries are data words holding block addresses; an evacuated
   copy keeps dispatching through its version's tables after that version's
   text is unmapped. Redirect every initialized data word pointing into the
   doomed region at its evacuated copy, or at the incoming version's entry
   for cross-function targets. *)
let patch_jump_table_entries t ~doomed ~addr_map ~old_entry_fid ~desired_entry =
  let patched = ref 0 in
  List.iter
    (fun (a, _) ->
      let v = Addr_space.read_data t.proc.Proc.mem a in
      if in_range doomed v then
        let v' =
          match Hashtbl.find_opt addr_map v with
          | Some d -> Some d
          | None -> Option.map desired_entry (Hashtbl.find_opt old_entry_fid v)
        in
        match v' with
        | Some d when d <> v ->
          Addr_space.write_data t.proc.Proc.mem a d;
          incr patched
        | Some _ | None -> ())
    t.current.Binary.global_init;
  !patched

(* Rewrite return addresses, saved callee entries and thread PCs through an
   address map (continuous optimization, Section IV-C1). *)
let patch_thread_code_pointers t addr_map =
  Array.iter
    (fun (thread : Ocolos_proc.Thread.t) ->
      (match Hashtbl.find_opt addr_map thread.Ocolos_proc.Thread.pc with
      | Some pc' -> thread.Ocolos_proc.Thread.pc <- pc'
      | None -> ());
      List.iter
        (fun (frame : Ocolos_proc.Thread.frame) ->
          (match Hashtbl.find_opt addr_map frame.Ocolos_proc.Thread.ret_addr with
          | Some a -> frame.Ocolos_proc.Thread.ret_addr <- a
          | None -> ());
          match Hashtbl.find_opt addr_map frame.Ocolos_proc.Thread.callee_entry with
          | Some a -> frame.Ocolos_proc.Thread.callee_entry <- a
          | None -> ())
        (Ocolos_proc.Thread.live_frames thread))
    t.proc.Proc.threads

exception Dangling_pointer of string

(* Safety check after GC: no reachable code pointer may reference freed
   code. Scans v-tables, thread PCs, return addresses and patched call
   sites. *)
let verify_no_dangling t ~freed =
  let check what addr =
    if in_range freed addr && Addr_space.read_code t.proc.Proc.mem addr = None then
      raise (Dangling_pointer (Fmt.str "%s references freed code at 0x%x" what addr))
  in
  Array.iter
    (fun (vid, slot, _) ->
      check (Fmt.str "vtable %d slot %d" vid slot)
        (Addr_space.read_data t.proc.Proc.mem (Addr_space.vtable_base t.proc.Proc.mem vid + slot)))
    t.vtable_slots;
  List.iter (fun addr -> check "thread stack/pc" addr) (live_frames_and_pcs t);
  Array.iter
    (fun (site, _, _) ->
      match Addr_space.read_code t.proc.Proc.mem site with
      | Some (Instr.Call target) -> check (Fmt.str "call site 0x%x" site) target
      | Some _ | None -> ())
    t.offline_sites

(* Rebuild the live binary view after a replacement: code is snapshotted
   from the process, symbols point at the newest version (falling back to
   C0), sections gain the injected text so the next BOLT round allocates
   above it. *)
let refresh_current t (new_text : Binary.t) =
  let code = Hashtbl.copy t.proc.Proc.mem.Addr_space.code in
  let code_order =
    let arr = Array.make (Hashtbl.length code) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun addr _ ->
        arr.(!i) <- addr;
        incr i)
      code;
    Array.sort compare arr;
    arr
  in
  let new_syms = Hashtbl.create 64 in
  Array.iter (fun (s : Binary.func_sym) -> Hashtbl.replace new_syms s.Binary.fs_fid s)
    new_text.Binary.symbols;
  let copies_by_fid = Hashtbl.create 16 in
  List.iter
    (fun cp ->
      let ranges =
        List.map (fun (s, e) -> { Binary.r_start = s; r_size = e - s }) cp.cp_ranges
      in
      Hashtbl.replace copies_by_fid cp.cp_fid
        (ranges @ Option.value ~default:[] (Hashtbl.find_opt copies_by_fid cp.cp_fid)))
    t.copies;
  let symbols =
    Array.map
      (fun (s : Binary.func_sym) ->
        let fid = s.Binary.fs_fid in
        let c0 =
          List.map
            (fun (rs, re) -> { Binary.r_start = rs; r_size = re - rs })
            (Option.value ~default:[] (Hashtbl.find_opt t.c0_ranges fid))
        in
        let copies = Option.value ~default:[] (Hashtbl.find_opt copies_by_fid fid) in
        match Hashtbl.find_opt new_syms fid with
        | Some ns -> { ns with Binary.fs_ranges = ns.Binary.fs_ranges @ copies @ c0 }
        | None ->
          { s with
            Binary.fs_entry = Hashtbl.find t.c0_entry fid;
            fs_ranges = copies @ c0 })
      t.original.Binary.symbols
  in
  let sections =
    List.map
      (fun (s : Binary.section) ->
        if s.Binary.sec_name = ".text" then { s with Binary.sec_name = "bolt.org.text" } else s)
      t.original.Binary.sections
    @ new_text.Binary.sections
  in
  t.current <-
    { t.original with
      Binary.name = Fmt.str "%s.v%d" t.original.Binary.name t.version;
      sections;
      code;
      code_order;
      symbols;
      global_init = t.original.Binary.global_init @ new_text.Binary.global_init;
      entry = t.original.Binary.entry }

(* The stop-the-world phase. Pauses the target, injects C_{i+1}, patches
   code pointers, garbage-collects C_i (when continuous), resumes. *)
let replace_code t (result : Bolt.result) : replacement_stats =
  Trace.span "replace.stw" ~attrs:[ ("incoming_version", Trace.I (t.version + 1)) ]
  @@ fun stw_sp ->
  let proc = t.proc in
  Proc.pause proc;
  cut t "proc.pause_timeout";
  cut t "pause";
  let new_text = result.Bolt.new_text in
  (* 1. Inject the optimized code and its jump-table data. *)
  Trace.span "replace.inject" (fun sp ->
      cut t "mem.exhausted";
      Array.iter
        (fun addr ->
          cut t "inject_code";
          Addr_space.write_code proc.Proc.mem addr (Hashtbl.find new_text.Binary.code addr))
        new_text.Binary.code_order;
      List.iter
        (fun (a, v) ->
          cut t "inject_data";
          Addr_space.write_data proc.Proc.mem a v)
        new_text.Binary.global_init;
      cut t "sym_index";
      Addr_space.add_sym_ranges proc.Proc.mem
        (Array.to_list new_text.Binary.symbols
        |> List.concat_map (fun (s : Binary.func_sym) ->
               List.map
                 (fun (r : Binary.range) ->
                   { Addr_space.sr_start = r.Binary.r_start;
                     sr_end = r.Binary.r_start + r.Binary.r_size;
                     sr_fid = s.Binary.fs_fid })
                 s.Binary.fs_ranges));
      Trace.set_attr sp "instrs" (Trace.I (Array.length new_text.Binary.code_order)));
  let bytes_injected = Binary.text_bytes new_text in
  (* Keep the mmap cursor above the injected section. *)
  let new_end = Bolt.sections_end new_text in
  if proc.Proc.mem.Addr_space.next_map_base < new_end then
    proc.Proc.mem.Addr_space.next_map_base <- (new_end + 0xFFFF) land lnot 0xFFFF;
  (* 2. Entry maps. *)
  let new_entries = Hashtbl.create 64 in
  Array.iter
    (fun (s : Binary.func_sym) -> Hashtbl.replace new_entries s.Binary.fs_fid s.Binary.fs_entry)
    new_text.Binary.symbols;
  let desired_entry fid =
    match Hashtbl.find_opt new_entries fid with
    | Some e -> e
    | None -> Hashtbl.find t.c0_entry fid
  in
  (* Function pointers must keep referring to C0: register the new entries
     in the translation map consulted by wrapFuncPtrCreation. *)
  Trace.span "replace.fp_pin" (fun _ ->
      Hashtbl.iter
        (fun fid entry ->
          cut t "fp_pin";
          Hashtbl.replace t.to_c0 entry (Hashtbl.find t.c0_entry fid))
        new_entries);
  (* 3. Patch v-tables. *)
  let vt_patched = ref 0 in
  Trace.span "replace.vtable_patch" (fun sp ->
      Array.iter
        (fun (vid, slot, fid) ->
          cut t "vtable_patch";
          let addr = Addr_space.vtable_base proc.Proc.mem vid + slot in
          let cur = Addr_space.read_data proc.Proc.mem addr in
          let want = desired_entry fid in
          if cur <> want then begin
            Addr_space.write_data proc.Proc.mem addr want;
            incr vt_patched
          end)
        t.vtable_slots;
      Trace.set_attr sp "patched" (Trace.I !vt_patched));
  (* 4. Patch direct calls in stack-live C0 functions (or all, under the
     ablation flag). In continuous rounds, any C0 site still targeting the
     doomed C_i region must also be redirected so that GC is safe. *)
  let live = stack_live_fids t in
  let sites_patched = ref 0 in
  Trace.span "replace.call_patch" (fun sp ->
      Array.iter
        (fun (site, owner, callee) ->
          cut t "call_patch";
          let cur_target =
            match Addr_space.read_code proc.Proc.mem site with
            | Some (Instr.Call cur) -> Some cur
            | Some _ | None -> None
          in
          let target_doomed =
            match (cur_target, t.live_text) with
            | Some cur, Some doomed -> in_range doomed cur
            | _, _ -> false
          in
          if t.config.patch_all_direct_calls || Hashtbl.mem live owner || target_doomed then begin
            let want = desired_entry callee in
            match cur_target with
            | Some cur when cur <> want ->
              Addr_space.write_code proc.Proc.mem site (Instr.Call want);
              incr sites_patched
            | Some _ | None -> ()
          end)
        t.offline_sites;
      Trace.set_attr sp "stack_live_funcs" (Trace.I (Hashtbl.length live));
      Trace.set_attr sp "patched" (Trace.I !sites_patched));
  (* 5. Continuous optimization: evacuate and GC the previous version. *)
  let copied = ref 0 and gc_bytes = ref 0 in
  (match t.live_text with
  | None -> ()
  | Some doomed ->
    Trace.span "replace.gc" @@ fun gc_sp ->
    let old_entry_fid = Hashtbl.create 64 in
    Hashtbl.iter
      (fun fid entry -> if in_range doomed entry then Hashtbl.replace old_entry_fid entry fid)
      t.current_entry;
    (* Stack-live functions executing in the doomed region get verbatim
       copies; frames and PCs are rebased into the copies. *)
    let doomed_live = Hashtbl.create 16 in
    List.iter
      (fun addr ->
        if in_range doomed addr then
          match Addr_space.fid_of_addr proc.Proc.mem addr with
          | Some fid -> Hashtbl.replace doomed_live fid ()
          | None -> ())
      (live_frames_and_pcs t);
    let addr_map = Hashtbl.create 256 in
    Hashtbl.iter
      (fun fid () ->
        cut t "gc_copy";
        let cp, map = copy_stack_live_func t ~doomed ~old_entry_fid ~desired_entry fid in
        t.copies <- cp :: t.copies;
        incr copied;
        Hashtbl.iter (fun k v -> Hashtbl.replace addr_map k v) map)
      doomed_live;
    cut t "thread_patch";
    patch_thread_code_pointers t addr_map;
    let tables_patched =
      patch_jump_table_entries t ~doomed ~addr_map ~old_entry_fid ~desired_entry
    in
    Trace.set_attr gc_sp "table_entries_patched" (Trace.I tables_patched);
    (* Unmap the doomed text. *)
    Array.iter
      (fun addr ->
        match Addr_space.read_code proc.Proc.mem addr with
        | Some instr ->
          cut t "gc_unmap";
          gc_bytes := !gc_bytes + Instr.size instr;
          Addr_space.remove_code proc.Proc.mem addr
        | None -> ())
      t.live_text_addrs;
    Addr_space.remove_sym_ranges proc.Proc.mem ~pred:(fun r ->
        in_range doomed r.Addr_space.sr_start);
    (* Reap copies from earlier rounds that nothing references anymore. *)
    let referenced = live_frames_and_pcs t in
    let still_needed cp =
      List.exists (fun addr -> List.exists (fun r -> in_range r addr) cp.cp_ranges) referenced
    in
    let keep, reap = List.partition still_needed t.copies in
    (* Surviving copies from earlier rounds may still call into the doomed
       region (their calls were resolved to C_i entries when copied):
       redirect those to the incoming version. *)
    List.iter
      (fun cp ->
        List.iter
          (fun (s, e) ->
            let addr = ref s in
            while !addr < e do
              match Addr_space.read_code proc.Proc.mem !addr with
              | None -> incr addr
              | Some instr ->
                (match Instr.static_target instr with
                | Some target when in_range doomed target -> (
                  match Hashtbl.find_opt old_entry_fid target with
                  | Some callee ->
                    Addr_space.write_code proc.Proc.mem !addr
                      (Instr.with_target instr (desired_entry callee))
                  | None -> ())
                | Some _ | None -> ());
                addr := !addr + Instr.size instr
            done)
          cp.cp_ranges)
      keep;
    List.iter
      (fun cp ->
        cut t "gc_reap";
        List.iter
          (fun (s, e) ->
            let addr = ref s in
            while !addr < e do
              (match Addr_space.read_code proc.Proc.mem !addr with
              | Some instr ->
                gc_bytes := !gc_bytes + Instr.size instr;
                Addr_space.remove_code proc.Proc.mem !addr;
                addr := !addr + Instr.size instr
              | None -> incr addr)
            done;
            Addr_space.remove_sym_ranges proc.Proc.mem ~pred:(fun r ->
                r.Addr_space.sr_start >= s && r.Addr_space.sr_start < e))
          cp.cp_ranges)
      reap;
    t.copies <- keep;
    if t.config.verify_gc then begin
      cut t "verify";
      Trace.span "replace.verify" (fun _ -> verify_no_dangling t ~freed:doomed)
    end;
    Trace.set_attr gc_sp "copied_funcs" (Trace.I !copied);
    Trace.set_attr gc_sp "bytes_freed" (Trace.I !gc_bytes));
  (* 6. Update version state and the live binary view. *)
  cut t "commit";
  Trace.span "replace.commit" (fun _ ->
      t.version <- t.version + 1;
      let sec =
        match Binary.section_named new_text ".text" with
        | Some s -> (s.Binary.sec_base, s.Binary.sec_base + s.Binary.sec_size)
        | None -> (result.Bolt.bolt_base, result.Bolt.bolt_base)
      in
      t.live_text <- Some sec;
      t.live_text_addrs <- Array.copy new_text.Binary.code_order;
      let current_entry = Hashtbl.create 256 in
      Hashtbl.iter
        (fun fid _ -> Hashtbl.replace current_entry fid (desired_entry fid))
        t.c0_entry;
      t.current_entry <- current_entry;
      refresh_current t new_text);
  (* 7. Stop-the-world cost, then resume. *)
  let sites = !vt_patched + !sites_patched in
  let pause_seconds =
    Cost.pause_seconds t.config.cost ~sites ~bytes:bytes_injected
  in
  Trace.set_attr stw_sp "version" (Trace.I t.version);
  Trace.set_attr stw_sp "pause_seconds" (Trace.F pause_seconds);
  Metrics.count "ocolos_replacements_total" 1;
  Metrics.count "ocolos_vtable_entries_patched_total" !vt_patched;
  Metrics.count "ocolos_call_sites_patched_total" !sites_patched;
  Metrics.count "ocolos_code_bytes_injected_total" bytes_injected;
  Metrics.count "ocolos_gc_bytes_freed_total" !gc_bytes;
  Metrics.sample ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds" pause_seconds;
  Proc.resume proc;
  { version = t.version;
    vtable_entries_patched = !vt_patched;
    call_sites_patched = !sites_patched;
    stack_live_funcs = Hashtbl.length live;
    copied_funcs = !copied;
    funcs_optimized = result.Bolt.funcs_reordered;
    code_bytes_injected = bytes_injected;
    gc_bytes_freed = !gc_bytes;
    pause_seconds }

let version t = t.version
let current_binary t = t.current
let proc t = t.proc
let config t = t.config

(* ---- crash recovery ---- *)

(* Re-attach a fresh controller to a process whose previous OCOLOS daemon
   died. Everything a committed replacement did survives in the target —
   injected text, patched v-tables and call sites, the extended symbol
   index, and the target-resident wrapFuncPtrCreation pin table — while an
   aborted transaction left no trace at all ({!Txn} rolled back before the
   old daemon died). So the daemon-side state is reconstructed from the
   target as ground truth:

   - code the symbol index places at or above the original image's end
     belongs to injected versions; a function's live entry is the lowest
     such address it owns (emission lays the hot part first), falling back
     to its C0 entry;
   - the live-text span is the hull of all injected ranges — exact when at
     most one version is committed (the chaos harness's case), conservative
     once continuous rounds have left evacuation copies behind (the hull
     then also dooms the copies, which the next GC round evacuates again
     like any stack-live code);
   - the C0 pin table is rebuilt by mapping every injected range start back
     to its function's C0 entry: a superset of the true entry set, harmless
     because only entries are ever created as function pointers. *)
let reattach ?(config = default_config) (proc : Proc.t) =
  Trace.span "ocolos.reattach" @@ fun sp ->
  let t = attach ~config proc in
  let orig_end = Bolt.sections_end t.original in
  let injected =
    Array.to_list proc.Proc.mem.Addr_space.sym_index
    |> List.filter (fun r -> r.Addr_space.sr_start >= orig_end)
  in
  Trace.set_attr sp "injected_ranges" (Trace.I (List.length injected));
  (match injected with
  | [] -> ()
  | _ :: _ ->
    let entry = Hashtbl.create 64 in
    List.iter
      (fun (r : Addr_space.sym_range) ->
        let fid = r.Addr_space.sr_fid in
        (match Hashtbl.find_opt entry fid with
        | Some e when e <= r.Addr_space.sr_start -> ()
        | Some _ | None -> Hashtbl.replace entry fid r.Addr_space.sr_start);
        Hashtbl.replace t.to_c0 r.Addr_space.sr_start (Hashtbl.find t.c0_entry fid))
      injected;
    Hashtbl.iter (fun fid e -> Hashtbl.replace t.current_entry fid e) entry;
    let lo = List.fold_left (fun acc r -> min acc r.Addr_space.sr_start) max_int injected in
    let hi = List.fold_left (fun acc r -> max acc r.Addr_space.sr_end) 0 injected in
    let addrs =
      Hashtbl.fold
        (fun a _ acc -> if a >= lo && a < hi then a :: acc else acc)
        proc.Proc.mem.Addr_space.code []
    in
    let live_addrs = Array.of_list addrs in
    Array.sort compare live_addrs;
    t.version <- 1;
    t.live_text <- Some (lo, hi);
    t.live_text_addrs <- live_addrs;
    (* A synthetic new_text view of the recovered region, so the normal
       refresh builds the live binary (and the next BOLT round allocates
       above it). The recovered version's jump-table metadata is not
       reconstructable, but its words are still resident and its dispatch
       code (or evacuation copies made by a later revert) still reads them:
       a single marker at the highest initialized data word keeps the next
       round's table allocation above everything present instead of
       overlaying live tables. *)
    let data_top =
      Ocolos_util.Itbl.fold (fun a _ acc -> max a acc) proc.Proc.mem.Addr_space.data (-1)
    in
    let recovered_init =
      if data_top < 0 then []
      else [ (data_top, Addr_space.read_data proc.Proc.mem data_top) ]
    in
    let recovered_syms =
      Hashtbl.fold
        (fun fid e acc ->
          let ranges =
            List.filter_map
              (fun (r : Addr_space.sym_range) ->
                if r.Addr_space.sr_fid = fid then
                  Some { Binary.r_start = r.Addr_space.sr_start;
                         r_size = r.Addr_space.sr_end - r.Addr_space.sr_start }
                else None)
              injected
          in
          { Binary.fs_fid = fid;
            fs_name = t.original.Binary.symbols.(fid).Binary.fs_name;
            fs_entry = e;
            fs_ranges = ranges }
          :: acc)
        entry []
      |> List.sort (fun a b -> compare a.Binary.fs_fid b.Binary.fs_fid)
      |> Array.of_list
    in
    let new_text =
      { Binary.name = t.original.Binary.name ^ ".recovered";
        sections = [ { Binary.sec_name = ".text"; sec_base = lo; sec_size = hi - lo } ];
        code = Hashtbl.create 0;
        code_order = [||];
        symbols = recovered_syms;
        vtables = [||];
        globals_base = t.original.Binary.globals_base;
        globals_words = 0;
        global_init = recovered_init;
        entry = t.original.Binary.entry;
        debug = Hashtbl.create 0 }
    in
    refresh_current t new_text;
    Trace.set_attr sp "live_text"
      (Trace.S (Fmt.str "0x%x-0x%x" lo hi)));
  Trace.set_attr sp "version" (Trace.I t.version);
  Metrics.count "ocolos_reattach_total" 1;
  t

(* ---- controller-state snapshots (for transactional replacement) ----

   [replace_code] mutates, besides the address space and thread stacks, the
   controller's own view of the live code version. A snapshot captures
   exactly the fields [replace_code] touches so that {!Txn} can roll the
   controller back to C_i alongside the address-space undo log. Hash tables
   are copied on both capture and restore, so one snapshot can back any
   number of rollbacks. *)

type snapshot = {
  sn_version : int;
  sn_current : Binary.t;
  sn_current_entry : (int, int) Hashtbl.t;
  sn_live_text : (int * int) option;
  sn_live_text_addrs : int array;
  sn_copies : copy list;
  sn_to_c0 : (int, int) Hashtbl.t;
}

let snapshot t =
  { sn_version = t.version;
    sn_current = t.current;
    sn_current_entry = Hashtbl.copy t.current_entry;
    sn_live_text = t.live_text;
    sn_live_text_addrs = t.live_text_addrs;
    sn_copies = t.copies;
    sn_to_c0 = Hashtbl.copy t.to_c0 }

let restore t s =
  t.version <- s.sn_version;
  t.current <- s.sn_current;
  t.current_entry <- Hashtbl.copy s.sn_current_entry;
  t.live_text <- s.sn_live_text;
  t.live_text_addrs <- s.sn_live_text_addrs;
  t.copies <- s.sn_copies;
  Hashtbl.reset t.to_c0;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.to_c0 k v) s.sn_to_c0

(* A snapshot describing C0 for a controller whose in-memory history is
   gone (fleet restart after a reattach): C0 is pinned resident by design
   principle #1, so reverting to it is always possible. *)
let c0_snapshot t =
  { sn_version = 0;
    sn_current = t.original;
    sn_current_entry = Hashtbl.copy t.c0_entry;
    sn_live_text = None;
    sn_live_text_addrs = [||];
    sn_copies = [];
    sn_to_c0 = Hashtbl.create 16 }

let snapshot_version s = s.sn_version

(* ---- staged rollback of a committed version ---- *)

type revert_stats = {
  rv_from_version : int;
  rv_to_version : int;
  rv_vtable_entries_patched : int;
  rv_call_sites_patched : int;
  rv_copied_funcs : int;
  rv_code_bytes_reinjected : int;
  rv_gc_bytes_freed : int;
  rv_pause_seconds : float;
}

(* Un-commit: a reverse replacement taking the process from the live
   version back to the (older) version a snapshot describes. Committing
   C_{i+1} garbage-collected C_i's text, so the revert re-injects it from
   the snapshot's binary view (whose code table holds the bytes), then
   mirrors the forward stop-the-world phase with the roles swapped: desired
   entries come from the snapshot, the doomed region is the *current* live
   text, stack-live current-version functions are evacuated to copies, and
   the current text is unmapped and verified dangling-free.

   This is the fleet's emergency brake after a canary regression, so unlike
   [replace_code] it contains NO fault cuts: every faultable stage of a
   rollout fails safe *before* any replica diverges, and the revert that
   undoes a partial rollout must not itself be able to fail. *)
let revert t (s : snapshot) : revert_stats =
  if s.sn_version >= t.version then
    invalid_arg
      (Fmt.str "Ocolos.revert: snapshot C%d is not older than live C%d" s.sn_version t.version);
  let doomed =
    match t.live_text with
    | Some d -> d
    | None -> invalid_arg "Ocolos.revert: no injected text to revert"
  in
  let from_version = t.version in
  Trace.span "replace.revert"
    ~attrs:[ ("from_version", Trace.I from_version); ("to_version", Trace.I s.sn_version) ]
  @@ fun sp ->
  let proc = t.proc in
  Proc.pause proc;
  (* 1. Re-inject the snapshot's text (GC'd when the newer version
     committed) and restore its symbol-index ranges. A no-op when the
     snapshot is C0, which was never unmapped. *)
  let reinjected = ref 0 in
  (match s.sn_live_text with
  | None -> ()
  | Some (lo, hi) ->
    Array.iter
      (fun addr ->
        let instr = Hashtbl.find s.sn_current.Binary.code addr in
        Addr_space.write_code proc.Proc.mem addr instr;
        reinjected := !reinjected + Instr.size instr)
      s.sn_live_text_addrs;
    Addr_space.add_sym_ranges proc.Proc.mem
      (Array.to_list s.sn_current.Binary.symbols
      |> List.concat_map (fun (sym : Binary.func_sym) ->
             List.filter_map
               (fun (r : Binary.range) ->
                 if r.Binary.r_start >= lo && r.Binary.r_start < hi then
                   Some
                     { Addr_space.sr_start = r.Binary.r_start;
                       sr_end = r.Binary.r_start + r.Binary.r_size;
                       sr_fid = sym.Binary.fs_fid }
                 else None)
               sym.Binary.fs_ranges)));
  (* 2. Where every function should live after the revert. *)
  let desired_entry fid =
    match Hashtbl.find_opt s.sn_current_entry fid with
    | Some e -> e
    | None -> Hashtbl.find t.c0_entry fid
  in
  (* Entries of the doomed (current) version, for redirecting cross-function
     references out of it. *)
  let old_entry_fid = Hashtbl.create 64 in
  Hashtbl.iter
    (fun fid entry -> if in_range doomed entry then Hashtbl.replace old_entry_fid entry fid)
    t.current_entry;
  (* 3. Patch v-tables back. *)
  let vt_patched = ref 0 in
  Array.iter
    (fun (vid, slot, fid) ->
      let addr = Addr_space.vtable_base proc.Proc.mem vid + slot in
      let cur = Addr_space.read_data proc.Proc.mem addr in
      let want = desired_entry fid in
      if cur <> want then begin
        Addr_space.write_data proc.Proc.mem addr want;
        incr vt_patched
      end)
    t.vtable_slots;
  (* 4. Patch direct calls: stack-live owners, plus any site still targeting
     the doomed region (GC safety), mirroring the forward pass. *)
  let live = stack_live_fids t in
  let sites_patched = ref 0 in
  Array.iter
    (fun (site, owner, callee) ->
      let cur_target =
        match Addr_space.read_code proc.Proc.mem site with
        | Some (Instr.Call cur) -> Some cur
        | Some _ | None -> None
      in
      let target_doomed =
        match cur_target with Some cur -> in_range doomed cur | None -> false
      in
      if t.config.patch_all_direct_calls || Hashtbl.mem live owner || target_doomed then begin
        let want = desired_entry callee in
        match cur_target with
        | Some cur when cur <> want ->
          Addr_space.write_code proc.Proc.mem site (Instr.Call want);
          incr sites_patched
        | Some _ | None -> ()
      end)
    t.offline_sites;
  (* 5. Evacuate and GC the doomed current version — same machinery as the
     forward pass's continuous-mode GC. *)
  let copied = ref 0 and gc_bytes = ref 0 in
  let doomed_live = Hashtbl.create 16 in
  List.iter
    (fun addr ->
      if in_range doomed addr then
        match Addr_space.fid_of_addr proc.Proc.mem addr with
        | Some fid -> Hashtbl.replace doomed_live fid ()
        | None -> ())
    (live_frames_and_pcs t);
  let addr_map = Hashtbl.create 256 in
  let new_copies = ref [] in
  Hashtbl.iter
    (fun fid () ->
      let cp, map = copy_stack_live_func t ~doomed ~old_entry_fid ~desired_entry fid in
      new_copies := cp :: !new_copies;
      incr copied;
      Hashtbl.iter (fun k v -> Hashtbl.replace addr_map k v) map)
    doomed_live;
  patch_thread_code_pointers t addr_map;
  let tables_patched =
    patch_jump_table_entries t ~doomed ~addr_map ~old_entry_fid ~desired_entry
  in
  Trace.set_attr sp "table_entries_patched" (Trace.I tables_patched);
  (* Unmap the doomed text — except the addresses a paused thread can still
     hold in a register, which become one-instruction trampolines. A thread
     stopped between a jump-table load and its JumpInd resumes with a
     doomed block address in a register (bounced into its evacuation copy);
     one stopped between a vtable/function-pointer load and its CallInd
     resumes with a doomed entry (bounced to the function the revert
     reinstated). No thread-state pass can tell such code pointers from
     ordinary integers that collide with the range, so the landing pads
     redirect instead. Anything else in the region is unreachable: frames
     and PCs were rebased, and mid-block addresses of non-live functions
     can only be materialized by code that was executing them. *)
  Array.iter
    (fun addr ->
      match Addr_space.read_code proc.Proc.mem addr with
      | Some instr -> (
        gc_bytes := !gc_bytes + Instr.size instr;
        match Hashtbl.find_opt addr_map addr with
        | Some dst -> Addr_space.write_code proc.Proc.mem addr (Instr.Jump dst)
        | None -> (
          match Hashtbl.find_opt old_entry_fid addr with
          | Some fid -> Addr_space.write_code proc.Proc.mem addr (Instr.Jump (desired_entry fid))
          | None -> Addr_space.remove_code proc.Proc.mem addr))
      | None -> ())
    t.live_text_addrs;
  Addr_space.remove_sym_ranges proc.Proc.mem ~pred:(fun r -> in_range doomed r.Addr_space.sr_start);
  let referenced = live_frames_and_pcs t in
  let still_needed cp =
    List.exists (fun addr -> List.exists (fun r -> in_range r addr) cp.cp_ranges) referenced
  in
  let keep, reap = List.partition still_needed t.copies in
  List.iter
    (fun cp ->
      List.iter
        (fun (cs, ce) ->
          let addr = ref cs in
          while !addr < ce do
            match Addr_space.read_code proc.Proc.mem !addr with
            | None -> incr addr
            | Some instr ->
              (match Instr.static_target instr with
              | Some target when in_range doomed target -> (
                match Hashtbl.find_opt old_entry_fid target with
                | Some callee ->
                  Addr_space.write_code proc.Proc.mem !addr
                    (Instr.with_target instr (desired_entry callee))
                | None -> ())
              | Some _ | None -> ());
              addr := !addr + Instr.size instr
          done)
        cp.cp_ranges)
    keep;
  List.iter
    (fun cp ->
      List.iter
        (fun (cs, ce) ->
          let addr = ref cs in
          while !addr < ce do
            (match Addr_space.read_code proc.Proc.mem !addr with
            | Some instr ->
              gc_bytes := !gc_bytes + Instr.size instr;
              Addr_space.remove_code proc.Proc.mem !addr;
              addr := !addr + Instr.size instr
            | None -> incr addr)
          done;
          Addr_space.remove_sym_ranges proc.Proc.mem ~pred:(fun r ->
              r.Addr_space.sr_start >= cs && r.Addr_space.sr_start < ce))
        cp.cp_ranges)
    reap;
  t.copies <- !new_copies @ keep;
  if t.config.verify_gc then verify_no_dangling t ~freed:doomed;
  (* 6. Restore the controller view. The rebuilt live binary carries a
     placeholder section spanning the reverted region so the next BOLT
     round still allocates above it — the evacuation copies made here live
     just past its end and must not be overlaid. *)
  t.version <- s.sn_version;
  t.current_entry <- Hashtbl.copy s.sn_current_entry;
  t.live_text <- s.sn_live_text;
  t.live_text_addrs <- Array.copy s.sn_live_text_addrs;
  let sections =
    (match s.sn_live_text with
    | Some (lo, hi) -> [ { Binary.sec_name = ".text"; sec_base = lo; sec_size = hi - lo } ]
    | None -> [])
    @ [ { Binary.sec_name = ".text.reverted";
          sec_base = fst doomed;
          sec_size = snd doomed - fst doomed } ]
  in
  let symbols =
    match s.sn_live_text with
    | None -> [||]
    | Some (lo, hi) ->
      Array.to_list s.sn_current.Binary.symbols
      |> List.filter_map (fun (sym : Binary.func_sym) ->
             let ranges =
               List.filter
                 (fun (r : Binary.range) -> r.Binary.r_start >= lo && r.Binary.r_start < hi)
                 sym.Binary.fs_ranges
             in
             let entry = desired_entry sym.Binary.fs_fid in
             if ranges = [] && not (in_range (lo, hi) entry) then None
             else Some { sym with Binary.fs_entry = entry; fs_ranges = ranges })
      |> Array.of_list
  in
  (* Keep the doomed version's jump-table words in the live view: the
     evacuation copies above still dispatch through them (entries patched
     to the copies), so the next BOLT round must allocate its tables higher
     rather than overlay this region. refresh_current prepends the
     original's global_init, so pass only the non-original suffix. *)
  let inherited_init =
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
    drop (List.length t.original.Binary.global_init) t.current.Binary.global_init
  in
  let new_text =
    { Binary.name = t.original.Binary.name ^ ".revert";
      sections;
      code = Hashtbl.create 0;
      code_order = [||];
      symbols;
      vtables = [||];
      globals_base = t.original.Binary.globals_base;
      globals_words = 0;
      global_init = inherited_init;
      entry = t.original.Binary.entry;
      debug = Hashtbl.create 0 }
  in
  refresh_current t new_text;
  (* 7. Cost, metrics, resume. *)
  let sites = !vt_patched + !sites_patched in
  let pause_seconds = Cost.pause_seconds t.config.cost ~sites ~bytes:!reinjected in
  Trace.set_attr sp "pause_seconds" (Trace.F pause_seconds);
  Metrics.count "ocolos_reverts_total" 1;
  Metrics.count "ocolos_code_bytes_reinjected_total" !reinjected;
  Metrics.count "ocolos_gc_bytes_freed_total" !gc_bytes;
  Metrics.sample ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds" pause_seconds;
  Proc.resume proc;
  { rv_from_version = from_version;
    rv_to_version = s.sn_version;
    rv_vtable_entries_patched = !vt_patched;
    rv_call_sites_patched = !sites_patched;
    rv_copied_funcs = !copied;
    rv_code_bytes_reinjected = !reinjected;
    rv_gc_bytes_freed = !gc_bytes;
    rv_pause_seconds = pause_seconds }
