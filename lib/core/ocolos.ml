(* OCOLOS: online code layout optimization of a running process.

   The paper's pipeline (Fig. 4a): (1) profile the target with LBR sampling,
   (2) run BOLT in the background to produce optimized code C1, then pause
   the target, (3) inject C1 into the address space at fresh addresses,
   (4) update code pointers so C1 runs, and (5) resume.

   Continuous optimization (C_i -> C_{i+1}) goes further than the paper's
   prototype: instead of evacuating stack-live C_i functions by verbatim
   copy and pinning function pointers to a forever-resident C0, it performs
   genuine on-stack replacement. BOLT emits, alongside each optimized
   function, a per-function frame map (old PC -> new PC, see
   {!Ocolos_bolt.Frame_map}); the stop-the-world phase rewrites every live
   frame's return address, every saved callee entry and every paused
   thread's PC directly into C_{i+1} through that map, builds a short
   compensation stub when a PC lands mid-block between exact map points,
   and falls back to a verbatim evacuation copy only when no map covers the
   address at all. The old text — including C0's [bolt.org.text], even for
   never-returning entry functions — is then unmapped immediately, so after
   convergence exactly one code version is resident (plus transient stub /
   copy residue that a reachability-proven GC reaps as frames drain). *)

open Ocolos_isa
open Ocolos_binary
open Ocolos_proc
open Ocolos_profiler
open Ocolos_bolt

type config = {
  bolt : Bolt.config;
  perf : Perf.config;
  cost : Cost.t;
  patch_all_direct_calls : bool; (* ablation: paper found this useless *)
  verify_gc : bool; (* scan for dangling pointers after GC *)
  fault : Ocolos_util.Fault.t option; (* injection registry consulted by replace_code *)
}

let default_config =
  { bolt = Bolt.default_config;
    perf = Perf.default_config;
    cost = Cost.default;
    patch_all_direct_calls = false;
    verify_gc = true;
    fault = None }

type replacement_stats = {
  version : int; (* the new code version number (C_version) *)
  vtable_entries_patched : int;
  call_sites_patched : int;
  stack_live_funcs : int;
  frames_migrated : int; (* live frames / PCs rewritten into C_{i+1} *)
  osr_stubs : int; (* compensation stubs generated for mid-block PCs *)
  copied_funcs : int; (* copy-fallback evacuations (no usable frame map) *)
  funcs_optimized : int;
  code_bytes_injected : int;
  gc_bytes_freed : int;
  pause_seconds : float;
}

(* Transient code left behind by one OSR round: compensation stubs and
   copy-fallback evacuations. Each is tagged with the round that created
   it; the round's inherited jump-table words (below) drain with it. *)
type residue_kind = Stub | Copy

type residue = {
  rs_fid : int;
  rs_kind : residue_kind;
  rs_round : int;
  rs_ranges : (int * int) list; (* [start, end) *)
}

type t = {
  proc : Proc.t;
  original : Binary.t;
  config : config;
  c0_entry : (int, int) Hashtbl.t;
  c0_ranges : (int, (int * int) list) Hashtbl.t;
  offline_sites : (int * int * int) array; (* (site addr, owner fid, callee fid) *)
  vtable_slots : (int * int * int) array; (* (vid, slot, fid) *)
  entry_fid_any : (int, int) Hashtbl.t;
      (* entry address of any version ever live -> fid; the
         wrapFuncPtrCreation hook resolves through this to the *current*
         entry, so function pointers always denote the live version *)
  mutable version : int;
  mutable current : Binary.t; (* live symbol/code view, for perf2bolt & BOLT *)
  mutable current_entry : (int, int) Hashtbl.t; (* fid -> live entry *)
  resident : (int, (int * int) list) Hashtbl.t;
      (* fid -> code ranges of its current (single) resident version *)
  mutable residue : residue list;
  mutable inherited : (int * int list) list;
      (* (round, word addrs): jump-table words of a retired version that the
         round's residue still dispatches through; reaped when the round's
         residue drains *)
  mutable rounds : int; (* monotone OSR round counter (never rolled back) *)
  init_addrs : (int, unit) Hashtbl.t;
      (* every initialized data word OCOLOS tracks (for snapshot word-value
         capture and inherited-word classification) *)
  table_addrs : (int, unit) Hashtbl.t;
      (* subset of init_addrs whose registered value was a code address *)
  mutable session : Perf.session option;
}

(* ---- attach ---- *)

let attach ?(config = default_config) (proc : Proc.t) =
  let original = proc.Proc.binary in
  let c0_entry = Hashtbl.create 256 and c0_ranges = Hashtbl.create 256 in
  Array.iter
    (fun (s : Binary.func_sym) ->
      Hashtbl.replace c0_entry s.Binary.fs_fid s.Binary.fs_entry;
      Hashtbl.replace c0_ranges s.Binary.fs_fid
        (List.map (fun r -> (r.Binary.r_start, r.Binary.r_start + r.Binary.r_size)) s.Binary.fs_ranges))
    original.Binary.symbols;
  (* Offline analysis: parse every direct call site from the binary, with
     its owning function and callee, to shorten the stop-the-world phase
     (Section IV). *)
  let index = Binary.build_addr_index original in
  let entry_fid = Hashtbl.create 256 in
  Hashtbl.iter (fun fid entry -> Hashtbl.replace entry_fid entry fid) c0_entry;
  let offline_sites =
    Binary.direct_call_sites original
    |> List.filter_map (fun (site, target) ->
           match (Binary.index_lookup index site, Hashtbl.find_opt entry_fid target) with
           | Some owner, Some callee -> Some (site, owner, callee)
           | _, _ -> None)
    |> Array.of_list
  in
  let vtable_slots =
    Array.to_list original.Binary.vtables
    |> List.concat_map (fun vt ->
           Array.to_list vt.Binary.vt_entries
           |> List.mapi (fun slot entry ->
                  match Hashtbl.find_opt entry_fid entry with
                  | Some fid -> [ (vt.Binary.vt_id, slot, fid) ]
                  | None -> [])
           |> List.concat)
    |> Array.of_list
  in
  let current_entry = Hashtbl.copy c0_entry in
  let resident = Hashtbl.create 256 in
  Hashtbl.iter (fun fid ranges -> Hashtbl.replace resident fid ranges) c0_ranges;
  let init_addrs = Hashtbl.create 256 and table_addrs = Hashtbl.create 64 in
  List.iter
    (fun (a, v) ->
      Hashtbl.replace init_addrs a ();
      if Hashtbl.mem original.Binary.code v then Hashtbl.replace table_addrs a ())
    original.Binary.global_init;
  let t =
    { proc;
      original;
      config;
      c0_entry;
      c0_ranges;
      offline_sites;
      vtable_slots;
      entry_fid_any = entry_fid;
      version = 0;
      current = original;
      current_entry;
      resident;
      residue = [];
      inherited = [];
      rounds = 0;
      init_addrs;
      table_addrs;
      session = None }
  in
  (* The wrapFuncPtrCreation hook: a created function pointer always
     denotes the current version of its function, so no pointer is ever
     pinned to a retired version's text. Stored pointer values created
     before a replacement are migrated by the replacement's data scan. *)
  proc.Proc.hooks.translate_fp <-
    Some
      (fun addr ->
        match Hashtbl.find_opt t.entry_fid_any addr with
        | Some fid -> (
          match Hashtbl.find_opt t.current_entry fid with Some e -> e | None -> addr)
        | None -> addr);
  t

(* ---- profiling ---- *)

let start_profiling t =
  if t.session <> None then invalid_arg "Ocolos.start_profiling: already profiling";
  t.session <- Some (Perf.start ~cfg:t.config.perf ?fault:t.config.fault t.proc)

(* Returns the aggregated profile and the modeled perf2bolt time. *)
let stop_profiling t =
  match t.session with
  | None -> invalid_arg "Ocolos.stop_profiling: not profiling"
  | Some session ->
    t.session <- None;
    let samples = Perf.stop session in
    let profile = Perf2bolt.convert ~binary:t.current ?fault:t.config.fault samples in
    let seconds =
      Cost.perf2bolt_seconds t.config.cost ~records:(Perf.record_count samples)
    in
    (profile, seconds)

(* ---- BOLT (background) ---- *)

(* Degradation tiers (supervisor-driven): [`Full] is the configured BOLT;
   [`Func_reorder_only] drops block reordering, hot/cold splitting and
   peephole so only the C3/PH function order remains — the cheapest layout
   that still captures most of the paper's i-cache benefit, used after a
   full campaign has failed. *)
type tier = [ `Full | `Func_reorder_only ]

let run_bolt ?(tier : tier = `Full) ?(exclude = []) t profile =
  let config =
    let base = t.config.bolt in
    let base =
      if exclude = [] then base
      else { base with Bolt.exclude = exclude @ base.Bolt.exclude }
    in
    match tier with
    | `Full -> base
    | `Func_reorder_only ->
      { base with Bolt.reorder_blocks = false; split_functions = false; peephole = false }
  in
  (* Calls to non-optimized functions resolve to their current entries:
     with true OSR there is no pinned C0 to fall back to. *)
  let extern_entry fid = Hashtbl.find_opt t.current_entry fid in
  (* BOLT places the optimized text above the binary's sections, but the
     live process maps more than the binary describes (thread-local blocks,
     the heap, residue). A zero-size hull marker at the top of everything
     mapped keeps the emission from landing on live data. *)
  let binary =
    let mem = t.proc.Proc.mem in
    let data_top =
      Ocolos_util.Itbl.fold (fun a _ acc -> max a acc) mem.Addr_space.data (-1)
    in
    let code_top =
      Hashtbl.fold (fun a i acc -> max acc (a + Instr.size i)) mem.Addr_space.code 0
    in
    let hull = max (max (data_top + 1) code_top) mem.Addr_space.next_map_base in
    if hull <= Bolt.sections_end t.current then t.current
    else
      { t.current with
        Binary.sections =
          t.current.Binary.sections
          @ [ { Binary.sec_name = "mem.hull"; sec_base = hull; sec_size = 0 } ] }
  in
  let result = Bolt.run ~config ~binary ~extern_entry ?fault:t.config.fault ~profile () in
  (* The bolt.miscompile domain fires *after* every pass has finished: the
     result is silently corrupted in place of crashing, so nothing but the
     Tier-1 validator (and, for its deliberate jump-table blind spot, the
     Tier-2 shadow checker) stands between the corruption and the live
     process. [Fault.Killed] still escapes — a dead daemon is the kill
     domain's business, not a miscompile. *)
  let result =
    match t.config.fault with
    | None -> result
    | Some f ->
      List.fold_left
        (fun result point ->
          match Ocolos_util.Fault.cut f point with
          | () -> result
          | exception Ocolos_util.Fault.Injected (p, hit) ->
            Ocolos_obs.Trace.mark "fault.fired"
              ~attrs:[ ("point", Ocolos_obs.Trace.S p); ("hit", Ocolos_obs.Trace.I hit) ];
            Ocolos_obs.Metrics.count ~labels:[ ("point", p) ] "ocolos_fault_fired_total" 1;
            Ocolos_obs.Events.log "fault.fired"
              ~fields:[ ("point", Ocolos_obs.Trace.S p); ("hit", Ocolos_obs.Trace.I hit) ];
            let result, mutations = Miscompile.apply ~point:p ~salt:hit result in
            Ocolos_obs.Events.log "bolt.miscompile.applied"
              ~fields:
                [ ("point", Ocolos_obs.Trace.S p);
                  ("mutations", Ocolos_obs.Trace.I mutations) ];
            Ocolos_obs.Metrics.count ~labels:[ ("point", p) ]
              "ocolos_miscompile_mutations_total" mutations;
            result)
        result Miscompile.points
  in
  let seconds = Cost.bolt_seconds t.config.cost ~work_instrs:result.Bolt.work_instrs in
  (result, seconds)

(* Tier-1 miscompile containment: validate a BOLT result against the
   binary it was derived from, under the same external-entry resolution
   [run_bolt] used. Must run before {!replace_code} / {!Txn.replace_code};
   the verdict is logged as a [validate.verdict] event (with one
   [validate.reject] event per rejection) and [ocolos_validate_*] metrics. *)
let validate_result t (result : Bolt.result) =
  Ocolos_obs.Trace.span "ocolos.validate" @@ fun sp ->
  let report =
    Validate.run ~binary:t.current
      ~extern_entry:(fun fid -> Hashtbl.find_opt t.current_entry fid)
      result
  in
  Ocolos_obs.Trace.set_attr sp "funcs" (Ocolos_obs.Trace.I report.Validate.rp_funcs);
  Ocolos_obs.Trace.set_attr sp "rejections"
    (Ocolos_obs.Trace.I (List.length report.Validate.rp_rejections));
  Ocolos_obs.Metrics.count "ocolos_validate_runs_total" 1;
  Ocolos_obs.Metrics.count "ocolos_validate_funcs_total" report.Validate.rp_funcs;
  List.iter
    (fun (rj : Validate.rejection) ->
      Ocolos_obs.Metrics.count ~labels:[ ("check", rj.Validate.rj_check) ]
        "ocolos_validate_rejections_total" 1;
      Ocolos_obs.Events.log "validate.reject"
        ~fields:
          [ ("fid", Ocolos_obs.Trace.I rj.Validate.rj_fid);
            ("check", Ocolos_obs.Trace.S rj.Validate.rj_check);
            ("reason", Ocolos_obs.Trace.S rj.Validate.rj_reason) ])
    report.Validate.rp_rejections;
  Ocolos_obs.Events.log "validate.verdict"
    ~fields:
      [ ("ok", Ocolos_obs.Trace.B (Validate.ok report));
        ("funcs", Ocolos_obs.Trace.I report.Validate.rp_funcs);
        ("blocks", Ocolos_obs.Trace.I report.Validate.rp_blocks);
        ("rejections", Ocolos_obs.Trace.I (List.length report.Validate.rp_rejections)) ];
  report

(* ---- code replacement ---- *)

(* Every named fault-injection point in [replace_code], in the order the
   stop-the-world phase reaches them. Points inside loops are hit once per
   iteration, so an [Nth] schedule can fire mid-mutation; the OSR points
   ([osr_frame] once per paused thread, [osr_map] once per doomed pointer
   resolution, [osr_stub] once per compensation-stub build) and the gc_*
   and [verify] points are reachable only in rounds that retire text.
   [proc.pause_timeout] models a thread that cannot reach a safe pause
   point within the deadline; [mem.exhausted] an address space with no room
   for the incoming text — both abort the transaction like any other
   injected fault. *)
let injection_points =
  [ "proc.pause_timeout";
    "pause";
    "mem.exhausted";
    "inject_code";
    "inject_data";
    "sym_index";
    "fp_pin";
    "vtable_patch";
    "call_patch";
    "osr_frame";
    "osr_map";
    "osr_stub";
    "gc_unmap";
    "gc_reap";
    "verify";
    "commit" ]

(* The full pipeline-wide catalog, grouped by fault domain, in pipeline
   order: profiling, aggregation, BOLT, then the stop-the-world points
   above. This is what the CLI validates [--fault] specs against and what
   the chaos harness sweeps. *)
let fault_catalog =
  [ "perf.detach";
    "perf.sample_drop";
    "perf.sample_truncate";
    "perf.sample_corrupt";
    "perf2bolt.stale_syms";
    "perf2bolt.aggregate";
    "bolt.cfg";
    "bolt.bb_reorder";
    "bolt.func_reorder";
    "bolt.peephole" ]
  @ Miscompile.points @ injection_points

module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics

(* Register a hit at a fault-injection point. Hits are counted per point in
   the ambient metrics registry; a firing fault additionally leaves an
   instant event on the trace before the exception unwinds into {!Txn}. *)
let cut t point =
  match t.config.fault with
  | None -> ()
  | Some f -> (
    Metrics.count ~labels:[ ("point", point) ] "ocolos_fault_cuts_total" 1;
    try Ocolos_util.Fault.cut f point with
    | Ocolos_util.Fault.Injected (p, hit) as e ->
      Trace.mark "fault.fired" ~attrs:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      Metrics.count ~labels:[ ("point", p) ] "ocolos_fault_fired_total" 1;
      Ocolos_obs.Events.log "fault.fired"
        ~fields:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      raise e
    | Ocolos_util.Fault.Killed (p, hit) as e ->
      Trace.mark "fault.killed" ~attrs:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      Metrics.count ~labels:[ ("point", p) ] "ocolos_fault_killed_total" 1;
      Ocolos_obs.Events.log "fault.killed"
        ~fields:[ ("point", Trace.S p); ("hit", Trace.I hit) ];
      raise e)

let in_range (s, e) addr = addr >= s && addr < e

let live_frames_and_pcs t =
  Array.to_list t.proc.Proc.threads
  |> List.concat_map (fun (thread : Ocolos_proc.Thread.t) ->
         if Ocolos_proc.Thread.is_running thread then
           thread.Ocolos_proc.Thread.pc
           :: Ocolos_proc.Thread.return_addresses thread
         else [])

(* Functions currently on some thread's stack (by return address or PC). *)
let stack_live_fids t =
  let fids = Hashtbl.create 32 in
  List.iter
    (fun addr ->
      match Addr_space.fid_of_addr t.proc.Proc.mem addr with
      | Some fid -> Hashtbl.replace fids fid ()
      | None -> ())
    (live_frames_and_pcs t);
  fids

(* ---- resident-footprint accounting ---- *)

let residue_bytes t =
  List.fold_left
    (fun acc r -> acc + List.fold_left (fun a (s, e) -> a + (e - s)) 0 r.rs_ranges)
    0 t.residue

let inherited_words t =
  List.fold_left (fun acc (_, addrs) -> acc + List.length addrs) 0 t.inherited

(* Transient bytes beyond the single resident version: stub/copy residue
   plus inherited jump-table words (8 bytes each). Reaches 0 after
   convergence, once every migrated frame has drained. *)
let resident_extra_bytes t = residue_bytes t + (8 * inherited_words t)

(* Bytes of the original [.text] (C0 / [bolt.org.text]) still mapped. True
   OSR drives this to 0 once every function has been re-emitted. *)
let c0_text_resident_bytes t =
  match Binary.section_named t.original ".text" with
  | None -> 0
  | Some s ->
    let mem = t.proc.Proc.mem in
    let e = s.Binary.sec_base + s.Binary.sec_size in
    let bytes = ref 0 and addr = ref s.Binary.sec_base in
    while !addr < e do
      match Addr_space.read_code mem !addr with
      | Some i ->
        bytes := !bytes + Instr.size i;
        addr := !addr + Instr.size i
      | None -> incr addr
    done;
    !bytes

let inherited_mem t a = List.exists (fun (_, addrs) -> List.mem a addrs) t.inherited

(* ---- the OSR engine ----

   One migration context per round. [ox_doomed] is the text being retired
   this round (every resident range of every re-emitted function — which in
   round 1 includes their C0 ranges, retiring [bolt.org.text]); frames, PCs
   and scratch registers pointing into it are rewritten through the frame
   maps, via compensation stubs, or — last resort — into verbatim copies.
   [ox_cut] injects the round's fault points; {!revert} passes a no-op so
   the emergency brake cannot itself fault. *)
type osr_ctx = {
  ox_doomed : (int * int) array; (* sorted, disjoint *)
  ox_fms : (int, Frame_map.t) Hashtbl.t;
  ox_old_entry_fid : (int, int) Hashtbl.t; (* doomed entry -> fid *)
  ox_desired : int -> int; (* fid -> entry it should resolve to now *)
  ox_stubs : (int, int) Hashtbl.t; (* old pc -> stub entry *)
  mutable ox_residue : residue list;
  ox_addr_map : (int, int) Hashtbl.t; (* old addr -> copy/stub addr *)
  ox_copied : (int, unit) Hashtbl.t; (* fids already copy-evacuated *)
  mutable ox_stub_count : int;
  mutable ox_copy_count : int;
  ox_round : int;
  ox_cut : string -> unit;
}

let in_doomed ctx addr =
  let d = ctx.ox_doomed in
  let lo = ref 0 and hi = ref (Array.length d - 1) and found = ref false in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, e = d.(mid) in
    if addr < s then hi := mid - 1
    else if addr >= e then lo := mid + 1
    else begin
      found := true;
      lo := !hi + 1
    end
  done;
  !found

let make_osr_ctx t ~doomed ~fms ~desired ~round ~cut_fn =
  let arr = Array.of_list doomed in
  Array.sort compare arr;
  let fm_tbl = Hashtbl.create 64 in
  List.iter (fun (fid, fm) -> Hashtbl.replace fm_tbl fid fm) fms;
  let ctx =
    { ox_doomed = arr;
      ox_fms = fm_tbl;
      ox_old_entry_fid = Hashtbl.create 64;
      ox_desired = desired;
      ox_stubs = Hashtbl.create 16;
      ox_residue = [];
      ox_addr_map = Hashtbl.create 256;
      ox_copied = Hashtbl.create 16;
      ox_stub_count = 0;
      ox_copy_count = 0;
      ox_round = round;
      ox_cut = cut_fn }
  in
  Hashtbl.iter
    (fun entry fid -> if in_doomed ctx entry then Hashtbl.replace ctx.ox_old_entry_fid entry fid)
    t.entry_fid_any;
  ctx

(* Last-resort migration: evacuate the function's doomed ranges by verbatim
   copy, rebasing intra-function targets and redirecting cross-function
   entry references out of the doomed region. Idempotent per fid; the copy
   is registered as round residue and its address map merged into the
   context so subsequent resolutions land in it. *)
let copy_fallback t ctx fid =
  if not (Hashtbl.mem ctx.ox_copied fid) then begin
    Hashtbl.replace ctx.ox_copied fid ();
    let mem = t.proc.Proc.mem in
    let ranges =
      List.filter
        (fun (s, _) -> in_doomed ctx s)
        (Option.value ~default:[] (Hashtbl.find_opt t.resident fid))
    in
    if ranges <> [] then begin
      let total = List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 ranges in
      let base = Addr_space.reserve_code mem (total + 16) in
      let offsets =
        let cursor = ref base in
        List.map
          (fun (s, e) ->
            let o = (s, e, !cursor - s) in
            cursor := !cursor + (e - s);
            o)
          ranges
      in
      let remap addr =
        List.find_map
          (fun (s, e, delta) -> if addr >= s && addr < e then Some (addr + delta) else None)
          offsets
      in
      let new_ranges = List.map (fun (s, e, delta) -> (s + delta, e + delta)) offsets in
      List.iter
        (fun (s, e) ->
          let addr = ref s in
          while !addr < e do
            match Addr_space.read_code mem !addr with
            | None -> incr addr (* padding *)
            | Some instr ->
              let instr' =
                match Instr.static_target instr with
                | None -> instr
                | Some target -> (
                  match remap target with
                  | Some d -> Instr.with_target instr d
                  | None ->
                    if in_doomed ctx target then
                      (* Only entries are valid cross-function targets. *)
                      match Hashtbl.find_opt ctx.ox_old_entry_fid target with
                      | Some callee -> Instr.with_target instr (ctx.ox_desired callee)
                      | None -> instr
                    else instr)
              in
              let dst = match remap !addr with Some d -> d | None -> assert false in
              Addr_space.write_code mem dst instr';
              Hashtbl.replace ctx.ox_addr_map !addr dst;
              addr := !addr + Instr.size instr
          done)
        ranges;
      Addr_space.add_sym_ranges mem
        (List.map (fun (s, e) -> { Addr_space.sr_start = s; sr_end = e; sr_fid = fid }) new_ranges);
      ctx.ox_residue <-
        { rs_fid = fid; rs_kind = Copy; rs_round = ctx.ox_round; rs_ranges = new_ranges }
        :: ctx.ox_residue;
      ctx.ox_copy_count <- ctx.ox_copy_count + 1
    end
  end

(* Map a doomed code address without side effects: through the copy/stub
   address map, the entry map, or a frame map's block map. *)
let map_doomed_value t ctx v =
  if not (in_doomed ctx v) then None
  else
    (* Entry addresses resolve through the desired-entry map before the
       copy/stub map: an evacuation copy made for one thread's parked
       frames must not capture other references to the function — calls
       from surviving code belong to the live version's entry, or copies
       chain across rounds and never drain. *)
    match Hashtbl.find_opt ctx.ox_old_entry_fid v with
    | Some fid -> Some (ctx.ox_desired fid)
    | None -> (
      match Hashtbl.find_opt ctx.ox_addr_map v with
      | Some d -> Some d
      | None -> (
        match Addr_space.fid_of_addr t.proc.Proc.mem v with
        | None -> None
        | Some fid -> (
          match Hashtbl.find_opt ctx.ox_fms fid with
          | Some fm -> Frame_map.block_new_start fm v
          | None -> None)))

(* Like {!map_doomed_value}, but evacuates the owning function when no map
   covers the address (jump-table words and residue targets must never be
   left pointing at text about to be unmapped). *)
let map_or_copy t ctx v =
  match map_doomed_value t ctx v with
  | Some d -> Some d
  | None ->
    if in_doomed ctx v then (
      match Addr_space.fid_of_addr t.proc.Proc.mem v with
      | Some fid ->
        copy_fallback t ctx fid;
        Hashtbl.find_opt ctx.ox_addr_map v
      | None -> None)
    else None

exception Unstubbable

(* The compensation stub for a PC that lands mid-block between exact map
   points: re-execute the remainder of the old block (static targets
   relocated out of the doomed region), then jump to the mapped successor
   block in the new text. The tail of the old block re-establishes
   block-local state — that is the compensation — and the appended jump
   hands over at a block boundary, where the frame map is always exact.
   Returns [None] (caller falls back to a copy) when the old bytes cannot
   be read, a target cannot be relocated, or the fallthrough block has no
   mapping. *)
let build_stub t ctx (fm : Frame_map.t) (site : Frame_map.block_site) addr =
  match Hashtbl.find_opt ctx.ox_stubs addr with
  | Some base -> Some base
  | None -> (
    ctx.ox_cut "osr_stub";
    let mem = t.proc.Proc.mem in
    try
      let rev_instrs = ref [] in
      let a = ref addr in
      while !a < site.Frame_map.bs_old_end do
        match Addr_space.read_code mem !a with
        | None -> raise Unstubbable
        | Some i ->
          rev_instrs := i :: !rev_instrs;
          a := !a + Instr.size i
      done;
      let reloc i =
        match Instr.static_target i with
        | None -> i
        | Some tgt ->
          if not (in_doomed ctx tgt) then i
          else (
            match Hashtbl.find_opt ctx.ox_old_entry_fid tgt with
            | Some callee -> Instr.with_target i (ctx.ox_desired callee)
            | None -> (
              match Frame_map.block_new_start fm tgt with
              | Some n -> Instr.with_target i n
              | None -> raise Unstubbable))
      in
      let instrs = List.rev_map reloc !rev_instrs in
      (match instrs with [] -> raise Unstubbable | _ :: _ -> ());
      let closed =
        let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
        match last instrs with
        (* A trailing conditional branch still needs the fallthrough. *)
        | Instr.Jump _ | Instr.JumpInd _ | Instr.Ret | Instr.Halt -> instrs
        | _ -> (
          match Frame_map.block_new_start fm site.Frame_map.bs_old_end with
          | Some n -> instrs @ [ Instr.Jump n ]
          | None -> raise Unstubbable)
      in
      let bytes = List.fold_left (fun acc i -> acc + Instr.size i) 0 closed in
      let base = Addr_space.reserve_code mem (bytes + 8) in
      let cursor = ref base in
      List.iter
        (fun i ->
          Addr_space.write_code mem !cursor i;
          cursor := !cursor + Instr.size i)
        closed;
      Addr_space.add_sym_ranges mem
        [ { Addr_space.sr_start = base; sr_end = base + bytes; sr_fid = fm.Frame_map.fm_fid } ];
      ctx.ox_residue <-
        { rs_fid = fm.Frame_map.fm_fid;
          rs_kind = Stub;
          rs_round = ctx.ox_round;
          rs_ranges = [ (base, base + bytes) ] }
        :: ctx.ox_residue;
      Hashtbl.replace ctx.ox_stubs addr base;
      ctx.ox_stub_count <- ctx.ox_stub_count + 1;
      Some base
    with Unstubbable -> None)

(* Migrate one code pointer held by a thread (PC, return address, saved
   callee entry, scratch register): exact map hit rewrites in place,
   mid-block goes through a compensation stub, anything unmapped lands in a
   copy-fallback evacuation. *)
let resolve_pointer t ctx addr =
  if not (in_doomed ctx addr) then addr
  else begin
    ctx.ox_cut "osr_map";
    match Hashtbl.find_opt ctx.ox_addr_map addr with
    | Some d -> d
    | None -> (
      match Hashtbl.find_opt ctx.ox_old_entry_fid addr with
      | Some fid -> ctx.ox_desired fid
      | None -> (
        let via_copy fid =
          copy_fallback t ctx fid;
          match Hashtbl.find_opt ctx.ox_addr_map addr with Some d -> d | None -> addr
        in
        match Addr_space.fid_of_addr t.proc.Proc.mem addr with
        | None -> addr (* untracked; the post-GC verifier will catch it *)
        | Some fid -> (
          match Hashtbl.find_opt ctx.ox_fms fid with
          | None -> via_copy fid
          | Some fm -> (
            match Frame_map.resolve fm addr with
            | Frame_map.Exact n -> n
            | Frame_map.Mid_block site -> (
              match build_stub t ctx fm site addr with
              | Some s -> s
              | None -> via_copy fid)
            | Frame_map.Unmapped -> via_copy fid))))
  end

(* Register migration for one paused thread. Two rules:
   - a register holding a doomed function entry (a function pointer created
     before the replacement, awaiting its CallInd or Store) is moved to the
     desired entry;
   - a scratch register about to be consumed by an indirect transfer
     (JumpInd/CallInd reached from the PC before the register is
     redefined — the jump-table and indirect-call dispatch windows) is
     resolved like a PC.
   Ordinary integers colliding with a doomed entry are indistinguishable
   from pointers (same class of risk as the data-word scan); the address
   ranges involved make collisions vanishingly unlikely in practice. *)
let migrate_registers t ctx (thread : Ocolos_proc.Thread.t) =
  let regs = thread.Ocolos_proc.Thread.regs in
  Array.iteri
    (fun i v ->
      match Hashtbl.find_opt ctx.ox_old_entry_fid v with
      | Some fid -> regs.(i) <- ctx.ox_desired fid
      | None -> ())
    regs;
  let written = Array.make (Array.length regs) false in
  let mem = t.proc.Proc.mem in
  let pc = ref thread.Ocolos_proc.Thread.pc and stop = ref false in
  while not !stop do
    match Addr_space.read_code mem !pc with
    | None -> stop := true
    | Some instr ->
      (match instr with
      | Instr.JumpInd r | Instr.CallInd r ->
        if (not written.(r)) && in_doomed ctx regs.(r) then
          regs.(r) <- resolve_pointer t ctx regs.(r)
      | _ -> ());
      (match instr with
      | Instr.Alu (_, d, _, _)
      | Instr.Alui (_, d, _, _)
      | Instr.Movi (d, _)
      | Instr.Load (d, _, _)
      | Instr.FpCreate (d, _)
      | Instr.VtLoad (d, _, _)
      | Instr.Rand (d, _) -> written.(d) <- true
      | _ -> ());
      if Instr.is_control_flow instr || instr = Instr.Halt then stop := true
      else pc := !pc + Instr.size instr
  done

(* On-stack replacement proper: rewrite every running thread's PC, frame
   return addresses and saved callee entries into the surviving text.
   Returns the number of frames/PCs rewritten. *)
let migrate_threads t ctx =
  let migrated = ref 0 in
  Array.iter
    (fun (thread : Ocolos_proc.Thread.t) ->
      if Ocolos_proc.Thread.is_running thread then begin
        ctx.ox_cut "osr_frame";
        migrate_registers t ctx thread;
        let pc' = resolve_pointer t ctx thread.Ocolos_proc.Thread.pc in
        if pc' <> thread.Ocolos_proc.Thread.pc then begin
          thread.Ocolos_proc.Thread.pc <- pc';
          incr migrated
        end;
        List.iter
          (fun (frame : Ocolos_proc.Thread.frame) ->
            let touched = ref false in
            let r' = resolve_pointer t ctx frame.Ocolos_proc.Thread.ret_addr in
            if r' <> frame.Ocolos_proc.Thread.ret_addr then begin
              frame.Ocolos_proc.Thread.ret_addr <- r';
              touched := true
            end;
            let c' = resolve_pointer t ctx frame.Ocolos_proc.Thread.callee_entry in
            if c' <> frame.Ocolos_proc.Thread.callee_entry then begin
              frame.Ocolos_proc.Thread.callee_entry <- c';
              touched := true
            end;
            if !touched then incr migrated)
          (Ocolos_proc.Thread.live_frames thread)
      end)
    t.proc.Proc.threads;
  !migrated

(* Sweep the whole surviving code map for static targets into the doomed
   region and redirect them. Covers prior rounds' residue (whose calls were
   resolved to the retiring version's entries when built), C0/any-version
   call sites the offline table missed, and FpCreate sites whose static
   operand names a retiring entry. *)
let redirect_code_references t ctx =
  let mem = t.proc.Proc.mem in
  let sites = ref [] in
  Hashtbl.iter
    (fun addr instr ->
      if not (in_doomed ctx addr) then
        match Instr.static_target instr with
        | Some tgt when in_doomed ctx tgt -> sites := (addr, instr, tgt) :: !sites
        | Some _ | None -> ())
    mem.Addr_space.code;
  List.iter
    (fun (addr, instr, tgt) ->
      match map_or_copy t ctx tgt with
      | Some d when d <> tgt -> Addr_space.write_code mem addr (Instr.with_target instr d)
      | Some _ | None -> ())
    !sites

(* Scan every initialized data word for values inside the doomed region and
   rewrite them: jump-table entries, and stored function-pointer values —
   including ones stashed in TLS at run time, which no init-address walk
   would find. Words registered as jump-table words of a retiring version
   are additionally classified as inherited (this round's residue still
   dispatches through them; they drain with it). A plain integer colliding
   with a doomed code address would be rewritten too — the same accepted
   risk class as the original jump-table patching. Returns
   (words patched, newly inherited word addresses). *)
let patch_data_words t ctx =
  let mem = t.proc.Proc.mem in
  let words =
    Ocolos_util.Itbl.fold
      (fun a v acc -> if in_doomed ctx v then (a, v) :: acc else acc)
      mem.Addr_space.data []
  in
  let patched = ref 0 and inherited = ref [] in
  List.iter
    (fun (a, v) ->
      if Hashtbl.mem t.table_addrs a && (not (inherited_mem t a)) && not (List.mem a !inherited)
      then inherited := a :: !inherited;
      match map_or_copy t ctx v with
      | Some d when d <> v ->
        Addr_space.write_data mem a d;
        incr patched
      | Some _ | None -> ())
    words;
  (!patched, !inherited)

(* Reap residue (stubs and copies) that no thread can reach anymore —
   reachability is PCs, return addresses, saved callee entries and register
   values of running threads (registers conservatively retain: a scratch
   register may legitimately hold a residue block address mid-dispatch).
   Inherited jump-table words whose round has fully drained go with it.
   Returns (bytes freed, reaped code ranges). *)
let reap_residue t ~cut:cut_fn =
  let mem = t.proc.Proc.mem in
  let live =
    live_frames_and_pcs t
    @ (Array.to_list t.proc.Proc.threads
      |> List.concat_map (fun (th : Ocolos_proc.Thread.t) ->
             if Ocolos_proc.Thread.is_running th then
               Array.to_list th.Ocolos_proc.Thread.regs
             else []))
  in
  let still_needed r =
    List.exists (fun addr -> List.exists (fun rg -> in_range rg addr) r.rs_ranges) live
  in
  let keep, reap = List.partition still_needed t.residue in
  (* Liveness is transitive: a parked copy may call into another copy (its
     callee was itself evacuated in a later round), so residue referenced
     by code that will stay mapped must stay too. Mutually-dead copies may
     still die together — only references from surviving code promote. *)
  let keep = ref keep and reap = ref reap in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let in_reap addr =
      List.exists
        (fun r -> List.exists (fun rg -> in_range rg addr) r.rs_ranges)
        !reap
    in
    let promoted, dead =
      List.partition
        (fun r ->
          Hashtbl.fold
            (fun addr instr acc ->
              acc
              ||
              match Instr.static_target instr with
              | Some tgt ->
                List.exists (fun rg -> in_range rg tgt) r.rs_ranges && not (in_reap addr)
              | None -> false)
            mem.Addr_space.code false)
        !reap
    in
    if promoted <> [] then begin
      keep := !keep @ promoted;
      reap := dead;
      continue_ := true
    end
  done;
  let keep = !keep and reap = !reap in
  let bytes = ref 0 in
  List.iter
    (fun r ->
      cut_fn "gc_reap";
      List.iter
        (fun (s, e) ->
          let addr = ref s in
          while !addr < e do
            match Addr_space.read_code mem !addr with
            | Some instr ->
              bytes := !bytes + Instr.size instr;
              Addr_space.remove_code mem !addr;
              addr := !addr + Instr.size instr
            | None -> incr addr
          done;
          Addr_space.remove_sym_ranges mem ~pred:(fun sr ->
              sr.Addr_space.sr_start >= s && sr.Addr_space.sr_start < e))
        r.rs_ranges)
    reap;
  t.residue <- keep;
  let rounds_alive = List.map (fun r -> r.rs_round) keep in
  let keep_inh, reap_inh =
    List.partition (fun (rnd, _) -> List.mem rnd rounds_alive) t.inherited
  in
  List.iter
    (fun (_, addrs) ->
      List.iter
        (fun a ->
          Addr_space.remove_data mem a;
          Hashtbl.remove t.init_addrs a;
          Hashtbl.remove t.table_addrs a;
          bytes := !bytes + 8)
        addrs)
    reap_inh;
  t.inherited <- keep_inh;
  (!bytes, List.concat_map (fun r -> r.rs_ranges) reap)

(* On-demand residue GC between replacements (e.g. the daemon's idle tick):
   as frames drain past their migrated program points, stubs and copies
   become unreachable without another replacement to notice. Pauses the
   process around the reachability proof if it isn't already paused.
   Returns bytes freed. *)
let gc_residue t =
  let was_paused = t.proc.Proc.paused in
  if not was_paused then Proc.pause t.proc;
  let bytes, _ = reap_residue t ~cut:(fun _ -> ()) in
  if not was_paused then Proc.resume t.proc;
  if bytes > 0 then Metrics.count "ocolos_gc_bytes_freed_total" bytes;
  bytes

exception Dangling_pointer of string

(* Safety check after GC: no reachable code pointer may reference freed
   code. Scans v-tables, thread PCs/frames, patched call sites, every code
   address the execution engines hold (cached blocks, chain links, inline
   caches, per-thread resume memos) and — because true OSR retires whole
   versions — every static target in the surviving code map. With
   [freed = []] the scan runs in global mode: every scanned pointer must be
   mapped, the CI smoke test's whole-process audit. *)
let verify_no_dangling t ~freed =
  let mem = t.proc.Proc.mem in
  let suspect addr =
    match freed with [] -> true | l -> List.exists (fun r -> in_range r addr) l
  in
  let check what addr =
    if suspect addr && Addr_space.read_code mem addr = None then
      raise (Dangling_pointer (Fmt.str "%s references freed code at 0x%x" what addr))
  in
  Array.iter
    (fun (vid, slot, _) ->
      check (Fmt.str "vtable %d slot %d" vid slot)
        (Addr_space.read_data mem (Addr_space.vtable_base mem vid + slot)))
    t.vtable_slots;
  List.iter (fun addr -> check "thread stack/pc" addr) (live_frames_and_pcs t);
  Array.iter
    (fun (site, _, _) ->
      match Addr_space.read_code mem site with
      | Some (Instr.Call target) -> check (Fmt.str "call site 0x%x" site) target
      | Some _ | None -> ())
    t.offline_sites;
  List.iter
    (fun (label, addr) -> check (Fmt.str "engine %s" label) addr)
    (Proc.engine_code_pointers t.proc);
  Hashtbl.iter
    (fun addr instr ->
      match Instr.static_target instr with
      | Some target -> check (Fmt.str "instr at 0x%x" addr) target
      | None -> ())
    mem.Addr_space.code

(* Rebuild the live binary view: code is snapshotted from the process,
   each function's ranges are its resident version plus any residue it
   owns, entries come from [current_entry] (update it first), and the
   extra sections/init keep the next BOLT round allocating above
   everything mapped. *)
let refresh_current t ~name_suffix ~extra_sections ~extra_init =
  let mem = t.proc.Proc.mem in
  let code = Hashtbl.copy mem.Addr_space.code in
  let code_order =
    let arr = Array.make (Hashtbl.length code) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun addr _ ->
        arr.(!i) <- addr;
        incr i)
      code;
    Array.sort compare arr;
    arr
  in
  let residue_by_fid = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let ranges =
        List.map (fun (s, e) -> { Binary.r_start = s; r_size = e - s }) r.rs_ranges
      in
      Hashtbl.replace residue_by_fid r.rs_fid
        (ranges @ Option.value ~default:[] (Hashtbl.find_opt residue_by_fid r.rs_fid)))
    t.residue;
  let symbols =
    Array.map
      (fun (s : Binary.func_sym) ->
        let fid = s.Binary.fs_fid in
        let res =
          List.map
            (fun (rs, re) -> { Binary.r_start = rs; r_size = re - rs })
            (Option.value ~default:[] (Hashtbl.find_opt t.resident fid))
        in
        let extra = Option.value ~default:[] (Hashtbl.find_opt residue_by_fid fid) in
        { s with
          Binary.fs_entry =
            (match Hashtbl.find_opt t.current_entry fid with
            | Some e -> e
            | None -> s.Binary.fs_entry);
          fs_ranges = res @ extra })
      t.original.Binary.symbols
  in
  let sections =
    List.map
      (fun (s : Binary.section) ->
        if s.Binary.sec_name = ".text" then { s with Binary.sec_name = "bolt.org.text" } else s)
      t.original.Binary.sections
    @ extra_sections
  in
  let entry =
    match Hashtbl.find_opt t.entry_fid_any t.original.Binary.entry with
    | Some fid -> (
      match Hashtbl.find_opt t.current_entry fid with
      | Some e -> e
      | None -> t.original.Binary.entry)
    | None -> t.original.Binary.entry
  in
  t.current <-
    { t.original with
      Binary.name = t.original.Binary.name ^ name_suffix;
      sections;
      code;
      code_order;
      symbols;
      global_init = t.original.Binary.global_init @ extra_init;
      entry }

(* The stop-the-world phase. Pauses the target, injects C_{i+1}, patches
   code pointers, migrates live frames into the new text (OSR) and unmaps
   every retired range, resumes. *)
let replace_code t (result : Bolt.result) : replacement_stats =
  Trace.span "replace.stw" ~attrs:[ ("incoming_version", Trace.I (t.version + 1)) ]
  @@ fun stw_sp ->
  let proc = t.proc in
  let mem = proc.Proc.mem in
  Proc.pause proc;
  cut t "proc.pause_timeout";
  cut t "pause";
  let new_text = result.Bolt.new_text in
  (* 1. Inject the optimized code and its jump-table data. *)
  Trace.span "replace.inject" (fun sp ->
      cut t "mem.exhausted";
      Array.iter
        (fun addr ->
          cut t "inject_code";
          Addr_space.write_code mem addr (Hashtbl.find new_text.Binary.code addr))
        new_text.Binary.code_order;
      List.iter
        (fun (a, v) ->
          cut t "inject_data";
          Addr_space.write_data mem a v)
        new_text.Binary.global_init;
      cut t "sym_index";
      Addr_space.add_sym_ranges mem
        (Array.to_list new_text.Binary.symbols
        |> List.concat_map (fun (s : Binary.func_sym) ->
               List.map
                 (fun (r : Binary.range) ->
                   { Addr_space.sr_start = r.Binary.r_start;
                     sr_end = r.Binary.r_start + r.Binary.r_size;
                     sr_fid = s.Binary.fs_fid })
                 s.Binary.fs_ranges));
      Trace.set_attr sp "instrs" (Trace.I (Array.length new_text.Binary.code_order)));
  let bytes_injected = Binary.text_bytes new_text in
  (* Keep the mmap cursor above the injected section: stub/copy residue is
     reserved from it, and BOLT's 1 MiB guard band keeps the next round's
     emission above the residue in turn. *)
  let new_end = Bolt.sections_end new_text in
  if mem.Addr_space.next_map_base < new_end then
    mem.Addr_space.next_map_base <- (new_end + 0xFFFF) land lnot 0xFFFF;
  (* 2. Entry maps. *)
  let new_entries = Hashtbl.create 64 in
  Array.iter
    (fun (s : Binary.func_sym) -> Hashtbl.replace new_entries s.Binary.fs_fid s.Binary.fs_entry)
    new_text.Binary.symbols;
  let desired_entry fid =
    match Hashtbl.find_opt new_entries fid with
    | Some e -> e
    | None -> (
      match Hashtbl.find_opt t.current_entry fid with
      | Some e -> e
      | None -> Hashtbl.find t.c0_entry fid)
  in
  (* Register the new entries with the wrapFuncPtrCreation hook's entry
     index: pointers created from now on resolve to the live version. *)
  Trace.span "replace.fp_pin" (fun _ ->
      Hashtbl.iter
        (fun fid entry ->
          cut t "fp_pin";
          Hashtbl.replace t.entry_fid_any entry fid)
        new_entries);
  (* 3. Patch v-tables (before the data scan, so slots are never seen as
     doomed values). *)
  let vt_patched = ref 0 in
  Trace.span "replace.vtable_patch" (fun sp ->
      Array.iter
        (fun (vid, slot, fid) ->
          cut t "vtable_patch";
          let addr = Addr_space.vtable_base mem vid + slot in
          let cur = Addr_space.read_data mem addr in
          let want = desired_entry fid in
          if cur <> want then begin
            Addr_space.write_data mem addr want;
            incr vt_patched
          end)
        t.vtable_slots;
      Trace.set_attr sp "patched" (Trace.I !vt_patched));
  (* The doomed text: every resident range of every re-emitted function —
     in each function's first optimization round that is its C0 range, so
     [bolt.org.text] retires piecewise as coverage grows. *)
  let doomed_list =
    Hashtbl.fold
      (fun fid _ acc ->
        match Hashtbl.find_opt t.resident fid with Some ranges -> ranges @ acc | None -> acc)
      new_entries []
  in
  t.rounds <- t.rounds + 1;
  let ctx =
    make_osr_ctx t ~doomed:doomed_list ~fms:result.Bolt.frame_maps ~desired:desired_entry
      ~round:t.rounds
      ~cut_fn:(fun p -> cut t p)
  in
  (* 4. Patch direct calls in stack-live functions (or all, under the
     ablation flag), plus any site still targeting the doomed text. *)
  let live = stack_live_fids t in
  let sites_patched = ref 0 in
  Trace.span "replace.call_patch" (fun sp ->
      Array.iter
        (fun (site, owner, callee) ->
          cut t "call_patch";
          let cur_target =
            match Addr_space.read_code mem site with
            | Some (Instr.Call cur) -> Some cur
            | Some _ | None -> None
          in
          let target_doomed =
            match cur_target with Some cur -> in_doomed ctx cur | None -> false
          in
          if t.config.patch_all_direct_calls || Hashtbl.mem live owner || target_doomed then begin
            let want = desired_entry callee in
            match cur_target with
            | Some cur when cur <> want ->
              Addr_space.write_code mem site (Instr.Call want);
              incr sites_patched
            | Some _ | None -> ()
          end)
        t.offline_sites;
      Trace.set_attr sp "stack_live_funcs" (Trace.I (Hashtbl.length live));
      Trace.set_attr sp "patched" (Trace.I !sites_patched));
  (* 5. On-stack replacement and GC of the retired text. *)
  let frames_migrated = ref 0 and gc_bytes = ref 0 in
  let reaped_ranges = ref [] in
  if doomed_list <> [] then begin
    Trace.span "replace.gc" (fun gc_sp ->
        frames_migrated := migrate_threads t ctx;
        Proc.notify_threads_migrated proc;
        redirect_code_references t ctx;
        let tables_patched, inherited_this = patch_data_words t ctx in
        Trace.set_attr gc_sp "table_entries_patched" (Trace.I tables_patched);
        (* Unmap the retired text immediately — no trampolines, no pinned
           C0. *)
        List.iter
          (fun (s, e) ->
            let addr = ref s in
            while !addr < e do
              match Addr_space.read_code mem !addr with
              | Some instr ->
                cut t "gc_unmap";
                gc_bytes := !gc_bytes + Instr.size instr;
                Addr_space.remove_code mem !addr;
                addr := !addr + Instr.size instr
              | None -> incr addr
            done)
          doomed_list;
        Addr_space.remove_sym_ranges mem ~pred:(fun r -> in_doomed ctx r.Addr_space.sr_start);
        t.residue <- ctx.ox_residue @ t.residue;
        if inherited_this <> [] then t.inherited <- (ctx.ox_round, inherited_this) :: t.inherited;
        let reap_bytes, reaped = reap_residue t ~cut:(fun p -> cut t p) in
        gc_bytes := !gc_bytes + reap_bytes;
        reaped_ranges := reaped;
        Trace.set_attr gc_sp "frames_migrated" (Trace.I !frames_migrated);
        Trace.set_attr gc_sp "osr_stubs" (Trace.I ctx.ox_stub_count);
        Trace.set_attr gc_sp "copied_funcs" (Trace.I ctx.ox_copy_count);
        Trace.set_attr gc_sp "bytes_freed" (Trace.I !gc_bytes));
    if t.config.verify_gc then begin
      cut t "verify";
      Trace.span "replace.verify" (fun _ ->
          verify_no_dangling t ~freed:(doomed_list @ !reaped_ranges))
    end
  end;
  (* 6. Update version state and the live binary view. *)
  cut t "commit";
  Trace.span "replace.commit" (fun _ ->
      t.version <- t.version + 1;
      Array.iter
        (fun (s : Binary.func_sym) ->
          Hashtbl.replace t.resident s.Binary.fs_fid
            (List.map
               (fun (r : Binary.range) -> (r.Binary.r_start, r.Binary.r_start + r.Binary.r_size))
               s.Binary.fs_ranges))
        new_text.Binary.symbols;
      Hashtbl.iter (fun fid e -> Hashtbl.replace t.current_entry fid e) new_entries;
      List.iter
        (fun (a, v) ->
          Hashtbl.replace t.init_addrs a ();
          if Hashtbl.mem new_text.Binary.code v then Hashtbl.replace t.table_addrs a ())
        new_text.Binary.global_init;
      refresh_current t
        ~name_suffix:(Fmt.str ".v%d" t.version)
        ~extra_sections:new_text.Binary.sections ~extra_init:new_text.Binary.global_init);
  (* 7. Stop-the-world cost, then resume. *)
  let sites = !vt_patched + !sites_patched in
  let pause_seconds = Cost.pause_seconds t.config.cost ~sites ~bytes:bytes_injected in
  Trace.set_attr stw_sp "version" (Trace.I t.version);
  Trace.set_attr stw_sp "pause_seconds" (Trace.F pause_seconds);
  Metrics.count "ocolos_replacements_total" 1;
  Metrics.count "ocolos_vtable_entries_patched_total" !vt_patched;
  Metrics.count "ocolos_call_sites_patched_total" !sites_patched;
  Metrics.count "ocolos_code_bytes_injected_total" bytes_injected;
  Metrics.count "ocolos_gc_bytes_freed_total" !gc_bytes;
  Metrics.count "ocolos_frames_migrated_total" !frames_migrated;
  Metrics.count "ocolos_osr_stubs_total" ctx.ox_stub_count;
  Metrics.sample ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds" pause_seconds;
  Ocolos_obs.Events.log "osr.migrate"
    ~fields:
      [ ("round", Trace.I ctx.ox_round);
        ("version", Trace.I t.version);
        ("frames", Trace.I !frames_migrated);
        ("stubs", Trace.I ctx.ox_stub_count);
        ("copies", Trace.I ctx.ox_copy_count);
        ("resident_extra_bytes", Trace.I (resident_extra_bytes t)) ];
  Proc.resume proc;
  { version = t.version;
    vtable_entries_patched = !vt_patched;
    call_sites_patched = !sites_patched;
    stack_live_funcs = Hashtbl.length live;
    frames_migrated = !frames_migrated;
    osr_stubs = ctx.ox_stub_count;
    copied_funcs = ctx.ox_copy_count;
    funcs_optimized = result.Bolt.funcs_reordered;
    code_bytes_injected = bytes_injected;
    gc_bytes_freed = !gc_bytes;
    pause_seconds }

let version t = t.version
let current_binary t = t.current
let proc t = t.proc
let config t = t.config

(* The function-pointer resolver frozen at call time: independent copies of
   the entry tables, so a shadow clone keeps resolving [FpCreate] against
   the version mix that was live when the clone was taken, immune to later
   replacements or reverts on the real controller (whose own hook reads the
   mutable tables). *)
let frozen_translate_fp t =
  let entry_fid = Hashtbl.copy t.entry_fid_any in
  let current = Hashtbl.copy t.current_entry in
  fun addr ->
    match Hashtbl.find_opt entry_fid addr with
    | Some fid -> (
      match Hashtbl.find_opt current fid with Some e -> e | None -> addr)
    | None -> addr

(* ---- crash recovery ---- *)

(* Re-attach a fresh controller to a process whose previous OCOLOS daemon
   died. Everything a committed replacement did survives in the target —
   injected text, patched v-tables and call sites, the extended symbol
   index — while an aborted transaction left no trace at all ({!Txn}
   rolled back before the old daemon died). The daemon-side state is
   reconstructed from the target as ground truth:

   - code the symbol index places at or above the original image's end
     belongs to injected versions; a function's live entry is the lowest
     such address it owns (emission lays the hot part first), falling back
     to its C0 entry;
   - a function's resident set is its injected ranges plus whatever C0
     ranges are still mapped. Stub/copy residue is indistinguishable from
     live text here and is conservatively treated as resident; the next
     replacement round dooms and re-migrates it through the copy fallback
     (no frame map covers it) like any other old text;
   - every injected range start is registered in the function-pointer entry
     index — a superset of the true entry set, harmless because only
     entries are ever created as pointers;
   - every initialized data word is tracked, but none is classified as a
     reapable jump-table word: without the per-round provenance nothing is
     provably drained, so recovered table words simply stay resident. *)
let reattach ?(config = default_config) (proc : Proc.t) =
  Trace.span "ocolos.reattach" @@ fun sp ->
  let t = attach ~config proc in
  let mem = proc.Proc.mem in
  let orig_end = Bolt.sections_end t.original in
  let injected =
    Array.to_list mem.Addr_space.sym_index
    |> List.filter (fun r -> r.Addr_space.sr_start >= orig_end)
  in
  Trace.set_attr sp "injected_ranges" (Trace.I (List.length injected));
  (match injected with
  | [] -> ()
  | _ :: _ ->
    let entry = Hashtbl.create 64 in
    List.iter
      (fun (r : Addr_space.sym_range) ->
        let fid = r.Addr_space.sr_fid in
        (match Hashtbl.find_opt entry fid with
        | Some e when e <= r.Addr_space.sr_start -> ()
        | Some _ | None -> Hashtbl.replace entry fid r.Addr_space.sr_start);
        Hashtbl.replace t.entry_fid_any r.Addr_space.sr_start fid)
      injected;
    Hashtbl.iter (fun fid e -> Hashtbl.replace t.current_entry fid e) entry;
    Hashtbl.iter
      (fun fid c0ranges ->
        let inj =
          List.filter_map
            (fun (r : Addr_space.sym_range) ->
              if r.Addr_space.sr_fid = fid then Some (r.Addr_space.sr_start, r.Addr_space.sr_end)
              else None)
            injected
        in
        let c0 = List.filter (fun (s, _) -> Addr_space.read_code mem s <> None) c0ranges in
        Hashtbl.replace t.resident fid (inj @ c0))
      t.c0_ranges;
    Hashtbl.reset t.init_addrs;
    Hashtbl.reset t.table_addrs;
    Ocolos_util.Itbl.fold
      (fun a _ () -> Hashtbl.replace t.init_addrs a ())
      mem.Addr_space.data ();
    t.version <- 1;
    let lo = List.fold_left (fun acc r -> min acc r.Addr_space.sr_start) max_int injected in
    let hi = List.fold_left (fun acc r -> max acc r.Addr_space.sr_end) 0 injected in
    (* A hull section over the recovered region and a marker at the highest
       initialized data word keep the next BOLT round's code and table
       allocations above everything present. *)
    let data_top =
      Ocolos_util.Itbl.fold (fun a _ acc -> max a acc) mem.Addr_space.data (-1)
    in
    let extra_init =
      if data_top < 0 then [] else [ (data_top, Addr_space.read_data mem data_top) ]
    in
    refresh_current t ~name_suffix:".recovered"
      ~extra_sections:[ { Binary.sec_name = ".text"; sec_base = lo; sec_size = hi - lo } ]
      ~extra_init;
    Trace.set_attr sp "live_text" (Trace.S (Fmt.str "0x%x-0x%x" lo hi)));
  Trace.set_attr sp "version" (Trace.I t.version);
  Metrics.count "ocolos_reattach_total" 1;
  t

(* ---- controller-state snapshots (for transactional replacement) ----

   [replace_code] mutates, besides the address space and thread state, the
   controller's own view of the live code version. A snapshot captures
   exactly the fields [replace_code] touches — plus the values of every
   tracked data word, which {!revert} needs because the forward data scan
   rewrites stored function pointers and jump-table words in place — so
   that {!Txn} can roll the controller back to C_i alongside the
   address-space undo log, and {!revert} can rebuild C_i from scratch.
   Hash tables are copied on both capture and restore, so one snapshot can
   back any number of rollbacks. ([rounds] is deliberately not captured:
   it is a monotone residue tag and must never move backwards.) *)

type snapshot = {
  sn_version : int;
  sn_current : Binary.t;
  sn_current_entry : (int, int) Hashtbl.t;
  sn_resident : (int, (int * int) list) Hashtbl.t;
  sn_residue : residue list;
  sn_inherited : (int * int list) list;
  sn_entry_fid_any : (int, int) Hashtbl.t;
  sn_init_addrs : (int, unit) Hashtbl.t;
  sn_table_addrs : (int, unit) Hashtbl.t;
  sn_word_values : (int * int) list; (* tracked words' values at capture *)
}

let snapshot t =
  { sn_version = t.version;
    sn_current = t.current;
    sn_current_entry = Hashtbl.copy t.current_entry;
    sn_resident = Hashtbl.copy t.resident;
    sn_residue = t.residue;
    sn_inherited = t.inherited;
    sn_entry_fid_any = Hashtbl.copy t.entry_fid_any;
    sn_init_addrs = Hashtbl.copy t.init_addrs;
    sn_table_addrs = Hashtbl.copy t.table_addrs;
    sn_word_values =
      Hashtbl.fold
        (fun a () acc -> (a, Addr_space.read_data t.proc.Proc.mem a) :: acc)
        t.init_addrs [] }

let restore t s =
  t.version <- s.sn_version;
  t.current <- s.sn_current;
  t.current_entry <- Hashtbl.copy s.sn_current_entry;
  Hashtbl.reset t.resident;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.resident k v) s.sn_resident;
  t.residue <- s.sn_residue;
  t.inherited <- s.sn_inherited;
  Hashtbl.reset t.entry_fid_any;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.entry_fid_any k v) s.sn_entry_fid_any;
  Hashtbl.reset t.init_addrs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.init_addrs k v) s.sn_init_addrs;
  Hashtbl.reset t.table_addrs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.table_addrs k v) s.sn_table_addrs

(* A snapshot describing C0 for a controller whose in-memory history is
   gone (fleet restart after a reattach): C0's bytes live in the original
   binary image, so reverting to it is always possible even though its
   text may long since have been unmapped. *)
let c0_snapshot t =
  let resident = Hashtbl.create 256 in
  Hashtbl.iter (fun fid ranges -> Hashtbl.replace resident fid ranges) t.c0_ranges;
  let entry_fid = Hashtbl.create 256 in
  Hashtbl.iter (fun fid e -> Hashtbl.replace entry_fid e fid) t.c0_entry;
  let init = Hashtbl.create 64 and tables = Hashtbl.create 64 in
  List.iter
    (fun (a, v) ->
      Hashtbl.replace init a ();
      if Hashtbl.mem t.original.Binary.code v then Hashtbl.replace tables a ())
    t.original.Binary.global_init;
  { sn_version = 0;
    sn_current = t.original;
    sn_current_entry = Hashtbl.copy t.c0_entry;
    sn_resident = resident;
    sn_residue = [];
    sn_inherited = [];
    sn_entry_fid_any = entry_fid;
    sn_init_addrs = init;
    sn_table_addrs = tables;
    sn_word_values = t.original.Binary.global_init }

let snapshot_version s = s.sn_version

(* ---- staged rollback of a committed version ---- *)

type revert_stats = {
  rv_from_version : int;
  rv_to_version : int;
  rv_vtable_entries_patched : int;
  rv_call_sites_patched : int;
  rv_copied_funcs : int;
  rv_code_bytes_reinjected : int;
  rv_gc_bytes_freed : int;
  rv_pause_seconds : float;
}

(* Un-commit: a reverse replacement taking the process from the live
   version back to the (older) version a snapshot describes. The forward
   GC unmapped the snapshot's text, so the revert re-injects it from the
   snapshot's binary view, then runs the same OSR machinery with the roles
   swapped: the doomed text is every resident range absent from the
   snapshot, desired entries come from the snapshot, and — since no frame
   map exists from a newer version back into an older one — every live
   frame in the doomed text migrates through the copy fallback. The doomed
   text is then unmapped outright: registers holding doomed values were
   migrated like any other pointer, so no landing-pad trampolines are left
   behind (the seed's one-instruction trampolines were unmapped never and
   leaked a few words per revert forever).

   This is the fleet's emergency brake after a canary regression, so unlike
   [replace_code] it contains NO fault cuts: every faultable stage of a
   rollout fails safe *before* any replica diverges, and the revert that
   undoes a partial rollout must not itself be able to fail. *)
let revert t (s : snapshot) : revert_stats =
  if s.sn_version >= t.version then
    invalid_arg
      (Fmt.str "Ocolos.revert: snapshot C%d is not older than live C%d" s.sn_version t.version);
  let from_version = t.version in
  let mem = t.proc.Proc.mem in
  (* The doomed text: resident ranges the snapshot does not have. *)
  let doomed_list =
    Hashtbl.fold
      (fun fid ranges acc ->
        let sn = Option.value ~default:[] (Hashtbl.find_opt s.sn_resident fid) in
        List.filter (fun rg -> not (List.mem rg sn)) ranges @ acc)
      t.resident []
  in
  Trace.span "replace.revert"
    ~attrs:[ ("from_version", Trace.I from_version); ("to_version", Trace.I s.sn_version) ]
  @@ fun sp ->
  let proc = t.proc in
  Proc.pause proc;
  (* 1. Re-inject the snapshot's text that forward GC removed. *)
  let reinjected = ref 0 in
  Hashtbl.iter
    (fun fid sn_ranges ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t.resident fid) in
      List.iter
        (fun (rs, re) ->
          if not (List.mem (rs, re) cur) then begin
            let addr = ref rs in
            while !addr < re do
              match Hashtbl.find_opt s.sn_current.Binary.code !addr with
              | Some instr ->
                Addr_space.write_code mem !addr instr;
                reinjected := !reinjected + Instr.size instr;
                addr := !addr + Instr.size instr
              | None -> incr addr
            done;
            Addr_space.add_sym_ranges mem
              [ { Addr_space.sr_start = rs; sr_end = re; sr_fid = fid } ]
          end)
        sn_ranges)
    s.sn_resident;
  (* 2. Where every function should live after the revert. *)
  let desired_entry fid =
    match Hashtbl.find_opt s.sn_current_entry fid with
    | Some e -> e
    | None -> Hashtbl.find t.c0_entry fid
  in
  t.rounds <- t.rounds + 1;
  let ctx =
    make_osr_ctx t ~doomed:doomed_list ~fms:[] ~desired:desired_entry ~round:t.rounds
      ~cut_fn:(fun _ -> ())
  in
  (* 3. Patch v-tables back. *)
  let vt_patched = ref 0 in
  Array.iter
    (fun (vid, slot, fid) ->
      let addr = Addr_space.vtable_base mem vid + slot in
      let cur = Addr_space.read_data mem addr in
      let want = desired_entry fid in
      if cur <> want then begin
        Addr_space.write_data mem addr want;
        incr vt_patched
      end)
    t.vtable_slots;
  (* 4. Patch direct calls back: stack-live owners plus doomed targets. *)
  let live = stack_live_fids t in
  let sites_patched = ref 0 in
  Array.iter
    (fun (site, owner, callee) ->
      let cur_target =
        match Addr_space.read_code mem site with
        | Some (Instr.Call cur) -> Some cur
        | Some _ | None -> None
      in
      let target_doomed =
        match cur_target with Some cur -> in_doomed ctx cur | None -> false
      in
      if t.config.patch_all_direct_calls || Hashtbl.mem live owner || target_doomed then begin
        let want = desired_entry callee in
        match cur_target with
        | Some cur when cur <> want ->
          Addr_space.write_code mem site (Instr.Call want);
          incr sites_patched
        | Some _ | None -> ()
      end)
    t.offline_sites;
  (* 5. Migrate live frames out of the doomed text (copy fallback — there
     is no newer->older frame map), redirect code and data, restore the
     snapshot's word values, unmap. *)
  let frames_migrated = migrate_threads t ctx in
  Proc.notify_threads_migrated proc;
  redirect_code_references t ctx;
  let tables_patched, _ = patch_data_words t ctx in
  Trace.set_attr sp "table_entries_patched" (Trace.I tables_patched);
  (* Words live at snapshot time get their captured values back (captured
     after that round's own patches, so surviving residue keeps reading
     correct values); words the snapshot already carried as inherited are
     restored only if still present — resurrecting a drained round's words
     would leak them. *)
  let sn_inh_addrs = Hashtbl.create 64 in
  List.iter
    (fun (_, addrs) -> List.iter (fun a -> Hashtbl.replace sn_inh_addrs a ()) addrs)
    s.sn_inherited;
  let live_at_sn a = Hashtbl.mem s.sn_init_addrs a && not (Hashtbl.mem sn_inh_addrs a) in
  List.iter
    (fun (a, v) ->
      if live_at_sn a || Ocolos_util.Itbl.find_opt mem.Addr_space.data a <> None then
        Addr_space.write_data mem a v)
    s.sn_word_values;
  let gc_bytes = ref 0 in
  List.iter
    (fun (rs, re) ->
      let addr = ref rs in
      while !addr < re do
        match Addr_space.read_code mem !addr with
        | Some instr ->
          gc_bytes := !gc_bytes + Instr.size instr;
          Addr_space.remove_code mem !addr;
          addr := !addr + Instr.size instr
        | None -> incr addr
      done)
    doomed_list;
  Addr_space.remove_sym_ranges mem ~pred:(fun r -> in_doomed ctx r.Addr_space.sr_start);
  (* 6. Residue and inherited-word bookkeeping. Tags for words the
     snapshot considers live are dropped (the words ARE the restored
     version's live tables again); words initialized after the snapshot —
     the undone versions' tables, now read only by this round's copies —
     are inherited under this round. *)
  t.residue <- ctx.ox_residue @ t.residue;
  let inherited' =
    List.filter_map
      (fun (rnd, addrs) ->
        match List.filter (fun a -> not (live_at_sn a)) addrs with
        | [] -> None
        | addrs -> Some (rnd, addrs))
      t.inherited
  in
  let newer =
    Hashtbl.fold
      (fun a () acc ->
        if
          Hashtbl.mem s.sn_init_addrs a
          || List.exists (fun (_, addrs) -> List.mem a addrs) inherited'
        then acc
        else a :: acc)
      t.init_addrs []
  in
  t.inherited <-
    (if newer = [] then inherited' else (ctx.ox_round, newer) :: inherited');
  let reap_bytes, reaped_ranges = reap_residue t ~cut:(fun _ -> ()) in
  gc_bytes := !gc_bytes + reap_bytes;
  if t.config.verify_gc then verify_no_dangling t ~freed:(doomed_list @ reaped_ranges);
  (* 7. Restore the controller view. [entry_fid_any] is left as a superset
     (it is monotone across versions and only ever consulted by entry). *)
  t.version <- s.sn_version;
  t.current_entry <- Hashtbl.copy s.sn_current_entry;
  Hashtbl.reset t.resident;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.resident k v) s.sn_resident;
  Hashtbl.reset t.init_addrs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.init_addrs k v) s.sn_init_addrs;
  Hashtbl.reset t.table_addrs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.table_addrs k v) s.sn_table_addrs;
  List.iter
    (fun (_, addrs) ->
      List.iter
        (fun a ->
          Hashtbl.replace t.init_addrs a ();
          Hashtbl.replace t.table_addrs a ())
        addrs)
    t.inherited;
  (* A placeholder section spanning the reverted region (and a data-top
     marker) keeps the next BOLT round allocating above the copies made
     here and above every table still read by residue. *)
  let orig_end = Bolt.sections_end t.original in
  let data_top = Ocolos_util.Itbl.fold (fun a _ acc -> max a acc) mem.Addr_space.data (-1) in
  let extra_init =
    if data_top < 0 then [] else [ (data_top, Addr_space.read_data mem data_top) ]
  in
  refresh_current t ~name_suffix:".revert"
    ~extra_sections:
      [ { Binary.sec_name = ".text.reverted";
          sec_base = orig_end;
          sec_size = mem.Addr_space.next_map_base - orig_end } ]
    ~extra_init;
  (* 8. Cost, metrics, resume. *)
  let sites = !vt_patched + !sites_patched in
  let pause_seconds = Cost.pause_seconds t.config.cost ~sites ~bytes:!reinjected in
  Trace.set_attr sp "pause_seconds" (Trace.F pause_seconds);
  Metrics.count "ocolos_reverts_total" 1;
  Metrics.count "ocolos_code_bytes_reinjected_total" !reinjected;
  Metrics.count "ocolos_gc_bytes_freed_total" !gc_bytes;
  Metrics.count "ocolos_frames_migrated_total" frames_migrated;
  Metrics.sample ~buckets:Metrics.pause_buckets "ocolos_replace_pause_seconds" pause_seconds;
  Ocolos_obs.Events.log "osr.revert"
    ~fields:
      [ ("round", Trace.I ctx.ox_round);
        ("to_version", Trace.I s.sn_version);
        ("frames", Trace.I frames_migrated);
        ("copies", Trace.I ctx.ox_copy_count);
        ("resident_extra_bytes", Trace.I (resident_extra_bytes t)) ];
  Proc.resume proc;
  { rv_from_version = from_version;
    rv_to_version = s.sn_version;
    rv_vtable_entries_patched = !vt_patched;
    rv_call_sites_patched = !sites_patched;
    rv_copied_funcs = ctx.ox_copy_count;
    rv_code_bytes_reinjected = !reinjected;
    rv_gc_bytes_freed = !gc_bytes;
    rv_pause_seconds = pause_seconds }
