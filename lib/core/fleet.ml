(* Fleet-scale orchestration (see fleet.mli).

   The state machine, per campaign:

     Monitoring --gate--> Profiling --window--> [stop, aggregate, BOLT]
       --> canary replace --> Verifying --soak--> verdict
             |                                  |        |
             | any replica rolls back           | pass   | breach
             v                                  v        v
       staged rollback                      promote   staged rollback
       (revert committed)                   rest      (revert canaries)

   Everything faultable — profiling, aggregation, BOLT, each replica's
   transactional replacement — fails safe to C_i before the fleet diverges;
   any partial rollout is unwound with {!Ocolos.revert}, which has no fault
   cuts. The only way to strand a mixed fleet is the daemon *dying* between
   replicas (Fault.Killed escaping [tick]), which [reattach] recovers. *)

open Ocolos_proc
open Ocolos_uarch
open Ocolos_profiler
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Events = Ocolos_obs.Events

type config = {
  canary_fraction : float;
  verify_s : float;
  max_ipc_drop : float;
  max_p99_rise : float;
  canary_ipc_scale : float;
  sample_keep_every : int option;
  latency_probe : (int -> float) option;
  daemon : Daemon.config;
}

let default_config =
  { canary_fraction = 0.25;
    verify_s = 2.0;
    max_ipc_drop = 0.10;
    max_p99_rise = 0.50;
    canary_ipc_scale = 1.0;
    sample_keep_every = None;
    latency_probe = None;
    daemon = Daemon.default_config }

type replica = {
  id : int;
  proc : Proc.t;
  oc : Ocolos.t;
  mutable session : Perf.session option;
  mutable prof_base : Counters.t; (* counters at profiling start *)
  mutable baseline_win : Counters.t; (* profiling-window interval *)
  mutable baseline_ipc : float; (* IPC over the profiling window *)
  mutable baseline_p99 : float; (* probe reading at canary start *)
  mutable verify_base : Counters.t; (* counters at canary start *)
  mutable pause_debt : float; (* modeled pause seconds not yet charged as stalls *)
}

(* One rollout cohort's verify-window aggregate: counters are summed across
   the cohort's replicas before deriving rates, so a single noisy replica
   cannot dominate the verdict the way the old per-replica threshold check
   allowed. *)
type cohort = {
  co_ids : int list;
  co_ipc : float; (* aggregate verify-window IPC (canary: scale applied) *)
  co_base_ipc : float; (* aggregate profiling-window IPC *)
  co_ipc_ratio : float; (* co_ipc / co_base_ipc; 0 when no baseline *)
  co_p99 : float; (* mean probe reading across the cohort *)
  co_base_p99 : float; (* mean probe reading at canary start *)
  co_l1i_mpki : float;
  co_itlb_mpki : float;
  co_btb_mpki : float;
  co_taken_pki : float;
}

type readout = {
  ro_version : int;
  ro_canary : cohort;
  ro_rest : cohort option; (* [None] when every replica is a canary *)
  ro_breach : (string * string) option; (* breached signal name, detail *)
}

(* Build a cohort readout from pre-summed counter aggregates. Pure, so the
   test suite can hand-compute expected readouts. *)
let cohort_of ~ids ~baseline ~verify ?(ipc_scale = 1.0) ~p99 ~base_p99 () =
  let ipc = Counters.ipc verify *. ipc_scale in
  let base_ipc = Counters.ipc baseline in
  { co_ids = ids;
    co_ipc = ipc;
    co_base_ipc = base_ipc;
    co_ipc_ratio = (if base_ipc > 0.0 then ipc /. base_ipc else 0.0);
    co_p99 = p99;
    co_base_p99 = base_p99;
    co_l1i_mpki = Counters.l1i_mpki verify;
    co_itlb_mpki = Counters.itlb_mpki verify;
    co_btb_mpki = Counters.btb_misses_pki verify;
    co_taken_pki = Counters.taken_branches_pki verify }

(* The A/B promotion verdict. Both cohorts ran the same traffic through the
   same wall-clock window, but possibly heterogeneous inputs, so raw IPCs
   are not comparable across cohorts — each cohort is normalized against
   its own profiling-window baseline first (difference-in-differences): the
   canary breaches when its verify/baseline ratio falls more than
   [max_ipc_drop] below the rest-of-fleet ratio. With no rest cohort (every
   replica a canary) the canary is judged against its own baseline alone,
   which keeps a one-replica fleet's verdict identical to the
   single-process daemon differential. p99 is symmetric with the guard on
   the other side. *)
let judge config ~canary ~rest =
  let ipc_guard = 1.0 -. config.max_ipc_drop in
  let ipc_breach =
    if canary.co_base_ipc <= 0.0 then None
    else
      match rest with
      | Some rc when rc.co_ipc_ratio > 0.0 ->
        if canary.co_ipc_ratio < ipc_guard *. rc.co_ipc_ratio then
          Some
            ( "ipc",
              Fmt.str "canary cohort IPC ratio %.2f fell below rest-of-fleet %.2f (guard %.0f%%)"
                canary.co_ipc_ratio rc.co_ipc_ratio
                (100.0 *. config.max_ipc_drop) )
        else None
      | _ ->
        if canary.co_ipc < ipc_guard *. canary.co_base_ipc then
          Some
            ( "ipc",
              Fmt.str "canary cohort IPC regressed %.2f -> %.2f (guard %.0f%%)"
                canary.co_base_ipc canary.co_ipc
                (100.0 *. config.max_ipc_drop) )
        else None
  in
  match ipc_breach with
  | Some _ -> ipc_breach
  | None ->
    if canary.co_base_p99 <= 0.0 then None
    else begin
      let p99_guard = 1.0 +. config.max_p99_rise in
      let canary_ratio = canary.co_p99 /. canary.co_base_p99 in
      match rest with
      | Some rc when rc.co_base_p99 > 0.0 && rc.co_p99 > 0.0 ->
        let rest_ratio = rc.co_p99 /. rc.co_base_p99 in
        if canary_ratio > p99_guard *. rest_ratio then
          Some
            ( "p99",
              Fmt.str "canary cohort p99 ratio %.2f rose above rest-of-fleet %.2f (guard +%.0f%%)"
                canary_ratio rest_ratio
                (100.0 *. config.max_p99_rise) )
        else None
      | _ ->
        if canary.co_p99 > p99_guard *. canary.co_base_p99 then
          Some
            ( "p99",
              Fmt.str "canary cohort p99 rose %.3fs -> %.3fs (guard +%.0f%%)"
                canary.co_base_p99 canary.co_p99
                (100.0 *. config.max_p99_rise) )
        else None
    end

type phase =
  | Monitoring
  | Profiling of { since : float }
  | Verifying of { until_s : float; canaries : int list; result : Ocolos_bolt.Bolt.result }

type t = {
  config : config;
  guard : Guard.t;
  reps : replica array;
  mutable phase : phase;
  mutable staged : (replica * Ocolos.snapshot) list; (* committed, newest first *)
  mutable last_counters : Counters.t;
  mutable last_tick_s : float;
  mutable best_tps : float;
  mutable last_replacement_s : float;
  mutable rollouts : int;
  mutable rollbacks : int;
  mutable restart_reverted : int list;
  mutable last_readout : readout option;
}

type action =
  | Idle
  | Started_profiling of string
  | Canary_started of { version : int; canaries : int list }
  | Promoted of { version : int; replicas : int }
  | Rolled_back of { reason : string; reverted : int list }
  | Campaign_aborted of string
  | Breaker_open of { until_s : float }

let action_to_string = function
  | Idle -> "idle"
  | Started_profiling reason -> "profiling: " ^ reason
  | Canary_started { version; canaries } ->
    Fmt.str "canary C%d on replicas %a" version
      Fmt.(list ~sep:(any ",") int)
      canaries
  | Promoted { version; replicas } -> Fmt.str "promoted C%d fleet-wide (%d replicas)" version replicas
  | Rolled_back { reason; reverted } ->
    Fmt.str "rolled back (%s): reverted replicas %a" reason
      Fmt.(list ~sep:(any ",") int)
      reverted
  | Campaign_aborted reason -> Fmt.str "campaign aborted (%s), layout kept" reason
  | Breaker_open { until_s } -> Fmt.str "breaker open until %.1fs" until_s

let fleet_counters t =
  Array.fold_left (fun acc r -> Counters.add acc (Proc.total_counters r.proc)) Counters.zero
    t.reps

let make ~attach ?(config = default_config) ?ocolos_config ?guard procs =
  if Array.length procs = 0 then invalid_arg "Fleet: empty fleet";
  let guard = match guard with Some g -> g | None -> Guard.create () in
  let reps =
    Array.mapi
      (fun id proc ->
        { id;
          proc;
          oc = attach ?config:ocolos_config proc;
          session = None;
          prof_base = Counters.zero;
          baseline_win = Counters.zero;
          baseline_ipc = 0.0;
          baseline_p99 = 0.0;
          verify_base = Counters.zero;
          pause_debt = 0.0 })
      procs
  in
  let t =
    { config;
      guard;
      reps;
      phase = Monitoring;
      staged = [];
      last_counters = Counters.zero;
      last_tick_s = 0.0;
      best_tps = 0.0;
      last_replacement_s = neg_infinity;
      rollouts = 0;
      rollbacks = 0;
      restart_reverted = [];
      last_readout = None }
  in
  t.last_counters <- fleet_counters t;
  t

let create ?config ?ocolos_config ?guard procs =
  make ~attach:(fun ?config proc -> Ocolos.attach ?config proc) ?config ?ocolos_config ?guard
    procs

(* A layout signature for mixed-fleet detection after reattach: the
   reconstructed version number is always 1 for any replica with injected
   code, so compare where the functions actually live. *)
let layout_signature (oc : Ocolos.t) =
  let b = Ocolos.current_binary oc in
  Array.to_list b.Ocolos_binary.Binary.symbols
  |> List.map (fun (s : Ocolos_binary.Binary.func_sym) ->
         (s.Ocolos_binary.Binary.fs_fid, s.Ocolos_binary.Binary.fs_entry))
  |> List.sort compare

let reattach ?config ?ocolos_config ?guard procs =
  let t =
    make ~attach:(fun ?config proc -> Ocolos.reattach ?config proc) ?config ?ocolos_config
      ?guard procs
  in
  let sigs = Array.map (fun r -> layout_signature r.oc) t.reps in
  let homogeneous = Array.for_all (fun s -> s = sigs.(0)) sigs in
  if not homogeneous then begin
    (* A rollout died between replicas. Re-running BOLT cannot reproduce the
       dead campaign's exact layout, so the only reachable homogeneous state
       is C0 — always resident, always revertible to. *)
    Array.iter
      (fun r ->
        if Ocolos.version r.oc > 0 then begin
          ignore (Ocolos.revert r.oc (Ocolos.c0_snapshot r.oc));
          t.restart_reverted <- r.id :: t.restart_reverted
        end)
      t.reps;
    t.restart_reverted <- List.rev t.restart_reverted;
    Trace.mark "fleet.restart_reverted"
      ~attrs:[ ("replicas", Trace.I (List.length t.restart_reverted)) ];
    Metrics.count "ocolos_fleet_restart_reverts_total" (List.length t.restart_reverted);
    Events.log "fleet.restart_reverted"
      ~fields:[ ("replicas", Trace.I (List.length t.restart_reverted)) ]
  end;
  t.last_counters <- fleet_counters t;
  t

let canary_count t =
  let n = Array.length t.reps in
  max 1 (min n (int_of_float (ceil (t.config.canary_fraction *. float_of_int n))))

let replica_label r = [ ("replica", string_of_int r.id) ]

let record_versions t =
  Array.iter
    (fun r ->
      Metrics.record ~labels:(replica_label r) "ocolos_fleet_replica_version"
        (float_of_int (Ocolos.version r.oc)))
    t.reps

(* Unwind a partial rollout: revert every replica committed this campaign,
   newest first. No fault cuts anywhere on this path. *)
let unwind t =
  let reverted =
    List.map
      (fun (r, sn) ->
        Trace.in_replica r.id @@ fun () ->
        let rv = Ocolos.revert r.oc sn in
        r.pause_debt <- r.pause_debt +. rv.Ocolos.rv_pause_seconds;
        r.id)
      t.staged
  in
  t.staged <- [];
  List.sort compare reverted

let rollback t ~now_s ~reason =
  let reverted = unwind t in
  t.phase <- Monitoring;
  t.best_tps <- 0.0;
  t.last_replacement_s <- now_s;
  t.rollbacks <- t.rollbacks + 1;
  Guard.campaign_failed t.guard ~now_s;
  Trace.mark "fleet.rolled_back" ~attrs:[ ("reason", Trace.S reason) ];
  Metrics.count "ocolos_fleet_rollbacks_total" 1;
  Metrics.count "ocolos_fleet_reverted_replicas_total" (List.length reverted);
  Events.log "fleet.rolled_back"
    ~fields:
      [ ("reason", Trace.S reason); ("reverted", Trace.I (List.length reverted)) ];
  record_versions t;
  Rolled_back { reason; reverted }

(* Shadow divergence on a replica's replacement: wrong code nearly reached
   the fleet. The divergent replica's own transaction already unwound
   itself; revert every replica staged earlier this campaign and trip the
   breaker immediately — campaign_failed's gradual counting is for
   campaigns that fail {e safely}. *)
let shadow_diverged t ~now_s ~reason =
  let reverted = unwind t in
  t.phase <- Monitoring;
  t.best_tps <- 0.0;
  t.last_replacement_s <- now_s;
  t.rollbacks <- t.rollbacks + 1;
  Guard.trip_breaker t.guard ~now_s ~reason;
  Trace.mark "fleet.rolled_back" ~attrs:[ ("reason", Trace.S reason) ];
  Metrics.count "ocolos_fleet_rollbacks_total" 1;
  Metrics.count "ocolos_fleet_shadow_reverts_total" 1;
  Metrics.count "ocolos_fleet_reverted_replicas_total" (List.length reverted);
  Events.log "fleet.rolled_back"
    ~fields:
      [ ("reason", Trace.S reason); ("reverted", Trace.I (List.length reverted)) ];
  record_versions t;
  Rolled_back { reason; reverted }

let abort t ~now_s ~reason =
  t.phase <- Monitoring;
  t.best_tps <- 0.0;
  t.last_replacement_s <- now_s;
  Guard.campaign_failed t.guard ~now_s;
  Trace.mark "fleet.campaign_aborted" ~attrs:[ ("reason", Trace.S reason) ];
  Metrics.count "ocolos_fleet_campaigns_aborted_total" 1;
  Events.log "fleet.campaign_aborted" ~fields:[ ("reason", Trace.S reason) ];
  Campaign_aborted reason

(* Replace on one replica, staging its pre-replace snapshot for rollback.
   The shadow check (sampled by [shadow_every], counting rollouts) runs as
   the transaction's [verify] gate: a divergent replica unwinds itself
   byte-exactly inside its own transaction and was never staged, so
   [`Diverged] tells the caller only the {e other} staged replicas need
   reverting. *)
let stage_replace t r result =
  Trace.in_replica r.id @@ fun () ->
  let sn = Ocolos.snapshot r.oc in
  r.verify_base <- Proc.total_counters r.proc;
  let shadowing =
    let every = t.config.daemon.Daemon.shadow_every in
    every > 0 && t.rollouts mod every = 0
  in
  let verify =
    if not shadowing then None
    else
      let pre = Shadow.prepare r.oc in
      Some
        (fun () ->
          match Shadow.check (Shadow.arm pre r.oc result) with
          | Shadow.Match -> Ok ()
          | Shadow.Divergence why -> Error why)
  in
  match Txn.replace_code ?verify r.oc result with
  | Txn.Committed stats ->
    r.pause_debt <- r.pause_debt +. stats.Ocolos.pause_seconds;
    t.staged <- (r, sn) :: t.staged;
    `Staged
  | Txn.Diverged { dv_reason; _ } -> `Diverged dv_reason
  | Txn.Rolled_back rb -> `Rolled_back rb.Txn.rb_point

(* Profiling window complete: stop every replica's session, aggregate the
   decimated streams, BOLT once, then start the canary stage. *)
let finish_profiling t ~now_s =
  let n = Array.length t.reps in
  let keep_every =
    match t.config.sample_keep_every with
    | Some k -> max 1 k
    | None -> n
  in
  let kept =
    Array.map
      (fun r ->
        Trace.in_replica r.id @@ fun () ->
        let session =
          match r.session with
          | Some s -> s
          | None -> invalid_arg "Fleet: replica lost its profiling session"
        in
        r.session <- None;
        r.baseline_win <- Counters.diff (Proc.total_counters r.proc) r.prof_base;
        r.baseline_ipc <- Counters.ipc r.baseline_win;
        let samples = Perf.stop session in
        Perf2bolt.decimate ~keep_every ~phase:(r.id mod keep_every) samples)
      t.reps
  in
  let oc0 = t.reps.(0).oc in
  let fault = (Ocolos.config oc0).Ocolos.fault in
  match
    let profile =
      Perf2bolt.convert_sources ~binary:(Ocolos.current_binary oc0) ?fault
        (Array.to_list kept)
    in
    let records = Array.fold_left (fun acc s -> acc + Perf.record_count s) 0 kept in
    let perf2bolt_s =
      Cost.perf2bolt_seconds (Ocolos.config oc0).Ocolos.cost ~records
    in
    if Guard.check_deadline t.guard ~phase:`Perf2bolt ~seconds:perf2bolt_s then
      `Watchdog "perf2bolt"
    else begin
      let result, bolt_s =
        Ocolos.run_bolt ~tier:(Guard.tier t.guard) ~exclude:(Guard.quarantined t.guard) oc0
          profile
      in
      Guard.record_func_failures t.guard result.Ocolos_bolt.Bolt.failed;
      if Guard.check_deadline t.guard ~phase:`Bolt ~seconds:bolt_s then `Watchdog "bolt"
      else `Bolted result
    end
  with
  | `Watchdog phase -> abort t ~now_s ~reason:(Fmt.str "watchdog: %s deadline" phase)
  | exception Ocolos_util.Fault.Injected (point, _) ->
    abort t ~now_s ~reason:(Fmt.str "fault at %s" point)
  | `Bolted result -> (
    (* Tier-1 gate: one validation covers the whole fleet — every replica
       would commit the same BOLT result. A rejection quarantines the
       offending functions and aborts before any replica pauses. *)
    let report = Ocolos.validate_result oc0 result in
    if not (Ocolos_bolt.Validate.ok report) then begin
      List.iter
        (fun fid -> Guard.quarantine_now t.guard fid ~reason:"validate")
        (Ocolos_bolt.Validate.rejected_fids report);
      abort t ~now_s
        ~reason:
          (Fmt.str "validation rejected: %s"
             (String.concat ","
                (List.filter
                   (fun c -> Ocolos_bolt.Validate.check_rejections report c > 0)
                   Ocolos_bolt.Validate.checks)))
    end
    else begin
    let k = canary_count t in
    let canaries = Array.to_list (Array.sub t.reps 0 k) in
    let failed =
      List.fold_left
        (fun failed r ->
          match failed with
          | `Staged -> (
            match stage_replace t r result with
            | `Staged ->
              r.baseline_p99 <-
                (match t.config.latency_probe with Some probe -> probe r.id | None -> 0.0);
              `Staged
            | other -> other)
          | other -> other)
        `Staged canaries
    in
    match failed with
    | `Rolled_back point ->
      rollback t ~now_s ~reason:(Fmt.str "canary replace rolled back at %s" point)
    | `Diverged why ->
      shadow_diverged t ~now_s ~reason:(Fmt.str "canary shadow divergence: %s" why)
    | `Staged ->
      let version = Ocolos.version (List.hd canaries).oc in
      let ids = List.map (fun r -> r.id) canaries in
      (* Anchor the rest-of-fleet cohort's verify window at the same instant
         as the canaries': A/B comparison needs both cohorts measured over
         the same soak. *)
      Array.iter
        (fun r ->
          if not (List.mem r.id ids) then begin
            r.verify_base <- Proc.total_counters r.proc;
            r.baseline_p99 <-
              (match t.config.latency_probe with Some probe -> probe r.id | None -> 0.0)
          end)
        t.reps;
      t.phase <- Verifying { until_s = now_s +. t.config.verify_s; canaries = ids; result };
      Trace.mark "fleet.canary_started"
        ~attrs:[ ("version", Trace.I version); ("canaries", Trace.I k) ];
      Metrics.count "ocolos_fleet_canaries_total" k;
      Events.log "fleet.canary_started"
        ~fields:[ ("version", Trace.I version); ("canaries", Trace.I k) ];
      record_versions t;
      Canary_started { version; canaries = ids }
    end)

(* Sum a cohort's profiling-window and verify-window counter intervals. *)
let cohort_totals t ids =
  List.fold_left
    (fun (base, verify) id ->
      let r = t.reps.(id) in
      ( Counters.add base r.baseline_win,
        Counters.add verify (Counters.diff (Proc.total_counters r.proc) r.verify_base) ))
    (Counters.zero, Counters.zero) ids

let mean_probe t ids =
  match (t.config.latency_probe, ids) with
  | None, _ | _, [] -> 0.0
  | Some probe, ids ->
    List.fold_left (fun acc id -> acc +. probe id) 0.0 ids
    /. float_of_int (List.length ids)

let mean_base_p99 t ids =
  match ids with
  | [] -> 0.0
  | ids ->
    List.fold_left (fun acc id -> acc +. t.reps.(id).baseline_p99) 0.0 ids
    /. float_of_int (List.length ids)

let export_cohort name c =
  let labels = [ ("cohort", name) ] in
  Metrics.record ~labels "ocolos_fleet_cohort_ipc" c.co_ipc;
  Metrics.record ~labels "ocolos_fleet_cohort_ipc_baseline" c.co_base_ipc;
  Metrics.record ~labels "ocolos_fleet_cohort_ipc_ratio" c.co_ipc_ratio;
  Metrics.record ~labels "ocolos_fleet_cohort_p99_seconds" c.co_p99;
  Metrics.record ~labels "ocolos_fleet_cohort_p99_baseline_seconds" c.co_base_p99;
  Metrics.record ~labels "ocolos_fleet_cohort_l1i_mpki" c.co_l1i_mpki;
  Metrics.record ~labels "ocolos_fleet_cohort_itlb_mpki" c.co_itlb_mpki;
  Metrics.record ~labels "ocolos_fleet_cohort_btb_mpki" c.co_btb_mpki;
  Metrics.record ~labels "ocolos_fleet_cohort_taken_pki" c.co_taken_pki

(* Canary soak complete: build both cohorts' A/B readout, judge, then widen
   or unwind. *)
let finish_verify t ~now_s ~canaries ~result =
  (* Per-replica canary gauges stay for dashboards; the verdict is taken at
     cohort level below. *)
  List.iter
    (fun id ->
      let r = t.reps.(id) in
      let ipc =
        Counters.ipc (Counters.diff (Proc.total_counters r.proc) r.verify_base)
        *. t.config.canary_ipc_scale
      in
      Metrics.record ~labels:(replica_label r) "ocolos_fleet_canary_ipc" ipc;
      Metrics.record ~labels:(replica_label r) "ocolos_fleet_canary_ipc_baseline" r.baseline_ipc;
      match t.config.latency_probe with
      | None -> ()
      | Some probe ->
        Metrics.record ~labels:(replica_label r) "ocolos_fleet_canary_p99_seconds" (probe id))
    canaries;
  let rest_ids =
    Array.to_list t.reps
    |> List.filter_map (fun r -> if List.mem r.id canaries then None else Some r.id)
  in
  let version = Ocolos.version t.reps.(List.hd canaries).oc in
  let canary_base, canary_verify = cohort_totals t canaries in
  let ro_canary =
    cohort_of ~ids:canaries ~baseline:canary_base ~verify:canary_verify
      ~ipc_scale:t.config.canary_ipc_scale ~p99:(mean_probe t canaries)
      ~base_p99:(mean_base_p99 t canaries) ()
  in
  let ro_rest =
    match rest_ids with
    | [] -> None
    | ids ->
      let base, verify = cohort_totals t ids in
      Some
        (cohort_of ~ids ~baseline:base ~verify ~p99:(mean_probe t ids)
           ~base_p99:(mean_base_p99 t ids) ())
  in
  let ro_breach = judge t.config ~canary:ro_canary ~rest:ro_rest in
  t.last_readout <- Some { ro_version = version; ro_canary; ro_rest; ro_breach };
  export_cohort "canary" ro_canary;
  (match ro_rest with Some c -> export_cohort "rest" c | None -> ());
  Events.log "fleet.verify_readout"
    ~fields:
      ([ ("version", Trace.I version);
         ("canary_ipc_ratio", Trace.F ro_canary.co_ipc_ratio);
         ( "rest_ipc_ratio",
           Trace.F (match ro_rest with Some c -> c.co_ipc_ratio | None -> 0.0) );
         ("canary_l1i_mpki", Trace.F ro_canary.co_l1i_mpki);
         ("canary_taken_pki", Trace.F ro_canary.co_taken_pki) ]
      @
      match ro_breach with
      | Some (signal, detail) -> [ ("breach", Trace.S signal); ("detail", Trace.S detail) ]
      | None -> [ ("breach", Trace.S "none") ]);
  match ro_breach with
  | Some (_, reason) -> rollback t ~now_s ~reason
  | None -> (
    let rest =
      Array.to_list t.reps |> List.filter (fun r -> not (List.mem r.id canaries))
    in
    let failed =
      List.fold_left
        (fun failed r ->
          match failed with `Staged -> stage_replace t r result | other -> other)
        `Staged rest
    in
    match failed with
    | `Rolled_back point ->
      rollback t ~now_s ~reason:(Fmt.str "promotion replace rolled back at %s" point)
    | `Diverged why ->
      shadow_diverged t ~now_s ~reason:(Fmt.str "promotion shadow divergence: %s" why)
    | `Staged ->
      let version = Ocolos.version t.reps.(0).oc in
      t.staged <- [];
      t.phase <- Monitoring;
      t.best_tps <- 0.0;
      t.last_replacement_s <- now_s;
      t.rollouts <- t.rollouts + 1;
      Guard.campaign_succeeded t.guard;
      Trace.mark "fleet.promoted"
        ~attrs:[ ("version", Trace.I version); ("replicas", Trace.I (Array.length t.reps)) ];
      Metrics.count "ocolos_fleet_rollouts_total" 1;
      Events.log "fleet.promoted"
        ~fields:
          [ ("version", Trace.I version); ("replicas", Trace.I (Array.length t.reps)) ];
      record_versions t;
      Promoted { version; replicas = Array.length t.reps })

let tick t ~now_s =
  let counters = fleet_counters t in
  let interval = Counters.diff counters t.last_counters in
  let dt = now_s -. t.last_tick_s in
  t.last_counters <- counters;
  t.last_tick_s <- now_s;
  if dt <= 0.0 || now_s < t.config.daemon.Daemon.warmup_s then Idle
  else begin
    let tps = float_of_int interval.Counters.transactions /. dt in
    let td = Counters.topdown interval in
    match t.phase with
    | Profiling { since } ->
      if now_s -. since >= t.config.daemon.Daemon.profile_s then finish_profiling t ~now_s
      else Idle
    | Verifying { until_s; canaries; result } ->
      if now_s >= until_s then finish_verify t ~now_s ~canaries ~result else Idle
    | Monitoring -> (
      t.best_tps <- Float.max t.best_tps tps;
      let reason =
        Daemon.decide t.config.daemon ~replacements:t.rollouts
          ~version:(Ocolos.version t.reps.(0).oc) ~now_s
          ~last_replacement_s:t.last_replacement_s ~tps ~best_tps:t.best_tps
          ~frontend:td.Counters.frontend
      in
      match reason with
      | Some why ->
        if Guard.allow_campaign t.guard ~now_s then begin
          Array.iter
            (fun r ->
              Trace.in_replica r.id @@ fun () ->
              r.prof_base <- Proc.total_counters r.proc;
              r.session <-
                Some
                  (Perf.start
                     ~cfg:(Ocolos.config r.oc).Ocolos.perf
                     ?fault:(Ocolos.config r.oc).Ocolos.fault r.proc))
            t.reps;
          t.phase <- Profiling { since = now_s };
          Trace.mark "fleet.profiling_started" ~attrs:[ ("reason", Trace.S why) ];
          Events.log "fleet.profiling_started" ~fields:[ ("reason", Trace.S why) ];
          Started_profiling why
        end
        else begin
          match Guard.breaker_state t.guard with
          | Guard.Open { until_s } -> Breaker_open { until_s }
          | Guard.Closed | Guard.Half_open -> Idle (* unreachable *)
        end
      | None -> Idle)
  end

let replicas t = Array.length t.reps
let ocolos t i = t.reps.(i).oc
let procs t = Array.map (fun r -> r.proc) t.reps
let guard t = t.guard
let versions t = Array.to_list t.reps |> List.map (fun r -> Ocolos.version r.oc)

let converged t =
  let vs = versions t in
  match vs with [] -> true | v :: rest -> List.for_all (fun x -> x = v) rest

let mixed t = not (converged t)
let rollouts t = t.rollouts
let rollbacks t = t.rollbacks
let reverted_on_reattach t = t.restart_reverted
let last_readout t = t.last_readout

let take_pause_debt t i =
  let r = t.reps.(i) in
  let d = r.pause_debt in
  r.pause_debt <- 0.0;
  d
