(* Tier-2 miscompile containment: post-commit shadow execution.

   Tier-1 validation ({!Ocolos_bolt.Validate}) proves structural CFG
   equivalence before commit, but deliberately cannot prove jump-table
   *correspondence* — a rotated table is still a table of valid block
   starts. The shadow checker closes that hole behaviourally.

   Mechanics: clone the target immediately before and immediately after
   the commit. The pre-commit clone still runs C_i; the post-commit clone
   runs C_{i+1} with OSR-migrated threads; and no workload instruction
   retires between the two captures (the stop-the-world replacement
   brackets them), so the clones stand at the same architectural point.
   Both are replayed for a short window on the reference engine under
   identical scheduling and compared on layout-invariant observables:

   - per-thread control-flow events (direct/indirect calls, returns,
     indirect jumps), resolved to function ids — and, for indirect-jump
     targets, block ids via the round's frame maps — because raw addresses
     are layout-variant. Conditional-branch and plain-jump events are even
     more so (emission negates branch polarity and elides fallthrough
     jumps, so their taken-event streams legitimately differ between
     versions) and are excluded.
   - when both replays run to architectural completion (every thread
     halted): transaction counts, final registers, stacks and data memory,
     modulo the round's old->new address translation.

   The clones share no mutable state with the live process — arming the
   shadow never perturbs the target's execution or its determinism — and
   each clone carries a translate_fp resolver frozen from the controller
   tables as of its capture instant, so later replacements or reverts on
   the live controller cannot skew the replay. *)

open Ocolos_proc
module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Events = Ocolos_obs.Events
module Frame_map = Ocolos_bolt.Frame_map

type config = {
  window : int; (* instructions replayed per clone *)
  quantum : int; (* scheduler quantum, matching the live driver's default *)
}

let default_config = { window = 4096; quantum = 64 }

type verdict = Match | Divergence of string

type prepared = { pre_cfg : config; pre_proc : Proc.t }

type t = {
  cfg : config;
  ref_proc : Proc.t; (* pre-commit clone: C_i text and state *)
  new_proc : Proc.t; (* post-commit clone: C_{i+1} text, migrated threads *)
  xlat : (int, int) Hashtbl.t; (* old addr -> new addr (entries, block starts, exact pcs) *)
  ref_block : (int, int * int) Hashtbl.t; (* old block start -> (fid, bid) *)
  new_block : (int, int * int) Hashtbl.t; (* new block start -> (fid, bid) *)
}

let prepare ?(config = default_config) oc =
  let p = Proc.clone (Ocolos.proc oc) in
  p.Proc.hooks.translate_fp <- Some (Ocolos.frozen_translate_fp oc);
  { pre_cfg = config; pre_proc = p }

let arm prepared oc (result : Ocolos_bolt.Bolt.result) =
  let np = Proc.clone (Ocolos.proc oc) in
  np.Proc.hooks.translate_fp <- Some (Ocolos.frozen_translate_fp oc);
  let xlat = Hashtbl.create 256 in
  List.iter
    (fun (o, n) -> Hashtbl.replace xlat o n)
    result.Ocolos_bolt.Bolt.translation;
  let ref_block = Hashtbl.create 256 and new_block = Hashtbl.create 256 in
  List.iter
    (fun (fid, fm) ->
      Array.iter
        (fun (bs : Frame_map.block_site) ->
          Hashtbl.replace ref_block bs.Frame_map.bs_old_start (fid, bs.Frame_map.bs_bid);
          Hashtbl.replace new_block bs.Frame_map.bs_new_start (fid, bs.Frame_map.bs_bid);
          Hashtbl.replace xlat bs.Frame_map.bs_old_start bs.Frame_map.bs_new_start)
        fm.Frame_map.fm_blocks;
      Hashtbl.iter (fun o n -> Hashtbl.replace xlat o n) fm.Frame_map.fm_exact)
    result.Ocolos_bolt.Bolt.frame_maps;
  Metrics.count "ocolos_shadow_armed_total" 1;
  Events.log "shadow.armed"
    ~fields:
      [ ("window", Trace.I prepared.pre_cfg.window);
        ("funcs", Trace.I (List.length result.Ocolos_bolt.Bolt.frame_maps)) ];
  { cfg = prepared.pre_cfg;
    ref_proc = prepared.pre_proc;
    new_proc = np;
    xlat;
    ref_block;
    new_block }

(* Layout-invariant event vocabulary. Cond/Jump are excluded (tag -1):
   their taken-event streams differ between equivalent layouts. *)
let kind_tag = function
  | Proc.IndJump -> 0
  | Proc.DirectCall -> 1
  | Proc.IndCall -> 2
  | Proc.Return -> 3
  | Proc.Cond | Proc.Jump -> -1

let ev_str (tag, fid, bid) =
  let k =
    match tag with 0 -> "ijmp" | 1 -> "call" | 2 -> "icall" | 3 -> "ret" | _ -> "?"
  in
  if bid >= 0 then Fmt.str "%s f%d.b%d" k fid bid else Fmt.str "%s f%d" k fid

(* Replay one clone: collect per-thread filtered (kind, fid, bid) events.
   Returns the event streams (oldest first), whether every thread halted,
   and the fault message if the replay itself faulted (corrupted code can
   run off the map — on the clone, never on the live process). *)
let replay cfg block_of (p : Proc.t) =
  let nth = Array.length p.Proc.threads in
  let evs = Array.make nth [] in
  p.Proc.hooks.on_taken_branch <-
    Some
      (fun ~tid ~from_addr:_ ~to_addr ~kind ~cycles:_ ->
        let tag = kind_tag kind in
        if tag >= 0 then begin
          let fid =
            match Addr_space.fid_of_addr p.Proc.mem to_addr with
            | Some f -> f
            | None -> -1
          in
          let bid =
            match kind with
            | Proc.IndJump -> (
              match Hashtbl.find_opt block_of to_addr with
              | Some (_, b) -> b
              | None -> -1)
            | _ -> -1
          in
          evs.(tid) <- (tag, fid, bid) :: evs.(tid)
        end);
  let fault =
    match
      Proc.run ~engine:`Reference ~quantum:cfg.quantum ~max_instrs:cfg.window
        ~cycle_limit:infinity p
    with
    | () -> None
    | exception Proc.Fault msg -> Some msg
  in
  p.Proc.hooks.on_taken_branch <- None;
  (Array.map List.rev evs, (not (Proc.runnable p)) && fault = None, fault)

let rec first_mismatch i a b =
  match (a, b) with
  | [], _ | _, [] -> None
  | x :: a', y :: b' -> if x = y then first_mismatch (i + 1) a' b' else Some (i, x, y)

(* A new-version value is equivalent to an old-version one when it is equal
   or is its image under the round's old->new address translation. *)
let equivalent xlat v_ref v_new =
  v_ref = v_new || Hashtbl.find_opt xlat v_ref = Some v_new

let check t =
  Trace.span "shadow.check" @@ fun sp ->
  let ref_evs, ref_done, ref_fault = replay t.cfg t.ref_block t.ref_proc in
  let new_evs, new_done, new_fault = replay t.cfg t.new_block t.new_proc in
  let divergence = ref None in
  let fail msg = if !divergence = None then divergence := Some msg in
  Array.iteri
    (fun tid evs_r ->
      match first_mismatch 0 evs_r new_evs.(tid) with
      | Some (i, x, y) ->
        fail
          (Fmt.str "tid %d: control-flow event %d differs: %s (old) vs %s (new)" tid i
             (ev_str x) (ev_str y))
      | None ->
        if
          ref_done && new_done
          && List.length evs_r <> List.length new_evs.(tid)
        then
          fail
            (Fmt.str "tid %d: %d control-flow events (old) vs %d (new) at completion"
               tid (List.length evs_r)
               (List.length new_evs.(tid))))
    ref_evs;
  (* A replay fault on exactly one side is a divergence in itself; both
     sides faulting means the workload faults regardless of layout, and the
     event-prefix comparison above already judged equivalence. *)
  (match (ref_fault, new_fault) with
  | None, Some msg -> fail (Fmt.str "new version faulted during replay: %s" msg)
  | Some msg, None -> fail (Fmt.str "old version faulted during replay: %s" msg)
  | None, None | Some _, Some _ -> ());
  (* Deep final-state comparison only at architectural completion: a
     budget-limited replay stops the two clones at different architectural
     points (the new layout retires fewer instructions per unit of work),
     so registers and memory are only comparable when both ran dry. *)
  if !divergence = None && ref_done && new_done then begin
    if Proc.transactions t.ref_proc <> Proc.transactions t.new_proc then
      fail
        (Fmt.str "transactions diverged: %d (old) vs %d (new)"
           (Proc.transactions t.ref_proc)
           (Proc.transactions t.new_proc));
    Array.iteri
      (fun tid (rt : Thread.t) ->
        let nt = t.new_proc.Proc.threads.(tid) in
        if !divergence = None then begin
          Array.iteri
            (fun r v ->
              if not (equivalent t.xlat v nt.Thread.regs.(r)) then
                fail
                  (Fmt.str "tid %d: r%d diverged: %d (old) vs %d (new)" tid r v
                     nt.Thread.regs.(r)))
            rt.Thread.regs;
          if rt.Thread.depth <> nt.Thread.depth then
            fail
              (Fmt.str "tid %d: stack depth diverged: %d (old) vs %d (new)" tid
                 rt.Thread.depth nt.Thread.depth)
          else
            for i = 0 to rt.Thread.depth - 1 do
              let fr = rt.Thread.frames.(i) and fn = nt.Thread.frames.(i) in
              if
                not
                  (equivalent t.xlat fr.Thread.ret_addr fn.Thread.ret_addr
                  && equivalent t.xlat fr.Thread.callee_entry fn.Thread.callee_entry)
              then fail (Fmt.str "tid %d: frame %d diverged" tid i)
            done
        end)
      t.ref_proc.Proc.threads;
    (* Data memory, over addresses present in both clones (the commit
       allocates fresh jump-table words and may reap inherited ones, so
       one-sided addresses are expected). *)
    Ocolos_util.Itbl.iter
      (fun addr v_ref ->
        if !divergence = None then
          match Ocolos_util.Itbl.find_opt t.new_proc.Proc.mem.Addr_space.data addr with
          | None -> ()
          | Some v_new ->
            if not (equivalent t.xlat v_ref v_new) then
              fail
                (Fmt.str "data[0x%x] diverged: %d (old) vs %d (new)" addr v_ref v_new))
      t.ref_proc.Proc.mem.Addr_space.data
  end;
  let verdict = match !divergence with None -> Match | Some r -> Divergence r in
  Metrics.count "ocolos_shadow_checks_total" 1;
  Trace.set_attr sp "ok" (Trace.B (verdict = Match));
  (match verdict with
  | Match ->
    Events.log "shadow.verdict"
      ~fields:[ ("ok", Trace.B true); ("window", Trace.I t.cfg.window) ]
  | Divergence reason ->
    Metrics.count "ocolos_shadow_divergences_total" 1;
    Trace.set_attr sp "reason" (Trace.S reason);
    Events.log "shadow.verdict"
      ~fields:
        [ ("ok", Trace.B false);
          ("window", Trace.I t.cfg.window);
          ("reason", Trace.S reason) ]);
  verdict

let pp_verdict fmt = function
  | Match -> Fmt.pf fmt "match"
  | Divergence reason -> Fmt.pf fmt "divergence: %s" reason
