(** Tier-2 miscompile containment: post-commit shadow execution.

    Tier-1 validation ({!Ocolos_bolt.Validate}) is structural and runs
    before commit; its one deliberate blind spot is jump-table
    {e correspondence} (a rotated table is still a table of valid block
    starts). The shadow checker closes that hole behaviourally: the target
    is cloned immediately before and immediately after a commit — the
    stop-the-world replacement brackets the two captures, so no workload
    instruction retires between them and the clones stand at the same
    architectural point — and both clones are replayed for a short window
    on the reference engine under identical scheduling.

    Compared observables are layout-invariant: per-thread call / return /
    indirect-jump event streams resolved to function ids (plus block ids
    for indirect-jump targets, via the round's frame maps), and — when
    both replays run to architectural completion — transaction counts,
    final registers, stacks and data memory modulo the round's old->new
    address translation. Conditional-branch and plain-jump events are
    excluded: emission negates branch polarity and elides fallthrough
    jumps, so their taken-event streams legitimately differ between
    equivalent layouts.

    Clones share no mutable state with the live process: arming and
    checking the shadow never perturbs the target's execution. *)

type config = {
  window : int;  (** instructions replayed per clone *)
  quantum : int;  (** scheduler quantum for the replays *)
}

(** [{ window = 4096; quantum = 64 }]. *)
val default_config : config

type verdict = Match | Divergence of string

(** Pre-commit capture: a clone of the target still on C_i. *)
type prepared

(** An armed shadow: both captures plus the round's translation tables. *)
type t

(** Clone the target {e before} [Txn.replace_code]. *)
val prepare : ?config:config -> Ocolos.t -> prepared

(** Clone the target {e immediately after} a committed replacement and
    index the round's translation (function entries, block starts, exact
    OSR points) from the BOLT result. *)
val arm : prepared -> Ocolos.t -> Ocolos_bolt.Bolt.result -> t

(** Replay both clones and compare. Logs a ["shadow.verdict"] event and
    bumps [ocolos_shadow_checks_total] / [ocolos_shadow_divergences_total].
    A replay fault on the new-version clone only (corrupted code running
    off the map) is itself a divergence. *)
val check : t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
