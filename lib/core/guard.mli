(** Supervision state for the OCOLOS daemon: per-function quarantine, a
    circuit breaker over optimization campaigns, watchdog deadlines on
    modeled phase durations, and deterministic seeded jitter for backoffs.

    A {e campaign} is one profile -> aggregate -> BOLT -> replace cycle.
    Consecutive campaigns ending without a committed replacement trip the
    breaker ([breaker_threshold]); an open breaker refuses campaigns until
    its simulated cooldown elapses, then admits one half-open probe whose
    outcome closes or re-opens it. Campaign failures also degrade the next
    campaign's BOLT {!Ocolos.tier}; a commit restores [`Full].

    Quarantine is per function and monotone: a function whose BOLT pass
    degraded it [quarantine_after] times (cumulative) is excluded from all
    future reordering in this run — fids are never un-quarantined.

    All state changes are exported through {!Ocolos_obs} metrics
    ([ocolos_guard_*]) and trace marks. *)

type breaker_state = Closed | Open of { until_s : float } | Half_open

type config = {
  quarantine_after : int;  (** per-function pass failures before exclusion *)
  breaker_threshold : int;  (** consecutive failed campaigns before opening *)
  breaker_cooldown_s : float;  (** Open duration before the half-open probe *)
  jitter : float;  (** backoff jitter fraction (0.25 = +/-25%) *)
  perf2bolt_deadline_s : float option;  (** watchdog on modeled perf2bolt time *)
  bolt_deadline_s : float option;  (** watchdog on modeled BOLT time *)
}

val default_config : config

type t

val create : ?config:config -> ?seed:int -> unit -> t

val breaker_state : t -> breaker_state
val breaker_state_to_string : breaker_state -> string

(** Consecutive campaigns without a commit, as currently counted. *)
val consecutive_failures : t -> int

val breaker_opens : t -> int
val watchdog_trips : t -> int

(** The BOLT tier the next campaign should run at. *)
val tier : t -> Ocolos.tier

(** Deterministic +/-[jitter] fraction around [delay], from the seeded
    stream. *)
val jittered : t -> float -> float

(** May a new campaign start at [now_s]? Transitions an expired Open
    breaker to Half_open (admitting this campaign as the probe). *)
val allow_campaign : t -> now_s:float -> bool

(** Record a campaign that ended without a commit: bumps the consecutive
    count, degrades the tier, and opens the breaker at the threshold or on
    a failed half-open probe (cooldown is jittered). *)
val campaign_failed : t -> now_s:float -> unit

(** Record a committed replacement: closes the breaker, zeroes the
    consecutive count, restores the [`Full] tier. *)
val campaign_succeeded : t -> unit

(** Fold one BOLT round's per-function failures ({!Ocolos_bolt.Bolt.result}
    [.failed]) into the cumulative counts, quarantining functions that
    reach [quarantine_after]. *)
val record_func_failures : t -> (int * string) list -> unit

(** Immediately and permanently quarantine one function — the Tier-1
    translation validator's path: a single rejection is proof of
    miscompilation, so the [quarantine_after] streak does not apply.
    [reason] is recorded in the [guard.quarantined] event's [point] field. *)
val quarantine_now : t -> int -> reason:string -> unit

(** Immediately open the breaker (and degrade the tier / bump the failure
    count) — the Tier-2 shadow checker's path after a post-commit
    divergence forced a revert. Idempotent while already open. *)
val trip_breaker : t -> now_s:float -> reason:string -> unit

(** Quarantined fids, sorted ascending. *)
val quarantined : t -> int list

val quarantined_count : t -> int
val is_quarantined : t -> int -> bool

(** Check one phase's modeled duration against its configured deadline;
    [true] means the watchdog tripped and the campaign must be abandoned. *)
val check_deadline : t -> phase:[ `Perf2bolt | `Bolt ] -> seconds:float -> bool

(** Push the current breaker/quarantine state to the ambient metrics
    registry (gauges [ocolos_guard_breaker_state], [ocolos_guard_quarantined],
    [ocolos_guard_consecutive_failures]). Called internally on every state
    change; exposed for end-of-run exports. *)
val export : t -> unit
