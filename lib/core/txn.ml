(* Transactional code replacement.

   OCOLOS's stop-the-world phase mutates the target's address space (code
   injection, v-table and call-site patches, GC unmapping), the thread
   stacks (return-address / PC redirection in continuous rounds) and the
   controller's own version state. The paper assumes the
   pause/inject/patch/resume sequence never fails; here every mutation is
   journaled so that a fault firing anywhere mid-replacement rolls the
   process back to a consistent C_i — the managed process resumes on the
   previous code version instead of crashing on a half-applied patch.

   Mechanics: the address space records an undo log (Addr_space journal),
   thread PCs and frames are snapshotted up front (replace_code never
   pushes or pops frames, only rewrites them in place), and the controller
   state is captured via Ocolos.snapshot. On any exception the three are
   restored in reverse dependency order and the process is resumed; an
   injected fault becomes a [Rolled_back] outcome, anything else is
   re-raised after the rollback. *)

open Ocolos_proc

type rollback = {
  rb_point : string; (* injection point that fired *)
  rb_hit : int; (* hit count at which it fired *)
  rb_undone : int; (* address-space mutations undone *)
}

type diverged = {
  dv_reason : string; (* the shadow checker's divergence description *)
  dv_undone : int; (* address-space mutations undone *)
}

type outcome =
  | Committed of Ocolos.replacement_stats
  | Rolled_back of rollback
  | Diverged of diverged

let injection_points = Ocolos.injection_points

(* Registers are captured too: OSR's register-migration pass rewrites
   scratch registers and stored function-pointer values in place, and a
   fault after it must put the original values back. *)
type thread_snap = { th_pc : int; th_regs : int array; th_frames : (int * int) array }

let snapshot_threads (proc : Proc.t) =
  Array.map
    (fun (th : Thread.t) ->
      { th_pc = th.Thread.pc;
        th_regs = Array.copy th.Thread.regs;
        th_frames =
          Array.init th.Thread.depth (fun i ->
              let f = th.Thread.frames.(i) in
              (f.Thread.ret_addr, f.Thread.callee_entry)) })
    proc.Proc.threads

let restore_threads (proc : Proc.t) snaps =
  Array.iteri
    (fun i snap ->
      let th = proc.Proc.threads.(i) in
      th.Thread.pc <- snap.th_pc;
      Array.blit snap.th_regs 0 th.Thread.regs 0 (Array.length snap.th_regs);
      Array.iteri
        (fun j (ra, ce) ->
          let f = th.Thread.frames.(j) in
          f.Thread.ret_addr <- ra;
          f.Thread.callee_entry <- ce)
        snap.th_frames)
    snaps

module Trace = Ocolos_obs.Trace
module Metrics = Ocolos_obs.Metrics
module Events = Ocolos_obs.Events

(* The decoded-block engine invalidates its cache through the address-space
   code watcher, which replace_code exercises on both the forward path and
   the journal replay of a rollback. An incoherent entry after either means
   the invalidation feed missed a write — fail loudly rather than let the
   process resume on stale decoded code. Deliberately not a metric or trace
   attribute: exports must stay byte-identical across engines. *)
let check_block_cache proc ~after =
  if not (Proc.validate_code_cache proc) then
    failwith ("Txn.replace_code: decoded-block cache incoherent after " ^ after)

(* [verify] is the Tier-2 pre-commit-point gate: it runs after every
   mutation of the replacement has been applied (threads migrated, code
   and data patched — the address space reads as C_{i+1}) but before the
   journal is discarded, so a [Error] verdict unwinds through the exact
   same journal replay a mid-transaction fault uses. That rollback is
   byte-exact — thread PCs, registers and frames restored from the
   up-front snapshot — which is what lets the chaos harness demand the
   surviving trace be byte-identical to a run that never attempted the
   replacement. *)
let replace_code ?verify (oc : Ocolos.t) (result : Ocolos_bolt.Bolt.result) =
  Trace.span "txn.replace" @@ fun txn_sp ->
  let proc = Ocolos.proc oc in
  let mem = proc.Proc.mem in
  let was_paused = proc.Proc.paused in
  let oc_snap = Ocolos.snapshot oc in
  let th_snap = snapshot_threads proc in
  Addr_space.begin_journal mem;
  Events.log "txn.begin" ~fields:[ ("incumbent", Trace.I (Ocolos.version oc)) ];
  let undo () =
    let undone = Addr_space.rollback_journal mem in
    restore_threads proc th_snap;
    (* Thread state moved twice (migrated forward, then restored): any
       engine memo keyed to where a thread stood is stale either way. *)
    Proc.notify_threads_migrated proc;
    Ocolos.restore oc oc_snap;
    if not was_paused then Proc.resume proc;
    check_block_cache proc ~after:"rollback";
    undone
  in
  match Ocolos.replace_code oc result with
  | stats -> (
    let verdict = match verify with None -> Ok () | Some f -> f () in
    match verdict with
    | Ok () ->
      let journaled = Addr_space.commit_journal mem in
      check_block_cache proc ~after:"commit";
      Trace.set_attr txn_sp "outcome" (Trace.S "committed");
      Trace.set_attr txn_sp "version" (Trace.I stats.Ocolos.version);
      Trace.set_attr txn_sp "journaled" (Trace.I journaled);
      Metrics.count "ocolos_txn_commits_total" 1;
      Events.log "txn.commit"
        ~fields:
          [ ("version", Trace.I stats.Ocolos.version); ("journaled", Trace.I journaled) ];
      Committed stats
    | Error reason ->
      let undone = undo () in
      Trace.set_attr txn_sp "outcome" (Trace.S "diverged");
      Trace.mark "txn.diverged"
        ~attrs:[ ("reason", Trace.S reason); ("undone", Trace.I undone) ];
      Metrics.count "ocolos_txn_divergence_rollbacks_total" 1;
      Metrics.count "ocolos_txn_mutations_undone_total" undone;
      Events.log "txn.diverged"
        ~fields:[ ("reason", Trace.S reason); ("undone", Trace.I undone) ];
      Diverged { dv_reason = reason; dv_undone = undone })
  | exception e ->
    let undone = undo () in
    (match e with
    | Ocolos_util.Fault.Injected (point, hit) ->
      Trace.set_attr txn_sp "outcome" (Trace.S "rolled_back");
      Trace.mark "txn.rollback"
        ~attrs:
          [ ("point", Trace.S point); ("hit", Trace.I hit); ("undone", Trace.I undone) ];
      Metrics.count "ocolos_txn_rollbacks_total" 1;
      Metrics.count "ocolos_txn_mutations_undone_total" undone;
      Events.log "txn.rollback"
        ~fields:
          [ ("point", Trace.S point); ("hit", Trace.I hit); ("undone", Trace.I undone) ];
      Rolled_back { rb_point = point; rb_hit = hit; rb_undone = undone }
    | e -> raise e)

let pp_outcome fmt = function
  | Committed stats -> Fmt.pf fmt "committed C%d" stats.Ocolos.version
  | Rolled_back rb ->
    Fmt.pf fmt "rolled back at %s (hit %d, %d mutations undone)" rb.rb_point rb.rb_hit
      rb.rb_undone
  | Diverged dv ->
    Fmt.pf fmt "diverged (%s, %d mutations undone)" dv.dv_reason dv.dv_undone
