(** Crash-recovery harness: simulated daemon death at an armed fault point,
    restart against the live process, and convergence checking.

    The safety contract (paper Section VII "can fail at any point"): a
    daemon death never corrupts the target. Perf kills detach the sampling
    hook before surfacing; perf2bolt/BOLT kills abort background work that
    never touched the target; kills inside the stop-the-world transaction
    are rolled back and the target resumed by {!Txn} before the exception
    escapes. At death the target runs exactly the last committed version —
    which is what the chaos property test asserts byte-for-byte. *)

type death = {
  d_point : string;  (** the lethally armed point that fired *)
  d_hit : int;  (** hit count at which it fired *)
  d_tick : int;  (** tick index during which the daemon died *)
}

type kill_outcome = Died of death | Survived  (** point never reached *)

(** [kill_at ~fault ~point daemon ~step ~max_ticks] arms [point] lethally
    ([schedule] defaults to [Nth 1]) and drives [daemon] — [step i]
    advances the target and returns the simulated time for tick [i] —
    until {!Ocolos_util.Fault.Killed} escapes a tick or the tick budget is
    spent. The point is disarmed on exit either way. *)
val kill_at :
  fault:Ocolos_util.Fault.t ->
  point:string ->
  ?schedule:Ocolos_util.Fault.schedule ->
  Daemon.t ->
  step:(int -> float) ->
  max_ticks:int ->
  kill_outcome

(** Stand up a replacement daemon against the live process:
    {!Ocolos.reattach} rebuilds the controller state from the target;
    [guard] optionally carries the dead daemon's quarantine/breaker memory
    across the restart (as an on-disk sidecar would). *)
val restart :
  ?config:Daemon.config ->
  ?ocolos_config:Ocolos.config ->
  ?guard:Guard.t ->
  Ocolos_proc.Proc.t ->
  Daemon.t

type convergence =
  | Converged_replaced of { version : int; ticks : int }
  | Converged_gave_up of { reason : string; ticks : int }
      (** terminal no-replacement outcome: retry budget exhausted, campaign
          aborted on a pipeline fault or watchdog, or breaker refusal *)
  | Diverged  (** neither outcome within the tick budget *)

val convergence_to_string : convergence -> string

(** Drive [daemon] until it commits a replacement or cleanly gives up. *)
val run_to_convergence :
  Daemon.t -> step:(int -> float) -> max_ticks:int -> convergence

(** {2 Fleet crash recovery}

    The same kill/restart/convergence contract over a {!Fleet} campaign.
    The interesting new failure mode: a lethal point firing between
    replicas of a staged rollout strands a {e mixed} fleet (some replicas
    on C_{i+1}, the rest on C_i); {!restart_fleet} must homogenize it. *)

(** Like {!kill_at}, driving {!Fleet.tick} instead of a daemon tick. *)
val kill_fleet_at :
  fault:Ocolos_util.Fault.t ->
  point:string ->
  ?schedule:Ocolos_util.Fault.schedule ->
  Fleet.t ->
  step:(int -> float) ->
  max_ticks:int ->
  kill_outcome

(** Stand up a replacement fleet controller over the live replicas
    ({!Fleet.reattach}: per-replica controller reconstruction, plus
    revert-to-C0 of every optimized replica when the fleet is
    layout-mixed). *)
val restart_fleet :
  ?config:Fleet.config ->
  ?ocolos_config:Ocolos.config ->
  ?guard:Guard.t ->
  Ocolos_proc.Proc.t array ->
  Fleet.t

(** Drive the fleet until a rollout completes ([Converged_replaced]) or the
    campaign terminally fails — staged rollback, abort, or breaker refusal
    ([Converged_gave_up]). Either way the fleet ends homogeneous. *)
val run_fleet_to_convergence :
  Fleet.t -> step:(int -> float) -> max_ticks:int -> convergence
