(* Continuous-optimization controller.

   Decides *when* to (re-)optimize a managed process, combining the paper's
   pieces: the DMon-style stage-1 TopDown gate (only front-end-bound
   processes are worth optimizing, Section V), the amortization rule (run
   at least long enough to win back what replacement cost, Section VI-C3),
   and drift detection for continuous mode (Section IV-C): when throughput
   degrades relative to the post-optimization steady state — e.g. the input
   mix shifted and the layout went stale — it re-profiles and replaces
   C_i with C_{i+1}.

   Replacement runs transactionally ({!Txn}): a fault firing mid-replacement
   rolls the process back to C_i, and the controller retries the same BOLT
   result after an exponential backoff (with seeded +/-25% jitter so
   campaigns never synchronize), up to [max_retries] extra attempts, before
   giving up and returning to monitoring.

   The controller is also a supervisor over the whole pipeline ({!Guard}):
   faults escaping perf2bolt or BOLT's function-reorder pass, and watchdog
   deadline trips on modeled phase durations, abort the campaign cleanly
   (the target keeps its current layout); per-function BOLT failures feed a
   quarantine that excludes repeat offenders from future reordering; and
   consecutive failed campaigns open a circuit breaker that refuses new
   campaigns until a cooldown, then probes half-open. A campaign after a
   failure runs at a degraded BOLT tier (function reorder only).

   [Fault.Killed] — the daemon dying — is deliberately NOT handled
   anywhere here: it must escape [tick] so the crash-recovery harness
   ({!Supervisor}) can observe the death and restart against the live
   process.

   The controller is driven by periodic ticks from whoever owns the
   process's execution loop; it keeps no thread of its own. *)

open Ocolos_proc
open Ocolos_uarch

type config = {
  frontend_threshold : float; (* stage-1 gate on TopDown front-end fraction *)
  regression_tolerance : float; (* re-optimize when tps < (1 - tol) * best *)
  min_interval_s : float; (* amortization guard between replacements *)
  profile_s : float; (* LBR profiling duration per optimization *)
  warmup_s : float; (* ignore ticks before this *)
  max_retries : int; (* extra replacement attempts after a rollback *)
  retry_backoff_s : float; (* backoff before the first retry; doubles per retry *)
  shadow_every : int; (* shadow-check every Nth commit (1 = all, 0 = never) *)
}

let default_config =
  { frontend_threshold = 0.15;
    regression_tolerance = 0.12;
    min_interval_s = 10.0;
    profile_s = 2.0;
    warmup_s = 1.0;
    max_retries = 3;
    retry_backoff_s = 1.0;
    shadow_every = 1 }

type phase =
  | Monitoring
  | Profiling of float (* profiling since *)
  | Backoff of { until_s : float; attempt : int } (* waiting to retry *)
  | Retry_pending of { attempt : int } (* retry announced; replace on next tick *)

type t = {
  oc : Ocolos.t;
  proc : Proc.t;
  config : config;
  guard : Guard.t;
  mutable phase : phase;
  mutable pending : Ocolos_bolt.Bolt.result option; (* BOLT result awaiting retry *)
  mutable last_counters : Counters.t;
  mutable last_tick_s : float;
  mutable best_tps : float; (* best throughput since the last replacement *)
  mutable last_replacement_s : float;
  mutable replacements : int;
  mutable attempts : int; (* every call into Txn.replace_code *)
  mutable rollbacks : int;
  mutable retries : int;
}

let create ?(config = default_config) ?guard (oc : Ocolos.t) (proc : Proc.t) =
  let guard = match guard with Some g -> g | None -> Guard.create () in
  { oc;
    proc;
    config;
    guard;
    phase = Monitoring;
    pending = None;
    last_counters = Proc.total_counters proc;
    last_tick_s = 0.0;
    best_tps = 0.0;
    last_replacement_s = neg_infinity;
    replacements = 0;
    attempts = 0;
    rollbacks = 0;
    retries = 0 }

type action =
  | Idle (* nothing to do *)
  | Started_profiling of string (* reason *)
  | Replaced of Ocolos.replacement_stats
  | Reverted of { reason : string } (* committed, then shadow divergence reverted it *)
  | Rolled_back of { point : string; attempt : int; giving_up : bool }
  | Retrying of { attempt : int }
  | Campaign_aborted of string (* pipeline fault / watchdog; layout kept *)
  | Breaker_open of { until_s : float } (* campaign wanted, breaker refused *)

let action_to_string = function
  | Idle -> "idle"
  | Started_profiling reason -> "profiling: " ^ reason
  | Replaced s -> Fmt.str "replaced (C%d)" s.Ocolos.version
  | Reverted { reason } -> Fmt.str "reverted after shadow divergence (%s)" reason
  | Rolled_back { point; attempt; giving_up } ->
    Fmt.str "rolled back at %s (attempt %d%s)" point attempt
      (if giving_up then ", giving up" else ", will retry")
  | Retrying { attempt } -> Fmt.str "retrying (attempt %d)" attempt
  | Campaign_aborted reason -> Fmt.str "campaign aborted (%s), layout kept" reason
  | Breaker_open { until_s } -> Fmt.str "breaker open until %.1fs" until_s

(* Pure monitoring decision: should a (re-)profile start now? Exposed so the
   boundary conditions — regression exactly at tolerance, the >= amortization
   gate, the >= front-end gate — are directly testable. *)
let decide config ~replacements ~version ~now_s ~last_replacement_s ~tps ~best_tps ~frontend =
  (* The amortization gate applies to every campaign, including the first:
     a given-up campaign re-arms [last_replacement_s], and without this
     gate the [replacements = 0] branch would re-enter profiling on the
     very next tick, looping profile/rollback/give-up back to back.
     Fresh daemons start with [last_replacement_s = neg_infinity], so the
     first-ever profile is never delayed. *)
  if now_s -. last_replacement_s < config.min_interval_s then None
  else if replacements = 0 then
    if frontend >= config.frontend_threshold then
      Some
        (Fmt.str "front-end bound (%.0f%% >= %.0f%%)" (100.0 *. frontend)
           (100.0 *. config.frontend_threshold))
    else None
  else if tps < (1.0 -. config.regression_tolerance) *. best_tps then
    Some
      (Fmt.str "throughput regressed to %.0f (best since C%d: %.0f) — stale layout" tps
         version best_tps)
  else None

(* One replacement attempt (attempt 1 = the original try). Commits advance
   the version; rollbacks schedule an exponential-backoff retry of the same
   BOLT result until [max_retries] extra attempts are spent.

   All attempt accounting lives here so each counter moves exactly once per
   attempt: [attempts] on every entry, [retries] only for attempts > 1 (the
   Backoff -> Retrying transition merely announces the retry; counting it
   there double-counted retries against attempts whenever a scheduled retry
   never reached [Txn.replace_code]), and [rollbacks] once per rolled-back
   attempt. *)
let attempt_replace t ~now_s ~attempt result =
  t.attempts <- t.attempts + 1;
  if attempt > 1 then t.retries <- t.retries + 1;
  Ocolos_obs.Metrics.count "ocolos_daemon_attempts_total" 1;
  if attempt > 1 then Ocolos_obs.Metrics.count "ocolos_daemon_retries_total" 1;
  (* Tier-2 sampling: every [shadow_every]-th commit is shadow-checked,
     counting from the first. The pre-commit capture must exist before
     [Txn.replace_code] mutates the target; the check itself runs as the
     transaction's [verify] gate, so a divergence unwinds through the
     byte-exact journal rollback rather than a forward revert. *)
  let shadowing =
    t.config.shadow_every > 0 && t.replacements mod t.config.shadow_every = 0
  in
  let verify =
    if not shadowing then None
    else
      let pre = Shadow.prepare t.oc in
      Some
        (fun () ->
          let shadow = Shadow.arm pre t.oc result in
          match Shadow.check shadow with
          | Shadow.Match -> Ok ()
          | Shadow.Divergence why -> Error why)
  in
  match Txn.replace_code ?verify t.oc result with
  | Txn.Committed stats ->
    t.pending <- None;
    t.phase <- Monitoring;
    t.best_tps <- 0.0;
    t.last_replacement_s <- now_s;
    t.replacements <- t.replacements + 1;
    Guard.campaign_succeeded t.guard;
    Ocolos_obs.Metrics.count "ocolos_daemon_replacements_total" 1;
    Replaced stats
  | Txn.Diverged { dv_reason = why; _ } ->
    (* Wrong code nearly shipped: this is the emergency brake, not the
       retry loop. The transaction already unwound itself; trip the
       breaker immediately and drop the BOLT result — replaying it would
       diverge identically. *)
    t.pending <- None;
    t.phase <- Monitoring;
    t.best_tps <- 0.0;
    t.last_replacement_s <- now_s;
    t.rollbacks <- t.rollbacks + 1;
    Guard.trip_breaker t.guard ~now_s ~reason:("shadow: " ^ why);
    Ocolos_obs.Metrics.count "ocolos_daemon_shadow_reverts_total" 1;
    Reverted { reason = why }
  | Txn.Rolled_back rb ->
    t.rollbacks <- t.rollbacks + 1;
    Ocolos_obs.Metrics.count "ocolos_daemon_rollbacks_total" 1;
    if attempt > t.config.max_retries then begin
      t.pending <- None;
      t.phase <- Monitoring;
      (* The failed campaign still spent a pause; re-arm the amortization
         guard so the next try is not immediate. *)
      t.best_tps <- 0.0;
      t.last_replacement_s <- now_s;
      Guard.campaign_failed t.guard ~now_s;
      Rolled_back { point = rb.Txn.rb_point; attempt; giving_up = true }
    end
    else begin
      t.pending <- Some result;
      let delay =
        Guard.jittered t.guard
          (t.config.retry_backoff_s *. (2.0 ** float_of_int (attempt - 1)))
      in
      t.phase <- Backoff { until_s = now_s +. delay; attempt = attempt + 1 };
      Rolled_back { point = rb.Txn.rb_point; attempt; giving_up = false }
    end

(* A campaign that died before reaching [Txn.replace_code] — a fault
   escaped perf2bolt or BOLT's function-reorder pass, or a watchdog
   deadline tripped. The target never paused, so there is nothing to roll
   back; the current layout stays, the amortization guard re-arms, and the
   breaker hears about the failure. *)
let campaign_aborted t ~now_s ~reason =
  t.pending <- None;
  t.phase <- Monitoring;
  t.best_tps <- 0.0;
  t.last_replacement_s <- now_s;
  Guard.campaign_failed t.guard ~now_s;
  Ocolos_obs.Metrics.count "ocolos_daemon_campaigns_aborted_total" 1;
  Ocolos_obs.Trace.mark "daemon.campaign_aborted"
    ~attrs:[ ("reason", Ocolos_obs.Trace.S reason) ];
  Campaign_aborted reason

(* One controller tick at simulated time [now_s]. The caller advances the
   process between ticks. *)
let tick t ~now_s =
  let counters = Proc.total_counters t.proc in
  let interval = Counters.diff counters t.last_counters in
  let dt = now_s -. t.last_tick_s in
  t.last_counters <- counters;
  t.last_tick_s <- now_s;
  if dt <= 0.0 || now_s < t.config.warmup_s then Idle
  else begin
    let tps = float_of_int interval.Counters.transactions /. dt in
    let td = Counters.topdown interval in
    match t.phase with
    | Profiling since ->
      if now_s -. since >= t.config.profile_s then begin
        (* The background pipeline. [Fault.Injected] escaping any stage is
           a survivable campaign failure; [Fault.Killed] is the daemon
           dying and must NOT be caught here. *)
        match
          let profile, perf2bolt_s = Ocolos.stop_profiling t.oc in
          if Guard.check_deadline t.guard ~phase:`Perf2bolt ~seconds:perf2bolt_s then
            `Watchdog "perf2bolt"
          else begin
            let result, bolt_s =
              Ocolos.run_bolt ~tier:(Guard.tier t.guard)
                ~exclude:(Guard.quarantined t.guard) t.oc profile
            in
            Guard.record_func_failures t.guard result.Ocolos_bolt.Bolt.failed;
            if Guard.check_deadline t.guard ~phase:`Bolt ~seconds:bolt_s then
              `Watchdog "bolt"
            else `Bolted result
          end
        with
        | `Bolted result ->
          (* Tier-1 gate: translation validation before the code ever
             reaches [Txn.replace_code]. A rejection quarantines every
             offending function and aborts the campaign — the next one
             runs without them, at the degraded tier. *)
          let report = Ocolos.validate_result t.oc result in
          if Ocolos_bolt.Validate.ok report then
            attempt_replace t ~now_s ~attempt:1 result
          else begin
            List.iter
              (fun fid -> Guard.quarantine_now t.guard fid ~reason:"validate")
              (Ocolos_bolt.Validate.rejected_fids report);
            campaign_aborted t ~now_s
              ~reason:
                (Fmt.str "validation rejected: %s"
                   (String.concat ","
                      (List.filter
                         (fun c -> Ocolos_bolt.Validate.check_rejections report c > 0)
                         Ocolos_bolt.Validate.checks)))
          end
        | `Watchdog phase ->
          campaign_aborted t ~now_s ~reason:(Fmt.str "watchdog: %s deadline" phase)
        | exception Ocolos_util.Fault.Injected (point, _) ->
          campaign_aborted t ~now_s ~reason:(Fmt.str "fault at %s" point)
      end
      else Idle
    | Backoff { until_s; attempt } ->
      if now_s >= until_s then begin
        (* The retry is only announced here; [attempt_replace] counts it
           when it actually runs. *)
        t.phase <- Retry_pending { attempt };
        Retrying { attempt }
      end
      else Idle
    | Retry_pending { attempt } -> (
      match t.pending with
      | Some result -> attempt_replace t ~now_s ~attempt result
      | None ->
        (* unreachable: pending is set whenever a retry is scheduled *)
        t.phase <- Monitoring;
        Idle)
    | Monitoring ->
      t.best_tps <- Float.max t.best_tps tps;
      let reason =
        decide t.config ~replacements:t.replacements ~version:(Ocolos.version t.oc) ~now_s
          ~last_replacement_s:t.last_replacement_s ~tps ~best_tps:t.best_tps
          ~frontend:td.Counters.frontend
      in
      (match reason with
      | Some why ->
        if Guard.allow_campaign t.guard ~now_s then begin
          Ocolos.start_profiling t.oc;
          t.phase <- Profiling now_s;
          Ocolos_obs.Trace.mark "daemon.profiling_started"
            ~attrs:[ ("reason", Ocolos_obs.Trace.S why) ];
          Started_profiling why
        end
        else begin
          match Guard.breaker_state t.guard with
          | Guard.Open { until_s } -> Breaker_open { until_s }
          | Guard.Closed | Guard.Half_open -> Idle (* unreachable *)
        end
      | None -> Idle)
  end

let replacements t = t.replacements
let attempts t = t.attempts
let rollbacks t = t.rollbacks
let retries t = t.retries
let phase t = t.phase
let guard t = t.guard
let breaker_state t = Guard.breaker_state t.guard
let quarantined t = Guard.quarantined t.guard
