(** OCOLOS: online code layout optimization of a running process (the
    paper's primary contribution).

    Pipeline (paper Fig. 4a): profile the target with LBR sampling, run BOLT
    in the background, then pause the target, inject the optimized code C1
    at fresh addresses, update v-table entries and direct calls inside
    stack-live functions so C1 runs in the common case, and resume — fixed
    costs only. Continuous mode (C_i -> C_{i+1}) performs {e true on-stack
    replacement}: BOLT emits a per-function frame map
    ({!Ocolos_bolt.Frame_map}) alongside each optimized function, and the
    stop-the-world phase rewrites every live frame's return address, saved
    callee entry and paused thread's PC directly into C_{i+1} through it —
    via a generated compensation stub when a PC lands mid-block, or a
    verbatim evacuation copy when no map covers the address — then unmaps
    the retired text immediately. Nothing is pinned: [bolt.org.text]
    retires as coverage grows (even for never-returning entry functions),
    and after convergence exactly one code version is resident; transient
    stub/copy residue and the jump-table words it still reads are reaped by
    a reachability-proven GC as frames drain. *)

type config = {
  bolt : Ocolos_bolt.Bolt.config;
  perf : Ocolos_profiler.Perf.config;
  cost : Cost.t;
  patch_all_direct_calls : bool;
      (** ablation: the paper found patching non-stack-live calls does not
          help and only slows replacement *)
  verify_gc : bool;  (** scan for dangling pointers after each GC *)
  fault : Ocolos_util.Fault.t option;
      (** fault-injection registry consulted at every {!fault_catalog} cut
          across the pipeline — profiling ([perf.*]), aggregation
          ([perf2bolt.*]), BOLT ([bolt.*]) and the stop-the-world points of
          {!injection_points}; [None] (the default) compiles the cuts down
          to counter-free no-ops *)
}

val default_config : config

type replacement_stats = {
  version : int;
  vtable_entries_patched : int;
  call_sites_patched : int;
  stack_live_funcs : int;
  frames_migrated : int;
      (** live frames / PCs rewritten into the new version (OSR) *)
  osr_stubs : int;  (** compensation stubs generated for mid-block PCs *)
  copied_funcs : int;
      (** copy-fallback evacuations — functions with no usable frame map *)
  funcs_optimized : int;
  code_bytes_injected : int;
  gc_bytes_freed : int;
  pause_seconds : float;  (** modeled stop-the-world duration *)
}

type t

(** Attach to a running process (the ptrace analog). Performs the offline
    call-site analysis and installs the function-pointer creation hook
    (pointers always denote the current version of their function). *)
val attach : ?config:config -> Ocolos_proc.Proc.t -> t

(** Crash recovery: attach to a process whose previous OCOLOS daemon died,
    reconstructing the controller state from the target as ground truth —
    injected code above the original image's end, live entries (lowest
    injected address per function), each function's resident ranges
    (injected plus surviving C0), and the function-pointer entry index.
    Stub/copy residue is conservatively treated as resident text; the next
    replacement round re-migrates it like any other old version. An aborted
    transaction left no trace, so reattaching after a mid-transaction kill
    is identical to a plain {!attach}. *)
val reattach : ?config:config -> Ocolos_proc.Proc.t -> t

val version : t -> int

(** The live binary view (the current code version plus residue): symbol
    resolution for profiling and the input to the next BOLT round. *)
val current_binary : t -> Ocolos_binary.Binary.t

(** Begin LBR sampling of the target. The caller keeps driving the process;
    sampling happens as it runs. *)
val start_profiling : t -> unit

(** Stop sampling; returns the aggregated profile and the modeled perf2bolt
    conversion time in seconds. *)
val stop_profiling : t -> Ocolos_profiler.Profile.t * float

(** Supervisor-driven degradation tier for a BOLT round: [`Full] is the
    configured pipeline; [`Func_reorder_only] disables block reordering,
    hot/cold splitting and peephole, keeping only the function order — the
    cheapest layout still worth committing, used after a full campaign has
    already failed. *)
type tier = [ `Full | `Func_reorder_only ]

(** Run BOLT on the current code version. Returns the result and the
    modeled optimization time in seconds. [exclude] adds quarantined fids
    to the config's exclusion list for this round. *)
val run_bolt :
  ?tier:tier -> ?exclude:int list -> t -> Ocolos_profiler.Profile.t ->
  Ocolos_bolt.Bolt.result * float

(** Tier-1 miscompile containment: run {!Ocolos_bolt.Validate} over a BOLT
    result against the current code version, under the same external-entry
    resolution {!run_bolt} used. Must be consulted before {!replace_code};
    logs a [validate.verdict] event (plus one [validate.reject] event per
    rejection) and [ocolos_validate_*] metrics. *)
val validate_result : t -> Ocolos_bolt.Bolt.result -> Ocolos_bolt.Validate.report

(** The stop-the-world phase: pause, inject C_{i+1}, patch pointers,
    migrate live frames into the new text (on-stack replacement) and unmap
    every retired range, resume. *)
val replace_code : t -> Ocolos_bolt.Bolt.result -> replacement_stats

(** Raised by the post-GC safety scan when a reachable code pointer
    references freed code. *)
exception Dangling_pointer of string

(** Post-GC reachability audit: v-table slots, thread PCs and frames,
    patched call sites, every code pointer the execution engines hold
    (cached blocks, chain links, inline caches, per-thread resume memos)
    and every static target in the surviving code map are checked against
    [freed]. With [freed = []] the scan runs in {e global} mode — every
    scanned pointer must be mapped — which is the CI smoke test's
    whole-process audit. *)
val verify_no_dangling : t -> freed:(int * int) list -> unit

(** Stack-live function set (by return addresses and PCs), as fids. *)
val stack_live_fids : t -> (int, unit) Hashtbl.t

val proc : t -> Ocolos_proc.Proc.t
val config : t -> config

(** The wrapFuncPtrCreation resolver frozen at call time: resolves entries
    against independent copies of the controller's entry tables, immune to
    later replacements or reverts. The shadow checker ({!Shadow}) installs
    this on its process clones. *)
val frozen_translate_fp : t -> int -> int

(** Bytes of stub/copy residue currently mapped. *)
val residue_bytes : t -> int

(** Transient footprint beyond the single resident code version: stub/copy
    residue plus inherited jump-table words (8 bytes each). Reaches 0 after
    convergence once every migrated frame has drained. *)
val resident_extra_bytes : t -> int

(** Bytes of the original [.text] (C0, aka [bolt.org.text]) still mapped.
    True OSR drives this to 0 once every function has been re-emitted. *)
val c0_text_resident_bytes : t -> int

(** On-demand GC of stub/copy residue between replacements (the daemon's
    idle tick): reaps residue no thread PC, frame or register can reach,
    and inherited jump-table words whose round has fully drained. Pauses
    the process around the reachability proof if needed. Returns bytes
    freed. *)
val gc_residue : t -> int

(** Every named fault-injection point inside [replace_code], in the order
    the stop-the-world phase reaches them. Points inside mutation loops are
    hit once per iteration, so an [Nth] schedule lands mid-mutation. The
    OSR points ([osr_frame] per paused thread, [osr_map] per doomed-pointer
    resolution — the map-lookup path, [osr_stub] per compensation-stub
    build) and the [gc_*]/[verify] points are reachable only in rounds that
    retire text. Includes [proc.pause_timeout] (a thread missing the
    safe-point deadline) and [mem.exhausted] (no address space for the
    incoming text). *)
val injection_points : string list

(** The pipeline-wide fault catalog, in pipeline order: [perf.*] sampling
    faults, [perf2bolt.*] aggregation faults, [bolt.*] per-pass faults,
    the [bolt.miscompile.*] silent-corruption points
    ({!Ocolos_bolt.Miscompile.points} — cut after every pass has finished,
    so only the validator / shadow checker stand between the corruption
    and the process), then {!injection_points}. The CLI validates
    [--fault] specs against this list and the chaos harness sweeps it. *)
val fault_catalog : string list

(** Controller-state snapshot: exactly the fields [replace_code] mutates,
    plus the values of every tracked data word (the forward data scan
    rewrites stored function pointers and jump-table words in place, and
    {!revert} must put them back). Used by {!Txn} to roll the controller
    back to C_i together with the address-space undo journal. One snapshot
    can back multiple restores. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** The version a snapshot was taken at. *)
val snapshot_version : snapshot -> int

(** A synthetic snapshot describing C0. C0's bytes live in the original
    binary image, so a controller with no in-memory history (e.g. freshly
    {!reattach}ed after a daemon death) can always {!revert} to it — even
    though its text may long since have been unmapped. *)
val c0_snapshot : t -> snapshot

type revert_stats = {
  rv_from_version : int;
  rv_to_version : int;
  rv_vtable_entries_patched : int;
  rv_call_sites_patched : int;
  rv_copied_funcs : int;
  rv_code_bytes_reinjected : int;  (** the restored version's text *)
  rv_gc_bytes_freed : int;  (** the reverted version's text *)
  rv_pause_seconds : float;
}

(** Un-commit: a reverse replacement taking the process from the live
    version back to the (strictly older) version [snapshot] describes —
    re-injects the snapshot's text (its forward GC removed it), patches
    v-tables and call sites back, migrates live frames out of the newer
    text (through the copy fallback: no frame map exists from a newer
    version back to an older one), restores patched data words, and unmaps
    the reverted text outright — no landing-pad trampolines are left
    behind; register migration makes them unnecessary, and the transient
    copies are reaped by the same reachability proof forward OSR uses. The
    staged-rollback path of a fleet canary that regressed; deliberately
    contains {e no} fault cuts — the emergency brake must not itself be
    able to fail. Raises [Invalid_argument] if the snapshot is not older
    than the live version. *)
val revert : t -> snapshot -> revert_stats
