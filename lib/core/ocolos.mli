(** OCOLOS: online code layout optimization of a running process (the
    paper's primary contribution).

    Pipeline (paper Fig. 4a): profile the target with LBR sampling, run BOLT
    in the background, then pause the target, inject the optimized code C1
    at fresh addresses while preserving C0 (design principle #1), update
    v-table entries and direct calls inside stack-live functions so C1 runs
    in the common case (principle #2), and resume — fixed costs only
    (principle #3). Function pointers are pinned to C0 by the
    wrapFuncPtrCreation hook, which also makes continuous optimization's
    garbage collection of old versions safe. Continuous mode (C_i ->
    C_{i+1}), which the paper could not evaluate due to an LLVM-BOLT
    limitation, is fully implemented here: stack-live C_i functions are
    copied verbatim with address rebasing, return addresses and PCs are
    redirected, and the unreachable C_i region is unmapped. *)

type config = {
  bolt : Ocolos_bolt.Bolt.config;
  perf : Ocolos_profiler.Perf.config;
  cost : Cost.t;
  patch_all_direct_calls : bool;
      (** ablation: the paper found patching non-stack-live calls does not
          help and only slows replacement *)
  verify_gc : bool;  (** scan for dangling pointers after each GC *)
  fault : Ocolos_util.Fault.t option;
      (** fault-injection registry consulted at every {!fault_catalog} cut
          across the pipeline — profiling ([perf.*]), aggregation
          ([perf2bolt.*]), BOLT ([bolt.*]) and the stop-the-world points of
          {!injection_points}; [None] (the default) compiles the cuts down
          to counter-free no-ops *)
}

val default_config : config

type replacement_stats = {
  version : int;
  vtable_entries_patched : int;
  call_sites_patched : int;
  stack_live_funcs : int;
  copied_funcs : int;
  funcs_optimized : int;
  code_bytes_injected : int;
  gc_bytes_freed : int;
  pause_seconds : float;  (** modeled stop-the-world duration *)
}

type t

(** Attach to a running process (the ptrace analog). Performs the offline
    call-site analysis and installs the function-pointer creation hook. *)
val attach : ?config:config -> Ocolos_proc.Proc.t -> t

(** Crash recovery: attach to a process whose previous OCOLOS daemon died,
    reconstructing the controller state from the target as ground truth —
    injected code above the original image's end, live entries (lowest
    injected address per function), the live-text span (exact for one
    committed version, a conservative hull once continuous rounds have left
    copies), and the C0 function-pointer pin table. An aborted transaction
    left no trace, so reattaching after a mid-transaction kill is identical
    to a plain {!attach}. *)
val reattach : ?config:config -> Ocolos_proc.Proc.t -> t

val version : t -> int

(** The live binary view (C0 plus the current optimized version): symbol
    resolution for profiling and the input to the next BOLT round. *)
val current_binary : t -> Ocolos_binary.Binary.t

(** Begin LBR sampling of the target. The caller keeps driving the process;
    sampling happens as it runs. *)
val start_profiling : t -> unit

(** Stop sampling; returns the aggregated profile and the modeled perf2bolt
    conversion time in seconds. *)
val stop_profiling : t -> Ocolos_profiler.Profile.t * float

(** Supervisor-driven degradation tier for a BOLT round: [`Full] is the
    configured pipeline; [`Func_reorder_only] disables block reordering,
    hot/cold splitting and peephole, keeping only the function order — the
    cheapest layout still worth committing, used after a full campaign has
    already failed. *)
type tier = [ `Full | `Func_reorder_only ]

(** Run BOLT on the current code version. Returns the result and the
    modeled optimization time in seconds. [exclude] adds quarantined fids
    to the config's exclusion list for this round. *)
val run_bolt :
  ?tier:tier -> ?exclude:int list -> t -> Ocolos_profiler.Profile.t ->
  Ocolos_bolt.Bolt.result * float

(** The stop-the-world phase: pause, inject, patch pointers, GC the
    previous version (continuous mode), resume. *)
val replace_code : t -> Ocolos_bolt.Bolt.result -> replacement_stats

(** Raised by the post-GC safety scan when a reachable code pointer
    references freed code. *)
exception Dangling_pointer of string

val verify_no_dangling : t -> freed:(int * int) -> unit

(** Stack-live function set (by return addresses and PCs), as fids. *)
val stack_live_fids : t -> (int, unit) Hashtbl.t

val proc : t -> Ocolos_proc.Proc.t
val config : t -> config

(** Every named fault-injection point inside [replace_code], in the order
    the stop-the-world phase reaches them. Points inside mutation loops are
    hit once per iteration, so an [Nth] schedule lands mid-mutation; the
    [gc_*] points, [thread_patch] and [verify] are reachable only in
    continuous (C_i -> C_{i+1}) rounds. Includes the [proc.pause_timeout]
    (a thread missing the safe-point deadline) and [mem.exhausted] (no
    address space for the incoming text) points. *)
val injection_points : string list

(** The pipeline-wide fault catalog, in pipeline order: [perf.*] sampling
    faults, [perf2bolt.*] aggregation faults, [bolt.*] per-pass faults,
    then {!injection_points}. The CLI validates [--fault] specs against
    this list and the chaos harness sweeps it. *)
val fault_catalog : string list

(** Controller-state snapshot: exactly the fields [replace_code] mutates.
    Used by {!Txn} to roll the controller back to C_i together with the
    address-space undo journal. One snapshot can back multiple restores. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** The version a snapshot was taken at. *)
val snapshot_version : snapshot -> int

(** A synthetic snapshot describing C0. C0 is pinned resident by design
    principle #1, so a controller with no in-memory history (e.g. freshly
    {!reattach}ed after a daemon death) can always {!revert} to it. *)
val c0_snapshot : t -> snapshot

type revert_stats = {
  rv_from_version : int;
  rv_to_version : int;
  rv_vtable_entries_patched : int;
  rv_call_sites_patched : int;
  rv_copied_funcs : int;
  rv_code_bytes_reinjected : int;  (** the restored version's text *)
  rv_gc_bytes_freed : int;  (** the reverted version's text *)
  rv_pause_seconds : float;
}

(** Un-commit: a reverse replacement taking the process from the live
    version back to the (strictly older) version [snapshot] describes —
    re-injects the snapshot's text (its forward GC removed it), patches
    v-tables and stack-live/doomed-target call sites back, evacuates
    stack-live current-version functions, unmaps the current text and
    verifies no dangling pointers remain. The staged-rollback path of a
    fleet canary that regressed; deliberately contains {e no} fault cuts —
    the emergency brake must not itself be able to fail. Raises
    [Invalid_argument] if the snapshot is not older than the live
    version. *)
val revert : t -> snapshot -> revert_stats
