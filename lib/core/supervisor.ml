(* Crash-recovery harness: simulated daemon death and restart.

   [kill_at] arms a fault point *lethally* ([Fault.kill]) and drives the
   daemon's tick loop until [Fault.Killed] escapes — the moment the OCOLOS
   daemon process dies. By construction the target is never corrupted by a
   death: perf kills detach the sampling hook before the exception
   surfaces, perf2bolt/BOLT kills happen in background work that never
   touched the target, and kills inside the stop-the-world transaction are
   rolled back (and the target resumed) by {!Txn} before the exception
   re-raises. So at death the target runs exactly the code version that
   last committed.

   [restart] then stands up a fresh daemon against the live process via
   {!Ocolos.reattach}, optionally inheriting the dead daemon's {!Guard}
   (quarantine and breaker memory survive the way an on-disk sidecar
   would). [run_to_convergence] drives the new daemon until it commits a
   replacement or cleanly gives up — the restart contract the chaos
   property test asserts for every fault point. *)

type death = {
  d_point : string; (* the lethally armed point that fired *)
  d_hit : int; (* hit count at which it fired *)
  d_tick : int; (* tick index during which the daemon died *)
}

type kill_outcome = Died of death | Survived (* point never reached *)

let kill_at ~(fault : Ocolos_util.Fault.t) ~point ?(schedule = Ocolos_util.Fault.Nth 1)
    (daemon : Daemon.t) ~step ~max_ticks =
  Ocolos_util.Fault.kill fault point schedule;
  let rec loop i =
    if i >= max_ticks then begin
      Ocolos_util.Fault.disarm fault point;
      Survived
    end
    else
      let now_s = step i in
      match Daemon.tick daemon ~now_s with
      | _ -> loop (i + 1)
      | exception Ocolos_util.Fault.Killed (p, hit) ->
        Ocolos_util.Fault.disarm fault point;
        Ocolos_obs.Trace.mark "supervisor.daemon_died"
          ~attrs:
            [ ("point", Ocolos_obs.Trace.S p);
              ("hit", Ocolos_obs.Trace.I hit);
              ("tick", Ocolos_obs.Trace.I i) ];
        Ocolos_obs.Metrics.count "ocolos_supervisor_deaths_total" 1;
        Died { d_point = p; d_hit = hit; d_tick = i }
  in
  loop 0

(* Stand up a replacement daemon against the live process. The dead
   daemon's in-memory state is gone; {!Ocolos.reattach} rebuilds the
   controller view from the target, and [guard] optionally carries the old
   supervision memory across the restart. *)
let restart ?config ?ocolos_config ?guard (proc : Ocolos_proc.Proc.t) =
  let oc = Ocolos.reattach ?config:ocolos_config proc in
  Ocolos_obs.Metrics.count "ocolos_supervisor_restarts_total" 1;
  Daemon.create ?config ?guard oc proc

type convergence =
  | Converged_replaced of { version : int; ticks : int }
  | Converged_gave_up of { reason : string; ticks : int }
  | Diverged (* neither outcome within the tick budget *)

let convergence_to_string = function
  | Converged_replaced { version; ticks } ->
    Fmt.str "replaced (C%d after %d ticks)" version ticks
  | Converged_gave_up { reason; ticks } ->
    Fmt.str "gave up (%s after %d ticks)" reason ticks
  | Diverged -> "diverged"

(* Drive [daemon] until it commits a replacement or cleanly gives up.
   "Cleanly gives up" is any terminal no-replacement outcome: exhausting
   the transaction retry budget, aborting the campaign on a pipeline fault
   or watchdog, or the breaker refusing further campaigns. *)
let run_to_convergence (daemon : Daemon.t) ~step ~max_ticks =
  let rec loop i =
    if i >= max_ticks then Diverged
    else
      let now_s = step i in
      match Daemon.tick daemon ~now_s with
      | Daemon.Replaced stats ->
        Converged_replaced { version = stats.Ocolos.version; ticks = i + 1 }
      | Daemon.Rolled_back { point; attempt; giving_up = true } ->
        Converged_gave_up
          { reason = Fmt.str "rolled back at %s, attempt %d" point attempt; ticks = i + 1 }
      | Daemon.Campaign_aborted reason -> Converged_gave_up { reason; ticks = i + 1 }
      | Daemon.Reverted { reason } ->
        Converged_gave_up
          { reason = Fmt.str "shadow divergence: %s" reason; ticks = i + 1 }
      | Daemon.Breaker_open { until_s } ->
        Converged_gave_up { reason = Fmt.str "breaker open until %.1fs" until_s; ticks = i + 1 }
      | Daemon.Idle | Daemon.Started_profiling _ | Daemon.Retrying _
      | Daemon.Rolled_back { giving_up = false; _ } ->
        loop (i + 1)
  in
  loop 0

(* ---- fleet crash recovery ---- *)

(* Same loop as [kill_at], over the fleet controller. A death between
   replicas of a staged rollout leaves the fleet mixed — exactly the state
   [restart_fleet] exists to recover. *)
let kill_fleet_at ~(fault : Ocolos_util.Fault.t) ~point
    ?(schedule = Ocolos_util.Fault.Nth 1) (fleet : Fleet.t) ~step ~max_ticks =
  Ocolos_util.Fault.kill fault point schedule;
  let rec loop i =
    if i >= max_ticks then begin
      Ocolos_util.Fault.disarm fault point;
      Survived
    end
    else
      let now_s = step i in
      match Fleet.tick fleet ~now_s with
      | _ -> loop (i + 1)
      | exception Ocolos_util.Fault.Killed (p, hit) ->
        Ocolos_util.Fault.disarm fault point;
        Ocolos_obs.Trace.mark "supervisor.fleet_daemon_died"
          ~attrs:
            [ ("point", Ocolos_obs.Trace.S p);
              ("hit", Ocolos_obs.Trace.I hit);
              ("tick", Ocolos_obs.Trace.I i);
              ("mixed", Ocolos_obs.Trace.B (Fleet.mixed fleet)) ];
        Ocolos_obs.Metrics.count "ocolos_supervisor_deaths_total" 1;
        Died { d_point = p; d_hit = hit; d_tick = i }
  in
  loop 0

let restart_fleet ?config ?ocolos_config ?guard procs =
  Ocolos_obs.Metrics.count "ocolos_supervisor_restarts_total" 1;
  Fleet.reattach ?config ?ocolos_config ?guard procs

(* Terminal fleet outcomes: a completed rollout converges; a staged
   rollback, a campaign abort or a breaker refusal is a clean give-up (the
   fleet is homogeneous on the old version in all three). *)
let run_fleet_to_convergence (fleet : Fleet.t) ~step ~max_ticks =
  let rec loop i =
    if i >= max_ticks then Diverged
    else
      let now_s = step i in
      match Fleet.tick fleet ~now_s with
      | Fleet.Promoted { version; _ } -> Converged_replaced { version; ticks = i + 1 }
      | Fleet.Rolled_back { reason; _ } -> Converged_gave_up { reason; ticks = i + 1 }
      | Fleet.Campaign_aborted reason -> Converged_gave_up { reason; ticks = i + 1 }
      | Fleet.Breaker_open { until_s } ->
        Converged_gave_up { reason = Fmt.str "breaker open until %.1fs" until_s; ticks = i + 1 }
      | Fleet.Idle | Fleet.Started_profiling _ | Fleet.Canary_started _ -> loop (i + 1)
  in
  loop 0
