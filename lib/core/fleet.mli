(** Fleet-scale orchestration: one campaign, many replicas, staged rollout.

    The paper's deployments run thousands of identical replicas behind a
    load balancer, not one process. A fleet campaign manages N replicas of
    the same binary through a single optimization cycle:

    + {b profile} every replica, decimating each stream to a configurable
      per-replica fraction (default 1/N) and aggregating the union through
      one {!Ocolos_profiler.Perf2bolt.convert_sources} call — fleet-wide
      coverage at a fraction of the per-replica sampling cost (the Fig. 6
      knee, spread across the fleet);
    + {b BOLT once} on the shared layout (all replicas committed identical
      histories, so their live binaries are identical);
    + {b roll out in stages}: replace on a canary subset (first
      [ceil (canary_fraction * N)] replicas), soak for [verify_s], then
      take a cohort-level A/B verdict ({!judge} over a {!readout}): the
      canary cohort's verify-window aggregates (IPC normalized against its
      own profiling baseline, p99 via the latency probe, and the MPKI set)
      are compared against the rest-of-fleet cohort measured over the same
      soak, and only a clean readout widens the rollout to the rest.

    A canary regression — or any replica's transactional replacement
    rolling back — triggers a staged rollback: every replica already on
    C_{i+1} is {!Ocolos.revert}ed to C_i (the revert path has no fault
    cuts, so a partial rollout always unwinds completely), and the shared
    {!Guard} hears a failed campaign, feeding its circuit breaker. The
    invariant the property suite locks in: a rollout terminates with every
    replica on C_{i+1} or every replica on C_i — never permanently mixed.

    A daemon death mid-rollout ({!Ocolos_util.Fault.Killed} escaping
    {!tick}) can strand a mixed fleet; {!reattach} recovers it by
    reconstructing each replica's controller from the target and, when the
    fleet disagrees on its layout, reverting every optimized replica to C0
    (always possible — design principle #1 keeps C0 resident) so a fresh
    homogeneous campaign can run.

    Observability: fleet-level events are [fleet.*] trace marks and
    [ocolos_fleet_*] metrics (gauges labelled [replica="i"]), strictly
    additive over what the per-replica pipeline already emits — a
    one-replica fleet is byte-identical to the single-process
    {!Ocolos.attach} path apart from those families. *)

type config = {
  canary_fraction : float;  (** fraction of replicas in the canary stage *)
  verify_s : float;  (** canary soak time before the verdict *)
  max_ipc_drop : float;
      (** guard threshold: breach when the canary cohort's IPC ratio
          (verify / baseline) falls below [(1 - max_ipc_drop)] times the
          rest cohort's ratio (or, with no rest cohort, when its verify IPC
          falls that far below its own baseline) *)
  max_p99_rise : float;
      (** guard threshold on the latency probe, symmetric with
          [max_ipc_drop] on the rising side *)
  canary_ipc_scale : float;
      (** scale applied to measured canary IPC at the verdict; [< 1.0]
          injects a synthetic regression (CLI [--inject-regression] and the
          rollback tests) *)
  sample_keep_every : int option;
      (** per-replica profile decimation: keep every k-th sample batch;
          [None] means k = number of replicas (fraction 1/N) *)
  latency_probe : (int -> float) option;
      (** current p99 (simulated seconds) per replica id, wired by the
          driver that owns the traffic model *)
  daemon : Daemon.config;
      (** monitoring gate ({!Daemon.decide}), profile window and warmup *)
}

val default_config : config

(** One rollout cohort's verify-window aggregate: counters summed across
    the cohort's replicas before rates are derived. *)
type cohort = {
  co_ids : int list;
  co_ipc : float;  (** aggregate verify-window IPC (canary: scale applied) *)
  co_base_ipc : float;  (** aggregate profiling-window IPC *)
  co_ipc_ratio : float;  (** [co_ipc / co_base_ipc]; 0 without a baseline *)
  co_p99 : float;  (** mean latency-probe reading; 0 without a probe *)
  co_base_p99 : float;  (** mean probe reading at canary start *)
  co_l1i_mpki : float;
  co_itlb_mpki : float;
  co_btb_mpki : float;
  co_taken_pki : float;
}

(** The A/B readout a canary verdict is taken from, exported as
    [ocolos_fleet_cohort_*{cohort="canary"|"rest"}] gauges and a
    [fleet.verify_readout] structured event. *)
type readout = {
  ro_version : int;  (** candidate version under verification *)
  ro_canary : cohort;
  ro_rest : cohort option;  (** [None] when every replica is a canary *)
  ro_breach : (string * string) option;  (** breached signal name, detail *)
}

(** Build a cohort from pre-summed counter aggregates ([baseline] the
    summed profiling-window intervals, [verify] the summed verify-window
    intervals). Pure; exposed so tests can hand-compute expected
    readouts. *)
val cohort_of :
  ids:int list -> baseline:Ocolos_uarch.Counters.t -> verify:Ocolos_uarch.Counters.t ->
  ?ipc_scale:float -> p99:float -> base_p99:float -> unit -> cohort

(** The promotion verdict: [None] promotes, [Some (signal, detail)] rolls
    back. Each cohort is normalized against its own profiling baseline
    (difference-in-differences), so heterogeneous per-replica inputs don't
    skew the comparison; with no rest cohort the canary is judged against
    its own baseline alone. Pure. *)
val judge : config -> canary:cohort -> rest:cohort option -> (string * string) option

type t

(** Attach a fleet controller to [replicas] (one {!Ocolos.attach} each).
    All replicas must run the same binary. The [guard] is shared across the
    fleet: one breaker, one quarantine. Raises [Invalid_argument] on an
    empty fleet. *)
val create :
  ?config:config -> ?ocolos_config:Ocolos.config -> ?guard:Guard.t ->
  Ocolos_proc.Proc.t array -> t

(** Stand the fleet controller back up over live replicas after a daemon
    death ({!Ocolos.reattach} each). If the fleet is layout-mixed — a
    rollout died between replicas — every optimized replica is reverted to
    C0 so the fleet restarts homogeneous; {!reverted_on_reattach} reports
    which. *)
val reattach :
  ?config:config -> ?ocolos_config:Ocolos.config -> ?guard:Guard.t ->
  Ocolos_proc.Proc.t array -> t

type action =
  | Idle
  | Started_profiling of string  (** gate reason *)
  | Canary_started of { version : int; canaries : int list }
  | Promoted of { version : int; replicas : int }
      (** rollout complete: every replica on the new version *)
  | Rolled_back of { reason : string; reverted : int list }
      (** staged rollback: every listed replica reverted to C_i *)
  | Campaign_aborted of string
      (** pipeline fault or watchdog before any replica was touched *)
  | Breaker_open of { until_s : float }

val action_to_string : action -> string

(** One controller tick at simulated time [now_s]; the caller advances the
    replicas between ticks. {!Ocolos_util.Fault.Killed} escapes (the
    daemon dying), possibly leaving a mixed fleet for {!reattach}. *)
val tick : t -> now_s:float -> action

val replicas : t -> int
val ocolos : t -> int -> Ocolos.t
val procs : t -> Ocolos_proc.Proc.t array
val guard : t -> Guard.t

(** Per-replica code versions, in replica order. *)
val versions : t -> int list

(** All replicas on the same version? *)
val converged : t -> bool

val mixed : t -> bool

(** Completed fleet-wide rollouts / staged rollbacks. *)
val rollouts : t -> int

val rollbacks : t -> int

(** Replicas reverted to C0 by {!reattach}'s mixed-fleet recovery. *)
val reverted_on_reattach : t -> int list

(** The most recent canary verdict's A/B readout (promoted or rolled
    back), for post-mortems — the CLI [explain] subcommand reads it. *)
val last_readout : t -> readout option

(** Modeled stop-the-world seconds accrued by replica [i]'s replacements
    and reverts since the last call, then cleared — the driver that owns
    the clock charges them as {!Ocolos_proc.Proc.stall_all} stalls so
    pauses surface in open-loop latency. *)
val take_pause_debt : t -> int -> float
