(** Fleet-scale orchestration: one campaign, many replicas, staged rollout.

    The paper's deployments run thousands of identical replicas behind a
    load balancer, not one process. A fleet campaign manages N replicas of
    the same binary through a single optimization cycle:

    + {b profile} every replica, decimating each stream to a configurable
      per-replica fraction (default 1/N) and aggregating the union through
      one {!Ocolos_profiler.Perf2bolt.convert_sources} call — fleet-wide
      coverage at a fraction of the per-replica sampling cost (the Fig. 6
      knee, spread across the fleet);
    + {b BOLT once} on the shared layout (all replicas committed identical
      histories, so their live binaries are identical);
    + {b roll out in stages}: replace on a canary subset (first
      [ceil (canary_fraction * N)] replicas), soak for [verify_s], check
      each canary's IPC delta (and p99 delta when a latency probe is wired)
      against guard thresholds, then widen to the rest of the fleet.

    A canary regression — or any replica's transactional replacement
    rolling back — triggers a staged rollback: every replica already on
    C_{i+1} is {!Ocolos.revert}ed to C_i (the revert path has no fault
    cuts, so a partial rollout always unwinds completely), and the shared
    {!Guard} hears a failed campaign, feeding its circuit breaker. The
    invariant the property suite locks in: a rollout terminates with every
    replica on C_{i+1} or every replica on C_i — never permanently mixed.

    A daemon death mid-rollout ({!Ocolos_util.Fault.Killed} escaping
    {!tick}) can strand a mixed fleet; {!reattach} recovers it by
    reconstructing each replica's controller from the target and, when the
    fleet disagrees on its layout, reverting every optimized replica to C0
    (always possible — design principle #1 keeps C0 resident) so a fresh
    homogeneous campaign can run.

    Observability: fleet-level events are [fleet.*] trace marks and
    [ocolos_fleet_*] metrics (gauges labelled [replica="i"]), strictly
    additive over what the per-replica pipeline already emits — a
    one-replica fleet is byte-identical to the single-process
    {!Ocolos.attach} path apart from those families. *)

type config = {
  canary_fraction : float;  (** fraction of replicas in the canary stage *)
  verify_s : float;  (** canary soak time before the verdict *)
  max_ipc_drop : float;
      (** guard threshold: fail the canary when its verify-window IPC falls
          below [(1 - max_ipc_drop) * baseline] *)
  max_p99_rise : float;
      (** guard threshold on the latency probe: fail the canary when p99
          exceeds [(1 + max_p99_rise) * baseline] *)
  canary_ipc_scale : float;
      (** scale applied to measured canary IPC at the verdict; [< 1.0]
          injects a synthetic regression (CLI [--inject-regression] and the
          rollback tests) *)
  sample_keep_every : int option;
      (** per-replica profile decimation: keep every k-th sample batch;
          [None] means k = number of replicas (fraction 1/N) *)
  latency_probe : (int -> float) option;
      (** current p99 (simulated seconds) per replica id, wired by the
          driver that owns the traffic model *)
  daemon : Daemon.config;
      (** monitoring gate ({!Daemon.decide}), profile window and warmup *)
}

val default_config : config

type t

(** Attach a fleet controller to [replicas] (one {!Ocolos.attach} each).
    All replicas must run the same binary. The [guard] is shared across the
    fleet: one breaker, one quarantine. Raises [Invalid_argument] on an
    empty fleet. *)
val create :
  ?config:config -> ?ocolos_config:Ocolos.config -> ?guard:Guard.t ->
  Ocolos_proc.Proc.t array -> t

(** Stand the fleet controller back up over live replicas after a daemon
    death ({!Ocolos.reattach} each). If the fleet is layout-mixed — a
    rollout died between replicas — every optimized replica is reverted to
    C0 so the fleet restarts homogeneous; {!reverted_on_reattach} reports
    which. *)
val reattach :
  ?config:config -> ?ocolos_config:Ocolos.config -> ?guard:Guard.t ->
  Ocolos_proc.Proc.t array -> t

type action =
  | Idle
  | Started_profiling of string  (** gate reason *)
  | Canary_started of { version : int; canaries : int list }
  | Promoted of { version : int; replicas : int }
      (** rollout complete: every replica on the new version *)
  | Rolled_back of { reason : string; reverted : int list }
      (** staged rollback: every listed replica reverted to C_i *)
  | Campaign_aborted of string
      (** pipeline fault or watchdog before any replica was touched *)
  | Breaker_open of { until_s : float }

val action_to_string : action -> string

(** One controller tick at simulated time [now_s]; the caller advances the
    replicas between ticks. {!Ocolos_util.Fault.Killed} escapes (the
    daemon dying), possibly leaving a mixed fleet for {!reattach}. *)
val tick : t -> now_s:float -> action

val replicas : t -> int
val ocolos : t -> int -> Ocolos.t
val procs : t -> Ocolos_proc.Proc.t array
val guard : t -> Guard.t

(** Per-replica code versions, in replica order. *)
val versions : t -> int list

(** All replicas on the same version? *)
val converged : t -> bool

val mixed : t -> bool

(** Completed fleet-wide rollouts / staged rollbacks. *)
val rollouts : t -> int

val rollbacks : t -> int

(** Replicas reverted to C0 by {!reattach}'s mixed-fleet recovery. *)
val reverted_on_reattach : t -> int list

(** Modeled stop-the-world seconds accrued by replica [i]'s replacements
    and reverts since the last call, then cleared — the driver that owns
    the clock charges them as {!Ocolos_proc.Proc.stall_all} stalls so
    pauses surface in open-loop latency. *)
val take_pause_debt : t -> int -> float
