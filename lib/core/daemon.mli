(** Continuous-optimization controller: decides {e when} to (re-)optimize a
    managed process. Combines the DMon-style stage-1 TopDown gate (paper
    Section V), the amortization rule of Section VI-C3, and drift detection
    for continuous mode (Section IV-C): a throughput regression relative to
    the post-optimization steady state — a stale layout after an input
    shift — triggers re-profiling and replacement of C_i by C_{i+1}.

    Replacements run transactionally ({!Txn}): a fault mid-replacement
    rolls the process back to C_i and the controller retries the same BOLT
    result after exponential backoff (with seeded +/-25% jitter), up to
    [max_retries] extra attempts.

    The controller also supervises the whole pipeline through a {!Guard}:
    faults escaping perf2bolt or BOLT's function-reorder pass and watchdog
    deadline trips abort the campaign cleanly (current layout kept);
    per-function BOLT failures feed a quarantine excluding repeat offenders
    from reordering; consecutive failed campaigns open a circuit breaker.
    Post-failure campaigns run at a degraded BOLT tier.
    {!Ocolos_util.Fault.Killed} is never caught: it escapes {!tick} so the
    {!Supervisor} crash harness can observe the daemon's death.

    Miscompile containment runs in two tiers around every replacement:
    Tier-1 translation validation ({!Ocolos_bolt.Validate}) gates each
    BOLT result before {!Txn.replace_code} — a rejection quarantines the
    offending functions and aborts the campaign — and the Tier-2 shadow
    checker ({!Shadow}) replays a sampled window after each commit,
    reverting to the pre-commit snapshot and tripping the breaker on
    divergence.

    Driven by periodic {!tick}s from whoever owns the process's execution
    loop; the controller keeps no thread of its own. *)

type config = {
  frontend_threshold : float;
  regression_tolerance : float;
  min_interval_s : float;
  profile_s : float;
  warmup_s : float;
  max_retries : int;  (** extra replacement attempts after a rollback *)
  retry_backoff_s : float;
      (** backoff before the first retry; doubles on each further retry *)
  shadow_every : int;
      (** Tier-2 sampling: shadow-check every Nth commit, counting from the
          first ([1] checks all, the default; [0] disables the shadow) *)
}

val default_config : config

type phase =
  | Monitoring
  | Profiling of float
  | Backoff of { until_s : float; attempt : int }
  | Retry_pending of { attempt : int }

type t

(** [create oc proc] builds a controller; [guard] (default: a fresh
    {!Guard.create}) carries the supervision state, and may be shared with
    a restarted daemon to keep quarantine/breaker memory across a crash. *)
val create : ?config:config -> ?guard:Guard.t -> Ocolos.t -> Ocolos_proc.Proc.t -> t

type action =
  | Idle
  | Started_profiling of string
  | Replaced of Ocolos.replacement_stats
  | Reverted of { reason : string }
      (** a commit passed {!Txn} but the {!Shadow} replay diverged: the
          process was reverted to the pre-commit snapshot and the breaker
          tripped *)
  | Rolled_back of { point : string; attempt : int; giving_up : bool }
  | Retrying of { attempt : int }
  | Campaign_aborted of string
      (** a fault escaped the background pipeline or a watchdog tripped;
          the target kept its current layout, nothing was rolled back *)
  | Breaker_open of { until_s : float }
      (** a campaign was warranted but the circuit breaker refused it *)

val action_to_string : action -> string

(** Pure monitoring decision: the reason to start (re-)profiling now, if
    any. Exposed so the gate boundaries — a regression exactly at
    [regression_tolerance], the [>=] amortization gate at exactly
    [min_interval_s], the [>=] front-end gate — are directly testable. *)
val decide :
  config ->
  replacements:int ->
  version:int ->
  now_s:float ->
  last_replacement_s:float ->
  tps:float ->
  best_tps:float ->
  frontend:float ->
  string option

(** One controller tick at simulated time [now_s]; the caller advances the
    process between ticks. *)
val tick : t -> now_s:float -> action

val replacements : t -> int

(** Replacement attempts since creation: every entry into
    [Txn.replace_code], i.e. [replacements + rollbacks] at quiescence.
    Also exported as the [ocolos_daemon_attempts_total] counter through the
    ambient metrics registry ({!Ocolos_obs.Metrics}). *)
val attempts : t -> int

(** Rolled-back replacement attempts since creation; incremented exactly
    once per rolled-back attempt. *)
val rollbacks : t -> int

(** Retry attempts actually executed (attempts beyond the first of a
    campaign); incremented exactly once per retry, when the retry runs —
    not when it is announced by the backoff timer. *)
val retries : t -> int

val phase : t -> phase

(** The supervision state (breaker, quarantine, watchdog, jitter stream). *)
val guard : t -> Guard.t

val breaker_state : t -> Guard.breaker_state

(** Quarantined fids, sorted ascending. *)
val quarantined : t -> int list
