(** Transactional code replacement: {!Ocolos.replace_code} wrapped in an
    undo journal so that a fault firing anywhere mid-replacement rolls the
    address space, thread stacks and controller state back to the previous
    code version C_i — the managed process degrades to running unoptimized
    code instead of crashing on a half-applied patch.

    The rollback invariant (checked by the property suite): after any
    single injected fault, the process resumes on a consistent code version
    with zero dangling pointers and an execution trace identical to a run
    that never attempted the replacement. *)

type rollback = {
  rb_point : string;  (** injection point that fired *)
  rb_hit : int;  (** hit count at which it fired *)
  rb_undone : int;  (** address-space mutations undone *)
}

type diverged = {
  dv_reason : string;  (** the shadow checker's divergence description *)
  dv_undone : int;  (** address-space mutations undone *)
}

type outcome =
  | Committed of Ocolos.replacement_stats
  | Rolled_back of rollback
  | Diverged of diverged
      (** the [verify] gate rejected the fully-applied replacement; the
          transaction was unwound through the same journal replay a
          mid-transaction fault uses, so the rollback is byte-exact *)

(** = {!Ocolos.injection_points}. *)
val injection_points : string list

(** Run the stop-the-world phase transactionally. Commits iff the
    underlying [replace_code] returns {e and} [verify] (if given) returns
    [Ok]; [verify] runs after every mutation has been applied — the
    address space and threads read as C_{i+1} — but before the journal is
    discarded, which is where the Tier-2 {!Shadow} checker hooks in. An
    [Error] verdict unwinds byte-exactly and reports {!Diverged}. On
    {!Ocolos_util.Fault.Injected} the transaction rolls back and reports
    the firing point. Any other exception (e.g. {!Ocolos.Dangling_pointer}
    from the GC verifier) also triggers a full rollback and is then
    re-raised. *)
val replace_code :
  ?verify:(unit -> (unit, string) result) -> Ocolos.t -> Ocolos_bolt.Bolt.result -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
