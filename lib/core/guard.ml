(* Supervision state for the OCOLOS daemon: per-function quarantine, a
   circuit breaker over whole optimization campaigns, watchdog deadlines on
   modeled phase durations, and deterministic seeded jitter for every
   backoff.

   A *campaign* is one profile -> aggregate -> BOLT -> replace cycle. The
   breaker counts consecutive campaigns that ended without a committed
   replacement; after [breaker_threshold] of them it opens, refusing new
   campaigns until a simulated cooldown has elapsed, then admits exactly one
   half-open probe. The probe either closes the breaker (commit) or re-opens
   it (another failure).

   Quarantine is per function: a function whose BOLT pass degraded it
   [quarantine_after] times (summed across campaigns) is excluded from all
   future reordering in this run — failing forever is worse than running a
   function in its original layout. Quarantine is monotone: fids are never
   removed.

   Degradation tiers bridge the two: the first campaign failure in a row
   drops the next campaign from [`Full] BOLT to [`Func_reorder_only]; a
   commit restores [`Full]. The third option — keep the current layout —
   is the breaker refusing campaigns entirely. *)

type breaker_state = Closed | Open of { until_s : float } | Half_open

type config = {
  quarantine_after : int;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  jitter : float;
  perf2bolt_deadline_s : float option;
  bolt_deadline_s : float option;
}

let default_config =
  { quarantine_after = 2;
    breaker_threshold = 3;
    breaker_cooldown_s = 60.0;
    jitter = 0.25;
    perf2bolt_deadline_s = None;
    bolt_deadline_s = None }

type t = {
  config : config;
  rng : Ocolos_util.Rng.t; (* jitter stream; pure function of the seed *)
  func_failures : (int, int) Hashtbl.t; (* fid -> cumulative pass failures *)
  quarantine : (int, unit) Hashtbl.t;
  mutable breaker : breaker_state;
  mutable consecutive_failures : int;
  mutable breaker_opens : int;
  mutable watchdog_trips : int;
  mutable tier : Ocolos.tier;
}

let create ?(config = default_config) ?(seed = 0) () =
  { config;
    rng = Ocolos_util.Rng.create (seed lxor 0x6A5D);
    func_failures = Hashtbl.create 32;
    quarantine = Hashtbl.create 16;
    breaker = Closed;
    consecutive_failures = 0;
    breaker_opens = 0;
    watchdog_trips = 0;
    tier = `Full }

let breaker_state t = t.breaker
let consecutive_failures t = t.consecutive_failures
let breaker_opens t = t.breaker_opens
let watchdog_trips t = t.watchdog_trips
let tier t = t.tier

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open { until_s } -> Fmt.str "open (until %.1fs)" until_s
  | Half_open -> "half-open"

(* Deterministic +/-[jitter] fraction around [delay], from the seeded
   stream — desynchronizes retries across campaigns without breaking
   replayability. *)
let jittered t delay =
  let u = Ocolos_util.Rng.float t.rng in
  delay *. (1.0 +. (t.config.jitter *. ((2.0 *. u) -. 1.0)))

let export t =
  let state_code = match t.breaker with Closed -> 0.0 | Open _ -> 1.0 | Half_open -> 2.0 in
  Ocolos_obs.Metrics.record "ocolos_guard_breaker_state" state_code;
  Ocolos_obs.Metrics.record "ocolos_guard_quarantined" (float_of_int (Hashtbl.length t.quarantine));
  Ocolos_obs.Metrics.record "ocolos_guard_consecutive_failures"
    (float_of_int t.consecutive_failures)

(* ---- circuit breaker ---- *)

(* May a new campaign start at [now_s]? An open breaker whose cooldown has
   elapsed transitions to half-open and admits this one campaign as the
   probe. *)
let allow_campaign t ~now_s =
  match t.breaker with
  | Closed | Half_open -> true
  | Open { until_s } ->
    if now_s >= until_s then begin
      t.breaker <- Half_open;
      Ocolos_obs.Trace.mark "guard.breaker_half_open";
      Ocolos_obs.Events.log "guard.breaker_half_open";
      export t;
      true
    end
    else false

let open_breaker t ~now_s =
  let cooldown = jittered t t.config.breaker_cooldown_s in
  t.breaker <- Open { until_s = now_s +. cooldown };
  t.breaker_opens <- t.breaker_opens + 1;
  Ocolos_obs.Metrics.count "ocolos_guard_breaker_opens_total" 1;
  Ocolos_obs.Trace.mark "guard.breaker_opened"
    ~attrs:
      [ ("consecutive_failures", Ocolos_obs.Trace.I t.consecutive_failures);
        ("cooldown_s", Ocolos_obs.Trace.F cooldown) ];
  Ocolos_obs.Events.log "guard.breaker_opened"
    ~fields:
      [ ("consecutive_failures", Ocolos_obs.Trace.I t.consecutive_failures);
        ("cooldown_s", Ocolos_obs.Trace.F cooldown) ]

let campaign_failed t ~now_s =
  t.consecutive_failures <- t.consecutive_failures + 1;
  Ocolos_obs.Metrics.count "ocolos_guard_campaign_failures_total" 1;
  (* First failure in a row degrades the next campaign's tier. *)
  if t.tier = `Full then t.tier <- `Func_reorder_only;
  (match t.breaker with
  | Half_open -> open_breaker t ~now_s (* the probe failed *)
  | Closed ->
    if t.consecutive_failures >= t.config.breaker_threshold then open_breaker t ~now_s
  | Open _ -> ());
  export t

let campaign_succeeded t =
  if t.breaker <> Closed || t.consecutive_failures > 0 then
    Ocolos_obs.Events.log "guard.breaker_closed";
  t.consecutive_failures <- 0;
  t.breaker <- Closed;
  t.tier <- `Full;
  export t

(* ---- quarantine ---- *)

let quarantined t =
  List.sort compare (Hashtbl.fold (fun fid () acc -> fid :: acc) t.quarantine [])

let quarantined_count t = Hashtbl.length t.quarantine
let is_quarantined t fid = Hashtbl.mem t.quarantine fid

(* Fold one BOLT round's per-function failures ([Bolt.result.failed]) into
   the cumulative counts; a function reaching [quarantine_after] enters
   quarantine permanently. *)
let record_func_failures t failed =
  List.iter
    (fun (fid, point) ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.func_failures fid) in
      Hashtbl.replace t.func_failures fid n;
      if n >= t.config.quarantine_after && not (Hashtbl.mem t.quarantine fid) then begin
        Hashtbl.replace t.quarantine fid ();
        Ocolos_obs.Metrics.count "ocolos_guard_quarantines_total" 1;
        Ocolos_obs.Trace.mark "guard.quarantined"
          ~attrs:
            [ ("fid", Ocolos_obs.Trace.I fid);
              ("point", Ocolos_obs.Trace.S point);
              ("failures", Ocolos_obs.Trace.I n) ];
        Ocolos_obs.Events.log "guard.quarantined"
          ~fields:
            [ ("fid", Ocolos_obs.Trace.I fid);
              ("point", Ocolos_obs.Trace.S point);
              ("failures", Ocolos_obs.Trace.I n) ]
      end)
    failed;
  if failed <> [] then export t

(* Immediate quarantine: a translation-validation rejection is proof of
   miscompilation, not a degradation streak — one strike suffices. The
   cumulative failure count is raised to the threshold so the exclusion
   also survives any state export/rebuild that replays counts. *)
let quarantine_now t fid ~reason =
  let n =
    max t.config.quarantine_after
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.func_failures fid))
  in
  Hashtbl.replace t.func_failures fid n;
  if not (Hashtbl.mem t.quarantine fid) then begin
    Hashtbl.replace t.quarantine fid ();
    Ocolos_obs.Metrics.count "ocolos_guard_quarantines_total" 1;
    Ocolos_obs.Trace.mark "guard.quarantined"
      ~attrs:
        [ ("fid", Ocolos_obs.Trace.I fid);
          ("point", Ocolos_obs.Trace.S reason);
          ("failures", Ocolos_obs.Trace.I n) ];
    Ocolos_obs.Events.log "guard.quarantined"
      ~fields:
        [ ("fid", Ocolos_obs.Trace.I fid);
          ("point", Ocolos_obs.Trace.S reason);
          ("failures", Ocolos_obs.Trace.I n) ];
    export t
  end

(* Immediate breaker trip: shadow-execution divergence means wrong code was
   committed and reverted — no probing the same campaign again until the
   cooldown has passed, whatever the consecutive count says. *)
let trip_breaker t ~now_s ~reason =
  t.consecutive_failures <- t.consecutive_failures + 1;
  Ocolos_obs.Metrics.count "ocolos_guard_campaign_failures_total" 1;
  if t.tier = `Full then t.tier <- `Func_reorder_only;
  Ocolos_obs.Trace.mark "guard.breaker_tripped" ~attrs:[ ("reason", Ocolos_obs.Trace.S reason) ];
  Ocolos_obs.Events.log "guard.breaker_tripped"
    ~fields:[ ("reason", Ocolos_obs.Trace.S reason) ];
  (match t.breaker with Open _ -> () | Closed | Half_open -> open_breaker t ~now_s);
  export t

(* ---- watchdog ---- *)

(* Check one phase's modeled duration against its deadline. Returns [true]
   when the watchdog trips (deadline exceeded): the campaign must be
   abandoned, its partial work discarded. *)
let check_deadline t ~phase ~seconds =
  let deadline =
    match phase with
    | `Perf2bolt -> t.config.perf2bolt_deadline_s
    | `Bolt -> t.config.bolt_deadline_s
  in
  match deadline with
  | None -> false
  | Some d ->
    if seconds > d then begin
      t.watchdog_trips <- t.watchdog_trips + 1;
      let name = match phase with `Perf2bolt -> "perf2bolt" | `Bolt -> "bolt" in
      Ocolos_obs.Metrics.count ~labels:[ ("phase", name) ] "ocolos_guard_watchdog_trips_total" 1;
      Ocolos_obs.Trace.mark "guard.watchdog_tripped"
        ~attrs:
          [ ("phase", Ocolos_obs.Trace.S name);
            ("seconds", Ocolos_obs.Trace.F seconds);
            ("deadline_s", Ocolos_obs.Trace.F d) ];
      Ocolos_obs.Events.log "guard.watchdog_tripped"
        ~fields:
          [ ("phase", Ocolos_obs.Trace.S name);
            ("seconds", Ocolos_obs.Trace.F seconds);
            ("deadline_s", Ocolos_obs.Trace.F d) ];
      true
    end
    else false
