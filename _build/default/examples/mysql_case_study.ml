(* MySQL case study (paper Section VI-C): watch throughput and tail latency
   around a code replacement, then inspect why the optimized code wins —
   the front-end counters before and after, and the TopDown shift.

     dune exec examples/mysql_case_study.exe *)

open Ocolos_workloads
open Ocolos_uarch
module Timeline = Ocolos_sim.Timeline
module Measure = Ocolos_sim.Measure

let bar width frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let () =
  let w = Apps.mysql_like () in
  let input = Workload.find_input w "read_only" in
  Fmt.pr "MySQL-like server, input %s, %d worker threads@." input.Input.name
    w.Workload.nthreads;

  (* Live timeline through the five regions of the paper's Fig. 7. *)
  let t = Timeline.run ~warmup_s:6 ~profile_s:3 ~post_s:8 w ~input in
  let peak =
    List.fold_left (fun a (p : Timeline.point) -> Float.max a p.Timeline.tps) 1.0
      t.Timeline.points
  in
  Fmt.pr "@.%-4s %-15s %-40s %8s %10s@." "sec" "region" "throughput" "tps" "p95 (ms)";
  List.iter
    (fun (p : Timeline.point) ->
      Fmt.pr "%-4d %-15s %-40s %8.0f %10.2f@." p.Timeline.second
        (Timeline.region_name p.Timeline.region)
        (bar 40 (p.Timeline.tps /. peak))
        p.Timeline.tps p.Timeline.p95_ms)
    t.Timeline.points;
  Fmt.pr "@.pause: %.3f s, perf2bolt %.2f s, bolt %.2f s@."
    t.Timeline.stats.Ocolos_core.Ocolos.pause_seconds t.Timeline.perf2bolt_seconds
    t.Timeline.bolt_seconds;

  (* Why it wins: front-end counters, original vs OCOLOS (the MYSQLparse
     story — the hot parser stops missing in the L1i). *)
  let orig = Measure.steady w ~input in
  let oco = Measure.ocolos_steady w ~input in
  let show name (c : Counters.t) =
    let td = Counters.topdown c in
    Fmt.pr
      "%-9s IPC %.2f | L1i MPKI %5.2f | iTLB MPKI %5.2f | taken/K %5.1f | misp/K %5.2f | TD fe %.0f%% bs %.0f%% be %.0f%% ret %.0f%%@."
      name (Counters.ipc c) (Counters.l1i_mpki c) (Counters.itlb_mpki c)
      (Counters.taken_branches_pki c) (Counters.mispredicts_pki c)
      (100.0 *. td.Counters.frontend) (100.0 *. td.Counters.bad_speculation)
      (100.0 *. td.Counters.backend) (100.0 *. td.Counters.retiring)
  in
  Fmt.pr "@.";
  show "original" orig.Measure.counters;
  show "OCOLOS" oco.Measure.post.Measure.counters;
  Fmt.pr "@.speedup: %.2fx@." (oco.Measure.post.Measure.tps /. orig.Measure.tps);

  (* perf report (Section VI-C): under the original binary the generated
     SQL parser dominates L1i misses, exactly like MYSQLparse in the paper;
     after optimization it falls off the radar. *)
  let report_misses binary =
    let proc = Workload.launch w ~binary ~input in
    Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
    let session = Ocolos_profiler.Perf_report.start ~period:3 proc in
    Ocolos_proc.Proc.run ~cycle_limit:800_000.0 proc;
    Ocolos_profiler.Perf_report.stop session
  in
  Fmt.pr "@.perf report — L1i misses under the ORIGINAL binary:@.";
  let r_orig = report_misses w.Workload.binary in
  Fmt.pr "%a" (Ocolos_profiler.Perf_report.pp_top ~limit:6) (r_orig, w.Workload.binary);
  let profile = Measure.collect_profile w ~input in
  let bolted = (Measure.bolt_binary w profile).Ocolos_bolt.Bolt.merged in
  Fmt.pr "@.perf report — L1i misses under the BOLTED binary:@.";
  let r_opt = report_misses bolted in
  Fmt.pr "%a" (Ocolos_profiler.Perf_report.pp_top ~limit:6) (r_opt, bolted);
  (match w.Workload.gen.Ocolos_workloads.Gen.parser_fid with
  | Some pf ->
    let share r b =
      let rows = Ocolos_profiler.Perf_report.by_function r b in
      match
        List.find_opt (fun x -> x.Ocolos_profiler.Perf_report.fr_fid = pf) rows
      with
      | Some x -> 100.0 *. x.Ocolos_profiler.Perf_report.fr_share
      | None -> 0.0
    in
    Fmt.pr "@.parse_query share of L1i misses: %.1f%% (original) -> %.1f%% (BOLTed)@."
      (share r_orig w.Workload.binary) (share r_opt bolted)
  | None -> ())
