examples/mysql_case_study.ml: Apps Counters Float Fmt Input List Ocolos_bolt Ocolos_core Ocolos_proc Ocolos_profiler Ocolos_sim Ocolos_uarch Ocolos_workloads String Workload
