examples/mysql_case_study.mli:
