examples/quickstart.mli:
