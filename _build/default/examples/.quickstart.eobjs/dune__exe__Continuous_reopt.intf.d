examples/continuous_reopt.mli:
