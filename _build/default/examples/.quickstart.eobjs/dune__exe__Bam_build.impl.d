examples/bam_build.ml: Apps Fmt List Ocolos_binary Ocolos_bolt Ocolos_core Ocolos_proc Ocolos_profiler Ocolos_sim Ocolos_workloads Workload
