examples/managed_server.ml: Apps Fmt Ocolos_core Ocolos_proc Ocolos_sim Ocolos_workloads Workload
