examples/managed_server.mli:
