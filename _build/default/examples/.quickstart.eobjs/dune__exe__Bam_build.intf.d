examples/bam_build.mli:
