(* Managed server: the continuous-optimization controller in action.

     dune exec examples/managed_server.exe

   A MySQL-like server runs under Ocolos_core.Daemon, which decides when to
   optimize on its own: the stage-1 TopDown gate triggers the first
   optimization; later, when the input mix shifts and throughput under the
   now-stale layout regresses, drift detection triggers re-profiling and a
   C_i -> C_{i+1} replacement with garbage collection of the old version.
   The operator never calls OCOLOS explicitly. *)

open Ocolos_workloads
module Daemon = Ocolos_core.Daemon
module Clock = Ocolos_sim.Clock
module Proc = Ocolos_proc.Proc

let () =
  let w = Apps.mysql_like () in
  let proc = Workload.launch w ~input:(Workload.find_input w "read_only") in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 2.0;
      warmup_s = 1.0;
      min_interval_s = 3.0;
      regression_tolerance = 0.10 }
  in
  let daemon = Daemon.create ~config oc proc in
  let last_tx = ref 0 in
  let shift_at = 14 in
  Fmt.pr "second  tps   version  daemon@.";
  for second = 1 to 30 do
    if second = shift_at then begin
      Workload.set_input w proc (Workload.find_input w "write_only");
      Fmt.pr "------  input shifts: read_only -> write_only ------@."
    end;
    Proc.run ~cycle_limit:(Clock.seconds_to_cycles (float_of_int second)) proc;
    let tx = Proc.transactions proc in
    let tps = tx - !last_tx in
    last_tx := tx;
    let action = Daemon.tick daemon ~now_s:(float_of_int second) in
    Fmt.pr "%6d  %4d  C%-6d  %s@." second tps
      (Ocolos_core.Ocolos.version oc)
      (Daemon.action_to_string action)
  done;
  Fmt.pr "@.%d autonomous replacements; final code version C%d@."
    (Daemon.replacements daemon) (Ocolos_core.Ocolos.version oc)
