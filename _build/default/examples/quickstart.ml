(* Quickstart: optimize a running process with OCOLOS, end to end.

     dune exec examples/quickstart.exe

   Walks the whole public API once: build a workload, launch a simulated
   server process, attach OCOLOS, profile the live process, run BOLT in the
   background, replace the code, and compare throughput. *)

open Ocolos_workloads
module Proc = Ocolos_proc.Proc
module Ocolos = Ocolos_core.Ocolos
module Clock = Ocolos_sim.Clock

let () =
  (* 1. A benchmark application: a scaled-down MySQL-like server with
     Sysbench-style inputs. Any Ir.program compiled with Workload.build
     works the same way. *)
  let w = Apps.memcached_like () in
  let input = Workload.find_input w "set10_get90" in
  Fmt.pr "workload: %a@." Ocolos_binary.Binary.pp_summary w.Workload.binary;

  (* 2. Launch it: a process with worker threads executing the server loop
     on simulated cores. *)
  let proc = Workload.launch w ~input in

  (* 3. Attach OCOLOS (the ptrace analog). This parses direct-call sites
     offline and installs the function-pointer creation hook. *)
  let oc = Ocolos.attach proc in

  (* 4. Let the server warm up, then measure baseline throughput. *)
  let horizon = ref 0.0 in
  let run_seconds s =
    horizon := !horizon +. s;
    Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc
  in
  run_seconds 0.5;
  let tx0 = Proc.transactions proc in
  run_seconds 1.0;
  let baseline = float_of_int (Proc.transactions proc - tx0) in
  Fmt.pr "baseline: %.0f transactions/s@." baseline;

  (* 5. Profile the live process with LBR sampling while it keeps serving
     traffic. *)
  Ocolos.start_profiling oc;
  run_seconds 1.5;
  let profile, perf2bolt_s = Ocolos.stop_profiling oc in
  Fmt.pr "profile: %a (perf2bolt: %.2f s)@." Ocolos_profiler.Profile.pp_summary profile
    perf2bolt_s;

  (* 6. BOLT in the background: CFG reconstruction, basic-block reordering
     (ExtTSP), hot/cold splitting, C3 function reordering. *)
  let result, bolt_s = Ocolos.run_bolt oc profile in
  Fmt.pr "BOLT: %d functions optimized into a new .text at 0x%x (%.2f s)@."
    result.Ocolos_bolt.Bolt.funcs_reordered result.Ocolos_bolt.Bolt.bolt_base bolt_s;

  (* 7. Stop-the-world code replacement: inject C1, patch v-tables and
     stack-live direct calls, resume. *)
  let stats = Ocolos.replace_code oc result in
  Fmt.pr
    "replacement: %d v-table entries + %d call sites patched, %d funcs on stack, pause %.3f s@."
    stats.Ocolos.vtable_entries_patched stats.Ocolos.call_sites_patched
    stats.Ocolos.stack_live_funcs stats.Ocolos.pause_seconds;

  (* 8. Measure optimized throughput. *)
  let tx1 = Proc.transactions proc in
  run_seconds 1.0;
  let optimized = float_of_int (Proc.transactions proc - tx1) in
  Fmt.pr "optimized: %.0f transactions/s — %.2fx speedup@." optimized (optimized /. baseline)
